// Command rcb-usability reruns the paper's usability study artifacts: the
// 20-task scenario of Table 2 executed against the real RCB stack, the
// questionnaire instrument of Table 3, and the response statistics of
// Table 4 (computed over simulated responses whose merged distribution
// equals the published one — see EXPERIMENTS.md).
//
// Usage:
//
//	rcb-usability            # all three tables
//	rcb-usability -table 2   # one table
//	rcb-usability -seed 7    # different subject simulation seed
package main

import (
	"flag"
	"fmt"
	"os"

	"rcb/internal/usability"
)

func main() {
	table := flag.Int("table", 0, "print only table 2, 3 or 4")
	seed := flag.Int64("seed", 2009, "seed for the simulated questionnaire responses")
	flag.Parse()

	if *table == 0 || *table == 2 {
		scenario, err := usability.NewScenario()
		if err != nil {
			fmt.Fprintln(os.Stderr, "rcb-usability:", err)
			os.Exit(1)
		}
		results := scenario.Run()
		scenario.Close()
		usability.WriteTable2(os.Stdout, results)
		fmt.Println()
		times := usability.SessionMinutes(*seed)
		mean := 0.0
		for _, v := range times {
			mean += v
		}
		fmt.Printf("mean session time across 10 simulated pairs: %.1f minutes (paper: 10.8)\n\n", mean/float64(len(times)))
	}
	if *table == 0 || *table == 3 {
		usability.WriteTable3(os.Stdout)
		fmt.Println()
	}
	if *table == 0 || *table == 4 {
		stats := usability.Summarize(usability.SimulateResponses(*seed))
		usability.WriteTable4(os.Stdout, stats)
	}
}
