// Command rcb-join participates in a co-browsing session over real TCP: it
// runs the Ajax-Snippet logic against a live RCB-Agent (see rcb-host),
// printing a line for every synchronization — the terminal stand-in for a
// participant's browser window.
//
// Usage:
//
//	rcb-join -agent http://localhost:3000
//	rcb-join -agent http://host.example:3000 -key secret123 -interval 500ms
//	rcb-join -agent http://host.example:3000 -longpoll   # hanging-GET push delivery
//	rcb-join -agent http://host.example:3000 -longpoll -actionpush   # + fire-and-forget action upstream
//	rcb-join -agent http://host.example:3000 -duplex     # one framed connection, both directions
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"time"

	"rcb/internal/browser"
	"rcb/internal/core"
	"rcb/internal/dom"
)

func main() {
	agentURL := flag.String("agent", "http://localhost:3000", "RCB-Agent URL (as typed into the address bar)")
	key := flag.String("key", "", "session secret shared by the host")
	interval := flag.Duration("interval", time.Second, "polling interval (and long-poll retry backoff)")
	longpoll := flag.Bool("longpoll", false, "use hanging-GET delivery: the agent parks each poll until content changes")
	duplex := flag.Bool("duplex", false, "use the persistent full-duplex channel: one framed connection carries updates down and actions up (degrades to long-poll, then interval)")
	wait := flag.Duration("wait", 0, "max hang per long-poll request (0 = library default)")
	actionpush := flag.Bool("actionpush", false, "with -longpoll: POST actions to the agent the moment they occur instead of piggybacking them on the next poll")
	fetch := flag.Bool("objects", true, "download supplementary objects")
	flag.Parse()

	b := browser.New("participant.local", func(addr string) (net.Conn, error) {
		return net.Dial("tcp", addr)
	})
	defer b.Close()
	snip := core.NewSnippet(b, strings.TrimSuffix(*agentURL, "/"), *key)
	snip.PollInterval = *interval
	snip.FetchObjects = *fetch
	switch {
	case *duplex:
		snip.Delivery = core.DeliveryDuplex
		snip.LongPollWait = *wait     // the long-poll fallback keeps its hang
		snip.ActionPush = *actionpush // and its push lane, while degraded
		if *longpoll {
			fmt.Fprintln(os.Stderr, "rcb-join: -duplex already falls back to long-poll; ignoring -longpoll")
		}
	case *longpoll:
		snip.Delivery = core.DeliveryLongPoll
		snip.LongPollWait = *wait
		snip.ActionPush = *actionpush
	case *actionpush:
		fmt.Fprintln(os.Stderr, "rcb-join: -actionpush requires -longpoll or -duplex (interval mode keeps the paper's piggyback path); ignoring")
	}
	snip.OnUserAction = func(a core.Action) {
		fmt.Printf("  mirror: %s\n", a)
	}

	if err := snip.Join(); err != nil {
		if r := core.CloseReasonOf(err); r != core.CloseNone {
			fmt.Fprintf(os.Stderr, "rcb-join: agent refused the join: %s (retryable: %v)\n", r, r.Retryable())
		}
		fmt.Fprintln(os.Stderr, "rcb-join:", err)
		os.Exit(1)
	}
	switch {
	case *duplex:
		fmt.Printf("joined %s; full-duplex channel (framed, both directions). Ctrl-C to leave.\n", *agentURL)
	case *longpoll && snip.ActionPush:
		fmt.Printf("joined %s; long-poll delivery + action push. Ctrl-C to leave.\n", *agentURL)
	case *longpoll:
		fmt.Printf("joined %s; long-poll delivery (hanging GET). Ctrl-C to leave.\n", *agentURL)
	default:
		fmt.Printf("joined %s; polling every %v. Ctrl-C to leave.\n", *agentURL, *interval)
	}

	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		close(stop)
	}()

	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		snip.Run(stop, func(err error) {
			if r := core.CloseReasonOf(err); r != core.CloseNone {
				if r == core.CloseMoved {
					fmt.Fprintf(os.Stderr, "session moved — following the agent to its new address\n")
				} else if r.Retryable() {
					fmt.Fprintf(os.Stderr, "session closed by agent: %s — rejoining\n", r)
				} else {
					fmt.Fprintf(os.Stderr, "session closed by agent: %s — giving up\n", r)
				}
				return
			}
			fmt.Fprintln(os.Stderr, "poll:", err)
		})
	}()

	// Report each applied update until interrupted.
	last := int64(0)
	tick := time.NewTicker(200 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			st := snip.Stats()
			fmt.Printf("left session: %d polls, %d updates, %d objects fetched", st.Polls, st.ContentPolls, st.ObjectFetches)
			if st.DuplexUpgrades > 0 || st.DuplexFallbacks > 0 {
				fmt.Printf(", %d channel upgrades (%d frames in, %d out, %d fallbacks)",
					st.DuplexUpgrades, st.DuplexFramesIn, st.DuplexFramesOut, st.DuplexFallbacks)
			}
			if st.Relocates > 0 {
				fmt.Printf(", %d relocations (now at %s)", st.Relocates, snip.CurrentAgentURL())
			}
			fmt.Println()
			return
		case <-runDone:
			// The loop only exits on its own for a non-retryable close.
			st := snip.Stats()
			fmt.Printf("session over (%s): %d polls, %d updates, %d rejoins, %d relocations\n",
				st.LastCloseReason, st.Polls, st.ContentPolls, st.Rejoins, st.Relocates)
			os.Exit(1)
		case <-tick.C:
		}
		if t := snip.DocTime(); t != last {
			last = t
			title := "(untitled)"
			_ = b.WithDocument(func(_ string, doc *dom.Document) error {
				if el := doc.Head().FirstChildElement("title"); el != nil {
					title = el.TextContent()
				}
				return nil
			})
			st := snip.Stats()
			fmt.Printf("synced %q  apply=%v  objects=%d (from host: %d)\n",
				title, st.LastApplyTime.Round(time.Microsecond), st.ObjectFetches, st.ObjectsFromAgent)
		}
	}
}
