// Command rcb-host runs a co-browsing host over real TCP: a host browser
// (backed by the synthetic site corpus) with RCB-Agent listening on a real
// socket, so rcb-join processes on this or other machines can participate.
//
// Usage:
//
//	rcb-host -listen :3000 -site google.com
//	rcb-host -listen :3000 -demo maps     # animated maps session
//	rcb-host -listen :3000 -key secret123 # HMAC-protected session
//
// The host "browses": with -demo maps it re-centers and zooms the map every
// few seconds; with -demo shop it walks the shopping flow; otherwise it
// stays on the chosen site's homepage.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rcb/internal/browser"
	"rcb/internal/core"
	"rcb/internal/dom"
	"rcb/internal/httpwire"
	"rcb/internal/sites"
)

func main() {
	listen := flag.String("listen", ":3000", "TCP address for RCB-Agent")
	site := flag.String("site", "google.com", "Table 1 site for the host to browse")
	demo := flag.String("demo", "", "animated demo: 'maps' or 'shop'")
	key := flag.String("key", "", "session secret; enables HMAC authentication")
	cache := flag.Bool("cache", true, "serve cached objects to participants (cache mode)")
	channels := flag.Bool("channels", true, "accept persistent-channel upgrades (rcb-join -duplex); off refuses them and participants fall back to long-poll")
	maxParticipants := flag.Int("max-participants", 64, "admission cap: refuse joins beyond this many participants (SESSION_FULL); 0 = unlimited")
	maxParked := flag.Int("max-parked", 256, "cap on concurrently parked long-polls; the oldest reader beyond it is shed (OVERCOMMITTED); 0 = unlimited")
	shedWatermarks := flag.String("shed-watermarks", "",
		"shed-ladder watermarks as 'signal=high[/low],...' with signals parked, outbox, heap\n"+
			"(heap takes size suffixes, e.g. 'parked=200/100,heap=512M'); low defaults to high/2; empty disables the ladder")
	checkpoint := flag.String("checkpoint", "", "write session checkpoints to this file (periodically, on SIGUSR1, and on shutdown)")
	checkpointEvery := flag.Duration("checkpoint-every", 10*time.Second, "interval between periodic checkpoints (with -checkpoint)")
	restore := flag.String("restore", "", "restore the session from this checkpoint file if it exists, then keep serving")
	acceptHandover := flag.Bool("accept-handover", false, "accept a live session handover from another rcb-host sharing the key")
	handoverTo := flag.String("handover-to", "", "on SIGUSR2, hand the live session over to the agent at this address")
	flag.Parse()

	corpus, err := sites.NewCorpus()
	if err != nil {
		fatal(err)
	}
	defer corpus.Close()

	// The agent's self-address is embedded in rewritten cache-mode URLs, so
	// it must be the address participants can dial.
	selfAddr := *listen
	if strings.HasPrefix(selfAddr, ":") {
		selfAddr = "localhost" + selfAddr
	}
	host := browser.New("host.local", corpus.Network.Dialer("host.local"))
	defer host.Close()
	agent := core.NewAgent(host, selfAddr)
	agent.DefaultCacheMode = *cache
	agent.DisableChannel = !*channels
	agent.MaxParticipants = *maxParticipants
	agent.MaxParkedPolls = *maxParked
	if *shedWatermarks != "" {
		w, err := core.ParseShedWatermarks(*shedWatermarks)
		if err != nil {
			fatal(err)
		}
		agent.Shed = w
	}
	agent.Logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	agent.AllowHandover = *acceptHandover
	if *key != "" {
		agent.Auth = core.NewAuthenticator(*key)
		fmt.Printf("session key: %s (share out of band)\n", *key)
	}

	// A checkpoint restores the whole session — participants, replay
	// stamps, document — so a restarted host resumes where it stopped and
	// snippets reconverge on their normal rejoin path.
	restored := false
	if *restore != "" {
		data, err := os.ReadFile(*restore)
		switch {
		case err == nil:
			if err := agent.ImportState(data); err != nil {
				fatal(fmt.Errorf("restore %s: %w", *restore, err))
			}
			restored = true
			fmt.Printf("restored session from %s\n", *restore)
		case os.IsNotExist(err):
			fmt.Printf("no checkpoint at %s; starting fresh\n", *restore)
		default:
			fatal(err)
		}
	}

	server, l, err := httpwire.ListenAndServe(*listen, agent)
	if err != nil {
		fatal(err)
	}
	defer server.Close()
	// Drain parked long-polls (empty responses) before the server drops
	// their connections: defers run LIFO, so this precedes server.Close.
	defer agent.Close()
	fmt.Printf("RCB-Agent listening on %s — join with: rcb-join -agent http://%s\n", l.Addr(), selfAddr)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)

	saveCheckpoint := func() error {
		data, err := agent.ExportState()
		if err != nil {
			return err
		}
		// Write-then-rename so a crash mid-write never corrupts the last
		// good checkpoint.
		tmp := *checkpoint + ".tmp"
		if err := os.WriteFile(tmp, data, 0o600); err != nil {
			return err
		}
		return os.Rename(tmp, *checkpoint)
	}
	if *checkpoint != "" || *handoverTo != "" {
		usr := make(chan os.Signal, 2)
		signal.Notify(usr, syscall.SIGUSR1, syscall.SIGUSR2)
		var tickC <-chan time.Time
		if *checkpoint != "" && *checkpointEvery > 0 {
			tick := time.NewTicker(*checkpointEvery)
			defer tick.Stop()
			tickC = tick.C
		}
		go func() {
			for {
				select {
				case <-tickC:
					if err := saveCheckpoint(); err != nil {
						fmt.Fprintln(os.Stderr, "rcb-host: checkpoint:", err)
					}
				case sig := <-usr:
					switch sig {
					case syscall.SIGUSR1:
						if *checkpoint == "" {
							fmt.Fprintln(os.Stderr, "rcb-host: SIGUSR1 ignored: no -checkpoint path")
							continue
						}
						if err := saveCheckpoint(); err != nil {
							fmt.Fprintln(os.Stderr, "rcb-host: checkpoint:", err)
						} else {
							fmt.Printf("checkpoint written to %s\n", *checkpoint)
						}
					case syscall.SIGUSR2:
						if *handoverTo == "" {
							fmt.Fprintln(os.Stderr, "rcb-host: SIGUSR2 ignored: no -handover-to address")
							continue
						}
						client := httpwire.NewClient(func(addr string) (net.Conn, error) {
							return net.Dial("tcp", addr)
						})
						if err := agent.HandoverTo(client, *handoverTo); err != nil {
							fmt.Fprintln(os.Stderr, "rcb-host: handover:", err)
						} else {
							fmt.Printf("session handed over to %s; this process now answers MOVED\n", *handoverTo)
						}
					}
				}
			}
		}()
	}

	if restored {
		// The restored document is the session truth; navigating anywhere
		// (including a demo script's first step) would clobber it.
		fmt.Println("resumed session; participants reconverge as they poll. Ctrl-C to stop.")
		<-stop
	} else {
		switch *demo {
		case "maps":
			runMapsDemo(host, corpus, stop)
		case "shop":
			runShopDemo(host, stop)
		default:
			spec, ok := sites.SiteByName(*site)
			if !ok {
				fatal(fmt.Errorf("unknown site %q", *site))
			}
			if _, err := host.Navigate("http://" + spec.Host() + "/"); err != nil {
				fatal(err)
			}
			fmt.Printf("host browsing %s; participants will sync it. Ctrl-C to stop.\n", spec.Name)
			<-stop
		}
	}

	if *checkpoint != "" {
		// Close the server first so no merge lands after the snapshot:
		// the checkpoint is then the session's final word, and a restore
		// preserves exactly-once for every action it recorded.
		server.Close()
		if err := saveCheckpoint(); err != nil {
			fmt.Fprintln(os.Stderr, "rcb-host: shutdown checkpoint:", err)
		} else {
			fmt.Printf("shutdown checkpoint written to %s\n", *checkpoint)
		}
	}
}

func runMapsDemo(host *browser.Browser, corpus *sites.Corpus, stop <-chan os.Signal) {
	if _, err := host.Navigate("http://" + sites.MapsHost + "/"); err != nil {
		fatal(err)
	}
	ops := sites.MapsOps{Addr: sites.MapsHost, Client: host.Client}
	if err := host.ApplyMutation(func(doc *dom.Document) error {
		return ops.Search(doc, "653 5th Ave, New York")
	}); err != nil {
		fatal(err)
	}
	fmt.Println("maps demo: searching, then panning/zooming every 3s. Ctrl-C to stop.")
	tick := time.NewTicker(3 * time.Second)
	defer tick.Stop()
	step := 0
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		step++
		err := host.ApplyMutation(func(doc *dom.Document) error {
			switch step % 4 {
			case 0:
				return ops.Zoom(doc, 1)
			case 1:
				return ops.Pan(doc, 1, 0)
			case 2:
				return ops.Zoom(doc, -1)
			default:
				return ops.Pan(doc, -1, 0)
			}
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "demo step:", err)
		}
	}
}

func runShopDemo(host *browser.Browser, stop <-chan os.Signal) {
	steps := []string{
		"http://" + sites.ShopHost + "/",
		"http://" + sites.ShopHost + "/search?q=macbook",
		"http://" + sites.ShopHost + "/product/1",
	}
	fmt.Println("shop demo: walking the shopping flow every 4s. Ctrl-C to stop.")
	i := 0
	tick := time.NewTicker(4 * time.Second)
	defer tick.Stop()
	for {
		if _, err := host.Navigate(steps[i%len(steps)]); err != nil {
			fmt.Fprintln(os.Stderr, "demo step:", err)
		}
		i++
		select {
		case <-stop:
			return
		case <-tick.C:
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rcb-host:", err)
	os.Exit(1)
}
