// Command rcb-host runs a co-browsing host over real TCP: a host browser
// (backed by the synthetic site corpus) with RCB-Agent listening on a real
// socket, so rcb-join processes on this or other machines can participate.
//
// Usage:
//
//	rcb-host -listen :3000 -site google.com
//	rcb-host -listen :3000 -demo maps     # animated maps session
//	rcb-host -listen :3000 -key secret123 # HMAC-protected session
//
// The host "browses": with -demo maps it re-centers and zooms the map every
// few seconds; with -demo shop it walks the shopping flow; otherwise it
// stays on the chosen site's homepage.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"rcb/internal/browser"
	"rcb/internal/core"
	"rcb/internal/dom"
	"rcb/internal/httpwire"
	"rcb/internal/sites"
)

func main() {
	listen := flag.String("listen", ":3000", "TCP address for RCB-Agent")
	site := flag.String("site", "google.com", "Table 1 site for the host to browse")
	demo := flag.String("demo", "", "animated demo: 'maps' or 'shop'")
	key := flag.String("key", "", "session secret; enables HMAC authentication")
	cache := flag.Bool("cache", true, "serve cached objects to participants (cache mode)")
	maxParticipants := flag.Int("max-participants", 64, "admission cap: refuse joins beyond this many participants (SESSION_FULL); 0 = unlimited")
	maxParked := flag.Int("max-parked", 256, "cap on concurrently parked long-polls; the oldest reader beyond it is shed (OVERCOMMITTED); 0 = unlimited")
	shedWatermarks := flag.String("shed-watermarks", "",
		"shed-ladder watermarks as 'signal=high[/low],...' with signals parked, outbox, heap\n"+
			"(heap takes size suffixes, e.g. 'parked=200/100,heap=512M'); low defaults to high/2; empty disables the ladder")
	flag.Parse()

	corpus, err := sites.NewCorpus()
	if err != nil {
		fatal(err)
	}
	defer corpus.Close()

	// The agent's self-address is embedded in rewritten cache-mode URLs, so
	// it must be the address participants can dial.
	selfAddr := *listen
	if strings.HasPrefix(selfAddr, ":") {
		selfAddr = "localhost" + selfAddr
	}
	host := browser.New("host.local", corpus.Network.Dialer("host.local"))
	defer host.Close()
	agent := core.NewAgent(host, selfAddr)
	agent.DefaultCacheMode = *cache
	agent.MaxParticipants = *maxParticipants
	agent.MaxParkedPolls = *maxParked
	if *shedWatermarks != "" {
		w, err := core.ParseShedWatermarks(*shedWatermarks)
		if err != nil {
			fatal(err)
		}
		agent.Shed = w
	}
	agent.Logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	if *key != "" {
		agent.Auth = core.NewAuthenticator(*key)
		fmt.Printf("session key: %s (share out of band)\n", *key)
	}

	server, l, err := httpwire.ListenAndServe(*listen, agent)
	if err != nil {
		fatal(err)
	}
	defer server.Close()
	// Drain parked long-polls (empty responses) before the server drops
	// their connections: defers run LIFO, so this precedes server.Close.
	defer agent.Close()
	fmt.Printf("RCB-Agent listening on %s — join with: rcb-join -agent http://%s\n", l.Addr(), selfAddr)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)

	switch *demo {
	case "maps":
		runMapsDemo(host, corpus, stop)
	case "shop":
		runShopDemo(host, stop)
	default:
		spec, ok := sites.SiteByName(*site)
		if !ok {
			fatal(fmt.Errorf("unknown site %q", *site))
		}
		if _, err := host.Navigate("http://" + spec.Host() + "/"); err != nil {
			fatal(err)
		}
		fmt.Printf("host browsing %s; participants will sync it. Ctrl-C to stop.\n", spec.Name)
		<-stop
	}
}

func runMapsDemo(host *browser.Browser, corpus *sites.Corpus, stop <-chan os.Signal) {
	if _, err := host.Navigate("http://" + sites.MapsHost + "/"); err != nil {
		fatal(err)
	}
	ops := sites.MapsOps{Addr: sites.MapsHost, Client: host.Client}
	if err := host.ApplyMutation(func(doc *dom.Document) error {
		return ops.Search(doc, "653 5th Ave, New York")
	}); err != nil {
		fatal(err)
	}
	fmt.Println("maps demo: searching, then panning/zooming every 3s. Ctrl-C to stop.")
	tick := time.NewTicker(3 * time.Second)
	defer tick.Stop()
	step := 0
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		step++
		err := host.ApplyMutation(func(doc *dom.Document) error {
			switch step % 4 {
			case 0:
				return ops.Zoom(doc, 1)
			case 1:
				return ops.Pan(doc, 1, 0)
			case 2:
				return ops.Zoom(doc, -1)
			default:
				return ops.Pan(doc, -1, 0)
			}
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "demo step:", err)
		}
	}
}

func runShopDemo(host *browser.Browser, stop <-chan os.Signal) {
	steps := []string{
		"http://" + sites.ShopHost + "/",
		"http://" + sites.ShopHost + "/search?q=macbook",
		"http://" + sites.ShopHost + "/product/1",
	}
	fmt.Println("shop demo: walking the shopping flow every 4s. Ctrl-C to stop.")
	i := 0
	tick := time.NewTicker(4 * time.Second)
	defer tick.Stop()
	for {
		if _, err := host.Navigate(steps[i%len(steps)]); err != nil {
			fmt.Fprintln(os.Stderr, "demo step:", err)
		}
		i++
		select {
		case <-stop:
			return
		case <-tick.C:
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rcb-host:", err)
	os.Exit(1)
}
