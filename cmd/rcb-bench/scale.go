package main

// The -scale mode runs the internal/scenlab scenario families at
// four-digit fleet size — flash-crowd joins, thundering-herd wakes,
// disconnect/rejoin churn, long-haul lossy links, role-asymmetric search
// co-browsing, and multi-writer turns across a live handover — and writes
// a JSON snapshot (BENCH_scale.json) of the measured staleness and
// bytes-per-participant numbers, so successive PRs can compare scheduler
// and wire-cost changes against a recorded baseline. SCENLAB_N overrides
// the fleet size, the same knob the test harness uses.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"rcb/internal/scenlab"
)

// ScaleSnapshot is the BENCH_scale.json document.
type ScaleSnapshot struct {
	Benchmark  string            `json:"benchmark"`
	N          int               `json:"n"`
	GoVersion  string            `json:"go_version"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Results    []*scenlab.Result `json:"results"`
}

// scaleRuns is the (family × profile) matrix the snapshot records — each
// family over the profile(s) that stress it.
var scaleRuns = []struct {
	family  string
	profile scenlab.Profile
	rounds  int
}{
	{scenlab.FamilyFlashCrowd, scenlab.ProfileInstant, 3},
	{scenlab.FamilyFlashCrowd, scenlab.ProfileWAN, 3},
	{scenlab.FamilyThunderingHerd, scenlab.ProfileInstant, 3},
	{scenlab.FamilyChurn, scenlab.ProfileLossy, 4},
	{scenlab.FamilyLongHaul, scenlab.ProfileLossy, 5},
	{scenlab.FamilyLongHaul, scenlab.ProfileMobile, 5},
	{scenlab.FamilySearchRoles, scenlab.ProfileWAN, 4},
	{scenlab.FamilyWriterTurns, scenlab.ProfileInstant, 4},
}

func writeScale(outPath string) error {
	n := scenlab.EnvN(1000)
	snap := ScaleSnapshot{
		Benchmark:  "ScenarioLabScale",
		N:          n,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	failed := 0
	for _, run := range scaleRuns {
		fmt.Fprintf(os.Stderr, "rcb-bench: scale %s/%s n=%d...\n", run.family, run.profile.Name, n)
		res, err := scenlab.Run(scenlab.Config{
			Family:    run.family,
			Profile:   run.profile,
			N:         n,
			Sentinels: 4,
			Rounds:    run.rounds,
			Seed:      1,
		})
		if err != nil {
			return fmt.Errorf("scale %s/%s: %w", run.family, run.profile.Name, err)
		}
		for _, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "rcb-bench: scale %s/%s: VIOLATION: %s\n", run.family, run.profile.Name, v)
			failed++
		}
		fmt.Fprintf(os.Stderr, "rcb-bench: scale %s/%s\tmean %dms\tmax %dms\tjoin %dB/lite\tround %dB/lite\t%.1fs\n",
			run.family, run.profile.Name, res.MeanStalenessMS, res.MaxStalenessMS,
			res.JoinBytesPerLite, res.RoundBytesPerLite, float64(res.TotalWallMS)/1000)
		snap.Results = append(snap.Results, res)
	}
	var w io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&snap); err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("scale: %d violations across the matrix", failed)
	}
	return nil
}
