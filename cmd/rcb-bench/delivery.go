package main

// The -delivery mode runs the delivery ablation at the paper's 1-second
// interval — the staleness floor PR 2 left as the dominant latency — and
// writes a JSON snapshot (BENCH_delivery.json) demonstrating the long-poll
// channel delivering host changes in transfer time instead of interval/2,
// with idle traffic dropping to one request per hang. The snapshot also
// carries the upstream (action → mirror apply) staleness column: piggyback
// actions wait for the sender's request cycle — catastrophically so when
// the sender's long-poll is parked — while the fire-and-forget /action push
// delivers in transfer time.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"rcb/internal/core"
	"rcb/internal/experiment"
	"rcb/internal/sites"
)

// DeliverySnapshot is the BENCH_delivery.json document.
type DeliverySnapshot struct {
	Benchmark  string                       `json:"benchmark"`
	Site       string                       `json:"site"`
	GoVersion  string                       `json:"go_version"`
	GOMAXPROCS int                          `json:"gomaxprocs"`
	Results    []*experiment.DeliveryResult `json:"results"`
}

func writeDelivery(site, outPath string) error {
	spec, ok := sites.SiteByName(site)
	if !ok {
		return fmt.Errorf("unknown site %q", site)
	}
	snap := DeliverySnapshot{
		Benchmark:  "DeliveryStaleness",
		Site:       site,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	// The paper's interval (1s) against a long-poll hang comfortably past
	// the change gap, so every change lands on a parked request. The
	// downstream options of the first two runs match the PR 3 baseline, so
	// those columns stay comparable; the piggyback long-poll run times
	// fewer actions because each one deliberately waits out most of a 10s
	// hang (the gap the push run closes).
	runs := []struct {
		mode core.DeliveryMode
		opt  experiment.DeliveryOptions
	}{
		{core.DeliveryInterval, experiment.DeliveryOptions{
			Interval: time.Second, Changes: 5, Gap: 100 * time.Millisecond, Idle: 2 * time.Second,
			Actions: 3}},
		{core.DeliveryLongPoll, experiment.DeliveryOptions{
			Interval: time.Second, Wait: 10 * time.Second, Changes: 5, Gap: 100 * time.Millisecond, Idle: 2 * time.Second,
			Actions: 2}},
		{core.DeliveryLongPoll, experiment.DeliveryOptions{
			Interval: time.Second, Wait: 10 * time.Second, Changes: 5, Gap: 100 * time.Millisecond, Idle: 2 * time.Second,
			Actions: 5, ActionPush: true}},
		// The persistent channel: downstream and upstream ride one framed
		// socket, so both staleness columns sit at transfer time and the idle
		// window issues zero polling requests.
		{core.DeliveryDuplex, experiment.DeliveryOptions{
			Interval: time.Second, Changes: 5, Gap: 100 * time.Millisecond, Idle: 2 * time.Second,
			Actions: 5}},
	}
	for _, run := range runs {
		res, err := experiment.MeasureDelivery(spec, run.mode, run.opt)
		if err != nil {
			return err
		}
		snap.Results = append(snap.Results, res)
		fmt.Fprintf(os.Stderr, "rcb-bench: delivery/%s\tmean staleness %v\tmax %v\tmean action staleness %v\tpolls %d\tidle polls %d/%v\tidle bytes %d\n",
			res.Mode, res.MeanStaleness.Round(time.Microsecond), res.MaxStaleness.Round(time.Microsecond),
			res.MeanActionStaleness.Round(time.Microsecond), res.Polls, res.IdlePolls, res.IdleWindow, res.IdleBytes)
	}
	var w io.Writer = os.Stdout
	var f *os.File
	if outPath != "" {
		var err error
		if f, err = os.Create(outPath); err != nil {
			return err
		}
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	err := enc.Encode(snap)
	if f != nil {
		// A flush failure at Close would leave a truncated snapshot that
		// future PRs silently compare against; surface it.
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
