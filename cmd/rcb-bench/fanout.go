package main

// The -fanout mode benchmarks the RCB-Agent serve path in isolation —
// request classification, form parse, participant lookup, prepared-content
// cache, response assembly — as participant count scales, and writes a JSON
// snapshot (BENCH_fanout.json) so successive PRs can compare against a
// recorded baseline.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"rcb/internal/benchutil"
	"rcb/internal/browser"
	"rcb/internal/core"
	"rcb/internal/sites"
)

// FanoutResult is one (mode, participants) measurement.
type FanoutResult struct {
	Name         string  `json:"name"`
	Participants int     `json:"participants"`
	CacheMode    bool    `json:"cache_mode"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
}

// FanoutSnapshot is the BENCH_fanout.json document.
type FanoutSnapshot struct {
	Benchmark  string         `json:"benchmark"`
	Site       string         `json:"site"`
	GoVersion  string         `json:"go_version"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Results    []FanoutResult `json:"results"`
}

func writeFanout(site, outPath string) error {
	spec, ok := sites.SiteByName(site)
	if !ok {
		return fmt.Errorf("unknown site %q", site)
	}
	snap := FanoutSnapshot{
		Benchmark:  "FanoutScale",
		Site:       site,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, cache := range []bool{true, false} {
		for _, n := range []int{16, 64, 256} {
			res, err := benchFanout(spec, cache, n)
			if err != nil {
				return err
			}
			snap.Results = append(snap.Results, res)
			fmt.Fprintf(os.Stderr, "rcb-bench: %s\t%.0f ns/op\t%d allocs/op\t%d B/op\n",
				res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
		}
	}
	var w io.Writer = os.Stdout
	var f *os.File
	if outPath != "" {
		var err error
		if f, err = os.Create(outPath); err != nil {
			return err
		}
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	err := enc.Encode(snap)
	if f != nil {
		// A flush failure at Close would leave a truncated snapshot that
		// future PRs silently compare against; surface it.
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// benchFanout runs one configuration under testing.Benchmark: every
// iteration bumps the host document once and then serves one poll per
// participant, exactly like BenchmarkFanoutScale in the root test suite.
func benchFanout(spec sites.SiteSpec, cacheMode bool, participants int) (FanoutResult, error) {
	name := fmt.Sprintf("%s/participants-%d", modeLabel(cacheMode), participants)
	corpus, err := sites.NewCorpus()
	if err != nil {
		return FanoutResult{}, err
	}
	defer corpus.Close()
	host := browser.New("host.lan", corpus.Network.Dialer("host.lan"))
	defer host.Close()
	agent := core.NewAgent(host, "host.lan:3000")
	agent.DefaultCacheMode = cacheMode
	if _, err := host.Navigate("http://" + spec.Host() + "/"); err != nil {
		return FanoutResult{}, err
	}
	reqs, err := benchutil.RegisterPollers(agent, participants)
	if err != nil {
		return FanoutResult{}, err
	}

	var failure error
	tick := 0
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			tick++
			if err := benchutil.BumpDoc(host, tick); err != nil {
				failure = err
				b.FailNow()
			}
			b.StartTimer()
			if err := benchutil.ServeAll(agent, reqs); err != nil {
				failure = err
				b.FailNow()
			}
		}
	})
	if failure != nil {
		return FanoutResult{}, fmt.Errorf("%s: %w", name, failure)
	}
	return FanoutResult{
		Name:         name,
		Participants: participants,
		CacheMode:    cacheMode,
		NsPerOp:      float64(r.NsPerOp()),
		AllocsPerOp:  r.AllocsPerOp(),
		BytesPerOp:   r.AllocedBytesPerOp(),
	}, nil
}

func modeLabel(cache bool) string {
	if cache {
		return "cache"
	}
	return "noncache"
}
