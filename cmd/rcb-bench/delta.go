package main

// The -delta mode benchmarks the incremental deltaContent path against the
// full-snapshot path for one small host edit and writes a JSON snapshot
// (BENCH_delta.json) so successive PRs can compare: the isolated
// participant-side apply (unmarshal + install) in both modes, the bytes
// each mode puts on the wire, and the serve path for participants lagging
// 1..ring-depth builds behind the current one (the delta-base ring rows —
// base_lag says how far behind, ring_depth the configured retention).

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"rcb/internal/benchutil"
	"rcb/internal/browser"
	"rcb/internal/core"
	"rcb/internal/sites"
)

// DeltaResult is one apply-path or lagging-serve measurement.
type DeltaResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	WireBytes   int     `json:"wire_bytes"`
	RingDepth   int     `json:"ring_depth,omitempty"`
	BaseLag     int     `json:"base_lag,omitempty"`
}

// DeltaSnapshot is the BENCH_delta.json document.
type DeltaSnapshot struct {
	Benchmark  string        `json:"benchmark"`
	Site       string        `json:"site"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Results    []DeltaResult `json:"results"`
}

func writeDelta(site, outPath string) error {
	spec, ok := sites.SiteByName(site)
	if !ok {
		return fmt.Errorf("unknown site %q", site)
	}
	corpus, err := sites.NewCorpus()
	if err != nil {
		return err
	}
	defer corpus.Close()
	host := browser.New("host.lan", corpus.Network.Dialer("host.lan"))
	defer host.Close()
	agent := core.NewAgent(host, "host.lan:3000")
	if _, err := host.Navigate("http://" + spec.Host() + "/"); err != nil {
		return err
	}

	// The canonical small-edit exchange, shared with BenchmarkDeltaApply so
	// the snapshot and the go-test benchmark measure the same scenario.
	base, delta, full, err := benchutil.SmallEditDeltaScenario(host, agent)
	if err != nil {
		return err
	}
	baseContent, err := core.Unmarshal(base)
	if err != nil {
		return err
	}

	var failure error
	deltaBench := testing.Benchmark(func(b *testing.B) {
		doc := benchutil.ParticipantDoc()
		var memo core.ApplyMemo
		if err := memo.Apply(doc, baseContent); err != nil {
			failure = err
			b.FailNow()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d, err := core.UnmarshalDelta(delta)
			if err != nil {
				failure = err
				b.FailNow()
			}
			if err := memo.ApplyDelta(doc, d); err != nil {
				failure = err
				b.FailNow()
			}
		}
	})
	if failure != nil {
		return failure
	}
	fullBench := testing.Benchmark(func(b *testing.B) {
		doc := benchutil.ParticipantDoc()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c, err := core.Unmarshal(full)
			if err != nil {
				failure = err
				b.FailNow()
			}
			if err := core.ApplyContentToDocument(doc, c); err != nil {
				failure = err
				b.FailNow()
			}
		}
	})
	if failure != nil {
		return failure
	}

	snap := DeltaSnapshot{
		Benchmark:  "DeltaApply",
		Site:       site,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Results: []DeltaResult{
			{
				Name:        "apply/delta",
				NsPerOp:     float64(deltaBench.NsPerOp()),
				AllocsPerOp: deltaBench.AllocsPerOp(),
				BytesPerOp:  deltaBench.AllocedBytesPerOp(),
				WireBytes:   len(delta),
			},
			{
				Name:        "apply/full",
				NsPerOp:     float64(fullBench.NsPerOp()),
				AllocsPerOp: fullBench.AllocsPerOp(),
				BytesPerOp:  fullBench.AllocedBytesPerOp(),
				WireBytes:   len(full),
			},
		},
	}

	// Ring rows: the serve path at increasing base lag, same scenario as
	// BenchmarkDeltaRing. Lag ≤ ring depth rides the cached delta; one
	// further falls off the ring onto the full snapshot.
	const depth = core.DefaultDeltaRingDepth
	for _, lag := range []int{1, depth, depth + 1} {
		r, err := ringServeResult(corpus, spec, lag)
		if err != nil {
			return err
		}
		snap.Results = append(snap.Results, r)
	}

	for _, r := range snap.Results {
		fmt.Fprintf(os.Stderr, "rcb-bench: %s\t%.0f ns/op\t%d allocs/op\t%d B/op\t%d wire bytes\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.WireBytes)
	}

	var w io.Writer = os.Stdout
	return encodeDelta(snap, outPath, w)
}

func encodeDelta(snap DeltaSnapshot, outPath string, w io.Writer) error {
	var f *os.File
	var err error
	if outPath != "" {
		if f, err = os.Create(outPath); err != nil {
			return err
		}
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	err = enc.Encode(snap)
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ringServeResult measures one lagging participant's poll against a fresh
// session advanced lag builds past its ack, reporting the shared-cache serve
// cost and the bytes that poll puts on the wire.
func ringServeResult(corpus *sites.Corpus, spec sites.SiteSpec, lag int) (DeltaResult, error) {
	const depth = core.DefaultDeltaRingDepth
	host := browser.New("ringhost.lan", corpus.Network.Dialer("ringhost.lan"))
	defer host.Close()
	agent := core.NewAgent(host, "ringhost.lan:3000")
	if _, err := host.Navigate("http://" + spec.Host() + "/"); err != nil {
		return DeltaResult{}, err
	}
	pollers, err := benchutil.RegisterTrackedPollers(agent, 2)
	if err != nil {
		return DeltaResult{}, err
	}
	if err := benchutil.ServeAllTracked(agent, pollers); err != nil {
		return DeltaResult{}, err
	}
	current, laggard := pollers[0], pollers[1]
	base := laggard.DocTime()
	for tick := 1; tick <= lag; tick++ {
		if err := benchutil.BumpDoc(host, tick); err != nil {
			return DeltaResult{}, err
		}
		if _, err := current.Serve(agent); err != nil {
			return DeltaResult{}, err
		}
	}
	resp, err := laggard.ServeAt(agent, base)
	if err != nil {
		return DeltaResult{}, err
	}
	if isDelta := core.MessageIsDelta(resp.Body); isDelta != (lag <= depth) {
		return DeltaResult{}, fmt.Errorf("ring lag %d (depth %d): delta=%v", lag, depth, isDelta)
	}
	name := fmt.Sprintf("serve/ring-lag-%d", lag)
	if lag > depth {
		name += "-offring"
	}
	var failure error
	bench := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := laggard.ServeAt(agent, base); err != nil {
				failure = err
				b.FailNow()
			}
		}
	})
	if failure != nil {
		return DeltaResult{}, failure
	}
	return DeltaResult{
		Name:        name,
		NsPerOp:     float64(bench.NsPerOp()),
		AllocsPerOp: bench.AllocsPerOp(),
		BytesPerOp:  bench.AllocedBytesPerOp(),
		WireBytes:   len(resp.Body),
		RingDepth:   depth,
		BaseLag:     lag,
	}, nil
}
