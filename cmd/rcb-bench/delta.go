package main

// The -delta mode benchmarks the incremental deltaContent path against the
// full-snapshot path for one small host edit and writes a JSON snapshot
// (BENCH_delta.json) so successive PRs can compare: the isolated
// participant-side apply (unmarshal + install) in both modes, and the
// bytes each mode puts on the wire.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"rcb/internal/benchutil"
	"rcb/internal/browser"
	"rcb/internal/core"
	"rcb/internal/sites"
)

// DeltaResult is one apply-path measurement.
type DeltaResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	WireBytes   int     `json:"wire_bytes"`
}

// DeltaSnapshot is the BENCH_delta.json document.
type DeltaSnapshot struct {
	Benchmark  string        `json:"benchmark"`
	Site       string        `json:"site"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Results    []DeltaResult `json:"results"`
}

func writeDelta(site, outPath string) error {
	spec, ok := sites.SiteByName(site)
	if !ok {
		return fmt.Errorf("unknown site %q", site)
	}
	corpus, err := sites.NewCorpus()
	if err != nil {
		return err
	}
	defer corpus.Close()
	host := browser.New("host.lan", corpus.Network.Dialer("host.lan"))
	defer host.Close()
	agent := core.NewAgent(host, "host.lan:3000")
	if _, err := host.Navigate("http://" + spec.Host() + "/"); err != nil {
		return err
	}

	// The canonical small-edit exchange, shared with BenchmarkDeltaApply so
	// the snapshot and the go-test benchmark measure the same scenario.
	base, delta, full, err := benchutil.SmallEditDeltaScenario(host, agent)
	if err != nil {
		return err
	}
	baseContent, err := core.Unmarshal(base)
	if err != nil {
		return err
	}

	var failure error
	deltaBench := testing.Benchmark(func(b *testing.B) {
		doc := benchutil.ParticipantDoc()
		var memo core.ApplyMemo
		if err := memo.Apply(doc, baseContent); err != nil {
			failure = err
			b.FailNow()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d, err := core.UnmarshalDelta(delta)
			if err != nil {
				failure = err
				b.FailNow()
			}
			if err := memo.ApplyDelta(doc, d); err != nil {
				failure = err
				b.FailNow()
			}
		}
	})
	if failure != nil {
		return failure
	}
	fullBench := testing.Benchmark(func(b *testing.B) {
		doc := benchutil.ParticipantDoc()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c, err := core.Unmarshal(full)
			if err != nil {
				failure = err
				b.FailNow()
			}
			if err := core.ApplyContentToDocument(doc, c); err != nil {
				failure = err
				b.FailNow()
			}
		}
	})
	if failure != nil {
		return failure
	}

	snap := DeltaSnapshot{
		Benchmark:  "DeltaApply",
		Site:       site,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Results: []DeltaResult{
			{
				Name:        "apply/delta",
				NsPerOp:     float64(deltaBench.NsPerOp()),
				AllocsPerOp: deltaBench.AllocsPerOp(),
				BytesPerOp:  deltaBench.AllocedBytesPerOp(),
				WireBytes:   len(delta),
			},
			{
				Name:        "apply/full",
				NsPerOp:     float64(fullBench.NsPerOp()),
				AllocsPerOp: fullBench.AllocsPerOp(),
				BytesPerOp:  fullBench.AllocedBytesPerOp(),
				WireBytes:   len(full),
			},
		},
	}
	for _, r := range snap.Results {
		fmt.Fprintf(os.Stderr, "rcb-bench: %s\t%.0f ns/op\t%d allocs/op\t%d B/op\t%d wire bytes\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.WireBytes)
	}

	var w io.Writer = os.Stdout
	var f *os.File
	if outPath != "" {
		if f, err = os.Create(outPath); err != nil {
			return err
		}
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	err = enc.Encode(snap)
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
