// Command rcb-bench regenerates the paper's evaluation artifacts: Figures
// 6, 7 and 8, Table 1, the shape-check summary, and the ablation suite.
//
// Usage:
//
//	rcb-bench -all                 # everything
//	rcb-bench -figure 6            # one figure (6, 7 or 8)
//	rcb-bench -table 1             # Table 1
//	rcb-bench -shapes              # paper-claim shape checks
//	rcb-bench -ablation -site cnn.com
//	rcb-bench -fanout -out BENCH_fanout.json       # agent serve-path scaling snapshot
//	rcb-bench -delivery -out BENCH_delivery.json   # interval vs long-poll staleness snapshot
//	rcb-bench -delta -out BENCH_delta.json         # delta vs full apply-path snapshot
//	rcb-bench -scale -out BENCH_scale.json         # scenario-lab scale snapshot (SCENLAB_N sizes it)
package main

import (
	"flag"
	"fmt"
	"os"

	"rcb/internal/experiment"
)

func main() {
	figure := flag.Int("figure", 0, "regenerate figure 6, 7 or 8")
	table := flag.Int("table", 0, "regenerate table 1")
	shapes := flag.Bool("shapes", false, "run the paper-claim shape checks")
	ablation := flag.Bool("ablation", false, "run the ablation suite")
	mobile := flag.Bool("mobile", false, "run the Fennec/N810 mobile experiment (paper §6)")
	fanout := flag.Bool("fanout", false, "benchmark the agent serve path at 16/64/256 participants")
	delivery := flag.Bool("delivery", false, "measure interval-poll vs long-poll staleness and request counts")
	delta := flag.Bool("delta", false, "benchmark the delta vs full apply path for a small edit")
	scale := flag.Bool("scale", false, "run the scenario-lab scale matrix (SCENLAB_N participants per family)")
	out := flag.String("out", "", "write fanout/delivery/delta results as JSON to this file (default stdout; -all defaults to BENCH_fanout.json)")
	all := flag.Bool("all", false, "regenerate everything")
	site := flag.String("site", "google.com", "site for -ablation and -fanout")
	reps := flag.Int("reps", 3, "repetitions for M5/M6 measurements")
	flag.Parse()

	if *fanout {
		if err := writeFanout(*site, *out); err != nil {
			fatal(err)
		}
		return
	}
	if *delivery {
		if err := writeDelivery(*site, *out); err != nil {
			fatal(err)
		}
		return
	}
	if *delta {
		if err := writeDelta(*site, *out); err != nil {
			fatal(err)
		}
		return
	}
	if *scale {
		if err := writeScale(*out); err != nil {
			fatal(err)
		}
		return
	}
	if *all {
		// -all regenerates every artifact, including the serve-path
		// scaling and delivery-staleness snapshots future perf PRs
		// compare against.
		outPath := *out
		if outPath == "" {
			outPath = "BENCH_fanout.json"
		}
		defer func() {
			if err := writeFanout(*site, outPath); err != nil {
				fatal(err)
			}
			if err := writeDelivery(*site, "BENCH_delivery.json"); err != nil {
				fatal(err)
			}
			// Pinned to msn.com: the checked-in BENCH_delta.json baseline
			// (and the Makefile bench target) measure that page, so -all
			// must not silently rewrite it against a different site.
			if err := writeDelta("msn.com", "BENCH_delta.json"); err != nil {
				fatal(err)
			}
		}()
	}
	if !*all && *figure == 0 && *table == 0 && !*shapes && !*ablation && !*mobile {
		flag.Usage()
		os.Exit(2)
	}
	opt := experiment.Options{Reps: *reps}

	var lan, wan []*experiment.SiteResult
	needLAN := *all || *figure == 6 || *figure == 8 || *table == 1 || *shapes
	needWAN := *all || *figure == 7 || *shapes
	var err error
	if needLAN {
		fmt.Fprintln(os.Stderr, "running LAN pipeline over the 20-site corpus...")
		if lan, err = experiment.RunAll(experiment.LAN, opt); err != nil {
			fatal(err)
		}
	}
	if needWAN {
		fmt.Fprintln(os.Stderr, "running WAN pipeline over the 20-site corpus...")
		if wan, err = experiment.RunAll(experiment.WAN, opt); err != nil {
			fatal(err)
		}
	}

	if *all || *figure == 6 {
		experiment.WriteFigure67(os.Stdout, "Figure 6: LAN", lan)
		fmt.Println()
	}
	if *all || *figure == 7 {
		experiment.WriteFigure67(os.Stdout, "Figure 7: WAN", wan)
		fmt.Println()
	}
	if *all || *figure == 8 {
		experiment.WriteFigure8(os.Stdout, "LAN", lan)
		fmt.Println()
	}
	if *all || *table == 1 {
		experiment.WriteTable1(os.Stdout, lan)
		fmt.Println()
	}
	if *all || *shapes {
		fmt.Println("Shape checks (paper claims vs this reproduction):")
		for _, line := range experiment.ShapeChecks(lan, wan) {
			fmt.Println("  " + line)
		}
		fmt.Println()
	}
	if *all || *ablation {
		if err := experiment.WriteAblations(os.Stdout, *site, experiment.LAN); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if *all || *mobile {
		names := []string{"google.com", "msn.com", "yahoo.com", "amazon.com"}
		if err := experiment.WriteMobile(os.Stdout, names, experiment.N810, opt); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rcb-bench:", err)
	os.Exit(1)
}
