// Maps: the paper's first usability scenario (§5.2.1) — Bob shows Alice the
// way to the Cartier store on Fifth Avenue using the Ajax maps application.
// Every zoom, pan and search changes the page content without changing the
// URL; RCB synchronizes the content anyway, which is exactly what URL
// sharing cannot do (demonstrated at the end with the baseline).
//
// Run with: go run ./examples/maps
package main

import (
	"fmt"
	"log"

	"rcb/internal/baseline"
	"rcb/internal/browser"
	"rcb/internal/core"
	"rcb/internal/dom"
	"rcb/internal/httpwire"
	"rcb/internal/sites"
)

func main() {
	corpus, err := sites.NewCorpus()
	if err != nil {
		log.Fatal(err)
	}
	defer corpus.Close()

	// Bob hosts.
	bob := browser.New("bob.lan", corpus.Network.Dialer("bob.lan"))
	defer bob.Close()
	agent := core.NewAgent(bob, "bob.lan:3000")
	agent.DefaultCacheMode = true
	l, err := corpus.Network.Listen("bob.lan:3000")
	if err != nil {
		log.Fatal(err)
	}
	server := &httpwire.Server{Handler: agent}
	server.Start(l)
	defer server.Close()

	// Alice joins.
	ab := browser.New("alice.lan", corpus.Network.Dialer("alice.lan"))
	defer ab.Close()
	alice := core.NewSnippet(ab, "http://bob.lan:3000", "")
	alice.OnUserAction = func(a core.Action) {
		if a.Kind == core.ActionMouseMove {
			fmt.Printf("  alice sees bob's pointer at (%d,%d)\n", a.X, a.Y)
		}
	}
	if err := alice.Join(); err != nil {
		log.Fatal(err)
	}

	// Bob opens the maps app and searches the store address.
	if _, err := bob.Navigate("http://" + sites.MapsHost + "/"); err != nil {
		log.Fatal(err)
	}
	ops := sites.MapsOps{Addr: sites.MapsHost, Client: bob.Client}
	step := func(name string, fn func(doc *dom.Document) error) {
		if err := bob.ApplyMutation(fn); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if _, err := alice.PollOnce(); err != nil {
			log.Fatalf("%s sync: %v", name, err)
		}
		fmt.Printf("bob %-28s alice sees %q\n", name, aliceStatus(alice))
	}

	if _, err := alice.PollOnce(); err != nil {
		log.Fatal(err)
	}
	step(`searches "653 5th Ave"`, func(d *dom.Document) error { return ops.Search(d, "653 5th Ave, New York") })
	step("zooms in", func(d *dom.Document) error { return ops.Zoom(d, 1) })
	step("pans east", func(d *dom.Document) error { return ops.Pan(d, 1, 0) })
	step("opens street view", ops.OpenStreetView)

	// Bob points at the meeting spot; Alice's next poll mirrors it.
	agent.HostAction(core.Action{Kind: core.ActionMouseMove, X: 384, Y: 212})
	if _, err := alice.PollOnce(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("they agree to meet outside the four red roof show-windows.")

	// Contrast: URL sharing cannot reproduce Bob's view.
	carol := browser.New("carol.lan", corpus.Network.Dialer("carol.lan"))
	defer carol.Close()
	share := baseline.URLShare{Host: bob, Participant: carol}
	res := share.ShareCurrent()
	fmt.Printf("\nURL-sharing baseline: %s\n", res.DescribeFailure())
}

func aliceStatus(s *core.Snippet) string {
	status := "?"
	_ = s.Browser.WithDocument(func(_ string, doc *dom.Document) error {
		if el := doc.ByID("status"); el != nil {
			status = el.TextContent()
		}
		return nil
	})
	return status
}
