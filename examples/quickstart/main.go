// Quickstart: the smallest complete RCB co-browsing session, in process.
//
// A host browser loads a page, RCB-Agent serves it, one participant joins
// with nothing but "a regular browser" (the participant browser model plus
// the Ajax-Snippet state machine), and the page — plus a live update —
// synchronizes.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rcb/internal/browser"
	"rcb/internal/core"
	"rcb/internal/dom"
	"rcb/internal/httpwire"
	"rcb/internal/sites"
)

func main() {
	// A virtual internet with the 20-site corpus, the maps app and the shop.
	corpus, err := sites.NewCorpus()
	if err != nil {
		log.Fatal(err)
	}
	defer corpus.Close()

	// The host side: a browser plus the RCB-Agent extension listening on an
	// open TCP port (paper step 1).
	host := browser.New("host.lan", corpus.Network.Dialer("host.lan"))
	defer host.Close()
	agent := core.NewAgent(host, "host.lan:3000")
	agent.DefaultCacheMode = true
	l, err := corpus.Network.Listen("host.lan:3000")
	if err != nil {
		log.Fatal(err)
	}
	server := &httpwire.Server{Handler: agent}
	server.Start(l)
	defer server.Close()

	// The host browses somewhere.
	if _, err := host.Navigate("http://www.google.com:80/"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("host is on:", host.URL())

	// The participant side: type the agent URL into a regular browser
	// (paper step 2) and let Ajax-Snippet poll.
	pb := browser.New("alice.lan", corpus.Network.Dialer("alice.lan"))
	defer pb.Close()
	snippet := core.NewSnippet(pb, "http://host.lan:3000", "")
	if err := snippet.Join(); err != nil {
		log.Fatal(err)
	}
	if _, err := snippet.PollOnce(); err != nil {
		log.Fatal(err)
	}
	printParticipantView(snippet, "after first sync")

	// The host navigates; the next poll carries the new page.
	if _, err := host.Navigate("http://www.apple.com:80/"); err != nil {
		log.Fatal(err)
	}
	if _, err := snippet.PollOnce(); err != nil {
		log.Fatal(err)
	}
	printParticipantView(snippet, "after host navigation")

	st := snippet.Stats()
	fmt.Printf("\nsnippet stats: %d polls, %d content updates, %d objects fetched (%d from host cache)\n",
		st.Polls, st.ContentPolls, st.ObjectFetches, st.ObjectsFromAgent)
	fmt.Printf("participant address bar never left: %s\n", snippet.Browser.URL())
}

func printParticipantView(s *core.Snippet, when string) {
	err := s.Browser.WithDocument(func(_ string, doc *dom.Document) error {
		title := "(none)"
		if el := doc.Head().FirstChildElement("title"); el != nil {
			title = el.TextContent()
		}
		fmt.Printf("%-24s participant sees title %q, %d body nodes\n",
			when+":", title, doc.Body().CountNodes())
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
