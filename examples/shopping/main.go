// Shopping: the paper's second usability scenario (§5.2.2) — Bob and Alice
// co-shop at the session-protected store. Alice browses and picks a laptop
// from her own browser (her clicks route through Bob's session), co-fills
// the shipping form, and Bob places the order. The same flow is impossible
// with URL sharing because the cart lives in Bob's server-side session.
//
// Run with: go run ./examples/shopping
package main

import (
	"fmt"
	"log"
	"strings"

	"rcb/internal/browser"
	"rcb/internal/core"
	"rcb/internal/dom"
	"rcb/internal/httpwire"
	"rcb/internal/sites"
)

func main() {
	corpus, err := sites.NewCorpus()
	if err != nil {
		log.Fatal(err)
	}
	defer corpus.Close()

	bob := browser.New("bob.lan", corpus.Network.Dialer("bob.lan"))
	defer bob.Close()
	agent := core.NewAgent(bob, "bob.lan:3000")
	l, err := corpus.Network.Listen("bob.lan:3000")
	if err != nil {
		log.Fatal(err)
	}
	server := &httpwire.Server{Handler: agent}
	server.Start(l)
	defer server.Close()

	ab := browser.New("alice.lan", corpus.Network.Dialer("alice.lan"))
	defer ab.Close()
	alice := core.NewSnippet(ab, "http://bob.lan:3000", "")
	if err := alice.Join(); err != nil {
		log.Fatal(err)
	}

	// Bob opens the shop (his browser gets the session cookie) and searches.
	mustNavigate(bob, "http://"+sites.ShopHost+"/")
	mustPoll(alice)
	var search *dom.Node
	_ = bob.WithDocument(func(_ string, doc *dom.Document) error {
		search = doc.ByID("search")
		return nil
	})
	if _, err := bob.SubmitForm(search, []httpwire.FormField{{Name: "q", Value: "macbook air"}}); err != nil {
		log.Fatal(err)
	}
	mustPoll(alice)
	fmt.Println("bob searched; alice sees the same results page")

	// Alice picks the SSD model from HER browser; the click is carried back
	// by her poll and performed by Bob's browser against the shop.
	if err := alice.ClickElement("result-2"); err != nil {
		log.Fatal(err)
	}
	mustPoll(alice)
	fmt.Printf("alice clicked result-2; bob's browser is now at %s\n", bob.URL())

	// Bob adds it to the cart (session state!) and opens checkout.
	var addForm *dom.Node
	_ = bob.WithDocument(func(_ string, doc *dom.Document) error {
		addForm = doc.ByID("addtocart")
		return nil
	})
	if _, err := bob.SubmitForm(addForm, core.FormFields(addForm)); err != nil {
		log.Fatal(err)
	}
	mustNavigate(bob, "http://"+sites.ShopHost+"/checkout")
	mustPoll(alice)
	fmt.Println("bob reached checkout; alice sees the shipping form")

	// Alice co-fills the shipping form from her side.
	err = alice.SubmitFormByID("shipping", []httpwire.FormField{
		{Name: "name", Value: "Alice Cousin"},
		{Name: "street", Value: "653 5th Ave"},
		{Name: "city", Value: "New York"},
		{Name: "zip", Value: "10022"},
	})
	if err != nil {
		log.Fatal(err)
	}
	mustPoll(alice)

	// Bob's live form now carries Alice's data; he submits it.
	var shipping *dom.Node
	var fields []httpwire.FormField
	_ = bob.WithDocument(func(_ string, doc *dom.Document) error {
		shipping = doc.ByID("shipping")
		fields = core.FormFields(shipping)
		return nil
	})
	fmt.Printf("bob's form was co-filled: %v\n", fieldSummary(fields))
	if _, err := bob.SubmitForm(shipping, fields); err != nil {
		log.Fatal(err)
	}
	mustPoll(alice)

	confirmed := "?"
	_ = bob.WithDocument(func(_ string, doc *dom.Document) error {
		if el := doc.ByID("confirm"); el != nil {
			confirmed = el.TextContent()
		}
		return nil
	})
	fmt.Printf("order placed: %q — and alice's view shows the same confirmation\n", confirmed)

	sid, _ := bob.Jar.Get("shop.example", "sid")
	fmt.Printf("server-side record: shipping name = %q (session %s)\n",
		corpus.Shop.ShippingField(sid, "name"), sid)
}

func mustNavigate(b *browser.Browser, url string) {
	if _, err := b.Navigate(url); err != nil {
		log.Fatal(err)
	}
}

func mustPoll(s *core.Snippet) {
	if _, err := s.PollOnce(); err != nil {
		log.Fatal(err)
	}
}

func fieldSummary(fields []httpwire.FormField) string {
	var parts []string
	for _, f := range fields {
		if f.Value != "" {
			parts = append(parts, f.Name+"="+f.Value)
		}
	}
	return strings.Join(parts, ", ")
}
