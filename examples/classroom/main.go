// Classroom: the paper's online-training application — one instructor hosts
// a moderated session for several students (paper §3.3: a tightly coupled
// session presided over by the host, with a policy deciding who may act).
// Students watch in read-only mode, their pointer activity still mirrors,
// and an attempted student navigation is denied by policy. One student is
// flipped to cache mode mid-session, showing per-participant mode control.
//
// Run with: go run ./examples/classroom
package main

import (
	"fmt"
	"log"

	"rcb/internal/browser"
	"rcb/internal/core"
	"rcb/internal/dom"
	"rcb/internal/httpwire"
	"rcb/internal/sites"
)

const students = 4

func main() {
	corpus, err := sites.NewCorpus()
	if err != nil {
		log.Fatal(err)
	}
	defer corpus.Close()

	instructor := browser.New("instructor.lan", corpus.Network.Dialer("instructor.lan"))
	defer instructor.Close()
	agent := core.NewAgent(instructor, "instructor.lan:3000")
	agent.Policy = core.ReadOnlyPolicy()
	l, err := corpus.Network.Listen("instructor.lan:3000")
	if err != nil {
		log.Fatal(err)
	}
	server := &httpwire.Server{Handler: agent}
	server.Start(l)
	defer server.Close()

	// The class joins.
	class := make([]*core.Snippet, students)
	for i := range class {
		name := fmt.Sprintf("student%d.lan", i+1)
		sb := browser.New(name, corpus.Network.Dialer(name))
		defer sb.Close()
		class[i] = core.NewSnippet(sb, "http://instructor.lan:3000", "")
		if err := class[i].Join(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%d students connected: %d participants registered on the agent\n",
		students, len(agent.Participants()))

	// Flip student 1 into cache mode: it will fetch objects from the
	// instructor's browser instead of the origin.
	if err := agent.SetParticipantMode("p1", true); err != nil {
		log.Fatal(err)
	}

	// The instructor walks the class through two course pages.
	for _, url := range []string{
		"http://www.wikipedia.org:80/",
		"http://www.wikipedia.org:80/section/1",
	} {
		if _, err := instructor.Navigate(url); err != nil {
			log.Fatal(err)
		}
		for i, s := range class {
			if _, err := s.PollOnce(); err != nil {
				log.Fatalf("student %d: %v", i+1, err)
			}
		}
		fmt.Printf("instructor showed %-40s class synced\n", url)
	}
	st := class[0].Stats()
	fmt.Printf("student 1 fetched %d/%d objects from the instructor's cache\n",
		st.ObjectsFromAgent, st.ObjectFetches)

	// A student tries to navigate the class away: read-only policy drops it.
	before := instructor.URL()
	var linkPath string
	err = class[1].Browser.WithDocument(func(_ string, doc *dom.Document) error {
		link := doc.Root.Find(func(n *dom.Node) bool {
			return n.Tag == "a" && n.HasAttr(core.RCBAttr)
		})
		if link == nil {
			return fmt.Errorf("no clickable link on the student's page")
		}
		linkPath = link.AttrOr(core.RCBAttr, "")
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	class[1].QueueAction(core.Action{Kind: core.ActionClick, Target: linkPath})
	if _, err := class[1].PollOnce(); err != nil {
		log.Fatal(err)
	}
	if instructor.URL() != before {
		log.Fatal("policy failed: student navigated the instructor")
	}
	fmt.Println("student 2's click was denied by the read-only policy")

	// Pointer mirroring still flows: the instructor highlights a line and
	// every student sees it.
	seen := 0
	for _, s := range class {
		s.OnUserAction = func(a core.Action) {
			if a.Kind == core.ActionMouseMove && a.From == "host" {
				seen++
			}
		}
	}
	agent.HostAction(core.Action{Kind: core.ActionMouseMove, X: 100, Y: 60})
	for _, s := range class {
		if _, err := s.PollOnce(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("instructor's pointer mirrored to %d/%d students\n", seen, students)
}
