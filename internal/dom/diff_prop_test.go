package dom

// Property-based round-trip harness for the diff/patch subsystem: generate a
// random DOM tree, run a random mutation script against a clone, and assert
// that Apply(old, Diff(old, new)) serializes byte-identically to new. The
// generator deliberately produces hostile shapes — keyed and unkeyed
// siblings, duplicate ids, raw-text and void elements, unicode and
// metacharacter text — because the delta protocol's correctness rests
// entirely on this invariant holding for arbitrary trees.

import (
	"fmt"
	"math/rand"
	"testing"
)

var genTags = []string{"div", "span", "p", "ul", "li", "table", "tr", "td", "a", "b", "i", "em", "h1", "form", "input", "img", "br", "script", "style", "title"}

var genAttrNames = []string{"class", "href", "src", "data-x", "title", "value", "style", "name"}

var genTextPieces = []string{
	"hello", "world", "  ", "\n", "a&b", "x<y", "quote\"s", "it's",
	"ünïcødé ✓", "tab\tsep", "0", "long run of plain words here",
}

// genValue builds a short random string, including metacharacters.
func genValue(r *rand.Rand) string {
	n := r.Intn(3) + 1
	s := ""
	for i := 0; i < n; i++ {
		s += genTextPieces[r.Intn(len(genTextPieces))]
	}
	return s
}

// genTree builds a random subtree. ids issues document-unique id attributes
// so keyed matching gets exercised; one in eight keyed elements reuses a
// previous id to stress duplicate keys.
func genTree(r *rand.Rand, depth int, ids *int) *Node {
	switch r.Intn(10) {
	case 0:
		return NewComment(genValue(r))
	case 1, 2:
		return NewText(genValue(r))
	}
	el := NewElement(genTags[r.Intn(len(genTags))])
	for i := r.Intn(3); i > 0; i-- {
		el.SetAttr(genAttrNames[r.Intn(len(genAttrNames))], genValue(r))
	}
	if r.Intn(3) == 0 {
		*ids++
		id := *ids
		if id > 8 && r.Intn(8) == 0 {
			id = r.Intn(id) + 1 // deliberate duplicate key
		}
		el.SetAttr("id", fmt.Sprintf("k%d", id))
	}
	if IsVoid(el.Tag) {
		return el
	}
	if IsRawText(el.Tag) {
		if r.Intn(2) == 0 {
			el.AppendChild(NewText(genValue(r)))
		}
		return el
	}
	if depth > 0 {
		for i := r.Intn(4); i > 0; i-- {
			el.AppendChild(genTree(r, depth-1, ids))
		}
	}
	return el
}

// genDocument builds a random full tree under an <html> root.
func genDocument(r *rand.Rand) *Node {
	ids := 0
	root := NewElement("html")
	for i := r.Intn(5) + 1; i > 0; i-- {
		root.AppendChild(genTree(r, 3, &ids))
	}
	return root
}

// allNodes collects the subtree in document order.
func allNodes(root *Node) []*Node {
	var out []*Node
	root.Walk(func(n *Node) bool { out = append(out, n); return true })
	return out
}

// inSubtree reports whether n is root or a descendant of root.
func inSubtree(root, n *Node) bool {
	for cur := n; cur != nil; cur = cur.Parent {
		if cur == root {
			return true
		}
	}
	return false
}

// mutate applies one random mutation to the tree; it reports false when the
// chosen mutation was not applicable (caller retries).
func mutate(r *rand.Rand, root *Node, ids *int) bool {
	nodes := allNodes(root)
	n := nodes[r.Intn(len(nodes))]
	switch r.Intn(7) {
	case 0: // set attribute
		if n.Type != ElementNode {
			return false
		}
		n.SetAttr(genAttrNames[r.Intn(len(genAttrNames))], genValue(r))
	case 1: // delete attribute
		if n.Type != ElementNode || len(n.Attrs) == 0 {
			return false
		}
		n.DelAttr(n.Attrs[r.Intn(len(n.Attrs))].Name)
	case 2: // edit text
		if n.Type != TextNode && n.Type != CommentNode {
			return false
		}
		n.Data = genValue(r)
	case 3: // insert subtree
		if n.Type != ElementNode || IsVoid(n.Tag) || IsRawText(n.Tag) {
			return false
		}
		c := genTree(r, 2, ids)
		if len(n.Children) == 0 {
			n.AppendChild(c)
		} else {
			n.InsertBefore(c, n.Children[r.Intn(len(n.Children))])
		}
	case 4: // remove subtree
		if n.Parent == nil {
			return false
		}
		n.Parent.RemoveChild(n)
	case 5: // move subtree elsewhere
		if n.Parent == nil {
			return false
		}
		dest := nodes[r.Intn(len(nodes))]
		if dest.Type != ElementNode || IsVoid(dest.Tag) || IsRawText(dest.Tag) || inSubtree(n, dest) {
			return false
		}
		n.Parent.RemoveChild(n)
		if len(dest.Children) == 0 {
			dest.AppendChild(n)
		} else {
			dest.InsertBefore(n, dest.Children[r.Intn(len(dest.Children))])
		}
	case 6: // swap two sibling positions (reorder)
		if n.Type != ElementNode || len(n.Children) < 2 {
			return false
		}
		i, j := r.Intn(len(n.Children)), r.Intn(len(n.Children))
		n.Children[i], n.Children[j] = n.Children[j], n.Children[i]
	}
	return true
}

// TestDiffApplyPropertyRoundTrip is the ≥1k-case harness: for each seed,
// generate a tree, mutate a clone 1–8 times, and require the diff script to
// reproduce the mutated tree byte-for-byte when applied to the original.
func TestDiffApplyPropertyRoundTrip(t *testing.T) {
	const cases = 1200
	for seed := 0; seed < cases; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		ids := 0
		old := genDocument(r)
		new := old.Clone()
		muts := r.Intn(8) + 1
		for applied := 0; applied < muts; {
			if mutate(r, new, &ids) {
				applied++
			}
		}
		oldHTML := OuterHTML(old)
		wantHTML := OuterHTML(new)

		patches := Diff(old, new)
		if err := Apply(old, patches); err != nil {
			t.Fatalf("seed %d: Apply: %v\nold: %s\nnew: %s", seed, err, oldHTML, wantHTML)
		}
		if got := OuterHTML(old); got != wantHTML {
			t.Fatalf("seed %d: round trip diverged\n old: %s\n got: %s\nwant: %s\npatches: %+v",
				seed, oldHTML, got, wantHTML, patches)
		}
		// Diff must never alias the new tree: the applied old tree and new
		// must not share nodes (a shared node would let a later mutation of
		// one corrupt the other).
		seen := map[*Node]bool{}
		for _, n := range allNodes(new) {
			seen[n] = true
		}
		for _, n := range allNodes(old) {
			if seen[n] {
				t.Fatalf("seed %d: applied tree aliases a node of the new tree", seed)
			}
		}
	}
}

// TestDiffApplyPropertyAcrossIndependentTrees diffs two unrelated random
// trees — the worst case for alignment — and still requires convergence.
func TestDiffApplyPropertyAcrossIndependentTrees(t *testing.T) {
	for seed := 0; seed < 300; seed++ {
		r := rand.New(rand.NewSource(int64(seed) + 1_000_000))
		old := genDocument(r)
		new := genDocument(r)
		want := OuterHTML(new)
		patches := Diff(old, new)
		if err := Apply(old, patches); err != nil {
			t.Fatalf("seed %d: Apply: %v", seed, err)
		}
		if got := OuterHTML(old); got != want {
			t.Fatalf("seed %d: independent trees diverged\n got: %s\nwant: %s", seed, got, want)
		}
	}
}

// TestDiffPatchCountStaysProportional is the quality guard: a single small
// mutation on a sizable tree must not explode into a whole-tree rewrite.
func TestDiffPatchCountStaysProportional(t *testing.T) {
	for seed := 0; seed < 200; seed++ {
		r := rand.New(rand.NewSource(int64(seed) + 2_000_000))
		ids := 0
		old := genDocument(r)
		new := old.Clone()
		for !mutate(r, new, &ids) {
		}
		patches := Diff(old, new)
		if len(patches) > 4 {
			t.Fatalf("seed %d: one mutation produced %d patches: %+v", seed, len(patches), patches)
		}
		if err := Apply(old, patches); err != nil {
			t.Fatal(err)
		}
	}
}
