package dom

// Go native fuzz targets for the parser and the diff/patch engine. Seed
// corpora live under testdata/fuzz/<Target>/ and are exercised by plain
// `go test`; `make fuzz` runs each target briefly with mutation.

import "testing"

// fuzzSizeCap bounds inputs so the fuzzer explores structure rather than
// timing out on megabyte text runs.
const fuzzSizeCap = 1 << 16

// FuzzParse checks the parser invariants the rest of the system leans on:
// Parse never panics on arbitrary bytes, and serialization is stable — the
// first Parse may normalize (skeleton fixup, attribute quoting), but from
// then on parse→serialize is a fixed point. The delta protocol's path
// addressing relies on this: a participant tree built by re-parsing a
// serialized host tree must keep re-serializing identically.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"<html><head><title>t</title></head><body><p>hi</p></body></html>",
		"<div class=x>a<b>c",
		"<!DOCTYPE html><html><body>&amp;&#65;&bogus;<br/></body></html>",
		"text only, no markup at all",
		"<script>if (a < b) { run(); }</script>",
		"<ul><li>one<li>two<table><tr><td>x<td>y</table>",
		"< lone bracket <2not-a-tag </> <a href='q&quot;v'>link</a>",
		"<!-- unterminated comment",
		"<frameset><frame src=a.html></frameset><noframes>nope</noframes>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > fuzzSizeCap {
			t.Skip()
		}
		h1 := Parse(src).HTML()
		h2 := Parse(h1).HTML()
		h3 := Parse(h2).HTML()
		if h2 != h3 {
			t.Errorf("parse→serialize not stable:\n h2: %q\n h3: %q\nsrc: %q", h2, h3, src)
		}
	})
}

// FuzzDiffApply checks convergence on fuzzed tree pairs: for any two parsed
// documents, applying Diff's script to the first must reproduce the second's
// serialization exactly, and Apply must never reject its own engine's
// output.
func FuzzDiffApply(f *testing.F) {
	seeds := [][2]string{
		{"<html><body><p>a</p></body></html>", "<html><body><p>b</p></body></html>"},
		{"<div id=k1>x</div>", "<p id=k2>y</p><div id=k1>x</div>"},
		{"<ul><li>1<li>2<li>3</ul>", "<ul><li>3<li>1</ul>"},
		{"<script>a<b</script>", "<style>.x{}</style>"},
		{"plain text", "<b>now markup</b> and text"},
		{"<table><tr><td>a</table>", "<table><tr><td>a<td>b</table>"},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1])
	}
	f.Fuzz(func(t *testing.T, a, b string) {
		if len(a) > fuzzSizeCap || len(b) > fuzzSizeCap {
			t.Skip()
		}
		da, db := Parse(a), Parse(b)
		want := OuterHTML(db.Root)
		patches := Diff(da.Root, db.Root)
		if err := Apply(da.Root, patches); err != nil {
			t.Fatalf("Apply rejected Diff output: %v\na: %q\nb: %q", err, a, b)
		}
		if got := OuterHTML(da.Root); got != want {
			t.Errorf("diff/apply diverged:\n got: %q\nwant: %q\na: %q\nb: %q", got, want, a, b)
		}
	})
}
