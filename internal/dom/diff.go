package dom

// Incremental tree diff and patch: the delta discipline behind RCB's
// deltaContent protocol. Diff compares two trees and produces a minimal-ish
// edit script of structural operations; Apply replays that script against a
// tree that is byte-identical to the old side. The pair is exact — patches
// carry whole subtrees as nodes, never as re-parsed HTML — so
// Apply(old, Diff(old, new)) reproduces new's serialization for arbitrary
// trees, a property the diff_prop_test harness and FuzzDiffApply enforce.
//
// Paths address nodes by child index over ALL children (text and comment
// nodes included), root-first, dot-separated ("1.0.3"; the root itself is
// ""). They differ from core.ElementPath, which counts element children
// only: patch paths must be able to name a text node. Every path and insert
// index in an edit script is valid at the moment its patch is applied, so a
// script is replayed front to back with no bookkeeping.

import (
	"fmt"
	"strconv"
	"strings"
)

// PatchOp enumerates the edit operations a Diff script uses.
type PatchOp uint8

const (
	// OpSetAttrs replaces the full attribute list of the element at Path.
	OpSetAttrs PatchOp = iota
	// OpSetText replaces the Data of the text/comment/doctype node at Path.
	OpSetText
	// OpRemove detaches the node at Path from its parent.
	OpRemove
	// OpInsert inserts Node as a child of the element at Path, at Index.
	OpInsert
	// OpReplace swaps the node at Path for Node in place.
	OpReplace
)

// String returns a short mnemonic for the op, used in error messages.
func (op PatchOp) String() string {
	switch op {
	case OpSetAttrs:
		return "set-attrs"
	case OpSetText:
		return "set-text"
	case OpRemove:
		return "remove"
	case OpInsert:
		return "insert"
	case OpReplace:
		return "replace"
	}
	return fmt.Sprintf("PatchOp(%d)", int(op))
}

// Patch is one edit operation. Which fields are meaningful depends on Op:
// Attrs for OpSetAttrs, Text for OpSetText, Index and Node for OpInsert,
// Node for OpReplace. Subtrees in Node are owned by the patch: Apply
// attaches them directly, so a patch list must be applied at most once.
type Patch struct {
	Op    PatchOp
	Path  string // target node; for OpInsert, the parent element
	Index int    // OpInsert: child slot in the parent at apply time
	Text  string // OpSetText payload
	Attrs []Attr // OpSetAttrs payload
	Node  *Node  // OpInsert/OpReplace subtree (detached, owned by the patch)
}

// Diff computes an edit script that transforms a tree serialization-equal to
// old into one serialization-equal to new. Children are aligned with a
// longest-common-subsequence over shallow compatibility — same node type,
// same tag, and (when either side carries an id attribute) the same id — so
// keyed subtrees that moved are re-matched rather than rebuilt, and edits
// inside a matched subtree recurse instead of replacing it. Subtrees carried
// by insert/replace patches are deep clones: Diff never aliases new.
//
// old and new are not mutated. If the roots themselves are incompatible the
// script is a single OpReplace at the root path, which Apply performs by
// morphing the root in place (the caller's *Node stays valid).
func Diff(old, new *Node) []Patch {
	var out []Patch
	if !shallowCompatible(old, new) {
		return append(out, Patch{Op: OpReplace, Path: "", Node: new.Clone()})
	}
	diffNode(old, new, "", &out)
	return out
}

// keyOf returns the keyed-diff identity of an element: its id attribute when
// present. Elements with different ids never match, so a keyed list reorder
// diffs as moves of whole subtrees instead of a cascade of in-place edits.
func keyOf(n *Node) (string, bool) {
	if n.Type != ElementNode {
		return "", false
	}
	return n.Attr("id")
}

// shallowCompatible reports whether a and b can be matched for recursive
// diffing: same type, and for elements the same tag and id key.
func shallowCompatible(a, b *Node) bool {
	if a.Type != b.Type {
		return false
	}
	if a.Type != ElementNode {
		return true
	}
	if a.Tag != b.Tag {
		return false
	}
	ak, aok := keyOf(a)
	bk, bok := keyOf(b)
	return aok == bok && ak == bk
}

// diffNode emits the edits that turn old into new; the two are assumed
// shallow-compatible and located at path.
func diffNode(old, new *Node, path string, out *[]Patch) {
	if old.Type != ElementNode {
		if old.Data != new.Data {
			*out = append(*out, Patch{Op: OpSetText, Path: path, Text: new.Data})
		}
		return
	}
	if !attrListsEqual(old.Attrs, new.Attrs) {
		*out = append(*out, Patch{Op: OpSetAttrs, Path: path, Attrs: append([]Attr(nil), new.Attrs...)})
	}
	diffChildren(old, new, path, out)
}

func attrListsEqual(a, b []Attr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// lcsLimit caps the O(m·n) alignment table. Past it (pathological fan-out,
// fuzzed inputs) diffChildren degrades to positional pairing, which is still
// correct — just a larger script.
const lcsLimit = 1 << 16

// diffChildren aligns the child lists of old and new and emits the child
// edits followed by recursive edits inside each matched pair. Ops at this
// level are emitted in apply order: the running cursor tracks each touched
// slot's index in the partially-patched list, so removes, inserts and
// replaces use the index they will find at apply time.
func diffChildren(old, new *Node, path string, out *[]Patch) {
	oc, nc := old.Children, new.Children
	var pairs [][2]int
	if len(oc)*len(nc) > lcsLimit {
		for i := 0; i < len(oc) && i < len(nc); i++ {
			if shallowCompatible(oc[i], nc[i]) {
				pairs = append(pairs, [2]int{i, i})
			} else {
				break
			}
		}
	} else {
		pairs = lcsPairs(oc, nc)
	}

	oi, nj, cursor := 0, 0, 0
	emitGap := func(oEnd, nEnd int) {
		k, l := oEnd-oi, nEnd-nj
		r := k
		if l < r {
			r = l
		}
		for x := 0; x < r; x++ {
			*out = append(*out, Patch{Op: OpReplace, Path: childPath(path, cursor), Node: nc[nj+x].Clone()})
			cursor++
		}
		for x := r; x < k; x++ {
			// Each remove shifts the tail left, so the index stays put.
			*out = append(*out, Patch{Op: OpRemove, Path: childPath(path, cursor)})
		}
		for x := r; x < l; x++ {
			*out = append(*out, Patch{Op: OpInsert, Path: path, Index: cursor, Node: nc[nj+x].Clone()})
			cursor++
		}
		oi, nj = oEnd, nEnd
	}
	for _, pr := range pairs {
		emitGap(pr[0], pr[1])
		diffNode(oc[pr[0]], nc[pr[1]], childPath(path, cursor), out)
		cursor++
		oi, nj = pr[0]+1, pr[1]+1
	}
	emitGap(len(oc), len(nc))
}

// lcsPairs returns the index pairs of a longest common subsequence of old
// and new children under shallow compatibility.
func lcsPairs(oc, nc []*Node) [][2]int {
	m, n := len(oc), len(nc)
	if m == 0 || n == 0 {
		return nil
	}
	// dp[i][j] = LCS length of oc[i:], nc[j:], flattened row-major.
	dp := make([]int, (m+1)*(n+1))
	idx := func(i, j int) int { return i*(n+1) + j }
	for i := m - 1; i >= 0; i-- {
		for j := n - 1; j >= 0; j-- {
			if shallowCompatible(oc[i], nc[j]) {
				dp[idx(i, j)] = dp[idx(i+1, j+1)] + 1
			} else if dp[idx(i+1, j)] >= dp[idx(i, j+1)] {
				dp[idx(i, j)] = dp[idx(i+1, j)]
			} else {
				dp[idx(i, j)] = dp[idx(i, j+1)]
			}
		}
	}
	pairs := make([][2]int, 0, dp[0])
	for i, j := 0, 0; i < m && j < n; {
		switch {
		case shallowCompatible(oc[i], nc[j]) && dp[idx(i, j)] == dp[idx(i+1, j+1)]+1:
			pairs = append(pairs, [2]int{i, j})
			i++
			j++
		case dp[idx(i+1, j)] >= dp[idx(i, j+1)]:
			i++
		default:
			j++
		}
	}
	return pairs
}

// childPath extends a parent path with one child index.
func childPath(parent string, idx int) string {
	if parent == "" {
		return strconv.Itoa(idx)
	}
	var buf [24]byte
	b := append(buf[:0], parent...)
	b = append(b, '.')
	b = strconv.AppendInt(b, int64(idx), 10)
	return string(b)
}

// ResolveChildPath walks an all-children patch path from root. It returns
// the node plus its parent and child slot (parent is nil and idx -1 for the
// root itself), or an error when the path does not resolve — the signal the
// snippet uses to fall back to a full re-parse.
func ResolveChildPath(root *Node, path string) (n, parent *Node, idx int, err error) {
	n, parent, idx = root, nil, -1
	for path != "" {
		part, rest, found := strings.Cut(path, ".")
		if part == "" || (found && rest == "") {
			return nil, nil, 0, fmt.Errorf("dom: malformed patch path segment")
		}
		path = rest
		i, convErr := strconv.Atoi(part)
		if convErr != nil || i < 0 {
			return nil, nil, 0, fmt.Errorf("dom: bad patch path index %q", part)
		}
		if i >= len(n.Children) {
			return nil, nil, 0, fmt.Errorf("dom: patch path index %d out of range (%d children)", i, len(n.Children))
		}
		parent, idx, n = n, i, n.Children[i]
	}
	return n, parent, idx, nil
}

// Apply replays an edit script against root. Patches are applied in order;
// each patch's path is interpreted against the tree as left by the patches
// before it. On error the tree may be partially patched — callers that need
// atomicity must re-install from a full snapshot, which is exactly what the
// snippet's delta fallback does.
//
// Apply attaches patch subtrees directly (no defensive clone), so a patch
// list must not be applied twice and must not be mutated afterwards.
func Apply(root *Node, patches []Patch) error {
	for i := range patches {
		if err := applyOne(root, &patches[i]); err != nil {
			return fmt.Errorf("dom: patch %d (%s at %q): %w", i, patches[i].Op, patches[i].Path, err)
		}
	}
	return nil
}

func applyOne(root *Node, p *Patch) error {
	target, parent, slot, err := ResolveChildPath(root, p.Path)
	if err != nil {
		return err
	}
	switch p.Op {
	case OpSetAttrs:
		if target.Type != ElementNode {
			return fmt.Errorf("set-attrs on %s node", target.Type)
		}
		target.Attrs = append(target.Attrs[:0:0], p.Attrs...)
	case OpSetText:
		if target.Type == ElementNode {
			return fmt.Errorf("set-text on element <%s>", target.Tag)
		}
		target.Data = p.Text
	case OpRemove:
		if parent == nil {
			return fmt.Errorf("cannot remove the root")
		}
		parent.RemoveChild(target)
	case OpInsert:
		if p.Node == nil {
			return fmt.Errorf("insert with no node")
		}
		if target.Type != ElementNode {
			return fmt.Errorf("insert into %s node", target.Type)
		}
		if p.Index < 0 || p.Index > len(target.Children) {
			return fmt.Errorf("insert index %d out of range (%d children)", p.Index, len(target.Children))
		}
		if p.Index == len(target.Children) {
			target.AppendChild(p.Node)
		} else {
			target.InsertBefore(p.Node, target.Children[p.Index])
		}
	case OpReplace:
		if p.Node == nil {
			return fmt.Errorf("replace with no node")
		}
		if parent == nil {
			// Root replace: morph in place so the caller's pointer stays
			// valid. The payload's own identity is discarded.
			root.Type, root.Tag, root.Data = p.Node.Type, p.Node.Tag, p.Node.Data
			root.Attrs = p.Node.Attrs
			root.Children = p.Node.Children
			for _, c := range root.Children {
				c.Parent = root
			}
			return nil
		}
		p.Node.Parent = parent
		target.Parent = nil
		parent.Children[slot] = p.Node
	default:
		return fmt.Errorf("unknown op")
	}
	return nil
}
