package dom

import (
	"strings"
)

// voidElements are HTML elements that never have children or end tags.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// rawTextElements hold raw character data up to their literal close tag.
var rawTextElements = map[string]bool{
	"script": true, "style": true, "textarea": true, "title": true,
	"noscript": true, "xmp": true,
}

// impliedEndByOpen maps an element tag to the set of open tags it implicitly
// closes when encountered. This captures the common tag-omission patterns on
// real homepages (li, p, td, tr, option ...) without a full HTML5 tree
// builder.
var impliedEndByOpen = map[string]map[string]bool{
	"li":     {"li": true},
	"p":      {"p": true},
	"tr":     {"tr": true, "td": true, "th": true},
	"td":     {"td": true, "th": true},
	"th":     {"td": true, "th": true},
	"option": {"option": true},
	"dt":     {"dt": true, "dd": true},
	"dd":     {"dt": true, "dd": true},
	"thead":  {"tr": true, "td": true, "th": true},
	"tbody":  {"tr": true, "td": true, "th": true, "thead": true},
	"tfoot":  {"tr": true, "td": true, "th": true, "tbody": true},
}

// IsVoid reports whether tag is an HTML void element (no end tag).
func IsVoid(tag string) bool { return voidElements[strings.ToLower(tag)] }

// IsRawText reports whether tag holds raw text content (script, style, ...).
func IsRawText(tag string) bool { return rawTextElements[strings.ToLower(tag)] }

// tokenKind enumerates tokenizer outputs.
type tokenKind int

const (
	tokText tokenKind = iota
	tokStartTag
	tokEndTag
	tokComment
	tokDoctype
)

type token struct {
	kind        tokenKind
	data        string // tag name (lowercased), text payload, comment, doctype
	attrs       []Attr
	selfClosing bool
}

// tokenizer scans HTML source into a stream of tokens.
type tokenizer struct {
	src string
	pos int
}

func (z *tokenizer) eof() bool { return z.pos >= len(z.src) }

// next returns the next token, or ok=false at end of input.
func (z *tokenizer) next() (token, bool) {
	if z.eof() {
		return token{}, false
	}
	if z.src[z.pos] != '<' {
		// Text run up to the next '<' or EOF.
		end := strings.IndexByte(z.src[z.pos:], '<')
		if end < 0 {
			t := token{kind: tokText, data: z.src[z.pos:]}
			z.pos = len(z.src)
			return t, true
		}
		t := token{kind: tokText, data: z.src[z.pos : z.pos+end]}
		z.pos += end
		return t, true
	}
	// A '<' that does not begin a plausible markup construct is literal text.
	rest := z.src[z.pos:]
	switch {
	case strings.HasPrefix(rest, "<!--"):
		return z.scanComment()
	case strings.HasPrefix(rest, "<!"):
		return z.scanDeclaration()
	case strings.HasPrefix(rest, "</"):
		return z.scanEndTag()
	case len(rest) > 1 && isTagNameStart(rest[1]):
		return z.scanStartTag()
	default:
		// Lone '<': treat as text, consume one byte.
		z.pos++
		return token{kind: tokText, data: "<"}, true
	}
}

func isTagNameStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isTagNameByte(c byte) bool {
	return isTagNameStart(c) || c >= '0' && c <= '9' || c == '-' || c == ':'
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}

func (z *tokenizer) scanComment() (token, bool) {
	start := z.pos + 4 // past "<!--"
	end := strings.Index(z.src[start:], "-->")
	if end < 0 {
		t := token{kind: tokComment, data: z.src[start:]}
		z.pos = len(z.src)
		return t, true
	}
	t := token{kind: tokComment, data: z.src[start : start+end]}
	z.pos = start + end + 3
	return t, true
}

func (z *tokenizer) scanDeclaration() (token, bool) {
	start := z.pos + 2 // past "<!"
	end := strings.IndexByte(z.src[start:], '>')
	if end < 0 {
		t := token{kind: tokDoctype, data: z.src[start:]}
		z.pos = len(z.src)
		return t, true
	}
	t := token{kind: tokDoctype, data: z.src[start : start+end]}
	z.pos = start + end + 1
	return t, true
}

func (z *tokenizer) scanEndTag() (token, bool) {
	i := z.pos + 2 // past "</"
	nameStart := i
	for i < len(z.src) && isTagNameByte(z.src[i]) {
		i++
	}
	name := strings.ToLower(z.src[nameStart:i])
	// Skip to '>'.
	for i < len(z.src) && z.src[i] != '>' {
		i++
	}
	if i < len(z.src) {
		i++ // consume '>'
	}
	z.pos = i
	if name == "" {
		// "</>" or "</ >": ignored per HTML spec; emit empty comment.
		return token{kind: tokComment, data: ""}, true
	}
	return token{kind: tokEndTag, data: name}, true
}

func (z *tokenizer) scanStartTag() (token, bool) {
	i := z.pos + 1 // past '<'
	nameStart := i
	for i < len(z.src) && isTagNameByte(z.src[i]) {
		i++
	}
	t := token{kind: tokStartTag, data: strings.ToLower(z.src[nameStart:i])}
	// Attributes.
	for i < len(z.src) {
		for i < len(z.src) && isSpace(z.src[i]) {
			i++
		}
		if i >= len(z.src) {
			break
		}
		if z.src[i] == '>' {
			i++
			z.pos = i
			return t, true
		}
		if z.src[i] == '/' {
			// Possible self-closing marker.
			j := i + 1
			for j < len(z.src) && isSpace(z.src[j]) {
				j++
			}
			if j < len(z.src) && z.src[j] == '>' {
				t.selfClosing = true
				z.pos = j + 1
				return t, true
			}
			i++ // stray '/', skip
			continue
		}
		// Attribute name.
		aStart := i
		for i < len(z.src) && !isSpace(z.src[i]) && z.src[i] != '=' && z.src[i] != '>' && z.src[i] != '/' {
			i++
		}
		name := strings.ToLower(z.src[aStart:i])
		for i < len(z.src) && isSpace(z.src[i]) {
			i++
		}
		var value string
		if i < len(z.src) && z.src[i] == '=' {
			i++
			for i < len(z.src) && isSpace(z.src[i]) {
				i++
			}
			if i < len(z.src) && (z.src[i] == '"' || z.src[i] == '\'') {
				quote := z.src[i]
				i++
				vStart := i
				for i < len(z.src) && z.src[i] != quote {
					i++
				}
				value = z.src[vStart:i]
				if i < len(z.src) {
					i++ // closing quote
				}
			} else {
				vStart := i
				for i < len(z.src) && !isSpace(z.src[i]) && z.src[i] != '>' {
					i++
				}
				value = z.src[vStart:i]
			}
			value = DecodeEntities(value)
		}
		if name != "" {
			t.attrs = append(t.attrs, Attr{Name: name, Value: value})
		}
	}
	z.pos = i
	return t, true
}

// scanRawText consumes text up to (not including) the close tag for the raw
// text element named tag, positioning the tokenizer after the close tag. The
// close-tag match is case-insensitive. If no close tag exists the rest of the
// input is consumed.
func (z *tokenizer) scanRawText(tag string) string {
	// The close-tag search must be byte-offset-preserving: strings.ToLower
	// rewrites invalid UTF-8 (and some unicode) to sequences of a different
	// length, which would misalign every index into the raw source.
	src := z.src[z.pos:]
	marker := "</" + tag // tag is already lowercase
	idx := 0
	for {
		rel := asciiIndexFold(src[idx:], marker)
		if rel < 0 {
			text := src
			z.pos = len(z.src)
			return text
		}
		at := idx + rel
		after := at + len(marker)
		// Must be followed by space, '/', or '>' to count as a close tag.
		if after >= len(src) || src[after] == '>' || isSpace(src[after]) || src[after] == '/' {
			text := src[:at]
			// Advance past "</tag ... >".
			end := strings.IndexByte(src[at:], '>')
			if end < 0 {
				z.pos = len(z.src)
			} else {
				z.pos += at + end + 1
			}
			return text
		}
		idx = after
	}
}

// asciiIndexFold returns the index of the first occurrence of sub in s under
// ASCII case folding, or -1. sub must already be lowercase ASCII.
func asciiIndexFold(s, sub string) int {
	if len(sub) == 0 {
		return 0
	}
	for i := 0; i+len(sub) <= len(s); i++ {
		j := 0
		for ; j < len(sub) && asciiLower(s[i+j]) == sub[j]; j++ {
		}
		if j == len(sub) {
			return i
		}
	}
	return -1
}

func asciiLower(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c + 'a' - 'A'
	}
	return c
}

// Parse parses HTML source into a Document. The tree builder is tolerant:
// unmatched end tags are dropped, unclosed elements are closed at EOF, and a
// well-formed <html>/<head>/<body> (or frameset) skeleton is guaranteed on
// the result, mirroring what a browser's live DOM presents to RCB-Agent.
func Parse(src string) *Document {
	doc := &Document{}
	var root *Node
	// stack of open elements; stack[0] is the root once established.
	var stack []*Node

	appendNode := func(n *Node) {
		if len(stack) > 0 {
			stack[len(stack)-1].AppendChild(n)
			return
		}
		// Content before/outside <html>: defer until skeleton fixup.
		if root == nil {
			root = NewElement("html")
			stack = append(stack, root)
		}
		root.AppendChild(n)
	}

	z := &tokenizer{src: src}
	for {
		t, ok := z.next()
		if !ok {
			break
		}
		switch t.kind {
		case tokDoctype:
			if doc.Doctype == "" && root == nil {
				doc.Doctype = t.data
			}
			// Doctypes after content are ignored.
		case tokComment:
			appendNode(NewComment(t.data))
		case tokText:
			if len(stack) == 0 && strings.TrimSpace(t.data) == "" {
				continue // whitespace before <html>
			}
			appendNode(NewText(t.data))
		case tokStartTag:
			if t.data == "html" {
				if root == nil {
					root = NewElement("html")
					root.Attrs = t.attrs
					stack = append(stack, root)
				} else if len(root.Attrs) == 0 {
					root.Attrs = t.attrs
				}
				continue
			}
			if root == nil {
				root = NewElement("html")
				stack = append(stack, root)
			}
			// Implied end tags (e.g. <li> closes an open <li>).
			if closes, ok := impliedEndByOpen[t.data]; ok {
				for len(stack) > 1 && closes[stack[len(stack)-1].Tag] {
					stack = stack[:len(stack)-1]
				}
			}
			el := NewElement(t.data)
			el.Attrs = t.attrs
			stack[len(stack)-1].AppendChild(el)
			if t.selfClosing || voidElements[t.data] {
				continue
			}
			if rawTextElements[t.data] {
				raw := z.scanRawText(t.data)
				if raw != "" {
					el.AppendChild(NewText(raw))
				}
				continue
			}
			stack = append(stack, el)
		case tokEndTag:
			if t.data == "html" {
				if len(stack) > 1 {
					stack = stack[:1] // close everything back to the root
				}
				continue
			}
			// Find the nearest matching open element.
			for i := len(stack) - 1; i >= 1; i-- {
				if stack[i].Tag == t.data {
					stack = stack[:i]
					break
				}
			}
			// No match: end tag is ignored.
		}
	}
	if root == nil {
		root = NewElement("html")
	}
	doc.Root = root
	fixSkeleton(doc)
	return doc
}

// fixSkeleton guarantees the root has a head followed by a body (or
// frameset), relocating stray top-level content into the appropriate section
// the way browsers normalize documents.
func fixSkeleton(doc *Document) {
	root := doc.Root
	head := root.FirstChildElement("head")
	body := root.FirstChildElement("body")
	frameset := root.FirstChildElement("frameset")
	if head == nil {
		head = NewElement("head")
	}
	if body == nil && frameset == nil {
		body = NewElement("body")
	}

	// Partition existing top-level children.
	headish := map[string]bool{
		"title": true, "meta": true, "link": true, "base": true,
		"style": true,
	}
	old := root.Children
	root.Children = nil
	for _, c := range old {
		c.Parent = nil
	}
	var bodyContent []*Node
	var noframes []*Node
	for _, c := range old {
		switch {
		case c == head || c == body || c == frameset:
			// re-attached below
		case c.Type == ElementNode && c.Tag == "noframes":
			noframes = append(noframes, c)
		case c.Type == ElementNode && headish[c.Tag]:
			head.AppendChild(c)
		case c.Type == TextNode && strings.TrimSpace(c.Data) == "":
			// Inter-section whitespace: drop to keep skeleton canonical.
		default:
			bodyContent = append(bodyContent, c)
		}
	}
	root.AppendChild(head)
	if frameset != nil {
		root.AppendChild(frameset)
		for _, nf := range noframes {
			root.AppendChild(nf)
		}
		// Content that can't live beside a frameset is dropped, as browsers do.
		return
	}
	root.AppendChild(body)
	for _, c := range bodyContent {
		body.AppendChild(c)
	}
	for _, nf := range noframes {
		body.AppendChild(nf)
	}
}

// ParseFragment parses src as markup in the context of an element with the
// given tag (as innerHTML assignment does) and returns the resulting sibling
// nodes. No html/head/body skeleton is implied. The context tag matters for
// raw-text containers: ParseFragment("x<b>", "script") yields a single text
// node.
func ParseFragment(src, contextTag string) []*Node {
	contextTag = strings.ToLower(contextTag)
	if rawTextElements[contextTag] {
		if src == "" {
			return nil
		}
		return []*Node{NewText(src)}
	}
	container := NewElement("div")
	stack := []*Node{container}
	z := &tokenizer{src: src}
	for {
		t, ok := z.next()
		if !ok {
			break
		}
		switch t.kind {
		case tokDoctype:
			// Doctype inside a fragment is ignored.
		case tokComment:
			stack[len(stack)-1].AppendChild(NewComment(t.data))
		case tokText:
			stack[len(stack)-1].AppendChild(NewText(t.data))
		case tokStartTag:
			if closes, ok := impliedEndByOpen[t.data]; ok {
				for len(stack) > 1 && closes[stack[len(stack)-1].Tag] {
					stack = stack[:len(stack)-1]
				}
			}
			el := NewElement(t.data)
			el.Attrs = t.attrs
			stack[len(stack)-1].AppendChild(el)
			if t.selfClosing || voidElements[t.data] {
				continue
			}
			if rawTextElements[t.data] {
				raw := z.scanRawText(t.data)
				if raw != "" {
					el.AppendChild(NewText(raw))
				}
				continue
			}
			stack = append(stack, el)
		case tokEndTag:
			for i := len(stack) - 1; i >= 1; i-- {
				if stack[i].Tag == t.data {
					stack = stack[:i]
					break
				}
			}
		}
	}
	out := container.Children
	for _, c := range out {
		c.Parent = nil
	}
	container.Children = nil
	return out
}

// SetInnerHTML replaces n's children with the parse of src in n's own
// context, the DOM operation Ajax-Snippet uses to apply received content
// (paper §4.2.2: "the innerHTML property of the head element is writable in
// Firefox").
func SetInnerHTML(n *Node, src string) {
	nodes := ParseFragment(src, n.Tag)
	n.ReplaceChildren(nodes...)
}

// DecodeEntities decodes the five XML/HTML core entities plus numeric
// character references. Unknown entities are preserved verbatim, which is
// what browsers do for bare ampersands on real pages.
func DecodeEntities(s string) string {
	if !strings.Contains(s, "&") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		c := s[i]
		if c != '&' {
			b.WriteByte(c)
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 || semi > 10 {
			b.WriteByte(c)
			i++
			continue
		}
		ent := s[i+1 : i+semi]
		switch ent {
		case "amp":
			b.WriteByte('&')
		case "lt":
			b.WriteByte('<')
		case "gt":
			b.WriteByte('>')
		case "quot":
			b.WriteByte('"')
		case "apos":
			b.WriteByte('\'')
		case "nbsp":
			b.WriteRune(' ')
		default:
			if r, ok := parseNumericEntity(ent); ok {
				b.WriteRune(r)
			} else {
				b.WriteByte('&')
				i++
				continue
			}
		}
		i += semi + 1
	}
	return b.String()
}

func parseNumericEntity(ent string) (rune, bool) {
	if len(ent) < 2 || ent[0] != '#' {
		return 0, false
	}
	var v int64
	if ent[1] == 'x' || ent[1] == 'X' {
		for _, c := range ent[2:] {
			var d int64
			switch {
			case c >= '0' && c <= '9':
				d = int64(c - '0')
			case c >= 'a' && c <= 'f':
				d = int64(c-'a') + 10
			case c >= 'A' && c <= 'F':
				d = int64(c-'A') + 10
			default:
				return 0, false
			}
			v = v*16 + d
			if v > 0x10FFFF {
				return 0, false
			}
		}
		if len(ent) == 2 {
			return 0, false
		}
	} else {
		for _, c := range ent[1:] {
			if c < '0' || c > '9' {
				return 0, false
			}
			v = v*10 + int64(c-'0')
			if v > 0x10FFFF {
				return 0, false
			}
		}
	}
	if v == 0 || (v >= 0xD800 && v <= 0xDFFF) {
		return '�', true
	}
	return rune(v), true
}
