package dom

import (
	"strings"
	"testing"
)

// mustDiffApply diffs two parsed fragments' roots, applies the script to the
// old tree, and asserts byte-identical serialization with the new tree. It
// returns the script for shape assertions.
func mustDiffApply(t *testing.T, oldHTML, newHTML string) []Patch {
	t.Helper()
	old := Parse(oldHTML)
	new := Parse(newHTML)
	patches := Diff(old.Root, new.Root)
	if err := Apply(old.Root, patches); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	got, want := OuterHTML(old.Root), OuterHTML(new.Root)
	if got != want {
		t.Fatalf("diff/apply mismatch:\n got %q\nwant %q\npatches %+v", got, want, patches)
	}
	return patches
}

func countOps(patches []Patch, op PatchOp) int {
	n := 0
	for _, p := range patches {
		if p.Op == op {
			n++
		}
	}
	return n
}

func TestDiffIdenticalTreesIsEmpty(t *testing.T) {
	src := `<html><head><title>x</title></head><body><div id="a">hi<b>there</b></div></body></html>`
	patches := mustDiffApply(t, src, src)
	if len(patches) != 0 {
		t.Fatalf("identical trees produced %d patches: %+v", len(patches), patches)
	}
}

func TestDiffAttrEditIsSinglePatch(t *testing.T) {
	patches := mustDiffApply(t,
		`<html><body><div id="a" class="x">hi</div></body></html>`,
		`<html><body><div id="a" class="y">hi</div></body></html>`)
	if len(patches) != 1 || patches[0].Op != OpSetAttrs {
		t.Fatalf("attr edit patches = %+v, want one set-attrs", patches)
	}
}

func TestDiffTextEditIsSinglePatch(t *testing.T) {
	patches := mustDiffApply(t,
		`<html><body><p>old text</p></body></html>`,
		`<html><body><p>new text</p></body></html>`)
	if len(patches) != 1 || patches[0].Op != OpSetText {
		t.Fatalf("text edit patches = %+v, want one set-text", patches)
	}
}

func TestDiffInsertRemoveReplace(t *testing.T) {
	// Insert a subtree.
	patches := mustDiffApply(t,
		`<html><body><ul><li>a</li><li>c</li></ul></body></html>`,
		`<html><body><ul><li>a</li><li>b</li><li>c</li></ul></body></html>`)
	if countOps(patches, OpInsert) == 0 {
		t.Fatalf("insertion produced no insert op: %+v", patches)
	}
	// Remove a subtree.
	patches = mustDiffApply(t,
		`<html><body><ul><li>a</li><li>b</li><li>c</li></ul></body></html>`,
		`<html><body><ul><li>a</li><li>c</li></ul></body></html>`)
	if countOps(patches, OpRemove) == 0 {
		t.Fatalf("removal produced no remove op: %+v", patches)
	}
	// Incompatible node in the same slot: replaced, not edited.
	patches = mustDiffApply(t,
		`<html><body><div>x</div></body></html>`,
		`<html><body><span>x</span></body></html>`)
	if countOps(patches, OpReplace) != 1 {
		t.Fatalf("tag change patches = %+v, want one replace", patches)
	}
}

func TestDiffKeyedMove(t *testing.T) {
	// Reordering keyed siblings must not rewrite their contents: the moved
	// subtree travels as remove+insert (or replace pair), and the large
	// stable subtree is left untouched.
	big := `<div id="big"><p>lots</p><p>of</p><p>content</p><p>here</p></div>`
	patches := mustDiffApply(t,
		`<html><body>`+big+`<div id="small">s</div></body></html>`,
		`<html><body><div id="small">s</div>`+big+`</body></html>`)
	for _, p := range patches {
		if p.Op == OpSetText {
			t.Fatalf("keyed move rewrote text in place: %+v", patches)
		}
	}
}

func TestDiffKeyedIdentityBlocksInPlaceEdit(t *testing.T) {
	// Same tag, different id: keyed diff must replace, never merge.
	patches := mustDiffApply(t,
		`<html><body><div id="a">one</div></body></html>`,
		`<html><body><div id="b">two</div></body></html>`)
	if countOps(patches, OpReplace) != 1 || countOps(patches, OpSetText) != 0 {
		t.Fatalf("cross-key edit patches = %+v, want a single replace", patches)
	}
}

func TestDiffNestedEditPathsResolve(t *testing.T) {
	mustDiffApply(t,
		`<html><body><table><tr><td>1</td><td>2</td></tr><tr><td>3</td><td>4</td></tr></table></body></html>`,
		`<html><body><table><tr><td>1</td><td>2!</td></tr><tr><td>3</td><td>4</td><td>5</td></tr></table></body></html>`)
}

func TestDiffRawTextAndVoidElements(t *testing.T) {
	mustDiffApply(t,
		`<html><head><script>var a = 1;</script></head><body><img src="a.png"><br></body></html>`,
		`<html><head><script>var a = 2;</script></head><body><img src="b.png"><hr></body></html>`)
}

func TestDiffMixedTextElementChildren(t *testing.T) {
	mustDiffApply(t,
		`<html><body>alpha<b>bold</b>beta<!--note-->gamma</body></html>`,
		`<html><body>alpha<b>bolder</b><i>new</i>beta<!--edited-->delta</body></html>`)
}

func TestDiffIncompatibleRootsMorphInPlace(t *testing.T) {
	old := Parse(`<html><body>x</body></html>`)
	root := old.Root
	repl := NewElement("div")
	repl.AppendChild(NewText("swapped"))
	patches := Diff(root, repl)
	if len(patches) != 1 || patches[0].Op != OpReplace || patches[0].Path != "" {
		t.Fatalf("root swap patches = %+v", patches)
	}
	if err := Apply(root, patches); err != nil {
		t.Fatal(err)
	}
	if got := OuterHTML(root); got != `<div>swapped</div>` {
		t.Fatalf("morphed root = %q", got)
	}
	if root != old.Root {
		t.Fatal("root identity changed")
	}
	for _, c := range root.Children {
		if c.Parent != root {
			t.Fatal("reparenting missed a child")
		}
	}
}

func TestDiffWideChildListsPastLCSLimit(t *testing.T) {
	var a, b strings.Builder
	a.WriteString(`<html><body>`)
	b.WriteString(`<html><body>`)
	for i := 0; i < 300; i++ {
		a.WriteString(`<span>x</span>`)
		b.WriteString(`<span>x</span>`)
	}
	b.WriteString(`<div>tail</div>`) // 300*301 > lcsLimit: positional fallback
	a.WriteString(`</body></html>`)
	b.WriteString(`</body></html>`)
	mustDiffApply(t, a.String(), b.String())
}

func TestApplyRejectsMalformedPatches(t *testing.T) {
	doc := Parse(`<html><body><p>x</p></body></html>`)
	cases := []struct {
		name  string
		patch Patch
	}{
		{"bad path", Patch{Op: OpSetText, Path: "9.9", Text: "x"}},
		{"empty segment", Patch{Op: OpRemove, Path: "1..0"}},
		{"negative index", Patch{Op: OpSetText, Path: "-1"}},
		{"set-text on element", Patch{Op: OpSetText, Path: "1", Text: "x"}},
		{"set-attrs on text", Patch{Op: OpSetAttrs, Path: "1.0.0", Attrs: []Attr{{Name: "a", Value: "b"}}}},
		{"remove root", Patch{Op: OpRemove, Path: ""}},
		{"insert nil node", Patch{Op: OpInsert, Path: "1", Index: 0}},
		{"insert bad index", Patch{Op: OpInsert, Path: "1", Index: 5, Node: NewText("x")}},
		{"insert into text", Patch{Op: OpInsert, Path: "1.0.0", Index: 0, Node: NewText("x")}},
		{"replace nil node", Patch{Op: OpReplace, Path: "1.0"}},
	}
	for _, tc := range cases {
		if err := Apply(doc.Root, []Patch{tc.patch}); err == nil {
			t.Errorf("%s: Apply accepted a malformed patch", tc.name)
		}
	}
	// The probe document survived every rejected patch untouched enough to
	// keep serving (structure checks only — partial application is allowed).
	if doc.Root.FirstChildElement("body") == nil {
		t.Fatal("body lost during rejected patches")
	}
}

func TestApplyInsertAtEveryIndex(t *testing.T) {
	for idx := 0; idx <= 2; idx++ {
		doc := Parse(`<html><body><i>a</i><i>b</i></body></html>`)
		body := doc.Root.FirstChildElement("body")
		p := Patch{Op: OpInsert, Path: "1", Index: idx, Node: NewElement("u")}
		if err := Apply(doc.Root, []Patch{p}); err != nil {
			t.Fatalf("index %d: %v", idx, err)
		}
		if body.Children[idx].Tag != "u" {
			t.Fatalf("index %d: inserted at %v", idx, OuterHTML(body))
		}
	}
}
