package dom

import (
	"strings"
	"testing"
)

func TestOuterHTMLElement(t *testing.T) {
	n := NewElement("a")
	n.SetAttr("href", "http://x/")
	n.AppendChild(NewText("link"))
	if got := OuterHTML(n); got != `<a href="http://x/">link</a>` {
		t.Errorf("got %q", got)
	}
}

func TestOuterHTMLVoid(t *testing.T) {
	n := NewElement("img")
	n.SetAttr("src", "i.png")
	if got := OuterHTML(n); got != `<img src="i.png">` {
		t.Errorf("got %q", got)
	}
}

func TestAttrValueEscaping(t *testing.T) {
	n := NewElement("div")
	n.SetAttr("title", `a "quoted" & <tagged> value`)
	out := OuterHTML(n)
	if !strings.Contains(out, `title="a &quot;quoted&quot; &amp; &lt;tagged> value"`) {
		t.Errorf("got %q", out)
	}
	// Round trip restores the raw value.
	nodes := ParseFragment(out, "div")
	if v, _ := nodes[0].Attr("title"); v != `a "quoted" & <tagged> value` {
		t.Errorf("round trip attr = %q", v)
	}
}

func TestCommentSerialization(t *testing.T) {
	n := NewComment(" hidden <b> ")
	if got := OuterHTML(n); got != "<!-- hidden <b> -->" {
		t.Errorf("got %q", got)
	}
}

func TestInnerHTMLExcludesSelf(t *testing.T) {
	doc := Parse(`<body><div id="d"><p>a</p><p>b</p></div></body>`)
	d := doc.ByID("d")
	if got := InnerHTML(d); got != "<p>a</p><p>b</p>" {
		t.Errorf("got %q", got)
	}
}

func TestDocumentHTMLWithDoctype(t *testing.T) {
	doc := Parse(`<!DOCTYPE html><html><head></head><body>x</body></html>`)
	out := doc.HTML()
	if !strings.HasPrefix(out, "<!DOCTYPE html>") {
		t.Errorf("doctype lost: %q", out)
	}
}

func TestScriptContentNotEscaped(t *testing.T) {
	doc := Parse(`<head><script>if(a<b){f("&");}</script></head>`)
	out := doc.HTML()
	if !strings.Contains(out, `if(a<b){f("&");}`) {
		t.Errorf("script content altered: %q", out)
	}
}

func TestStableRoundTripOfRealisticPage(t *testing.T) {
	src := `<!DOCTYPE html><html lang="en"><head><title>Shop</title>` +
		`<meta charset="utf-8"><link rel="stylesheet" href="/s.css">` +
		`<script src="/app.js"></script>` +
		`<style>body { margin: 0; } a > b { x: "y"; }</style></head>` +
		`<body class="home"><div id="nav"><a href="/a?x=1&amp;y=2">A</a></div>` +
		`<form action="/search" method="get" onsubmit="return v(this)">` +
		`<input type="text" name="q" value=""><input type="submit" value="Go">` +
		`</form><!-- footer --><div id="ft">&copy; 2009</div></body></html>`
	doc := Parse(src)
	once := doc.HTML()
	twice := Parse(once).HTML()
	if once != twice {
		t.Fatalf("serialization not a fixed point:\n1: %s\n2: %s", once, twice)
	}
}

func BenchmarkParseMediumPage(b *testing.B) {
	var sb strings.Builder
	sb.WriteString(`<!DOCTYPE html><html><head><title>p</title></head><body>`)
	for i := 0; i < 400; i++ {
		sb.WriteString(`<div class="row"><a href="/item">item</a><img src="/i.png"><p>description text here</p></div>`)
	}
	sb.WriteString(`</body></html>`)
	src := sb.String()
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Parse(src)
	}
}

func BenchmarkSerializeMediumPage(b *testing.B) {
	var sb strings.Builder
	sb.WriteString(`<!DOCTYPE html><html><head><title>p</title></head><body>`)
	for i := 0; i < 400; i++ {
		sb.WriteString(`<div class="row"><a href="/item">item</a><img src="/i.png"><p>description text here</p></div>`)
	}
	sb.WriteString(`</body></html>`)
	doc := Parse(sb.String())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		doc.HTML()
	}
}

func BenchmarkCloneMediumPage(b *testing.B) {
	var sb strings.Builder
	sb.WriteString(`<body>`)
	for i := 0; i < 400; i++ {
		sb.WriteString(`<div class="row"><a href="/item">item</a><p>text</p></div>`)
	}
	sb.WriteString(`</body>`)
	doc := Parse(sb.String())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		doc.Root.Clone()
	}
}
