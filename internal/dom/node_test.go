package dom

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAppendRemoveChild(t *testing.T) {
	p := NewElement("div")
	a, b, c := NewText("a"), NewElement("span"), NewText("c")
	p.AppendChild(a)
	p.AppendChild(b)
	p.AppendChild(c)
	if len(p.Children) != 3 {
		t.Fatalf("children = %d", len(p.Children))
	}
	p.RemoveChild(b)
	if len(p.Children) != 2 || b.Parent != nil {
		t.Fatal("remove failed")
	}
	if p.Children[0] != a || p.Children[1] != c {
		t.Fatal("order wrong after remove")
	}
}

func TestAppendChildReparents(t *testing.T) {
	p1, p2 := NewElement("div"), NewElement("div")
	c := NewElement("span")
	p1.AppendChild(c)
	p2.AppendChild(c)
	if len(p1.Children) != 0 {
		t.Error("child not detached from old parent")
	}
	if c.Parent != p2 || len(p2.Children) != 1 {
		t.Error("child not attached to new parent")
	}
}

func TestInsertBefore(t *testing.T) {
	p := NewElement("div")
	a, b := NewText("a"), NewText("b")
	p.AppendChild(a)
	p.AppendChild(b)
	x := NewText("x")
	p.InsertBefore(x, b)
	if InnerHTML(p) != "axb" {
		t.Errorf("got %q", InnerHTML(p))
	}
	y := NewText("y")
	p.InsertBefore(y, nil) // append semantics
	if InnerHTML(p) != "axby" {
		t.Errorf("got %q", InnerHTML(p))
	}
}

func TestReplaceChildren(t *testing.T) {
	p := NewElement("div")
	old := NewText("old")
	p.AppendChild(old)
	n1, n2 := NewText("1"), NewText("2")
	p.ReplaceChildren(n1, n2)
	if InnerHTML(p) != "12" || old.Parent != nil {
		t.Fatalf("replace failed: %q", InnerHTML(p))
	}
}

func TestSetAttrPreservesOrder(t *testing.T) {
	n := NewElement("a")
	n.SetAttr("href", "x")
	n.SetAttr("class", "c")
	n.SetAttr("href", "y") // update in place
	if !reflect.DeepEqual(n.AttrNames(), []string{"class", "href"}) {
		t.Fatalf("attrs = %v", n.Attrs)
	}
	if n.Attrs[0].Name != "href" || n.Attrs[0].Value != "y" {
		t.Fatalf("in-place update failed: %v", n.Attrs)
	}
}

func TestDelAttr(t *testing.T) {
	n := NewElement("a")
	n.SetAttr("href", "x")
	n.SetAttr("id", "i")
	n.DelAttr("HREF") // case-insensitive
	if n.HasAttr("href") || !n.HasAttr("id") {
		t.Fatalf("attrs = %v", n.Attrs)
	}
	n.DelAttr("missing") // no-op
}

func TestCloneDeepIndependence(t *testing.T) {
	doc := Parse(`<body><div id="a" class="x"><p>text</p><img src="i.png"></div></body>`)
	clone := doc.Root.Clone()
	if clone.Parent != nil {
		t.Error("clone must be parentless")
	}
	// Mutating the clone must not affect the original — the invariant the
	// paper relies on: "the content generation procedure will not cause any
	// state change to the current document on the host browser".
	cloneDiv := clone.ElementByID("a")
	cloneDiv.SetAttr("class", "mutated")
	SetInnerHTML(cloneDiv, "<b>gone</b>")
	origDiv := doc.ByID("a")
	if v, _ := origDiv.Attr("class"); v != "x" {
		t.Error("original attr mutated through clone")
	}
	if len(origDiv.ElementsByTag("p")) != 1 {
		t.Error("original children mutated through clone")
	}
}

func TestCloneEqualSerialization(t *testing.T) {
	doc := Parse(`<html><head><title>t</title><script>a<b</script></head><body><p class="c">x &amp; y</p><!--c--></body></html>`)
	if OuterHTML(doc.Root.Clone()) != OuterHTML(doc.Root) {
		t.Fatal("clone serializes differently")
	}
}

func TestElementByID(t *testing.T) {
	doc := Parse(`<body><div id="a"><span id="b">x</span></div><p id="c"></p></body>`)
	if doc.ByID("b") == nil || doc.ByID("b").Tag != "span" {
		t.Error("ByID b failed")
	}
	if doc.ByID("missing") != nil {
		t.Error("ByID missing should be nil")
	}
}

func TestFindAllAndWalkStop(t *testing.T) {
	doc := Parse(`<body><p>1</p><p>2</p><p>3</p></body>`)
	seen := 0
	doc.Root.Walk(func(n *Node) bool {
		if n.Type == ElementNode && n.Tag == "p" {
			seen++
			return seen < 2 // stop after the second p
		}
		return true
	})
	if seen != 2 {
		t.Fatalf("walk did not stop: seen=%d", seen)
	}
}

func TestTextContentNested(t *testing.T) {
	doc := Parse(`<body><div>a<span>b<i>c</i></span>d</div></body>`)
	if got := doc.Body().TextContent(); got != "abcd" {
		t.Errorf("TextContent = %q", got)
	}
}

func TestCountNodes(t *testing.T) {
	doc := Parse(`<body><div><p>x</p></div></body>`)
	// html + head + body + div + p + text = 6
	if got := doc.Root.CountNodes(); got != 6 {
		t.Errorf("CountNodes = %d, want 6", got)
	}
}

// randomTree builds a random but serializable DOM tree for property tests.
func randomTree(r *rand.Rand, depth int) *Node {
	// Only tags without implied-end-tag semantics: a generated <li><li>
	// nesting would legitimately re-shape on reparse, which is not a
	// serializer bug.
	tags := []string{"div", "span", "b", "em", "u", "a", "form", "section", "article", "ul"}
	n := NewElement(tags[r.Intn(len(tags))])
	if r.Intn(2) == 0 {
		n.SetAttr("id", randomToken(r))
	}
	if r.Intn(2) == 0 {
		n.SetAttr("class", randomToken(r)+" "+randomToken(r))
	}
	if r.Intn(3) == 0 {
		n.SetAttr("data-v", `quote " amp & lt <`)
	}
	kids := r.Intn(4)
	for i := 0; i < kids; i++ {
		if depth <= 0 || r.Intn(2) == 0 {
			n.AppendChild(NewText(randomToken(r)))
		} else {
			n.AppendChild(randomTree(r, depth-1))
		}
	}
	return n
}

func randomToken(r *rand.Rand) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz0123456789"
	n := 1 + r.Intn(8)
	b := make([]byte, n)
	for i := range b {
		b[i] = alpha[r.Intn(len(alpha))]
	}
	return string(b)
}

func TestSerializeParseRoundTripProperty(t *testing.T) {
	// For any tree we can build, serialize→parse→serialize is a fixed point.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := randomTree(r, 4)
		html1 := OuterHTML(tree)
		nodes := ParseFragment(html1, "div")
		container := NewElement("div")
		for _, n := range nodes {
			container.AppendChild(n)
		}
		html2 := InnerHTML(container)
		return html1 == html2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDocumentRoundTripProperty(t *testing.T) {
	// Full documents: parse(serialize(parse(x))) == parse(x) structurally.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		body := randomTree(r, 3)
		doc := &Document{Doctype: "DOCTYPE html", Root: NewElement("html")}
		doc.Root.AppendChild(NewElement("head"))
		b := NewElement("body")
		b.AppendChild(body)
		doc.Root.AppendChild(b)
		html1 := doc.HTML()
		doc2 := Parse(html1)
		return doc2.HTML() == html1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneCountProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := randomTree(r, 4)
		return tree.Clone().CountNodes() == tree.CountNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
