package dom

import (
	"strings"
	"sync"
)

// EscapeAttr escapes an attribute value for double-quoted serialization.
func EscapeAttr(s string) string {
	if !strings.ContainsAny(s, `&"<`) {
		return s
	}
	return string(appendEscapeAttr(make([]byte, 0, len(s)+8), s))
}

// appendEscapeAttr is the single source of truth for the attribute escape
// set; EscapeAttr wraps it.
func appendEscapeAttr(b []byte, s string) []byte {
	if !strings.ContainsAny(s, `&"<`) {
		return append(b, s...)
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			b = append(b, "&amp;"...)
		case '"':
			b = append(b, "&quot;"...)
		case '<':
			b = append(b, "&lt;"...)
		default:
			b = append(b, s[i])
		}
	}
	return b
}

// serializePool recycles scratch buffers for the string-returning
// serializers so repeated generation passes do not regrow from zero.
var serializePool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4<<10)
	return &b
}}

// OuterHTML serializes n including its own tag.
func OuterHTML(n *Node) string {
	bp := serializePool.Get().(*[]byte)
	b := AppendOuterHTML((*bp)[:0], n)
	s := string(b)
	*bp = b
	serializePool.Put(bp)
	return s
}

// AppendOuterHTML appends n's serialization (including its own tag) to dst.
func AppendOuterHTML(dst []byte, n *Node) []byte {
	return appendNode(dst, n)
}

// InnerHTML serializes n's children only — the value RCB-Agent extracts for
// each top-level child of the cloned document and carries inside a CDATA
// section (paper Figure 4).
func InnerHTML(n *Node) string {
	bp := serializePool.Get().(*[]byte)
	b := AppendInnerHTML((*bp)[:0], n)
	s := string(b)
	*bp = b
	serializePool.Put(bp)
	return s
}

// AppendInnerHTML appends the serialization of n's children to dst.
func AppendInnerHTML(dst []byte, n *Node) []byte {
	for _, c := range n.Children {
		dst = appendNode(dst, c)
	}
	return dst
}

func appendNode(b []byte, n *Node) []byte {
	switch n.Type {
	case TextNode:
		// Text is preserved verbatim: the parser does not decode entities in
		// character data, so round trips are byte-stable.
		b = append(b, n.Data...)
	case CommentNode:
		b = append(b, "<!--"...)
		b = append(b, n.Data...)
		b = append(b, "-->"...)
	case DoctypeNode:
		b = append(b, "<!"...)
		b = append(b, n.Data...)
		b = append(b, '>')
	case ElementNode:
		b = append(b, '<')
		b = append(b, n.Tag...)
		for _, a := range n.Attrs {
			b = append(b, ' ')
			b = append(b, a.Name...)
			b = append(b, `="`...)
			b = appendEscapeAttr(b, a.Value)
			b = append(b, '"')
		}
		b = append(b, '>')
		if voidElements[n.Tag] {
			return b
		}
		for _, c := range n.Children {
			b = appendNode(b, c)
		}
		b = append(b, "</"...)
		b = append(b, n.Tag...)
		b = append(b, '>')
	}
	return b
}

// HTML serializes the whole document, including the doctype when present.
func (d *Document) HTML() string {
	bp := serializePool.Get().(*[]byte)
	b := (*bp)[:0]
	if d.Doctype != "" {
		b = append(b, "<!"...)
		b = append(b, d.Doctype...)
		b = append(b, '>')
	}
	b = appendNode(b, d.Root)
	s := string(b)
	*bp = b
	serializePool.Put(bp)
	return s
}
