package dom

import "strings"

// EscapeAttr escapes an attribute value for double-quoted serialization.
func EscapeAttr(s string) string {
	if !strings.ContainsAny(s, `&"<`) {
		return s
	}
	r := strings.NewReplacer("&", "&amp;", `"`, "&quot;", "<", "&lt;")
	return r.Replace(s)
}

// OuterHTML serializes n including its own tag.
func OuterHTML(n *Node) string {
	var b strings.Builder
	writeNode(&b, n)
	return b.String()
}

// InnerHTML serializes n's children only — the value RCB-Agent extracts for
// each top-level child of the cloned document and carries inside a CDATA
// section (paper Figure 4).
func InnerHTML(n *Node) string {
	var b strings.Builder
	for _, c := range n.Children {
		writeNode(&b, c)
	}
	return b.String()
}

func writeNode(b *strings.Builder, n *Node) {
	switch n.Type {
	case TextNode:
		// Text is preserved verbatim: the parser does not decode entities in
		// character data, so round trips are byte-stable.
		b.WriteString(n.Data)
	case CommentNode:
		b.WriteString("<!--")
		b.WriteString(n.Data)
		b.WriteString("-->")
	case DoctypeNode:
		b.WriteString("<!")
		b.WriteString(n.Data)
		b.WriteString(">")
	case ElementNode:
		b.WriteByte('<')
		b.WriteString(n.Tag)
		for _, a := range n.Attrs {
			b.WriteByte(' ')
			b.WriteString(a.Name)
			b.WriteString(`="`)
			b.WriteString(EscapeAttr(a.Value))
			b.WriteByte('"')
		}
		b.WriteByte('>')
		if voidElements[n.Tag] {
			return
		}
		for _, c := range n.Children {
			writeNode(b, c)
		}
		b.WriteString("</")
		b.WriteString(n.Tag)
		b.WriteByte('>')
	}
}

// HTML serializes the whole document, including the doctype when present.
func (d *Document) HTML() string {
	var b strings.Builder
	if d.Doctype != "" {
		b.WriteString("<!")
		b.WriteString(d.Doctype)
		b.WriteString(">")
	}
	writeNode(&b, d.Root)
	return b.String()
}
