// Package dom implements the HTML document object model that the RCB
// framework operates on: a tokenizing parser, a mutable node tree, innerHTML
// and outerHTML serialization, deep cloning, and the query and mutation
// operations RCB-Agent and Ajax-Snippet perform (paper §4.1.2 and §4.2.2).
//
// RCB-Agent clones the live documentElement, rewrites URLs and event
// attributes on the clone, and extracts attribute name-value lists and
// innerHTML values from top-level children. Ajax-Snippet applies the same
// representations back onto the participant document. Those operations define
// the required surface of this package; it is not a full HTML5 parser, but it
// is tolerant of the malformed constructs found on real homepages (unclosed
// tags, unquoted attributes, raw script/style text).
package dom

import (
	"fmt"
	"sort"
	"strings"
)

// NodeType discriminates tree node kinds.
type NodeType int

const (
	// ElementNode is a tag with attributes and children.
	ElementNode NodeType = iota
	// TextNode holds raw character data (entities are preserved verbatim).
	TextNode
	// CommentNode holds the text between <!-- and -->.
	CommentNode
	// DoctypeNode holds the text of a <!DOCTYPE ...> declaration.
	DoctypeNode
)

// String returns a short human-readable name for the node type.
func (t NodeType) String() string {
	switch t {
	case ElementNode:
		return "element"
	case TextNode:
		return "text"
	case CommentNode:
		return "comment"
	case DoctypeNode:
		return "doctype"
	}
	return fmt.Sprintf("NodeType(%d)", int(t))
}

// Attr is one attribute name-value pair. Order is preserved from the source
// document: RCB serializes attribute name-value lists and order stability
// keeps host and participant documents byte-comparable.
type Attr struct {
	Name  string
	Value string
}

// Node is a single DOM tree node. The zero value is an empty text node.
type Node struct {
	Type     NodeType
	Tag      string // lowercased element name; empty for non-elements
	Data     string // text, comment or doctype payload
	Attrs    []Attr
	Parent   *Node
	Children []*Node
}

// NewElement returns a parentless element node with the given tag
// (lowercased) and no attributes.
func NewElement(tag string) *Node {
	return &Node{Type: ElementNode, Tag: strings.ToLower(tag)}
}

// NewText returns a parentless text node carrying data verbatim.
func NewText(data string) *Node {
	return &Node{Type: TextNode, Data: data}
}

// NewComment returns a parentless comment node.
func NewComment(data string) *Node {
	return &Node{Type: CommentNode, Data: data}
}

// Attr returns the value of the named attribute and whether it is present.
// Lookup is case-insensitive, matching HTML attribute semantics.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if strings.EqualFold(a.Name, name) {
			return a.Value, true
		}
	}
	return "", false
}

// AttrOr returns the named attribute value, or def when absent.
func (n *Node) AttrOr(name, def string) string {
	if v, ok := n.Attr(name); ok {
		return v
	}
	return def
}

// HasAttr reports whether the named attribute is present.
func (n *Node) HasAttr(name string) bool {
	_, ok := n.Attr(name)
	return ok
}

// SetAttr sets the named attribute, replacing an existing value in place (so
// attribute order is stable) or appending a new pair.
func (n *Node) SetAttr(name, value string) {
	for i, a := range n.Attrs {
		if strings.EqualFold(a.Name, name) {
			n.Attrs[i].Value = value
			return
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: strings.ToLower(name), Value: value})
}

// DelAttr removes the named attribute if present.
func (n *Node) DelAttr(name string) {
	for i, a := range n.Attrs {
		if strings.EqualFold(a.Name, name) {
			n.Attrs = append(n.Attrs[:i], n.Attrs[i+1:]...)
			return
		}
	}
}

// AppendChild adds c as the last child of n, detaching it from any previous
// parent first.
func (n *Node) AppendChild(c *Node) {
	if c.Parent != nil {
		c.Parent.RemoveChild(c)
	}
	c.Parent = n
	n.Children = append(n.Children, c)
}

// InsertBefore inserts c as a child of n immediately before ref. If ref is
// nil or not a child of n, c is appended.
func (n *Node) InsertBefore(c, ref *Node) {
	if c.Parent != nil {
		c.Parent.RemoveChild(c)
	}
	idx := -1
	if ref != nil {
		for i, ch := range n.Children {
			if ch == ref {
				idx = i
				break
			}
		}
	}
	if idx < 0 {
		n.AppendChild(c)
		return
	}
	c.Parent = n
	n.Children = append(n.Children, nil)
	copy(n.Children[idx+1:], n.Children[idx:])
	n.Children[idx] = c
}

// RemoveChild detaches c from n. It is a no-op when c is not a child of n.
func (n *Node) RemoveChild(c *Node) {
	for i, ch := range n.Children {
		if ch == c {
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
			c.Parent = nil
			return
		}
	}
}

// RemoveAllChildren detaches every child of n.
func (n *Node) RemoveAllChildren() {
	for _, c := range n.Children {
		c.Parent = nil
	}
	n.Children = nil
}

// ReplaceChildren replaces n's children with the given nodes.
func (n *Node) ReplaceChildren(nodes ...*Node) {
	n.RemoveAllChildren()
	for _, c := range nodes {
		n.AppendChild(c)
	}
}

// Clone returns a deep copy of n with no parent. This is the operation
// RCB-Agent performs on the live documentElement before rewriting URLs and
// event attributes (paper Figure 3, step 1): all later mutation happens on
// the clone so the host document is never disturbed.
func (n *Node) Clone() *Node {
	c := &Node{Type: n.Type, Tag: n.Tag, Data: n.Data}
	if len(n.Attrs) > 0 {
		c.Attrs = make([]Attr, len(n.Attrs))
		copy(c.Attrs, n.Attrs)
	}
	if len(n.Children) > 0 {
		c.Children = make([]*Node, 0, len(n.Children))
		for _, ch := range n.Children {
			cc := ch.Clone()
			cc.Parent = c
			c.Children = append(c.Children, cc)
		}
	}
	return c
}

// Walk visits n and every descendant in document order. Returning false from
// fn stops the walk.
func (n *Node) Walk(fn func(*Node) bool) {
	var rec func(*Node) bool
	rec = func(cur *Node) bool {
		if !fn(cur) {
			return false
		}
		for _, c := range cur.Children {
			if !rec(c) {
				return false
			}
		}
		return true
	}
	rec(n)
}

// Find returns the first node (in document order, including n itself)
// satisfying pred, or nil.
func (n *Node) Find(pred func(*Node) bool) *Node {
	var found *Node
	n.Walk(func(cur *Node) bool {
		if pred(cur) {
			found = cur
			return false
		}
		return true
	})
	return found
}

// FindAll returns every node (in document order, including n itself)
// satisfying pred.
func (n *Node) FindAll(pred func(*Node) bool) []*Node {
	var out []*Node
	n.Walk(func(cur *Node) bool {
		if pred(cur) {
			out = append(out, cur)
		}
		return true
	})
	return out
}

// ElementsByTag returns all descendant elements (and possibly n itself) with
// the given tag name, lowercased comparison.
func (n *Node) ElementsByTag(tag string) []*Node {
	tag = strings.ToLower(tag)
	return n.FindAll(func(c *Node) bool {
		return c.Type == ElementNode && c.Tag == tag
	})
}

// ElementByID returns the first descendant element with the given id
// attribute, or nil.
func (n *Node) ElementByID(id string) *Node {
	return n.Find(func(c *Node) bool {
		if c.Type != ElementNode {
			return false
		}
		v, ok := c.Attr("id")
		return ok && v == id
	})
}

// FirstChildElement returns the first child of n that is an element with the
// given tag, or nil. Empty tag matches any element.
func (n *Node) FirstChildElement(tag string) *Node {
	tag = strings.ToLower(tag)
	for _, c := range n.Children {
		if c.Type == ElementNode && (tag == "" || c.Tag == tag) {
			return c
		}
	}
	return nil
}

// ChildElements returns the element children of n in order.
func (n *Node) ChildElements() []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Type == ElementNode {
			out = append(out, c)
		}
	}
	return out
}

// TextContent concatenates the data of every descendant text node.
func (n *Node) TextContent() string {
	var b strings.Builder
	n.Walk(func(c *Node) bool {
		if c.Type == TextNode {
			b.WriteString(c.Data)
		}
		return true
	})
	return b.String()
}

// CountNodes returns the number of nodes in the subtree rooted at n,
// including n itself.
func (n *Node) CountNodes() int {
	count := 0
	n.Walk(func(*Node) bool { count++; return true })
	return count
}

// AttrNames returns the attribute names of n sorted alphabetically; useful
// for stable comparisons in tests.
func (n *Node) AttrNames() []string {
	names := make([]string, 0, len(n.Attrs))
	for _, a := range n.Attrs {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return names
}

// Document is a parsed HTML document: an optional doctype plus the <html>
// documentElement. Root is never nil for documents produced by Parse.
type Document struct {
	Doctype string // raw text of the doctype declaration, without <! and >
	Root    *Node  // the <html> element
}

// Head returns the document's <head> element, creating an empty one as the
// first child of the root if absent.
func (d *Document) Head() *Node {
	if h := d.Root.FirstChildElement("head"); h != nil {
		return h
	}
	h := NewElement("head")
	if len(d.Root.Children) > 0 {
		d.Root.InsertBefore(h, d.Root.Children[0])
	} else {
		d.Root.AppendChild(h)
	}
	return h
}

// Body returns the document's <body> element, or nil when the document uses
// a frameset instead.
func (d *Document) Body() *Node {
	return d.Root.FirstChildElement("body")
}

// FrameSet returns the document's top-level <frameset> element, or nil.
func (d *Document) FrameSet() *Node {
	return d.Root.FirstChildElement("frameset")
}

// Clone returns a deep copy of the document.
func (d *Document) Clone() *Document {
	return &Document{Doctype: d.Doctype, Root: d.Root.Clone()}
}

// ByID is a convenience alias for Root.ElementByID.
func (d *Document) ByID(id string) *Node { return d.Root.ElementByID(id) }

// ByTag is a convenience alias for Root.ElementsByTag.
func (d *Document) ByTag(tag string) []*Node { return d.Root.ElementsByTag(tag) }
