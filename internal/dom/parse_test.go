package dom

import (
	"strings"
	"testing"
)

func TestParseMinimalDocument(t *testing.T) {
	doc := Parse(`<!DOCTYPE html><html><head><title>Hi</title></head><body><p>x</p></body></html>`)
	if doc.Doctype != "DOCTYPE html" {
		t.Errorf("doctype = %q", doc.Doctype)
	}
	if doc.Root.Tag != "html" {
		t.Fatalf("root tag = %q", doc.Root.Tag)
	}
	head := doc.Head()
	if head == nil || head.FirstChildElement("title") == nil {
		t.Fatal("missing head/title")
	}
	if got := head.FirstChildElement("title").TextContent(); got != "Hi" {
		t.Errorf("title = %q", got)
	}
	body := doc.Body()
	if body == nil {
		t.Fatal("missing body")
	}
	if p := body.FirstChildElement("p"); p == nil || p.TextContent() != "x" {
		t.Errorf("body p wrong: %v", OuterHTML(body))
	}
}

func TestParseSynthesizesSkeleton(t *testing.T) {
	doc := Parse(`<p>hello</p>`)
	if doc.Root.Tag != "html" {
		t.Fatal("no html root")
	}
	if doc.Head() == nil {
		t.Fatal("no head")
	}
	body := doc.Body()
	if body == nil {
		t.Fatal("no body")
	}
	if p := body.FirstChildElement("p"); p == nil || p.TextContent() != "hello" {
		t.Errorf("content not relocated into body: %s", doc.HTML())
	}
}

func TestParseHoistsHeadishElements(t *testing.T) {
	doc := Parse(`<title>T</title><meta charset="utf-8"><div>d</div>`)
	head := doc.Head()
	if head.FirstChildElement("title") == nil {
		t.Error("title not hoisted to head")
	}
	if head.FirstChildElement("meta") == nil {
		t.Error("meta not hoisted to head")
	}
	if doc.Body().FirstChildElement("div") == nil {
		t.Error("div not placed in body")
	}
}

func TestParseAttributes(t *testing.T) {
	doc := Parse(`<html><body><a href="http://x/y?a=1&amp;b=2" class='c d' data-n=5 disabled>z</a></body></html>`)
	a := doc.Root.ElementsByTag("a")[0]
	if v, _ := a.Attr("href"); v != "http://x/y?a=1&b=2" {
		t.Errorf("href = %q (entity not decoded?)", v)
	}
	if v, _ := a.Attr("class"); v != "c d" {
		t.Errorf("class = %q", v)
	}
	if v, _ := a.Attr("data-n"); v != "5" {
		t.Errorf("data-n = %q", v)
	}
	if v, ok := a.Attr("disabled"); !ok || v != "" {
		t.Errorf("disabled = %q ok=%v", v, ok)
	}
}

func TestParseAttributeCaseInsensitive(t *testing.T) {
	doc := Parse(`<body><form ACTION="/go" onSubmit="f()"></form></body>`)
	f := doc.Root.ElementsByTag("form")[0]
	if v, _ := f.Attr("action"); v != "/go" {
		t.Errorf("action = %q", v)
	}
	if v, _ := f.Attr("onsubmit"); v != "f()" {
		t.Errorf("onsubmit = %q", v)
	}
}

func TestParseVoidElements(t *testing.T) {
	doc := Parse(`<body><img src="a.png"><br><input name="q"><p>after</p></body>`)
	body := doc.Body()
	if len(body.ElementsByTag("img")) != 1 || len(body.ElementsByTag("br")) != 1 {
		t.Fatalf("void elements missing: %s", OuterHTML(body))
	}
	img := body.ElementsByTag("img")[0]
	if len(img.Children) != 0 {
		t.Error("img should have no children")
	}
	// p must be a sibling, not nested inside input.
	if p := body.FirstChildElement("p"); p == nil {
		t.Errorf("p not at body level: %s", OuterHTML(body))
	}
}

func TestParseSelfClosing(t *testing.T) {
	doc := Parse(`<body><div id="a"/><span>s</span></body>`)
	// Self-closing non-void: treated as empty element (XHTML style).
	div := doc.ByID("a")
	if div == nil {
		t.Fatal("div missing")
	}
	if len(div.Children) != 0 {
		t.Errorf("self-closed div has children: %s", OuterHTML(div))
	}
}

func TestParseScriptRawText(t *testing.T) {
	src := `<head><script>if (a < b && x > y) { document.write("<p>no</p>"); }</script></head>`
	doc := Parse(src)
	sc := doc.Head().FirstChildElement("script")
	if sc == nil {
		t.Fatal("script missing")
	}
	want := `if (a < b && x > y) { document.write("<p>no</p>"); }`
	if got := sc.TextContent(); got != want {
		t.Errorf("script text = %q, want %q", got, want)
	}
	// The <p> inside the string must NOT have become an element.
	if len(doc.Root.ElementsByTag("p")) != 0 {
		t.Error("script content was parsed as markup")
	}
}

func TestParseScriptCloseTagCaseInsensitive(t *testing.T) {
	doc := Parse(`<head><script>x=1</SCRIPT><title>T</title></head>`)
	if doc.Head().FirstChildElement("title") == nil {
		t.Fatalf("close tag case-insensitivity broken: %s", doc.HTML())
	}
}

func TestParseStyleRawText(t *testing.T) {
	doc := Parse(`<head><style>a > b { color: red; }</style></head>`)
	st := doc.Head().FirstChildElement("style")
	if st == nil || !strings.Contains(st.TextContent(), "a > b") {
		t.Fatalf("style raw text lost: %s", doc.HTML())
	}
}

func TestParseComments(t *testing.T) {
	doc := Parse(`<body><!-- a comment with <tags> inside --><p>x</p></body>`)
	var comments []*Node
	doc.Root.Walk(func(n *Node) bool {
		if n.Type == CommentNode {
			comments = append(comments, n)
		}
		return true
	})
	if len(comments) != 1 || !strings.Contains(comments[0].Data, "<tags>") {
		t.Fatalf("comment handling wrong: %v", comments)
	}
}

func TestParseImpliedEndTags(t *testing.T) {
	doc := Parse(`<body><ul><li>one<li>two<li>three</ul></body>`)
	ul := doc.Root.ElementsByTag("ul")[0]
	lis := ul.ChildElements()
	if len(lis) != 3 {
		t.Fatalf("want 3 sibling li, got %d: %s", len(lis), OuterHTML(ul))
	}
	for i, want := range []string{"one", "two", "three"} {
		if got := lis[i].TextContent(); got != want {
			t.Errorf("li[%d] = %q, want %q", i, got, want)
		}
	}
}

func TestParseTableImpliedEnds(t *testing.T) {
	doc := Parse(`<body><table><tr><td>a<td>b<tr><td>c</table></body>`)
	table := doc.Root.ElementsByTag("table")[0]
	trs := table.ElementsByTag("tr")
	if len(trs) != 2 {
		t.Fatalf("want 2 tr, got %d: %s", len(trs), OuterHTML(table))
	}
	if tds := trs[0].ElementsByTag("td"); len(tds) != 2 {
		t.Errorf("row 0: want 2 td, got %d", len(tds))
	}
}

func TestParseUnmatchedEndTagIgnored(t *testing.T) {
	doc := Parse(`<body><div>a</span>b</div></body>`)
	div := doc.Root.ElementsByTag("div")[0]
	if got := div.TextContent(); got != "ab" {
		t.Errorf("text = %q, want ab", got)
	}
}

func TestParseUnclosedElementsClosedAtEOF(t *testing.T) {
	doc := Parse(`<body><div><p>never closed`)
	if doc.Body() == nil {
		t.Fatal("body missing")
	}
	p := doc.Root.ElementsByTag("p")
	if len(p) != 1 || p[0].TextContent() != "never closed" {
		t.Fatalf("unclosed p lost: %s", doc.HTML())
	}
}

func TestParseFrameset(t *testing.T) {
	doc := Parse(`<html><head><title>f</title></head><frameset cols="50%,50%"><frame src="a.html"><frame src="b.html"></frameset><noframes>sorry</noframes></html>`)
	if doc.Body() != nil {
		t.Error("frameset page must have no body")
	}
	fs := doc.FrameSet()
	if fs == nil {
		t.Fatal("frameset missing")
	}
	if frames := fs.ElementsByTag("frame"); len(frames) != 2 {
		t.Errorf("want 2 frames, got %d", len(frames))
	}
	if doc.Root.FirstChildElement("noframes") == nil {
		t.Error("noframes missing at top level")
	}
}

func TestParseLoneLessThanIsText(t *testing.T) {
	doc := Parse(`<body>a < b and a <3 b</body>`)
	if got := doc.Body().TextContent(); got != "a < b and a <3 b" {
		t.Errorf("text = %q", got)
	}
}

func TestParseEmptyInput(t *testing.T) {
	doc := Parse("")
	if doc.Root == nil || doc.Root.Tag != "html" {
		t.Fatal("empty input must still produce html root")
	}
	if doc.Head() == nil || doc.Body() == nil {
		t.Fatal("empty input must produce head and body")
	}
}

func TestParseHTMLAttrsFromLateTag(t *testing.T) {
	doc := Parse(`<html lang="en"><body>x</body></html>`)
	if v, _ := doc.Root.Attr("lang"); v != "en" {
		t.Errorf("lang = %q", v)
	}
}

func TestParseFragmentBasic(t *testing.T) {
	nodes := ParseFragment(`<b>x</b>plain<i>y</i>`, "div")
	if len(nodes) != 3 {
		t.Fatalf("want 3 nodes, got %d", len(nodes))
	}
	if nodes[0].Tag != "b" || nodes[1].Type != TextNode || nodes[2].Tag != "i" {
		t.Errorf("fragment structure wrong")
	}
	for _, n := range nodes {
		if n.Parent != nil {
			t.Error("fragment nodes must be parentless")
		}
	}
}

func TestParseFragmentNoSkeleton(t *testing.T) {
	nodes := ParseFragment(`<p>x</p>`, "body")
	if len(nodes) != 1 || nodes[0].Tag != "p" {
		t.Fatalf("fragment grew a skeleton: %v", nodes)
	}
}

func TestParseFragmentRawTextContext(t *testing.T) {
	nodes := ParseFragment(`a < b <i>not a tag</i>`, "script")
	if len(nodes) != 1 || nodes[0].Type != TextNode {
		t.Fatalf("script context must yield one text node, got %v", nodes)
	}
}

func TestSetInnerHTML(t *testing.T) {
	doc := Parse(`<body><div id="t"><span>old</span></div></body>`)
	div := doc.ByID("t")
	SetInnerHTML(div, `<em>new</em> text`)
	if got := InnerHTML(div); got != `<em>new</em> text` {
		t.Errorf("InnerHTML = %q", got)
	}
	if div.Children[0].Parent != div {
		t.Error("new children not parented")
	}
}

func TestDecodeEntities(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a&amp;b", "a&b"},
		{"&lt;&gt;", "<>"},
		{"&quot;q&quot;", `"q"`},
		{"&apos;", "'"},
		{"&#65;", "A"},
		{"&#x41;", "A"},
		{"&#x20AC;", "€"},
		{"&unknown;", "&unknown;"},
		{"a & b", "a & b"},
		{"&", "&"},
		{"&#;", "&#;"},
		{"100% &done", "100% &done"},
	}
	for _, c := range cases {
		if got := DecodeEntities(c.in); got != c.want {
			t.Errorf("DecodeEntities(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseDeepNesting(t *testing.T) {
	var b strings.Builder
	b.WriteString("<body>")
	const depth = 500
	for i := 0; i < depth; i++ {
		b.WriteString("<div>")
	}
	b.WriteString("core")
	for i := 0; i < depth; i++ {
		b.WriteString("</div>")
	}
	b.WriteString("</body>")
	doc := Parse(b.String())
	divs := doc.Root.ElementsByTag("div")
	if len(divs) != depth {
		t.Fatalf("want %d divs, got %d", depth, len(divs))
	}
}
