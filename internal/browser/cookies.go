package browser

import (
	"sort"
	"strings"
	"sync"
)

// CookieJar stores cookies per hostname. Only the name=value core of the
// cookie protocol is modeled — enough for the session-protected workloads
// in the evaluation (shop carts, portal sessions).
type CookieJar struct {
	mu      sync.RWMutex
	cookies map[string]map[string]string // host → name → value
}

// NewCookieJar returns an empty jar.
func NewCookieJar() *CookieJar {
	return &CookieJar{cookies: make(map[string]map[string]string)}
}

// SetFromHeader records a Set-Cookie header value received from host.
func (j *CookieJar) SetFromHeader(host, setCookie string) {
	if setCookie == "" {
		return
	}
	nameValue := strings.Split(setCookie, ";")[0]
	name, value, ok := strings.Cut(strings.TrimSpace(nameValue), "=")
	if !ok || name == "" {
		return
	}
	j.mu.Lock()
	if j.cookies[host] == nil {
		j.cookies[host] = make(map[string]string)
	}
	j.cookies[host][name] = value
	j.mu.Unlock()
}

// Header returns the Cookie request header value for host, or "".
func (j *CookieJar) Header(host string) string {
	j.mu.RLock()
	defer j.mu.RUnlock()
	m := j.cookies[host]
	if len(m) == 0 {
		return ""
	}
	// Deterministic order keeps wire traffic reproducible.
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(n)
		b.WriteByte('=')
		b.WriteString(m[n])
	}
	return b.String()
}

// Get returns a cookie value for host.
func (j *CookieJar) Get(host, name string) (string, bool) {
	j.mu.RLock()
	defer j.mu.RUnlock()
	v, ok := j.cookies[host][name]
	return v, ok
}

// Clear drops all cookies.
func (j *CookieJar) Clear() {
	j.mu.Lock()
	j.cookies = make(map[string]map[string]string)
	j.mu.Unlock()
}
