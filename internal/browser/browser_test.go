package browser

import (
	"strings"
	"testing"

	"rcb/internal/dom"
	"rcb/internal/httpwire"
	"rcb/internal/sites"
)

func newTestWorld(t *testing.T) (*sites.Corpus, *Browser) {
	t.Helper()
	corpus, err := sites.NewCorpus()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(corpus.Close)
	b := New("host.lan", corpus.Network.Dialer("host.lan"))
	t.Cleanup(b.Close)
	return corpus, b
}

func TestResolve(t *testing.T) {
	cases := []struct{ base, ref, want string }{
		{"http://www.x.com/a/b.html", "/img/i.png", "http://www.x.com/img/i.png"},
		{"http://www.x.com/a/b.html", "img/i.png", "http://www.x.com/a/img/i.png"},
		{"http://www.x.com/a/", "http://cdn.y.com/z.js", "http://cdn.y.com/z.js"},
		{"http://www.x.com/", "?q=1", "http://www.x.com/?q=1"},
		{"https://s.com/p", "/q", "https://s.com/q"},
	}
	for _, c := range cases {
		got, err := Resolve(c.base, c.ref)
		if err != nil || got != c.want {
			t.Errorf("Resolve(%q, %q) = %q, %v; want %q", c.base, c.ref, got, err, c.want)
		}
	}
}

func TestAddrOf(t *testing.T) {
	cases := []struct{ in, want string }{
		{"http://www.x.com/p", "www.x.com:80"},
		{"http://www.x.com:3000/p", "www.x.com:3000"},
		{"https://secure.com/", "secure.com:443"},
	}
	for _, c := range cases {
		got, err := AddrOf(c.in)
		if err != nil || got != c.want {
			t.Errorf("AddrOf(%q) = %q, %v; want %q", c.in, got, err, c.want)
		}
	}
	if _, err := AddrOf("not a url at all ::"); err == nil {
		t.Error("expected error for garbage URL")
	}
	if _, err := AddrOf("/relative/only"); err == nil {
		t.Error("expected error for host-less URL")
	}
}

func TestTargetOf(t *testing.T) {
	if got := TargetOf("http://h/p/q.html?a=1"); got != "/p/q.html?a=1" {
		t.Errorf("got %q", got)
	}
	if got := TargetOf("http://h"); got != "/" {
		t.Errorf("bare host target = %q", got)
	}
}

func TestNavigateLoadsPageAndObjects(t *testing.T) {
	_, b := newTestWorld(t)
	spec := sites.Table1[1] // google.com
	stats, err := b.Navigate("http://" + spec.Host() + "/")
	if err != nil {
		t.Fatal(err)
	}
	if stats.DocTxn.Down <= spec.PageBytes() {
		t.Errorf("doc down bytes %d, want > page size %d (headers included)", stats.DocTxn.Down, spec.PageBytes())
	}
	inv := sites.Inventory(spec)
	if len(stats.Objects) != len(inv) {
		t.Errorf("fetched %d objects, inventory has %d", len(stats.Objects), len(inv))
	}
	if b.Cache.Len() == 0 {
		t.Error("cacheable objects not cached")
	}
	if b.URL() != "http://"+spec.Host()+"/" {
		t.Errorf("URL = %q", b.URL())
	}
	if b.Version() == 0 {
		t.Error("version not bumped")
	}
}

func TestNavigateSecondLoadHitsCache(t *testing.T) {
	_, b := newTestWorld(t)
	spec := sites.Table1[1]
	url := "http://" + spec.Host() + "/"
	if _, err := b.Navigate(url); err != nil {
		t.Fatal(err)
	}
	stats, err := b.Navigate(url)
	if err != nil {
		t.Fatal(err)
	}
	if hits := stats.CacheHits(); hits != len(stats.Objects) {
		t.Errorf("second load: %d/%d cache hits", hits, len(stats.Objects))
	}
	if len(stats.NetworkObjects()) != 0 {
		t.Error("second load should not refetch cacheable objects")
	}
}

func TestNavigateSetsCookies(t *testing.T) {
	_, b := newTestWorld(t)
	spec, _ := sites.SiteByName("facebook.com")
	if _, err := b.Navigate("http://" + spec.Host() + "/"); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Jar.Get("www.facebook.com", "sid"); !ok {
		t.Fatal("session cookie not stored")
	}
}

func TestObserverRecordsResolutions(t *testing.T) {
	_, b := newTestWorld(t)
	spec := sites.Table1[1]
	if _, err := b.Navigate("http://" + spec.Host() + "/"); err != nil {
		t.Fatal(err)
	}
	downloads := b.Observer.Downloads()
	if len(downloads) == 0 {
		t.Fatal("observer recorded nothing")
	}
	for _, abs := range downloads {
		if !IsAbsolute(abs) {
			t.Errorf("observer holds non-absolute URL %q", abs)
		}
	}
	// The generated page uses scheme-less relative refs; the observer must
	// map them back.
	inv := sites.Inventory(spec)
	if abs, ok := b.Observer.Resolve(inv[len(inv)-1].Path); !ok || !strings.HasPrefix(abs, "http://") {
		t.Errorf("relative ref not resolvable: %q %v", abs, ok)
	}
}

func TestSubmitFormGET(t *testing.T) {
	corpus, b := newTestWorld(t)
	_ = corpus
	if _, err := b.Navigate("http://" + sites.ShopHost + "/"); err != nil {
		t.Fatal(err)
	}
	var form *dom.Node
	err := b.WithDocument(func(_ string, doc *dom.Document) error {
		form = doc.ByID("search")
		return nil
	})
	if err != nil || form == nil {
		t.Fatalf("no search form: %v", err)
	}
	if _, err := b.SubmitForm(form, []httpwire.FormField{{Name: "q", Value: "macbook"}}); err != nil {
		t.Fatal(err)
	}
	err = b.WithDocument(func(url string, doc *dom.Document) error {
		if !strings.Contains(url, "q=macbook") {
			t.Errorf("URL after GET submit = %q", url)
		}
		if doc.ByID("results") == nil {
			t.Error("results page not loaded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSubmitFormPOSTKeepsSession(t *testing.T) {
	corpus, b := newTestWorld(t)
	if _, err := b.Navigate("http://" + sites.ShopHost + "/"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Navigate("http://" + sites.ShopHost + "/product/1"); err != nil {
		t.Fatal(err)
	}
	var form *dom.Node
	b.WithDocument(func(_ string, doc *dom.Document) error {
		form = doc.ByID("addtocart")
		return nil
	})
	if form == nil {
		t.Fatal("no add-to-cart form")
	}
	if _, err := b.SubmitForm(form, []httpwire.FormField{{Name: "product", Value: "1"}}); err != nil {
		t.Fatal(err)
	}
	sid, _ := b.Jar.Get("shop.example", "sid")
	if items := corpus.Shop.CartItems(sid); len(items) != 1 || items[0] != 1 {
		t.Fatalf("cart = %v", items)
	}
}

func TestApplyMutationBumpsVersionAndNotifies(t *testing.T) {
	_, b := newTestWorld(t)
	if _, err := b.Navigate("http://" + sites.MapsHost + "/"); err != nil {
		t.Fatal(err)
	}
	v := b.Version()
	notified := 0
	b.OnChange(func() { notified++ })
	err := b.ApplyMutation(func(doc *dom.Document) error {
		dom.SetInnerHTML(doc.ByID("status"), "moved")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.Version() != v+1 {
		t.Errorf("version = %d, want %d", b.Version(), v+1)
	}
	if notified != 1 {
		t.Errorf("notified %d times", notified)
	}
}

func TestApplyMutationErrorDoesNotBump(t *testing.T) {
	_, b := newTestWorld(t)
	if _, err := b.Navigate("http://" + sites.MapsHost + "/"); err != nil {
		t.Fatal(err)
	}
	v := b.Version()
	wantErr := b.ApplyMutation(func(*dom.Document) error {
		return errTest
	})
	if wantErr != errTest {
		t.Fatalf("err = %v", wantErr)
	}
	if b.Version() != v {
		t.Error("failed mutation must not bump version")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }

func TestWithDocumentNoPage(t *testing.T) {
	b := New("x", nil) // never dials
	if err := b.WithDocument(func(string, *dom.Document) error { return nil }); err == nil {
		t.Fatal("WithDocument before any navigation must error")
	}
	if err := b.ApplyMutation(func(*dom.Document) error { return nil }); err == nil {
		t.Fatal("ApplyMutation before any navigation must error")
	}
}

func TestNavigate404(t *testing.T) {
	_, b := newTestWorld(t)
	if _, err := b.Navigate("http://" + sites.ShopHost + "/definitely-missing"); err == nil {
		t.Fatal("404 navigation must error")
	}
}

func TestObjectRefsExtraction(t *testing.T) {
	doc := dom.Parse(`<html><head>
		<link rel="stylesheet" href="/a.css">
		<link rel="icon" href="/fav.ico">
		<script src="/s.js"></script>
		<script>inline();</script>
	</head><body>
		<img src="/i.png"><img src="">
		<iframe src="/frame.html"></iframe>
		<object data="/movie.swf"></object>
	</body></html>`)
	refs := ObjectRefs(doc)
	want := []string{"/a.css", "/s.js", "/i.png", "/frame.html", "/movie.swf"}
	if len(refs) != len(want) {
		t.Fatalf("refs = %v, want %v", refs, want)
	}
	for i := range want {
		if refs[i] != want[i] {
			t.Errorf("refs[%d] = %q, want %q", i, refs[i], want[i])
		}
	}
}

func TestCookieJar(t *testing.T) {
	j := NewCookieJar()
	j.SetFromHeader("a.com", "sid=xyz; Path=/; HttpOnly")
	j.SetFromHeader("a.com", "theme=dark")
	j.SetFromHeader("b.com", "sid=other")
	if got := j.Header("a.com"); got != "sid=xyz; theme=dark" {
		t.Errorf("header = %q", got)
	}
	if v, ok := j.Get("b.com", "sid"); !ok || v != "other" {
		t.Errorf("b.com sid = %q %v", v, ok)
	}
	if got := j.Header("c.com"); got != "" {
		t.Errorf("empty host header = %q", got)
	}
	j.SetFromHeader("a.com", "") // ignored
	j.SetFromHeader("a.com", "novalue")
	if got := j.Header("a.com"); got != "sid=xyz; theme=dark" {
		t.Errorf("malformed set-cookie changed jar: %q", got)
	}
}

func TestCacheBasics(t *testing.T) {
	c := NewCache()
	c.Put(&CacheEntry{URL: "http://x/i.png", ContentType: "image/png", Body: []byte("abc")})
	if !c.Has("http://x/i.png") || c.Len() != 1 {
		t.Fatal("put/has broken")
	}
	e, ok := c.Get("http://x/i.png")
	if !ok || string(e.Body) != "abc" {
		t.Fatal("get broken")
	}
	c.Clear()
	if c.Len() != 0 {
		t.Fatal("clear broken")
	}
}

func TestCacheable(t *testing.T) {
	cases := []struct {
		cc   string
		want bool
	}{
		{"max-age=3600", true},
		{"public, max-age=60", true},
		{"no-store", false},
		{"no-cache", false},
		{"max-age=60, no-store", false},
		{"", false},
	}
	for _, c := range cases {
		if got := Cacheable(c.cc); got != c.want {
			t.Errorf("Cacheable(%q) = %v", c.cc, got)
		}
	}
}
