package browser

import (
	"strings"
	"sync"
)

// CacheEntry is one cached response body keyed by absolute URL.
type CacheEntry struct {
	URL         string
	ContentType string
	Body        []byte
}

// Cache is the browser object cache. It stands in for Mozilla's cache
// service: RCB-Agent reads it (never writes it) to serve cached objects
// directly to participant browsers in cache mode (paper §4.1.1, "Read
// Cached Object").
type Cache struct {
	mu      sync.RWMutex
	entries map[string]*CacheEntry
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*CacheEntry)}
}

// Get returns the entry for an absolute URL.
func (c *Cache) Get(absURL string) (*CacheEntry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[absURL]
	return e, ok
}

// Put stores an entry under its URL.
func (c *Cache) Put(e *CacheEntry) {
	c.mu.Lock()
	c.entries[e.URL] = e
	c.mu.Unlock()
}

// Has reports whether an absolute URL is cached — the check RCB-Agent makes
// per object when deciding whether to rewrite its URL to an agent address
// (paper Figure 3, "Objects Exist in Cache?").
func (c *Cache) Has(absURL string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.entries[absURL]
	return ok
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Clear drops every entry (the experiment harness clears caches between
// rounds, as the paper's methodology does).
func (c *Cache) Clear() {
	c.mu.Lock()
	c.entries = make(map[string]*CacheEntry)
	c.mu.Unlock()
}

// Cacheable decides whether a response may enter the cache, from its
// Cache-Control header.
func Cacheable(cacheControl string) bool {
	cc := strings.ToLower(cacheControl)
	if strings.Contains(cc, "no-store") || strings.Contains(cc, "no-cache") {
		return false
	}
	return strings.Contains(cc, "max-age")
}
