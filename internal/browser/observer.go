package browser

import "sync"

// DownloadObserver records the complete URL of every object-download
// request the browser issues, keyed by the reference string that appeared
// in the document. It models the nsIObserverService hook RCB-Agent uses to
// "record complete URL addresses for all the object downloading requests"
// so URL conversion on the cloned document is exact (paper §4.1.2).
type DownloadObserver struct {
	mu          sync.RWMutex
	resolutions map[string]string // document reference → absolute URL
	order       []string          // absolute URLs in download order
}

// NewDownloadObserver returns an empty observer.
func NewDownloadObserver() *DownloadObserver {
	return &DownloadObserver{resolutions: make(map[string]string)}
}

// Record notes that the reference ref in the current document resolved to
// the absolute URL abs and was downloaded.
func (o *DownloadObserver) Record(ref, abs string) {
	o.mu.Lock()
	if _, seen := o.resolutions[ref]; !seen {
		o.order = append(o.order, abs)
	}
	o.resolutions[ref] = abs
	o.mu.Unlock()
}

// Resolve returns the recorded absolute URL for a document reference.
func (o *DownloadObserver) Resolve(ref string) (string, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	abs, ok := o.resolutions[ref]
	return abs, ok
}

// Downloads returns the absolute URLs recorded so far, in first-seen order.
func (o *DownloadObserver) Downloads() []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return append([]string(nil), o.order...)
}

// Reset clears the observer for a new page load.
func (o *DownloadObserver) Reset() {
	o.mu.Lock()
	o.resolutions = make(map[string]string)
	o.order = nil
	o.mu.Unlock()
}
