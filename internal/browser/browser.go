package browser

import (
	"bytes"
	"fmt"
	"sync"

	"rcb/internal/dom"
	"rcb/internal/httpwire"
	"rcb/internal/netsim"
)

// ObjectFetch records one supplementary-object download during a page load
// or render.
type ObjectFetch struct {
	URL       string
	Txn       netsim.Txn // exact wire bytes up/down
	FromCache bool       // satisfied locally without network traffic
}

// StatusError reports a page load the server answered with a non-success
// status. It preserves the status code and response headers so protocol
// clients layered on the browser (the RCB snippet) can read rejection
// metadata — e.g. a co-browsing agent's close reason — instead of pattern
// matching an error string.
type StatusError struct {
	Browser    string
	URL        string
	StatusCode int
	Header     httpwire.Header
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("browser %s: GET %s returned %d", e.Browser, e.URL, e.StatusCode)
}

// LoadStats captures the measurable work of loading or rendering a page:
// the document transaction and every object fetch. The experiment harness
// replays these through netsim.LinkModel to produce the paper's M1–M4.
type LoadStats struct {
	URL     string
	DocTxn  netsim.Txn
	Objects []ObjectFetch
}

// NetworkObjects returns the object transactions that actually hit the
// network (cache hits excluded).
func (s *LoadStats) NetworkObjects() []netsim.Txn {
	var out []netsim.Txn
	for _, o := range s.Objects {
		if !o.FromCache {
			out = append(out, o.Txn)
		}
	}
	return out
}

// CacheHits counts object fetches served from the local cache.
func (s *LoadStats) CacheHits() int {
	n := 0
	for _, o := range s.Objects {
		if o.FromCache {
			n++
		}
	}
	return n
}

// Browser is a minimal browser model: it loads pages over httpwire, holds
// the live DOM, caches objects, carries cookies, and notifies subscribers
// on every document change. A Browser is safe for concurrent use; RCB-Agent
// observes it from server goroutines while the user navigates.
type Browser struct {
	// Name is the browser's location on the virtual network ("host.lan").
	Name     string
	Client   *httpwire.Client
	Cache    *Cache
	Jar      *CookieJar
	Observer *DownloadObserver
	// FetchOnMutate controls whether ApplyMutation fetches objects the
	// mutated document newly references, as a renderer would. On by
	// default; Ajax-Snippet turns it off for participant browsers because
	// the snippet performs its own render pass after applying content
	// (Figure 5).
	FetchOnMutate bool

	mu       sync.Mutex
	pageURL  string
	doc      *dom.Document
	version  int64
	history  []string
	onChange []func()
}

// New returns a browser located at name, dialing through dial.
func New(name string, dial httpwire.Dialer) *Browser {
	return &Browser{
		Name:          name,
		Client:        httpwire.NewClient(dial),
		Cache:         NewCache(),
		Jar:           NewCookieJar(),
		Observer:      NewDownloadObserver(),
		FetchOnMutate: true,
	}
}

// Close releases network resources.
func (b *Browser) Close() { b.Client.Close() }

// URL returns the current page URL ("" before the first navigation).
func (b *Browser) URL() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.pageURL
}

// Version returns the document version, incremented on every navigation or
// mutation. RCB-Agent's timestamp protocol keys off this (paper §4.1.1).
func (b *Browser) Version() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.version
}

// History returns the visited URLs in order.
func (b *Browser) History() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string(nil), b.history...)
}

// OnChange registers fn to run (synchronously) after every document change.
func (b *Browser) OnChange(fn func()) {
	b.mu.Lock()
	b.onChange = append(b.onChange, fn)
	b.mu.Unlock()
}

// WithDocument runs fn with the live document under the browser lock. The
// document must not be retained past fn. Returns an error when no page is
// loaded.
func (b *Browser) WithDocument(fn func(url string, doc *dom.Document) error) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.doc == nil {
		return fmt.Errorf("browser %s: no page loaded", b.Name)
	}
	return fn(b.pageURL, b.doc)
}

// ApplyMutation runs fn against the live document and bumps the version —
// the stand-in for in-page JavaScript mutating the DOM (Ajax apps, paper
// step 9: "any dynamic changes ... can be synchronized in real time").
// Objects the mutated document newly references are fetched into the cache
// afterwards, as a real browser's renderer would on seeing new src
// attributes.
func (b *Browser) ApplyMutation(fn func(doc *dom.Document) error) error {
	b.mu.Lock()
	if b.doc == nil {
		b.mu.Unlock()
		return fmt.Errorf("browser %s: no page loaded", b.Name)
	}
	err := fn(b.doc)
	if err != nil {
		b.mu.Unlock()
		return err
	}
	var refs []string
	if b.FetchOnMutate {
		refs = ObjectRefs(b.doc)
	}
	pageURL := b.pageURL
	b.bumpLocked()
	subs := append([]func(){}, b.onChange...)
	b.mu.Unlock()

	for _, ref := range refs {
		abs, err := Resolve(pageURL, ref)
		if err != nil {
			continue
		}
		b.Observer.Record(ref, abs)
		// FetchObject is a no-op network-wise on cache hits; a missing
		// object must not fail the mutation (browsers render broken images).
		_, _ = b.FetchObject(abs)
	}
	for _, fn := range subs {
		fn()
	}
	return nil
}

func (b *Browser) bumpLocked() { b.version++ }

// txnBytes computes the exact wire bytes of a request/response pair by
// serializing both messages the way httpwire puts them on the wire.
func txnBytes(req *httpwire.Request, resp *httpwire.Response) netsim.Txn {
	var up, down bytes.Buffer
	_ = httpwire.WriteRequest(&up, req)
	_ = httpwire.WriteResponse(&down, resp)
	return netsim.Txn{Up: up.Len(), Down: down.Len()}
}

// do sends a request with cookies attached and records Set-Cookie replies.
func (b *Browser) do(absURL string, req *httpwire.Request) (*httpwire.Response, netsim.Txn, error) {
	addr, err := AddrOf(absURL)
	if err != nil {
		return nil, netsim.Txn{}, err
	}
	host := HostOf(absURL)
	if c := b.Jar.Header(host); c != "" {
		req.Header.Set("Cookie", c)
	}
	req.Header.Set("Host", host)
	resp, err := b.Client.Do(addr, req)
	if err != nil {
		return nil, netsim.Txn{}, err
	}
	for _, sc := range resp.Header["Set-Cookie"] {
		b.Jar.SetFromHeader(host, sc)
	}
	return resp, txnBytes(req, resp), nil
}

// Navigate loads an absolute URL as the new current page: document fetch,
// parse, then supplementary-object fetches. Redirects (301/302) are
// followed up to 5 hops.
func (b *Browser) Navigate(absURL string) (*LoadStats, error) {
	req := httpwire.NewRequest("GET", TargetOf(absURL))
	return b.loadPage(absURL, req)
}

// SubmitForm submits the given form element from the current page with the
// provided field values, loading the result as the new page. Method and
// action come from the form's attributes, resolved against the page URL.
func (b *Browser) SubmitForm(form *dom.Node, fields []httpwire.FormField) (*LoadStats, error) {
	if form == nil || form.Tag != "form" {
		return nil, fmt.Errorf("browser %s: SubmitForm needs a <form> element", b.Name)
	}
	b.mu.Lock()
	pageURL := b.pageURL
	b.mu.Unlock()
	action := form.AttrOr("action", pageURL)
	absAction, err := Resolve(pageURL, action)
	if err != nil {
		return nil, err
	}
	method := form.AttrOr("method", "get")
	encoded := httpwire.EncodeForm(fields)
	if method == "post" || method == "POST" {
		req := httpwire.NewRequest("POST", TargetOf(absAction))
		req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		req.Body = []byte(encoded)
		return b.loadPage(absAction, req)
	}
	target := absAction
	if encoded != "" {
		target += "?" + encoded
	}
	return b.loadPage(target, httpwire.NewRequest("GET", TargetOf(target)))
}

// loadPage performs the document transaction, parses, renders objects, and
// installs the result as the current page.
func (b *Browser) loadPage(absURL string, req *httpwire.Request) (*LoadStats, error) {
	stats := &LoadStats{URL: absURL}
	resp, txn, err := b.do(absURL, req)
	if err != nil {
		return nil, err
	}
	for hops := 0; resp.StatusCode == 301 || resp.StatusCode == 302; hops++ {
		if hops >= 5 {
			return nil, fmt.Errorf("browser %s: redirect loop at %s", b.Name, absURL)
		}
		loc := resp.Header.Get("Location")
		if loc == "" {
			return nil, fmt.Errorf("browser %s: redirect without Location from %s", b.Name, absURL)
		}
		absURL, err = Resolve(absURL, loc)
		if err != nil {
			return nil, err
		}
		resp, txn, err = b.do(absURL, httpwire.NewRequest("GET", TargetOf(absURL)))
		if err != nil {
			return nil, err
		}
	}
	if resp.StatusCode != 200 {
		return nil, &StatusError{Browser: b.Name, URL: absURL, StatusCode: resp.StatusCode, Header: resp.Header}
	}
	stats.URL = absURL
	stats.DocTxn = txn
	doc := dom.Parse(string(resp.Body))

	b.Observer.Reset()
	objects, err := b.fetchObjects(doc, absURL)
	if err != nil {
		return nil, err
	}
	stats.Objects = objects

	b.mu.Lock()
	b.pageURL = absURL
	b.doc = doc
	b.history = append(b.history, absURL)
	b.bumpLocked()
	subs := append([]func(){}, b.onChange...)
	b.mu.Unlock()
	for _, fn := range subs {
		fn()
	}
	return stats, nil
}

// ObjectRefs extracts the supplementary-object references of a document in
// document order: stylesheets, scripts, images, frames, and embedded
// objects.
func ObjectRefs(doc *dom.Document) []string {
	var refs []string
	doc.Root.Walk(func(n *dom.Node) bool {
		if n.Type != dom.ElementNode {
			return true
		}
		switch n.Tag {
		case "link":
			if rel, _ := n.Attr("rel"); rel == "stylesheet" {
				if href, ok := n.Attr("href"); ok && href != "" {
					refs = append(refs, href)
				}
			}
		case "script", "img", "frame", "iframe":
			if src, ok := n.Attr("src"); ok && src != "" {
				refs = append(refs, src)
			}
		case "object":
			if data, ok := n.Attr("data"); ok && data != "" {
				refs = append(refs, data)
			}
		}
		return true
	})
	return refs
}

// fetchObjects downloads every supplementary object of doc, recording
// resolutions in the observer and populating the cache.
func (b *Browser) fetchObjects(doc *dom.Document, baseURL string) ([]ObjectFetch, error) {
	var out []ObjectFetch
	seen := make(map[string]bool)
	for _, ref := range ObjectRefs(doc) {
		abs, err := Resolve(baseURL, ref)
		if err != nil {
			continue // an unparseable reference is skipped, as browsers do
		}
		b.Observer.Record(ref, abs)
		if seen[abs] {
			continue
		}
		seen[abs] = true
		fetch, err := b.FetchObject(abs)
		if err != nil {
			// A missing object does not fail the page load; record a
			// zero-byte fetch so the stats still show the attempt.
			out = append(out, ObjectFetch{URL: abs})
			continue
		}
		out = append(out, fetch)
	}
	return out, nil
}

// FetchObject retrieves one object through the cache: a hit costs no
// network traffic; a miss is fetched and cached when the response allows.
func (b *Browser) FetchObject(absURL string) (ObjectFetch, error) {
	if _, ok := b.Cache.Get(absURL); ok {
		return ObjectFetch{URL: absURL, FromCache: true}, nil
	}
	req := httpwire.NewRequest("GET", TargetOf(absURL))
	resp, txn, err := b.do(absURL, req)
	if err != nil {
		return ObjectFetch{}, err
	}
	if resp.StatusCode != 200 {
		return ObjectFetch{}, fmt.Errorf("browser %s: GET %s returned %d", b.Name, absURL, resp.StatusCode)
	}
	if Cacheable(resp.Header.Get("Cache-Control")) {
		b.Cache.Put(&CacheEntry{URL: absURL, ContentType: resp.Header.Get("Content-Type"), Body: resp.Body})
	}
	return ObjectFetch{URL: absURL, Txn: txn}, nil
}

// RenderObjects fetches the supplementary objects of an externally supplied
// document — what the participant browser does after Ajax-Snippet installs
// new content. Object references must already be absolute (non-cache mode)
// or point at the RCB-Agent (cache mode); baseURL anchors any that are not.
func (b *Browser) RenderObjects(doc *dom.Document, baseURL string) []ObjectFetch {
	fetches, _ := b.fetchObjects(doc, baseURL)
	return fetches
}

// SetDocument installs a document directly (used by the participant side,
// whose page arrives through the co-browsing channel rather than a page
// load).
func (b *Browser) SetDocument(pageURL string, doc *dom.Document) {
	b.mu.Lock()
	b.pageURL = pageURL
	b.doc = doc
	b.history = append(b.history, pageURL)
	b.bumpLocked()
	subs := append([]func(){}, b.onChange...)
	b.mu.Unlock()
	for _, fn := range subs {
		fn()
	}
}
