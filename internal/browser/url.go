// Package browser models the two browsers of the RCB architecture: the host
// browser whose live DOM, cache, and download observer RCB-Agent reads, and
// the participant browser that renders synchronized content. It provides
// exactly the capabilities the paper's Firefox extension obtains from XPCOM
// (paper §4.1): the current document, a URL-keyed object cache, an observer
// recording absolute URLs of object downloads, cookies, and page loading.
package browser

import (
	"fmt"
	"net/url"
	"strings"
)

// Resolve resolves ref against base, returning an absolute URL string. It is
// the conversion RCB-Agent applies to every supplementary object reference
// of the cloned document (paper Figure 3, step 2).
func Resolve(base, ref string) (string, error) {
	b, err := url.Parse(base)
	if err != nil {
		return "", fmt.Errorf("browser: bad base url %q: %w", base, err)
	}
	r, err := url.Parse(ref)
	if err != nil {
		return "", fmt.Errorf("browser: bad ref url %q: %w", ref, err)
	}
	return b.ResolveReference(r).String(), nil
}

// AddrOf extracts the dialable virtual address (host:port) from an absolute
// URL, defaulting the port from the scheme (80 for http, 443 for https).
func AddrOf(rawurl string) (string, error) {
	u, err := url.Parse(rawurl)
	if err != nil {
		return "", fmt.Errorf("browser: bad url %q: %w", rawurl, err)
	}
	if u.Host == "" {
		return "", fmt.Errorf("browser: url %q has no host", rawurl)
	}
	host := u.Host
	if !strings.Contains(host, ":") {
		switch u.Scheme {
		case "https":
			host += ":443"
		default:
			host += ":80"
		}
	}
	return host, nil
}

// TargetOf extracts the origin-form request target (path plus query) from
// an absolute URL.
func TargetOf(rawurl string) string {
	u, err := url.Parse(rawurl)
	if err != nil {
		return "/"
	}
	target := u.EscapedPath()
	if target == "" {
		target = "/"
	}
	if u.RawQuery != "" {
		target += "?" + u.RawQuery
	}
	return target
}

// HostOf returns the bare hostname (no port) of an absolute URL, or "".
func HostOf(rawurl string) string {
	u, err := url.Parse(rawurl)
	if err != nil {
		return ""
	}
	return u.Hostname()
}

// IsAbsolute reports whether ref carries its own scheme and host.
func IsAbsolute(ref string) bool {
	u, err := url.Parse(ref)
	return err == nil && u.Scheme != "" && u.Host != ""
}
