package scenlab

// One test per (scenario family × link profile) pair. Fleet size comes
// from SCENLAB_N so every tier shares this harness: plain `go test` runs a
// mid-size fleet, -short (the CI smoke stage) a small one, and
// `make scale` / rcb-bench -scale push it to four digits. Tests run
// sequentially — each fleet is thousands of goroutines at full size, and
// under -race the per-process goroutine ceiling is the binding constraint.

import (
	"testing"
)

// testN sizes the lite fleet for one test run.
func testN() int {
	if testing.Short() {
		return EnvN(32)
	}
	return EnvN(96)
}

func runScenario(t *testing.T, family string, profile Profile, rounds int) *Result {
	t.Helper()
	res, err := Run(Config{
		Family:    family,
		Profile:   profile,
		N:         testN(),
		Sentinels: 4,
		Rounds:    rounds,
		Seed:      1,
	})
	if err != nil {
		t.Fatalf("%s/%s: %v", family, profile.Name, err)
	}
	for _, v := range res.Violations {
		t.Errorf("%s/%s: violation: %s", family, profile.Name, v)
	}
	if res.ActionsFired > 0 && res.Polls == 0 {
		t.Fatalf("%s/%s: no polls recorded — harness wired wrong", family, profile.Name)
	}
	return res
}

func TestFlashCrowdInstant(t *testing.T) {
	res := runScenario(t, FamilyFlashCrowd, ProfileInstant, 3)
	if res.JoinBuilds > 4 {
		t.Errorf("flash crowd join cost %d builds", res.JoinBuilds)
	}
}

func TestFlashCrowdWAN(t *testing.T) {
	runScenario(t, FamilyFlashCrowd, ProfileWAN, 3)
}

func TestThunderingHerdInstant(t *testing.T) {
	res := runScenario(t, FamilyThunderingHerd, ProfileInstant, 3)
	if res.WakeFanouts == 0 {
		t.Error("herd ran without a single hub fan-out — the fleet never actually parked")
	}
}

func TestChurnLossy(t *testing.T) {
	res := runScenario(t, FamilyChurn, ProfileLossy, 4)
	if res.Rejoins == 0 {
		t.Error("churn family produced zero rejoins — disconnect waves did not bite")
	}
}

func TestLongHaulLossy(t *testing.T) {
	runScenario(t, FamilyLongHaul, ProfileLossy, 5)
}

func TestLongHaulMobile(t *testing.T) {
	if testing.Short() {
		t.Skip("mobile long-haul covered by the full run")
	}
	runScenario(t, FamilyLongHaul, ProfileMobile, 5)
}

func TestSearchRolesWAN(t *testing.T) {
	res := runScenario(t, FamilySearchRoles, ProfileWAN, 4)
	if res.ActionsFired != 4 {
		t.Errorf("search roles fired %d driver inputs, want 4", res.ActionsFired)
	}
}

func TestWriterTurnsHandover(t *testing.T) {
	res := runScenario(t, FamilyWriterTurns, ProfileInstant, 4)
	if res.Moves == 0 {
		t.Log("note: zero MOVED relocations observed — lites may have switched address before touching the fence")
	}
}
