package scenlab

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rcb/internal/core"
	"rcb/internal/httpwire"
)

// meter counts wire bytes in both directions across every connection its
// dialer opens.
type meter struct {
	up, down atomic.Int64
}

func (m *meter) total() int64 { return m.up.Load() + m.down.Load() }

type meteredConn struct {
	net.Conn
	m *meter
}

func (c *meteredConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.m.down.Add(int64(n))
	return n, err
}

func (c *meteredConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.m.up.Add(int64(n))
	return n, err
}

// meteredDialer wraps a dialer so every connection it opens reports into m.
func meteredDialer(dial func(addr string) (net.Conn, error), m *meter) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		c, err := dial(addr)
		if err != nil {
			return nil, err
		}
		return &meteredConn{Conn: c, m: m}, nil
	}
}

// liteMode selects the delivery pattern a lite drives.
type liteMode int

const (
	liteLongPoll liteMode = iota // hanging poll, parks server-side
	liteInterval                 // paper-style fixed-interval polling
)

// lite is the scripted wire-level participant: the real protocol — join
// cookie, ts acknowledgment, optional delta advertisement, long-poll
// parking, piggybacked replay-stamped actions, close-reason handling with
// MOVED relocation and retryable rejoin — without a DOM. It tracks only
// the document timestamp it last received content for, which is the one
// fact the staleness probe and the convergence barrier need.
type lite struct {
	f        *fleet
	idx      int
	host     string
	client   *httpwire.Client
	mode     liteMode
	delta    bool
	wait     time.Duration // long-poll hang request
	interval time.Duration // pacing in interval mode
	rng      *rand.Rand    // owned by the run goroutine
	cid      string

	// ts is the docTime of the last content this lite holds; pid the
	// current participant identity ("" = must (re)join). pid is written by
	// the run goroutine and read by families injecting disconnects.
	ts  atomic.Int64
	pid atomic.Value // string

	mu    sync.Mutex
	queue []core.Action
	cseq  int64

	polls, contentPolls, deltaPolls, emptyPolls atomic.Int64
	rejoins, moves                              atomic.Int64
	joinedOnce                                  atomic.Bool

	stop    chan struct{}
	done    chan struct{}
	stopped atomic.Bool
}

func (l *lite) currentPID() string {
	if v := l.pid.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// enqueue stamps an action with this lite's replay identity and queues it
// for piggybacking on the next poll — the paper's upstream path.
func (l *lite) enqueue(act core.Action) {
	l.mu.Lock()
	l.cseq++
	act.CID, act.CSeq = l.cid, l.cseq
	l.queue = append(l.queue, act)
	l.mu.Unlock()
}

func (l *lite) takeActions() []core.Action {
	l.mu.Lock()
	defer l.mu.Unlock()
	acts := l.queue
	l.queue = nil
	return acts
}

// requeue puts unacknowledged actions back at the front of the queue,
// original stamps intact, so a transport failure or refused poll never
// loses interaction — the agent's replay filter absorbs any duplicate.
func (l *lite) requeue(acts []core.Action) {
	if len(acts) == 0 {
		return
	}
	l.mu.Lock()
	l.queue = append(acts, l.queue...)
	l.mu.Unlock()
}

// sleep pauses for d (with half-to-full jitter when jittered) unless the
// lite is stopped first.
func (l *lite) sleep(d time.Duration, jittered bool) bool {
	if d <= 0 {
		return !l.stopped.Load()
	}
	if jittered {
		d = d/2 + time.Duration(l.rng.Int63n(int64(d/2)+1))
	}
	select {
	case <-l.stop:
		return false
	case <-time.After(d):
		return true
	}
}

const (
	liteRetryBase = 10 * time.Millisecond
	liteRetryMax  = 250 * time.Millisecond
)

// run is the lite's whole life: join (retrying with jittered backoff),
// then poll until stopped, rejoining whenever the agent ends the session
// with a retryable reason or relocates it.
func (l *lite) run(startDelay time.Duration) {
	defer close(l.done)
	if !l.sleep(startDelay, false) {
		return
	}
	backoff := liteRetryBase
	for !l.stopped.Load() {
		select {
		case <-l.stop:
			return
		default:
		}
		if l.currentPID() == "" {
			if err := l.join(); err != nil {
				if !l.sleep(backoff, true) {
					return
				}
				backoff = min(backoff*2, liteRetryMax)
				continue
			}
			backoff = liteRetryBase
			continue
		}
		delay, err := l.pollOnce()
		if err != nil {
			if !l.sleep(backoff, true) {
				return
			}
			backoff = min(backoff*2, liteRetryMax)
			continue
		}
		backoff = liteRetryBase
		if !l.sleep(delay, false) {
			return
		}
	}
}

// join performs the Figure 3 entry: GET the session page, adopt the
// rcbpid identity cookie, and reset the acknowledged timestamp so the
// first poll takes a full sync.
func (l *lite) join() error {
	req := httpwire.NewRequest("GET", "/")
	resp, err := l.client.DoTimeout(l.f.addr(), req, 10*time.Second)
	if err != nil {
		return err
	}
	if resp.StatusCode != 200 {
		if term := l.handleRefusal("join", resp); term {
			return nil
		}
		return fmt.Errorf("join refused: %d", resp.StatusCode)
	}
	pid := pidFromSetCookie(resp.Header.Get("Set-Cookie"))
	if pid == "" {
		l.f.violate("lite %d: join response carries no rcbpid cookie", l.idx)
		return fmt.Errorf("no pid")
	}
	if !l.joinedOnce.CompareAndSwap(false, true) {
		l.rejoins.Add(1)
	}
	l.pid.Store(pid)
	l.ts.Store(0)
	return nil
}

// pollOnce performs one /poll exchange and returns how long the caller
// should idle before the next one (interval pacing or a server-assigned
// retry hint).
func (l *lite) pollOnce() (time.Duration, error) {
	acts := l.takeActions()
	ts := l.ts.Load()
	fields := []httpwire.FormField{{Name: "ts", Value: strconv.FormatInt(ts, 10)}}
	if l.delta && ts > 0 {
		fields = append(fields, httpwire.FormField{Name: "delta", Value: "1"})
	}
	if len(acts) > 0 {
		fields = append(fields, httpwire.FormField{Name: "actions", Value: core.EncodeActions(acts)})
	}
	wait := time.Duration(0)
	if l.mode == liteLongPoll && len(acts) == 0 {
		// An action-carrying request never asks to park, mirroring the
		// snippet: a parked exchange that later dies would replay actions
		// the host already applied.
		wait = l.wait
		fields = append(fields, httpwire.FormField{Name: "wait", Value: strconv.FormatInt(wait.Milliseconds(), 10)})
	}
	req := httpwire.NewRequest("POST", "/poll")
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("Cookie", "rcbpid="+l.currentPID())
	req.Body = []byte(httpwire.EncodeForm(fields))
	pollStart := time.Now()
	resp, err := l.client.DoTimeout(l.f.addr(), req, wait+10*time.Second)
	if err != nil {
		l.requeue(acts)
		return 0, err
	}
	l.polls.Add(1)
	if resp.StatusCode != 200 {
		l.requeue(acts)
		if term := l.handleRefusal("poll", resp); term {
			return 0, nil
		}
		return retryAfterOf(resp), fmt.Errorf("poll returned %d", resp.StatusCode)
	}
	if len(resp.Body) == 0 {
		l.emptyPolls.Add(1)
		l.stampProbe()
		delay := retryAfterOf(resp)
		if core.ParseCloseReason(resp.Header.Get(core.CloseReasonHeader)) == core.CloseAgentClosing {
			// The agent completed the park deliberately while shutting
			// down; pace instead of re-parking at network speed.
			if delay < 100*time.Millisecond {
				delay = 100 * time.Millisecond
			}
		}
		if l.mode == liteInterval && delay < l.interval {
			delay = l.interval
		}
		if wait > 0 && delay == 0 && time.Since(pollStart) < 50*time.Millisecond {
			// A request that asked to park was answered instantly empty
			// with no pacing hint: the agent refused the park (quiesce,
			// shutdown). Pace instead of re-polling at network speed.
			delay = 50 * time.Millisecond
		}
		return delay, nil
	}
	if core.MessageIsDelta(resp.Body) {
		l.deltaPolls.Add(1)
		// With the multi-base delta ring, whatever base the agent picked
		// must be the one this poll advertised — a patch against any other
		// docTime would corrupt a real participant's DOM silently, since
		// the DOM-less driver can't detect divergence.
		if b, ok := baseDocTimeOf(resp.Body); !ok || b != ts {
			l.f.violate("lite %d: delta patched base %d, advertised ts %d", l.idx, b, ts)
		}
	} else {
		l.contentPolls.Add(1)
	}
	if v, ok := docTimeOf(resp.Body); ok && v > 0 {
		// Adopt the message's timestamp verbatim: actions-only messages
		// echo our own ts back, content messages advance it, and a
		// post-handover resync is authoritative even if it goes backwards.
		l.ts.Store(v)
	}
	l.stampProbe()
	if l.mode == liteInterval {
		return l.interval, nil
	}
	return 0, nil
}

// handleRefusal classifies a non-200 answer. A refusal without a close
// reason is a protocol violation (bare termination); MOVED relocates the
// lite; any other retryable reason drops the identity so the loop
// rejoins; a terminal reason stops the lite and is a violation in these
// scenarios (nothing here leaves or kicks). Returns true when the lite
// should stop.
func (l *lite) handleRefusal(op string, resp *httpwire.Response) (terminal bool) {
	reason := core.ParseCloseReason(resp.Header.Get(core.CloseReasonHeader))
	switch {
	case reason == core.CloseNone:
		l.f.violate("lite %d: %s returned bare %d with no %s header",
			l.idx, op, resp.StatusCode, core.CloseReasonHeader)
	case reason == core.CloseMoved:
		if to := resp.Header.Get(core.RelocateHeader); to != "" {
			l.f.noteRelocate(to)
		}
		l.moves.Add(1)
		l.pid.Store("")
	case reason.Retryable():
		l.pid.Store("")
	default:
		l.f.violate("lite %d: %s terminated with %v — nothing in this scenario leaves or kicks",
			l.idx, op, reason)
		l.stopped.Store(true)
		return true
	}
	return false
}

// stampProbe reports this lite's current timestamp to the armed staleness
// probe, if any.
func (l *lite) stampProbe() {
	if p := l.f.probe.Load(); p != nil {
		p.stampIfReached(l.idx, l.ts.Load())
	}
}

// retryAfterOf parses the server-assigned retry hint, zero when absent.
func retryAfterOf(resp *httpwire.Response) time.Duration {
	v := resp.Header.Get(core.RetryAfterHeader)
	if v == "" {
		return 0
	}
	ms, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || ms <= 0 {
		return 0
	}
	return time.Duration(ms) * time.Millisecond
}

// pidFromSetCookie extracts the rcbpid value from a Set-Cookie header.
func pidFromSetCookie(cookie string) string {
	for _, part := range strings.Split(cookie, ";") {
		part = strings.TrimSpace(part)
		if v, ok := strings.CutPrefix(part, "rcbpid="); ok {
			return v
		}
	}
	return ""
}

var docTimeOpen = []byte("<docTime>")

// docTimeOf scans a poll response body for its <docTime> stamp — both the
// full newContent and the deltaContent message carry one, which is what
// lets a DOM-less driver ride the delta path.
func docTimeOf(body []byte) (int64, bool) {
	i := bytes.Index(body, docTimeOpen)
	if i < 0 {
		return 0, false
	}
	var v int64
	j := i + len(docTimeOpen)
	for ; j < len(body) && body[j] >= '0' && body[j] <= '9'; j++ {
		v = v*10 + int64(body[j]-'0')
	}
	if j == i+len(docTimeOpen) {
		return 0, false
	}
	return v, true
}

var baseDocTimeOpen = []byte("<baseDocTime>")

// baseDocTimeOf scans a deltaContent body for the base the patch script was
// computed against — the honesty check that multi-base ring serving patched
// against exactly the docTime this lite advertised.
func baseDocTimeOf(body []byte) (int64, bool) {
	i := bytes.Index(body, baseDocTimeOpen)
	if i < 0 {
		return 0, false
	}
	var v int64
	j := i + len(baseDocTimeOpen)
	for ; j < len(body) && body[j] >= '0' && body[j] <= '9'; j++ {
		v = v*10 + int64(body[j]-'0')
	}
	if j == i+len(baseDocTimeOpen) {
		return 0, false
	}
	return v, true
}
