// Package scenlab is the scale-out scenario laboratory: it drives
// thousands of simulated participants through internal/netsim against a
// live RCB-Agent and asserts, per (scenario family × link profile) pair,
// the three session-level invariants the protocol promises at scale —
// convergence (every replica ends byte-identical to a freshly joined
// reference), exactly-once actions (the at-least-once retry paths plus the
// (CID, CSeq) replay filter net out to one application per action), and
// close-reason discipline (no participant ever observes a bare 4xx/5xx
// termination) — plus per-profile staleness and bytes-per-participant
// budgets.
//
// The fleet mixes two participant implementations. The bulk is a scripted
// wire-level driver ("lite"): it speaks the real poll protocol — join
// cookie, ts acknowledgment, delta advertisement, long-poll parking,
// action piggybacking with replay stamps, close-reason handling including
// MOVED relocation — but tracks only the document timestamp instead of
// materializing a DOM, which is what makes four-digit fleets affordable
// in one test process. A small sentinel subset runs the full Snippet loop
// (interval, long-poll, and duplex deliveries) and materializes real
// documents; sentinels are the correctness oracle the convergence check
// runs against.
//
// Families cover the shapes that break naive agents: flash-crowd joins
// inside one debounce window, thundering-herd wakes after a mass park,
// mass disconnect/rejoin churn, long-lived sessions over seeded lossy and
// mobile links, role-asymmetric search co-browsing, and multi-writer
// turns across a live host handover.
//
// SCENLAB_N sizes the fleet (the same knob `make scale` and the CI smoke
// stage set), so the quick and the thousands-strong runs share this one
// harness. rcb-bench -scale snapshots the measured numbers to
// BENCH_scale.json.
package scenlab

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"rcb/internal/netsim"
)

// Profile is a named link shape plus the budgets a healthy session must
// meet over it. Latency-bearing profiles are scaled the same way the chaos
// harness scales them, so round trips stay in the low-millisecond range
// and a full family finishes in CI time.
type Profile struct {
	Name string
	Link netsim.Link

	// MeanStaleness / MaxStaleness bound the fleet-wide mean and worst
	// observed staleness of a measured round: the time from the host
	// mutation landing until a participant holds content at or past the
	// resulting docTime. Ceilings are deliberately generous — they are
	// regression tripwires for the scheduler, not performance targets;
	// BENCH_scale.json carries the actually measured numbers.
	MeanStaleness time.Duration
	MaxStaleness  time.Duration

	// JoinBytes / RoundBytes bound the average wire bytes (both
	// directions) a lite participant spends joining and per measured
	// round afterwards.
	JoinBytes  int64
	RoundBytes int64
}

// The canonical profiles. WAN and Mobile are the paper's environments
// scaled down exactly like the chaos harness scales them; Lossy is the
// jittery 2%-loss link that exercises the reset/rejoin paths.
var (
	ProfileInstant = Profile{
		Name: "instant", Link: netsim.Instant,
		MeanStaleness: 1500 * time.Millisecond, MaxStaleness: 10 * time.Second,
		JoinBytes: 96 << 10, RoundBytes: 48 << 10,
	}
	ProfileWAN = Profile{
		Name: "wan", Link: netsim.WAN.Scaled(40),
		MeanStaleness: 2 * time.Second, MaxStaleness: 12 * time.Second,
		JoinBytes: 96 << 10, RoundBytes: 48 << 10,
	}
	ProfileLossy = Profile{
		Name: "lossy", Link: netsim.Link{Jitter: time.Millisecond, LossRate: 0.02},
		MeanStaleness: 3 * time.Second, MaxStaleness: 20 * time.Second,
		JoinBytes: 128 << 10, RoundBytes: 24 << 10,
	}
	ProfileMobile = Profile{
		Name: "mobile", Link: func() netsim.Link {
			l := netsim.Mobile.Scaled(50)
			l.LossRate = 0.01
			return l
		}(),
		MeanStaleness: 3 * time.Second, MaxStaleness: 20 * time.Second,
		JoinBytes: 128 << 10, RoundBytes: 24 << 10,
	}
)

// Families in canonical order.
const (
	FamilyFlashCrowd    = "flashcrowd"
	FamilyThunderingHerd = "herd"
	FamilyChurn         = "churn"
	FamilyLongHaul      = "longhaul"
	FamilySearchRoles   = "searchroles"
	FamilyWriterTurns   = "writerturns"
)

// Families lists every scenario family the lab implements.
var Families = []string{
	FamilyFlashCrowd, FamilyThunderingHerd, FamilyChurn,
	FamilyLongHaul, FamilySearchRoles, FamilyWriterTurns,
}

// Config sizes one scenario run.
type Config struct {
	Family    string
	Profile   Profile
	N         int   // lite participants
	Sentinels int   // full-Snippet participants (correctness oracles)
	Rounds    int   // measured rounds (waves for churn)
	Seed      int64 // seeds netsim faults and every per-participant RNG
}

// RoundStat is one measured round's staleness distribution over the lite
// fleet.
type RoundStat struct {
	Name   string `json:"name"`
	MeanMS int64  `json:"mean_ms"`
	P95MS  int64  `json:"p95_ms"`
	MaxMS  int64  `json:"max_ms"`
}

// Result is the measured outcome of one scenario run — what rcb-bench
// -scale snapshots into BENCH_scale.json.
type Result struct {
	Family    string `json:"family"`
	Profile   string `json:"profile"`
	N         int    `json:"n"`
	Sentinels int    `json:"sentinels"`
	Rounds    int    `json:"rounds"`
	Seed      int64  `json:"seed"`

	JoinWallMS  int64 `json:"join_wall_ms"`
	TotalWallMS int64 `json:"total_wall_ms"`

	MeanStalenessMS int64       `json:"mean_staleness_ms"`
	MaxStalenessMS  int64       `json:"max_staleness_ms"`
	RoundStats      []RoundStat `json:"round_stats,omitempty"`

	JoinBytesPerLite  int64 `json:"join_bytes_per_lite"`
	RoundBytesPerLite int64 `json:"round_bytes_per_lite"`

	Polls        int64 `json:"polls"`
	ContentPolls int64 `json:"content_polls"`
	DeltaPolls   int64 `json:"delta_polls"`
	EmptyPolls   int64 `json:"empty_polls"`
	Rejoins      int64 `json:"rejoins"`
	Moves        int64 `json:"moves"`

	ActionsFired int `json:"actions_fired"`

	ContentBuilds    int64 `json:"content_builds"`
	JoinBuilds       int64 `json:"join_builds"`
	WakeFanouts      int64 `json:"wake_fanouts"`
	DeltasServed     int64 `json:"deltas_served"`
	DuplicateActions int64 `json:"duplicate_actions"`

	// Violations is empty on a healthy run: budget breaches, close-reason
	// violations, and exactly-once failures land here.
	Violations []string `json:"violations,omitempty"`
}

// EnvN reads the SCENLAB_N fleet-size knob, falling back to def when unset
// or unparsable — the single knob CI smoke, plain `go test`, `make scale`,
// and rcb-bench -scale share.
func EnvN(def int) int {
	if v := os.Getenv("SCENLAB_N"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// Run executes one configured scenario end to end and returns its measured
// result. Structural failures (a round that never converges, a reference
// mismatch) come back as the error; protocol and budget breaches are
// recorded in Result.Violations. Either way the partial Result is
// returned for inspection.
func Run(cfg Config) (*Result, error) {
	if cfg.N <= 0 {
		cfg.N = 64
	}
	if cfg.Sentinels <= 0 {
		cfg.Sentinels = 4
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 3
	}
	if cfg.Profile.Name == "" {
		cfg.Profile = ProfileInstant
	}
	f, err := newFleet(cfg)
	if err != nil {
		return nil, err
	}
	defer f.close()
	switch cfg.Family {
	case FamilyFlashCrowd:
		err = f.runFlashCrowd()
	case FamilyThunderingHerd:
		err = f.runThunderingHerd()
	case FamilyChurn:
		err = f.runChurn()
	case FamilyLongHaul:
		err = f.runLongHaul()
	case FamilySearchRoles:
		err = f.runSearchRoles()
	case FamilyWriterTurns:
		err = f.runWriterTurns()
	default:
		return nil, fmt.Errorf("scenlab: unknown family %q", cfg.Family)
	}
	res := f.result()
	return res, err
}
