package scenlab

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rcb/internal/browser"
	"rcb/internal/core"
	"rcb/internal/dom"
	"rcb/internal/httpwire"
	"rcb/internal/netsim"
	"rcb/internal/sites"
)

// Agent addresses are fixed so the link policy can be installed once,
// before anything dials: participant traffic to either agent rides the
// scenario profile, origin-site traffic stays unshaped.
const (
	primaryAddr  = "agent.lan:3000"
	handoverAddr = "agent2.lan:3000"
)

// agentSite is one live RCB-Agent: its host browser, the agent, and the
// server speaking for it on the simulated network.
type agentSite struct {
	hostName string
	host     *browser.Browser
	agent    *core.Agent
	server   *httpwire.Server
	addr     string
}

func (s *agentSite) close() {
	s.agent.Close()
	s.server.Close()
	s.host.Close()
}

// countPolicy is the exactly-once ledger: every action the agent's policy
// pipeline sees is keyed and counted, and the family's final audit
// requires each fired key to have been applied exactly once.
type countPolicy struct {
	mu   sync.Mutex
	seen map[string]int
}

func (p *countPolicy) Decide(_ string, act core.Action) core.Decision {
	var key string
	switch act.Kind {
	case core.ActionFormInput:
		key = act.Value
	case core.ActionMouseMove:
		key = fmt.Sprintf("mm:%d:%d", act.X, act.Y)
	}
	if key != "" {
		p.mu.Lock()
		p.seen[key]++
		p.mu.Unlock()
	}
	return core.Apply
}

func (p *countPolicy) count(key string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.seen[key]
}

// probe measures one round's staleness: armed at docTime target before the
// mutation lands, stamped by each lite the first time it holds content at
// or past the target.
type probe struct {
	target    int64
	start     time.Time
	stamps    []atomic.Int64 // nanos after start; 0 = unreached
	remaining atomic.Int64
	done      chan struct{}
}

func newProbe(target int64, n int) *probe {
	p := &probe{target: target, start: time.Now(), stamps: make([]atomic.Int64, n), done: make(chan struct{})}
	p.remaining.Store(int64(n))
	return p
}

func (p *probe) stampIfReached(idx int, ts int64) {
	if ts < p.target {
		return
	}
	ns := time.Since(p.start).Nanoseconds()
	if ns < 1 {
		ns = 1
	}
	if p.stamps[idx].CompareAndSwap(0, ns) {
		if p.remaining.Add(-1) == 0 {
			close(p.done)
		}
	}
}

// latencies returns the reached stamps, sorted ascending, plus the count
// of lites that never reached the target.
func (p *probe) latencies() (reached []time.Duration, unreached int) {
	for i := range p.stamps {
		if ns := p.stamps[i].Load(); ns > 0 {
			reached = append(reached, time.Duration(ns))
		} else {
			unreached++
		}
	}
	sort.Slice(reached, func(i, j int) bool { return reached[i] < reached[j] })
	return reached, unreached
}

// sentinel is a full-Snippet participant with a real document — the
// correctness oracle the convergence check compares against the reference
// replica.
type sentinel struct {
	idx  int
	b    *browser.Browser
	snip *core.Snippet
	cid  string
	cseq atomic.Int64
	stop chan struct{}
	done chan struct{}
}

// fireInput dispatches a forminput action on the first rewritten input in
// the sentinel's document (the generated pages' search box), stamped with
// the sentinel's own replay identity. It rides the /action push lane so a
// parked poll never delays it, falling back to the piggyback queue.
func (s *sentinel) fireInput(value string) error {
	var path string
	err := s.b.WithDocument(func(_ string, doc *dom.Document) error {
		for _, el := range doc.Root.ElementsByTag("input") {
			if p := el.AttrOr(core.RCBAttr, ""); p != "" {
				path = p
				return nil
			}
		}
		return fmt.Errorf("sentinel %d: no rewritten input in document", s.idx)
	})
	if err != nil {
		return err
	}
	act := core.Action{Kind: core.ActionFormInput, Target: path, Value: value,
		CID: s.cid, CSeq: s.cseq.Add(1)}
	if err := s.snip.PushAction(act); err != nil {
		s.snip.QueueAction(act)
	}
	return nil
}

func (s *sentinel) docHTML() (string, error) {
	var html string
	err := s.b.WithDocument(func(_ string, doc *dom.Document) error {
		html = dom.OuterHTML(doc.Root)
		return nil
	})
	return html, err
}

// fleet is one scenario's whole world: the corpus network, the live
// agent(s), N lite drivers, the sentinel subset, the staleness probe, and
// the violation ledger.
type fleet struct {
	cfg    Config
	corpus *sites.Corpus
	net    *netsim.Network
	policy *countPolicy

	cur     atomic.Pointer[agentSite]
	primary *agentSite
	standby *agentSite // writer-turns handover target, nil otherwise

	lites     []*lite
	sentinels []*sentinel
	liteMeter *meter

	probe atomic.Pointer[probe]

	violMu sync.Mutex
	viols  []string

	firedMu sync.Mutex
	fired   []string // exactly-once keys, in fire order

	tokenSeq atomic.Int64

	startedAt time.Time
	joinWall  time.Duration
	joinBytes int64
	joinBuilds int64
	stats     []RoundStat

	// Lite mix overrides, set by families before spawnLites.
	allLongPoll bool
	allDelta    bool
	liteWait    time.Duration

	// roundBudget, when non-zero, replaces the profile's RoundBytes for
	// this run — families whose shape is strictly cheaper than the
	// profile's worst case pin a tighter ceiling.
	roundBudget int64
}

func newFleet(cfg Config) (*fleet, error) {
	corpus, err := sites.NewCorpus()
	if err != nil {
		return nil, err
	}
	f := &fleet{
		cfg:       cfg,
		corpus:    corpus,
		net:       corpus.Network,
		policy:    &countPolicy{seen: make(map[string]int)},
		liteMeter: &meter{},
		liteWait:  2 * time.Second,
		startedAt: time.Now(),
	}
	f.net.SetSeed(cfg.Seed)
	// Participant→agent traffic rides the profile; origin-site fetches and
	// the reference oracle stay unshaped — the behavior under test lives
	// on the RCB channel.
	link := cfg.Profile.Link
	f.net.SetLinkPolicy(func(from, to string) netsim.Link {
		if to != primaryAddr && to != handoverAddr {
			return netsim.Instant
		}
		if strings.HasPrefix(from, "lite") || strings.HasPrefix(from, "sent") {
			return link
		}
		return netsim.Instant
	})
	f.primary, err = f.startAgent("host.lan", primaryAddr)
	if err != nil {
		corpus.Close()
		return nil, err
	}
	f.cur.Store(f.primary)
	if _, err := f.primary.host.Navigate("http://" + sites.Table1[1].Host() + "/"); err != nil {
		f.close()
		return nil, fmt.Errorf("host navigate: %w", err)
	}
	return f, nil
}

func (f *fleet) startAgent(hostName, addr string) (*agentSite, error) {
	hb := browser.New(hostName, f.net.Dialer(hostName))
	agent := core.NewAgent(hb, addr)
	agent.Policy = f.policy
	agent.WakeDebounce = 10 * time.Millisecond
	agent.MaxPollWait = 10 * time.Second
	agent.ShedRetryAfter = 200 * time.Millisecond
	l, err := f.net.Listen(addr)
	if err != nil {
		hb.Close()
		agent.Close()
		return nil, err
	}
	server := &httpwire.Server{Handler: agent}
	server.Start(l)
	return &agentSite{hostName: hostName, host: hb, agent: agent, server: server, addr: addr}, nil
}

// addr is the agent address the fleet currently converges on.
func (f *fleet) addr() string { return f.cur.Load().addr }

func (f *fleet) agent() *core.Agent { return f.cur.Load().agent }

// noteRelocate sanity-checks a MOVED relocation target; the fleet-wide
// address has already been switched by the handover orchestration, so a
// relocate pointing anywhere else is a protocol violation.
func (f *fleet) noteRelocate(to string) {
	if to != primaryAddr && to != handoverAddr {
		f.violate("MOVED relocate to unknown address %q", to)
	}
}

func (f *fleet) violate(format string, args ...any) {
	f.violMu.Lock()
	defer f.violMu.Unlock()
	if len(f.viols) < 32 {
		f.viols = append(f.viols, fmt.Sprintf(format, args...))
	} else if len(f.viols) == 32 {
		f.viols = append(f.viols, "... more violations truncated")
	}
}

func (f *fleet) violations() []string {
	f.violMu.Lock()
	defer f.violMu.Unlock()
	return append([]string(nil), f.viols...)
}

// fireToken enqueues a uniquely keyed pointer action on a lite and records
// the key for the exactly-once audit.
func (f *fleet) fireToken(l *lite) {
	tok := int(f.tokenSeq.Add(1))
	act := core.Action{Kind: core.ActionMouseMove, X: tok, Y: l.idx}
	key := fmt.Sprintf("mm:%d:%d", tok, l.idx)
	f.firedMu.Lock()
	f.fired = append(f.fired, key)
	f.firedMu.Unlock()
	l.enqueue(act)
}

// fireSentinelInput fires a uniquely valued forminput from a sentinel and
// records it for the exactly-once audit.
func (f *fleet) fireSentinelInput(s *sentinel, value string) error {
	f.firedMu.Lock()
	f.fired = append(f.fired, value)
	f.firedMu.Unlock()
	return s.fireInput(value)
}

func (f *fleet) firedKeys() []string {
	f.firedMu.Lock()
	defer f.firedMu.Unlock()
	return append([]string(nil), f.fired...)
}

// spawnSentinels joins and runs the full-Snippet oracles: a mix of
// long-poll (with action push), duplex, and interval deliveries unless the
// family forces all long-poll.
func (f *fleet) spawnSentinels() error {
	for i := 0; i < f.cfg.Sentinels; i++ {
		host := fmt.Sprintf("sent%d.lan", i)
		b := browser.New(host, f.net.Dialer(host))
		s := core.NewSnippet(b, "http://"+f.addr(), "")
		s.LongPollWait = 2 * time.Second
		s.PollInterval = 200 * time.Millisecond
		s.RetryBase = 10 * time.Millisecond
		s.RetryMax = 250 * time.Millisecond
		rng := rand.New(rand.NewSource(f.cfg.Seed + int64(i)*7919))
		var rmu sync.Mutex
		s.RetryRand = func() float64 { rmu.Lock(); defer rmu.Unlock(); return rng.Float64() }
		s.ClientID = fmt.Sprintf("sent%d", i)
		s.ActionPush = true
		s.Delivery = core.DeliveryLongPoll
		if !f.allLongPoll {
			switch {
			case i == 1:
				s.Delivery = core.DeliveryDuplex
			case i%3 == 2:
				s.Delivery = core.DeliveryInterval
			}
		}
		sent := &sentinel{idx: i, b: b, snip: s, cid: s.ClientID,
			stop: make(chan struct{}), done: make(chan struct{})}
		var joinErr error
		for attempt := 0; attempt < 20; attempt++ {
			if joinErr = s.Join(); joinErr == nil {
				break
			}
			time.Sleep(25 * time.Millisecond)
		}
		if joinErr != nil {
			b.Close()
			return fmt.Errorf("sentinel %d join: %w", i, joinErr)
		}
		go func() {
			defer close(sent.done)
			s.Run(sent.stop, func(err error) { f.sentinelErr(sent.idx, err) })
		}()
		f.sentinels = append(f.sentinels, sent)
	}
	return nil
}

// sentinelErr classifies a Run-loop error: terminal close reasons and
// bare 4xx/5xx terminations are violations (nothing in these scenarios
// leaves or kicks); retryable closes and transport noise are the weather
// the loop is built for.
func (f *fleet) sentinelErr(idx int, err error) {
	var ce *core.CloseError
	if errors.As(err, &ce) {
		if !ce.Reason.Retryable() {
			f.violate("sentinel %d: terminal close %v", idx, ce.Reason)
		}
		return
	}
	msg := err.Error()
	if strings.Contains(msg, "returned 4") || strings.Contains(msg, "returned 5") {
		f.violate("sentinel %d: bare termination: %v", idx, err)
	}
}

// spawnLites builds and starts the lite fleet. stagger spreads the join
// burst over the given window (zero = flash crowd: everyone dials at
// once).
func (f *fleet) spawnLites(stagger time.Duration) {
	n := f.cfg.N
	f.lites = make([]*lite, n)
	for i := 0; i < n; i++ {
		host := fmt.Sprintf("lite%d.lan", i)
		l := &lite{
			f:        f,
			idx:      i,
			host:     host,
			client:   httpwire.NewClient(meteredDialer(f.net.Dialer(host), f.liteMeter)),
			mode:     liteLongPoll,
			delta:    f.allDelta || i%2 == 0,
			wait:     f.liteWait,
			interval: 200 * time.Millisecond,
			rng:      rand.New(rand.NewSource(f.cfg.Seed ^ int64(i)*0x9E3779B9)),
			cid:      fmt.Sprintf("lite%d", i),
			stop:     make(chan struct{}),
			done:     make(chan struct{}),
		}
		l.pid.Store("")
		if !f.allLongPoll && i%4 == 3 {
			l.mode = liteInterval
		}
		f.lites[i] = l
		var delay time.Duration
		if stagger > 0 && n > 1 {
			delay = stagger * time.Duration(i) / time.Duration(n)
		}
		go l.run(delay)
	}
}

// waitAllSynced blocks until every lite holds content (ts > 0) — the
// joined-and-synced barrier — and records the join phase's wall clock,
// byte, and build costs.
func (f *fleet) waitAllSynced(deadline time.Duration) error {
	start := time.Now()
	limit := start.Add(deadline)
	for {
		synced := 0
		for _, l := range f.lites {
			if l.ts.Load() > 0 {
				synced++
			}
		}
		if synced == len(f.lites) {
			f.joinWall = time.Since(f.startedAt)
			f.joinBytes = f.liteMeter.total()
			f.joinBuilds = f.agent().ContentBuilds()
			return nil
		}
		if time.Now().After(limit) {
			return fmt.Errorf("join barrier: %d/%d lites synced after %v", synced, len(f.lites), deadline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// hostMutate lands one host-side DOM mutation on the current agent's
// browser — the content event every measured round times.
func (f *fleet) hostMutate(val string) error {
	return f.cur.Load().host.ApplyMutation(func(doc *dom.Document) error {
		doc.Body().SetAttr("data-round", val)
		return nil
	})
}

// measuredRound arms the staleness probe one docTime past the agent's
// latest build, lands the mutation, and waits until every lite holds
// content at or past the target. The per-lite latencies become the round's
// staleness distribution and are checked against the profile budgets.
func (f *fleet) measuredRound(name string, mutate func() error, deadline time.Duration) error {
	target := f.agent().LatestDocTime() + 1
	p := newProbe(target, len(f.lites))
	f.probe.Store(p)
	defer f.probe.Store(nil)
	if err := mutate(); err != nil {
		return fmt.Errorf("round %s: mutate: %w", name, err)
	}
	select {
	case <-p.done:
	case <-time.After(deadline):
	}
	reached, unreached := p.latencies()
	if unreached > 0 {
		return fmt.Errorf("round %s: %d/%d lites still stale after %v (target docTime %d)",
			name, unreached, len(f.lites), deadline, target)
	}
	var sum time.Duration
	for _, d := range reached {
		sum += d
	}
	mean := sum / time.Duration(len(reached))
	p95 := reached[len(reached)*95/100]
	max := reached[len(reached)-1]
	f.stats = append(f.stats, RoundStat{
		Name:   name,
		MeanMS: mean.Milliseconds(),
		P95MS:  p95.Milliseconds(),
		MaxMS:  max.Milliseconds(),
	})
	if mean > f.cfg.Profile.MeanStaleness {
		f.violate("round %s: mean staleness %v exceeds %s budget %v",
			name, mean, f.cfg.Profile.Name, f.cfg.Profile.MeanStaleness)
	}
	if max > f.cfg.Profile.MaxStaleness {
		f.violate("round %s: max staleness %v exceeds %s budget %v",
			name, max, f.cfg.Profile.Name, f.cfg.Profile.MaxStaleness)
	}
	return nil
}

// converge is the family's closing audit: every fired action applied
// exactly once, every lite and sentinel caught up to the latest build, and
// every sentinel document byte-identical to a freshly joined reference
// replica.
func (f *fleet) converge(deadline time.Duration) error {
	limit := time.Now().Add(deadline)

	// 1. Drain: every fired key reaches the policy at least once.
	keys := f.firedKeys()
	for {
		missing := 0
		for _, k := range keys {
			if f.policy.count(k) == 0 {
				missing++
			}
		}
		if missing == 0 {
			break
		}
		if time.Now().After(limit) {
			return fmt.Errorf("converge: %d/%d actions never reached the policy", missing, len(keys))
		}
		time.Sleep(5 * time.Millisecond)
	}
	// 2. Exactly-once: no key applied more than once.
	for _, k := range keys {
		if n := f.policy.count(k); n != 1 {
			f.violate("action %q applied %d times, want exactly once", k, n)
		}
	}

	// 3. Timestamp barrier: everyone holds the latest build.
	latest := f.agent().LatestDocTime()
	for {
		behind := 0
		for _, l := range f.lites {
			if l.ts.Load() < latest {
				behind++
			}
		}
		for _, s := range f.sentinels {
			if s.snip.DocTime() < latest {
				behind++
			}
		}
		if behind == 0 {
			break
		}
		if time.Now().After(limit) {
			return fmt.Errorf("converge: %d participants behind docTime %d after %v", behind, latest, deadline)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// 4. Byte-identical sentinels vs a freshly joined reference replica.
	ref, err := f.referenceHTML()
	if err != nil {
		return fmt.Errorf("converge: reference join: %w", err)
	}
	for _, s := range f.sentinels {
		html, err := s.docHTML()
		if err != nil {
			return fmt.Errorf("converge: sentinel %d doc: %w", s.idx, err)
		}
		if html != ref {
			return fmt.Errorf("converge: sentinel %d diverged from reference (%d vs %d bytes, first diff at %d)",
				s.idx, len(html), len(ref), firstDiff(html, ref))
		}
	}
	return nil
}

// referenceHTML joins a fresh replica over an unshaped link, takes one
// full sync, and serializes its document — the oracle every sentinel must
// match byte for byte.
func (f *fleet) referenceHTML() (string, error) {
	rb := browser.New("ref.lan", f.net.Dialer("ref.lan"))
	defer rb.Close()
	s := core.NewSnippet(rb, "http://"+f.addr(), "")
	var err error
	for attempt := 0; attempt < 10; attempt++ {
		if err = s.Join(); err == nil {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if err != nil {
		return "", err
	}
	if _, err := s.PollOnce(); err != nil {
		return "", err
	}
	var html string
	err = rb.WithDocument(func(_ string, doc *dom.Document) error {
		html = dom.OuterHTML(doc.Root)
		return nil
	})
	return html, err
}

func firstDiff(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// checkByteBudgets audits the lite fleet's average wire spend against the
// profile budgets, splitting the join phase from the measured rounds.
func (f *fleet) checkByteBudgets() {
	n := int64(len(f.lites))
	if n == 0 {
		return
	}
	perJoin := f.joinBytes / n
	if perJoin > f.cfg.Profile.JoinBytes {
		f.violate("join cost %d bytes/lite exceeds %s budget %d", perJoin, f.cfg.Profile.Name, f.cfg.Profile.JoinBytes)
	}
	rounds := int64(len(f.stats))
	if rounds == 0 {
		return
	}
	budget := f.cfg.Profile.RoundBytes
	if f.roundBudget > 0 {
		budget = f.roundBudget
	}
	perRound := (f.liteMeter.total() - f.joinBytes) / rounds / n
	if perRound > budget {
		f.violate("steady cost %d bytes/lite/round exceeds %s budget %d", perRound, f.cfg.Profile.Name, budget)
	}
}

// stopParticipants ends every lite and sentinel loop and waits them out.
func (f *fleet) stopParticipants() {
	for _, l := range f.lites {
		l.stopped.Store(true)
		close(l.stop)
	}
	for _, s := range f.sentinels {
		close(s.stop)
	}
	deadline := time.After(15 * time.Second)
	for _, l := range f.lites {
		select {
		case <-l.done:
		case <-deadline:
		}
	}
	for _, s := range f.sentinels {
		select {
		case <-s.done:
		case <-deadline:
		}
	}
}

func (f *fleet) close() {
	f.stopParticipants()
	for _, l := range f.lites {
		l.client.Close()
	}
	for _, s := range f.sentinels {
		s.b.Close()
	}
	if f.standby != nil {
		f.standby.close()
	}
	f.primary.close()
	f.corpus.Close()
}

// result snapshots the run's measurements.
func (f *fleet) result() *Result {
	res := &Result{
		Family:    f.cfg.Family,
		Profile:   f.cfg.Profile.Name,
		N:         f.cfg.N,
		Sentinels: f.cfg.Sentinels,
		Rounds:    f.cfg.Rounds,
		Seed:      f.cfg.Seed,

		JoinWallMS:  f.joinWall.Milliseconds(),
		TotalWallMS: time.Since(f.startedAt).Milliseconds(),
		RoundStats:  f.stats,

		JoinBuilds:   f.joinBuilds,
		ActionsFired: len(f.firedKeys()),
		Violations:   f.violations(),
	}
	var sumMean, maxMax int64
	for _, rs := range f.stats {
		sumMean += rs.MeanMS
		if rs.MaxMS > maxMax {
			maxMax = rs.MaxMS
		}
	}
	if len(f.stats) > 0 {
		res.MeanStalenessMS = sumMean / int64(len(f.stats))
		res.MaxStalenessMS = maxMax
	}
	if n := int64(len(f.lites)); n > 0 {
		res.JoinBytesPerLite = f.joinBytes / n
		if r := int64(len(f.stats)); r > 0 {
			res.RoundBytesPerLite = (f.liteMeter.total() - f.joinBytes) / r / n
		}
	}
	for _, l := range f.lites {
		res.Polls += l.polls.Load()
		res.ContentPolls += l.contentPolls.Load()
		res.DeltaPolls += l.deltaPolls.Load()
		res.EmptyPolls += l.emptyPolls.Load()
		res.Rejoins += l.rejoins.Load()
		res.Moves += l.moves.Load()
	}
	ag := f.agent()
	res.ContentBuilds = ag.ContentBuilds()
	res.WakeFanouts = ag.WakeFanouts()
	res.DeltasServed = ag.DeltasServed()
	res.DuplicateActions = ag.DuplicateActions()
	if f.standby != nil && f.cur.Load() != f.primary {
		pa := f.primary.agent
		res.ContentBuilds += pa.ContentBuilds()
		res.WakeFanouts += pa.WakeFanouts()
		res.DeltasServed += pa.DeltasServed()
		res.DuplicateActions += pa.DuplicateActions()
	}
	return res
}
