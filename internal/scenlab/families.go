package scenlab

// The six scenario families. Each follows the same skeleton — build the
// fleet, drive the family's stress shape through measured rounds, then run
// the closing audit (exactly-once, timestamp barrier, byte-identical
// sentinels, byte budgets) — and differs only in what it throws at the
// agent in between.

import (
	"fmt"
	"math/rand"
	"time"

	"rcb/internal/core"
	"rcb/internal/httpwire"
)

// Generous wall-clock ceilings: the lab runs under -race in CI, where
// everything is several times slower. Budgets that matter are the
// per-profile staleness/byte ones; these only bound hangs.
const (
	joinDeadline     = 120 * time.Second
	roundDeadline    = 60 * time.Second
	convergeDeadline = 60 * time.Second
)

// runFlashCrowd joins the whole fleet inside one debounce window — every
// lite dials at once — and requires the join storm to share builds: the
// single-flight guard must serve N initial syncs from O(1) renders.
func (f *fleet) runFlashCrowd() error {
	if err := f.spawnSentinels(); err != nil {
		return err
	}
	f.spawnLites(0)
	if err := f.waitAllSynced(joinDeadline); err != nil {
		return err
	}
	// The entire crowd synced off one unchanged document: the build cache
	// must have rendered it a handful of times at most (one per delivery
	// mode variant), not once per participant.
	if f.joinBuilds > 4 {
		f.violate("flash-crowd join of %d lites cost %d content builds, want <= 4 (single-flight regressed)",
			len(f.lites), f.joinBuilds)
	}
	for r := 0; r < f.cfg.Rounds; r++ {
		name := fmt.Sprintf("flash-%d", r)
		if err := f.measuredRound(name, func() error { return f.hostMutate(name) }, roundDeadline); err != nil {
			return err
		}
	}
	if err := f.converge(convergeDeadline); err != nil {
		return err
	}
	f.checkByteBudgets()
	return nil
}

// runThunderingHerd parks the entire fleet on long polls, lands one
// mutation per round, and requires the debounced hub to wake everyone in
// at most a couple of fan-out rounds backed by O(1) content builds.
func (f *fleet) runThunderingHerd() error {
	f.allLongPoll = true
	f.liteWait = 8 * time.Second
	if err := f.spawnSentinels(); err != nil {
		return err
	}
	f.spawnLites(0)
	if err := f.waitAllSynced(joinDeadline); err != nil {
		return err
	}
	ag := f.agent()
	for r := 0; r < f.cfg.Rounds; r++ {
		// Everyone must be parked before the bump, or the wake isn't a
		// herd wake.
		limit := time.Now().Add(roundDeadline)
		for ag.ParkedPolls() < len(f.lites) {
			if time.Now().After(limit) {
				return fmt.Errorf("herd round %d: only %d/%d polls parked", r, ag.ParkedPolls(), len(f.lites))
			}
			time.Sleep(2 * time.Millisecond)
		}
		fan0, builds0 := ag.WakeFanouts(), ag.ContentBuilds()
		name := fmt.Sprintf("herd-%d", r)
		if err := f.measuredRound(name, func() error { return f.hostMutate(name) }, roundDeadline); err != nil {
			return err
		}
		if d := ag.WakeFanouts() - fan0; d < 1 || d > 3 {
			f.violate("herd round %d: %d parked polls woke in %d fan-out rounds, want 1..3", r, len(f.lites), d)
		}
		if d := ag.ContentBuilds() - builds0; d > 2 {
			f.violate("herd round %d: mass wake cost %d content builds, want <= 2 (single-flight regressed)", r, d)
		}
	}
	if err := f.converge(convergeDeadline); err != nil {
		return err
	}
	f.checkByteBudgets()
	return nil
}

// runChurn cycles disconnect/rejoin waves: each wave force-ejects a random
// slice of the fleet with a retryable close reason, flaps every
// established flow on alternate waves, fires replay-stamped actions from
// random lites, and still requires every round to converge and every
// action to apply exactly once across the rejoins.
func (f *fleet) runChurn() error {
	rng := rand.New(rand.NewSource(f.cfg.Seed*0x51ED2701 + 17))
	if err := f.spawnSentinels(); err != nil {
		return err
	}
	f.spawnLites(0)
	if err := f.waitAllSynced(joinDeadline); err != nil {
		return err
	}
	reasons := []core.CloseReason{core.CloseOvercommitted, core.CloseStaleReader}
	for wave := 0; wave < f.cfg.Rounds; wave++ {
		// Eject ~15% of the fleet with a retryable reason; their parked
		// polls complete with the close and the lites rejoin.
		ag := f.agent()
		churned := 0
		for _, l := range f.lites {
			if rng.Float64() < 0.15 {
				if pid := l.currentPID(); pid != "" {
					ag.DisconnectWith(pid, reasons[wave%len(reasons)])
					churned++
				}
			}
		}
		if wave%2 == 1 {
			// Flap: reset every established flow to the agent, lites and
			// sentinels alike.
			f.net.ResetConns(f.addr())
		}
		for i := 0; i < 16; i++ {
			f.fireToken(f.lites[rng.Intn(len(f.lites))])
		}
		name := fmt.Sprintf("churn-%d", wave)
		if err := f.measuredRound(name, func() error { return f.hostMutate(name) }, roundDeadline); err != nil {
			return fmt.Errorf("%w (wave ejected %d)", err, churned)
		}
	}
	if err := f.converge(convergeDeadline); err != nil {
		return err
	}
	f.checkByteBudgets()
	return nil
}

// runLongHaul holds the session open over the seeded lossy/mobile link for
// many paced rounds with background interaction — the long-lived-session
// shape where resets, retries, and delta recovery all have to keep
// netting out to convergence. The whole lite fleet is delta-capable and
// every round lands a short burst of host edits spaced wider than the
// agent's WakeDebounce, so the round produces several builds and the slow
// tail acks bases more than one build old: exactly the population the
// multi-version delta ring has to keep on the delta path instead of the
// full-snapshot path.
func (f *fleet) runLongHaul() error {
	rng := rand.New(rand.NewSource(f.cfg.Seed*0x2545F491 + 5))
	f.allDelta = true
	// Measured ~3 KB/lite/round with the ring vs ~9-10 KB when only the
	// immediately-previous base is retained: a budget below the
	// single-base cost turns a delta-ring regression into a violation.
	f.roundBudget = 8 << 10
	if err := f.spawnSentinels(); err != nil {
		return err
	}
	f.spawnLites(500 * time.Millisecond)
	if err := f.waitAllSynced(joinDeadline); err != nil {
		return err
	}
	for r := 0; r < f.cfg.Rounds; r++ {
		for i := 0; i < 8; i++ {
			f.fireToken(f.lites[rng.Intn(len(f.lites))])
		}
		name := fmt.Sprintf("haul-%d", r)
		err := f.measuredRound(name, func() error {
			for b := 0; b < 3; b++ {
				if b > 0 {
					time.Sleep(20 * time.Millisecond)
				}
				if err := f.hostMutate(fmt.Sprintf("%s-%d", name, b)); err != nil {
					return err
				}
			}
			return nil
		}, roundDeadline)
		if err != nil {
			return err
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := f.converge(convergeDeadline); err != nil {
		return err
	}
	f.checkByteBudgets()
	return nil
}

// runSearchRoles is role-asymmetric search co-browsing: one sentinel is
// the driver typing into the shared search box (its forminput IS the
// measured mutation), the lite fleet reads along, and the driver role
// rotates between sentinels every couple of rounds.
func (f *fleet) runSearchRoles() error {
	if f.cfg.Sentinels < 2 {
		f.cfg.Sentinels = 2
	}
	if err := f.spawnSentinels(); err != nil {
		return err
	}
	f.spawnLites(0)
	if err := f.waitAllSynced(joinDeadline); err != nil {
		return err
	}
	for r := 0; r < f.cfg.Rounds; r++ {
		driver := f.sentinels[(r/2)%len(f.sentinels)]
		token := fmt.Sprintf("q-%s-%d-%d", f.cfg.Profile.Name, driver.idx, r)
		name := fmt.Sprintf("search-%d", r)
		err := f.measuredRound(name, func() error {
			return f.fireSentinelInput(driver, token)
		}, roundDeadline)
		if err != nil {
			return err
		}
	}
	if err := f.converge(convergeDeadline); err != nil {
		return err
	}
	f.checkByteBudgets()
	return nil
}

// runWriterTurns rotates form-input turns between several writer
// sentinels, then hands the whole session over to a standby agent midway
// and keeps taking turns — the fleet must follow the MOVED relocation and
// every action must still apply exactly once across the move.
func (f *fleet) runWriterTurns() error {
	if f.cfg.Sentinels < 2 {
		f.cfg.Sentinels = 2
	}
	if err := f.spawnSentinels(); err != nil {
		return err
	}
	f.spawnLites(0)
	if err := f.waitAllSynced(joinDeadline); err != nil {
		return err
	}
	var err error
	f.standby, err = f.startAgent("host2.lan", handoverAddr)
	if err != nil {
		return fmt.Errorf("standby agent: %w", err)
	}
	f.standby.agent.AllowHandover = true
	handoverAfter := f.cfg.Rounds / 2
	for r := 0; r < f.cfg.Rounds; r++ {
		if r == handoverAfter {
			if err := f.handover(); err != nil {
				return err
			}
		}
		writer := f.sentinels[r%len(f.sentinels)]
		token := fmt.Sprintf("w-%s-%d-%d", f.cfg.Profile.Name, writer.idx, r)
		name := fmt.Sprintf("turn-%d", r)
		err := f.measuredRound(name, func() error {
			return f.fireSentinelInput(writer, token)
		}, roundDeadline)
		if err != nil {
			return err
		}
	}
	if got := f.agent().ParticipantCount(); got < f.cfg.N {
		f.violate("post-handover agent holds %d participants, want >= %d", got, f.cfg.N)
	}
	if err := f.converge(convergeDeadline); err != nil {
		return err
	}
	f.checkByteBudgets()
	return nil
}

// handover moves the live session from the current agent to the standby:
// quiesce, state transfer, fence — after which every request at the old
// address answers MOVED with a relocate hint the fleet follows.
func (f *fleet) handover() error {
	from := f.cur.Load()
	client := httpwire.NewClient(f.net.Dialer(from.hostName))
	defer client.Close()
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if err = from.agent.HandoverTo(client, f.standby.addr); err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("handover: %w", err)
	}
	f.cur.Store(f.standby)
	return nil
}
