package sites

import (
	"fmt"
	"time"

	"rcb/internal/httpwire"
	"rcb/internal/netsim"
)

// Corpus wires the full synthetic internet together: every Table 1 origin,
// the maps app, and the shop app, each listening on the virtual network.
type Corpus struct {
	Network *netsim.Network
	Statics map[string]*StaticSite // keyed by site name
	Maps    *MapsApp
	Shop    *ShopApp

	servers []*httpwire.Server
}

// Virtual addresses for the scenario applications.
const (
	MapsHost = "maps.example:80"
	ShopHost = "shop.example:80"
)

// NewCorpus builds the corpus on a fresh virtual network with every origin
// listening. Call Close when done.
func NewCorpus() (*Corpus, error) {
	c := &Corpus{
		Network: netsim.NewNetwork(),
		Statics: make(map[string]*StaticSite, len(Table1)),
		Maps:    NewMapsApp(MapsHost),
		Shop:    NewShopApp(ShopHost),
	}
	for _, spec := range Table1 {
		site := NewStaticSite(spec)
		c.Statics[spec.Name] = site
		if err := c.serve(spec.Host(), site); err != nil {
			c.Close()
			return nil, err
		}
	}
	if err := c.serve(MapsHost, c.Maps); err != nil {
		c.Close()
		return nil, err
	}
	if err := c.serve(ShopHost, c.Shop); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

func (c *Corpus) serve(addr string, h httpwire.Handler) error {
	l, err := c.Network.Listen(addr)
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	srv := &httpwire.Server{Handler: h}
	srv.Start(l)
	c.servers = append(c.servers, srv)
	return nil
}

// Close shuts every origin server down.
func (c *Corpus) Close() {
	for _, s := range c.servers {
		s.Close()
	}
	c.servers = nil
}

// OriginLink returns the modeled host↔origin link for a Table 1 site: the
// site-specific one-way latency with effectively unconstrained backbone
// bandwidth (the client access link is modeled separately by the
// experiment's environment profile).
func OriginLink(spec SiteSpec) netsim.Link {
	return netsim.Link{Latency: time.Duration(spec.RTTMs) * time.Millisecond}
}
