package sites

import (
	"fmt"
	"strings"
	"sync"

	"rcb/internal/httpwire"
)

// StaticSite serves one Table 1 homepage and its supplementary objects. It
// also answers /search and /item/N with small derived pages so co-browsing
// navigation has somewhere to go.
type StaticSite struct {
	Spec    SiteSpec
	Objects []Object

	once sync.Once
	page string
	objs map[string]Object
}

// NewStaticSite builds the site for spec with its deterministic inventory.
func NewStaticSite(spec SiteSpec) *StaticSite {
	return &StaticSite{Spec: spec, Objects: Inventory(spec)}
}

func (s *StaticSite) init() {
	s.once.Do(func() {
		s.page = GeneratePage(s.Spec, s.Objects)
		s.objs = make(map[string]Object, len(s.Objects))
		for _, o := range s.Objects {
			s.objs[o.Path] = o
		}
	})
}

// Homepage returns the generated homepage HTML.
func (s *StaticSite) Homepage() string {
	s.init()
	return s.page
}

// ServeWire implements httpwire.Handler.
func (s *StaticSite) ServeWire(req *httpwire.Request) *httpwire.Response {
	s.init()
	if req.Method != "GET" && req.Method != "POST" {
		return httpwire.NewResponse(405, "text/plain", []byte("method not allowed\n"))
	}
	path := req.Path()
	switch {
	case path == "/" || path == "/index.html":
		resp := httpwire.NewResponse(200, "text/html; charset=utf-8", []byte(s.page))
		if s.Spec.Sessions {
			resp.Header.Set("Set-Cookie", fmt.Sprintf("sid=%s-guest; Path=/", s.Spec.Name))
		}
		return resp
	case path == "/search":
		q := ""
		for _, f := range httpwire.ParseForm(req.Query()) {
			if f.Name == "q" {
				q = f.Value
			}
		}
		body := fmt.Sprintf(`<!DOCTYPE html><html><head><title>%s search</title></head>`+
			`<body><h1>Results for %q</h1><div id="results">`+
			`<a href="/item/1">result one</a><a href="/item/2">result two</a>`+
			`</div></body></html>`, s.Spec.Name, q)
		return httpwire.NewResponse(200, "text/html; charset=utf-8", []byte(body))
	case path == "/frames.html":
		// A frameset page: the document shape that exercises the
		// docFrameSet/docNoFrames branches of the Figure 4 format.
		body := fmt.Sprintf(`<!DOCTYPE html><html><head><title>%s frames</title></head>`+
			`<frameset cols="30%%,70%%"><frame src="/section/0"><frame src="/section/1"></frameset>`+
			`<noframes>This page requires frame support.</noframes></html>`, s.Spec.Name)
		return httpwire.NewResponse(200, "text/html; charset=utf-8", []byte(body))
	case strings.HasPrefix(path, "/item/") || strings.HasPrefix(path, "/section/"):
		body := fmt.Sprintf(`<!DOCTYPE html><html><head><title>%s %s</title></head>`+
			`<body><h1>%s</h1><p>Detail page.</p><a href="/">home</a></body></html>`,
			s.Spec.Name, path, path)
		return httpwire.NewResponse(200, "text/html; charset=utf-8", []byte(body))
	default:
		if o, ok := s.objs[path]; ok {
			resp := httpwire.NewResponse(200, o.Kind.ContentType(),
				ObjectBytes(s.Spec.Name, o.Path, o.Kind, o.Size))
			resp.Header.Set("Cache-Control", "max-age=3600")
			return resp
		}
		return httpwire.NewResponse(404, "text/plain", []byte("not found\n"))
	}
}

var _ httpwire.Handler = (*StaticSite)(nil)
