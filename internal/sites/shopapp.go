package sites

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"rcb/internal/httpwire"
)

// Product is one item in the shop's inventory.
type Product struct {
	ID    int
	Name  string
	Price string
}

// ShopApp is the Amazon stand-in of the usability study (paper §5.2.2): a
// session-protected store with search, product pages, a server-side cart,
// and a checkout form. Cart and checkout require the session cookie issued
// on first visit — the property that breaks URL-sharing co-browsing
// (copying a cart URL into another browser shows nothing) but not RCB,
// where all requests originate from the host browser's session.
type ShopApp struct {
	Host     string
	Products []Product

	mu       sync.Mutex
	nextSID  int
	carts    map[string][]int    // sid → product IDs
	orders   map[string][]string // sid → order confirmation lines
	shipping map[string][]httpwire.FormField
}

// NewShopApp returns a shop with a laptop-heavy inventory (the study's
// shoppers are choosing a MacBook Air).
func NewShopApp(host string) *ShopApp {
	return &ShopApp{
		Host: host,
		Products: []Product{
			{1, "MacBook Air 13-inch", "$1,799.00"},
			{2, "MacBook Air 13-inch SSD", "$2,598.00"},
			{3, "MacBook Pro 15-inch", "$1,999.00"},
			{4, "ThinkPad X301", "$2,389.00"},
			{5, "EeePC 1000HE", "$389.00"},
		},
		carts:    make(map[string][]int),
		orders:   make(map[string][]string),
		shipping: make(map[string][]httpwire.FormField),
	}
}

// sessionID extracts the sid cookie, or "".
func sessionID(req *httpwire.Request) string {
	for _, part := range strings.Split(req.Header.Get("Cookie"), ";") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if ok && k == "sid" {
			return v
		}
	}
	return ""
}

// ServeWire implements httpwire.Handler.
func (s *ShopApp) ServeWire(req *httpwire.Request) *httpwire.Response {
	sid := sessionID(req)
	path := req.Path()
	switch {
	case path == "/":
		resp := httpwire.NewResponse(200, "text/html; charset=utf-8", []byte(s.homePage()))
		if sid == "" {
			s.mu.Lock()
			s.nextSID++
			sid = fmt.Sprintf("s%06d", s.nextSID)
			s.mu.Unlock()
			resp.Header.Set("Set-Cookie", "sid="+sid+"; Path=/")
		}
		return resp
	case path == "/search":
		q := formValue(httpwire.ParseForm(req.Query()), "q")
		return httpwire.NewResponse(200, "text/html; charset=utf-8", []byte(s.searchPage(q)))
	case strings.HasPrefix(path, "/product/"):
		id, _ := strconv.Atoi(strings.TrimPrefix(path, "/product/"))
		p := s.product(id)
		if p == nil {
			return httpwire.NewResponse(404, "text/plain", []byte("no such product\n"))
		}
		return httpwire.NewResponse(200, "text/html; charset=utf-8", []byte(s.productPage(*p)))
	case path == "/cart":
		if sid == "" {
			return s.sessionRequired()
		}
		if req.Method == "POST" {
			id, _ := strconv.Atoi(formValue(httpwire.ParseForm(string(req.Body)), "product"))
			if s.product(id) == nil {
				return httpwire.NewResponse(400, "text/plain", []byte("unknown product\n"))
			}
			s.mu.Lock()
			s.carts[sid] = append(s.carts[sid], id)
			s.mu.Unlock()
		}
		return httpwire.NewResponse(200, "text/html; charset=utf-8", []byte(s.cartPage(sid)))
	case path == "/checkout":
		if sid == "" {
			return s.sessionRequired()
		}
		s.mu.Lock()
		empty := len(s.carts[sid]) == 0
		s.mu.Unlock()
		if empty {
			return httpwire.NewResponse(400, "text/html", []byte("<html><body>cart is empty</body></html>"))
		}
		return httpwire.NewResponse(200, "text/html; charset=utf-8", []byte(s.checkoutPage(sid)))
	case path == "/order" && req.Method == "POST":
		if sid == "" {
			return s.sessionRequired()
		}
		fields := httpwire.ParseForm(string(req.Body))
		if formValue(fields, "name") == "" || formValue(fields, "street") == "" {
			return httpwire.NewResponse(400, "text/html", []byte("<html><body>missing shipping fields</body></html>"))
		}
		s.mu.Lock()
		s.shipping[sid] = fields
		items := s.carts[sid]
		line := fmt.Sprintf("order of %d item(s) to %s", len(items), formValue(fields, "name"))
		s.orders[sid] = append(s.orders[sid], line)
		s.carts[sid] = nil
		s.mu.Unlock()
		body := fmt.Sprintf(`<!DOCTYPE html><html><head><title>Order placed</title></head>`+
			`<body><h1 id="confirm">Thank you!</h1><p>%s</p></body></html>`, line)
		return httpwire.NewResponse(200, "text/html; charset=utf-8", []byte(body))
	default:
		return httpwire.NewResponse(404, "text/plain", []byte("not found\n"))
	}
}

func (s *ShopApp) sessionRequired() *httpwire.Response {
	return httpwire.NewResponse(403, "text/html",
		[]byte("<html><body>session required: visit the homepage first</body></html>"))
}

func (s *ShopApp) product(id int) *Product {
	for i := range s.Products {
		if s.Products[i].ID == id {
			return &s.Products[i]
		}
	}
	return nil
}

// CartItems reports the cart contents for a session (test/diagnostic hook).
func (s *ShopApp) CartItems(sid string) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.carts[sid]...)
}

// Orders reports placed orders for a session (test/diagnostic hook).
func (s *ShopApp) Orders(sid string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.orders[sid]...)
}

// ShippingField returns a submitted shipping field for a session.
func (s *ShopApp) ShippingField(sid, name string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return formValue(s.shipping[sid], name)
}

func (s *ShopApp) homePage() string {
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html><html><head><title>Shop</title>` +
		`<script>function doSearch(f){return f.q.value.length>0;}</script></head><body>`)
	b.WriteString(`<h1>Everything Store</h1>`)
	b.WriteString(`<form id="search" action="/search" method="get" onsubmit="return doSearch(this)">` +
		`<input type="text" name="q" value=""><input type="submit" value="Go"></form>`)
	b.WriteString(`<div id="featured">`)
	for _, p := range s.Products[:3] {
		fmt.Fprintf(&b, `<div class="item"><a href="/product/%d">%s</a> <span>%s</span></div>`, p.ID, p.Name, p.Price)
	}
	b.WriteString(`</div><a href="/cart" id="cartlink">Cart</a></body></html>`)
	return b.String()
}

func (s *ShopApp) searchPage(q string) string {
	var b strings.Builder
	fmt.Fprintf(&b, `<!DOCTYPE html><html><head><title>Search: %s</title></head><body>`, q)
	fmt.Fprintf(&b, `<h1>Results for %q</h1><div id="results">`, q)
	ql := strings.ToLower(q)
	found := 0
	for _, p := range s.Products {
		if ql == "" || strings.Contains(strings.ToLower(p.Name), ql) {
			fmt.Fprintf(&b, `<div class="result"><a id="result-%d" href="/product/%d">%s</a> <span>%s</span></div>`, p.ID, p.ID, p.Name, p.Price)
			found++
		}
	}
	if found == 0 {
		b.WriteString(`<p id="none">no matches</p>`)
	}
	b.WriteString(`</div><a href="/">home</a></body></html>`)
	return b.String()
}

func (s *ShopApp) productPage(p Product) string {
	return fmt.Sprintf(`<!DOCTYPE html><html><head><title>%s</title></head><body>`+
		`<h1 id="pname">%s</h1><p id="price">%s</p>`+
		`<form id="addtocart" action="/cart" method="post" onsubmit="return true">`+
		`<input type="hidden" name="product" value="%d">`+
		`<input type="submit" value="Add to Cart"></form>`+
		`<a href="/">home</a></body></html>`, p.Name, p.Name, p.Price, p.ID)
}

func (s *ShopApp) cartPage(sid string) string {
	s.mu.Lock()
	items := append([]int(nil), s.carts[sid]...)
	s.mu.Unlock()
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html><html><head><title>Cart</title></head><body><h1>Your Cart</h1><ul id="cart">`)
	for _, id := range items {
		if p := s.product(id); p != nil {
			fmt.Fprintf(&b, `<li>%s — %s</li>`, p.Name, p.Price)
		}
	}
	b.WriteString(`</ul>`)
	if len(items) > 0 {
		b.WriteString(`<a href="/checkout" id="checkoutlink">Proceed to checkout</a>`)
	} else {
		b.WriteString(`<p id="empty">cart is empty</p>`)
	}
	b.WriteString(`</body></html>`)
	return b.String()
}

func (s *ShopApp) checkoutPage(sid string) string {
	_ = sid
	return `<!DOCTYPE html><html><head><title>Checkout</title></head><body>` +
		`<h1>Shipping address</h1>` +
		`<form id="shipping" action="/order" method="post" onsubmit="return true">` +
		`<input type="text" name="name" value="">` +
		`<input type="text" name="street" value="">` +
		`<input type="text" name="city" value="">` +
		`<input type="text" name="zip" value="">` +
		`<input type="submit" value="Place order"></form></body></html>`
}

var _ httpwire.Handler = (*ShopApp)(nil)
