// Package sites provides the synthetic web corpus the RCB experiments run
// against: deterministic reconstructions of the 20 Alexa homepages from the
// paper's Table 1 (matched on HTML document size), a Google-Maps-like Ajax
// tile application, and an Amazon-like session-protected shop. All content
// is generated, served through internal/httpwire handlers, and fully
// deterministic so experiment results are reproducible run to run.
package sites

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
)

// SiteSpec describes one homepage of the paper's Table 1 corpus.
type SiteSpec struct {
	Index    int     // 1-based row number in Table 1
	Name     string  // site hostname, e.g. "yahoo.com"
	PageKB   float64 // HTML document size from Table 1, in kilobytes
	HTTPS    bool    // served as a TLS origin (semantic flag in the simulation)
	RTTMs    int     // modeled one-way latency from a US campus, milliseconds
	Sessions bool    // homepage sets a session cookie
}

// PageBytes returns the HTML document target size in bytes.
func (s SiteSpec) PageBytes() int { return int(s.PageKB * 1024) }

// Host returns the virtual origin address for this site.
func (s SiteSpec) Host() string { return "www." + s.Name + ":80" }

// Table1 is the paper's 20-site corpus. Page sizes are the published values;
// per-site latency reflects geographic diversity (the paper chose sites for
// geographic and content diversity — yahoo.co.jp, mail.ru, free.fr are far
// from a US campus, which matters for the M1 vs M2 comparison).
var Table1 = []SiteSpec{
	{1, "yahoo.com", 130.3, false, 18, true},
	{2, "google.com", 6.8, false, 12, false},
	{3, "youtube.com", 69.2, false, 16, false},
	{4, "live.com", 20.9, true, 20, true},
	{5, "msn.com", 49.6, false, 20, false},
	{6, "myspace.com", 53.2, false, 24, true},
	{7, "wikipedia.org", 51.7, false, 26, false},
	{8, "facebook.com", 23.2, true, 18, true},
	{9, "yahoo.co.jp", 101.4, false, 75, false},
	{10, "ebay.com", 50.5, true, 22, true},
	{11, "aol.com", 71.3, false, 19, false},
	{12, "mail.ru", 83.8, false, 85, true},
	{13, "amazon.com", 228.5, true, 21, true},
	{14, "cnn.com", 109.4, false, 17, false},
	{15, "espn.go.com", 110.9, false, 23, false},
	{16, "free.fr", 70.0, false, 68, false},
	{17, "adobe.com", 37.3, false, 25, false},
	{18, "apple.com", 10.0, false, 15, false},
	{19, "about.com", 35.8, false, 21, false},
	{20, "nytimes.com", 120.0, false, 16, true},
}

// SiteByName returns the Table 1 spec with the given name, or false.
func SiteByName(name string) (SiteSpec, bool) {
	for _, s := range Table1 {
		if s.Name == name {
			return s, true
		}
	}
	return SiteSpec{}, false
}

// ObjectKind classifies supplementary objects.
type ObjectKind int

// Supplementary object kinds referenced from generated pages.
const (
	ObjImage ObjectKind = iota
	ObjCSS
	ObjScript
)

// ContentType returns the MIME type for the object kind.
func (k ObjectKind) ContentType() string {
	switch k {
	case ObjImage:
		return "image/png"
	case ObjCSS:
		return "text/css"
	case ObjScript:
		return "application/javascript"
	}
	return "application/octet-stream"
}

// Object is one supplementary resource of a generated page.
type Object struct {
	Path string // origin-relative path, e.g. "/img/3.png"
	Kind ObjectKind
	Size int // body size in bytes
}

// Inventory is the deterministic supplementary-object set for a site. The
// paper does not publish per-site object counts, so the inventory is scaled
// from the documented HTML size: larger 2009 portals carried more styling
// and imagery. Counts and sizes are derived from a per-site seeded PRNG so
// every run sees identical objects.
func Inventory(spec SiteSpec) []Object {
	r := rand.New(rand.NewSource(int64(seed(spec.Name))))
	var objs []Object
	nCSS := 1 + r.Intn(3)
	for i := 0; i < nCSS; i++ {
		objs = append(objs, Object{
			Path: fmt.Sprintf("/static/style%d.css", i),
			Kind: ObjCSS,
			Size: 2048 + r.Intn(18*1024),
		})
	}
	nJS := 1 + r.Intn(2)
	for i := 0; i < nJS; i++ {
		objs = append(objs, Object{
			Path: fmt.Sprintf("/static/app%d.js", i),
			Kind: ObjScript,
			Size: 4096 + r.Intn(36*1024),
		})
	}
	nImg := 4 + spec.PageBytes()/6144
	if nImg > 40 {
		nImg = 40
	}
	for i := 0; i < nImg; i++ {
		objs = append(objs, Object{
			Path: fmt.Sprintf("/img/i%d.png", i),
			Kind: ObjImage,
			Size: 1024 + r.Intn(28*1024),
		})
	}
	return objs
}

// TotalObjectBytes sums the inventory body sizes.
func TotalObjectBytes(objs []Object) int {
	total := 0
	for _, o := range objs {
		total += o.Size
	}
	return total
}

// seed hashes a name to a stable PRNG seed.
func seed(name string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(name))
	return h.Sum32()
}

// ObjectBytes generates the deterministic body for an object: a repeating
// pattern derived from site and path, sized exactly. CSS and JS bodies are
// syntactically plausible text; images are binary-ish filler.
func ObjectBytes(site, path string, kind ObjectKind, size int) []byte {
	r := rand.New(rand.NewSource(int64(seed(site + path))))
	switch kind {
	case ObjCSS:
		return textBody(r, size, func(i int) string {
			return fmt.Sprintf(".c%d{margin:%dpx;padding:%dpx;color:#%06x}\n", i, r.Intn(40), r.Intn(40), r.Intn(1<<24))
		})
	case ObjScript:
		return textBody(r, size, func(i int) string {
			return fmt.Sprintf("function f%d(x){return x*%d+%d;}\n", i, 1+r.Intn(9), r.Intn(100))
		})
	default:
		b := make([]byte, size)
		// PNG-looking header then deterministic noise.
		copy(b, "\x89PNG\r\n\x1a\n")
		for i := 8; i < size; i++ {
			b[i] = byte(r.Intn(256))
		}
		return b
	}
}

func textBody(r *rand.Rand, size int, line func(i int) string) []byte {
	var b strings.Builder
	b.Grow(size + 64)
	for i := 0; b.Len() < size; i++ {
		b.WriteString(line(i))
	}
	out := []byte(b.String())[:size]
	// Do not end mid-rune or mid-line in a way that matters; raw truncation
	// is fine for synthetic bodies.
	return out
}
