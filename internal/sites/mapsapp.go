package sites

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"rcb/internal/dom"
	"rcb/internal/httpwire"
)

// MapsApp is the Google-Maps stand-in of the usability study (paper §5.2.1):
// an Ajax tile application whose page content changes without the URL ever
// changing. Zooming, panning and searching replace the tile grid in the live
// DOM — exactly the class of dynamic update that URL-sharing co-browsing
// cannot mirror but RCB can.
//
// The server side serves the initial page, deterministic map tiles, and a
// geocoding endpoint. The client-side Ajax behaviour that a browser's
// JavaScript would perform is modeled by MapsOps, which fetches from these
// endpoints and mutates a dom.Document in place.
type MapsApp struct {
	// Host is the virtual origin address, e.g. "maps.example:80".
	Host string
	// Places maps a query string to tile coordinates.
	Places map[string][3]int // q → {x, y, zoom}
}

// GridSize is the width/height of the visible tile grid.
const GridSize = 3

// NewMapsApp returns a maps server with a small gazetteer, including the
// paper's meeting-spot query.
func NewMapsApp(host string) *MapsApp {
	return &MapsApp{
		Host: host,
		Places: map[string][3]int{
			"653 5th Ave, New York": {9650, 12318, 16},
			"times square":          {9646, 12310, 15},
			"central park":          {9644, 12300, 14},
			"williamsburg":          {9680, 12330, 14},
		},
	}
}

// ServeWire implements httpwire.Handler.
func (m *MapsApp) ServeWire(req *httpwire.Request) *httpwire.Response {
	path := req.Path()
	switch {
	case path == "/":
		return httpwire.NewResponse(200, "text/html; charset=utf-8", []byte(m.initialPage(9640, 12300, 12)))
	case strings.HasPrefix(path, "/tile/"):
		parts := strings.Split(strings.TrimPrefix(path, "/tile/"), "/")
		if len(parts) != 3 {
			return httpwire.NewResponse(404, "text/plain", []byte("bad tile\n"))
		}
		z, _ := strconv.Atoi(parts[0])
		x, _ := strconv.Atoi(parts[1])
		y, _ := strconv.Atoi(strings.TrimSuffix(parts[2], ".png"))
		resp := httpwire.NewResponse(200, "image/png", TileBytes(z, x, y))
		resp.Header.Set("Cache-Control", "max-age=86400")
		return resp
	case path == "/api/geocode":
		q := formValue(httpwire.ParseForm(req.Query()), "q")
		if pos, ok := m.Places[q]; ok {
			body := fmt.Sprintf("%d %d %d", pos[0], pos[1], pos[2])
			return httpwire.NewResponse(200, "text/plain", []byte(body))
		}
		return httpwire.NewResponse(404, "text/plain", []byte("no such place\n"))
	case path == "/streetview.swf":
		resp := httpwire.NewResponse(200, "application/x-shockwave-flash", ObjectBytes(m.Host, path, ObjImage, 64*1024))
		resp.Header.Set("Cache-Control", "max-age=86400")
		return resp
	default:
		return httpwire.NewResponse(404, "text/plain", []byte("not found\n"))
	}
}

func formValue(fields []httpwire.FormField, name string) string {
	for _, f := range fields {
		if f.Name == name {
			return f.Value
		}
	}
	return ""
}

// initialPage renders the map page centered at (x, y, z).
func (m *MapsApp) initialPage(x, y, z int) string {
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html><html><head><title>Maps</title>`)
	b.WriteString(`<style>#map img{width:256px;height:256px}</style>`)
	b.WriteString(`<script>function doSearch(f){return f.q.value.length>0;}</script>`)
	b.WriteString(`</head><body>`)
	b.WriteString(`<form id="searchform" action="/api/geocode" method="get" onsubmit="return doSearch(this)">` +
		`<input type="text" name="q" value=""><input type="submit" value="Search Maps"></form>`)
	fmt.Fprintf(&b, `<div id="map" data-x="%d" data-y="%d" data-z="%d">`, x, y, z)
	b.WriteString(tileGrid(x, y, z))
	b.WriteString(`</div>`)
	fmt.Fprintf(&b, `<div id="status">center %d,%d zoom %d</div>`, x, y, z)
	b.WriteString(`<div id="panel"><a href="#" id="zoomin" onclick="return zoom(1)">+</a>` +
		`<a href="#" id="zoomout" onclick="return zoom(-1)">-</a>` +
		`<a href="#" id="sv" onclick="return streetview()">street view</a></div>`)
	b.WriteString(`</body></html>`)
	return b.String()
}

// tileGrid renders the GridSize×GridSize <img> tiles around center (x, y).
func tileGrid(x, y, z int) string {
	var b strings.Builder
	half := GridSize / 2
	for dy := -half; dy <= half; dy++ {
		for dx := -half; dx <= half; dx++ {
			fmt.Fprintf(&b, `<img class="tile" src="/tile/%d/%d/%d.png" alt="t">`, z, x+dx, y+dy)
		}
	}
	return b.String()
}

// TileBytes generates a deterministic tile body; size varies 4–12 KB with
// coordinates, like real encoded map tiles.
func TileBytes(z, x, y int) []byte {
	key := fmt.Sprintf("tile/%d/%d/%d", z, x, y)
	r := rand.New(rand.NewSource(int64(seed(key))))
	size := 4096 + r.Intn(8192)
	return ObjectBytes("maps", "/"+key, ObjImage, size)
}

// MapsOps performs the client-side Ajax operations on a live document, the
// way the real app's JavaScript would: fetch data, then mutate the DOM
// in place. The document URL never changes.
type MapsOps struct {
	Addr   string // maps origin address
	Client *httpwire.Client
}

// center reads the current map center from the #map data attributes.
func (o MapsOps) center(doc *dom.Document) (x, y, z int, mapDiv *dom.Node, err error) {
	mapDiv = doc.ByID("map")
	if mapDiv == nil {
		return 0, 0, 0, nil, fmt.Errorf("maps: no #map element in document")
	}
	x, _ = strconv.Atoi(mapDiv.AttrOr("data-x", ""))
	y, _ = strconv.Atoi(mapDiv.AttrOr("data-y", ""))
	z, _ = strconv.Atoi(mapDiv.AttrOr("data-z", ""))
	return x, y, z, mapDiv, nil
}

// apply re-centers the map: updates data attributes, replaces the tile grid,
// and refreshes the status line.
func (o MapsOps) apply(doc *dom.Document, x, y, z int) error {
	_, _, _, mapDiv, err := o.center(doc)
	if err != nil {
		return err
	}
	mapDiv.SetAttr("data-x", strconv.Itoa(x))
	mapDiv.SetAttr("data-y", strconv.Itoa(y))
	mapDiv.SetAttr("data-z", strconv.Itoa(z))
	dom.SetInnerHTML(mapDiv, tileGrid(x, y, z))
	if status := doc.ByID("status"); status != nil {
		dom.SetInnerHTML(status, fmt.Sprintf("center %d,%d zoom %d", x, y, z))
	}
	return nil
}

// Search geocodes q and re-centers the map on the result.
func (o MapsOps) Search(doc *dom.Document, q string) error {
	target := "/api/geocode?" + httpwire.EncodeForm([]httpwire.FormField{{Name: "q", Value: q}})
	resp, err := o.Client.Get(o.Addr, target)
	if err != nil {
		return fmt.Errorf("maps search: %w", err)
	}
	if resp.StatusCode != 200 {
		return fmt.Errorf("maps search: place %q not found (status %d)", q, resp.StatusCode)
	}
	var x, y, z int
	if _, err := fmt.Sscanf(string(resp.Body), "%d %d %d", &x, &y, &z); err != nil {
		return fmt.Errorf("maps search: bad geocode response %q", resp.Body)
	}
	return o.apply(doc, x, y, z)
}

// Zoom changes the zoom level by delta (positive = in), keeping the center.
func (o MapsOps) Zoom(doc *dom.Document, delta int) error {
	x, y, z, _, err := o.center(doc)
	if err != nil {
		return err
	}
	z += delta
	if z < 1 {
		z = 1
	}
	if z > 18 {
		z = 18
	}
	return o.apply(doc, x, y, z)
}

// Pan shifts the map center by (dx, dy) tiles.
func (o MapsOps) Pan(doc *dom.Document, dx, dy int) error {
	x, y, z, _, err := o.center(doc)
	if err != nil {
		return err
	}
	return o.apply(doc, x+dx, y+dy, z)
}

// OpenStreetView embeds the street-view Flash object below the map — the
// element whose internal actions RCB explicitly does not synchronize (paper
// §5.2.1), although its presence on the page does propagate.
func (o MapsOps) OpenStreetView(doc *dom.Document) error {
	if doc.ByID("streetview") != nil {
		return nil // already open
	}
	mapDiv := doc.ByID("map")
	if mapDiv == nil {
		return fmt.Errorf("maps: no #map element in document")
	}
	sv := dom.NewElement("object")
	sv.SetAttr("id", "streetview")
	sv.SetAttr("type", "application/x-shockwave-flash")
	sv.SetAttr("data", "/streetview.swf")
	sv.SetAttr("width", "512")
	sv.SetAttr("height", "256")
	parent := mapDiv.Parent
	parent.InsertBefore(sv, nextSibling(parent, mapDiv))
	return nil
}

func nextSibling(parent, child *dom.Node) *dom.Node {
	for i, c := range parent.Children {
		if c == child && i+1 < len(parent.Children) {
			return parent.Children[i+1]
		}
	}
	return nil
}

var _ httpwire.Handler = (*MapsApp)(nil)
