package sites

import (
	"strings"
	"testing"

	"rcb/internal/dom"
	"rcb/internal/httpwire"
)

func TestTable1Catalog(t *testing.T) {
	if len(Table1) != 20 {
		t.Fatalf("Table 1 must list 20 sites, got %d", len(Table1))
	}
	seen := map[string]bool{}
	for i, s := range Table1 {
		if s.Index != i+1 {
			t.Errorf("site %s index %d, want %d", s.Name, s.Index, i+1)
		}
		if s.PageKB <= 0 {
			t.Errorf("site %s has no page size", s.Name)
		}
		if seen[s.Name] {
			t.Errorf("duplicate site %s", s.Name)
		}
		seen[s.Name] = true
	}
	// Spot-check the published sizes.
	if s, _ := SiteByName("amazon.com"); s.PageKB != 228.5 {
		t.Errorf("amazon.com size = %v, want 228.5", s.PageKB)
	}
	if s, _ := SiteByName("google.com"); s.PageKB != 6.8 {
		t.Errorf("google.com size = %v, want 6.8", s.PageKB)
	}
}

func TestGeneratedPageHitsPublishedSize(t *testing.T) {
	for _, spec := range Table1 {
		page := GeneratePage(spec, Inventory(spec))
		if len(page) != spec.PageBytes() {
			t.Errorf("%s: generated %d bytes, want %d", spec.Name, len(page), spec.PageBytes())
		}
	}
}

func TestGeneratedPageIsDeterministic(t *testing.T) {
	spec := Table1[0]
	a := GeneratePage(spec, Inventory(spec))
	b := GeneratePage(spec, Inventory(spec))
	if a != b {
		t.Fatal("page generation is not deterministic")
	}
}

func TestGeneratedPageParses(t *testing.T) {
	for _, spec := range Table1[:5] {
		page := GeneratePage(spec, Inventory(spec))
		doc := dom.Parse(page)
		if doc.Body() == nil || doc.Head() == nil {
			t.Fatalf("%s: page did not parse into skeleton", spec.Name)
		}
		if len(doc.ByTag("form")) == 0 {
			t.Errorf("%s: page has no form", spec.Name)
		}
		if len(doc.ByTag("img")) == 0 {
			t.Errorf("%s: page has no images", spec.Name)
		}
	}
}

func TestInventoryDeterministicAndReferenced(t *testing.T) {
	spec := Table1[3]
	objs := Inventory(spec)
	if len(objs) == 0 {
		t.Fatal("empty inventory")
	}
	again := Inventory(spec)
	if len(again) != len(objs) {
		t.Fatal("inventory not deterministic")
	}
	page := GeneratePage(spec, objs)
	for _, o := range objs {
		if o.Kind == ObjImage && !strings.Contains(page, o.Path) {
			t.Errorf("image %s not referenced from page", o.Path)
		}
	}
}

func TestObjectBytesSizedAndStable(t *testing.T) {
	b1 := ObjectBytes("x.com", "/img/i0.png", ObjImage, 5000)
	b2 := ObjectBytes("x.com", "/img/i0.png", ObjImage, 5000)
	if len(b1) != 5000 || string(b1) != string(b2) {
		t.Fatal("object bytes not stable/sized")
	}
	css := ObjectBytes("x.com", "/static/style0.css", ObjCSS, 3000)
	if len(css) != 3000 || !strings.Contains(string(css), "margin") {
		t.Fatal("css body implausible")
	}
}

func TestStaticSiteServesHomepageAndObjects(t *testing.T) {
	spec := Table1[1] // google.com, small
	site := NewStaticSite(spec)
	resp := site.ServeWire(httpwire.NewRequest("GET", "/"))
	if resp.StatusCode != 200 || len(resp.Body) != spec.PageBytes() {
		t.Fatalf("homepage: %d, %d bytes", resp.StatusCode, len(resp.Body))
	}
	obj := site.Objects[0]
	resp = site.ServeWire(httpwire.NewRequest("GET", obj.Path))
	if resp.StatusCode != 200 || len(resp.Body) != obj.Size {
		t.Fatalf("object %s: %d, %d bytes want %d", obj.Path, resp.StatusCode, len(resp.Body), obj.Size)
	}
	if resp.Header.Get("Cache-Control") == "" {
		t.Error("objects must be cacheable")
	}
	resp = site.ServeWire(httpwire.NewRequest("GET", "/nope"))
	if resp.StatusCode != 404 {
		t.Errorf("missing object: %d", resp.StatusCode)
	}
}

func TestStaticSiteSearchAndItems(t *testing.T) {
	site := NewStaticSite(Table1[0])
	resp := site.ServeWire(httpwire.NewRequest("GET", "/search?q=news"))
	if resp.StatusCode != 200 || !strings.Contains(string(resp.Body), "news") {
		t.Fatalf("search: %d %q", resp.StatusCode, resp.Body)
	}
	resp = site.ServeWire(httpwire.NewRequest("GET", "/item/1"))
	if resp.StatusCode != 200 {
		t.Fatalf("item: %d", resp.StatusCode)
	}
}

func TestSessionSiteSetsCookie(t *testing.T) {
	spec, _ := SiteByName("facebook.com")
	site := NewStaticSite(spec)
	resp := site.ServeWire(httpwire.NewRequest("GET", "/"))
	if resp.Header.Get("Set-Cookie") == "" {
		t.Fatal("session site must set a cookie")
	}
}

func TestMapsInitialPage(t *testing.T) {
	m := NewMapsApp(MapsHost)
	resp := m.ServeWire(httpwire.NewRequest("GET", "/"))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	doc := dom.Parse(string(resp.Body))
	tiles := doc.ByTag("img")
	if len(tiles) != GridSize*GridSize {
		t.Fatalf("want %d tiles, got %d", GridSize*GridSize, len(tiles))
	}
	if doc.ByID("map") == nil || doc.ByID("status") == nil {
		t.Fatal("map structure missing")
	}
}

func TestMapsTilesDeterministic(t *testing.T) {
	m := NewMapsApp(MapsHost)
	r1 := m.ServeWire(httpwire.NewRequest("GET", "/tile/12/9640/12300.png"))
	r2 := m.ServeWire(httpwire.NewRequest("GET", "/tile/12/9640/12300.png"))
	if r1.StatusCode != 200 || string(r1.Body) != string(r2.Body) {
		t.Fatal("tiles not deterministic")
	}
	other := m.ServeWire(httpwire.NewRequest("GET", "/tile/12/9641/12300.png"))
	if string(other.Body) == string(r1.Body) {
		t.Fatal("distinct tiles must differ")
	}
}

func TestMapsGeocode(t *testing.T) {
	m := NewMapsApp(MapsHost)
	resp := m.ServeWire(httpwire.NewRequest("GET", "/api/geocode?q=653+5th+Ave%2C+New+York"))
	if resp.StatusCode != 200 {
		t.Fatalf("geocode status %d", resp.StatusCode)
	}
	if string(resp.Body) != "9650 12318 16" {
		t.Fatalf("geocode = %q", resp.Body)
	}
	resp = m.ServeWire(httpwire.NewRequest("GET", "/api/geocode?q=atlantis"))
	if resp.StatusCode != 404 {
		t.Fatalf("unknown place: %d", resp.StatusCode)
	}
}

func TestShopSessionFlow(t *testing.T) {
	shop := NewShopApp(ShopHost)

	// Cart without a session is refused.
	resp := shop.ServeWire(httpwire.NewRequest("GET", "/cart"))
	if resp.StatusCode != 403 {
		t.Fatalf("cart without session: %d", resp.StatusCode)
	}

	// Homepage issues the session.
	resp = shop.ServeWire(httpwire.NewRequest("GET", "/"))
	cookie := resp.Header.Get("Set-Cookie")
	if cookie == "" {
		t.Fatal("no session cookie issued")
	}
	sid := strings.TrimPrefix(strings.Split(cookie, ";")[0], "sid=")

	withSession := func(method, target, body string) *httpwire.Response {
		req := httpwire.NewRequest(method, target)
		req.Header.Set("Cookie", "sid="+sid)
		if body != "" {
			req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
			req.Body = []byte(body)
		}
		return shop.ServeWire(req)
	}

	// Search finds the laptop.
	resp = withSession("GET", "/search?q=macbook+air", "")
	if !strings.Contains(string(resp.Body), "MacBook Air") {
		t.Fatalf("search results missing laptop: %q", resp.Body)
	}

	// Add to cart, then checkout, then order.
	resp = withSession("POST", "/cart", "product=2")
	if resp.StatusCode != 200 || !strings.Contains(string(resp.Body), "MacBook Air 13-inch SSD") {
		t.Fatalf("cart add failed: %d %q", resp.StatusCode, resp.Body)
	}
	if items := shop.CartItems(sid); len(items) != 1 || items[0] != 2 {
		t.Fatalf("cart state = %v", items)
	}
	resp = withSession("GET", "/checkout", "")
	if resp.StatusCode != 200 || !strings.Contains(string(resp.Body), `id="shipping"`) {
		t.Fatalf("checkout: %d", resp.StatusCode)
	}
	resp = withSession("POST", "/order", "name=Alice&street=1+Main+St&city=NYC&zip=10001")
	if resp.StatusCode != 200 || !strings.Contains(string(resp.Body), "Thank you") {
		t.Fatalf("order: %d %q", resp.StatusCode, resp.Body)
	}
	if got := shop.ShippingField(sid, "name"); got != "Alice" {
		t.Fatalf("shipping name = %q", got)
	}
	if orders := shop.Orders(sid); len(orders) != 1 {
		t.Fatalf("orders = %v", orders)
	}
	// Cart is drained after ordering.
	if items := shop.CartItems(sid); len(items) != 0 {
		t.Fatalf("cart not drained: %v", items)
	}
}

func TestShopOrderValidation(t *testing.T) {
	shop := NewShopApp(ShopHost)
	req := httpwire.NewRequest("POST", "/order")
	req.Header.Set("Cookie", "sid=s1")
	req.Body = []byte("name=&street=")
	if resp := shop.ServeWire(req); resp.StatusCode != 400 {
		t.Fatalf("empty shipping accepted: %d", resp.StatusCode)
	}
}

func TestShopCheckoutRequiresNonEmptyCart(t *testing.T) {
	shop := NewShopApp(ShopHost)
	req := httpwire.NewRequest("GET", "/checkout")
	req.Header.Set("Cookie", "sid=sX")
	if resp := shop.ServeWire(req); resp.StatusCode != 400 {
		t.Fatalf("empty-cart checkout: %d", resp.StatusCode)
	}
}

func TestCorpusEndToEnd(t *testing.T) {
	corpus, err := NewCorpus()
	if err != nil {
		t.Fatal(err)
	}
	defer corpus.Close()
	client := httpwire.NewClient(corpus.Network.Dialer("browser.lan"))
	defer client.Close()

	// Fetch a Table 1 homepage over the virtual internet.
	spec := Table1[1]
	resp, err := client.Get(spec.Host(), "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Body) != spec.PageBytes() {
		t.Fatalf("got %d bytes, want %d", len(resp.Body), spec.PageBytes())
	}
	// Maps and shop are reachable too.
	if resp, err = client.Get(MapsHost, "/"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("maps: %v %d", err, resp.StatusCode)
	}
	if resp, err = client.Get(ShopHost, "/"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("shop: %v %d", err, resp.StatusCode)
	}
}

func TestMapsOpsOverVirtualNetwork(t *testing.T) {
	corpus, err := NewCorpus()
	if err != nil {
		t.Fatal(err)
	}
	defer corpus.Close()
	client := httpwire.NewClient(corpus.Network.Dialer("host.lan"))
	defer client.Close()

	resp, err := client.Get(MapsHost, "/")
	if err != nil {
		t.Fatal(err)
	}
	doc := dom.Parse(string(resp.Body))
	ops := MapsOps{Addr: MapsHost, Client: client}

	before := dom.InnerHTML(doc.ByID("map"))
	if err := ops.Search(doc, "653 5th Ave, New York"); err != nil {
		t.Fatal(err)
	}
	after := dom.InnerHTML(doc.ByID("map"))
	if before == after {
		t.Fatal("search did not change the map")
	}
	if got := doc.ByID("map").AttrOr("data-z", ""); got != "16" {
		t.Errorf("zoom after search = %s, want 16", got)
	}
	if err := ops.Zoom(doc, 1); err != nil {
		t.Fatal(err)
	}
	if got := doc.ByID("map").AttrOr("data-z", ""); got != "17" {
		t.Errorf("zoom in = %s, want 17", got)
	}
	if err := ops.Pan(doc, 1, 0); err != nil {
		t.Fatal(err)
	}
	if got := doc.ByID("map").AttrOr("data-x", ""); got != "9651" {
		t.Errorf("pan x = %s, want 9651", got)
	}
	if err := ops.OpenStreetView(doc); err != nil {
		t.Fatal(err)
	}
	if doc.ByID("streetview") == nil {
		t.Fatal("street view not embedded")
	}
	// Idempotent.
	if err := ops.OpenStreetView(doc); err != nil {
		t.Fatal(err)
	}
	if n := len(doc.Root.FindAll(func(n *dom.Node) bool { return n.AttrOr("id", "") == "streetview" })); n != 1 {
		t.Fatalf("street view embedded %d times", n)
	}
}

func TestMapsZoomClamped(t *testing.T) {
	m := NewMapsApp(MapsHost)
	doc := dom.Parse(string(m.ServeWire(httpwire.NewRequest("GET", "/")).Body))
	ops := MapsOps{} // Zoom needs no network
	for i := 0; i < 30; i++ {
		if err := ops.Zoom(doc, 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := doc.ByID("map").AttrOr("data-z", ""); got != "18" {
		t.Fatalf("zoom not clamped high: %s", got)
	}
	for i := 0; i < 40; i++ {
		if err := ops.Zoom(doc, -1); err != nil {
			t.Fatal(err)
		}
	}
	if got := doc.ByID("map").AttrOr("data-z", ""); got != "1" {
		t.Fatalf("zoom not clamped low: %s", got)
	}
}
