package sites

import (
	"fmt"
	"math/rand"
	"strings"
)

// GeneratePage builds the deterministic homepage HTML for a Table 1 site.
// The document hits the site's published size to the byte, carries the full
// supplementary-object inventory in its head and body, and includes the
// constructs the RCB content-generation pipeline must handle: relative and
// absolute URLs, inline style and script, forms with onsubmit handlers,
// links with onclick handlers, and a comment or two.
func GeneratePage(spec SiteSpec, objs []Object) string {
	r := rand.New(rand.NewSource(int64(seed(spec.Name + "/page"))))
	target := spec.PageBytes()

	var css, js, imgs []Object
	for _, o := range objs {
		switch o.Kind {
		case ObjCSS:
			css = append(css, o)
		case ObjScript:
			js = append(js, o)
		case ObjImage:
			imgs = append(imgs, o)
		}
	}

	var b strings.Builder
	b.Grow(target + 512)
	fmt.Fprintf(&b, "<!DOCTYPE html>")
	fmt.Fprintf(&b, `<html lang="en"><head><title>%s - Home</title>`, spec.Name)
	fmt.Fprintf(&b, `<meta charset="utf-8"><meta name="description" content="Welcome to %s">`, spec.Name)
	for _, o := range css {
		// Mix relative and path-absolute references to exercise both
		// branches of RCB-Agent's URL conversion.
		fmt.Fprintf(&b, `<link rel="stylesheet" href="%s">`, o.Path)
	}
	for i, o := range js {
		if i%2 == 0 {
			fmt.Fprintf(&b, `<script src="%s"></script>`, strings.TrimPrefix(o.Path, "/"))
		} else {
			fmt.Fprintf(&b, `<script src="http://%s%s"></script>`, "www."+spec.Name, o.Path)
		}
	}
	fmt.Fprintf(&b, `<style>body{font:13px arial;margin:0}#hd{background:#%06x}</style>`, r.Intn(1<<24))
	fmt.Fprintf(&b, `<script>function doSearch(f){return f.q.value.length>0;}</script>`)
	b.WriteString(`</head><body>`)
	fmt.Fprintf(&b, `<div id="hd"><a href="/" onclick="return nav(this)">%s</a>`, spec.Name)
	for i := 0; i < 6; i++ {
		fmt.Fprintf(&b, `<a href="/section/%d">%s</a>`, i, words(r, 1))
	}
	b.WriteString(`</div>`)
	fmt.Fprintf(&b, `<form id="search" action="/search" method="get" onsubmit="return doSearch(this)">`+
		`<input type="text" name="q" value=""><input type="submit" value="Search"></form>`)
	b.WriteString(`<!-- content region -->`)
	fmt.Fprintf(&b, `<div id="content">`)
	for i, o := range imgs {
		fmt.Fprintf(&b, `<div class="story"><img src="%s" alt="im%d"><h3><a href="/item/%d">%s</a></h3><p>%s</p></div>`,
			o.Path, i, i, words(r, 3+r.Intn(4)), words(r, 10+r.Intn(20)))
	}
	b.WriteString(`</div>`)
	fmt.Fprintf(&b, `<div id="ft">&copy; 2009 %s <a href="http://www.%s/about">About</a></div>`, spec.Name, spec.Name)

	// Pad with filler paragraphs to land exactly on the published document
	// size. The closing markup is fixed-length, so the remaining budget is
	// exact.
	const closing = `</body></html>`
	pad := target - b.Len() - len(closing) - len(`<div id="filler"><p></p></div>`)
	if pad > 0 {
		b.WriteString(`<div id="filler"><p>`)
		b.WriteString(filler(r, pad))
		b.WriteString(`</p></div>`)
	}
	b.WriteString(closing)
	out := b.String()
	if len(out) < target {
		// Page skeleton exceeded target only for very small sites; otherwise
		// pad trailing whitespace (harmless in HTML) to the exact size.
		out += strings.Repeat(" ", target-len(out))
	}
	return out
}

// words produces n space-separated pseudo-words.
func words(r *rand.Rand, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(word(r))
	}
	return b.String()
}

var syllables = []string{"ta", "ri", "no", "ve", "lum", "ser", "qua", "dor", "mi", "pal", "ex", "cor", "ban", "tel", "os"}

func word(r *rand.Rand) string {
	var b strings.Builder
	n := 2 + r.Intn(3)
	for i := 0; i < n; i++ {
		b.WriteString(syllables[r.Intn(len(syllables))])
	}
	return b.String()
}

// filler produces exactly n bytes of word-like text.
func filler(r *rand.Rand, n int) string {
	var b strings.Builder
	b.Grow(n + 16)
	for b.Len() < n {
		b.WriteString(word(r))
		b.WriteByte(' ')
	}
	return b.String()[:n]
}
