package httpwire

import (
	"strings"
	"testing"
	"time"
)

// TestLaneOvertakesParkedExchange is the wire-level guarantee the action
// upstream rides on: with the default lane's exchange parked server-side
// (a hanging long-poll), a request on a named lane completes immediately on
// its own connection instead of queueing behind the hang.
func TestLaneOvertakesParkedExchange(t *testing.T) {
	h := &parkingHandler{}
	addr, _ := startTestServer(t, h)
	c := NewClient(tcpDialer)
	defer c.Close()

	parkedDone := make(chan error, 1)
	go func() {
		_, err := c.Do(addr, NewRequest("GET", "/park"))
		parkedDone <- err
	}()
	waitFor(t, "request to park", func() bool { return h.parkedCount() == 1 })

	start := time.Now()
	resp, err := c.DoLane(addr, "action", NewRequest("GET", "/side"), 2*time.Second)
	if err != nil {
		t.Fatalf("lane request failed behind a parked exchange: %v", err)
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("lane request took %v; it must not wait for the parked exchange", took)
	}
	if !strings.Contains(string(resp.Body), "/side") {
		t.Fatalf("lane response = %q", resp.Body)
	}
	// The parked exchange is untouched by the lane traffic and completes
	// normally when released.
	if h.parkedCount() != 1 {
		t.Fatal("lane request disturbed the parked exchange")
	}
	h.Release(NewResponse(200, "text/plain", []byte("released")))
	if err := <-parkedDone; err != nil {
		t.Fatal(err)
	}
}

// TestLaneConnectionsAreDistinct checks pooling: lanes get one persistent
// connection each, reused across calls and torn down by Close.
func TestLaneConnectionsAreDistinct(t *testing.T) {
	addr, _ := startTestServer(t, HandlerFunc(echoHandler))
	c := NewClient(tcpDialer)
	defer c.Close()

	for i := 0; i < 3; i++ {
		if _, err := c.Do(addr, NewRequest("GET", "/a")); err != nil {
			t.Fatal(err)
		}
		if _, err := c.DoLane(addr, "x", NewRequest("GET", "/b"), 0); err != nil {
			t.Fatal(err)
		}
		if _, err := c.DoLane(addr, "y", NewRequest("GET", "/c"), 0); err != nil {
			t.Fatal(err)
		}
	}
	c.mu.Lock()
	pooled := len(c.conns)
	c.mu.Unlock()
	if pooled != 3 {
		t.Fatalf("pooled connections = %d, want 3 (default + two lanes)", pooled)
	}
}
