package httpwire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []Frame{
		{Type: 0, Flags: 0, Payload: nil},
		{Type: 1, Flags: 0xFF, Payload: []byte("x")},
		{Type: 7, Flags: 2, Payload: []byte("hello frame payload")},
		{Type: 255, Flags: 255, Payload: bytes.Repeat([]byte{0xAB}, 70000)}, // > one bufio buffer
	}
	for i, want := range cases {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, want); err != nil {
			t.Fatalf("case %d: write: %v", i, err)
		}
		got, err := ReadFrame(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("case %d: read: %v", i, err)
		}
		if got.Type != want.Type || got.Flags != want.Flags || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("case %d: round trip mismatch: got %v want %v", i, got, want)
		}
	}
}

func TestFrameBackToBack(t *testing.T) {
	var buf bytes.Buffer
	frames := []Frame{
		{Type: 1, Payload: []byte("first")},
		{Type: 2, Flags: 1},
		{Type: 3, Payload: []byte("third")},
	}
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(&buf)
	for i, want := range frames {
		got, err := ReadFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Flags != want.Flags || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d mismatch: got %v want %v", i, got, want)
		}
	}
	if _, err := ReadFrame(br); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	full := AppendFrame(nil, Frame{Type: 9, Flags: 1, Payload: []byte("payload bytes")})
	for cut := 1; cut < len(full); cut++ {
		_, err := ReadFrame(bufio.NewReader(bytes.NewReader(full[:cut])))
		if !errors.Is(err, ErrFrameTruncated) {
			t.Fatalf("cut=%d: err = %v, want ErrFrameTruncated", cut, err)
		}
		if _, _, err := DecodeFrame(full[:cut]); !errors.Is(err, ErrFrameTruncated) {
			t.Fatalf("decode cut=%d: err = %v, want ErrFrameTruncated", cut, err)
		}
	}
}

func TestFrameOversized(t *testing.T) {
	hdr := make([]byte, FrameHeaderLen)
	binary.BigEndian.PutUint32(hdr[2:], uint32(MaxFramePayload)+1)
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(hdr))); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("read: err = %v, want ErrFrameTooLarge", err)
	}
	if _, _, err := DecodeFrame(hdr); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("decode: err = %v, want ErrFrameTooLarge", err)
	}
	if err := WriteFrame(io.Discard, Frame{Payload: make([]byte, MaxFramePayload+1)}); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("write: err = %v, want ErrFrameTooLarge", err)
	}
}

// TestChannelConnConcurrentWriters drives many goroutines through one
// ChannelConn; the reader on the far side must see every frame intact —
// the write mutex may not let frames interleave.
func TestChannelConnConcurrentWriters(t *testing.T) {
	client, server := net.Pipe()
	cc := NewChannelConn(client, nil)
	defer cc.Close()
	defer server.Close()

	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte('a' + w)}, 100+w)
			for i := 0; i < perWriter; i++ {
				if err := cc.WriteFrame(Frame{Type: byte(w), Payload: payload}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	br := bufio.NewReader(server)
	for n := 0; n < writers*perWriter; n++ {
		f, err := ReadFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v", n, err)
		}
		want := bytes.Repeat([]byte{byte('a' + f.Type)}, 100+int(f.Type))
		if !bytes.Equal(f.Payload, want) {
			t.Fatalf("frame %d (type %d): interleaved payload", n, f.Type)
		}
	}
	wg.Wait()
}

// TestUpgradeHijack exercises the full handshake: a handler accepts the
// upgrade, the server hands the connection over, and both sides exchange
// frames in both directions on the one socket.
func TestUpgradeHijack(t *testing.T) {
	served := make(chan error, 1)
	addr, _ := startTestServer(t, HandlerFunc(func(req *Request) *Response {
		if req.Path() != "/channel" {
			return NewResponse(404, "text/plain", []byte("not found\n"))
		}
		resp := NewResponse(101, "", nil)
		resp.Hijack = func(conn net.Conn, br *bufio.Reader) {
			ch := NewChannelConn(conn, br)
			for {
				f, err := ch.ReadFrame()
				if err != nil {
					served <- err
					return
				}
				// Echo with type+1.
				if err := ch.WriteFrame(Frame{Type: f.Type + 1, Payload: f.Payload}); err != nil {
					served <- err
					return
				}
			}
		}
		return resp
	}))

	c := NewClient(tcpDialer)
	defer c.Close()
	ch, resp, err := c.Upgrade(addr, NewRequest("POST", "/channel"), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ch == nil {
		t.Fatalf("upgrade refused: %d", resp.StatusCode)
	}
	defer ch.Close()
	for i := 0; i < 5; i++ {
		payload := []byte(fmt.Sprintf("frame %d", i))
		if err := ch.WriteFrame(Frame{Type: byte(i), Payload: payload}); err != nil {
			t.Fatal(err)
		}
		f, err := ch.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if f.Type != byte(i)+1 || !bytes.Equal(f.Payload, payload) {
			t.Fatalf("echo %d: got type=%d payload=%q", i, f.Type, f.Payload)
		}
	}
	ch.Close()
	if err := <-served; err == nil {
		t.Fatal("server read loop ended without error after client close")
	}
}

// TestUpgradeRefused verifies a non-101 answer comes back as a plain
// response with the connection torn down.
func TestUpgradeRefused(t *testing.T) {
	addr, _ := startTestServer(t, HandlerFunc(func(req *Request) *Response {
		resp := NewResponse(503, "text/plain", []byte("shed\n"))
		resp.Header.Set("Rcb-Close-Reason", "OVERCOMMITTED")
		return resp
	}))
	c := NewClient(tcpDialer)
	defer c.Close()
	ch, resp, err := c.Upgrade(addr, NewRequest("POST", "/channel"), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ch != nil {
		t.Fatal("got a channel from a refused upgrade")
	}
	if resp.StatusCode != 503 || resp.Header.Get("Rcb-Close-Reason") != "OVERCOMMITTED" {
		t.Fatalf("refusal = %d %v", resp.StatusCode, resp.Header)
	}
}

// TestServerCloseSeversChannel proves a hijacked connection is killed by
// Server.Close like any other tracked connection — the restart-mid-stream
// story the degradation ladder depends on.
func TestServerCloseSeversChannel(t *testing.T) {
	readErr := make(chan error, 1)
	addr, srv := startTestServer(t, HandlerFunc(func(req *Request) *Response {
		resp := NewResponse(101, "", nil)
		resp.Hijack = func(conn net.Conn, br *bufio.Reader) {
			ch := NewChannelConn(conn, br)
			_, err := ch.ReadFrame()
			readErr <- err
		}
		return resp
	}))
	c := NewClient(tcpDialer)
	defer c.Close()
	ch, _, err := c.Upgrade(addr, NewRequest("POST", "/channel"), 2*time.Second)
	if err != nil || ch == nil {
		t.Fatalf("upgrade: ch=%v err=%v", ch, err)
	}
	defer ch.Close()
	srv.Close() // must unblock the hijacked read loop
	select {
	case err := <-readErr:
		if err == nil {
			t.Fatal("hijacked read returned nil after server close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server Close did not sever the hijacked channel")
	}
	if _, err := ch.ReadFrame(); err == nil {
		t.Fatal("client read succeeded after server close")
	}
}

// FuzzChannelFrame fuzzes the frame codec: no panics on arbitrary input,
// truncated/oversized input fails hard, and any successful decode
// re-encodes to exactly the consumed bytes (decode→encode fixed point).
func FuzzChannelFrame(f *testing.F) {
	f.Add(AppendFrame(nil, Frame{}))
	f.Add(AppendFrame(nil, Frame{Type: 1, Flags: 2, Payload: []byte("seed payload")}))
	f.Add(AppendFrame(nil, Frame{Type: 0xFF, Flags: 0xFF, Payload: bytes.Repeat([]byte{0}, 300)}))
	f.Add([]byte{1, 2, 3})                        // truncated header
	f.Add([]byte{0, 0, 0xFF, 0xFF, 0xFF, 0xFF})   // oversized length
	f.Add(AppendFrame(nil, Frame{Payload: []byte{0}})[:FrameHeaderLen]) // truncated payload
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if err != nil {
			if !errors.Is(err, ErrFrameTruncated) && !errors.Is(err, ErrFrameTooLarge) {
				t.Fatalf("decode error %v is neither truncated nor oversized", err)
			}
			return
		}
		if n < FrameHeaderLen || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		if got := AppendFrame(nil, fr); !bytes.Equal(got, data[:n]) {
			t.Fatalf("decode→encode not a fixed point:\n in: %x\nout: %x", data[:n], got)
		}
		// The stream reader must agree with the slice decoder.
		sr, err := ReadFrame(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			t.Fatalf("ReadFrame failed where DecodeFrame succeeded: %v", err)
		}
		if sr.Type != fr.Type || sr.Flags != fr.Flags || !bytes.Equal(sr.Payload, fr.Payload) {
			t.Fatalf("ReadFrame %v != DecodeFrame %v", sr, fr)
		}
	})
}
