package httpwire

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// parkingHandler implements AsyncHandler: requests whose path is /park are
// held until Release (or forever, if never released); everything else
// echoes synchronously through the async callback.
type parkingHandler struct {
	mu     sync.Mutex
	parked []func(*Response)
}

func (h *parkingHandler) ServeWire(req *Request) *Response { return echoHandler(req) }

func (h *parkingHandler) ServeWireAsync(req *Request, respond func(*Response)) {
	if req.Path() == "/park" {
		h.mu.Lock()
		h.parked = append(h.parked, respond)
		h.mu.Unlock()
		return
	}
	respond(echoHandler(req))
}

// Release completes every parked request with the given response and
// reports how many there were.
func (h *parkingHandler) Release(resp *Response) int {
	h.mu.Lock()
	parked := h.parked
	h.parked = nil
	h.mu.Unlock()
	for _, respond := range parked {
		respond(resp)
	}
	return len(parked)
}

func (h *parkingHandler) parkedCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.parked)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// TestAsyncHandlerSynchronous checks that an AsyncHandler answering inline
// behaves exactly like a plain Handler, including keep-alive reuse.
func TestAsyncHandlerSynchronous(t *testing.T) {
	addr, _ := startTestServer(t, &parkingHandler{})
	c := NewClient(tcpDialer)
	defer c.Close()
	for i := 0; i < 3; i++ {
		resp, err := c.Get(addr, "/hello")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 || string(resp.Body) != "GET /hello body=" {
			t.Fatalf("resp = %d %q", resp.StatusCode, resp.Body)
		}
	}
}

// TestAsyncHandlerParkedCompletesLater parks a request, completes it from
// another goroutine, and checks the client sees the late response and that
// the connection remains usable for the next request.
func TestAsyncHandlerParkedCompletesLater(t *testing.T) {
	h := &parkingHandler{}
	addr, _ := startTestServer(t, h)
	c := NewClient(tcpDialer)
	defer c.Close()

	type result struct {
		resp *Response
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := c.Get(addr, "/park")
		done <- result{resp, err}
	}()
	waitFor(t, "request to park", func() bool { return h.parkedCount() == 1 })
	select {
	case r := <-done:
		t.Fatalf("parked request completed early: %+v", r)
	case <-time.After(20 * time.Millisecond):
	}
	if n := h.Release(NewResponse(200, "text/plain", []byte("woken"))); n != 1 {
		t.Fatalf("released %d parked requests, want 1", n)
	}
	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.resp.StatusCode != 200 || string(r.resp.Body) != "woken" {
		t.Fatalf("late response = %d %q", r.resp.StatusCode, r.resp.Body)
	}
	// The connection must still carry ordinary requests afterwards.
	resp, err := c.Get(addr, "/after")
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "GET /after body=" {
		t.Fatalf("follow-up = %q", resp.Body)
	}
}

// TestAsyncRespondTwiceIgnored checks that a handler calling respond more
// than once delivers the first response and drops the rest.
func TestAsyncRespondTwiceIgnored(t *testing.T) {
	h := &parkingHandler{}
	addr, _ := startTestServer(t, h)
	c := NewClient(tcpDialer)
	defer c.Close()

	done := make(chan *Response, 1)
	go func() {
		resp, err := c.Get(addr, "/park")
		if err != nil {
			t.Error(err)
			done <- nil
			return
		}
		done <- resp
	}()
	waitFor(t, "request to park", func() bool { return h.parkedCount() == 1 })
	h.mu.Lock()
	respond := h.parked[0]
	h.parked = nil
	h.mu.Unlock()
	respond(NewResponse(200, "text/plain", []byte("first")))
	respond(NewResponse(200, "text/plain", []byte("second")))
	resp := <-done
	if resp == nil {
		t.FailNow()
	}
	if string(resp.Body) != "first" {
		t.Fatalf("got %q, want the first response", resp.Body)
	}
	// The connection serves the next request normally (the duplicate did
	// not get written as a phantom second response).
	after, err := c.Get(addr, "/next")
	if err != nil {
		t.Fatal(err)
	}
	if string(after.Body) != "GET /next body=" {
		t.Fatalf("follow-up = %q", after.Body)
	}
}

// TestServerCloseAbandonsParked checks the drain path: Close must return
// promptly with a request still parked, and the abandoned client sees a
// transport error, not a hang.
func TestServerCloseAbandonsParked(t *testing.T) {
	h := &parkingHandler{}
	addr, srv := startTestServer(t, h)
	c := NewClient(tcpDialer)
	defer c.Close()

	errCh := make(chan error, 1)
	go func() {
		_, err := c.Get(addr, "/park")
		errCh <- err
	}()
	waitFor(t, "request to park", func() bool { return h.parkedCount() == 1 })

	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Server.Close hung on a parked request")
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("abandoned client got a response, want a transport error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned client still waiting after Close")
	}
	// The handler's late respond call must be a harmless no-op.
	h.Release(NewResponse(200, "text/plain", []byte("too late")))
}

// TestClientReadTimeout checks the long-poll safety net: a server that
// never responds trips the per-call read deadline with a net.Error timeout,
// and the timeout is not retried on a second connection.
func TestClientReadTimeout(t *testing.T) {
	h := &parkingHandler{}
	addr, _ := startTestServer(t, h)
	c := NewClient(tcpDialer)
	defer c.Close()

	// Prime the connection pool so the timed-out request runs on a cached
	// connection — the case where a retry would otherwise double the hang.
	if _, err := c.Get(addr, "/prime"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := c.DoTimeout(addr, NewRequest("GET", "/park"), 80*time.Millisecond)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("expected a timeout error")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("error %v is not a net timeout", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("timeout took %v — the deadline was retried", elapsed)
	}
	if got := h.parkedCount(); got != 1 {
		t.Fatalf("server saw %d parked requests, want 1 (no retry)", got)
	}
	// A later request on a fresh connection succeeds: the poisoned
	// connection was dropped from the pool.
	resp, err := c.Get(addr, "/after")
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "GET /after body=" {
		t.Fatalf("follow-up = %q", resp.Body)
	}
	h.Release(emptyAfterTimeout())
}

// emptyAfterTimeout is the response used to tidy up the abandoned park.
func emptyAfterTimeout() *Response { return NewResponse(200, "text/plain", nil) }
