package httpwire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
)

// Errors reported by the wire readers.
var (
	ErrHeaderTooLarge = errors.New("httpwire: header block exceeds limit")
	ErrBodyTooLarge   = errors.New("httpwire: body exceeds limit")
	ErrMalformed      = errors.New("httpwire: malformed message")
)

// ReadRequest reads one HTTP request from r. It returns io.EOF when the
// connection is cleanly closed before any bytes of a new request arrive.
func ReadRequest(r *bufio.Reader) (*Request, error) {
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 {
		return nil, fmt.Errorf("%w: request line %q", ErrMalformed, line)
	}
	method, target, proto := parts[0], parts[1], parts[2]
	if method == "" || target == "" || !strings.HasPrefix(proto, "HTTP/") {
		return nil, fmt.Errorf("%w: request line %q", ErrMalformed, line)
	}
	req := &Request{Method: method, Target: target, Proto: proto, Header: Header{}}
	if err := readHeaders(r, req.Header); err != nil {
		return nil, err
	}
	body, err := readBody(r, req.Header)
	if err != nil {
		return nil, err
	}
	req.Body = body
	return req, nil
}

// ReadResponse reads one HTTP response from r.
func ReadResponse(r *bufio.Reader) (*Response, error) {
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return nil, fmt.Errorf("%w: status line %q", ErrMalformed, line)
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil || code < 100 || code > 599 {
		return nil, fmt.Errorf("%w: status code in %q", ErrMalformed, line)
	}
	resp := &Response{Proto: parts[0], StatusCode: code, Header: Header{}}
	if err := readHeaders(r, resp.Header); err != nil {
		return nil, err
	}
	if code == 204 || code == 304 || code/100 == 1 {
		return resp, nil // no body by definition
	}
	body, err := readBody(r, resp.Header)
	if err != nil {
		return nil, err
	}
	resp.Body = body
	return resp, nil
}

// readLine reads one CRLF- (or bare LF-) terminated line, enforcing the
// header size limit.
func readLine(r *bufio.Reader) (string, error) {
	var line []byte
	for {
		chunk, err := r.ReadSlice('\n')
		line = append(line, chunk...)
		if err == nil {
			break
		}
		if err == bufio.ErrBufferFull {
			if len(line) > MaxHeaderBytes {
				return "", ErrHeaderTooLarge
			}
			continue
		}
		if len(line) > 0 && err == io.EOF {
			return "", io.ErrUnexpectedEOF
		}
		return "", err
	}
	if len(line) > MaxHeaderBytes {
		return "", ErrHeaderTooLarge
	}
	s := strings.TrimRight(string(line), "\r\n")
	return s, nil
}

func readHeaders(r *bufio.Reader, h Header) error {
	total := 0
	for {
		line, err := readLine(r)
		if err != nil {
			if err == io.EOF {
				return io.ErrUnexpectedEOF
			}
			return err
		}
		if line == "" {
			return nil
		}
		total += len(line)
		if total > MaxHeaderBytes {
			return ErrHeaderTooLarge
		}
		name, value, ok := strings.Cut(line, ":")
		if !ok || name == "" || strings.ContainsAny(name, " \t") {
			return fmt.Errorf("%w: header line %q", ErrMalformed, line)
		}
		h.Add(name, strings.TrimSpace(value))
	}
}

func readBody(r *bufio.Reader, h Header) ([]byte, error) {
	if strings.EqualFold(h.Get("Transfer-Encoding"), "chunked") {
		return readChunked(r)
	}
	cl := h.Get("Content-Length")
	if cl == "" {
		return nil, nil
	}
	n, err := strconv.ParseInt(cl, 10, 64)
	if err != nil || n < 0 {
		return nil, fmt.Errorf("%w: content-length %q", ErrMalformed, cl)
	}
	if n > MaxBodyBytes {
		return nil, ErrBodyTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return body, nil
}

func readChunked(r *bufio.Reader) ([]byte, error) {
	var body []byte
	for {
		line, err := readLine(r)
		if err != nil {
			return nil, err
		}
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i] // drop chunk extensions
		}
		size, err := strconv.ParseInt(strings.TrimSpace(line), 16, 64)
		if err != nil || size < 0 {
			return nil, fmt.Errorf("%w: chunk size %q", ErrMalformed, line)
		}
		if int64(len(body))+size > MaxBodyBytes {
			return nil, ErrBodyTooLarge
		}
		if size == 0 {
			// Trailer section: read until blank line.
			for {
				tl, err := readLine(r)
				if err != nil {
					return nil, err
				}
				if tl == "" {
					return body, nil
				}
			}
		}
		chunk := make([]byte, size)
		if _, err := io.ReadFull(r, chunk); err != nil {
			return nil, err
		}
		body = append(body, chunk...)
		// Chunk data is followed by CRLF.
		if _, err := readLine(r); err != nil {
			return nil, err
		}
	}
}

// wireBuf is the pooled scratch state of one message write: the buffer the
// request/status line and header block are assembled into, plus the
// two-element vector handed to net.Buffers so header and body go out in a
// single submit.
type wireBuf struct {
	hdr []byte
	arr [2][]byte
	vec net.Buffers
}

// wireBufPool recycles wireBufs so every message on the hot polling path
// reuses one allocation instead of regrowing a builder.
var wireBufPool = sync.Pool{New: func() any {
	return &wireBuf{hdr: make([]byte, 0, 512)}
}}

// flush submits one message (header block plus optional body) to w and
// returns wb to the pool. When a body is present the two slices go out as
// one net.Buffers submit: a single writev syscall on real TCP connections
// instead of two write calls, and the same sequential writes as before on
// plain io.Writers. The body is never copied — prepared agent content
// travels from the generation cache to the socket as-is.
func (wb *wireBuf) flush(w io.Writer, hdr, body []byte) error {
	var err error
	if len(body) > 0 {
		wb.arr[0], wb.arr[1] = hdr, body
		wb.vec = wb.arr[:]
		_, err = wb.vec.WriteTo(w)
		wb.arr[0], wb.arr[1] = nil, nil // drop body refs before pooling
		wb.vec = nil
	} else {
		_, err = w.Write(hdr)
	}
	wb.hdr = hdr[:0]
	wireBufPool.Put(wb)
	return err
}

// WriteRequest serializes req to w. Content-Length is set from the body.
func WriteRequest(w io.Writer, req *Request) error {
	proto := req.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	wb := wireBufPool.Get().(*wireBuf)
	b := wb.hdr[:0]
	b = append(b, req.Method...)
	b = append(b, ' ')
	b = append(b, req.Target...)
	b = append(b, ' ')
	b = append(b, proto...)
	b = append(b, "\r\n"...)
	b = appendHeaders(b, req.Header, len(req.Body), req.Method == "POST" || req.Method == "PUT")
	b = append(b, "\r\n"...)
	return wb.flush(w, b, req.Body)
}

// WriteResponse serializes resp to w. Content-Length is set from the body.
// Header and body are submitted together (one writev on TCP); the body
// slice is written as-is, without an intermediate copy.
func WriteResponse(w io.Writer, resp *Response) error {
	proto := resp.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	wb := wireBufPool.Get().(*wireBuf)
	b := wb.hdr[:0]
	b = append(b, proto...)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(resp.StatusCode), 10)
	b = append(b, ' ')
	b = append(b, StatusText(resp.StatusCode)...)
	b = append(b, "\r\n"...)
	hasBody := resp.StatusCode != 204 && resp.StatusCode != 304 && resp.StatusCode/100 != 1
	b = appendHeaders(b, resp.Header, len(resp.Body), hasBody)
	b = append(b, "\r\n"...)
	body := resp.Body
	if !hasBody {
		body = nil
	}
	return wb.flush(w, b, body)
}

func appendHeaders(b []byte, h Header, bodyLen int, alwaysLength bool) []byte {
	for _, k := range h.sortedKeys() {
		if k == "Content-Length" || k == "Transfer-Encoding" {
			continue // we always frame with an accurate Content-Length
		}
		for _, v := range h[k] {
			b = append(b, k...)
			b = append(b, ": "...)
			b = append(b, v...)
			b = append(b, "\r\n"...)
		}
	}
	if bodyLen > 0 || alwaysLength {
		b = append(b, "Content-Length: "...)
		b = strconv.AppendInt(b, int64(bodyLen), 10)
		b = append(b, "\r\n"...)
	}
	return b
}
