package httpwire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Dialer opens a connection to a named host. The netsim package supplies
// dialers that route through simulated links; cmd tools supply net.Dial.
type Dialer func(addr string) (net.Conn, error)

// Client issues HTTP requests over persistent connections, one live
// connection per destination address and lane. It mirrors a browser's
// keep-alive behaviour closely enough for RCB's traffic patterns (repeated
// polls to one host, object fetches to a handful of origins).
//
// Exchanges on one connection are strictly serialized (HTTP/1.1 without
// pipelining), so a request the server parks — a hanging-GET long-poll —
// holds its connection for the whole hang and every request queued behind it
// waits it out. Callers that must overtake a parked exchange (RCB's
// fire-and-forget action upstream) use DoLane with a dedicated lane name: a
// lane is an independent persistent connection to the same address, so its
// exchanges interleave freely with the default lane's.
type Client struct {
	Dial Dialer

	// ReadTimeout, when positive, bounds how long Do waits for a response
	// after writing each request. Zero means wait forever — the right
	// default for ordinary transfers over shaped links. Long-poll callers
	// that park requests server-side should prefer the per-call bound of
	// DoTimeout so only the hanging request carries a deadline.
	ReadTimeout time.Duration

	mu    sync.Mutex
	conns map[string]*clientConn // keyed by connKey(addr, lane)
}

type clientConn struct {
	conn net.Conn
	br   *bufio.Reader
	mu   sync.Mutex
}

// NewClient returns a client using the given dialer.
func NewClient(dial Dialer) *Client {
	return &Client{Dial: dial, conns: make(map[string]*clientConn)}
}

// Do sends req to addr and returns the response. The connection is reused
// across calls; on transport error the cached connection is discarded and
// the request retried once on a fresh connection (a request may race a
// server-side keep-alive close).
func (c *Client) Do(addr string, req *Request) (*Response, error) {
	return c.DoTimeout(addr, req, 0)
}

// DoTimeout is Do with a per-call response read deadline — the safety net a
// long-poll client needs so a request the server parked (hanging GET) cannot
// outlive the agreed maximum hang when the server dies mid-park. timeout <= 0
// falls back to Client.ReadTimeout (no deadline when that is zero too). A
// deadline expiry is returned as a net.Error with Timeout() == true and is
// never retried (retrying would double the hang).
func (c *Client) DoTimeout(addr string, req *Request, timeout time.Duration) (*Response, error) {
	return c.DoLane(addr, "", req, timeout)
}

// connKey maps an (addr, lane) pair onto the connection-pool key. The
// default lane keys on the bare address, so lane-unaware callers share its
// connection; '\x00' cannot occur in an address, so named lanes never
// collide with addresses.
func connKey(addr, lane string) string {
	if lane == "" {
		return addr
	}
	return addr + "\x00" + lane
}

// DoLane is DoTimeout on a named connection lane: the client keeps one
// persistent connection per (addr, lane) pair, and exchanges on different
// lanes never queue behind each other on one socket. Do/DoTimeout use the
// default lane (""). RCB's snippet puts its fire-and-forget action POSTs on
// their own lane because the default lane's current exchange may be a poll
// the agent parked for seconds (hanging GET) — an upstream action must ride
// a concurrent second connection, not wait out the hang.
func (c *Client) DoLane(addr, lane string, req *Request, timeout time.Duration) (*Response, error) {
	if timeout <= 0 {
		timeout = c.ReadTimeout
	}
	key := connKey(addr, lane)
	for attempt := 0; ; attempt++ {
		cc, cached, err := c.getConn(addr, key)
		if err != nil {
			return nil, err
		}
		resp, err := cc.roundTrip(req, timeout)
		if err != nil {
			c.dropConn(key, cc)
			var ne net.Error
			timedOut := errors.As(err, &ne) && ne.Timeout()
			if cached && attempt == 0 && !timedOut {
				continue // stale pooled connection; retry once
			}
			return nil, fmt.Errorf("httpwire: %s %s to %s: %w", req.Method, req.Target, addr, err)
		}
		if resp.WantsClose() {
			c.dropConn(key, cc)
		}
		return resp, nil
	}
}

// Get issues a GET for target against addr.
func (c *Client) Get(addr, target string) (*Response, error) {
	return c.Do(addr, NewRequest("GET", target))
}

// Post issues a POST with the given content type and body.
func (c *Client) Post(addr, target, ctype string, body []byte) (*Response, error) {
	req := NewRequest("POST", target)
	req.Header.Set("Content-Type", ctype)
	req.Body = body
	return c.Do(addr, req)
}

// Close closes every pooled connection, across all lanes.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, cc := range c.conns {
		cc.conn.Close()
		delete(c.conns, key)
	}
}

// getConn returns the pooled connection for key, dialing addr when none is
// cached (a lane's connection dials the same address as the default one).
func (c *Client) getConn(addr, key string) (cc *clientConn, cached bool, err error) {
	c.mu.Lock()
	if c.conns == nil {
		c.conns = make(map[string]*clientConn)
	}
	if cc := c.conns[key]; cc != nil {
		c.mu.Unlock()
		return cc, true, nil
	}
	c.mu.Unlock()

	conn, err := c.Dial(addr)
	if err != nil {
		return nil, false, fmt.Errorf("httpwire: dial %s: %w", addr, err)
	}
	cc = &clientConn{conn: conn, br: bufio.NewReaderSize(conn, 8<<10)}
	c.mu.Lock()
	// Another goroutine may have raced a connection in. The pooled one wins:
	// it may already be mid-exchange (roundTrip holds only the per-conn
	// mutex, not c.mu), so closing it here would kill a healthy in-flight
	// request. Our fresh dial is the one nobody is using yet — close it and
	// join the winner.
	if old := c.conns[key]; old != nil {
		c.mu.Unlock()
		conn.Close()
		return old, true, nil
	}
	c.conns[key] = cc
	c.mu.Unlock()
	return cc, false, nil
}

func (c *Client) dropConn(key string, cc *clientConn) {
	c.mu.Lock()
	if c.conns[key] == cc {
		delete(c.conns, key)
	}
	c.mu.Unlock()
	cc.conn.Close()
}

// roundTrip performs one serialized request/response exchange. The per-conn
// mutex keeps concurrent callers from interleaving on the same socket. A
// positive readTimeout arms a read deadline for this exchange only; it is
// cleared afterwards so the pooled connection stays reusable.
func (cc *clientConn) roundTrip(req *Request, readTimeout time.Duration) (*Response, error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if err := WriteRequest(cc.conn, req); err != nil {
		return nil, err
	}
	if readTimeout > 0 {
		if err := cc.conn.SetReadDeadline(time.Now().Add(readTimeout)); err != nil {
			return nil, err
		}
		defer cc.conn.SetReadDeadline(time.Time{})
	}
	return ReadResponse(cc.br)
}
