package httpwire

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFailedLaneExchangeDropsPooledConnection is the half-dead-socket guard
// for the action upstream: when an exchange on a named lane fails (here a
// read timeout against a parked server), the lane's pooled connection must
// be discarded so the next push dials fresh instead of writing into a
// socket whose previous response is still owed.
func TestFailedLaneExchangeDropsPooledConnection(t *testing.T) {
	h := &parkingHandler{}
	addr, _ := startTestServer(t, h)
	var dials atomic.Int32
	c := NewClient(func(a string) (net.Conn, error) {
		dials.Add(1)
		return net.Dial("tcp", a)
	})
	defer c.Close()

	// Pool the lane's connection with a healthy exchange.
	if _, err := c.DoLane(addr, "action", NewRequest("GET", "/prime"), 0); err != nil {
		t.Fatal(err)
	}
	if n := dials.Load(); n != 1 {
		t.Fatalf("priming took %d dials, want 1", n)
	}
	// Fail the next exchange on the same lane: the server parks it and the
	// read deadline trips. Timeouts are never retried, so the error must
	// surface AND the pooled connection must go.
	if _, err := c.DoLane(addr, "action", NewRequest("GET", "/park"), 50*time.Millisecond); err == nil {
		t.Fatal("expected the parked lane exchange to time out")
	}
	c.mu.Lock()
	_, stillPooled := c.conns[connKey(addr, "action")]
	c.mu.Unlock()
	if stillPooled {
		t.Fatal("failed lane exchange left its half-dead connection in the pool")
	}
	// The next push rides a fresh dial and completes normally.
	resp, err := c.DoLane(addr, "action", NewRequest("GET", "/after"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("follow-up push got status %d", resp.StatusCode)
	}
	if n := dials.Load(); n != 2 {
		t.Fatalf("follow-up push reused a dropped connection (%d dials, want 2)", n)
	}
	h.Release(NewResponse(200, "text/plain", nil))
}

// TestDialRaceKeepsInFlightConnection pins the getConn race: two requests
// on the same lane miss the pool simultaneously and both dial. The loser
// must close its OWN fresh socket and join the winner's — the old behavior
// (replace the pooled entry and close the previous one) killed the winner's
// connection while its long-poll exchange was parked on it.
func TestDialRaceKeepsInFlightConnection(t *testing.T) {
	h := &parkingHandler{}
	addr, _ := startTestServer(t, h)

	entered := make(chan struct{}, 2)
	release := make(chan struct{})
	var dials atomic.Int32
	c := NewClient(func(a string) (net.Conn, error) {
		entered <- struct{}{}
		<-release // hold both racing dials until each has committed to dialing
		dials.Add(1)
		return net.Dial("tcp", a)
	})
	defer c.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Do(addr, NewRequest("GET", "/park"))
			errs <- err
		}()
	}
	<-entered
	<-entered
	close(release)

	// The pool winner's request parks server-side; the loser queues behind
	// it on the shared connection. Release twice, once per exchange.
	waitFor(t, "first racing request to park", func() bool { return h.parkedCount() == 1 })
	h.Release(NewResponse(200, "text/plain", []byte("one")))
	waitFor(t, "second racing request to park", func() bool { return h.parkedCount() == 1 })
	h.Release(NewResponse(200, "text/plain", []byte("two")))

	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("racing request failed: %v (dial loser closed the in-flight connection?)", err)
		}
	}
	c.mu.Lock()
	pooled := len(c.conns)
	c.mu.Unlock()
	if pooled != 1 {
		t.Fatalf("pool holds %d connections after the race, want 1", pooled)
	}
}
