// Package httpwire is a from-scratch HTTP/1.1 implementation over net.Conn.
//
// The paper's RCB-Agent does not sit behind a web server: it implements its
// own socket listening and request processing inside the browser extension
// (nsIServerSocket + nsIStreamListener, paper §4.1.1). This package plays
// that role for the Go reproduction: a minimal, dependency-free HTTP layer
// shared by RCB-Agent, the participant client, the synthetic origin servers,
// and the proxy baseline. Only what RCB needs is implemented — GET/POST,
// Content-Length and chunked bodies, keep-alive — and limits are enforced so
// a malformed peer cannot wedge the agent.
package httpwire

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"strings"
)

// Limits protecting the server from malformed or hostile input.
const (
	// MaxHeaderBytes bounds the total size of a request or status line plus
	// all header lines.
	MaxHeaderBytes = 64 << 10
	// MaxBodyBytes bounds any message body this implementation will buffer.
	MaxBodyBytes = 32 << 20
)

// Header holds message headers with case-insensitive keys. Keys are stored
// canonicalized (Content-Type form).
type Header map[string][]string

// CanonicalKey converts a header name to its canonical Http-Header-Case.
func CanonicalKey(k string) string {
	b := []byte(k)
	upper := true
	for i, c := range b {
		switch {
		case upper && c >= 'a' && c <= 'z':
			b[i] = c - 'a' + 'A'
		case !upper && c >= 'A' && c <= 'Z':
			b[i] = c - 'A' + 'a'
		}
		upper = c == '-'
	}
	return string(b)
}

// Get returns the first value for key, or "".
func (h Header) Get(key string) string {
	v := h[CanonicalKey(key)]
	if len(v) == 0 {
		return ""
	}
	return v[0]
}

// Set replaces any existing values for key.
func (h Header) Set(key, value string) {
	h[CanonicalKey(key)] = []string{value}
}

// Add appends a value for key.
func (h Header) Add(key, value string) {
	ck := CanonicalKey(key)
	h[ck] = append(h[ck], value)
}

// Del removes all values for key.
func (h Header) Del(key string) {
	delete(h, CanonicalKey(key))
}

// Clone returns a deep copy of h.
func (h Header) Clone() Header {
	out := make(Header, len(h))
	for k, vs := range h {
		cp := make([]string, len(vs))
		copy(cp, vs)
		out[k] = cp
	}
	return out
}

// sortedKeys returns header keys in deterministic order for serialization.
func (h Header) sortedKeys() []string {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Request is a parsed HTTP request. Body is fully buffered: RCB exchanges
// small polling messages and page-sized documents, never streams.
type Request struct {
	Method string
	Target string // request-URI exactly as on the wire (origin-form or absolute-form)
	Proto  string // "HTTP/1.1" or "HTTP/1.0"
	Header Header
	Body   []byte

	// RemoteAddr is the peer address, filled in by Server.
	RemoteAddr string
}

// NewRequest builds a request with sensible defaults (HTTP/1.1, empty
// header map).
func NewRequest(method, target string) *Request {
	return &Request{Method: method, Target: target, Proto: "HTTP/1.1", Header: Header{}}
}

// WantsClose reports whether the message requests connection close.
func wantsClose(proto string, h Header) bool {
	conn := strings.ToLower(h.Get("Connection"))
	if strings.Contains(conn, "close") {
		return true
	}
	if proto == "HTTP/1.0" && !strings.Contains(conn, "keep-alive") {
		return true
	}
	return false
}

// WantsClose reports whether the client asked for the connection to be
// closed after this request.
func (r *Request) WantsClose() bool { return wantsClose(r.Proto, r.Header) }

// Path returns the path portion of the request target (before any '?').
func (r *Request) Path() string {
	if i := strings.IndexByte(r.Target, '?'); i >= 0 {
		return r.Target[:i]
	}
	return r.Target
}

// Query returns the raw query string (after '?'), or "".
func (r *Request) Query() string {
	if i := strings.IndexByte(r.Target, '?'); i >= 0 {
		return r.Target[i+1:]
	}
	return ""
}

// Response is a parsed or to-be-written HTTP response.
type Response struct {
	StatusCode int
	Proto      string
	Header     Header
	Body       []byte

	// Hijack, when set by a handler, takes over the connection after this
	// response is written: the server invokes it on the connection's own
	// goroutine with the raw conn and the buffered reader (which may hold
	// bytes the peer sent ahead), and stops speaking HTTP on it. When the
	// callback returns the connection is closed. The connection stays
	// registered with the server, so Server.Close severs hijacked
	// connections exactly like parked ones. This is the upgrade mechanism
	// the framed persistent channel rides on.
	Hijack func(conn net.Conn, br *bufio.Reader)
}

// NewResponse builds a response with the given status and body, setting
// Content-Type when ctype is non-empty.
func NewResponse(status int, ctype string, body []byte) *Response {
	resp := &Response{StatusCode: status, Proto: "HTTP/1.1", Header: Header{}, Body: body}
	if ctype != "" {
		resp.Header.Set("Content-Type", ctype)
	}
	return resp
}

// WantsClose reports whether the server signalled connection close.
func (r *Response) WantsClose() bool { return wantsClose(r.Proto, r.Header) }

// StatusText returns the standard reason phrase for code.
func StatusText(code int) string {
	switch code {
	case 101:
		return "Switching Protocols"
	case 200:
		return "OK"
	case 204:
		return "No Content"
	case 301:
		return "Moved Permanently"
	case 302:
		return "Found"
	case 304:
		return "Not Modified"
	case 400:
		return "Bad Request"
	case 401:
		return "Unauthorized"
	case 403:
		return "Forbidden"
	case 404:
		return "Not Found"
	case 405:
		return "Method Not Allowed"
	case 411:
		return "Length Required"
	case 413:
		return "Payload Too Large"
	case 431:
		return "Request Header Fields Too Large"
	case 500:
		return "Internal Server Error"
	case 501:
		return "Not Implemented"
	case 502:
		return "Bad Gateway"
	case 503:
		return "Service Unavailable"
	default:
		return "Status " + fmt.Sprint(code)
	}
}

// ParseForm decodes an application/x-www-form-urlencoded body or query
// string into ordered key-value pairs. Duplicate keys are preserved in
// order, which form co-filling relies on.
func ParseForm(s string) []FormField {
	if s == "" {
		return nil
	}
	out := make([]FormField, 0, strings.Count(s, "&")+1)
	for s != "" {
		var pair string
		pair, s, _ = strings.Cut(s, "&")
		if pair == "" {
			continue
		}
		k, v, _ := strings.Cut(pair, "=")
		out = append(out, FormField{Name: unescapeForm(k), Value: unescapeForm(v)})
	}
	return out
}

// FormField is one form key-value pair.
type FormField struct {
	Name  string
	Value string
}

// EncodeForm encodes fields as application/x-www-form-urlencoded.
func EncodeForm(fields []FormField) string {
	return string(AppendForm(nil, fields))
}

// AppendForm appends the form encoding of fields to dst — the zero-copy
// variant polling clients use to build request bodies in place.
func AppendForm(dst []byte, fields []FormField) []byte {
	for i, f := range fields {
		if i > 0 {
			dst = append(dst, '&')
		}
		dst = appendEscapeForm(dst, f.Name)
		dst = append(dst, '=')
		dst = appendEscapeForm(dst, f.Value)
	}
	return dst
}

func appendEscapeForm(dst []byte, s string) []byte {
	const hex = "0123456789ABCDEF"
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'A' && c <= 'Z', c >= 'a' && c <= 'z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.', c == '~':
			dst = append(dst, c)
		case c == ' ':
			dst = append(dst, '+')
		default:
			dst = append(dst, '%', hex[c>>4], hex[c&0xF])
		}
	}
	return dst
}

func unescapeForm(s string) string {
	if !strings.ContainsAny(s, "%+") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '+':
			b.WriteByte(' ')
		case s[i] == '%' && i+2 < len(s):
			h, ok1 := hexVal(s[i+1])
			l, ok2 := hexVal(s[i+2])
			if ok1 && ok2 {
				b.WriteByte(h<<4 | l)
				i += 2
			} else {
				b.WriteByte('%')
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}
