package httpwire

import (
	"net"
	"strings"
	"testing"
)

func TestHeaderDelAndClone(t *testing.T) {
	h := Header{}
	h.Set("X-One", "1")
	h.Add("X-Two", "a")
	h.Add("X-Two", "b")

	clone := h.Clone()
	clone.Del("x-one")
	clone.Add("X-Two", "c")

	if h.Get("X-One") != "1" {
		t.Error("Del on clone affected original")
	}
	if len(h["X-Two"]) != 2 {
		t.Error("Add on clone affected original slice")
	}
	if clone.Get("X-One") != "" {
		t.Error("Del did not remove key")
	}
	if len(clone["X-Two"]) != 3 {
		t.Error("clone lost values")
	}
}

func TestStatusTextCoverage(t *testing.T) {
	known := map[int]string{
		200: "OK", 204: "No Content", 301: "Moved Permanently",
		302: "Found", 304: "Not Modified", 400: "Bad Request",
		401: "Unauthorized", 403: "Forbidden", 404: "Not Found",
		405: "Method Not Allowed", 411: "Length Required",
		413: "Payload Too Large", 431: "Request Header Fields Too Large",
		500: "Internal Server Error", 501: "Not Implemented",
		502: "Bad Gateway", 503: "Service Unavailable",
	}
	for code, want := range known {
		if got := StatusText(code); got != want {
			t.Errorf("StatusText(%d) = %q, want %q", code, got, want)
		}
	}
	if got := StatusText(799); !strings.Contains(got, "799") {
		t.Errorf("unknown status text = %q", got)
	}
}

func TestPathQueryWithoutQuestionMark(t *testing.T) {
	r := NewRequest("GET", "/plain")
	if r.Path() != "/plain" || r.Query() != "" {
		t.Errorf("path/query = %q %q", r.Path(), r.Query())
	}
}

func TestListenAndServeRealSocket(t *testing.T) {
	srv, l, err := ListenAndServe("127.0.0.1:0", HandlerFunc(func(req *Request) *Response {
		return NewResponse(200, "text/plain", []byte("real tcp"))
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewClient(func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) })
	defer c.Close()
	resp, err := c.Get(l.Addr().String(), "/")
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "real tcp" {
		t.Fatalf("body = %q", resp.Body)
	}
}

func TestClientDialFailure(t *testing.T) {
	c := NewClient(func(addr string) (net.Conn, error) {
		return nil, net.ErrClosed
	})
	defer c.Close()
	if _, err := c.Get("nowhere:1", "/"); err == nil {
		t.Fatal("dial failure must surface")
	}
}

func TestFormUnescapeMalformedPercent(t *testing.T) {
	got := ParseForm("a=%GZ&b=%2")
	if len(got) != 2 {
		t.Fatalf("fields = %v", got)
	}
	if got[0].Value != "%GZ" {
		t.Errorf("malformed escape = %q, want passthrough", got[0].Value)
	}
	if got[1].Value != "%2" {
		t.Errorf("truncated escape = %q, want passthrough", got[1].Value)
	}
}
