package httpwire

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
)

// startTestServer runs a Server over an in-process TCP listener and returns
// its address plus a cleanup function.
func startTestServer(t *testing.T, h Handler) (string, *Server) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Handler: h}
	srv.Start(l)
	t.Cleanup(srv.Close)
	return l.Addr().String(), srv
}

func echoHandler(req *Request) *Response {
	body := fmt.Sprintf("%s %s body=%s", req.Method, req.Target, req.Body)
	return NewResponse(200, "text/plain", []byte(body))
}

func tcpDialer(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }

func TestServerClientBasic(t *testing.T) {
	addr, _ := startTestServer(t, HandlerFunc(echoHandler))
	c := NewClient(tcpDialer)
	defer c.Close()
	resp, err := c.Get(addr, "/hello")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || string(resp.Body) != "GET /hello body=" {
		t.Fatalf("resp = %d %q", resp.StatusCode, resp.Body)
	}
}

func TestServerKeepAliveReuse(t *testing.T) {
	var mu sync.Mutex
	remotes := map[string]int{}
	addr, _ := startTestServer(t, HandlerFunc(func(req *Request) *Response {
		mu.Lock()
		remotes[req.RemoteAddr]++
		mu.Unlock()
		return NewResponse(200, "text/plain", []byte("ok"))
	}))
	c := NewClient(tcpDialer)
	defer c.Close()
	for i := 0; i < 10; i++ {
		if _, err := c.Get(addr, fmt.Sprintf("/r%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(remotes) != 1 {
		t.Fatalf("expected 1 reused connection, saw %d distinct remotes", len(remotes))
	}
}

func TestServerPOSTRoundTrip(t *testing.T) {
	addr, _ := startTestServer(t, HandlerFunc(echoHandler))
	c := NewClient(tcpDialer)
	defer c.Close()
	resp, err := c.Post(addr, "/poll", "application/x-www-form-urlencoded", []byte("tick=9"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(resp.Body), "body=tick=9") {
		t.Fatalf("body = %q", resp.Body)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	addr, _ := startTestServer(t, HandlerFunc(echoHandler))
	const n = 16
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := NewClient(tcpDialer)
			defer c.Close()
			for j := 0; j < 20; j++ {
				target := fmt.Sprintf("/c%d/r%d", i, j)
				resp, err := c.Get(addr, target)
				if err != nil {
					errs <- err
					return
				}
				if !strings.Contains(string(resp.Body), target) {
					errs <- fmt.Errorf("wrong body %q for %s", resp.Body, target)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServerMalformedRequestGets400(t *testing.T) {
	addr, _ := startTestServer(t, HandlerFunc(echoHandler))
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "NOT A REQUEST\r\n\r\n")
	buf := make([]byte, 1024)
	n, _ := conn.Read(buf)
	if !strings.Contains(string(buf[:n]), "400") {
		t.Fatalf("expected 400 response, got %q", buf[:n])
	}
}

func TestServerConnectionCloseHonored(t *testing.T) {
	addr, _ := startTestServer(t, HandlerFunc(echoHandler))
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
	// Read everything: server must close after one response.
	var all []byte
	buf := make([]byte, 4096)
	for {
		n, err := conn.Read(buf)
		all = append(all, buf[:n]...)
		if err != nil {
			break
		}
	}
	if !strings.HasPrefix(string(all), "HTTP/1.1 200") {
		t.Fatalf("response = %q", all)
	}
}

func TestServerCloseUnblocksServe(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Handler: HandlerFunc(echoHandler)}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	srv.Close()
	if err := <-done; err != ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
}

func TestClientRetriesStaleConnection(t *testing.T) {
	// Server closes every connection after one request; a pooled client must
	// still complete back-to-back calls via its one-shot retry.
	addr, _ := startTestServer(t, HandlerFunc(func(req *Request) *Response {
		resp := NewResponse(200, "text/plain", []byte("ok"))
		resp.Header.Set("Connection", "close")
		return resp
	}))
	c := NewClient(tcpDialer)
	defer c.Close()
	for i := 0; i < 5; i++ {
		resp, err := c.Get(addr, "/x")
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("call %d: status %d", i, resp.StatusCode)
		}
	}
}

func BenchmarkServerRoundTrip(b *testing.B) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := &Server{Handler: HandlerFunc(echoHandler)}
	srv.Start(l)
	defer srv.Close()
	c := NewClient(tcpDialer)
	defer c.Close()
	addr := l.Addr().String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Get(addr, "/bench"); err != nil {
			b.Fatal(err)
		}
	}
}
