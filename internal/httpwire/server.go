package httpwire

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
)

// Handler responds to one HTTP request. Implementations must be safe for
// concurrent use: the server invokes the handler from one goroutine per
// connection, exactly as RCB-Agent's asynchronous socket listener processes
// overlapping participant connections (paper §4.1.1).
type Handler interface {
	ServeWire(req *Request) *Response
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(req *Request) *Response

// ServeWire calls f(req).
func (f HandlerFunc) ServeWire(req *Request) *Response { return f(req) }

// Server accepts connections from a net.Listener and dispatches requests to
// a Handler over persistent (keep-alive) connections.
type Server struct {
	Handler Handler

	// Logf, when non-nil, receives per-connection error diagnostics.
	Logf func(format string, args ...any)

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("httpwire: server closed")

// Serve accepts connections on l until Close is called. It blocks.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.listener = l
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.mu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Start runs Serve on its own goroutine and returns immediately.
func (s *Server) Start(l net.Listener) {
	go func() { _ = s.Serve(l) }()
}

// Close stops the listener, closes active connections, and waits for
// connection goroutines to drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	l := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	s.wg.Wait()
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	br := bufio.NewReaderSize(conn, 8<<10)
	for {
		req, err := ReadRequest(br)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.logf("httpwire: read from %s: %v", conn.RemoteAddr(), err)
				// Malformed input gets a 400 before the connection drops.
				if errors.Is(err, ErrMalformed) || errors.Is(err, ErrHeaderTooLarge) {
					_ = WriteResponse(conn, NewResponse(400, "text/plain", []byte("bad request\n")))
				}
			}
			return
		}
		if addr := conn.RemoteAddr(); addr != nil {
			req.RemoteAddr = addr.String()
		}
		resp := s.Handler.ServeWire(req)
		if resp == nil {
			resp = NewResponse(500, "text/plain", []byte("nil response\n"))
		}
		if err := WriteResponse(conn, resp); err != nil {
			s.logf("httpwire: write to %s: %v", conn.RemoteAddr(), err)
			return
		}
		if req.WantsClose() || resp.WantsClose() {
			return
		}
	}
}

// ListenAndServe listens on a real TCP address and serves handler — the
// entry point used by the cmd/ tools that run RCB over actual sockets.
func ListenAndServe(addr string, handler Handler) (*Server, net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &Server{Handler: handler}
	srv.Start(l)
	return srv, l, nil
}
