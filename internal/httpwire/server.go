package httpwire

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
)

// Handler responds to one HTTP request. Implementations must be safe for
// concurrent use: the server invokes the handler from one goroutine per
// connection, exactly as RCB-Agent's asynchronous socket listener processes
// overlapping participant connections (paper §4.1.1).
type Handler interface {
	ServeWire(req *Request) *Response
}

// AsyncHandler is an optional interface a Handler can additionally implement
// to answer requests asynchronously. ServeWireAsync may either call respond
// before returning (the synchronous case) or park the request and complete
// it later from any goroutine — the hanging-GET (Comet) channel RCB's
// long-poll delivery rides on. respond must be called exactly once per
// request; extra calls are ignored. The connection's read loop stays parked
// until respond runs or the server closes, preserving HTTP/1.1 response
// ordering on the persistent connection. When the server is closed with a
// request still parked, the request is abandoned: the connection drops and
// the handler's eventual respond call becomes a no-op.
type AsyncHandler interface {
	Handler
	ServeWireAsync(req *Request, respond func(*Response))
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(req *Request) *Response

// ServeWire calls f(req).
func (f HandlerFunc) ServeWire(req *Request) *Response { return f(req) }

// Server accepts connections from a net.Listener and dispatches requests to
// a Handler over persistent (keep-alive) connections.
type Server struct {
	Handler Handler

	// Logf, when non-nil, receives per-connection error diagnostics.
	Logf func(format string, args ...any)

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	done     chan struct{} // closed by Close; unparks waiting connections
	wg       sync.WaitGroup
}

// doneChan lazily creates the channel Close broadcasts shutdown on, so a
// connection can park on it before Serve or Close has run.
func (s *Server) doneChan() chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done == nil {
		s.done = make(chan struct{})
	}
	return s.done
}

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("httpwire: server closed")

// Serve accepts connections on l until Close is called. It blocks.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.listener = l
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.mu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Start runs Serve on its own goroutine and returns immediately.
func (s *Server) Start(l net.Listener) {
	go func() { _ = s.Serve(l) }()
}

// Close stops the listener, closes active connections, and waits for
// connection goroutines to drain. Requests a handler has parked via
// ServeWireAsync are abandoned: their connections drop immediately rather
// than holding Close hostage until the handler responds.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	if s.done == nil {
		s.done = make(chan struct{})
	}
	close(s.done)
	l := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	s.wg.Wait()
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	br := bufio.NewReaderSize(conn, 8<<10)
	async, _ := s.Handler.(AsyncHandler)
	done := s.doneChan() // fetched once: the channel never changes after creation
	for {
		req, err := ReadRequest(br)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.logf("httpwire: read from %s: %v", conn.RemoteAddr(), err)
				// Malformed input gets a 400 before the connection drops.
				if errors.Is(err, ErrMalformed) || errors.Is(err, ErrHeaderTooLarge) {
					_ = WriteResponse(conn, NewResponse(400, "text/plain", []byte("bad request\n")))
				}
			}
			return
		}
		if addr := conn.RemoteAddr(); addr != nil {
			req.RemoteAddr = addr.String()
		}
		var resp *Response
		if async != nil {
			respCh := make(chan *Response, 1)
			async.ServeWireAsync(req, func(r *Response) {
				select {
				case respCh <- r:
				default: // respond called more than once; ignore extras
				}
			})
			select {
			case resp = <-respCh:
			case <-done:
				// Server closing with this request still parked: abandon
				// it. The handler's eventual respond call is a no-op.
				return
			}
		} else {
			resp = s.Handler.ServeWire(req)
		}
		if resp == nil {
			resp = NewResponse(500, "text/plain", []byte("nil response\n"))
		}
		if err := WriteResponse(conn, resp); err != nil {
			s.logf("httpwire: write to %s: %v", conn.RemoteAddr(), err)
			return
		}
		if resp.Hijack != nil {
			// The handler takes over the connection (frame upgrade). Run the
			// takeover on this goroutine: the deferred cleanup closes the
			// conn when it returns, and the conn stays in s.conns so
			// Server.Close severs a live channel like any other connection.
			resp.Hijack(conn, br)
			return
		}
		if req.WantsClose() || resp.WantsClose() {
			return
		}
	}
}

// ListenAndServe listens on a real TCP address and serves handler — the
// entry point used by the cmd/ tools that run RCB over actual sockets.
func ListenAndServe(addr string, handler Handler) (*Server, net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &Server{Handler: handler}
	srv.Start(l)
	return srv, l, nil
}
