package httpwire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func reader(s string) *bufio.Reader { return bufio.NewReader(strings.NewReader(s)) }

func TestReadRequestGET(t *testing.T) {
	req, err := ReadRequest(reader("GET /index.html?x=1 HTTP/1.1\r\nHost: example.com\r\nAccept: */*\r\n\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "GET" || req.Target != "/index.html?x=1" || req.Proto != "HTTP/1.1" {
		t.Fatalf("request line parsed wrong: %+v", req)
	}
	if req.Header.Get("host") != "example.com" {
		t.Errorf("host = %q", req.Header.Get("host"))
	}
	if req.Path() != "/index.html" || req.Query() != "x=1" {
		t.Errorf("path/query = %q %q", req.Path(), req.Query())
	}
	if len(req.Body) != 0 {
		t.Errorf("unexpected body %q", req.Body)
	}
}

func TestReadRequestPOSTBody(t *testing.T) {
	req, err := ReadRequest(reader("POST /poll HTTP/1.1\r\nContent-Length: 11\r\nContent-Type: application/x-www-form-urlencoded\r\n\r\nhello=world"))
	if err != nil {
		t.Fatal(err)
	}
	if string(req.Body) != "hello=world" {
		t.Errorf("body = %q", req.Body)
	}
}

func TestReadRequestEOFBeforeAnyBytes(t *testing.T) {
	_, err := ReadRequest(reader(""))
	if err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestReadRequestTruncatedBody(t *testing.T) {
	_, err := ReadRequest(reader("POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort"))
	if err == nil {
		t.Fatal("want error for truncated body")
	}
}

func TestReadRequestMalformed(t *testing.T) {
	cases := []string{
		"GARBAGE\r\n\r\n",
		"GET /\r\n\r\n",         // missing proto
		"GET / FTP/1.0\r\n\r\n", // wrong proto
		"GET / HTTP/1.1\r\nBad Header Name: x\r\n\r\n", // space in name
		"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
	}
	for _, c := range cases {
		if _, err := ReadRequest(reader(c)); !errors.Is(err, ErrMalformed) {
			t.Errorf("input %q: err = %v, want ErrMalformed", c, err)
		}
	}
}

func TestHeaderTooLarge(t *testing.T) {
	big := "GET / HTTP/1.1\r\nX-Big: " + strings.Repeat("a", MaxHeaderBytes+10) + "\r\n\r\n"
	if _, err := ReadRequest(reader(big)); !errors.Is(err, ErrHeaderTooLarge) {
		t.Fatalf("err = %v, want ErrHeaderTooLarge", err)
	}
}

func TestBodyTooLarge(t *testing.T) {
	hdr := "POST / HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n"
	if _, err := ReadRequest(reader(hdr)); !errors.Is(err, ErrBodyTooLarge) {
		t.Fatalf("err = %v, want ErrBodyTooLarge", err)
	}
}

func TestReadResponse(t *testing.T) {
	resp, err := ReadResponse(reader("HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nContent-Length: 5\r\n\r\nhello"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || string(resp.Body) != "hello" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestReadResponseNoBodyStatuses(t *testing.T) {
	for _, code := range []string{"204 No Content", "304 Not Modified"} {
		resp, err := ReadResponse(reader("HTTP/1.1 " + code + "\r\n\r\n"))
		if err != nil {
			t.Fatalf("%s: %v", code, err)
		}
		if len(resp.Body) != 0 {
			t.Errorf("%s: unexpected body", code)
		}
	}
}

func TestReadResponseChunked(t *testing.T) {
	raw := "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n" +
		"5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n"
	resp, err := ReadResponse(reader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "hello world" {
		t.Errorf("body = %q", resp.Body)
	}
}

func TestReadResponseChunkedWithExtensionsAndTrailers(t *testing.T) {
	raw := "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n" +
		"5;ext=1\r\nhello\r\n0\r\nX-Trailer: v\r\n\r\n"
	resp, err := ReadResponse(reader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "hello" {
		t.Errorf("body = %q", resp.Body)
	}
}

func TestWriteReadRequestRoundTrip(t *testing.T) {
	req := NewRequest("POST", "/poll?sid=1")
	req.Header.Set("Content-Type", "text/plain")
	req.Header.Add("X-Multi", "a")
	req.Header.Add("X-Multi", "b")
	req.Body = []byte("tick=42&act=click")
	var buf bytes.Buffer
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != req.Method || got.Target != req.Target || string(got.Body) != string(req.Body) {
		t.Fatalf("round trip: %+v", got)
	}
	if vs := got.Header["X-Multi"]; len(vs) != 2 || vs[0] != "a" || vs[1] != "b" {
		t.Errorf("multi header = %v", vs)
	}
}

func TestWriteReadResponseRoundTrip(t *testing.T) {
	resp := NewResponse(200, "application/xml", []byte("<x/>"))
	var buf bytes.Buffer
	if err := WriteResponse(&buf, resp); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponse(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.StatusCode != 200 || string(got.Body) != "<x/>" || got.Header.Get("Content-Type") != "application/xml" {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestResponseAlwaysFramedWithLength(t *testing.T) {
	// A 200 with empty body must still carry Content-Length: 0 so keep-alive
	// clients can find the message boundary.
	var buf bytes.Buffer
	if err := WriteResponse(&buf, NewResponse(200, "", nil)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Content-Length: 0\r\n") {
		t.Fatalf("missing Content-Length: %q", buf.String())
	}
}

func TestRequestResponseRoundTripProperty(t *testing.T) {
	f := func(body []byte, target string) bool {
		if len(body) > 1<<16 {
			body = body[:1<<16]
		}
		// Target must be a single token without spaces or control bytes.
		target = sanitizeTarget(target)
		req := NewRequest("POST", target)
		req.Body = body
		var buf bytes.Buffer
		if err := WriteRequest(&buf, req); err != nil {
			return false
		}
		got, err := ReadRequest(bufio.NewReader(&buf))
		if err != nil {
			return false
		}
		return got.Target == target && bytes.Equal(got.Body, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func sanitizeTarget(s string) string {
	var b strings.Builder
	b.WriteByte('/')
	for _, c := range []byte(s) {
		if c > ' ' && c < 127 {
			b.WriteByte(c)
		}
	}
	return b.String()
}

func TestCanonicalKey(t *testing.T) {
	cases := map[string]string{
		"content-type":   "Content-Type",
		"CONTENT-LENGTH": "Content-Length",
		"x-rcb-hmac":     "X-Rcb-Hmac",
		"Host":           "Host",
	}
	for in, want := range cases {
		if got := CanonicalKey(in); got != want {
			t.Errorf("CanonicalKey(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWantsClose(t *testing.T) {
	r := NewRequest("GET", "/")
	if r.WantsClose() {
		t.Error("HTTP/1.1 default must be keep-alive")
	}
	r.Header.Set("Connection", "close")
	if !r.WantsClose() {
		t.Error("Connection: close ignored")
	}
	old := NewRequest("GET", "/")
	old.Proto = "HTTP/1.0"
	if !old.WantsClose() {
		t.Error("HTTP/1.0 default must be close")
	}
	old.Header.Set("Connection", "keep-alive")
	if old.WantsClose() {
		t.Error("HTTP/1.0 keep-alive ignored")
	}
}

func TestFormEncodingRoundTrip(t *testing.T) {
	fields := []FormField{
		{"q", "macbook air"},
		{"price", "<=1999&up"},
		{"q", "dup key"},
		{"empty", ""},
	}
	enc := EncodeForm(fields)
	got := ParseForm(enc)
	if len(got) != len(fields) {
		t.Fatalf("lost fields: %v", got)
	}
	for i := range fields {
		if got[i] != fields[i] {
			t.Errorf("field %d = %+v, want %+v", i, got[i], fields[i])
		}
	}
}

func TestFormRoundTripProperty(t *testing.T) {
	f := func(names, values []string) bool {
		n := len(names)
		if len(values) < n {
			n = len(values)
		}
		if n > 20 {
			n = 20
		}
		var fields []FormField
		for i := 0; i < n; i++ {
			if names[i] == "" {
				continue // empty names are not representable
			}
			fields = append(fields, FormField{names[i], values[i]})
		}
		got := ParseForm(EncodeForm(fields))
		if len(got) != len(fields) {
			return false
		}
		for i := range fields {
			if got[i] != fields[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
