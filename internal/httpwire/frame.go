package httpwire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"time"
)

// This file implements the framed persistent-channel layer: after an HTTP
// upgrade handshake (a normal request/response exchange), the connection
// stops speaking HTTP and switches to length-prefixed binary frames
// multiplexed in both directions on the one socket. The frame codec knows
// nothing about RCB — frame types are opaque bytes assigned by the caller —
// it only guarantees framing: hard errors on truncated or oversized input,
// and a byte-exact decode→encode round trip.
//
// Wire format, fixed 6-byte header then payload:
//
//	[type:1][flags:1][length:4 big-endian][payload:length]

// FrameHeaderLen is the fixed size of the frame header.
const FrameHeaderLen = 6

// MaxFramePayload bounds any frame payload this implementation will buffer,
// mirroring MaxBodyBytes on the HTTP side: a malformed or hostile peer
// cannot make the reader allocate unboundedly.
const MaxFramePayload = MaxBodyBytes

// Errors reported by the frame codec.
var (
	ErrFrameTooLarge  = errors.New("httpwire: frame payload exceeds limit")
	ErrFrameTruncated = errors.New("httpwire: truncated frame")
)

// Frame is one channel frame. Type and Flags are opaque to this layer.
type Frame struct {
	Type    byte
	Flags   byte
	Payload []byte
}

// AppendFrame appends the wire encoding of f to dst.
func AppendFrame(dst []byte, f Frame) []byte {
	dst = append(dst, f.Type, f.Flags)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.Payload)))
	return append(dst, f.Payload...)
}

// DecodeFrame parses one frame from the front of b, returning the frame and
// the number of bytes consumed. The payload aliases b — callers that retain
// it across reuse of b must copy. Truncated input (fewer bytes than the
// header announces) is ErrFrameTruncated; a length beyond MaxFramePayload is
// ErrFrameTooLarge.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < FrameHeaderLen {
		return Frame{}, 0, ErrFrameTruncated
	}
	n := binary.BigEndian.Uint32(b[2:FrameHeaderLen])
	if n > MaxFramePayload {
		return Frame{}, 0, ErrFrameTooLarge
	}
	end := FrameHeaderLen + int(n)
	if len(b) < end {
		return Frame{}, 0, ErrFrameTruncated
	}
	f := Frame{Type: b[0], Flags: b[1]}
	if n > 0 {
		f.Payload = b[FrameHeaderLen:end]
	}
	return f, end, nil
}

// ReadFrame reads one frame from r. A clean EOF before any header byte is
// io.EOF (peer closed between frames); EOF mid-frame is ErrFrameTruncated.
func ReadFrame(r *bufio.Reader) (Frame, error) {
	var hdr [FrameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Frame{}, ErrFrameTruncated
		}
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[2:])
	if n > MaxFramePayload {
		return Frame{}, ErrFrameTooLarge
	}
	f := Frame{Type: hdr[0], Flags: hdr[1]}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, ErrFrameTruncated
		}
	}
	return f, nil
}

// WriteFrame writes one frame to w. Header and payload are submitted
// together through the pooled writev path, so a shared payload (the agent's
// prepared content bytes) travels to the socket without an intermediate
// copy — the same zero-copy discipline as WriteResponse.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxFramePayload {
		return ErrFrameTooLarge
	}
	wb := wireBufPool.Get().(*wireBuf)
	b := wb.hdr[:0]
	b = append(b, f.Type, f.Flags)
	b = binary.BigEndian.AppendUint32(b, uint32(len(f.Payload)))
	return wb.flush(w, b, f.Payload)
}

// ChannelConn owns a connection that has completed the upgrade handshake
// and speaks frames. One goroutine may read (ReadFrame) while any number of
// goroutines write (WriteFrame is serialized by an internal mutex) — the
// full-duplex shape RCB's persistent channel needs: downstream content
// frames and upstream action frames interleave freely on the one socket.
type ChannelConn struct {
	conn net.Conn
	br   *bufio.Reader
	wmu  sync.Mutex

	closeOnce sync.Once
	closeErr  error
}

// NewChannelConn wraps an upgraded connection. br must be the reader the
// handshake was parsed through (it may hold buffered frame bytes that
// arrived with the final handshake message); nil means no lookahead exists
// and a fresh reader is created.
func NewChannelConn(conn net.Conn, br *bufio.Reader) *ChannelConn {
	if br == nil {
		br = bufio.NewReaderSize(conn, 8<<10)
	}
	return &ChannelConn{conn: conn, br: br}
}

// ReadFrame reads the next frame. Only one goroutine may call ReadFrame.
func (c *ChannelConn) ReadFrame() (Frame, error) {
	return ReadFrame(c.br)
}

// WriteFrame writes one frame, serialized against concurrent writers so
// frames from different goroutines never interleave on the socket.
func (c *ChannelConn) WriteFrame(f Frame) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return WriteFrame(c.conn, f)
}

// SetReadDeadline bounds the next ReadFrame — the dead-peer detector for a
// channel that should be receiving pings.
func (c *ChannelConn) SetReadDeadline(t time.Time) error {
	return c.conn.SetReadDeadline(t)
}

// Close closes the underlying connection. Safe to call from any goroutine
// and more than once; subsequent reads and writes fail.
func (c *ChannelConn) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.conn.Close() })
	return c.closeErr
}

// RemoteAddr returns the peer address.
func (c *ChannelConn) RemoteAddr() net.Addr { return c.conn.RemoteAddr() }

// Upgrade performs a channel upgrade handshake against addr: it dials a
// dedicated connection (never the pooled request lanes — the connection is
// about to leave HTTP), sends req, and reads the response. On a 101 the
// connection switches to frames and the returned ChannelConn owns it. Any
// other status is a refusal: the connection is closed and the response
// returned so the caller can read the refusal's close-reason headers.
// timeout, when positive, bounds the handshake round trip only; the
// established channel carries no deadline.
func (c *Client) Upgrade(addr string, req *Request, timeout time.Duration) (*ChannelConn, *Response, error) {
	conn, err := c.Dial(addr)
	if err != nil {
		return nil, nil, err
	}
	if timeout > 0 {
		if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			conn.Close()
			return nil, nil, err
		}
	}
	if err := WriteRequest(conn, req); err != nil {
		conn.Close()
		return nil, nil, err
	}
	br := bufio.NewReaderSize(conn, 8<<10)
	resp, err := ReadResponse(br)
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	if resp.StatusCode != 101 {
		conn.Close()
		return nil, resp, nil
	}
	if timeout > 0 {
		if err := conn.SetReadDeadline(time.Time{}); err != nil {
			conn.Close()
			return nil, nil, err
		}
	}
	return NewChannelConn(conn, br), resp, nil
}
