package jsescape

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

func TestEscapeASCIIUnreserved(t *testing.T) {
	in := "abcXYZ019@*_+-./"
	if got := Escape(in); got != in {
		t.Fatalf("Escape(%q) = %q, want unchanged", in, got)
	}
}

func TestEscapeKnownVectors(t *testing.T) {
	// Vectors cross-checked against a JavaScript engine's escape().
	cases := []struct{ in, want string }{
		{"", ""},
		{" ", "%20"},
		{"a b", "a%20b"},
		{"<html>", "%3Chtml%3E"},
		{"100%", "100%25"},
		{"a=1&b=2", "a%3D1%26b%3D2"},
		{"\n\t", "%0A%09"},
		{"é", "%E9"},
		{"ÿ", "%FF"},
		{"€", "%u20AC"},
		{"中文", "%u4E2D%u6587"},
		{"日本語", "%u65E5%u672C%u8A9E"},
		{"\x00", "%00"},
		{"~", "%7E"},
		{"'", "%27"},
		{"\"", "%22"},
	}
	for _, c := range cases {
		if got := Escape(c.in); got != c.want {
			t.Errorf("Escape(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestEscapeSupplementaryPlane(t *testing.T) {
	// U+1D11E MUSICAL SYMBOL G CLEF → surrogate pair D834 DD1E.
	if got := Escape("\U0001D11E"); got != "%uD834%uDD1E" {
		t.Fatalf("Escape clef = %q, want %%uD834%%uDD1E", got)
	}
	if got := Unescape("%uD834%uDD1E"); got != "\U0001D11E" {
		t.Fatalf("Unescape clef = %q", got)
	}
}

func TestUnescapeKnownVectors(t *testing.T) {
	cases := []struct{ in, want string }{
		{"%20", " "},
		{"a%20b", "a b"},
		{"%3Chtml%3E", "<html>"},
		{"%E9", "é"},
		{"%u20AC", "€"},
		{"%u4E2D%u6587", "中文"},
		{"plain", "plain"},
		{"", ""},
	}
	for _, c := range cases {
		if got := Unescape(c.in); got != c.want {
			t.Errorf("Unescape(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestUnescapeMalformedPassthrough(t *testing.T) {
	// JS unescape copies through anything that is not a valid escape.
	cases := []struct{ in, want string }{
		{"%", "%"},
		{"%2", "%2"},
		{"%G1", "%G1"},
		{"%u12", "%u12"},
		{"%u12G4", "%u12G4"},
		{"50%", "50%"},
		{"%%41", "%A"},
		{"%u", "%u"},
	}
	for _, c := range cases {
		if got := Unescape(c.in); got != c.want {
			t.Errorf("Unescape(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestUnescapeLoneSurrogates(t *testing.T) {
	// Lone surrogates cannot be represented in a Go string; they decode to
	// the replacement character rather than corrupting the output.
	if got := Unescape("%uD834"); got != "�" {
		t.Errorf("lone high surrogate = %q", got)
	}
	if got := Unescape("%uDD1E"); got != "�" {
		t.Errorf("lone low surrogate = %q", got)
	}
	if got := Unescape("%uD834x"); got != "�x" {
		t.Errorf("high surrogate then ascii = %q", got)
	}
	if got := Unescape("%uD834%20"); got != "� " {
		t.Errorf("high surrogate then escape = %q", got)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		if !utf8.ValidString(s) {
			return true // Escape is defined over valid strings only
		}
		return Unescape(Escape(s)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEscapeOutputIsXMLSafeProperty(t *testing.T) {
	// The whole point of escape() in RCB: payloads must not contain XML
	// metacharacters that could break the CDATA container.
	f := func(s string) bool {
		if !utf8.ValidString(s) {
			return true
		}
		out := Escape(s)
		return !strings.ContainsAny(out, "<>&\"']]")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEscapeHTMLDocument(t *testing.T) {
	doc := `<body onclick="go()"><p class="x">5 > 4 &amp; 3 < 4</p></body>`
	enc := Escape(doc)
	if strings.ContainsAny(enc, "<>&\"") {
		t.Fatalf("escaped doc still contains XML metacharacters: %q", enc)
	}
	if Unescape(enc) != doc {
		t.Fatalf("round trip failed")
	}
}

func BenchmarkEscapeHTML(b *testing.B) {
	doc := strings.Repeat(`<div class="row" onclick="pick(1)">item &amp; more</div>`, 200)
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Escape(doc)
	}
}

func BenchmarkUnescapeHTML(b *testing.B) {
	doc := Escape(strings.Repeat(`<div class="row" onclick="pick(1)">item &amp; more</div>`, 200))
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Unescape(doc)
	}
}
