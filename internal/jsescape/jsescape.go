// Package jsescape implements the classic JavaScript escape and unescape
// functions (ECMA-262 B.2.1 / B.2.2).
//
// RCB-Agent encodes every CDATA payload of its XML response content with
// JavaScript's escape() so that arbitrary page bytes survive transport inside
// an application/xml message (paper §4.1.2). Ajax-Snippet decodes with
// unescape() before applying content to the participant document. This
// package reproduces those two functions byte-for-byte so the Go host agent
// and the Go participant snippet speak the same wire encoding a real
// JavaScript engine would.
package jsescape

import "strings"

// unreserved reports whether escape() leaves c unmodified. ECMA-262 B.2.1
// keeps ASCII alphanumerics and the characters @ * _ + - . / as-is.
func unreserved(c rune) bool {
	switch {
	case c >= 'A' && c <= 'Z':
		return true
	case c >= 'a' && c <= 'z':
		return true
	case c >= '0' && c <= '9':
		return true
	}
	switch c {
	case '@', '*', '_', '+', '-', '.', '/':
		return true
	}
	return false
}

const upperhex = "0123456789ABCDEF"

// Escape returns the JavaScript escape() encoding of s. Code points below
// U+0100 become %XX; all others become %uXXXX. Input is treated as a sequence
// of UTF-16 code units, exactly as a JavaScript engine would: code points
// outside the BMP are encoded as surrogate pairs (%uD8xx%uDCxx).
func Escape(s string) string {
	return string(AppendEscape(make([]byte, 0, len(s)+len(s)/4), s))
}

// AppendEscape appends the escape() encoding of s to dst and returns the
// extended slice — the allocation-free form the agent's message assembly
// uses to encode payloads directly into an outgoing buffer.
func AppendEscape(dst []byte, s string) []byte {
	for _, r := range s {
		switch {
		case unreserved(r):
			dst = appendRune(dst, r)
		case r < 0x100:
			dst = append(dst, '%', upperhex[r>>4], upperhex[r&0xF])
		case r <= 0xFFFF:
			dst = appendU16(dst, uint16(r))
		default:
			// Encode as a UTF-16 surrogate pair, mirroring JS semantics.
			v := uint32(r) - 0x10000
			dst = appendU16(dst, uint16(0xD800+(v>>10)))
			dst = appendU16(dst, uint16(0xDC00+(v&0x3FF)))
		}
	}
	return dst
}

// appendRune appends the UTF-8 encoding of an unreserved rune. Unreserved
// code points are all ASCII, so this is a single byte in practice.
func appendRune(dst []byte, r rune) []byte {
	if r < 0x80 {
		return append(dst, byte(r))
	}
	return append(dst, string(r)...)
}

func appendU16(dst []byte, u uint16) []byte {
	return append(dst, '%', 'u',
		upperhex[u>>12], upperhex[(u>>8)&0xF], upperhex[(u>>4)&0xF], upperhex[u&0xF])
}

// Unescape reverses Escape, implementing JavaScript unescape() (ECMA-262
// B.2.2). Sequences that do not form a valid %XX or %uXXXX escape are copied
// through literally, as JS does; there is no error case. Surrogate pairs
// produced by Escape are recombined into their original code points; unpaired
// surrogates decode to U+FFFD (Go strings cannot carry lone surrogates).
func Unescape(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	i := 0
	var pendingHigh rune // buffered high surrogate awaiting its low half
	flushPending := func() {
		if pendingHigh != 0 {
			b.WriteRune('�')
			pendingHigh = 0
		}
	}
	writeUnit := func(u rune) {
		if u >= 0xD800 && u <= 0xDBFF { // high surrogate
			flushPending()
			pendingHigh = u
			return
		}
		if u >= 0xDC00 && u <= 0xDFFF { // low surrogate
			if pendingHigh != 0 {
				r := 0x10000 + (pendingHigh-0xD800)<<10 + (u - 0xDC00)
				pendingHigh = 0
				b.WriteRune(r)
				return
			}
			b.WriteRune('�')
			return
		}
		flushPending()
		b.WriteRune(u)
	}
	for i < len(s) {
		c := s[i]
		if c != '%' {
			// Plain byte: decode the next rune to keep UTF-8 intact.
			flushPendingRune(&b, &pendingHigh)
			r, size := decodeRune(s[i:])
			b.WriteRune(r)
			i += size
			continue
		}
		if i+5 < len(s) && (s[i+1] == 'u' || s[i+1] == 'U') {
			if v, ok := hex4(s[i+2 : i+6]); ok {
				writeUnit(rune(v))
				i += 6
				continue
			}
		}
		if i+2 < len(s) {
			if v, ok := hex2(s[i+1 : i+3]); ok {
				writeUnit(rune(v))
				i += 3
				continue
			}
		}
		flushPendingRune(&b, &pendingHigh)
		b.WriteByte('%')
		i++
	}
	flushPending()
	return b.String()
}

func flushPendingRune(b *strings.Builder, pending *rune) {
	if *pending != 0 {
		b.WriteRune('�')
		*pending = 0
	}
}

// decodeRune decodes the first rune of s without importing unicode/utf8's
// full surface; invalid bytes yield the byte value itself (latin-1 fallback)
// so Unescape(Escape(x)) == x holds for arbitrary byte content that Escape
// produced from valid strings.
func decodeRune(s string) (rune, int) {
	if len(s) == 0 {
		return 0, 0
	}
	c := s[0]
	if c < 0x80 {
		return rune(c), 1
	}
	// Multi-byte UTF-8.
	var n int
	var r rune
	switch {
	case c&0xE0 == 0xC0:
		n, r = 2, rune(c&0x1F)
	case c&0xF0 == 0xE0:
		n, r = 3, rune(c&0x0F)
	case c&0xF8 == 0xF0:
		n, r = 4, rune(c&0x07)
	default:
		return rune(c), 1
	}
	if len(s) < n {
		return rune(c), 1
	}
	for i := 1; i < n; i++ {
		if s[i]&0xC0 != 0x80 {
			return rune(c), 1
		}
		r = r<<6 | rune(s[i]&0x3F)
	}
	return r, n
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

func hex2(s string) (uint16, bool) {
	h, ok1 := hexVal(s[0])
	l, ok2 := hexVal(s[1])
	if !ok1 || !ok2 {
		return 0, false
	}
	return uint16(h)<<4 | uint16(l), true
}

func hex4(s string) (uint16, bool) {
	var v uint16
	for i := 0; i < 4; i++ {
		d, ok := hexVal(s[i])
		if !ok {
			return 0, false
		}
		v = v<<4 | uint16(d)
	}
	return v, true
}
