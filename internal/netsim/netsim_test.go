package netsim

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestConnPairBasicExchange(t *testing.T) {
	client, server := NewConnPair(Instant, "c", "s")
	defer client.Close()
	defer server.Close()
	go func() {
		client.Write([]byte("ping"))
	}()
	buf := make([]byte, 16)
	n, err := server.Read(buf)
	if err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("read %q err %v", buf[:n], err)
	}
	server.Write([]byte("pong"))
	n, err = client.Read(buf)
	if err != nil || string(buf[:n]) != "pong" {
		t.Fatalf("read %q err %v", buf[:n], err)
	}
}

func TestConnAddrs(t *testing.T) {
	client, server := NewConnPair(Instant, "browser.lan", "agent.lan:3000")
	defer client.Close()
	defer server.Close()
	if client.RemoteAddr().String() != "agent.lan:3000" {
		t.Errorf("client remote = %s", client.RemoteAddr())
	}
	if server.RemoteAddr().String() != "browser.lan" {
		t.Errorf("server remote = %s", server.RemoteAddr())
	}
	if client.LocalAddr().Network() != "sim" {
		t.Errorf("network = %s", client.LocalAddr().Network())
	}
}

func TestConnCloseGivesEOF(t *testing.T) {
	client, server := NewConnPair(Instant, "c", "s")
	client.Write([]byte("last"))
	client.Close()
	buf := make([]byte, 16)
	n, err := server.Read(buf)
	if err != nil || string(buf[:n]) != "last" {
		t.Fatalf("pre-close data lost: %q %v", buf[:n], err)
	}
	if _, err := server.Read(buf); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
	if _, err := server.Write([]byte("x")); err == nil {
		t.Fatal("write to closed peer should fail")
	}
}

func TestConnCloseUnblocksReader(t *testing.T) {
	client, server := NewConnPair(Instant, "c", "s")
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := server.Read(buf)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	client.Close()
	select {
	case err := <-done:
		if err != io.EOF {
			t.Fatalf("err = %v, want EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader not unblocked by close")
	}
}

func TestReadDeadline(t *testing.T) {
	client, server := NewConnPair(Instant, "c", "s")
	defer client.Close()
	defer server.Close()
	server.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	buf := make([]byte, 1)
	_, err := server.Read(buf)
	nerr, ok := err.(net.Error)
	if !ok || !nerr.Timeout() {
		t.Fatalf("err = %v, want timeout", err)
	}
}

func TestLatencyShaping(t *testing.T) {
	link := Link{Latency: 30 * time.Millisecond}
	client, server := NewConnPair(link, "c", "s")
	defer client.Close()
	defer server.Close()
	start := time.Now()
	client.Write([]byte("delayed"))
	buf := make([]byte, 16)
	if _, err := server.Read(buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("one-way delivery took %v, want >= ~30ms", elapsed)
	}
}

func TestBandwidthShaping(t *testing.T) {
	// 1 MB/s: 100 KB should take ~100 ms.
	link := Link{UpBps: 1e6}
	client, server := NewConnPair(link, "c", "s")
	defer client.Close()
	defer server.Close()
	payload := bytes.Repeat([]byte("x"), 100_000)
	start := time.Now()
	go client.Write(payload)
	got := 0
	buf := make([]byte, 32<<10)
	for got < len(payload) {
		n, err := server.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		got += n
	}
	elapsed := time.Since(start)
	if elapsed < 80*time.Millisecond || elapsed > 400*time.Millisecond {
		t.Errorf("100KB at 1MB/s took %v, want ~100ms", elapsed)
	}
}

func TestScaledLink(t *testing.T) {
	l := Link{Latency: 100 * time.Millisecond, UpBps: 1000, DownBps: 2000}
	s := l.Scaled(10)
	if s.Latency != 10*time.Millisecond || s.UpBps != 10000 || s.DownBps != 20000 {
		t.Errorf("scaled = %+v", s)
	}
	unlimited := Link{Latency: time.Second}
	if got := unlimited.Scaled(4); got.UpBps != 0 {
		t.Errorf("unlimited bandwidth must stay unlimited, got %v", got.UpBps)
	}
}

func TestNetworkListenDial(t *testing.T) {
	nw := NewNetwork()
	l, err := nw.Listen("origin.example:80")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		io.Copy(conn, conn) // echo
	}()
	conn, err := nw.Dial("browser.lan", "origin.example:80")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("hi"))
	buf := make([]byte, 4)
	n, err := conn.Read(buf)
	if err != nil || string(buf[:n]) != "hi" {
		t.Fatalf("echo failed: %q %v", buf[:n], err)
	}
}

func TestNetworkDialUnknownHost(t *testing.T) {
	nw := NewNetwork()
	if _, err := nw.Dial("a", "nowhere:1"); err == nil {
		t.Fatal("dial to unregistered address must fail")
	}
}

func TestNetworkDoubleListen(t *testing.T) {
	nw := NewNetwork()
	l, _ := nw.Listen("h:1")
	defer l.Close()
	if _, err := nw.Listen("h:1"); err == nil {
		t.Fatal("double listen must fail")
	}
}

func TestNetworkListenerCloseRefusesDials(t *testing.T) {
	nw := NewNetwork()
	l, _ := nw.Listen("h:1")
	l.Close()
	if _, err := nw.Dial("a", "h:1"); err == nil {
		t.Fatal("dial after close must fail")
	}
	// Address is free again.
	l2, err := nw.Listen("h:1")
	if err != nil {
		t.Fatalf("relisten failed: %v", err)
	}
	l2.Close()
}

func TestNetworkLinkPolicy(t *testing.T) {
	nw := NewNetwork()
	nw.SetLinkPolicy(func(from, to string) Link {
		if from == "far.away" {
			return Link{Latency: 25 * time.Millisecond}
		}
		return Instant
	})
	l, _ := nw.Listen("srv:1")
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go io.Copy(conn, conn)
		}
	}()

	measure := func(from string) time.Duration {
		conn, err := nw.Dial(from, "srv:1")
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		start := time.Now()
		conn.Write([]byte("x"))
		buf := make([]byte, 1)
		conn.Read(buf)
		return time.Since(start)
	}
	near := measure("near.by")
	far := measure("far.away")
	if far < 40*time.Millisecond {
		t.Errorf("far RTT = %v, want >= 50ms", far)
	}
	if near > far {
		t.Errorf("near (%v) slower than far (%v)", near, far)
	}
}

func TestCountingConn(t *testing.T) {
	client, server := NewConnPair(Instant, "c", "s")
	defer server.Close()
	cc := NewCountingConn(client)
	defer cc.Close()
	go func() {
		buf := make([]byte, 16)
		n, _ := server.Read(buf)
		server.Write(buf[:n])
	}()
	cc.Write([]byte("12345"))
	buf := make([]byte, 16)
	cc.Read(buf)
	in, out := cc.Totals()
	if in != 5 || out != 5 {
		t.Fatalf("totals = %d/%d, want 5/5", in, out)
	}
}

func TestConcurrentConnUse(t *testing.T) {
	// Many writers and one reader must not race or lose data.
	client, server := NewConnPair(Instant, "c", "s")
	defer client.Close()
	defer server.Close()
	const writers, per = 8, 100
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				client.Write([]byte("m"))
			}
		}()
	}
	done := make(chan int)
	go func() {
		total := 0
		buf := make([]byte, 256)
		for total < writers*per {
			n, err := server.Read(buf)
			if err != nil {
				break
			}
			total += n
		}
		done <- total
	}()
	wg.Wait()
	select {
	case total := <-done:
		if total != writers*per {
			t.Fatalf("read %d bytes, want %d", total, writers*per)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader stalled")
	}
}

func TestLinkModelRequestResponse(t *testing.T) {
	m := LinkModel{Link: Link{Latency: 10 * time.Millisecond, UpBps: 1000, DownBps: 2000}}
	// RTT 20ms + 100/1000 s up + 200/2000 s down = 20ms + 100ms + 100ms.
	got := m.RequestResponse(Txn{Up: 100, Down: 200})
	want := 220 * time.Millisecond
	if got != want {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestLinkModelUnlimitedBandwidth(t *testing.T) {
	m := LinkModel{Link: Link{Latency: 5 * time.Millisecond}}
	if got := m.RequestResponse(Txn{Up: 1 << 20, Down: 1 << 20}); got != 10*time.Millisecond {
		t.Fatalf("unshaped link must cost only RTT, got %v", got)
	}
}

func TestLinkModelFetchParallelRounds(t *testing.T) {
	m := LinkModel{Link: Link{Latency: 10 * time.Millisecond}}
	txns := make([]Txn, 10)
	// 10 objects, parallelism 4 → ceil(10/4)=3 rounds of 20ms RTT.
	if got := m.FetchParallel(txns, 4); got != 60*time.Millisecond {
		t.Fatalf("got %v, want 60ms", got)
	}
	// Sequential: 10 × RTT.
	if got := m.FetchParallel(txns, 1); got != 200*time.Millisecond {
		t.Fatalf("got %v, want 200ms", got)
	}
}

func TestLinkModelMonotonicInBytesProperty(t *testing.T) {
	m := LinkModel{Link: WAN}
	f := func(a, b uint16) bool {
		small := m.RequestResponse(Txn{Up: 100, Down: int(a)})
		large := m.RequestResponse(Txn{Up: 100, Down: int(a) + int(b)})
		return large >= small
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinkModelLANFasterThanWANProperty(t *testing.T) {
	lan := LinkModel{Link: LAN}
	wan := LinkModel{Link: WAN}
	f := func(up, down uint16) bool {
		t := Txn{Up: int(up), Down: int(down)}
		return lan.RequestResponse(t) <= wan.RequestResponse(t)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinkModelPageLoadComposition(t *testing.T) {
	m := LinkModel{Link: Link{Latency: 10 * time.Millisecond}}
	doc := Txn{Up: 100, Down: 1000}
	objs := []Txn{{50, 500}, {50, 500}}
	got := m.PageLoad(doc, objs, 2)
	want := m.ConnSetup() + m.RequestResponse(doc) + m.FetchParallel(objs, 2)
	if got != want {
		t.Fatalf("got %v, want %v", got, want)
	}
}
