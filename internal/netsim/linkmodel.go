package netsim

import (
	"math"
	"time"
)

// Txn is one HTTP request/response exchange measured in wire bytes.
type Txn struct {
	Up   int // request bytes, client → server
	Down int // response bytes, server → client
}

// LinkModel computes transfer times analytically for a link profile. The
// experiment harness runs the real RCB stack over instant pipes while
// counting exact wire bytes, then replays the recorded transactions through
// this model to obtain deterministic M1–M4 values for the paper's LAN and
// WAN environments (see DESIGN.md §2).
//
// The model: a request/response costs one round trip of propagation plus
// serialization of each direction at its bandwidth. A fresh connection adds
// one RTT of TCP handshake. Parallel fetches share the link's bandwidth but
// overlap their round trips up to the configured parallelism.
type LinkModel struct {
	Link Link
}

// RTT returns the round-trip propagation delay of the link.
func (m LinkModel) RTT() time.Duration { return 2 * m.Link.Latency }

// serialize returns the time to push n bytes at bps (zero bps = instant).
func serialize(n int, bps float64) time.Duration {
	if bps <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / bps * float64(time.Second))
}

// ConnSetup returns the TCP connection establishment cost (one RTT).
func (m LinkModel) ConnSetup() time.Duration { return m.RTT() }

// RequestResponse returns the duration of a single exchange on an
// established connection.
func (m LinkModel) RequestResponse(t Txn) time.Duration {
	return m.RTT() + serialize(t.Up, m.Link.UpBps) + serialize(t.Down, m.Link.DownBps)
}

// FetchSequential returns the time to perform txns back-to-back on one
// established connection (HTTP keep-alive, no pipelining) — the pattern of
// Ajax-Snippet's poll loop.
func (m LinkModel) FetchSequential(txns []Txn) time.Duration {
	var total time.Duration
	for _, t := range txns {
		total += m.RequestResponse(t)
	}
	return total
}

// FetchParallel returns the time to fetch txns with up to parallelism
// concurrent persistent connections sharing the link bandwidth — the
// pattern of a browser downloading supplementary objects. Round-trip
// latencies overlap across the parallel connections while serialization
// shares the link:
//
//	time = RTT · ⌈N/P⌉ + ΣUp/upBps + ΣDown/downBps
//
// A conservative model, but it preserves exactly what the paper's M3/M4
// comparison depends on: object count, total bytes, and the latency and
// bandwidth of the chosen path.
func (m LinkModel) FetchParallel(txns []Txn, parallelism int) time.Duration {
	if len(txns) == 0 {
		return 0
	}
	if parallelism < 1 {
		parallelism = 1
	}
	rounds := int(math.Ceil(float64(len(txns)) / float64(parallelism)))
	var up, down int
	for _, t := range txns {
		up += t.Up
		down += t.Down
	}
	return time.Duration(rounds)*m.RTT() +
		serialize(up, m.Link.UpBps) +
		serialize(down, m.Link.DownBps)
}

// PageLoad returns the time for a full page load: connection setup, the
// document fetch, then the supplementary objects fetched with the given
// parallelism over already-warm connections (a simplification: connection
// setup for object fetches is folded into the document RTT budget).
func (m LinkModel) PageLoad(document Txn, objects []Txn, parallelism int) time.Duration {
	return m.ConnSetup() + m.RequestResponse(document) + m.FetchParallel(objects, parallelism)
}

// TCP slow-start parameters for cold-connection transfers: the 2009-era
// initial congestion window of 3 segments (RFC 3390) and the standard
// Ethernet MSS.
const (
	mssBytes         = 1460
	initcwndSegments = 3
)

// ColdDownload returns the time to receive n bytes on a connection that has
// just completed its handshake: the congestion window starts at 3 segments
// and doubles each round trip until it covers the link's bandwidth-delay
// product, after which the remainder flows at line rate. This is the term
// that dominates document loads from distant origins (M1) but not the
// warm, persistent polling connection that carries RCB synchronization
// (M2) — the asymmetry behind the paper's Figure 7.
func (m LinkModel) ColdDownload(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	bps := m.Link.DownBps
	rtt := m.RTT()
	if rtt == 0 {
		return serialize(n, bps)
	}
	remaining := float64(n)
	window := float64(initcwndSegments * mssBytes)
	var total time.Duration
	for remaining > 0 {
		if bps > 0 {
			bdp := bps * rtt.Seconds()
			if window >= bdp {
				// Window covers the pipe: line rate from here.
				return total + serialize(int(remaining), bps)
			}
		}
		if window >= remaining {
			// Last window: the tail arrives within one round.
			return total + serialize(int(remaining), bps)
		}
		total += rtt
		remaining -= window
		window *= 2
	}
	return total
}
