// Package netsim provides the network substrate for RCB experiments: an
// in-memory virtual internet of named hosts whose connections implement
// net.Conn with configurable one-way latency and per-direction bandwidth,
// plus a deterministic analytic link model used to compute the paper's
// transfer-time metrics (M1–M4) without wall-clock sleeping.
//
// The paper evaluates in two environments: a 100 Mbps campus LAN and a
// residential WAN with 1.5 Mbps download / 384 Kbps upload (paper §5.1.2).
// Link captures those profiles; Network routes between hosts using a
// caller-supplied profile function.
package netsim

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is returned for operations on closed connections or listeners.
var ErrClosed = errors.New("netsim: closed")

// ErrReset is returned by a write the link "lost": the simulated TCP flow is
// torn down abruptly, and both endpoints see their subsequent operations fail.
var ErrReset = errors.New("netsim: connection reset")

// Link describes one direction-pair of a simulated network path.
type Link struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// UpBps is client→server bandwidth in bytes per second (0 = unlimited).
	UpBps float64
	// DownBps is server→client bandwidth in bytes per second (0 = unlimited).
	DownBps float64
	// Jitter adds a uniformly distributed 0..Jitter extra delay per write
	// on top of Latency. Delivery stays in order (TCP semantics): a chunk
	// never arrives before one queued ahead of it.
	Jitter time.Duration
	// LossRate is the per-write probability (0..1) that the connection is
	// reset instead of carrying the data. Modeling loss as a flow reset —
	// rather than a silently dropped segment — matches what an HTTP client
	// on a flaky mobile link observes: the exchange dies and the transport
	// reconnects.
	LossRate float64
}

// Scaled returns a copy of l with latency (and jitter) divided by factor and
// bandwidth multiplied by it — used to run integration tests against
// realistic shapes in a fraction of real time. LossRate is time-independent
// and carries over unchanged.
func (l Link) Scaled(factor float64) Link {
	if factor <= 0 {
		return l
	}
	out := l
	out.Latency = time.Duration(float64(l.Latency) / factor)
	out.Jitter = time.Duration(float64(l.Jitter) / factor)
	if l.UpBps > 0 {
		out.UpBps = l.UpBps * factor
	}
	if l.DownBps > 0 {
		out.DownBps = l.DownBps * factor
	}
	return out
}

// Canonical environments from the paper's evaluation.
var (
	// LAN models the 100 Mbps campus Ethernet (sub-millisecond RTT).
	LAN = Link{Latency: 250 * time.Microsecond, UpBps: 12.5e6, DownBps: 12.5e6}
	// WAN models the residential DSL pair: 1.5 Mbps down, 384 Kbps up, with
	// a typical 2009 coast-to-coast RTT of ~80 ms (40 ms one way).
	WAN = Link{Latency: 40 * time.Millisecond, UpBps: 48e3, DownBps: 187.5e3}
	// Mobile models a 2009-era cellular data link (think N810 over 3G):
	// high, variable latency and tight asymmetric bandwidth.
	Mobile = Link{Latency: 150 * time.Millisecond, UpBps: 64e3, DownBps: 400e3, Jitter: 60 * time.Millisecond}
	// Instant is an unshaped link for functional tests.
	Instant = Link{}
)

// faultState holds the seeded randomness one connection pair draws its loss
// and jitter decisions from. Both endpoints share one state so a pair's
// fault sequence is reproducible from a single seed.
type faultState struct {
	mu       sync.Mutex
	rng      *rand.Rand
	lossRate float64
	jitter   time.Duration
}

func newFaultState(link Link, seed int64) *faultState {
	if link.LossRate <= 0 && link.Jitter <= 0 {
		return nil // fault-free links skip the lock on every write
	}
	return &faultState{rng: rand.New(rand.NewSource(seed)), lossRate: link.LossRate, jitter: link.Jitter}
}

func (f *faultState) drawLoss() bool {
	if f == nil || f.lossRate <= 0 {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Float64() < f.lossRate
}

func (f *faultState) drawJitter() time.Duration {
	if f == nil || f.jitter <= 0 {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return time.Duration(f.rng.Float64() * float64(f.jitter))
}

// chunk is a unit of in-flight data with its delivery time.
type chunk struct {
	data    []byte
	readyAt time.Time
}

// pipeHalf is one direction of a simulated connection.
type pipeHalf struct {
	mu            sync.Mutex
	cond          *sync.Cond
	queue         []chunk
	closed        bool      // writer closed: EOF after drain
	broken        bool      // reader closed: writes fail
	lastDeparture time.Time // bandwidth serialization point
	lastReady     time.Time // in-order delivery floor under jitter
	latency       time.Duration
	bps           float64
	faults        *faultState // jitter source (nil for clean links)
	readDeadline  time.Time
}

func newPipeHalf(latency time.Duration, bps float64, faults *faultState) *pipeHalf {
	h := &pipeHalf{latency: latency, bps: bps, faults: faults}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// write enqueues data with a delivery time computed from the link shape.
func (h *pipeHalf) write(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed || h.broken {
		return 0, ErrClosed
	}
	now := time.Now()
	departure := now
	if h.lastDeparture.After(departure) {
		departure = h.lastDeparture
	}
	if h.bps > 0 {
		departure = departure.Add(time.Duration(float64(len(p)) / h.bps * float64(time.Second)))
	}
	h.lastDeparture = departure
	data := make([]byte, len(p))
	copy(data, p)
	readyAt := departure.Add(h.latency + h.faults.drawJitter())
	if readyAt.Before(h.lastReady) {
		readyAt = h.lastReady // jitter must not reorder delivery
	}
	h.lastReady = readyAt
	h.queue = append(h.queue, chunk{data: data, readyAt: readyAt})
	h.cond.Broadcast()
	return len(p), nil
}

// read blocks until data is deliverable, the writer closes (EOF), or the
// read deadline passes.
func (h *pipeHalf) read(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		if h.broken {
			return 0, ErrClosed
		}
		if !h.readDeadline.IsZero() && !time.Now().Before(h.readDeadline) {
			return 0, timeoutError{}
		}
		if len(h.queue) > 0 {
			now := time.Now()
			first := h.queue[0]
			if !first.readyAt.After(now) {
				n := copy(p, first.data)
				if n == len(first.data) {
					h.queue = h.queue[1:]
				} else {
					h.queue[0].data = first.data[n:]
				}
				return n, nil
			}
			// Data in flight: sleep until delivery (or deadline).
			wakeAt := first.readyAt
			if !h.readDeadline.IsZero() && h.readDeadline.Before(wakeAt) {
				wakeAt = h.readDeadline
			}
			h.sleepUntil(wakeAt)
			continue
		}
		if h.closed {
			return 0, io.EOF
		}
		if !h.readDeadline.IsZero() {
			h.sleepUntil(h.readDeadline)
			continue
		}
		h.cond.Wait()
	}
}

// sleepUntil releases the lock until t (or an earlier broadcast).
func (h *pipeHalf) sleepUntil(t time.Time) {
	d := time.Until(t)
	if d <= 0 {
		return
	}
	timer := time.AfterFunc(d, func() {
		h.mu.Lock()
		h.cond.Broadcast()
		h.mu.Unlock()
	})
	h.cond.Wait()
	timer.Stop()
}

func (h *pipeHalf) closeWrite() {
	h.mu.Lock()
	h.closed = true
	h.cond.Broadcast()
	h.mu.Unlock()
}

func (h *pipeHalf) closeRead() {
	h.mu.Lock()
	h.broken = true
	h.queue = nil
	h.cond.Broadcast()
	h.mu.Unlock()
}

func (h *pipeHalf) setReadDeadline(t time.Time) {
	h.mu.Lock()
	h.readDeadline = t
	h.cond.Broadcast()
	h.mu.Unlock()
}

type timeoutError struct{}

func (timeoutError) Error() string   { return "netsim: i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// Conn is one endpoint of a simulated connection.
type Conn struct {
	recv      *pipeHalf // data flowing toward this endpoint
	send      *pipeHalf // data flowing away from this endpoint
	local     simAddr
	remote    simAddr
	faults    *faultState // loss source shared with the peer (nil = clean)
	peer      *Conn       // other endpoint, for propagating resets
	closeOnce sync.Once
	dead      atomic.Bool // closed or reset; lets the network prune records
	// onDead, when set, runs exactly once when the conn dies (reset or
	// Close) — the Network registers its deregistration here so dead conns
	// leave the dial table immediately instead of on the next full scan.
	onDead   func()
	deadOnce sync.Once
}

// markDead flips the dead flag and fires the death hook once.
func (c *Conn) markDead() {
	c.dead.Store(true)
	c.deadOnce.Do(func() {
		if c.onDead != nil {
			c.onDead()
		}
	})
}

// simAddr implements net.Addr for virtual hosts.
type simAddr string

func (a simAddr) Network() string { return "sim" }
func (a simAddr) String() string  { return string(a) }

// pairSeq seeds connection pairs created without an explicit seed.
var pairSeq atomic.Int64

// NewConnPair returns the two endpoints of a connection shaped by link.
// clientName/serverName label the endpoints for RemoteAddr purposes. Data
// written by the client is shaped by (Latency, UpBps); data written by the
// server by (Latency, DownBps). Fault draws (loss, jitter) use an arbitrary
// process-unique seed; use NewConnPairSeeded for reproducible faults.
func NewConnPair(link Link, clientName, serverName string) (client, server *Conn) {
	return NewConnPairSeeded(link, clientName, serverName, pairSeq.Add(1)*0x9E3779B9+0x7F4A7C15)
}

// NewConnPairSeeded is NewConnPair with a deterministic fault seed: two
// pairs built from the same link and seed draw identical loss and jitter
// sequences. The seed is irrelevant for links without Jitter or LossRate.
func NewConnPairSeeded(link Link, clientName, serverName string, seed int64) (client, server *Conn) {
	faults := newFaultState(link, seed)
	up := newPipeHalf(link.Latency, link.UpBps, faults)     // client → server
	down := newPipeHalf(link.Latency, link.DownBps, faults) // server → client
	client = &Conn{recv: down, send: up, faults: faults, local: simAddr(clientName), remote: simAddr(serverName)}
	server = &Conn{recv: up, send: down, faults: faults, local: simAddr(serverName), remote: simAddr(clientName)}
	client.peer, server.peer = server, client
	return client, server
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) { return c.recv.read(p) }

// Write implements net.Conn. On a lossy link each write may instead reset
// the whole connection: the data is not delivered, both endpoints' pending
// and future operations fail, and the caller sees ErrReset.
func (c *Conn) Write(p []byte) (int, error) {
	if !c.dead.Load() && c.faults.drawLoss() {
		c.reset()
		return 0, ErrReset
	}
	return c.send.write(p)
}

// reset tears the connection down abruptly from both ends, like a TCP RST:
// no EOF-after-drain grace, queued data is dropped.
func (c *Conn) reset() {
	c.markDead()
	if c.peer != nil {
		c.peer.markDead()
	}
	c.send.closeRead()
	c.recv.closeRead()
}

// Close implements net.Conn. It signals EOF to the peer and aborts local
// blocked reads.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.markDead()
		c.send.closeWrite()
		c.recv.closeRead()
	})
	return nil
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline implements net.Conn (read side only; writes never block).
func (c *Conn) SetDeadline(t time.Time) error { return c.SetReadDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.recv.setReadDeadline(t)
	return nil
}

// SetWriteDeadline implements net.Conn. Writes are buffered and never
// block, so this is a no-op kept for interface completeness.
func (c *Conn) SetWriteDeadline(time.Time) error { return nil }

var _ net.Conn = (*Conn)(nil)

// CountingConn wraps a net.Conn and tallies bytes in each direction. The
// experiment harness uses it to capture exact wire volumes for the analytic
// link model.
type CountingConn struct {
	net.Conn
	mu                sync.Mutex
	bytesIn, bytesOut int64
	reads, writes     int64
}

// NewCountingConn wraps conn.
func NewCountingConn(conn net.Conn) *CountingConn { return &CountingConn{Conn: conn} }

// Read implements net.Conn.
func (c *CountingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.mu.Lock()
	c.bytesIn += int64(n)
	c.reads++
	c.mu.Unlock()
	return n, err
}

// Write implements net.Conn.
func (c *CountingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.mu.Lock()
	c.bytesOut += int64(n)
	c.writes++
	c.mu.Unlock()
	return n, err
}

// Totals returns bytes received and sent through this wrapper.
func (c *CountingConn) Totals() (in, out int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytesIn, c.bytesOut
}

func (c *CountingConn) String() string {
	in, out := c.Totals()
	return fmt.Sprintf("countingConn{in=%d out=%d}", in, out)
}
