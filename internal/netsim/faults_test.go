package netsim

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

// lossPositions writes one byte at a time until the link resets the
// connection, returning how many writes succeeded.
func lossPositions(t *testing.T, link Link, seed int64) int {
	t.Helper()
	client, server := NewConnPairSeeded(link, "a", "b", seed)
	defer client.Close()
	defer server.Close()
	for i := 0; i < 10_000; i++ {
		if _, err := client.Write([]byte{byte(i)}); err != nil {
			if !errors.Is(err, ErrReset) {
				t.Fatalf("write %d failed with %v, want ErrReset", i, err)
			}
			return i
		}
	}
	t.Fatalf("no reset within 10k writes at LossRate %v", link.LossRate)
	return -1
}

func TestLossIsSeededAndDeterministic(t *testing.T) {
	link := Link{LossRate: 0.05}
	a := lossPositions(t, link, 42)
	b := lossPositions(t, link, 42)
	if a != b {
		t.Fatalf("same seed diverged: reset after %d vs %d writes", a, b)
	}
	c := lossPositions(t, link, 43)
	d := lossPositions(t, link, 44)
	if a == c && a == d {
		t.Fatalf("three different seeds all reset after %d writes; loss is not seed-driven", a)
	}
}

func TestResetBreaksBothEndpoints(t *testing.T) {
	client, server := NewConnPairSeeded(Link{LossRate: 1}, "a", "b", 1)
	if _, err := client.Write([]byte("x")); !errors.Is(err, ErrReset) {
		t.Fatalf("write on LossRate=1 link = %v, want ErrReset", err)
	}
	buf := make([]byte, 1)
	if _, err := client.Read(buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("client read after reset = %v, want ErrClosed", err)
	}
	if _, err := server.Read(buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("server read after reset = %v, want ErrClosed", err)
	}
	if _, err := server.Write([]byte("y")); !errors.Is(err, ErrClosed) {
		t.Fatalf("server write after reset = %v, want ErrClosed", err)
	}
}

func TestJitterPreservesOrderAndContent(t *testing.T) {
	link := Link{Latency: time.Millisecond, Jitter: 3 * time.Millisecond}
	client, server := NewConnPairSeeded(link, "a", "b", 7)
	defer client.Close()
	defer server.Close()

	var want bytes.Buffer
	for i := 0; i < 32; i++ {
		chunk := bytes.Repeat([]byte{byte('a' + i%26)}, 5)
		want.Write(chunk)
		if _, err := client.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	client.Close()
	got, err := io.ReadAll(server)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("jittered link reordered or corrupted data:\ngot  %q\nwant %q", got, want.Bytes())
	}
}

func TestNetworkSeededDialsReplay(t *testing.T) {
	run := func(seed int64) int {
		n := NewNetwork()
		n.SetSeed(seed)
		n.SetLinkPolicy(func(string, string) Link { return Link{LossRate: 0.05} })
		l, err := n.Listen("srv:1")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go func() {
			for {
				c, err := l.Accept()
				if err != nil {
					return
				}
				go io.Copy(io.Discard, c)
			}
		}()
		conn, err := n.Dial("cli", "srv:1")
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		for i := 0; i < 10_000; i++ {
			if _, err := conn.Write([]byte{1}); err != nil {
				return i
			}
		}
		t.Fatal("no reset within 10k writes")
		return -1
	}
	if a, b := run(9), run(9); a != b {
		t.Fatalf("seeded network diverged: %d vs %d", a, b)
	}
}

func TestResetConnsKillsLiveFlows(t *testing.T) {
	n := NewNetwork()
	l, err := n.Listen("srv:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan interface{ Read([]byte) (int, error) }, 4)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()
	conn, err := n.Dial("cli", "srv:1")
	if err != nil {
		t.Fatal(err)
	}
	srvSide := <-accepted
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if got := n.ResetConns("srv:1"); got != 1 {
		t.Fatalf("ResetConns reset %d conns, want 1", got)
	}
	if _, err := conn.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after flap = %v, want ErrClosed", err)
	}
	buf := make([]byte, 8)
	if _, err := srvSide.Read(buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("server read after flap = %v, want ErrClosed", err)
	}
	// Already-dead conns are pruned, not double-reset.
	if got := n.ResetConns("srv:1"); got != 0 {
		t.Fatalf("second ResetConns reset %d conns, want 0", got)
	}
}

func TestPartitionIsOneDirectionalAndHeals(t *testing.T) {
	n := NewNetwork()
	l, err := n.Listen("srv:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	conn, err := n.Dial("cli", "srv:1")
	if err != nil {
		t.Fatal(err)
	}

	// Installing the cut resets the established flow and blocks new dials
	// from the partitioned host only.
	if got := n.Partition("cli", "srv:1"); got != 1 {
		t.Fatalf("Partition reset %d conns, want 1", got)
	}
	if _, err := conn.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("write across partition = %v, want ErrClosed", err)
	}
	if _, err := n.Dial("cli", "srv:1"); err == nil {
		t.Fatal("dial across partition succeeded")
	}
	// One-directional: an unrelated host still reaches the server.
	if _, err := n.Dial("other", "srv:1"); err != nil {
		t.Fatalf("unrelated host partitioned too: %v", err)
	}

	n.Heal("cli", "srv:1")
	if _, err := n.Dial("cli", "srv:1"); err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
}

func TestPartitionWildcards(t *testing.T) {
	n := NewNetwork()
	for _, addr := range []string{"a:1", "b:1"} {
		l, err := n.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go func() {
			for {
				if _, err := l.Accept(); err != nil {
					return
				}
			}
		}()
	}

	// "" as fromHost cuts every path to the address.
	n.Partition("", "a:1")
	if _, err := n.Dial("x", "a:1"); err == nil {
		t.Fatal("wildcard-from partition did not block the dial")
	}
	if _, err := n.Dial("x", "b:1"); err != nil {
		t.Fatalf("partition of a:1 leaked to b:1: %v", err)
	}
	n.Heal("", "a:1")

	// "" as toAddr isolates one host from everything.
	n.Partition("x", "")
	if _, err := n.Dial("x", "b:1"); err == nil {
		t.Fatal("wildcard-to partition did not block the dial")
	}
	if _, err := n.Dial("y", "b:1"); err != nil {
		t.Fatalf("isolating x leaked to y: %v", err)
	}
	n.Heal("x", "")
	if _, err := n.Dial("x", "a:1"); err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
}
