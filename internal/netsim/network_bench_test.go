package netsim

import (
	"fmt"
	"net"
	"runtime"
	"strings"
	"testing"
)

// dialRetry dials, yielding to the accept drain on a backlog-full refusal —
// the benchmark equivalent of a client retrying a SYN-queue overflow.
func dialRetry(b *testing.B, n *Network, fromHost, toAddr string) net.Conn {
	b.Helper()
	for {
		c, err := n.Dial(fromHost, toAddr)
		if err == nil {
			return c
		}
		if !strings.Contains(err.Error(), "backlog full") {
			b.Fatal(err)
		}
		runtime.Gosched()
	}
}

// BenchmarkDialWithLiveConns measures one Dial+Close against tables of
// already-established connections. The bookkeeping is bucketed with
// death-hook deregistration, so ns/op must stay flat as the live table
// grows — the property that keeps thousands-of-participant scale scenarios
// from turning every dial into a full-table prune under the network mutex.
func BenchmarkDialWithLiveConns(b *testing.B) {
	for _, live := range []int{16, 1024, 4096} {
		b.Run(fmt.Sprintf("live=%d", live), func(b *testing.B) {
			n := NewNetwork()
			l, err := n.Listen("srv:80")
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			go func() {
				for {
					if _, err := l.Accept(); err != nil {
						return
					}
				}
			}()
			held := make([]net.Conn, 0, live)
			for i := 0; i < live; i++ {
				held = append(held, dialRetry(b, n, fmt.Sprintf("h%d", i), "srv:80"))
			}
			if got := n.LiveConns(); got != live {
				b.Fatalf("live conns = %d, want %d", got, live)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dialRetry(b, n, "bench.host", "srv:80").Close()
			}
			b.StopTimer()
			for _, c := range held {
				c.Close()
			}
		})
	}
}

// BenchmarkDialParallel drives concurrent dial+close from many goroutines
// against a large live table — the contention shape of a mass rejoin churn.
func BenchmarkDialParallel(b *testing.B) {
	n := NewNetwork()
	l, err := n.Listen("srv:80")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 2048; i++ {
		defer dialRetry(b, n, fmt.Sprintf("h%d", i), "srv:80").Close()
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			dialRetry(b, n, "bench.host", "srv:80").Close()
		}
	})
}
