package netsim

import (
	"fmt"
	"net"
	"sync"
)

// Network is a virtual internet: named hosts listen on string addresses
// ("shop.example:80", "host.lan:3000") and dial each other through links
// chosen by a profile function. It underpins the paper's topology — a host
// browser, participant browsers, and remote origin web servers, each pair
// separated by LAN- or WAN-class links.
type Network struct {
	mu        sync.Mutex
	listeners map[string]*Listener
	// LinkFor selects the link profile for a dial from one host to another.
	// Defaults to Instant for every pair.
	linkFor func(fromHost, toAddr string) Link
	// blocked, when non-nil, vetoes dials (NAT reachability rules).
	blocked func(fromHost, toAddr string) bool
	// seed, when set, derives a deterministic fault seed per dial so lossy
	// and jittery links replay identically across runs.
	seed    int64
	seeded  bool
	dialSeq int64
	// conns records live dialed connections so a test can reset the flows
	// to one address (a link flap that kills established TCP connections).
	conns []dialedConn
	// partitions holds the one-directional cuts installed by Partition:
	// a dial matching any rule fails as unreachable until Heal removes it.
	// "" in either field is a wildcard.
	partitions map[partitionRule]struct{}
}

type dialedConn struct {
	fromHost string
	toAddr   string
	client   *Conn
}

// partitionRule is one directional cut: traffic from fromHost to toAddr
// cannot flow. Empty fields match any host/address.
type partitionRule struct {
	fromHost string
	toAddr   string
}

func (r partitionRule) matches(fromHost, toAddr string) bool {
	return (r.fromHost == "" || r.fromHost == fromHost) &&
		(r.toAddr == "" || r.toAddr == toAddr)
}

// NewNetwork returns an empty virtual internet where every path defaults to
// the Instant (unshaped) link.
func NewNetwork() *Network {
	return &Network{
		listeners: make(map[string]*Listener),
		linkFor:   func(string, string) Link { return Instant },
	}
}

// SetLinkPolicy installs the function that picks a link profile per
// (fromHost, toAddr) pair.
func (n *Network) SetLinkPolicy(f func(fromHost, toAddr string) Link) {
	n.mu.Lock()
	n.linkFor = f
	n.mu.Unlock()
}

// Listen registers a listener for addr. Listening twice on one address is
// an error, mirroring a bind conflict.
func (n *Network) Listen(addr string) (*Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.listeners[addr]; exists {
		return nil, fmt.Errorf("netsim: address %s already in use", addr)
	}
	l := &Listener{network: n, addr: addr, incoming: make(chan *Conn, 16)}
	n.listeners[addr] = l
	return l, nil
}

// SetSeed makes every subsequent dial derive its fault randomness (loss,
// jitter) deterministically from seed and the dial's ordinal, so a fault
// scenario replays identically given the same dial sequence.
func (n *Network) SetSeed(seed int64) {
	n.mu.Lock()
	n.seed = seed
	n.seeded = true
	n.dialSeq = 0
	n.mu.Unlock()
}

// Dial connects fromHost to toAddr through the configured link profile.
// Dials vetoed by a reachability rule (DenyDialTo) fail as unreachable.
func (n *Network) Dial(fromHost, toAddr string) (net.Conn, error) {
	n.mu.Lock()
	l := n.listeners[toAddr]
	profile := n.linkFor(fromHost, toAddr)
	blocked := n.blocked != nil && n.blocked(fromHost, toAddr)
	partitioned := n.partitionedLocked(fromHost, toAddr)
	seeded, seed := n.seeded, n.seed
	n.dialSeq++
	dialSeq := n.dialSeq
	n.mu.Unlock()
	if blocked {
		return nil, fmt.Errorf("netsim: host %s unreachable from %s (NAT)", toAddr, fromHost)
	}
	if partitioned {
		return nil, fmt.Errorf("netsim: host %s unreachable from %s (partitioned)", toAddr, fromHost)
	}
	if l == nil {
		return nil, fmt.Errorf("netsim: connection refused: no listener on %s", toAddr)
	}
	var client, server *Conn
	if seeded {
		client, server = NewConnPairSeeded(profile, fromHost, toAddr, seed*0x5DEECE66D+dialSeq)
	} else {
		client, server = NewConnPair(profile, fromHost, toAddr)
	}
	if err := l.deliver(server); err != nil {
		client.Close()
		return nil, err
	}
	n.mu.Lock()
	live := n.conns[:0]
	for _, dc := range n.conns {
		if !dc.client.dead.Load() {
			live = append(live, dc)
		}
	}
	n.conns = append(live, dialedConn{fromHost: fromHost, toAddr: toAddr, client: client})
	n.mu.Unlock()
	return client, nil
}

func (n *Network) partitionedLocked(fromHost, toAddr string) bool {
	for r := range n.partitions {
		if r.matches(fromHost, toAddr) {
			return true
		}
	}
	return false
}

// Partition installs a one-directional cut: from now on, dials from
// fromHost to toAddr fail as unreachable and matching established
// connections are reset. Unlike ResetConns — a momentary flap — the cut
// persists until Heal removes it, modeling an asymmetric routing failure
// or a mid-migration network split. Either argument may be "" to match
// any host/address. Returns how many established connections were cut.
func (n *Network) Partition(fromHost, toAddr string) int {
	rule := partitionRule{fromHost: fromHost, toAddr: toAddr}
	n.mu.Lock()
	if n.partitions == nil {
		n.partitions = make(map[partitionRule]struct{})
	}
	n.partitions[rule] = struct{}{}
	var victims []*Conn
	live := n.conns[:0]
	for _, dc := range n.conns {
		if dc.client.dead.Load() {
			continue
		}
		if rule.matches(dc.fromHost, dc.toAddr) {
			victims = append(victims, dc.client)
			continue
		}
		live = append(live, dc)
	}
	n.conns = live
	n.mu.Unlock()
	for _, c := range victims {
		c.reset()
	}
	return len(victims)
}

// Heal removes the Partition rule with exactly these arguments; traffic
// flows again on the next dial. Healing a rule that was never installed is
// a no-op.
func (n *Network) Heal(fromHost, toAddr string) {
	n.mu.Lock()
	delete(n.partitions, partitionRule{fromHost: fromHost, toAddr: toAddr})
	n.mu.Unlock()
}

// ResetConns abruptly resets every live connection dialed to toAddr,
// modeling a link flap or middlebox failure that kills established flows
// while the listener itself stays up. It returns how many connections were
// reset.
func (n *Network) ResetConns(toAddr string) int {
	n.mu.Lock()
	var victims []*Conn
	live := n.conns[:0]
	for _, dc := range n.conns {
		if dc.client.dead.Load() {
			continue
		}
		if dc.toAddr == toAddr {
			victims = append(victims, dc.client)
			continue
		}
		live = append(live, dc)
	}
	n.conns = live
	n.mu.Unlock()
	for _, c := range victims {
		c.reset()
	}
	return len(victims)
}

// Dialer returns an httpwire-compatible dial function bound to fromHost.
func (n *Network) Dialer(fromHost string) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) { return n.Dial(fromHost, addr) }
}

// unregister removes a closed listener.
func (n *Network) unregister(addr string, l *Listener) {
	n.mu.Lock()
	if n.listeners[addr] == l {
		delete(n.listeners, addr)
	}
	n.mu.Unlock()
}

// Listener implements net.Listener over the virtual network.
type Listener struct {
	network  *Network
	addr     string
	incoming chan *Conn

	mu     sync.Mutex
	closed bool
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	conn, ok := <-l.incoming
	if !ok {
		return nil, ErrClosed
	}
	return conn, nil
}

// Close implements net.Listener.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	close(l.incoming)
	l.mu.Unlock()
	l.network.unregister(l.addr, l)
	return nil
}

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return simAddr(l.addr) }

func (l *Listener) deliver(conn *Conn) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("netsim: connection refused: %s closed", l.addr)
	}
	select {
	case l.incoming <- conn:
		return nil
	default:
		return fmt.Errorf("netsim: connection refused: %s backlog full", l.addr)
	}
}

var _ net.Listener = (*Listener)(nil)
