package netsim

import (
	"fmt"
	"net"
	"sync"
)

// Network is a virtual internet: named hosts listen on string addresses
// ("shop.example:80", "host.lan:3000") and dial each other through links
// chosen by a profile function. It underpins the paper's topology — a host
// browser, participant browsers, and remote origin web servers, each pair
// separated by LAN- or WAN-class links.
type Network struct {
	mu        sync.Mutex
	listeners map[string]*Listener
	// LinkFor selects the link profile for a dial from one host to another.
	// Defaults to Instant for every pair.
	linkFor func(fromHost, toAddr string) Link
	// blocked, when non-nil, vetoes dials (NAT reachability rules).
	blocked func(fromHost, toAddr string) bool
	// seed, when set, derives a deterministic fault seed per dial so lossy
	// and jittery links replay identically across runs.
	seed    int64
	seeded  bool
	dialSeq int64
	// conns records live dialed connections so a test can reset the flows
	// to one address (a link flap that kills established TCP connections).
	// Bucketed by destination address — client conn → dialing host — so a
	// dial inserts in O(1) and ResetConns touches only its own bucket; a
	// conn that dies (reset or Close) removes itself through its onDead
	// hook instead of waiting for the next full-table sweep. With
	// thousands of live connections the old flat slice made every dial an
	// O(n) prune under the network mutex.
	conns map[string]map[*Conn]string
	// partitions holds the one-directional cuts installed by Partition:
	// a dial matching any rule fails as unreachable until Heal removes it.
	// "" in either field is a wildcard.
	partitions map[partitionRule]struct{}
}

// partitionRule is one directional cut: traffic from fromHost to toAddr
// cannot flow. Empty fields match any host/address.
type partitionRule struct {
	fromHost string
	toAddr   string
}

func (r partitionRule) matches(fromHost, toAddr string) bool {
	return (r.fromHost == "" || r.fromHost == fromHost) &&
		(r.toAddr == "" || r.toAddr == toAddr)
}

// NewNetwork returns an empty virtual internet where every path defaults to
// the Instant (unshaped) link.
func NewNetwork() *Network {
	return &Network{
		listeners: make(map[string]*Listener),
		linkFor:   func(string, string) Link { return Instant },
	}
}

// SetLinkPolicy installs the function that picks a link profile per
// (fromHost, toAddr) pair.
func (n *Network) SetLinkPolicy(f func(fromHost, toAddr string) Link) {
	n.mu.Lock()
	n.linkFor = f
	n.mu.Unlock()
}

// Listen registers a listener for addr. Listening twice on one address is
// an error, mirroring a bind conflict.
func (n *Network) Listen(addr string) (*Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.listeners[addr]; exists {
		return nil, fmt.Errorf("netsim: address %s already in use", addr)
	}
	l := &Listener{network: n, addr: addr, incoming: make(chan *Conn, listenBacklog)}
	n.listeners[addr] = l
	return l, nil
}

// listenBacklog is the accept-queue depth, sized like a kernel somaxconn so
// a flash crowd of simultaneous dials (the scale lab joins thousands of
// participants inside one debounce window) rides out scheduler hiccups in
// the accept loop instead of being refused.
const listenBacklog = 256

// SetSeed makes every subsequent dial derive its fault randomness (loss,
// jitter) deterministically from seed and the dial's ordinal, so a fault
// scenario replays identically given the same dial sequence.
func (n *Network) SetSeed(seed int64) {
	n.mu.Lock()
	n.seed = seed
	n.seeded = true
	n.dialSeq = 0
	n.mu.Unlock()
}

// Dial connects fromHost to toAddr through the configured link profile.
// Dials vetoed by a reachability rule (DenyDialTo) fail as unreachable.
func (n *Network) Dial(fromHost, toAddr string) (net.Conn, error) {
	n.mu.Lock()
	l := n.listeners[toAddr]
	profile := n.linkFor(fromHost, toAddr)
	blocked := n.blocked != nil && n.blocked(fromHost, toAddr)
	partitioned := n.partitionedLocked(fromHost, toAddr)
	seeded, seed := n.seeded, n.seed
	n.dialSeq++
	dialSeq := n.dialSeq
	n.mu.Unlock()
	if blocked {
		return nil, fmt.Errorf("netsim: host %s unreachable from %s (NAT)", toAddr, fromHost)
	}
	if partitioned {
		return nil, fmt.Errorf("netsim: host %s unreachable from %s (partitioned)", toAddr, fromHost)
	}
	if l == nil {
		return nil, fmt.Errorf("netsim: connection refused: no listener on %s", toAddr)
	}
	var client, server *Conn
	if seeded {
		client, server = NewConnPairSeeded(profile, fromHost, toAddr, seed*0x5DEECE66D+dialSeq)
	} else {
		client, server = NewConnPair(profile, fromHost, toAddr)
	}
	// Register before delivering: the hook must be armed by the time any
	// other goroutine can reset the pair, and a failed deliver cleans up
	// through the same path (Close fires onDead exactly once).
	client.onDead = func() { n.forget(toAddr, client) }
	n.mu.Lock()
	bucket := n.conns[toAddr]
	if bucket == nil {
		if n.conns == nil {
			n.conns = make(map[string]map[*Conn]string)
		}
		bucket = make(map[*Conn]string)
		n.conns[toAddr] = bucket
	}
	bucket[client] = fromHost
	n.mu.Unlock()
	if err := l.deliver(server); err != nil {
		client.Close()
		return nil, err
	}
	return client, nil
}

// forget drops a dead connection's record; the conn's death hook calls it
// exactly once, from reset and Close alike.
func (n *Network) forget(toAddr string, c *Conn) {
	n.mu.Lock()
	if bucket := n.conns[toAddr]; bucket != nil {
		delete(bucket, c)
		if len(bucket) == 0 {
			delete(n.conns, toAddr)
		}
	}
	n.mu.Unlock()
}

// LiveConns reports how many dialed connections are currently established —
// an observability hook for scale harnesses and the bookkeeping benchmark.
func (n *Network) LiveConns() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	total := 0
	for _, bucket := range n.conns {
		total += len(bucket)
	}
	return total
}

func (n *Network) partitionedLocked(fromHost, toAddr string) bool {
	for r := range n.partitions {
		if r.matches(fromHost, toAddr) {
			return true
		}
	}
	return false
}

// Partition installs a one-directional cut: from now on, dials from
// fromHost to toAddr fail as unreachable and matching established
// connections are reset. Unlike ResetConns — a momentary flap — the cut
// persists until Heal removes it, modeling an asymmetric routing failure
// or a mid-migration network split. Either argument may be "" to match
// any host/address. Returns how many established connections were cut.
func (n *Network) Partition(fromHost, toAddr string) int {
	rule := partitionRule{fromHost: fromHost, toAddr: toAddr}
	n.mu.Lock()
	if n.partitions == nil {
		n.partitions = make(map[partitionRule]struct{})
	}
	n.partitions[rule] = struct{}{}
	// A concrete toAddr cuts one bucket; only the wildcard walks them all.
	var victims []*Conn
	collect := func(toAddr string, bucket map[*Conn]string) {
		for c, fromHost := range bucket {
			if !c.dead.Load() && rule.matches(fromHost, toAddr) {
				victims = append(victims, c)
			}
		}
	}
	if toAddr != "" {
		collect(toAddr, n.conns[toAddr])
	} else {
		for addr, bucket := range n.conns {
			collect(addr, bucket)
		}
	}
	n.mu.Unlock()
	for _, c := range victims {
		c.reset()
	}
	return len(victims)
}

// Heal removes the Partition rule with exactly these arguments; traffic
// flows again on the next dial. Healing a rule that was never installed is
// a no-op.
func (n *Network) Heal(fromHost, toAddr string) {
	n.mu.Lock()
	delete(n.partitions, partitionRule{fromHost: fromHost, toAddr: toAddr})
	n.mu.Unlock()
}

// ResetConns abruptly resets every live connection dialed to toAddr,
// modeling a link flap or middlebox failure that kills established flows
// while the listener itself stays up. It returns how many connections were
// reset.
func (n *Network) ResetConns(toAddr string) int {
	n.mu.Lock()
	var victims []*Conn
	for c := range n.conns[toAddr] {
		if !c.dead.Load() {
			victims = append(victims, c)
		}
	}
	n.mu.Unlock()
	for _, c := range victims {
		c.reset()
	}
	return len(victims)
}

// Dialer returns an httpwire-compatible dial function bound to fromHost.
func (n *Network) Dialer(fromHost string) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) { return n.Dial(fromHost, addr) }
}

// unregister removes a closed listener.
func (n *Network) unregister(addr string, l *Listener) {
	n.mu.Lock()
	if n.listeners[addr] == l {
		delete(n.listeners, addr)
	}
	n.mu.Unlock()
}

// Listener implements net.Listener over the virtual network.
type Listener struct {
	network  *Network
	addr     string
	incoming chan *Conn

	mu     sync.Mutex
	closed bool
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	conn, ok := <-l.incoming
	if !ok {
		return nil, ErrClosed
	}
	return conn, nil
}

// Close implements net.Listener.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	close(l.incoming)
	l.mu.Unlock()
	l.network.unregister(l.addr, l)
	return nil
}

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return simAddr(l.addr) }

func (l *Listener) deliver(conn *Conn) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("netsim: connection refused: %s closed", l.addr)
	}
	select {
	case l.incoming <- conn:
		return nil
	default:
		return fmt.Errorf("netsim: connection refused: %s backlog full", l.addr)
	}
}

var _ net.Listener = (*Listener)(nil)
