package netsim

import (
	"io"
	"net"
	"sync"
)

// Port forwarding (paper §3.2.1): a co-browsing host behind a NAT exposes
// RCB-Agent by having the gateway forward a public port to the private
// address. Reachability rules model the NAT: participants cannot dial the
// private address directly, only the forwarded public one.

// DenyDialTo installs a link policy wrapper that refuses dials to the given
// address except from allowed source hosts — the "private address inside a
// LAN" of §3.2.1. It composes with any existing link policy.
func (n *Network) DenyDialTo(privateAddr string, allowedFrom ...string) {
	allowed := make(map[string]bool, len(allowedFrom))
	for _, h := range allowedFrom {
		allowed[h] = true
	}
	n.mu.Lock()
	prev := n.blocked
	n.blocked = func(fromHost, toAddr string) bool {
		if toAddr == privateAddr && !allowed[fromHost] {
			return true
		}
		if prev != nil {
			return prev(fromHost, toAddr)
		}
		return false
	}
	n.mu.Unlock()
}

// Forwarder relays connections from a public address to a private one — the
// NAT gateway's port-forwarding rule. It copies bytes in both directions
// and closes both sides when either ends.
type Forwarder struct {
	network     *Network
	gatewayHost string
	publicAddr  string
	privateAddr string

	listener *Listener
	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewForwarder starts forwarding publicAddr → privateAddr. gatewayHost is
// the network identity the gateway dials the private host from (it must be
// allowed through any DenyDialTo rule protecting the private address).
func (n *Network) NewForwarder(gatewayHost, publicAddr, privateAddr string) (*Forwarder, error) {
	l, err := n.Listen(publicAddr)
	if err != nil {
		return nil, err
	}
	f := &Forwarder{
		network:     n,
		gatewayHost: gatewayHost,
		publicAddr:  publicAddr,
		privateAddr: privateAddr,
		listener:    l,
		conns:       make(map[net.Conn]struct{}),
	}
	f.wg.Add(1)
	go f.acceptLoop()
	return f, nil
}

// Close stops accepting and tears down active relays.
func (f *Forwarder) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		f.wg.Wait()
		return
	}
	f.closed = true
	for c := range f.conns {
		c.Close()
	}
	f.mu.Unlock()
	f.listener.Close()
	f.wg.Wait()
}

func (f *Forwarder) acceptLoop() {
	defer f.wg.Done()
	for {
		outside, err := f.listener.Accept()
		if err != nil {
			return
		}
		inside, err := f.network.Dial(f.gatewayHost, f.privateAddr)
		if err != nil {
			outside.Close()
			continue
		}
		f.track(outside, inside)
	}
}

func (f *Forwarder) track(outside, inside net.Conn) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		outside.Close()
		inside.Close()
		return
	}
	f.conns[outside] = struct{}{}
	f.conns[inside] = struct{}{}
	f.wg.Add(2)
	f.mu.Unlock()
	relay := func(dst, src net.Conn) {
		defer f.wg.Done()
		_, _ = io.Copy(dst, src)
		dst.Close()
		src.Close()
		f.mu.Lock()
		delete(f.conns, src)
		f.mu.Unlock()
	}
	go relay(inside, outside)
	go relay(outside, inside)
}
