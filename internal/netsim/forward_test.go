package netsim

import (
	"io"
	"testing"
)

// startEcho runs a trivial echo server on addr.
func startEcho(t *testing.T, nw *Network, addr string) {
	t.Helper()
	l, err := nw.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(conn, conn)
				conn.Close()
			}()
		}
	}()
}

func echoOnce(nw *Network, from, to, msg string) (string, error) {
	conn, err := nw.Dial(from, to)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(msg)); err != nil {
		return "", err
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func TestDenyDialToBlocksOutsiders(t *testing.T) {
	nw := NewNetwork()
	startEcho(t, nw, "host.private:3000")
	nw.DenyDialTo("host.private:3000", "gateway.example", "host.private")

	if _, err := echoOnce(nw, "outsider.net", "host.private:3000", "x"); err == nil {
		t.Fatal("outsider reached the private address")
	}
	// The gateway and the host itself still can.
	if got, err := echoOnce(nw, "gateway.example", "host.private:3000", "hi"); err != nil || got != "hi" {
		t.Fatalf("gateway blocked: %q %v", got, err)
	}
}

func TestForwarderRelays(t *testing.T) {
	nw := NewNetwork()
	startEcho(t, nw, "host.private:3000")
	nw.DenyDialTo("host.private:3000", "gateway.example")

	fwd, err := nw.NewForwarder("gateway.example", "gateway.example:3000", "host.private:3000")
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()

	// An outsider reaches the private service via the forwarded port.
	got, err := echoOnce(nw, "outsider.net", "gateway.example:3000", "through the NAT")
	if err != nil || got != "through the NAT" {
		t.Fatalf("forwarded echo: %q %v", got, err)
	}
	// Direct access remains blocked.
	if _, err := echoOnce(nw, "outsider.net", "host.private:3000", "x"); err == nil {
		t.Fatal("direct access should remain blocked")
	}
}

func TestForwarderCloseStopsRelay(t *testing.T) {
	nw := NewNetwork()
	startEcho(t, nw, "host.private:3000")
	fwd, err := nw.NewForwarder("gateway.example", "gateway.example:3000", "host.private:3000")
	if err != nil {
		t.Fatal(err)
	}
	fwd.Close()
	if _, err := echoOnce(nw, "outsider.net", "gateway.example:3000", "x"); err == nil {
		t.Fatal("closed forwarder still accepting")
	}
	// Idempotent close.
	fwd.Close()
}

func TestForwarderToDeadPrivateHost(t *testing.T) {
	nw := NewNetwork()
	fwd, err := nw.NewForwarder("gateway.example", "gateway.example:3000", "nobody.private:1")
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()
	// The outside connection is accepted then dropped; reads see EOF or a
	// closed-connection error rather than a hang.
	conn, err := nw.Dial("outsider.net", "gateway.example:3000")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("expected error reading through a dead forward")
	}
}
