// Package experiment regenerates the paper's evaluation (§5.1): the six
// real-time metrics M1–M6 over the 20-site corpus in the LAN and WAN
// environments, producing Figures 6–8 and Table 1.
//
// Methodology (see DESIGN.md §2): the full RCB stack runs over instant
// virtual-network pipes while every HTTP transaction's exact wire bytes are
// recorded; transfer-time metrics (M1–M4) are then computed deterministically
// by replaying those transactions through netsim.LinkModel with the paper's
// link profiles. Processing-time metrics (M5, M6) are measured directly on
// the running implementation. Shapes — who wins, by what factor — are the
// reproduction target; absolute milliseconds differ from 2009 hardware.
package experiment

import (
	"bytes"
	"fmt"
	"time"

	"rcb/internal/browser"
	"rcb/internal/core"
	"rcb/internal/dom"
	"rcb/internal/httpwire"
	"rcb/internal/netsim"
	"rcb/internal/sites"
)

// Environment is one of the paper's two experimental settings.
type Environment struct {
	Name string
	// HostParticipant is the link between the co-browsing host and a
	// participant.
	HostParticipant netsim.Link
	// OriginLink gives the link between a browser (host or participant)
	// and a Table 1 origin server.
	OriginLink func(spec sites.SiteSpec) netsim.Link
	// ServerThink models the origin's page generation time — the dominant
	// first-byte delay of 2009 dynamic portals, calibrated per DESIGN.md so
	// the WAN M1/M2 crossover lands where the paper's Figure 7 puts it.
	// Static supplementary objects are served without think time.
	ServerThink func(spec sites.SiteSpec) time.Duration
	// Parallelism is the browser's concurrent object-fetch limit.
	Parallelism int
}

// originThink is the shared page-generation model: a fixed dispatch cost
// plus a per-kilobyte assembly cost (large 2009 portal pages were
// dynamically composed; generation scaled with page size).
func originThink(spec sites.SiteSpec) time.Duration {
	return 250*time.Millisecond + time.Duration(spec.PageKB*19)*time.Millisecond
}

// LAN reproduces the campus experiment: 100 Mbps Ethernet between the two
// PCs, fast campus uplink to the origins (per-site latency dominates).
var LAN = Environment{
	Name:            "LAN",
	HostParticipant: netsim.LAN,
	OriginLink: func(spec sites.SiteSpec) netsim.Link {
		return netsim.Link{
			Latency: time.Duration(spec.RTTMs) * time.Millisecond,
			UpBps:   1.25e6, // campus uplink, 10 Mbps per connection
			DownBps: 2.5e6,  // campus downlink, 20 Mbps per connection
		}
	},
	ServerThink: originThink,
	Parallelism: 4,
}

// WAN reproduces the residential experiment: both homes on 1.5 Mbps down /
// 384 Kbps up DSL. Host→participant traffic is bottlenecked by the host's
// 384 Kbps uplink — the asymmetry the paper calls out for Figure 7.
var WAN = Environment{
	Name: "WAN",
	HostParticipant: netsim.Link{
		Latency: 40 * time.Millisecond,
		UpBps:   48e3, // participant→host: participant's 384 Kbps uplink
		DownBps: 48e3, // host→participant: host's 384 Kbps uplink
	},
	OriginLink: func(spec sites.SiteSpec) netsim.Link {
		return netsim.Link{
			Latency: time.Duration(spec.RTTMs) * time.Millisecond,
			UpBps:   48e3,    // 384 Kbps residential uplink
			DownBps: 187.5e3, // 1.5 Mbps residential downlink
		}
	},
	ServerThink: originThink,
	Parallelism: 4,
}

// SiteResult holds every measured and modeled quantity for one site.
type SiteResult struct {
	Spec sites.SiteSpec

	// Modeled transfer times (Figures 6–8).
	M1 time.Duration // host loads HTML document from origin
	M2 time.Duration // participant syncs document content from host
	M3 time.Duration // participant downloads objects from origins (non-cache)
	M4 time.Duration // participant downloads objects from host (cache mode)

	// Measured processing times (Table 1).
	M5NonCache time.Duration // agent content generation, non-cache mode
	M5Cache    time.Duration // agent content generation, cache mode
	M6         time.Duration // snippet content application

	// Raw transactions backing the model (exported for ablations).
	DocTxn        netsim.Txn
	SyncTxn       netsim.Txn
	OriginObjTxns []netsim.Txn
	AgentObjTxns  []netsim.Txn
}

// Options tunes a run.
type Options struct {
	// Reps is how many times M5/M6 are measured; the minimum is reported
	// (least-noise estimator for deterministic work).
	Reps int
}

func (o Options) reps() int {
	if o.Reps <= 0 {
		return 3
	}
	return o.Reps
}

// RunSite produces the full metric set for one Table 1 site under env.
func RunSite(spec sites.SiteSpec, env Environment, opt Options) (*SiteResult, error) {
	corpus, err := sites.NewCorpus()
	if err != nil {
		return nil, err
	}
	defer corpus.Close()
	res := &SiteResult{Spec: spec}

	// --- Host loads the page; exact wire bytes are recorded. ---
	host := browser.New("host.lan", corpus.Network.Dialer("host.lan"))
	defer host.Close()
	agent := core.NewAgent(host, "host.lan:3000")
	agent.DefaultCacheMode = true
	l, err := corpus.Network.Listen("host.lan:3000")
	if err != nil {
		return nil, err
	}
	server := &httpwire.Server{Handler: agent}
	server.Start(l)
	defer server.Close()

	stats, err := host.Navigate("http://" + spec.Host() + "/")
	if err != nil {
		return nil, fmt.Errorf("experiment: host load %s: %w", spec.Name, err)
	}
	res.DocTxn = stats.DocTxn
	res.OriginObjTxns = stats.NetworkObjects()

	// --- Participant joins in cache mode and syncs once. ---
	pb := browser.New("alice.lan", corpus.Network.Dialer("alice.lan"))
	defer pb.Close()
	snip := core.NewSnippet(pb, "http://host.lan:3000", "")
	if err := snip.Join(); err != nil {
		return nil, err
	}
	syncTxn, err := measuredPoll(snip)
	if err != nil {
		return nil, err
	}
	res.SyncTxn = syncTxn

	// Render pass: the participant downloads the supplementary objects from
	// the agent (cache mode), yielding the M4 transactions.
	err = pb.WithDocument(func(pageURL string, doc *dom.Document) error {
		for _, f := range pb.RenderObjects(doc, pageURL) {
			if !f.FromCache {
				res.AgentObjTxns = append(res.AgentObjTxns, f.Txn)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// --- Transfer-time model (M1–M4). ---
	// M1 is a cold load from the origin: DNS (one RTT), TCP handshake,
	// request upload, server page generation, then a slow-start-limited
	// download. M2 rides the warm persistent polling connection to the
	// host: one round trip plus serialization — no DNS, no handshake, no
	// server think, no slow start. That asymmetry is the paper's Figure 6/7
	// story.
	origin := netsim.LinkModel{Link: env.OriginLink(spec)}
	direct := netsim.LinkModel{Link: env.HostParticipant}
	res.M1 = origin.RTT() + // DNS lookup
		origin.ConnSetup() +
		origin.RequestResponse(netsim.Txn{Up: res.DocTxn.Up}) +
		env.ServerThink(spec) +
		origin.ColdDownload(res.DocTxn.Down)
	if spec.HTTPS {
		// TLS origins pay a 2-RTT handshake on top of TCP setup. RCB
		// synchronizes HTTPS content exactly like HTTP (paper §1, "Web
		// contents hosted on HTTP or HTTPS Web servers can all be
		// synchronized"), so only M1 carries the cost.
		res.M1 += 2 * origin.RTT()
	}
	res.M2 = direct.RequestResponse(res.SyncTxn) // persistent poll connection
	res.M3 = origin.FetchParallel(res.OriginObjTxns, env.Parallelism)
	res.M4 = direct.FetchParallel(res.AgentObjTxns, env.Parallelism)

	// --- Processing-time measurements (M5, M6). ---
	res.M5NonCache = measureM5(agent, false, opt.reps())
	res.M5Cache = measureM5(agent, true, opt.reps())
	m6, err := measureM6(agent, opt.reps())
	if err != nil {
		return nil, err
	}
	res.M6 = m6
	return res, nil
}

// measuredPoll performs one poll and reconstructs its exact wire bytes by
// replaying the request/response serialization.
func measuredPoll(snip *core.Snippet) (netsim.Txn, error) {
	// Disable object fetching during the document sync measurement; objects
	// are measured separately (M3/M4) — matching the paper's metric split.
	snip.FetchObjects = false
	updated, err := snip.PollOnce()
	if err != nil {
		return netsim.Txn{}, err
	}
	if !updated {
		return netsim.Txn{}, fmt.Errorf("experiment: sync poll carried no content")
	}
	snip.FetchObjects = true
	// Re-fetch the same content to size the response, and rebuild the
	// request the snippet sent (ts=0 on the first poll).
	prep, err := agentContentSize(snip)
	if err != nil {
		return netsim.Txn{}, err
	}
	reqBytes := pollRequestBytes()
	return netsim.Txn{Up: reqBytes, Down: prep}, nil
}

// agentContentSize measures the full HTTP response size of the content the
// snippet just applied, by re-serializing it.
func agentContentSize(snip *core.Snippet) (int, error) {
	var doc *dom.Document
	err := snip.Browser.WithDocument(func(_ string, d *dom.Document) error {
		doc = d
		return nil
	})
	if err != nil {
		return 0, err
	}
	content := core.ContentFromDocument(doc.Root.Clone(), snip.DocTime())
	resp := httpwire.NewResponse(200, "application/xml", content.Marshal())
	var buf bytes.Buffer
	if err := httpwire.WriteResponse(&buf, resp); err != nil {
		return 0, err
	}
	return buf.Len(), nil
}

// pollRequestBytes sizes a first-poll request as the snippet sends it.
func pollRequestBytes() int {
	req := httpwire.NewRequest("POST", "/poll")
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("Cookie", "rcbpid=p1")
	req.Body = []byte("ts=0")
	var buf bytes.Buffer
	_ = httpwire.WriteRequest(&buf, req)
	return buf.Len()
}

// measureM5 times agent content generation (Figure 3 pipeline), reporting
// the minimum over reps runs.
func measureM5(agent *core.Agent, cacheMode bool, reps int) time.Duration {
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		prep, err := agent.BuildContent(cacheMode)
		if err != nil {
			return 0
		}
		d := prep.GenTime()
		if best == 0 || d < best {
			best = d
		}
	}
	return best
}

// measureM6 times the snippet-side content application (Figure 5 pipeline)
// against a fresh initial document each repetition.
func measureM6(agent *core.Agent, reps int) (time.Duration, error) {
	prep, err := agent.BuildContent(false)
	if err != nil {
		return 0, err
	}
	content, err := core.Unmarshal(prep.XML())
	if err != nil {
		return 0, err
	}
	var best time.Duration
	for i := 0; i < reps; i++ {
		doc := freshParticipantDocument()
		start := time.Now()
		if err := core.ApplyContentToDocument(doc, content); err != nil {
			return 0, err
		}
		d := time.Since(start)
		if best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// freshParticipantDocument parses the initial RCB page the way a joining
// participant holds it before the first update.
func freshParticipantDocument() *dom.Document {
	return dom.Parse(`<!DOCTYPE html><html><head><title>RCB Session</title>` +
		`<script id="rcb-ajax-snippet">/*snippet*/</script></head>` +
		`<body><div id="rcb-status">Connecting...</div></body></html>`)
}

// RunAll runs every Table 1 site under env.
func RunAll(env Environment, opt Options) ([]*SiteResult, error) {
	out := make([]*SiteResult, 0, len(sites.Table1))
	for _, spec := range sites.Table1 {
		r, err := RunSite(spec, env, opt)
		if err != nil {
			return nil, fmt.Errorf("experiment: site %s: %w", spec.Name, err)
		}
		out = append(out, r)
	}
	return out, nil
}
