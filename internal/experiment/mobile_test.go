package experiment

import (
	"strings"
	"testing"
	"time"

	"rcb/internal/sites"
)

func TestRunMobileScalesProcessing(t *testing.T) {
	spec, _ := sites.SiteByName("google.com")
	desktop, err := RunSite(spec, LAN, Options{Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	mobile, err := RunMobile(spec, N810, Options{Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Device CPU scaling inflates processing by roughly the profile factor.
	ratio := float64(mobile.M5NonCache) / float64(desktop.M5NonCache)
	if ratio < 10 || ratio > 160 {
		t.Errorf("M5 scaling ratio = %.1f, want near %.0f", ratio, N810.CPUFactor)
	}
	if mobile.M6 <= desktop.M6 {
		t.Error("mobile M6 must exceed desktop M6")
	}
}

func TestMobileStaysInteractive(t *testing.T) {
	// The paper's qualitative claim: RCB "can also efficiently support
	// co-browsing using mobile devices".
	for _, name := range []string{"google.com", "msn.com", "yahoo.com"} {
		spec, _ := sites.SiteByName(name)
		r, err := RunMobile(spec, N810, Options{Reps: 2})
		if err != nil {
			t.Fatal(err)
		}
		if total := r.M2 + r.M5NonCache + r.M6; total >= time.Second {
			t.Errorf("%s: mobile sync+processing = %v, not interactive", name, total)
		}
	}
}

func TestWriteMobile(t *testing.T) {
	var b strings.Builder
	if err := WriteMobile(&b, []string{"google.com"}, N810, Options{Reps: 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "N810") || !strings.Contains(b.String(), "google.com") {
		t.Errorf("mobile output:\n%s", b.String())
	}
	if err := WriteMobile(&b, []string{"nope.example"}, N810, Options{Reps: 1}); err == nil {
		t.Error("unknown site must error")
	}
}

func TestHTTPSSitesPayHandshake(t *testing.T) {
	// live.com is HTTPS (20.9KB, 20ms RTT); its M1 must include the 2-RTT
	// TLS handshake relative to an otherwise-similar HTTP site.
	https, _ := sites.SiteByName("live.com")
	r, err := RunSite(https, LAN, Options{Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the model terms without TLS and check the difference.
	origin := LAN.OriginLink(https)
	wantExtra := 4 * origin.Latency // 2 RTTs
	nonTLS := r.M1 - wantExtra
	if nonTLS <= 0 {
		t.Fatalf("M1 = %v smaller than TLS surcharge %v", r.M1, wantExtra)
	}
}
