package experiment

import (
	"strings"
	"testing"
	"time"

	"rcb/internal/sites"
)

// runSiteOnce caches a small per-test-binary result set: RunSite is the
// expensive full-stack pipeline and several tests inspect the same outputs.
var (
	cachedLAN map[string]*SiteResult
	cachedWAN map[string]*SiteResult
)

func siteResult(t *testing.T, name string, env Environment) *SiteResult {
	t.Helper()
	cache := &cachedLAN
	if env.Name == "WAN" {
		cache = &cachedWAN
	}
	if *cache == nil {
		*cache = make(map[string]*SiteResult)
	}
	if r, ok := (*cache)[name]; ok {
		return r
	}
	spec, ok := sites.SiteByName(name)
	if !ok {
		t.Fatalf("no site %s", name)
	}
	r, err := RunSite(spec, env, Options{Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	(*cache)[name] = r
	return r
}

func TestRunSiteProducesAllMetrics(t *testing.T) {
	r := siteResult(t, "google.com", LAN)
	if r.M1 <= 0 || r.M2 <= 0 || r.M3 <= 0 || r.M4 <= 0 {
		t.Fatalf("transfer metrics missing: %+v", r)
	}
	if r.M5NonCache <= 0 || r.M5Cache <= 0 || r.M6 <= 0 {
		t.Fatalf("processing metrics missing: %+v", r)
	}
	if r.DocTxn.Down <= r.Spec.PageBytes() {
		t.Errorf("doc txn %d bytes, must exceed page size %d", r.DocTxn.Down, r.Spec.PageBytes())
	}
	if len(r.OriginObjTxns) == 0 || len(r.AgentObjTxns) == 0 {
		t.Fatal("object transactions missing")
	}
}

func TestLANSyncBeatsDirectLoad(t *testing.T) {
	// Figure 6's claim on a representative pair of sites: a small page and
	// the largest page.
	for _, name := range []string{"google.com", "amazon.com"} {
		r := siteResult(t, name, LAN)
		if r.M2 >= r.M1 {
			t.Errorf("%s: LAN M2 (%v) >= M1 (%v)", name, r.M2, r.M1)
		}
		if r.M2 >= 400*time.Millisecond {
			t.Errorf("%s: LAN M2 = %v, paper bound is 0.4s", name, r.M2)
		}
	}
}

func TestLANCacheModeBeatsOrigin(t *testing.T) {
	// Figure 8's claim.
	for _, name := range []string{"google.com", "cnn.com"} {
		r := siteResult(t, name, LAN)
		if r.M4 >= r.M3 {
			t.Errorf("%s: LAN M4 (%v) >= M3 (%v)", name, r.M4, r.M3)
		}
	}
}

func TestWANSyncSlowerThanLAN(t *testing.T) {
	lan := siteResult(t, "google.com", LAN)
	wan := siteResult(t, "google.com", WAN)
	if wan.M2 <= lan.M2 {
		t.Errorf("WAN M2 (%v) should exceed LAN M2 (%v)", wan.M2, lan.M2)
	}
}

func TestWANCrossover(t *testing.T) {
	// Figure 7 shows M1 < M2 for a few sites. In our calibration those are
	// the largest US-hosted pages, where pushing the inflated document
	// through the host's 384 Kbps uplink costs more than a direct load:
	// amazon.com (228.5 KB) is the canonical loser.
	r := siteResult(t, "amazon.com", WAN)
	if r.M2 < r.M1 {
		t.Errorf("amazon.com WAN: M2 (%v) < M1 (%v); expected direct load to win on the largest page", r.M2, r.M1)
	}
	// Sync still wins for small pages and for far-away origins.
	for _, name := range []string{"google.com", "mail.ru", "yahoo.co.jp"} {
		w := siteResult(t, name, WAN)
		if w.M2 >= w.M1 {
			t.Errorf("%s WAN: M2 (%v) >= M1 (%v); sync should win here", name, w.M2, w.M1)
		}
	}
}

func TestM5ScalesWithPageSize(t *testing.T) {
	small := siteResult(t, "google.com", LAN) // 6.8 KB
	large := siteResult(t, "amazon.com", LAN) // 228.5 KB
	if large.M5NonCache <= small.M5NonCache {
		t.Errorf("M5 did not grow with page size: %v (228KB) vs %v (6.8KB)",
			large.M5NonCache, small.M5NonCache)
	}
}

func TestM6Bounded(t *testing.T) {
	r := siteResult(t, "amazon.com", LAN)
	if r.M6 >= time.Second/3 {
		t.Errorf("M6 = %v, paper bound is one third of a second", r.M6)
	}
}

func TestReportFormatting(t *testing.T) {
	r := siteResult(t, "google.com", LAN)
	results := []*SiteResult{r}
	var b strings.Builder
	WriteFigure67(&b, "LAN", results)
	if !strings.Contains(b.String(), "google.com") || !strings.Contains(b.String(), "M2<M1") {
		t.Errorf("figure output:\n%s", b.String())
	}
	b.Reset()
	WriteFigure8(&b, "LAN", results)
	if !strings.Contains(b.String(), "M4<M3") {
		t.Errorf("figure 8 output:\n%s", b.String())
	}
	b.Reset()
	WriteTable1(&b, results)
	if !strings.Contains(b.String(), "6.8") {
		t.Errorf("table 1 output:\n%s", b.String())
	}
}

func TestShapeChecksDetectFailures(t *testing.T) {
	r := siteResult(t, "google.com", LAN)
	// A copy with sabotaged metrics must fail the checks.
	bad := *r
	bad.M2 = bad.M1 * 2
	lines := ShapeChecks([]*SiteResult{&bad}, []*SiteResult{&bad})
	if AllPass(lines) {
		t.Fatal("sabotaged results passed shape checks")
	}
	found := false
	for _, l := range lines {
		if strings.HasPrefix(l, "[FAIL]") && strings.Contains(l, "M2 < M1") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a FAIL line about M2<M1, got: %v", lines)
	}
}
