package experiment

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// secs renders a duration the way the paper's tables do (seconds, 3
// decimals).
func secs(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

// WriteFigure67 renders the M1-vs-M2 comparison of Figure 6 (LAN) or
// Figure 7 (WAN): per-site document load time against synchronization time,
// with the paper's headline ratio.
func WriteFigure67(w io.Writer, env string, results []*SiteResult) {
	fmt.Fprintf(w, "Figure (%s): HTML document load time — M1 (direct load) vs M2 (RCB sync)\n", env)
	fmt.Fprintf(w, "%-3s %-15s %10s %10s %8s\n", "#", "site", "M1 (s)", "M2 (s)", "M2<M1")
	fmt.Fprintln(w, strings.Repeat("-", 52))
	wins := 0
	for _, r := range results {
		faster := r.M2 < r.M1
		if faster {
			wins++
		}
		fmt.Fprintf(w, "%-3d %-15s %10s %10s %8v\n",
			r.Spec.Index, r.Spec.Name, secs(r.M1), secs(r.M2), faster)
	}
	fmt.Fprintf(w, "M2 faster than M1 on %d/%d sites\n", wins, len(results))
}

// WriteFigure8 renders the cache-mode object download comparison of
// Figure 8: M3 (from origin) vs M4 (from host cache).
func WriteFigure8(w io.Writer, env string, results []*SiteResult) {
	fmt.Fprintf(w, "Figure 8 (%s): supplementary object download — M3 (origin) vs M4 (host cache)\n", env)
	fmt.Fprintf(w, "%-3s %-15s %10s %10s %8s\n", "#", "site", "M3 (s)", "M4 (s)", "M4<M3")
	fmt.Fprintln(w, strings.Repeat("-", 52))
	wins := 0
	for _, r := range results {
		faster := r.M4 < r.M3
		if faster {
			wins++
		}
		fmt.Fprintf(w, "%-3d %-15s %10s %10s %8v\n",
			r.Spec.Index, r.Spec.Name, secs(r.M3), secs(r.M4), faster)
	}
	fmt.Fprintf(w, "cache mode faster on %d/%d sites\n", wins, len(results))
}

// WriteTable1 renders Table 1: page size and the processing metrics. The
// paper printed seconds; 2009 JavaScript took 15–700 ms where this Go
// implementation takes tens of microseconds to milliseconds, so the unit
// here is milliseconds.
func WriteTable1(w io.Writer, results []*SiteResult) {
	fmt.Fprintln(w, "Table 1: homepage size and processing time of 20 sites")
	fmt.Fprintf(w, "%-3s %-15s %10s %17s %13s %10s\n",
		"#", "site", "size (KB)", "M5 non-cache (ms)", "M5 cache (ms)", "M6 (ms)")
	fmt.Fprintln(w, strings.Repeat("-", 74))
	for _, r := range results {
		fmt.Fprintf(w, "%-3d %-15s %10.1f %17.3f %13.3f %10.3f\n",
			r.Spec.Index, r.Spec.Name, r.Spec.PageKB,
			ms(r.M5NonCache), ms(r.M5Cache), ms(r.M6))
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// ShapeChecks verifies the paper's ordering claims against a result set and
// returns human-readable pass/fail lines. It powers both EXPERIMENTS.md and
// the regression tests: the reproduction is considered faithful when every
// check passes.
func ShapeChecks(lan, wan []*SiteResult) []string {
	var out []string
	check := func(name string, ok bool) {
		status := "PASS"
		if !ok {
			status = "FAIL"
		}
		out = append(out, fmt.Sprintf("[%s] %s", status, name))
	}

	// Figure 6: in the LAN, M2 < M1 on every site and M2 < 0.4 s.
	lanAll := true
	lanBound := true
	for _, r := range lan {
		if r.M2 >= r.M1 {
			lanAll = false
		}
		if r.M2 >= 400*time.Millisecond {
			lanBound = false
		}
	}
	check("LAN: M2 < M1 for all 20 sites (Figure 6)", lanAll)
	check("LAN: M2 < 0.4s for all 20 sites (Figure 6)", lanBound)

	// Figure 7: in the WAN, M2 < M1 for most (paper: 17/20) sites.
	wanWins := 0
	for _, r := range wan {
		if r.M2 < r.M1 {
			wanWins++
		}
	}
	check(fmt.Sprintf("WAN: M2 < M1 for most sites (got %d/20, paper 17/20)", wanWins),
		wanWins >= 14 && wanWins < 20)

	// Figure 8: cache mode wins on every site in the LAN.
	cacheAll := true
	for _, r := range lan {
		if r.M4 >= r.M3 {
			cacheAll = false
		}
	}
	check("LAN: M4 < M3 for all 20 sites (Figure 8)", cacheAll)

	// Table 1: M5 grows with page size (largest page slowest), M6 bounded
	// by a third of a second. The paper's third Table 1 observation —
	// "M5 cache > M5 non-cache" — was caused by Mozilla's cache service
	// lookup cost, which this substrate's map-based cache does not
	// reproduce (a documented deviation, see EXPERIMENTS.md); the honest
	// transferable claim is that the two modes cost about the same here.
	var largest, smallest *SiteResult
	m6Bounded := true
	var m5NC, m5C time.Duration
	for _, r := range lan {
		if largest == nil || r.Spec.PageKB > largest.Spec.PageKB {
			largest = r
		}
		if smallest == nil || r.Spec.PageKB < smallest.Spec.PageKB {
			smallest = r
		}
		m5NC += r.M5NonCache
		m5C += r.M5Cache
		if r.M6 >= time.Second/3 {
			m6Bounded = false
		}
	}
	check("Table 1: M5 larger for largest page than smallest",
		largest.M5NonCache > smallest.M5NonCache)
	ratio := float64(m5C) / float64(m5NC)
	check(fmt.Sprintf("Table 1 (deviation, see EXPERIMENTS.md): M5 cache ~= M5 non-cache on this substrate (ratio %.2f)", ratio),
		ratio > 0.5 && ratio < 2.0)
	check("Table 1: M6 < 1/3 s for all sites", m6Bounded)
	return out
}

// AllPass reports whether every shape check line passed.
func AllPass(lines []string) bool {
	for _, l := range lines {
		if strings.HasPrefix(l, "[FAIL]") {
			return false
		}
	}
	return true
}
