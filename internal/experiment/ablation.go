package experiment

import (
	"fmt"
	"io"
	"strings"
	"time"

	"rcb/internal/browser"
	"rcb/internal/core"
	"rcb/internal/httpwire"
	"rcb/internal/netsim"
	"rcb/internal/sites"
)

// Ablations for the design decisions of paper §3.2: the poll-based
// synchronization model (interval choice; the rejected
// multipart/x-mixed-replace push alternative), the direct communication
// model under participant fan-out, and the §3.4 HMAC authentication cost.

// PollIntervalPoint is one row of the poll-interval sweep.
type PollIntervalPoint struct {
	Interval time.Duration
	// MeanStaleness is the expected lag between a host-side change and the
	// participant seeing it: half the interval (uniform arrival) plus the
	// content transfer time.
	MeanStaleness time.Duration
	// IdleBytesPerSec is the keep-alive overhead when nothing changes.
	IdleBytesPerSec float64
}

// emptyPollTxn sizes an idle poll exchange (request plus empty response) by
// serializing both messages.
func emptyPollTxn() netsim.Txn {
	return netsim.Txn{Up: pollRequestBytes(), Down: emptyPollResponseBytes()}
}

func emptyPollResponseBytes() int {
	// An empty-content 200 with application/xml type, as RCB-Agent sends.
	return len("HTTP/1.1 200 OK\r\nContent-Length: 0\r\nContent-Type: application/xml\r\n\r\n")
}

// SweepPollInterval evaluates the staleness/overhead trade-off of the
// poll-based synchronization model for one site's sync transfer under env.
// The paper fixes the interval at one second because "users' average think
// time on a webpage is about ten seconds"; the sweep shows what that choice
// buys and costs.
func SweepPollInterval(syncTxn netsim.Txn, env Environment, intervals []time.Duration) []PollIntervalPoint {
	direct := netsim.LinkModel{Link: env.HostParticipant}
	transfer := direct.RequestResponse(syncTxn)
	idle := emptyPollTxn()
	out := make([]PollIntervalPoint, 0, len(intervals))
	for _, iv := range intervals {
		pollsPerSec := float64(time.Second) / float64(iv)
		out = append(out, PollIntervalPoint{
			Interval:        iv,
			MeanStaleness:   iv/2 + transfer,
			IdleBytesPerSec: pollsPerSec * float64(idle.Up+idle.Down),
		})
	}
	return out
}

// PushVsPoll compares the poll model against the multipart/x-mixed-replace
// push alternative the paper rejects (§3.2.3): push removes the half-
// interval staleness but keeps a response stream open per participant and
// loses the piggybacking of participant actions (which then need their own
// request channel, doubling connection state). The comparison quantifies
// the latency cost RCB accepts for that simplicity.
type PushVsPollResult struct {
	PollStaleness time.Duration // interval/2 + transfer
	PushStaleness time.Duration // transfer only
	// ExtraConnectionsPerParticipant is the connection-state cost of push:
	// the held-open response stream plus a separate action channel.
	ExtraConnectionsPerParticipant int
}

// ComparePushVsPoll evaluates both models for one sync transfer.
func ComparePushVsPoll(syncTxn netsim.Txn, env Environment, interval time.Duration) PushVsPollResult {
	direct := netsim.LinkModel{Link: env.HostParticipant}
	transfer := direct.RequestResponse(syncTxn)
	return PushVsPollResult{
		PollStaleness:                  interval/2 + transfer,
		PushStaleness:                  transfer,
		ExtraConnectionsPerParticipant: 1,
	}
}

// FanoutPoint is one row of the participant-scaling ablation.
type FanoutPoint struct {
	Participants int
	// GenerationTime is the one-off content generation cost (paid once,
	// reused for all participants — the paper's §4.1.2 reuse claim).
	GenerationTime time.Duration
	// ServeCPUTime is the measured host-side time to answer all N polls.
	ServeCPUTime time.Duration
	// UplinkTime is the modeled time to push N copies of the content
	// through the host's uplink — the real scaling bottleneck.
	UplinkTime time.Duration
}

// MeasureFanout runs a real agent with n participants polling a fresh page
// and reports where the cost grows: generation is constant, uplink is
// linear.
func MeasureFanout(spec sites.SiteSpec, env Environment, counts []int) ([]FanoutPoint, error) {
	out := make([]FanoutPoint, 0, len(counts))
	for _, n := range counts {
		point, err := measureFanoutOnce(spec, env, n)
		if err != nil {
			return nil, err
		}
		out = append(out, *point)
	}
	return out, nil
}

func measureFanoutOnce(spec sites.SiteSpec, env Environment, n int) (*FanoutPoint, error) {
	corpus, err := sites.NewCorpus()
	if err != nil {
		return nil, err
	}
	defer corpus.Close()
	host := browser.New("host.lan", corpus.Network.Dialer("host.lan"))
	defer host.Close()
	agent := core.NewAgent(host, "host.lan:3000")
	l, err := corpus.Network.Listen("host.lan:3000")
	if err != nil {
		return nil, err
	}
	server := &httpwire.Server{Handler: agent}
	server.Start(l)
	defer server.Close()
	if _, err := host.Navigate("http://" + spec.Host() + "/"); err != nil {
		return nil, err
	}

	snippets := make([]*core.Snippet, n)
	for i := range snippets {
		pb := browser.New(fmt.Sprintf("p%d.lan", i), corpus.Network.Dialer(fmt.Sprintf("p%d.lan", i)))
		defer pb.Close()
		snippets[i] = core.NewSnippet(pb, "http://host.lan:3000", "")
		snippets[i].FetchObjects = false
		if err := snippets[i].Join(); err != nil {
			return nil, err
		}
	}

	prep, err := agent.BuildContent(false)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	for _, s := range snippets {
		if _, err := s.PollOnce(); err != nil {
			return nil, err
		}
	}
	serve := time.Since(start)

	direct := netsim.LinkModel{Link: env.HostParticipant}
	respBytes := len(prep.XML())
	uplink := time.Duration(0)
	for i := 0; i < n; i++ {
		uplink += direct.RequestResponse(netsim.Txn{Up: pollRequestBytes(), Down: respBytes})
	}
	return &FanoutPoint{
		Participants:   n,
		GenerationTime: prep.GenTime(),
		ServeCPUTime:   serve,
		UplinkTime:     uplink,
	}, nil
}

// HMACOverhead measures the cost of the §3.4 request authentication: the
// time to sign and verify one polling request, to relate against M5.
type HMACOverheadResult struct {
	SignTime   time.Duration
	VerifyTime time.Duration
}

// MeasureHMACOverhead times reps sign+verify cycles and returns per-op
// minimums.
func MeasureHMACOverhead(reps int) HMACOverheadResult {
	auth := core.NewAuthenticator(core.NewSessionKey())
	body := []byte("ts=1234567890&actions=%5B%7B%22kind%22%3A%22click%22%7D%5D")
	var signBest, verifyBest time.Duration
	for i := 0; i < reps; i++ {
		s0 := time.Now()
		signed := auth.Sign("POST", "/poll", body)
		d := time.Since(s0)
		if signBest == 0 || d < signBest {
			signBest = d
		}
		v0 := time.Now()
		if !auth.Verify("POST", signed, body) {
			panic("experiment: HMAC self-verification failed")
		}
		d = time.Since(v0)
		if verifyBest == 0 || d < verifyBest {
			verifyBest = d
		}
	}
	return HMACOverheadResult{SignTime: signBest, VerifyTime: verifyBest}
}

// WriteAblations renders every ablation for one representative site.
func WriteAblations(w io.Writer, site string, env Environment) error {
	spec, ok := sites.SiteByName(site)
	if !ok {
		return fmt.Errorf("experiment: no site %q", site)
	}
	res, err := RunSite(spec, env, Options{Reps: 3})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "Ablation: poll interval sweep (%s, %s)\n", site, env.Name)
	fmt.Fprintf(w, "%-10s %16s %18s\n", "interval", "mean staleness", "idle overhead B/s")
	fmt.Fprintln(w, strings.Repeat("-", 48))
	intervals := []time.Duration{100 * time.Millisecond, 250 * time.Millisecond,
		500 * time.Millisecond, time.Second, 2 * time.Second, 5 * time.Second}
	for _, p := range SweepPollInterval(res.SyncTxn, env, intervals) {
		fmt.Fprintf(w, "%-10s %16s %18.0f\n", p.Interval, p.MeanStaleness.Round(time.Millisecond), p.IdleBytesPerSec)
	}

	pp := ComparePushVsPoll(res.SyncTxn, env, time.Second)
	fmt.Fprintf(w, "\nAblation: poll vs multipart push (%s, %s, 1s interval)\n", site, env.Name)
	fmt.Fprintf(w, "  poll staleness: %s   push staleness: %s   extra connections under push: %d/participant\n",
		pp.PollStaleness.Round(time.Millisecond), pp.PushStaleness.Round(time.Millisecond),
		pp.ExtraConnectionsPerParticipant)

	fmt.Fprintf(w, "\nAblation: participant fan-out (%s, %s)\n", site, env.Name)
	fmt.Fprintf(w, "%-4s %14s %14s %14s\n", "N", "generation", "serve CPU", "uplink (model)")
	fmt.Fprintln(w, strings.Repeat("-", 50))
	points, err := MeasureFanout(spec, env, []int{1, 2, 4, 8, 16})
	if err != nil {
		return err
	}
	for _, p := range points {
		fmt.Fprintf(w, "%-4d %14s %14s %14s\n", p.Participants,
			p.GenerationTime.Round(time.Microsecond),
			p.ServeCPUTime.Round(time.Microsecond),
			p.UplinkTime.Round(time.Millisecond))
	}

	h := MeasureHMACOverhead(100)
	fmt.Fprintf(w, "\nAblation: HMAC request authentication\n")
	fmt.Fprintf(w, "  sign: %s   verify: %s   (vs M5 non-cache %s — auth is noise)\n",
		h.SignTime, h.VerifyTime, res.M5NonCache)
	return nil
}
