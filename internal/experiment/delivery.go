package experiment

// Delivery-mode ablation: interval polling (the paper's §3.2.3 choice)
// against the hanging-GET long-poll channel, measured over the real stack —
// live agent, wire server, snippet Run loop — rather than the analytic link
// model. Where SweepPollInterval computes the staleness floor of the poll
// model, MeasureDelivery demonstrates it and shows long-poll dropping below
// it: the participant sees a host change after transfer time, not after
// interval/2, while idle request traffic falls from one poll per interval
// to one per max-hang.

import (
	"fmt"
	"time"

	"rcb/internal/browser"
	"rcb/internal/core"
	"rcb/internal/dom"
	"rcb/internal/httpwire"
	"rcb/internal/sites"
)

// DeliveryResult is one measured delivery-mode run.
type DeliveryResult struct {
	Mode string `json:"mode"` // "interval" or "longpoll"
	// Interval is the snippet's PollInterval (pacing in interval mode,
	// retry backoff in long-poll mode).
	Interval time.Duration `json:"interval_ns"`
	// Wait is the per-request hang requested in long-poll mode (0 for
	// interval mode).
	Wait    time.Duration `json:"wait_ns"`
	Changes int           `json:"changes"`
	// MeanStaleness and MaxStaleness measure host-change-to-participant-
	// applied latency across the changes.
	MeanStaleness time.Duration `json:"mean_staleness_ns"`
	MaxStaleness  time.Duration `json:"max_staleness_ns"`
	// Polls counts every polling request the snippet issued during the
	// run; IdlePolls counts just those issued during the trailing idle
	// window, the keep-alive overhead of the mode.
	Polls      int64         `json:"polls"`
	IdlePolls  int64         `json:"idle_polls"`
	IdleWindow time.Duration `json:"idle_window_ns"`
	// Builds counts Figure 3 pipeline runs — with single-flight delivery
	// this stays at one per change regardless of participant count.
	Builds   int64         `json:"builds"`
	Duration time.Duration `json:"duration_ns"`
}

// DeliveryOptions shapes one MeasureDelivery run.
type DeliveryOptions struct {
	// Interval is the snippet poll interval (interval mode pacing).
	Interval time.Duration
	// Wait is the long-poll hang per request (long-poll mode only).
	Wait time.Duration
	// Changes is how many host document changes to measure.
	Changes int
	// Gap is the settle time before each change.
	Gap time.Duration
	// Idle, when positive, holds the session idle after the last change
	// and counts the polls issued in that window.
	Idle time.Duration
}

// MeasureDelivery runs one co-browsing session over the virtual network in
// the given delivery mode, applies a series of host document changes, and
// measures how stale each change was by the time the participant applied
// it, plus the request traffic the mode cost.
func MeasureDelivery(spec sites.SiteSpec, mode core.DeliveryMode, opt DeliveryOptions) (*DeliveryResult, error) {
	corpus, err := sites.NewCorpus()
	if err != nil {
		return nil, err
	}
	defer corpus.Close()
	host := browser.New("host.lan", corpus.Network.Dialer("host.lan"))
	defer host.Close()
	agent := core.NewAgent(host, "host.lan:3000")
	defer agent.Close()
	l, err := corpus.Network.Listen("host.lan:3000")
	if err != nil {
		return nil, err
	}
	server := &httpwire.Server{Handler: agent}
	server.Start(l)
	defer server.Close()
	if _, err := host.Navigate("http://" + spec.Host() + "/"); err != nil {
		return nil, err
	}

	pb := browser.New("alice.lan", corpus.Network.Dialer("alice.lan"))
	defer pb.Close()
	snip := core.NewSnippet(pb, "http://host.lan:3000", "")
	snip.FetchObjects = false
	snip.PollInterval = opt.Interval
	snip.Delivery = mode
	snip.LongPollWait = opt.Wait
	if err := snip.Join(); err != nil {
		return nil, err
	}

	stop := make(chan struct{})
	defer close(stop)
	go snip.Run(stop, nil)

	label := "interval"
	if mode == core.DeliveryLongPoll {
		label = "longpoll"
	}
	res := &DeliveryResult{
		Mode:       label,
		Interval:   opt.Interval,
		Wait:       opt.Wait,
		Changes:    opt.Changes,
		IdleWindow: opt.Idle,
	}
	start := time.Now()
	for i := 0; i < opt.Changes; i++ {
		// Settle: in long-poll mode wait until the snippet has re-parked,
		// so the change exercises the push path; in interval mode add a
		// varying phase offset so changes sample the whole poll cycle
		// uniformly instead of locking to it.
		if mode == core.DeliveryLongPoll {
			if err := waitCond(10*time.Second, func() bool { return agent.ParkedPolls() == 1 }); err != nil {
				return nil, fmt.Errorf("experiment: change %d: %w", i, err)
			}
			time.Sleep(opt.Gap)
		} else {
			time.Sleep(opt.Gap + time.Duration(i)*opt.Interval/time.Duration(max(opt.Changes, 1)))
		}

		before := snip.Stats().ContentPolls
		t0 := time.Now()
		if err := bumpHostDoc(host, i); err != nil {
			return nil, err
		}
		if err := waitCond(30*time.Second, func() bool { return snip.Stats().ContentPolls > before }); err != nil {
			return nil, fmt.Errorf("experiment: change %d never reached the participant: %w", i, err)
		}
		staleness := time.Since(t0)
		res.MeanStaleness += staleness
		if staleness > res.MaxStaleness {
			res.MaxStaleness = staleness
		}
	}
	if opt.Changes > 0 {
		res.MeanStaleness /= time.Duration(opt.Changes)
	}
	if opt.Idle > 0 {
		idleStart := snip.Stats().Polls
		time.Sleep(opt.Idle)
		res.IdlePolls = snip.Stats().Polls - idleStart
	}
	res.Duration = time.Since(start)
	res.Polls = snip.Stats().Polls
	res.Builds = agent.ContentBuilds()
	return res, nil
}

// bumpHostDoc applies the canonical ablation mutation: one body attribute
// write that advances the host document version.
func bumpHostDoc(host *browser.Browser, tick int) error {
	return host.ApplyMutation(func(doc *dom.Document) error {
		doc.Body().SetAttr("data-delivery-tick", fmt.Sprint(tick))
		return nil
	})
}

// waitCond polls cond every 200µs until it holds or the deadline passes.
func waitCond(timeout time.Duration, cond func() bool) error {
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			return fmt.Errorf("condition not reached within %v", timeout)
		}
		time.Sleep(200 * time.Microsecond)
	}
	return nil
}
