package experiment

// Delivery-mode ablation: interval polling (the paper's §3.2.3 choice)
// against the hanging-GET long-poll channel, measured over the real stack —
// live agent, wire server, snippet Run loop — rather than the analytic link
// model. Where SweepPollInterval computes the staleness floor of the poll
// model, MeasureDelivery demonstrates it and shows long-poll dropping below
// it: the participant sees a host change after transfer time, not after
// interval/2, while idle request traffic falls from one poll per interval
// to one per max-hang.
//
// The run also measures the upstream direction: a participant fires pointer
// actions and a second (mirror) participant times how long each takes to
// arrive. Piggyback upstream waits for the sender's next request cycle —
// interval/2 on average in interval mode, and up to the full remaining hang
// when the sender's long-poll is parked — while the fire-and-forget action
// push (Snippet.ActionPush) delivers in transfer time.

import (
	"fmt"
	"net"
	"sync"
	"time"

	"rcb/internal/browser"
	"rcb/internal/core"
	"rcb/internal/dom"
	"rcb/internal/httpwire"
	"rcb/internal/netsim"
	"rcb/internal/sites"
)

// DeliveryResult is one measured delivery-mode run.
type DeliveryResult struct {
	Mode string `json:"mode"` // "interval" or "longpoll"
	// Interval is the snippet's PollInterval (pacing in interval mode,
	// retry backoff in long-poll mode).
	Interval time.Duration `json:"interval_ns"`
	// Wait is the per-request hang requested in long-poll mode (0 for
	// interval mode).
	Wait    time.Duration `json:"wait_ns"`
	Changes int           `json:"changes"`
	// MeanStaleness and MaxStaleness measure host-change-to-participant-
	// applied latency across the changes.
	MeanStaleness time.Duration `json:"mean_staleness_ns"`
	MaxStaleness  time.Duration `json:"max_staleness_ns"`
	// Polls counts every polling request the snippet issued during the
	// run; IdlePolls counts just those issued during the trailing idle
	// window, the keep-alive overhead of the mode.
	Polls      int64         `json:"polls"`
	IdlePolls  int64         `json:"idle_polls"`
	IdleWindow time.Duration `json:"idle_window_ns"`
	// IdleBytes counts bytes in both directions on the measuring
	// participant's link during the idle window — the wire cost of keeping
	// the session alive: request/response headers per interval poll, a
	// hanging request per max-hang, or a ping/pong frame pair per channel
	// keep-alive.
	IdleBytes int64 `json:"idle_bytes"`
	// ActionPush records whether the acting participant used the
	// fire-and-forget /action upstream; Actions counts measured actions and
	// Mean/MaxActionStaleness the action-fired-to-mirror-applied latency.
	ActionPush          bool          `json:"action_push"`
	Actions             int           `json:"actions"`
	MeanActionStaleness time.Duration `json:"mean_action_staleness_ns"`
	MaxActionStaleness  time.Duration `json:"max_action_staleness_ns"`
	// Builds counts Figure 3 pipeline runs — with single-flight delivery
	// this stays at one per change regardless of participant count.
	Builds   int64         `json:"builds"`
	Duration time.Duration `json:"duration_ns"`
}

// DeliveryOptions shapes one MeasureDelivery run.
type DeliveryOptions struct {
	// Interval is the snippet poll interval (interval mode pacing).
	Interval time.Duration
	// Wait is the long-poll hang per request (long-poll mode only).
	Wait time.Duration
	// Changes is how many host document changes to measure.
	Changes int
	// Gap is the settle time before each change.
	Gap time.Duration
	// Idle, when positive, holds the session idle after the last change
	// and counts the polls issued in that window.
	Idle time.Duration
	// Actions, when positive, adds the upstream phase: a mirror participant
	// joins and this many pointer actions are timed from fire to mirror
	// apply.
	Actions int
	// ActionPush puts the acting participant on the fire-and-forget /action
	// upstream (long-poll mode only; interval mode ignores it by design).
	ActionPush bool
}

// MeasureDelivery runs one co-browsing session over the virtual network in
// the given delivery mode, applies a series of host document changes, and
// measures how stale each change was by the time the participant applied
// it, plus the request traffic the mode cost.
func MeasureDelivery(spec sites.SiteSpec, mode core.DeliveryMode, opt DeliveryOptions) (*DeliveryResult, error) {
	corpus, err := sites.NewCorpus()
	if err != nil {
		return nil, err
	}
	defer corpus.Close()
	host := browser.New("host.lan", corpus.Network.Dialer("host.lan"))
	defer host.Close()
	agent := core.NewAgent(host, "host.lan:3000")
	defer agent.Close()
	l, err := corpus.Network.Listen("host.lan:3000")
	if err != nil {
		return nil, err
	}
	server := &httpwire.Server{Handler: agent}
	server.Start(l)
	defer server.Close()
	if _, err := host.Navigate("http://" + spec.Host() + "/"); err != nil {
		return nil, err
	}

	// The measuring participant's dialer is wrapped so every connection it
	// opens tallies wire bytes; the idle window below reads the delta.
	var cmu sync.Mutex
	var conns []*netsim.CountingConn
	dial := corpus.Network.Dialer("alice.lan")
	pb := browser.New("alice.lan", func(addr string) (net.Conn, error) {
		c, err := dial(addr)
		if err != nil {
			return nil, err
		}
		cc := netsim.NewCountingConn(c)
		cmu.Lock()
		conns = append(conns, cc)
		cmu.Unlock()
		return cc, nil
	})
	defer pb.Close()
	wireBytes := func() int64 {
		cmu.Lock()
		defer cmu.Unlock()
		var total int64
		for _, cc := range conns {
			in, out := cc.Totals()
			total += in + out
		}
		return total
	}
	snip := core.NewSnippet(pb, "http://host.lan:3000", "")
	snip.FetchObjects = false
	snip.PollInterval = opt.Interval
	snip.Delivery = mode
	snip.LongPollWait = opt.Wait
	snip.ActionPush = opt.ActionPush
	if err := snip.Join(); err != nil {
		return nil, err
	}

	// The upstream phase times actions against a second participant: the
	// mirror applies the pointer action and stamps its arrival.
	var mirror *core.Snippet
	var amu sync.Mutex
	arrivals := make(map[int]time.Time)
	parkTarget := 1
	if opt.Actions > 0 {
		mb := browser.New("mirror.lan", corpus.Network.Dialer("mirror.lan"))
		defer mb.Close()
		mirror = core.NewSnippet(mb, "http://host.lan:3000", "")
		mirror.FetchObjects = false
		mirror.PollInterval = opt.Interval
		mirror.Delivery = mode
		mirror.LongPollWait = opt.Wait
		mirror.OnUserAction = func(a core.Action) {
			if a.Kind == core.ActionMouseMove {
				amu.Lock()
				if _, ok := arrivals[a.X]; !ok {
					arrivals[a.X] = time.Now()
				}
				amu.Unlock()
			}
		}
		if err := mirror.Join(); err != nil {
			return nil, err
		}
		if mode != core.DeliveryInterval {
			parkTarget = 2
		}
	}

	stop := make(chan struct{})
	defer close(stop)
	go snip.Run(stop, nil)
	if mirror != nil {
		go mirror.Run(stop, nil)
	}

	label := "interval"
	switch mode {
	case core.DeliveryLongPoll:
		label = "longpoll"
		if opt.ActionPush {
			label = "longpoll+push"
		}
	case core.DeliveryDuplex:
		label = "duplex"
	}
	res := &DeliveryResult{
		Mode:       label,
		Interval:   opt.Interval,
		Wait:       opt.Wait,
		Changes:    opt.Changes,
		IdleWindow: opt.Idle,
		ActionPush: opt.ActionPush,
		Actions:    opt.Actions,
	}
	// settle waits for every long-poll participant to re-park (so the next
	// event exercises the push path), waits for every channel participant's
	// upgrade to attach (so the next event exercises the frame fan-out), or
	// phase-shifts an interval-mode stimulus so the series samples the whole
	// poll cycle uniformly.
	settle := func(i, total int) error {
		switch mode {
		case core.DeliveryLongPoll:
			if err := waitCond(30*time.Second, func() bool { return agent.ParkedPolls() == parkTarget }); err != nil {
				return err
			}
			time.Sleep(opt.Gap)
			return nil
		case core.DeliveryDuplex:
			if err := waitCond(30*time.Second, func() bool { return agent.ChannelsOpen() == int64(parkTarget) }); err != nil {
				return err
			}
			time.Sleep(opt.Gap)
			return nil
		}
		time.Sleep(opt.Gap + time.Duration(i)*opt.Interval/time.Duration(max(total, 1)))
		return nil
	}
	start := time.Now()
	for i := 0; i < opt.Changes; i++ {
		if err := settle(i, opt.Changes); err != nil {
			return nil, fmt.Errorf("experiment: change %d: %w", i, err)
		}
		before := snip.Stats().ContentPolls
		t0 := time.Now()
		if err := bumpHostDoc(host, i); err != nil {
			return nil, err
		}
		if err := waitCond(30*time.Second, func() bool { return snip.Stats().ContentPolls > before }); err != nil {
			return nil, fmt.Errorf("experiment: change %d never reached the participant: %w", i, err)
		}
		staleness := time.Since(t0)
		res.MeanStaleness += staleness
		if staleness > res.MaxStaleness {
			res.MaxStaleness = staleness
		}
	}
	if opt.Changes > 0 {
		res.MeanStaleness /= time.Duration(opt.Changes)
	}
	for i := 0; i < opt.Actions; i++ {
		if err := settle(i, opt.Actions); err != nil {
			return nil, fmt.Errorf("experiment: action %d: %w", i, err)
		}
		x := 1<<20 + i // out of the way of any page coordinate
		t0 := time.Now()
		snip.PointerMove(x, 0)
		// Piggyback upstream may wait out the sender's whole remaining hang
		// before the action even leaves the participant.
		deadline := opt.Wait + 30*time.Second
		err := waitCond(deadline, func() bool {
			amu.Lock()
			_, ok := arrivals[x]
			amu.Unlock()
			return ok
		})
		if err != nil {
			return nil, fmt.Errorf("experiment: action %d never reached the mirror: %w", i, err)
		}
		amu.Lock()
		staleness := arrivals[x].Sub(t0)
		amu.Unlock()
		res.MeanActionStaleness += staleness
		if staleness > res.MaxActionStaleness {
			res.MaxActionStaleness = staleness
		}
	}
	if opt.Actions > 0 {
		res.MeanActionStaleness /= time.Duration(opt.Actions)
	}
	if opt.Idle > 0 {
		idleStart := snip.Stats().Polls
		byteStart := wireBytes()
		time.Sleep(opt.Idle)
		res.IdlePolls = snip.Stats().Polls - idleStart
		res.IdleBytes = wireBytes() - byteStart
	}
	res.Duration = time.Since(start)
	res.Polls = snip.Stats().Polls
	res.Builds = agent.ContentBuilds()
	return res, nil
}

// bumpHostDoc applies the canonical ablation mutation: one body attribute
// write that advances the host document version.
func bumpHostDoc(host *browser.Browser, tick int) error {
	return host.ApplyMutation(func(doc *dom.Document) error {
		doc.Body().SetAttr("data-delivery-tick", fmt.Sprint(tick))
		return nil
	})
}

// waitCond polls cond every 200µs until it holds or the deadline passes.
func waitCond(timeout time.Duration, cond func() bool) error {
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			return fmt.Errorf("condition not reached within %v", timeout)
		}
		time.Sleep(200 * time.Microsecond)
	}
	return nil
}
