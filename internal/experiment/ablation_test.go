package experiment

import (
	"strings"
	"testing"
	"time"

	"rcb/internal/netsim"
	"rcb/internal/sites"
)

func TestSweepPollInterval(t *testing.T) {
	sync := netsim.Txn{Up: 120, Down: 50_000}
	intervals := []time.Duration{100 * time.Millisecond, time.Second, 5 * time.Second}
	points := SweepPollInterval(sync, LAN, intervals)
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Staleness grows with interval; idle overhead shrinks.
	for i := 1; i < len(points); i++ {
		if points[i].MeanStaleness <= points[i-1].MeanStaleness {
			t.Error("staleness must grow with interval")
		}
		if points[i].IdleBytesPerSec >= points[i-1].IdleBytesPerSec {
			t.Error("idle overhead must shrink with interval")
		}
	}
	// At any interval, staleness is at least half the interval.
	for _, p := range points {
		if p.MeanStaleness < p.Interval/2 {
			t.Errorf("staleness %v below interval/2 %v", p.MeanStaleness, p.Interval/2)
		}
	}
}

func TestComparePushVsPoll(t *testing.T) {
	sync := netsim.Txn{Up: 120, Down: 50_000}
	r := ComparePushVsPoll(sync, LAN, time.Second)
	if r.PushStaleness >= r.PollStaleness {
		t.Fatal("push must reduce staleness")
	}
	if r.PollStaleness-r.PushStaleness != 500*time.Millisecond {
		t.Fatalf("staleness gap = %v, want interval/2", r.PollStaleness-r.PushStaleness)
	}
	if r.ExtraConnectionsPerParticipant < 1 {
		t.Fatal("push must cost extra connection state")
	}
}

func TestMeasureFanout(t *testing.T) {
	spec, _ := sites.SiteByName("google.com")
	points, err := MeasureFanout(spec, LAN, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	// Uplink cost is linear in participants; generation cost is not.
	if points[1].UplinkTime <= points[0].UplinkTime {
		t.Error("uplink time must grow with participants")
	}
	ratio := float64(points[1].UplinkTime) / float64(points[0].UplinkTime)
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("uplink scaling ratio = %.2f, want ~4 for 4x participants", ratio)
	}
	if points[0].GenerationTime <= 0 || points[0].ServeCPUTime <= 0 {
		t.Error("measured times missing")
	}
}

func TestMeasureHMACOverhead(t *testing.T) {
	r := MeasureHMACOverhead(20)
	if r.SignTime <= 0 || r.VerifyTime <= 0 {
		t.Fatalf("times = %+v", r)
	}
	if r.SignTime > time.Millisecond || r.VerifyTime > time.Millisecond {
		t.Errorf("HMAC cost implausibly high: %+v", r)
	}
}

func TestWriteAblations(t *testing.T) {
	var b strings.Builder
	if err := WriteAblations(&b, "google.com", LAN); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"poll interval sweep", "poll vs multipart push", "participant fan-out", "HMAC"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}
