package experiment

import (
	"fmt"
	"io"
	"strings"
	"time"

	"rcb/internal/netsim"
	"rcb/internal/sites"
)

// Mobile co-browsing (paper §6): the authors ported RCB-Agent to Fennec
// (mobile Firefox) and found it "can also efficiently support co-browsing"
// on a Nokia N810 internet tablet. This file reproduces that preliminary
// experiment: the same pipeline run under a device profile that scales
// processing time to tablet-class silicon and uses an 802.11g home Wi-Fi
// link between host and participant.

// DeviceProfile scales the measured processing metrics to a device class.
type DeviceProfile struct {
	Name string
	// CPUFactor multiplies measured M5/M6 (desktop = 1). The N810's 400 MHz
	// OMAP2420 benchmarked roughly 40× slower than a 2009 desktop on
	// JavaScript DOM workloads.
	CPUFactor float64
	// Link is the host↔participant path for the device scenario.
	Link netsim.Link
}

// N810 approximates the paper's Nokia N810 over 802.11g Wi-Fi.
var N810 = DeviceProfile{
	Name:      "Nokia N810 (Fennec)",
	CPUFactor: 40,
	// 802.11g effective throughput ~20 Mbps shared, 2 ms one-way.
	Link: netsim.Link{Latency: 2 * time.Millisecond, UpBps: 1.25e6, DownBps: 1.25e6},
}

// MobileResult is the device-scaled metric set for one site.
type MobileResult struct {
	Spec       sites.SiteSpec
	Device     DeviceProfile
	M2         time.Duration // sync over the Wi-Fi link
	M5NonCache time.Duration // scaled content generation
	M6         time.Duration // scaled content application
}

// RunMobile evaluates one site under a device profile, reusing the desktop
// pipeline's transactions and scaling the processing times.
func RunMobile(spec sites.SiteSpec, dev DeviceProfile, opt Options) (*MobileResult, error) {
	env := LAN
	env.HostParticipant = dev.Link
	base, err := RunSite(spec, env, opt)
	if err != nil {
		return nil, err
	}
	scale := func(d time.Duration) time.Duration {
		return time.Duration(float64(d) * dev.CPUFactor)
	}
	return &MobileResult{
		Spec:       spec,
		Device:     dev,
		M2:         base.M2,
		M5NonCache: scale(base.M5NonCache),
		M6:         scale(base.M6),
	}, nil
}

// WriteMobile renders the mobile experiment for a set of sites, with the
// paper's qualitative bar: co-browsing stays interactive (sync plus scaled
// processing well under a second) on tablet hardware.
func WriteMobile(w io.Writer, names []string, dev DeviceProfile, opt Options) error {
	fmt.Fprintf(w, "Mobile co-browsing (%s), paper §6 preliminary experiment\n", dev.Name)
	fmt.Fprintf(w, "%-15s %10s %16s %10s %12s\n", "site", "M2 (ms)", "M5 scaled (ms)", "M6 (ms)", "interactive")
	fmt.Fprintln(w, strings.Repeat("-", 68))
	for _, name := range names {
		spec, ok := sites.SiteByName(name)
		if !ok {
			return fmt.Errorf("experiment: no site %q", name)
		}
		r, err := RunMobile(spec, dev, opt)
		if err != nil {
			return err
		}
		total := r.M2 + r.M5NonCache + r.M6
		fmt.Fprintf(w, "%-15s %10.1f %16.1f %10.2f %12v\n",
			name, ms(r.M2), ms(r.M5NonCache), ms(r.M6), total < time.Second)
	}
	return nil
}
