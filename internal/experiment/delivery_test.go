package experiment

import (
	"testing"
	"time"

	"rcb/internal/core"
	"rcb/internal/sites"
)

// TestMeasureDeliveryStaleness runs the delivery ablation at a compressed
// scale and checks its headline claims: long-poll staleness lands well
// under the interval-poll floor, and idle traffic drops to (at most) one
// request per hang instead of one per interval. Bounds are generous —
// this is a correctness check of the ablation, not a benchmark.
func TestMeasureDeliveryStaleness(t *testing.T) {
	spec, ok := sites.SiteByName("google.com")
	if !ok {
		t.Fatal("no google.com site spec")
	}
	const interval = 150 * time.Millisecond
	const idle = 450 * time.Millisecond

	intervalRes, err := MeasureDelivery(spec, core.DeliveryInterval, DeliveryOptions{
		Interval: interval,
		Changes:  3,
		Gap:      30 * time.Millisecond,
		Idle:     idle,
	})
	if err != nil {
		t.Fatal(err)
	}
	longpollRes, err := MeasureDelivery(spec, core.DeliveryLongPoll, DeliveryOptions{
		Interval: interval,
		Wait:     5 * time.Second,
		Changes:  3,
		Gap:      30 * time.Millisecond,
		Idle:     idle,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("interval: mean=%v max=%v polls=%d idle=%d", intervalRes.MeanStaleness,
		intervalRes.MaxStaleness, intervalRes.Polls, intervalRes.IdlePolls)
	t.Logf("longpoll: mean=%v max=%v polls=%d idle=%d", longpollRes.MeanStaleness,
		longpollRes.MaxStaleness, longpollRes.Polls, longpollRes.IdlePolls)

	// Long-poll delivers on transfer time; even under heavy parallel test
	// load it must land well under the interval floor.
	if longpollRes.MeanStaleness >= interval/2 {
		t.Errorf("long-poll mean staleness %v is not under the interval/2 floor (%v)",
			longpollRes.MeanStaleness, interval/2)
	}
	if longpollRes.MeanStaleness >= intervalRes.MeanStaleness {
		t.Errorf("long-poll staleness %v not better than interval %v",
			longpollRes.MeanStaleness, intervalRes.MeanStaleness)
	}
	// Idle traffic: interval mode keeps polling every interval; a 5s hang
	// issues at most one request in a 450ms idle window.
	if intervalRes.IdlePolls < 2 {
		t.Errorf("interval mode issued %d idle polls in %v, want >= 2", intervalRes.IdlePolls, idle)
	}
	if longpollRes.IdlePolls > 1 {
		t.Errorf("long-poll mode issued %d idle polls in %v, want <= 1", longpollRes.IdlePolls, idle)
	}
	// Every change is one single-flight build on the wake path.
	if longpollRes.Builds < int64(longpollRes.Changes) {
		t.Errorf("long-poll run recorded %d builds for %d changes", longpollRes.Builds, longpollRes.Changes)
	}
}

// TestMeasureDeliveryDuplex runs the persistent-channel arm of the ablation
// at a compressed scale: frames deliver host changes and mirrored actions in
// transfer time on one socket, and an idle session issues zero polling
// requests.
func TestMeasureDeliveryDuplex(t *testing.T) {
	spec, ok := sites.SiteByName("google.com")
	if !ok {
		t.Fatal("no google.com site spec")
	}
	const interval = 150 * time.Millisecond
	const idle = 450 * time.Millisecond

	res, err := MeasureDelivery(spec, core.DeliveryDuplex, DeliveryOptions{
		Interval: interval,
		Changes:  3,
		Gap:      30 * time.Millisecond,
		Idle:     idle,
		Actions:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("duplex: mean=%v max=%v action mean=%v polls=%d idle=%d idleBytes=%d",
		res.MeanStaleness, res.MaxStaleness, res.MeanActionStaleness, res.Polls, res.IdlePolls, res.IdleBytes)

	if res.Mode != "duplex" {
		t.Errorf("duplex run labeled %q", res.Mode)
	}
	// Channel delivery is push in transfer time; it must land well under the
	// interval-poll floor even on a loaded test machine.
	if res.MeanStaleness >= interval/2 {
		t.Errorf("duplex mean staleness %v is not under the interval/2 floor (%v)", res.MeanStaleness, interval/2)
	}
	if res.MeanActionStaleness >= interval/2 {
		t.Errorf("duplex action staleness %v is not under the interval/2 floor (%v)", res.MeanActionStaleness, interval/2)
	}
	// An idle channel issues no polling requests at all; the only idle wire
	// traffic is the ping/pong keep-alive, which at a 5s cadence usually
	// contributes nothing to a 450ms window.
	if res.IdlePolls != 0 {
		t.Errorf("duplex mode issued %d idle polls, want 0", res.IdlePolls)
	}
	// Every change is one single-flight build fanned out as frames.
	if res.Builds < int64(res.Changes) {
		t.Errorf("duplex run recorded %d builds for %d changes", res.Builds, res.Changes)
	}
}

// TestMeasureDeliveryActionStaleness runs the upstream half of the ablation
// at a compressed scale: with the fire-and-forget /action push, an action
// reaches the mirror in transfer time; over the piggyback path it waits for
// the sender's request cycle — the full remaining hang when the sender's
// long-poll is parked.
func TestMeasureDeliveryActionStaleness(t *testing.T) {
	spec, ok := sites.SiteByName("google.com")
	if !ok {
		t.Fatal("no google.com site spec")
	}
	const wait = 600 * time.Millisecond

	pushRes, err := MeasureDelivery(spec, core.DeliveryLongPoll, DeliveryOptions{
		Interval:   150 * time.Millisecond,
		Wait:       wait,
		Gap:        20 * time.Millisecond,
		Actions:    3,
		ActionPush: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	piggyRes, err := MeasureDelivery(spec, core.DeliveryLongPoll, DeliveryOptions{
		Interval: 150 * time.Millisecond,
		Wait:     wait,
		Gap:      20 * time.Millisecond,
		Actions:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("push:      mean=%v max=%v", pushRes.MeanActionStaleness, pushRes.MaxActionStaleness)
	t.Logf("piggyback: mean=%v max=%v", piggyRes.MeanActionStaleness, piggyRes.MaxActionStaleness)

	// Pushed actions never wait for the hang; even under parallel test load
	// they must land well under half the hang.
	if pushRes.MeanActionStaleness >= wait/2 {
		t.Errorf("pushed action staleness %v is not under half the hang (%v)", pushRes.MeanActionStaleness, wait/2)
	}
	if pushRes.MeanActionStaleness >= piggyRes.MeanActionStaleness {
		t.Errorf("push staleness %v not better than piggyback %v",
			pushRes.MeanActionStaleness, piggyRes.MeanActionStaleness)
	}
	if pushRes.Mode != "longpoll+push" || !pushRes.ActionPush {
		t.Errorf("push run labeled %q (ActionPush=%v)", pushRes.Mode, pushRes.ActionPush)
	}
}
