package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSignVerifyRoundTrip(t *testing.T) {
	a := NewAuthenticator("secret-key")
	body := []byte("ts=42&actions=%5B%5D")
	signed := a.Sign("POST", "/poll", body)
	if !strings.Contains(signed, "?hmac=") {
		t.Fatalf("signed target = %q", signed)
	}
	if !a.Verify("POST", signed, body) {
		t.Fatal("verification of own signature failed")
	}
}

func TestSignAppendsToExistingQuery(t *testing.T) {
	a := NewAuthenticator("k")
	signed := a.Sign("GET", "/obj/t3?v=1", nil)
	if !strings.Contains(signed, "/obj/t3?v=1&hmac=") {
		t.Fatalf("signed = %q", signed)
	}
	if !a.Verify("GET", signed, nil) {
		t.Fatal("verify failed")
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	a := NewAuthenticator("k")
	body := []byte("ts=1")
	signed := a.Sign("POST", "/poll", body)

	if a.Verify("POST", signed, []byte("ts=2")) {
		t.Error("tampered body accepted")
	}
	if a.Verify("GET", signed, body) {
		t.Error("tampered method accepted")
	}
	tampered := strings.Replace(signed, "/poll", "/pall", 1)
	if a.Verify("POST", tampered, body) {
		t.Error("tampered target accepted")
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	signer := NewAuthenticator("alice-key")
	verifier := NewAuthenticator("mallory-key")
	signed := signer.Sign("POST", "/poll", nil)
	if verifier.Verify("POST", signed, nil) {
		t.Fatal("wrong key accepted")
	}
}

func TestVerifyRejectsMissingMAC(t *testing.T) {
	a := NewAuthenticator("k")
	if a.Verify("POST", "/poll", nil) {
		t.Error("unsigned target accepted")
	}
	if a.Verify("POST", "/poll?x=1", nil) {
		t.Error("unsigned target with query accepted")
	}
	if a.Verify("POST", "/poll?hmac=deadbeef", nil) {
		t.Error("bogus mac accepted")
	}
}

func TestSessionKeysAreFreshAndWellFormed(t *testing.T) {
	k1, k2 := NewSessionKey(), NewSessionKey()
	if k1 == k2 {
		t.Fatal("two session keys are identical")
	}
	if len(k1) != 32 {
		t.Fatalf("key length %d, want 32 hex chars", len(k1))
	}
	for _, c := range k1 {
		if !strings.ContainsRune("0123456789abcdef", c) {
			t.Fatalf("non-hex char %q in key", c)
		}
	}
}

func TestSignVerifyProperty(t *testing.T) {
	a := NewAuthenticator(NewSessionKey())
	f := func(pathSuffix string, body []byte) bool {
		target := "/poll" + sanitize(pathSuffix)
		signed := a.Sign("POST", target, body)
		return a.Verify("POST", signed, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyFlipBitProperty(t *testing.T) {
	a := NewAuthenticator(NewSessionKey())
	f := func(body []byte, flip uint8) bool {
		if len(body) == 0 {
			return true
		}
		signed := a.Sign("POST", "/poll", body)
		mutated := append([]byte(nil), body...)
		mutated[int(flip)%len(mutated)] ^= 0x01
		return !a.Verify("POST", signed, mutated)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func sanitize(s string) string {
	var b strings.Builder
	for _, c := range []byte(s) {
		if c > ' ' && c < 127 && c != '?' && c != '&' {
			b.WriteByte(c)
		}
	}
	return b.String()
}
