package core

// Randomized full-session convergence harness — the system-level sibling of
// internal/dom's diff/patch property harness. Collabs-style randomized
// multi-client testing (PAPERS.md) is the only trustworthy evidence for
// convergence under concurrent operation streams, and PR 4 only had it for
// the DOM layer. Each scenario here drives one host plus 2–8 participants in
// mixed delivery modes (interval, long-poll, long-poll + action push, delta
// on and off) through a seeded random interleaving of host mutations,
// participant actions, disconnect/rejoin churn, forced delta desyncs, and
// real park/wake cycles, then asserts the two invariants everything else
// rests on:
//
//  1. Convergence: after a drain, every still-connected participant's DOM
//     serializes byte-identically to a freshly joined reference participant
//     (and therefore to the host's participant-equivalent document) — no
//     mode, desync, or interleaving may leave a replica diverged.
//  2. Exactly-once actions: every action fired by a never-disconnected
//     participant is processed by the agent's policy pipeline exactly once
//     (no loss when pushes degrade, no duplication between the /action
//     upstream and the piggyback path), and every mirrored pointer action
//     reaches every other stable participant exactly once.
//
// Scenarios are deterministic per seed; the suite runs >500 of them, split
// across parallel shards that each own an isolated virtual network.

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"rcb/internal/browser"
	"rcb/internal/dom"
	"rcb/internal/httpwire"
	"rcb/internal/sites"
)

// convergenceScenarios is the total scenario count (split across shards).
const convergenceScenarios = 512

// convergenceShards bounds wall-clock time; each shard runs its slice of
// scenarios sequentially on its own corpus and network.
const convergenceShards = 8

// convSites are the hosts scenarios browse between: the smaller Table 1
// pages, so scenario time goes to interleavings rather than parsing the
// corpus's megabyte homepages.
var convSites = []sites.SiteSpec{sites.Table1[1], sites.Table1[17], sites.Table1[3]}

// actionRecord tracks one fired action through the pipeline.
type actionRecord struct {
	key    string
	sender int  // index of the firing participant
	mirror bool // true for pointer actions every other participant must see
}

// countingPolicy applies every action and counts how many times each action
// key passed through Agent.handleAction — the exactly-once observable.
type countingPolicy struct {
	mu   sync.Mutex
	seen map[string]int
}

func (p *countingPolicy) Decide(_ string, act Action) Decision {
	if k := actionKey(act); k != "" {
		p.mu.Lock()
		p.seen[k]++
		p.mu.Unlock()
	}
	return Apply
}

func (p *countingPolicy) count(key string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.seen[key]
}

// actionKey extracts the unique token the harness plants in each action it
// fires; untracked actions map to "".
func actionKey(act Action) string {
	switch act.Kind {
	case ActionMouseMove:
		return fmt.Sprintf("mm%d", act.X)
	case ActionFormInput:
		return act.Value
	}
	return ""
}

// convParticipant is one scripted participant: its snippet, receipt
// counters, and lifecycle bookkeeping.
type convParticipant struct {
	snip    *Snippet
	browser *browser.Browser
	pid     string
	churn   bool // may be disconnected/rejoined; exempt from assertions
	gone    bool // currently disconnected

	// Duplex participants run a live Run loop (the channel is inherently
	// asynchronous); stopRun/runDone manage its lifecycle per join
	// generation, runErrs collects errors a stable participant must never
	// see on a clean network.
	stopRun chan struct{}
	runDone chan struct{}

	mu       sync.Mutex
	received map[string]int // mirrored action key → deliveries
	runErrs  []error
}

// stopRunLoop ends the participant's Run loop, if one is active.
func (p *convParticipant) stopRunLoop() {
	if p.stopRun == nil {
		return
	}
	close(p.stopRun)
	<-p.runDone
	p.stopRun, p.runDone = nil, nil
}

func (p *convParticipant) onAction(act Action) {
	if k := actionKey(act); k != "" {
		p.mu.Lock()
		p.received[k]++
		p.mu.Unlock()
	}
}

func (p *convParticipant) receivedCount(key string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.received[key]
}

// TestSessionConvergenceRandomized is the harness entry point.
func TestSessionConvergenceRandomized(t *testing.T) {
	perShard := convergenceScenarios / convergenceShards
	for shard := 0; shard < convergenceShards; shard++ {
		shard := shard
		t.Run(fmt.Sprintf("shard%d", shard), func(t *testing.T) {
			t.Parallel()
			corpus, err := sites.NewCorpus()
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(corpus.Close)
			for i := 0; i < perShard; i++ {
				idx := shard*perShard + i
				runConvergenceScenario(t, corpus, idx)
				if t.Failed() {
					return
				}
			}
		})
	}
}

// runConvergenceScenario executes one seeded scenario end to end.
func runConvergenceScenario(t *testing.T, corpus *sites.Corpus, idx int) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(idx)*0x9E3779B9 + 0x5CB))
	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("scenario %d: %s", idx, fmt.Sprintf(format, args...))
	}

	addr := fmt.Sprintf("conv%d.lan:3000", idx)
	host := browser.New(fmt.Sprintf("convhost%d.lan", idx), corpus.Network.Dialer(fmt.Sprintf("convhost%d.lan", idx)))
	defer host.Close()
	agent := NewAgent(host, addr)
	policy := &countingPolicy{seen: make(map[string]int)}
	agent.Policy = policy
	agent.DefaultCacheMode = rng.Intn(4) == 0
	defer agent.Close()
	l, err := corpus.Network.Listen(addr)
	if err != nil {
		fail("listen: %v", err)
	}
	server := &httpwire.Server{Handler: agent}
	server.Start(l)
	defer server.Close()

	if _, err := host.Navigate("http://" + convSites[rng.Intn(len(convSites))].Host() + "/"); err != nil {
		fail("host navigate: %v", err)
	}

	// Participants: 2–8, mixed configurations. With ≥3, one is a churn
	// participant that may be disconnected and rejoined mid-scenario.
	nParts := 2 + rng.Intn(7)
	parts := make([]*convParticipant, nParts)
	joinSeq := 0
	join := func(p *convParticipant) {
		p.stopRunLoop()
		joinSeq++
		p.pid = fmt.Sprintf("p%d", joinSeq)
		snip := NewSnippet(p.browser, "http://"+addr, "")
		snip.FetchObjects = false
		switch rng.Intn(4) {
		case 0, 1:
			snip.Delivery = DeliveryLongPoll
			// Tiny hang: a park that nothing wakes resolves in ~1ms, so the
			// synchronous scenario driver still exercises park/timeout
			// machinery without stalling.
			snip.LongPollWait = time.Millisecond
			snip.ActionPush = rng.Intn(2) == 0
		case 2:
			snip.Delivery = DeliveryDuplex
			snip.LongPollWait = time.Millisecond
			snip.PollInterval = 5 * time.Millisecond
			snip.ActionPush = rng.Intn(2) == 0
		}
		snip.DisableDelta = rng.Intn(3) == 0
		snip.OnUserAction = p.onAction
		if err := snip.Join(); err != nil {
			fail("join %s: %v", p.pid, err)
		}
		p.snip = snip
		p.gone = false
		if snip.Delivery == DeliveryDuplex {
			// The channel is push-driven, so a duplex participant runs the
			// real Run loop in the background instead of driver-paced polls.
			// On this clean network a stable participant must never see an
			// error; the churn participant's LEAVE close is expected.
			p.stopRun = make(chan struct{})
			p.runDone = make(chan struct{})
			go func(pp *convParticipant, sn *Snippet, stop, done chan struct{}) {
				defer close(done)
				sn.Run(stop, func(err error) {
					if pp.churn {
						return
					}
					pp.mu.Lock()
					pp.runErrs = append(pp.runErrs, err)
					pp.mu.Unlock()
				})
			}(p, snip, p.stopRun, p.runDone)
		}
	}
	for i := range parts {
		p := &convParticipant{
			browser:  browser.New(fmt.Sprintf("conv%dp%d.lan", idx, i), corpus.Network.Dialer(fmt.Sprintf("conv%dp%d.lan", idx, i))),
			received: make(map[string]int),
		}
		defer p.browser.Close()
		join(p)
		parts[i] = p
	}
	if nParts >= 3 {
		parts[rng.Intn(nParts)].churn = true
	}

	var fired []actionRecord
	token := 0
	hostGen := 0
	mutateHost := func() {
		hostGen++
		gen := hostGen
		var err error
		switch rng.Intn(5) {
		case 0: // navigate to another site
			_, err = host.Navigate("http://" + convSites[rng.Intn(len(convSites))].Host() + "/")
		case 1: // attribute write on the body
			err = host.ApplyMutation(func(doc *dom.Document) error {
				doc.Body().SetAttr("data-conv", fmt.Sprint(gen))
				return nil
			})
		case 2: // append a keyed element
			err = host.ApplyMutation(func(doc *dom.Document) error {
				el := dom.NewElement("div")
				el.SetAttr("id", fmt.Sprintf("conv-g%d", gen))
				el.AppendChild(dom.NewText(fmt.Sprintf("generation %d", gen)))
				doc.Body().AppendChild(el)
				return nil
			})
		case 3: // remove the last body child
			err = host.ApplyMutation(func(doc *dom.Document) error {
				kids := doc.Body().ChildElements()
				if len(kids) > 1 {
					doc.Body().RemoveChild(kids[len(kids)-1])
				} else {
					doc.Body().SetAttr("data-conv-miss", fmt.Sprint(gen))
				}
				return nil
			})
		default: // text edit inside an earlier keyed element, if any
			err = host.ApplyMutation(func(doc *dom.Document) error {
				for _, el := range doc.Body().ChildElements() {
					if strings.HasPrefix(el.AttrOr("id", ""), "conv-g") {
						el.ReplaceChildren(dom.NewText(fmt.Sprintf("edited %d", gen)))
						return nil
					}
				}
				doc.Body().SetAttr("data-conv-text", fmt.Sprint(gen))
				return nil
			})
		}
		if err != nil {
			fail("host mutation: %v", err)
		}
	}

	poll := func(p *convParticipant) (bool, int64) {
		if p.gone || p.snip.Delivery == DeliveryDuplex {
			// Duplex participants are fed by their Run loop; a driver poll
			// would race the channel reader over the same snippet.
			return false, 0
		}
		pre := p.snip.Stats()
		updated, err := p.snip.PollOnce()
		if err != nil {
			fail("poll %s: %v", p.pid, err)
		}
		post := p.snip.Stats()
		return updated, post.ActionsSent - pre.ActionsSent
	}

	fireAction := func(p *convParticipant, i int) {
		if p.gone || p.churn {
			return
		}
		token++
		if rng.Intn(4) == 0 && p.snip.DocTime() > 0 {
			// forminput against a rewritten element of the participant's
			// current document; unique value token for the policy count.
			var path string
			err := p.browser.WithDocument(func(_ string, doc *dom.Document) error {
				els := doc.Root.ElementsByTag("input")
				if len(els) == 0 {
					return nil
				}
				path = els[rng.Intn(len(els))].AttrOr(RCBAttr, "")
				return nil
			})
			if err != nil {
				fail("scan inputs: %v", err)
			}
			if path != "" {
				val := fmt.Sprintf("conv%d-t%d", idx, token)
				p.snip.dispatch(Action{Kind: ActionFormInput, Target: path, Value: val})
				fired = append(fired, actionRecord{key: val, sender: i})
				return
			}
		}
		x := token
		p.snip.dispatch(Action{Kind: ActionMouseMove, X: x, Y: i})
		fired = append(fired, actionRecord{key: fmt.Sprintf("mm%d", x), sender: i, mirror: true})
	}

	// parkWake runs one genuine hub cycle: park a long-poll participant for
	// real, wake it with a host mutation, and join the goroutine.
	parkWake := func(p *convParticipant) {
		if p.gone || p.snip.Delivery != DeliveryLongPoll {
			return
		}
		old := p.snip.LongPollWait
		p.snip.LongPollWait = 2 * time.Second
		pre := agent.ParkedPolls()
		done := make(chan error, 1)
		go func() {
			_, err := p.snip.PollOnce()
			done <- err
		}()
		deadline := time.Now().Add(10 * time.Second)
		bumped := false
		for {
			select {
			case err := <-done:
				if err != nil {
					fail("parked poll %s: %v", p.pid, err)
				}
				p.snip.LongPollWait = old
				return
			default:
			}
			if !bumped && agent.ParkedPolls() > pre {
				mutateHost()
				bumped = true
			}
			if time.Now().After(deadline) {
				fail("parked poll %s never completed", p.pid)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}

	churnCycle := func() {
		for _, p := range parts {
			if !p.churn {
				continue
			}
			if !p.gone {
				agent.Disconnect(p.pid)
				p.gone = true
			} else {
				join(p)
			}
			return
		}
	}

	ops := 8 + rng.Intn(17)
	parkWakes := 0
	for op := 0; op < ops; op++ {
		i := rng.Intn(nParts)
		p := parts[i]
		switch rng.Intn(10) {
		case 0, 1, 2:
			mutateHost()
		case 3, 4:
			poll(p)
		case 5, 6, 7:
			fireAction(p, i)
		case 8:
			switch rng.Intn(3) {
			case 0:
				churnCycle()
			case 1:
				if !p.gone {
					p.snip.desync() // forced delta desync: next poll resyncs in full
				}
			default:
				if parkWakes < 2 { // bounded: each cycle costs real wall time
					parkWakes++
					parkWake(p)
				}
			}
		default:
			poll(p)
		}
	}

	// Make sure churned participants end connected, then drain to a global
	// fixpoint: rounds of one poll per participant until a full round moves
	// no content, no piggybacked actions, and no mirror deliveries.
	for _, p := range parts {
		if p.gone {
			join(p)
		}
	}
	mutateHost() // final version every replica must reach

	// Actions fired by duplex participants travel the channel asynchronously;
	// wait for the agent's policy pipeline to see each one before draining so
	// the drain rounds below deliver the resulting mirror outboxes. Sync
	// senders are excluded — their queued piggybacks flush during the drain.
	actDeadline := time.Now().Add(5 * time.Second)
	for _, rec := range fired {
		if parts[rec.sender].snip.Delivery != DeliveryDuplex {
			continue
		}
		for policy.count(rec.key) == 0 && time.Now().Before(actDeadline) {
			time.Sleep(100 * time.Microsecond)
		}
	}

	recvTotal := func() int {
		n := 0
		for _, p := range parts {
			p.mu.Lock()
			for _, c := range p.received {
				n += c
			}
			p.mu.Unlock()
		}
		return n
	}
	anyDuplex := false
	for _, p := range parts {
		if p.snip.Delivery == DeliveryDuplex {
			anyDuplex = true
		}
	}
	for round := 0; ; round++ {
		if round > 40 {
			fail("drain did not reach a fixpoint in %d rounds", round)
		}
		moved := false
		pre := recvTotal()
		for _, p := range parts {
			updated, sent := poll(p)
			if updated || sent > 0 {
				moved = true
			}
		}
		if anyDuplex {
			// Channel deliveries are asynchronous; give in-flight frames a
			// beat to land so the recvTotal check below observes them.
			time.Sleep(time.Millisecond)
		}
		if recvTotal() != pre {
			moved = true
		}
		if !moved {
			break
		}
	}

	// Reference replica: a fresh participant's first full snapshot is the
	// host's participant-equivalent document by construction.
	ref := &convParticipant{
		browser:  browser.New(fmt.Sprintf("conv%dref.lan", idx), corpus.Network.Dialer(fmt.Sprintf("conv%dref.lan", idx))),
		received: make(map[string]int),
	}
	defer ref.browser.Close()
	join(ref)
	// The reference only needs one synchronous snapshot poll; if the dice
	// gave it a duplex channel, retire that and poll directly.
	ref.stopRunLoop()
	ref.snip.Delivery = DeliveryInterval
	if _, err := ref.snip.PollOnce(); err != nil {
		fail("reference poll: %v", err)
	}
	want := docHTML(t, ref.browser)
	deadline := time.Now().Add(10 * time.Second)
	for i, p := range parts {
		got := docHTML(t, p.browser)
		// A duplex participant's final frame may still be in flight — the
		// driver's fixpoint cannot observe channel content movement — so
		// convergence for it is eventual, bounded by the deadline.
		for got != want && p.snip.Delivery == DeliveryDuplex && time.Now().Before(deadline) {
			time.Sleep(200 * time.Microsecond)
			got = docHTML(t, p.browser)
		}
		if got != want {
			fail("participant %d (%s, delivery=%d delta=%v push=%v churn=%v) diverged:\n got: %s\nwant: %s",
				i, p.pid, p.snip.Delivery, !p.snip.DisableDelta, p.snip.ActionPush, p.churn, got, want)
		}
	}

	// Channel quiescence: join every Run loop before counting deliveries,
	// and require that no stable duplex participant ever saw a run error on
	// this clean network.
	for i, p := range parts {
		p.stopRunLoop()
		p.mu.Lock()
		errs := p.runErrs
		p.mu.Unlock()
		if len(errs) > 0 {
			fail("participant %d (%s) duplex run errors: %v", i, p.pid, errs)
		}
	}

	// Exactly-once: every fired action reached the policy pipeline once, and
	// every mirrored pointer action reached every other stable participant
	// once — whether it traveled by push or by piggyback.
	for _, rec := range fired {
		if got := policy.count(rec.key); got != 1 {
			fail("action %s processed %d times by the host, want exactly 1", rec.key, got)
		}
		if !rec.mirror {
			continue
		}
		for i, p := range parts {
			if i == rec.sender || p.churn {
				continue
			}
			if got := p.receivedCount(rec.key); got != 1 {
				fail("participant %d received mirrored action %s %d times, want exactly 1", i, rec.key, got)
			}
		}
	}
}

// docHTML serializes a participant browser's full document.
func docHTML(t *testing.T, b *browser.Browser) string {
	t.Helper()
	var html string
	err := b.WithDocument(func(_ string, doc *dom.Document) error {
		html = dom.OuterHTML(doc.Root)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return html
}
