package core

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rcb/internal/browser"
	"rcb/internal/dom"
	"rcb/internal/httpwire"
)

// Participant is the published state of one connected co-browsing
// participant — a plain value snapshot, safe to copy.
type Participant struct {
	ID        string
	CacheMode bool
	// LastDocTime is the docTime the participant last acknowledged, carried
	// back on each polling request (the timestamp protocol of §4.1.1).
	LastDocTime int64
	LastSeen    time.Time
	Polls       int64
}

// participantState is the live record behind a Participant: the snapshot
// fields plus the delivery outbox, guarded by its own mutex so polls from
// different participants never contend with each other.
type participantState struct {
	mu sync.Mutex
	Participant
	outbox []Action // other users' actions awaiting delivery
}

// PendingAction is a participant action awaiting host confirmation under a
// moderating policy.
type PendingAction struct {
	Seq           int64
	ParticipantID string
	Action        Action
}

// maxOutbox bounds per-participant queued mirror actions; pointer streams
// are lossy by nature, so old entries are dropped first.
const maxOutbox = 256

// Agent is RCB-Agent: the HTTP service a co-browsing host runs inside its
// browser. It implements httpwire.Handler; back it with any listener (real
// TCP in cmd/rcb-host, the virtual network in tests and experiments).
//
// # Delivery modes
//
// The agent answers polls in two ways. Through ServeWire (plain
// httpwire.Handler) every poll completes immediately, exactly as §4.1.1
// specifies — empty response when nothing changed. Through ServeWireAsync
// (httpwire.AsyncHandler, which httpwire.Server prefers automatically) a
// poll carrying a wait=<ms> form field that finds nothing new parks on the
// delivery hub and completes when the host document changes, a mirror
// action lands in the participant's outbox, the participant is
// disconnected, or min(wait, MaxPollWait) elapses — the hanging-GET channel
// that removes the polling interval from the staleness floor. Polls without
// a wait field behave identically on both paths, so interval-mode snippets
// (the paper's semantics) are unaffected.
//
// Internal state is sharded across independent locks so the serve path
// scales with participant count: the participant table (read-mostly, an
// RWMutex plus per-participant locks), the object mapping table, the
// prepared-content cache, the moderation queue, the docTime clock, and the
// long-poll delivery hub each contend only with themselves.
type Agent struct {
	// Browser is the host browser whose document is shared.
	Browser *browser.Browser
	// Addr is the agent's own reachable address ("host.lan:3000"), used
	// when rewriting cached-object URLs.
	Addr string
	// Policy gates participant actions. Defaults to OpenPolicy.
	Policy Policy
	// Auth, when non-nil, enforces HMAC request authentication (§3.4).
	Auth *Authenticator
	// DefaultCacheMode selects the mode for new participants. Mode can be
	// changed per participant afterwards (SetParticipantMode).
	DefaultCacheMode bool
	// AutoSubmitForms, when set, immediately submits a form to the origin
	// after merging a participant's formsubmit action. When unset the data
	// is only merged into the host DOM (the host user submits manually, as
	// Bob does in the shopping study).
	AutoSubmitForms bool
	// MaxPollWait caps how long a long-poll may park, whatever the client
	// requested; zero means DefaultMaxPollWait. A parked poll that reaches
	// the cap completes with the empty response — the §4.1.1 degradation,
	// so a long-poll participant is never worse off than an interval one.
	MaxPollWait time.Duration
	// WakeDebounce coalesces document-change wake-ups of parked long-polls:
	// a burst of host mutations inside the window wakes the fleet at most
	// twice (once at the leading edge, once after the window with the latest
	// version) instead of once per mutation. The trailing wake also
	// precomputes the deltas the woken fleet is about to request (one diff
	// per distinct acked base) before fan-out. Zero disables coalescing. Set
	// before serving traffic.
	WakeDebounce time.Duration
	// DisableDelta turns off incremental deltaContent responses: every
	// content-carrying poll gets the full Figure 4 snapshot, as the paper
	// specifies. Deltas are also skipped per poll unless the request opts in
	// with a delta=1 field, so foreign interval-mode clients never see them.
	DisableDelta bool
	// DeltaRingDepth sets how many replaced builds each mode retains as
	// delta bases (the delta-base ring). A participant acknowledging any
	// retained build's docTime is served an incremental delta; older acks
	// fall back to the full snapshot. Zero means DefaultDeltaRingDepth. Set
	// before serving traffic.
	DeltaRingDepth int
	// DisableChannel refuses persistent-channel upgrades (POST /channel):
	// every upgrade attempt gets the retry-carrying OVERCOMMITTED refusal and
	// participants stay on the long-poll/interval tiers. An operator knob for
	// deployments where proxies mishandle long-lived upgraded connections.
	DisableChannel bool
	// MaxParticipants caps concurrent participants; further connection
	// requests are refused with SessionFull. Zero means unlimited.
	MaxParticipants int
	// MaxParkedPolls caps concurrently parked long-polls; polls beyond the
	// cap answer immediately with a retry-after hint instead of parking.
	// Zero means unlimited.
	MaxParkedPolls int
	// MaxAckLag, when positive, disconnects (StaleReader) participants
	// whose acknowledged docTime lags the current build by more than this
	// many builds — a slow reader that can no longer catch up must not pin
	// agent state.
	MaxAckLag int
	// MaxParkAge, when positive, bounds one parked poll's hang below
	// MaxPollWait; a poll that parks the full age without the participant
	// ever being woken marks the reader stale and disconnects it with
	// StaleReader.
	MaxParkAge time.Duration
	// Shed configures the load-shedding ladder (see ShedLevel); the zero
	// value disables shedding.
	Shed ShedWatermarks
	// ShedRetryAfter is the server-assigned retry interval handed to
	// clients while the ladder forces interval polling. Zero means
	// DefaultShedRetryAfter. Set before serving traffic.
	ShedRetryAfter time.Duration
	// ReadHeap overrides the heap-usage probe for the shed ladder (tests
	// inject pressure); nil reads runtime.MemStats.HeapAlloc.
	ReadHeap func() uint64
	// AllowHandover, when set, lets another agent process push session
	// state into this one through the /handover/ handshake (state.go,
	// handover.go). Off by default: an agent must opt in to being a
	// migration target.
	AllowHandover bool
	// MovedRetryAfter is the retry hint attached to MOVED responses after
	// a handover relocated this session; zero means DefaultMovedRetryAfter.
	MovedRetryAfter time.Duration
	// Logf, when non-nil, receives diagnostics.
	Logf func(format string, args ...any)

	// pmu guards the participant table and ID counter. Polls only take the
	// read lock; per-participant fields are guarded by each entry's own
	// mutex. closedReasons remembers why recently removed participants were
	// disconnected, so their next request carries the reason instead of a
	// bare "unknown participant".
	pmu           sync.RWMutex
	participants  map[string]*participantState
	nextPID       int
	closedReasons map[string]CloseReason
	closedOrder   []string

	// dmu guards the action replay filter (dedup.go). dedupTick is the
	// agent-wide activity counter behind LRU eviction; dedupNow overrides
	// the idle-eviction clock in tests (nil means time.Now).
	dmu       sync.Mutex
	dedup     map[string]*dedupState
	dedupTick int64
	dedupNow  func() time.Time

	// omu guards the object mapping tables (agent path ↔ absolute URL).
	omu     sync.Mutex
	mapping map[string]string // agent path "/obj/tN" → absolute URL
	tokens  map[string]string // absolute URL → agent path

	// cmu guards the prepared-content cache and the single-flight guard:
	// of N concurrent polls that observe a new document version, exactly
	// one runs the Figure 3 pipeline; the rest block on its result. The
	// delta cache rides the same lock: prevRing holds the last few replaced
	// builds per mode, newest first (every member is a valid delta base, so
	// a participant that skipped versions stays on the delta path), delta
	// holds the encoded script per (base → current) pair — or a recorded
	// "not worth it" — and deltaInflight single-flights each pair's
	// computation so N concurrent delta-eligible polls on one pair cost one
	// dom.Diff.
	cmu           sync.Mutex
	prepared      map[bool]*PreparedContent
	inflight      map[bool]*contentCall
	prevRing      map[bool][]*PreparedContent
	delta         map[bool]map[int64]*deltaEntry
	deltaInflight map[bool]map[int64]*deltaCall

	// amu guards the moderation queue and action sequencing.
	amu       sync.Mutex
	pending   []PendingAction
	actionSeq int64

	// tmu guards the monotonic docTime clock.
	tmu         sync.Mutex
	lastDocTime int64

	// smu is the serve/state barrier. Every request path that can mutate
	// session state holds the read side for its synchronous extent, so
	// ExportState — and the relocation fence a handover plants — can take
	// the write side and observe the session with no merge in flight: a
	// checkpoint can never contain a replay stamp without its document
	// effect, or vice versa. relocatedTo, once set under the write lock,
	// makes every subsequent request answer MOVED with that address in
	// RelocateHeader. (Host-side APIs like HostAction bypass the barrier;
	// rcb-host only checkpoints between, not during, host interactions,
	// and a restore always resyncs participants anyway.)
	smu         sync.RWMutex
	relocatedTo string

	// hmu guards the receiver half of the handover handshake (handover.go):
	// the outstanding transfer token and how far the exchange progressed.
	hmu              sync.Mutex
	handoverToken    string
	handoverImported bool
	handoverDone     bool

	// hub parks long-polls and wakes them on document changes, outbox
	// enqueues, and disconnects.
	hub *deliveryHub

	// chmu guards the persistent-channel registry (channel.go): at most one
	// framed full-duplex channel per participant, keyed by pid.
	chmu     sync.Mutex
	channels map[string]*agentChannel

	// builds counts Figure 3 pipeline executions — the observable the
	// single-flight tests and cache-effectiveness metrics key on.
	builds atomic.Int64
	// actionPushes counts accepted /action upstream requests — the
	// observable the fallback tests key on (an interval-mode or degraded
	// snippet must never advance it).
	actionPushes atomic.Int64
	// diffBuilds counts dom.Diff delta computations; with the delta
	// single-flight guard this advances once per (base, target, mode) pair.
	diffBuilds atomic.Int64
	// deltasServed counts polls answered with a deltaContent message.
	deltasServed atomic.Int64

	// Persistent-channel observables (channel.go): open channels, frames in
	// each direction, and upgrades refused or channels closed toward the
	// degradation ladder.
	channelsOpen     atomic.Int64
	framesOut        atomic.Int64
	framesIn         atomic.Int64
	channelFallbacks atomic.Int64

	// Overload-control observables: every admission or degradation decision
	// advances a counter.
	joinRefusals     atomic.Int64 // joins refused (cap or shed ladder)
	parkRefusals     atomic.Int64 // long-polls answered immediately (cap or shed ladder)
	staleKicks       atomic.Int64 // participants disconnected as StaleReader
	duplicateActions atomic.Int64 // actions dropped by the replay filter
	outboxDepth      atomic.Int64 // queued mirror actions across all outboxes

	// shed holds the load-shedding ladder state (overload.go).
	shed shedState

	// buildHist remembers recent build docTimes per mode — the ruler the
	// stale-reader reaper measures ack lag against. Guarded by cmu.
	buildHist map[bool][]int64
}

// maxBuildHist bounds the per-mode build history; MaxAckLag beyond this is
// effectively "never stale by lag".
const maxBuildHist = 64

// DefaultDeltaRingDepth is the delta-base ring depth when
// Agent.DeltaRingDepth is zero: deep enough that a lossy participant a few
// versions behind still rides the delta path, shallow enough that the
// retained builds stay a small multiple of one snapshot.
const DefaultDeltaRingDepth = 4

// deltaRingDepth resolves the effective ring depth.
func (a *Agent) deltaRingDepth() int {
	if a.DeltaRingDepth > 0 {
		return a.DeltaRingDepth
	}
	return DefaultDeltaRingDepth
}

// deltaEntry records the delta decision for one (base → target) pair: d is
// nil when a delta exists but was not worth sending (oversized, or the
// top-level region set changed), so the question is not re-asked per poll.
type deltaEntry struct {
	base, target int64
	d            *preparedDelta
}

// deltaCall is one in-flight delta computation concurrent polls wait on.
type deltaCall struct {
	base, target int64
	done         chan struct{}
	d            *preparedDelta
}

// contentCall is one in-flight BuildContent execution that concurrent polls
// wait on instead of re-running the pipeline.
type contentCall struct {
	version int64
	done    chan struct{}
	prep    *PreparedContent
	err     error
}

// PreparedContent caches one generated message per (document version,
// cache mode): "the whole response content generation procedure is executed
// only once for each new document content, and the generated XML format
// response content is reusable for multiple participant browsers" (§4.1.2).
type PreparedContent struct {
	version int64
	docTime int64
	xml     []byte
	// content is the extracted message (head children and region payloads):
	// the delta path compares heads through it and reconstructs the
	// participant-equivalent tree from it (participantTree).
	content *NewContent
	// normOnce/normTree lazily cache the participant-equivalent view of
	// this build — see participantTree. Only the delta path pays for it.
	normOnce sync.Once
	normTree *dom.Node
	// splice is the offset of the closing </newContent> tag: per-participant
	// userActions are inserted here by two appends, never a re-marshal.
	splice  int
	genTime time.Duration
	// resp is the ready-to-send response wrapping xml. PreparedContent is
	// immutable and WriteResponse only reads, so one response object fans
	// out to every participant without a per-poll header allocation.
	resp *httpwire.Response
}

// XML returns the marshaled Figure 4 message. The slice is shared across
// participants and must not be mutated.
func (p *PreparedContent) XML() []byte { return p.xml }

// DocTime returns the message timestamp.
func (p *PreparedContent) DocTime() int64 { return p.docTime }

// GenTime returns how long the Figure 3 pipeline took to produce this
// content — the paper's M5 metric.
func (p *PreparedContent) GenTime() time.Duration { return p.genTime }

// participantTree reconstructs what a participant document's top-level
// regions look like after applying this build's message in full: each
// region element gets the message's attribute list and the ParseFragment
// of its innerHTML payload — exactly the installation the snippet's full
// apply performs. Deltas must be diffed between these trees, not the live
// clones they were extracted from: DOM-API mutations can leave empty or
// adjacent text nodes in the host document that serialization erases, so
// the clone and the participant's parsed copy can disagree on child
// indexes even though they serialize identically. The reconstruction is
// lazy and cached — the full-snapshot path never pays for it.
func (p *PreparedContent) participantTree() *dom.Node {
	p.normOnce.Do(func() {
		root := dom.NewElement("html")
		add := func(tag string, te *TopElement) {
			if te == nil {
				return
			}
			el := dom.NewElement(tag)
			el.Attrs = append([]dom.Attr(nil), te.Attrs...)
			if te.Inner != "" {
				dom.SetInnerHTML(el, te.Inner)
			}
			root.AppendChild(el)
		}
		add("body", p.content.Body)
		add("frameset", p.content.FrameSet)
		add("noframes", p.content.NoFrames)
		p.normTree = root
	})
	return p.normTree
}

// WithUserActions returns the cached message with a userActions element for
// one participant spliced in before the closing tag. The cached document
// payload is never re-rendered: the result is the shared bytes around one
// freshly encoded actions element.
func (p *PreparedContent) WithUserActions(actions []Action) []byte {
	if len(actions) == 0 {
		return p.xml
	}
	out := make([]byte, 0, len(p.xml)+spliceSizeHint(actions))
	out = append(out, p.xml[:p.splice]...)
	out = appendUserActions(out, actions)
	out = append(out, p.xml[p.splice:]...)
	return out
}

// spliceSizeHint estimates the encoded size of a userActions element so the
// splice buffer is sized in one allocation.
func spliceSizeHint(actions []Action) int {
	return 48 + 96*len(actions)
}

// DefaultMaxPollWait is the long-poll hang cap when Agent.MaxPollWait is
// zero. Long enough that an idle session costs a handful of requests per
// minute; short enough that intermediaries with idle-connection timeouts
// see regular traffic.
const DefaultMaxPollWait = 25 * time.Second

// NewAgent returns an agent for the given host browser, reachable at addr.
// The agent subscribes to the browser's change notifications so parked
// long-polls wake the moment the host document mutates or navigates.
func NewAgent(b *browser.Browser, addr string) *Agent {
	a := &Agent{
		Browser:       b,
		Addr:          addr,
		Policy:        OpenPolicy(),
		participants:  make(map[string]*participantState),
		mapping:       make(map[string]string),
		tokens:        make(map[string]string),
		prepared:      make(map[bool]*PreparedContent),
		inflight:      make(map[bool]*contentCall),
		prevRing:      make(map[bool][]*PreparedContent),
		delta:         make(map[bool]map[int64]*deltaEntry),
		deltaInflight: make(map[bool]map[int64]*deltaCall),
		closedReasons: make(map[string]CloseReason),
		dedup:         make(map[string]*dedupState),
		buildHist:     make(map[bool][]int64),
		hub:           newDeliveryHub(),
		channels:      make(map[string]*agentChannel),
	}
	// The trailing edge of a debounced wake runs on its own timer goroutine
	// with the whole woken fleet in hand — the one place the deltas the
	// fleet is about to ask for can be computed before fan-out.
	a.hub.preWake = a.warmWakeDeltas
	b.OnChange(func() {
		a.hub.notifyAllDebounced(a.WakeDebounce)
		// Channel writers coalesce through their cap-1 notify slots, so the
		// fleet wake needs no debounce of its own.
		a.notifyAllChannels()
	})
	return a
}

// Close releases the delivery hub and the persistent channels: every parked
// long-poll completes with the empty response, every open channel receives
// an AGENT_CLOSING close frame, and later polls answer immediately,
// interval-style. The agent remains usable afterwards — Close only retires
// the push channels, typically just before the enclosing httpwire.Server
// closes.
func (a *Agent) Close() {
	a.hub.close()
	a.closeAllChannels(closeSignal{reason: CloseAgentClosing})
}

// ParkedPolls reports how many long-polls are currently parked — the
// observable fan-out tests and benchmarks synchronize on.
func (a *Agent) ParkedPolls() int { return a.hub.parkedCount() }

// WakeFanouts reports how many document-change wake rounds actually woke
// parked polls — with WakeDebounce set, a burst of M host mutations
// advances this by at most 2.
func (a *Agent) WakeFanouts() int64 { return a.hub.wakeFanouts() }

// maxPollWait resolves the effective long-poll cap.
func (a *Agent) maxPollWait() time.Duration {
	if a.MaxPollWait > 0 {
		return a.MaxPollWait
	}
	return DefaultMaxPollWait
}

func (a *Agent) logf(format string, args ...any) {
	if a.Logf != nil {
		a.Logf(format, args...)
	}
}

// URL returns the agent's base URL, the address a participant types into
// the browser address bar (paper step 2).
func (a *Agent) URL() string { return "http://" + a.Addr }

// ServeWire implements httpwire.Handler, classifying requests as Figure 2
// does — a new connection request (GET with root URI), an object request
// (GET with a resource URI, cache mode), or an Ajax polling request (always
// POST, so action data can be piggybacked) — plus two routes the paper does
// not have: the fire-and-forget action upstream (POST /action), which
// carries participant actions without waiting for the next poll cycle, and
// the agent-to-agent handover handshake (POST /handover/*, handover.go).
func (a *Agent) ServeWire(req *httpwire.Request) *httpwire.Response {
	if req.Method == "POST" && strings.HasPrefix(req.Path(), "/handover/") {
		// The handshake manages the state barrier itself (ImportState takes
		// the write side) and must stay reachable on a relocated agent so
		// chained migrations work.
		if errResp := a.verifyAuth(req); errResp != nil {
			return errResp
		}
		return a.serveHandover(req)
	}
	a.smu.RLock()
	defer a.smu.RUnlock()
	if a.relocatedTo != "" {
		return a.movedResponse()
	}
	return a.route(req)
}

// route dispatches one non-handover request; the caller holds the read side
// of the serve/state barrier.
func (a *Agent) route(req *httpwire.Request) *httpwire.Response {
	switch {
	case req.Method == "GET" && req.Path() == "/":
		return a.serveInitialPage(req)
	case req.Method == "POST" && req.Path() == "/poll":
		if errResp := a.verifyAuth(req); errResp != nil {
			return errResp
		}
		return a.servePoll(req)
	case req.Method == "POST" && req.Path() == "/action":
		if errResp := a.verifyAuth(req); errResp != nil {
			return errResp
		}
		return a.serveAction(req)
	case req.Method == "POST" && req.Path() == "/channel":
		if errResp := a.verifyAuth(req); errResp != nil {
			return errResp
		}
		return a.serveChannelUpgrade(req)
	case req.Method == "GET":
		if errResp := a.verifyAuth(req); errResp != nil {
			return errResp
		}
		return a.serveObject(req)
	default:
		return httpwire.NewResponse(405, "text/plain", []byte("method not allowed\n"))
	}
}

// verifyAuth runs the §3.4 HMAC check when authentication is on, returning
// the 401 to send or nil to proceed. Shared by the sync and async serve
// paths so a future tightening cannot apply to only one of them.
func (a *Agent) verifyAuth(req *httpwire.Request) *httpwire.Response {
	if a.Auth != nil && !a.Auth.Verify(req.Method, req.Target, req.Body) {
		return badHMACResponse
	}
	return nil
}

// serveInitialPage answers a new connection request with the initial HTML
// page whose head element contains Ajax-Snippet (paper §4.1.1). A
// participant identity is issued as a cookie so subsequent polls and object
// requests can be attributed. Admission control runs first: a session at
// its participant cap — or an agent shedding joins — refuses with
// SessionFull and a retry-after hint rather than registering state it
// cannot serve.
func (a *Agent) serveInitialPage(_ *httpwire.Request) *httpwire.Response {
	a.maybeEvalLoad()
	if a.ShedLevel() >= ShedRefuseJoins {
		a.joinRefusals.Add(1)
		return a.joinRefusedResponse()
	}
	if a.handoverPending() {
		// A transfer is mid-flight: admitting a participant now would
		// split the session between the incoming state and this join.
		a.joinRefusals.Add(1)
		return a.joinRefusedResponse()
	}
	mode := a.DefaultCacheMode
	a.pmu.Lock()
	if a.MaxParticipants > 0 && len(a.participants) >= a.MaxParticipants {
		a.pmu.Unlock()
		a.joinRefusals.Add(1)
		return a.joinRefusedResponse()
	}
	a.nextPID++
	pid := "p" + strconv.Itoa(a.nextPID)
	a.participants[pid] = &participantState{
		Participant: Participant{ID: pid, CacheMode: mode, LastSeen: time.Now()},
	}
	a.pmu.Unlock()
	a.logf("rcb-agent: participant %s connected (cache mode %v)", pid, mode)

	page := `<!DOCTYPE html><html><head><title>RCB Session</title>` +
		`<script id="rcb-ajax-snippet">` + snippetScript + `</script>` +
		`</head><body><div id="rcb-status">Connecting to co-browsing session...</div>` +
		`<form id="rcb-key" onsubmit="return __rcb.setKey(this)">` +
		`<input type="password" name="key" value=""><input type="submit" value="Join"></form>` +
		`</body></html>`
	resp := httpwire.NewResponse(200, "text/html; charset=utf-8", []byte(page))
	resp.Header.Set("Set-Cookie", "rcbpid="+pid+"; Path=/")
	return resp
}

// snippetScript is the JavaScript text embedded in the initial page. The
// reproduction executes the equivalent logic in Go (see Snippet); the text
// is included so the initial page is faithful and so head-cleanup keeps a
// real script element to preserve.
const snippetScript = `/* RCB Ajax-Snippet: poll agent, apply newContent, piggyback actions */`

// serveObject answers a cache-mode object request by reading the host
// browser's cache through the mapping table (paper §4.1.1: "RCB-Agent keeps
// a mapping table, in which the request-URI of each cached object maps to a
// corresponding cache key").
func (a *Agent) serveObject(req *httpwire.Request) *httpwire.Response {
	target := req.Path()
	a.omu.Lock()
	absURL, ok := a.mapping[target]
	a.omu.Unlock()
	if !ok {
		return httpwire.NewResponse(404, "text/plain", []byte("unknown object\n"))
	}
	entry, ok := a.Browser.Cache.Get(absURL)
	if !ok {
		// Cache entry evicted after the URL was rewritten; the participant
		// can still fall back to the origin in non-cache mode next sync.
		return httpwire.NewResponse(404, "text/plain", []byte("object no longer cached\n"))
	}
	resp := httpwire.NewResponse(200, entry.ContentType, entry.Body)
	resp.Header.Set("Cache-Control", "max-age=3600")
	return resp
}

// ServeWireAsync implements httpwire.AsyncHandler. Polling requests that
// ask for long-poll delivery (wait=<ms> form field) and find nothing new
// park on the delivery hub; every other request — and every poll with
// something to deliver — answers inline. respond is the server's completion
// callback and may be invoked later from a hub wake-up goroutine.
func (a *Agent) ServeWireAsync(req *httpwire.Request, respond func(*httpwire.Response)) {
	if req.Method != "POST" || req.Path() != "/poll" {
		// Everything but a poll — including the /action upstream — answers
		// inline: an action POST must acknowledge immediately, never park.
		respond(a.ServeWire(req))
		return
	}
	// The barrier read lock covers the synchronous extent of the poll —
	// merge, park registration — but not the parked wait itself; a poll
	// woken later re-enters through wakePoll, which takes its own RLock.
	a.smu.RLock()
	defer a.smu.RUnlock()
	if a.relocatedTo != "" {
		respond(a.movedResponse())
		return
	}
	if errResp := a.verifyAuth(req); errResp != nil {
		respond(errResp)
		return
	}
	p, ts, wait, deltaOK, errResp := a.pollSetup(req)
	if errResp != nil {
		respond(errResp)
		return
	}
	a.maybeEvalLoad()
	// Overload enforcement: at ShedInterval and above — or past the
	// parked-poll cap — a would-be long-poll answers immediately and
	// carries the server-assigned retry interval, degrading the client to
	// the paper's interval polling until pressure clears.
	parkRefused := false
	if wait > 0 {
		if a.ShedLevel() >= ShedInterval {
			parkRefused = true
		} else if a.MaxParkedPolls > 0 && a.hub.parkedCount() >= a.MaxParkedPolls {
			parkRefused = true
		}
		if parkRefused {
			a.parkRefusals.Add(1)
			wait = 0
		}
	}
	// A slow-reader bound below the poll cap: the park completes early and
	// marks the reader stale if nothing woke it by then.
	staleOnTimeout := false
	if a.MaxParkAge > 0 && wait > a.MaxParkAge {
		wait = a.MaxParkAge
		staleOnTimeout = true
	}
	pid := p.ID
	for {
		// Snapshot before the check: park refuses a stale snapshot, so an
		// event landing between this check and registration forces another
		// pass instead of being slept through.
		snap := a.hub.snapshot(pid)
		resp, hasNew := a.pollResponse(p, ts, deltaOK)
		if hasNew || wait <= 0 {
			if !hasNew && parkRefused {
				resp = a.shedEmptyResponse()
			}
			respond(resp)
			return
		}
		w := &pollWaiter{pid: pid, ts: ts, deltaOK: deltaOK, staleOnTimeout: staleOnTimeout}
		w.fulfill = func(reply *pollReply) { respond(a.wakePoll(w, reply)) }
		parked, retry := a.hub.park(w, snap, wait)
		if parked {
			return
		}
		if !retry {
			// Hub closed: the agent is shutting down. Complete with the
			// empty response marked AgentClosing so the snippet backs off
			// instead of immediately re-parking against a dying server.
			respond(agentClosingPollResponse)
			return
		}
	}
}

// wakePoll completes one parked long-poll after its hub wake-up: a timeout
// or shutdown degrades to the §4.1.1 empty response; a real notification
// re-runs the step 2/3 check and delivers whatever is current (the
// re-check rides the single-flight guard, so N waiters waking on one
// document change still cost exactly one BuildContent).
func (a *Agent) wakePoll(w *pollWaiter, reply *pollReply) *httpwire.Response {
	a.smu.RLock()
	defer a.smu.RUnlock()
	if a.relocatedTo != "" {
		return a.movedResponse()
	}
	if reply.closed {
		// Agent shutdown: tell the snippet why so it backs off.
		return agentClosingPollResponse
	}
	if reply.timedOut {
		if w.staleOnTimeout {
			// The poll aged out below the normal cap (MaxParkAge): nothing
			// woke this participant for the whole bound, so treat it as a
			// reader too slow to keep pinning agent state.
			a.staleKicks.Add(1)
			a.DisconnectWith(w.pid, CloseStaleReader)
			return closeResponse(CloseStaleReader)
		}
		return emptyPollResponse
	}
	p := a.participant(w.pid)
	if p == nil {
		// Disconnected while parked: the same answer a live poll would get.
		return a.disconnectedResponse(w.pid)
	}
	resp, _ := a.pollResponse(p, w.ts, w.deltaOK)
	return resp
}

// servePoll handles an Ajax polling request through the three steps of
// §4.1.1: data merging, timestamp inspection, response sending. This is the
// synchronous flavor: a wait field is ignored and the response — possibly
// the empty one — is always immediate. The long-poll flavor lives in
// ServeWireAsync.
func (a *Agent) servePoll(req *httpwire.Request) *httpwire.Response {
	p, ts, _, deltaOK, errResp := a.pollSetup(req)
	if errResp != nil {
		return errResp
	}
	resp, _ := a.pollResponse(p, ts, deltaOK)
	return resp
}

// serveAction answers a fire-and-forget action upstream request: the poll
// protocol's step 1 (data merging) split out onto its own endpoint, so a
// participant action reaches the host the moment it occurs instead of
// riding the next request cycle — the latency cut matters most when the
// participant's polling request is parked on the delivery hub for seconds.
// The actions run through the same policy/moderation pipeline as
// piggybacked ones, and the resulting document mutation or broadcast wakes
// parked long-polls through the existing hub paths, so mirrored
// participants and the host see the action within one hang-wake. The
// response is an empty acknowledgment; document content only ever travels
// on poll responses.
func (a *Agent) serveAction(req *httpwire.Request) *httpwire.Response {
	pid := pidFromRequest(req)
	var payload string
	for _, f := range httpwire.ParseForm(string(req.Body)) {
		switch f.Name {
		case "actions":
			payload = f.Value
		case "pid":
			if pid == "" {
				pid = f.Value
			}
		}
	}
	p := a.participant(pid)
	if p == nil {
		return a.disconnectedResponse(pid)
	}
	actions, err := DecodeActions(payload)
	if err != nil || len(actions) == 0 {
		return badActionResponse
	}
	for _, act := range a.freshActions(actions) {
		act.From = p.ID
		a.handleAction(p.ID, act)
	}
	p.mu.Lock()
	p.LastSeen = time.Now()
	p.mu.Unlock()
	a.actionPushes.Add(1)
	return actionAckResponse
}

// ActionPushes reports how many /action upstream requests were accepted.
func (a *Agent) ActionPushes() int64 { return a.actionPushes.Load() }

// pollSetup parses a polling request and runs steps 1 and 2 of §4.1.1:
// participant lookup, data merging, and timestamp bookkeeping. It returns
// the participant, the timestamp it reported, the requested long-poll hang
// (0 = answer immediately), and whether the client opted into deltaContent
// responses — or a non-nil error response.
func (a *Agent) pollSetup(req *httpwire.Request) (*participantState, int64, time.Duration, bool, *httpwire.Response) {
	pid := pidFromRequest(req)
	fields := httpwire.ParseForm(string(req.Body))
	var ts, waitMS int64
	var deltaOK bool
	var actionPayload string
	for _, f := range fields {
		switch f.Name {
		case "ts":
			ts, _ = strconv.ParseInt(f.Value, 10, 64)
		case "actions":
			actionPayload = f.Value
		case "wait":
			waitMS, _ = strconv.ParseInt(f.Value, 10, 64)
		case "delta":
			deltaOK = f.Value == "1"
		case "pid":
			if pid == "" {
				pid = f.Value
			}
		}
	}
	p := a.participant(pid)
	if p == nil {
		return nil, 0, 0, false, a.disconnectedResponse(pid)
	}

	// Step 1: data merging. The replay filter runs first so a retried
	// upstream (push fallback, rejoin re-send) merges each action once.
	actions, err := DecodeActions(actionPayload)
	if err != nil {
		return nil, 0, 0, false, badActionResponse
	}
	actions = a.freshActions(actions)
	for _, act := range actions {
		act.From = p.ID
		a.handleAction(p.ID, act)
	}

	// Step 2: timestamp inspection. Only this participant's lock is taken;
	// polls from other participants proceed in parallel.
	p.mu.Lock()
	p.LastDocTime = ts
	p.LastSeen = time.Now()
	p.Polls++
	p.mu.Unlock()

	wait := time.Duration(waitMS) * time.Millisecond
	if max := a.maxPollWait(); wait > max {
		wait = max
	}
	if len(actions) > 0 {
		// A poll that delivered actions is answered immediately, never
		// parked: the prompt completion is the client's acknowledgment
		// that its actions were merged. (Our own snippet already strips
		// the wait field from action-carrying polls; this guards foreign
		// clients that don't.)
		wait = 0
	}
	return p, ts, wait, deltaOK, nil
}

// deliverOut is one delivery decision from deliver: the payload bytes to
// send, the docTime the recipient holds after applying them, and whether
// the payload is a deltaContent script. resp is the shared prepared response
// when the payload is reusable as-is (no per-participant splice) — the poll
// path sends it without allocating; the channel path only needs body. The
// drained outbox actions ride along so a failed channel write can requeue
// them instead of dropping mirror traffic on the floor. A recipient that
// opted into deltas is served the shared deltaContent script for whichever
// delta-base ring member it acknowledges — one encoded response per (base,
// target) pair, fanned to every poller and channel on that pair.
type deliverOut struct {
	resp    *httpwire.Response
	body    []byte
	docTime int64
	isDelta bool
	hasNew  bool
	actions []Action
}

// deliver runs step 3 of §4.1.1 — response sending — for one participant,
// shared by the poll path and the persistent-channel writer. The prepared
// message bytes are shared across participants; pending mirror actions are
// spliced in without re-rendering the document payload, and the no-action
// fast path reuses the prepared response object as-is. A recipient that
// opted into deltas and acknowledges the docTime of any build still in the
// delta-base ring gets the shared deltaContent script instead of the full
// snapshot; every fallback case (first delivery, base off the ring,
// oversized or unavailable delta) degrades to the snapshot. hasNew is false exactly when there is nothing
// to send: the state a long-poll parks on and a channel writer sleeps on.
func (a *Agent) deliver(p *participantState, ts int64, deltaOK bool) (deliverOut, error) {
	p.mu.Lock()
	mode := p.CacheMode
	outbox := p.outbox
	p.outbox = nil
	p.mu.Unlock()
	if len(outbox) > 0 {
		a.outboxDepth.Add(-int64(len(outbox)))
	}

	prep, err := a.contentForMode(mode)
	if err != nil {
		return deliverOut{actions: outbox}, err
	}
	if prep != nil && ts > prep.docTime {
		// The participant acknowledges a docTime this agent never issued:
		// it was talking to a newer incarnation than the checkpoint this
		// one restored from. Treat it as a first poll so it resyncs with
		// the full snapshot instead of parking forever on a stale clock.
		ts = 0
	}
	if prep != nil && prep.docTime > ts {
		// ts == 0 is a first delivery: the participant has no base to patch.
		// The shed ladder's first step turns deltas off — the full snapshot
		// costs bandwidth but releases the retained delta-base ring.
		if deltaOK && !a.DisableDelta && ts > 0 && a.ShedLevel() < ShedNoDelta {
			if d := a.deltaFor(mode, ts, prep); d != nil {
				a.deltasServed.Add(1)
				if len(outbox) == 0 {
					return deliverOut{resp: d.resp, body: d.xml, docTime: d.docTime, isDelta: true, hasNew: true}, nil
				}
				return deliverOut{body: d.WithUserActions(outbox), docTime: d.docTime, isDelta: true, hasNew: true, actions: outbox}, nil
			}
		}
		if len(outbox) == 0 {
			return deliverOut{resp: prep.resp, body: prep.xml, docTime: prep.docTime, hasNew: true}, nil
		}
		return deliverOut{body: prep.WithUserActions(outbox), docTime: prep.docTime, hasNew: true, actions: outbox}, nil
	}
	if len(outbox) > 0 {
		nc := &NewContent{DocTime: ts, UserActions: outbox}
		return deliverOut{body: nc.Marshal(), docTime: ts, hasNew: true, actions: outbox}, nil
	}
	return deliverOut{docTime: ts}, nil
}

// pollResponse adapts deliver to the HTTP poll path. hasNew is false exactly
// when the response is the shared empty message: the state a long-poll parks
// on instead of answering.
func (a *Agent) pollResponse(p *participantState, ts int64, deltaOK bool) (resp *httpwire.Response, hasNew bool) {
	out, err := a.deliver(p, ts, deltaOK)
	if err != nil {
		a.logf("rcb-agent: content generation: %v", err)
		return httpwire.NewResponse(500, "text/plain", []byte("content generation failed\n")), true
	}
	if !out.hasNew {
		// "If RCB-Agent indicates no new content with an empty response
		// content, Ajax-Snippet simply ... send[s] a new polling request
		// after a specified time interval." All empty polls share one
		// immutable response object.
		return emptyPollResponse, false
	}
	if out.resp != nil {
		return out.resp, true
	}
	return httpwire.NewResponse(200, "application/xml", out.body), true
}

// Shared immutable responses for the poll hot path; they must never be
// mutated by a caller.
var (
	// emptyPollResponse answers every no-new-content poll.
	emptyPollResponse = httpwire.NewResponse(200, "application/xml", nil)
	// agentClosingPollResponse completes parked polls when the agent shuts
	// down: still the §4.1.1 empty response (no error — the poll succeeded),
	// but marked AgentClosing so the snippet backs off before re-polling.
	agentClosingPollResponse = func() *httpwire.Response {
		r := httpwire.NewResponse(200, "application/xml", nil)
		r.Header.Set(CloseReasonHeader, CloseAgentClosing.String())
		return r
	}()
	// badActionResponse answers polls whose piggybacked actions fail to
	// decode.
	badActionResponse = httpwire.NewResponse(400, "text/plain", []byte("bad action payload\n"))
	// badHMACResponse answers requests that fail §3.4 authentication.
	badHMACResponse = httpwire.NewResponse(401, "text/plain", []byte("bad hmac\n"))
	// actionAckResponse acknowledges an accepted /action upstream request.
	actionAckResponse = httpwire.NewResponse(200, "application/xml", nil)
)

// disconnectedResponse answers a request from a pid the agent has no record
// of, carrying the close reason when the disconnect is recent enough to
// remember (CloseUnknown otherwise — e.g. the agent restarted).
func (a *Agent) disconnectedResponse(pid string) *httpwire.Response {
	return closeResponse(a.closeReasonFor(pid))
}

// closeReasonFor looks up why pid was disconnected.
func (a *Agent) closeReasonFor(pid string) CloseReason {
	a.pmu.RLock()
	r := a.closedReasons[pid]
	a.pmu.RUnlock()
	if r == CloseNone {
		return CloseUnknown
	}
	return r
}

// joinRefusedResponse is the SessionFull refusal with the retry hint.
func (a *Agent) joinRefusedResponse() *httpwire.Response {
	resp := closeResponse(CloseSessionFull)
	resp.Header.Set(RetryAfterHeader, strconv.FormatInt(a.shedRetryAfter().Milliseconds(), 10))
	return resp
}

// pidFromRequest extracts the rcbpid cookie, scanning the header in place —
// no per-poll slice allocation.
func pidFromRequest(req *httpwire.Request) string {
	cookie := req.Header.Get("Cookie")
	for cookie != "" {
		var part string
		part, cookie, _ = strings.Cut(cookie, ";")
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if ok && k == "rcbpid" {
			return v
		}
	}
	return ""
}

func (a *Agent) participant(pid string) *participantState {
	a.pmu.RLock()
	defer a.pmu.RUnlock()
	return a.participants[pid]
}

// Participants lists connected participants — "RCB-Agent knows exactly
// which participants are connected, and it can notify this information to a
// co-browsing host or participant" (§3.3).
func (a *Agent) Participants() []Participant {
	a.pmu.RLock()
	defer a.pmu.RUnlock()
	out := make([]Participant, 0, len(a.participants))
	for _, p := range a.participants {
		p.mu.Lock()
		out = append(out, p.Participant)
		p.mu.Unlock()
	}
	return out
}

// SetParticipantMode switches one participant between cache and non-cache
// mode ("RCB-Agent can allow different participant browsers to use
// different modes", §4.1.2).
func (a *Agent) SetParticipantMode(pid string, cacheMode bool) error {
	p := a.participant(pid)
	if p == nil {
		return fmt.Errorf("rcb-agent: no participant %s", pid)
	}
	p.mu.Lock()
	p.CacheMode = cacheMode
	p.mu.Unlock()
	return nil
}

// Disconnect removes a participant (leave at any time, §3.3). A long-poll
// the participant has parked wakes immediately and completes with the same
// 403 a live poll from an unknown participant gets — now carrying the
// Leave close reason — so the client learns of the disconnect without
// waiting out the hang.
func (a *Agent) Disconnect(pid string) { a.DisconnectWith(pid, CloseLeave) }

// Kick ejects a participant by host decision. Unlike Leave-class removals
// the reason is non-retryable: the snippet must not rejoin.
func (a *Agent) Kick(pid string) { a.DisconnectWith(pid, CloseKicked) }

// DisconnectWith removes a participant recording why, so the participant's
// next request (or its parked long-poll, woken immediately) answers with
// the reason instead of a bare 403. rememberedCloses bounds the memory.
func (a *Agent) DisconnectWith(pid string, reason CloseReason) {
	if reason == CloseNone {
		reason = CloseLeave
	}
	a.pmu.Lock()
	p := a.participants[pid]
	delete(a.participants, pid)
	if p != nil {
		if len(a.closedOrder) >= rememberedCloses {
			delete(a.closedReasons, a.closedOrder[0])
			a.closedOrder = a.closedOrder[1:]
		}
		if _, known := a.closedReasons[pid]; !known {
			a.closedOrder = append(a.closedOrder, pid)
		}
		a.closedReasons[pid] = reason
	}
	a.pmu.Unlock()
	if p != nil {
		p.mu.Lock()
		dropped := len(p.outbox)
		p.outbox = nil
		p.mu.Unlock()
		if dropped > 0 {
			a.outboxDepth.Add(-int64(dropped))
		}
		a.logf("rcb-agent: participant %s disconnected: %s", pid, reason)
	}
	a.hub.notifyPID(pid)
	// A live channel learns of the disconnect the same way a parked poll
	// does: immediately, with the reason on the wire (a close frame here).
	a.closeChannel(pid, closeSignal{reason: reason})
}

// rememberedCloses bounds the disconnect-reason memory.
const rememberedCloses = 1024

// JoinRefusals reports connection requests refused by admission control or
// the shed ladder.
func (a *Agent) JoinRefusals() int64 { return a.joinRefusals.Load() }

// ParkRefusals reports long-polls answered immediately because of the
// parked-poll cap or the shed ladder.
func (a *Agent) ParkRefusals() int64 { return a.parkRefusals.Load() }

// StaleKicks reports participants disconnected as stale readers (ack lag or
// park age).
func (a *Agent) StaleKicks() int64 { return a.staleKicks.Load() }

// DuplicateActions reports actions dropped by the replay filter.
func (a *Agent) DuplicateActions() int64 { return a.duplicateActions.Load() }

// OutboxDepth reports the total queued mirror actions across participants —
// one of the shed ladder's load signals.
func (a *Agent) OutboxDepth() int64 { return a.outboxDepth.Load() }

// ContentBuilds reports how many times the Figure 3 pipeline has executed —
// with the single-flight guard this advances once per (document version,
// mode) no matter how many participants poll concurrently.
func (a *Agent) ContentBuilds() int64 { return a.builds.Load() }

// ParticipantCount reports how many participants are connected without
// copying the roster — Participants allocates one record per participant,
// which a scale harness polling the count at 4k participants cannot afford.
func (a *Agent) ParticipantCount() int {
	a.pmu.RLock()
	defer a.pmu.RUnlock()
	return len(a.participants)
}

// LatestDocTime reports the docTime of the newest prepared build across
// modes (0 before any build). Scale harnesses use it to map a host mutation
// to the docTime participants must reach, without re-rendering content.
func (a *Agent) LatestDocTime() int64 {
	a.cmu.Lock()
	defer a.cmu.Unlock()
	var latest int64
	for _, prep := range a.prepared {
		if prep != nil && prep.docTime > latest {
			latest = prep.docTime
		}
	}
	return latest
}

// contentForMode returns the prepared content for a mode, regenerating when
// the host document changed. Returns nil when no page is loaded yet.
//
// Generation is single-flight: the first poll to observe a new version runs
// BuildContent; concurrent polls for the same mode block on that execution
// and share its result instead of redundantly re-running the pipeline.
func (a *Agent) contentForMode(cacheMode bool) (*PreparedContent, error) {
	version := a.Browser.Version()
	if version == 0 {
		return nil, nil
	}
	a.cmu.Lock()
	// >= rather than ==: a poll that read the version before a concurrent
	// bump stored newer content must take the cache, not rebuild it.
	if prep := a.prepared[cacheMode]; prep != nil && prep.version >= version {
		a.cmu.Unlock()
		return prep, nil
	}
	if call := a.inflight[cacheMode]; call != nil && call.version >= version {
		a.cmu.Unlock()
		<-call.done
		return call.prep, call.err
	}
	call := &contentCall{version: version, done: make(chan struct{})}
	a.inflight[cacheMode] = call
	a.cmu.Unlock()

	prep, err := a.BuildContent(cacheMode)
	a.cmu.Lock()
	var lagFloor int64
	if err == nil {
		if cur := a.prepared[cacheMode]; cur == nil || prep.version >= cur.version {
			if cur != nil && prep.version > cur.version {
				if !a.DisableDelta && a.ShedLevel() < ShedNoDelta {
					// The replaced build joins the front of the delta-base
					// ring (newest first), capped at the configured depth;
					// every cached delta script targeted an old pair and is
					// stale. With deltas off nothing consumes the bases, so
					// don't multiply the retained payload.
					depth := a.deltaRingDepth()
					ring := a.prevRing[cacheMode]
					grown := make([]*PreparedContent, 0, min(len(ring)+1, depth))
					grown = append(grown, cur)
					for _, b := range ring {
						if len(grown) >= depth {
							break
						}
						grown = append(grown, b)
					}
					a.prevRing[cacheMode] = grown
					delete(a.delta, cacheMode)
				} else if len(a.prevRing[cacheMode]) > 0 || len(a.delta[cacheMode]) > 0 {
					// Deltas are off — statically or because the shed ladder
					// climbed to ShedNoDelta. Rotating would hoard the very
					// memory the ladder rung exists to free, so release the
					// ring instead and keep it empty until deltas return.
					delete(a.prevRing, cacheMode)
					delete(a.delta, cacheMode)
				}
			}
			a.prepared[cacheMode] = prep
			// Record the build for the stale-reader ruler and compute the
			// oldest docTime a reader may still acknowledge.
			hist := append(a.buildHist[cacheMode], prep.docTime)
			if len(hist) > maxBuildHist {
				hist = hist[len(hist)-maxBuildHist:]
			}
			a.buildHist[cacheMode] = hist
			if a.MaxAckLag > 0 && len(hist) > a.MaxAckLag {
				lagFloor = hist[len(hist)-1-a.MaxAckLag]
			}
		}
	}
	if a.inflight[cacheMode] == call {
		delete(a.inflight, cacheMode)
	}
	a.cmu.Unlock()
	if lagFloor > 0 {
		a.reapStaleReaders(cacheMode, lagFloor)
	}
	call.prep, call.err = prep, err
	close(call.done)
	return prep, err
}

// reapStaleReaders disconnects (StaleReader) every cacheMode-matching
// participant whose acknowledged docTime has fallen behind lagFloor — the
// docTime of the build MaxAckLag versions back. A reader that far behind is
// consuming outbox memory and wake fan-outs without keeping up; kicking it
// with a retryable reason converts it into a fresh full-snapshot join.
// Participants that never polled (LastDocTime 0) are exempt: they have no
// lag yet, only latency.
func (a *Agent) reapStaleReaders(cacheMode bool, lagFloor int64) {
	var stale []string
	a.pmu.RLock()
	for pid, p := range a.participants {
		p.mu.Lock()
		lagging := p.CacheMode == cacheMode && p.LastDocTime > 0 && p.LastDocTime < lagFloor
		p.mu.Unlock()
		if lagging {
			stale = append(stale, pid)
		}
	}
	a.pmu.RUnlock()
	for _, pid := range stale {
		a.staleKicks.Add(1)
		a.DisconnectWith(pid, CloseStaleReader)
	}
}

// BuildContent runs the full Figure 3 generation pipeline against the
// host's live document and returns the prepared message. Exported so the
// experiment harness can measure M5 (content generation time) directly.
func (a *Agent) BuildContent(cacheMode bool) (*PreparedContent, error) {
	a.builds.Add(1)
	version := a.Browser.Version()
	start := time.Now()
	var nc *NewContent
	err := a.Browser.WithDocument(func(pageURL string, doc *dom.Document) error {
		docTime := a.nextDocTime()
		nc = generateContent(doc.Root, contentOptions{
			pageURL:     pageURL,
			docTime:     docTime,
			cacheMode:   cacheMode,
			resolveRef:  hostResolver(a.Browser, pageURL),
			cacheHas:    a.Browser.Cache.Has,
			agentURLFor: a.registerObject,
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	xml := nc.Marshal()
	return &PreparedContent{
		version: version,
		docTime: nc.DocTime,
		xml:     xml,
		content: nc,
		splice:  len(xml) - len(closeNewContent),
		genTime: time.Since(start),
		resp:    httpwire.NewResponse(200, "application/xml", xml),
	}, nil
}

// DiffBuilds reports how many delta scripts have been computed — with the
// delta single-flight guard this advances once per (base, target, mode)
// pair no matter how many delta-eligible polls race on it.
func (a *Agent) DiffBuilds() int64 { return a.diffBuilds.Load() }

// DeltasServed reports how many polls were answered with a deltaContent
// message instead of the full snapshot.
func (a *Agent) DeltasServed() int64 { return a.deltasServed.Load() }

// deltaFor returns the shared delta response for a poll acknowledging base,
// or nil when the poll must fall back to the full snapshot. A delta exists
// between any delta-base ring member and the current build; each (base,
// target) pair's computation is single-flight, and a "not worth it" outcome
// (oversized script, top-level region change) is cached so the diff runs
// once per pair no matter how many mixed-base polls race on it.
func (a *Agent) deltaFor(cacheMode bool, base int64, prep *PreparedContent) *preparedDelta {
	a.cmu.Lock()
	var prev *PreparedContent
	for _, cand := range a.prevRing[cacheMode] {
		if cand.docTime == base {
			prev = cand
			break
		}
	}
	if prev == nil || prep.content == nil || prev.content == nil {
		a.cmu.Unlock()
		return nil // base not retained: fell off the ring, or agent restarted
	}
	if e := a.delta[cacheMode][base]; e != nil && e.target == prep.docTime {
		a.cmu.Unlock()
		return e.d
	}
	if call := a.deltaInflight[cacheMode][base]; call != nil && call.target == prep.docTime {
		a.cmu.Unlock()
		<-call.done
		return call.d
	}
	call := &deltaCall{base: base, target: prep.docTime, done: make(chan struct{})}
	if a.deltaInflight[cacheMode] == nil {
		a.deltaInflight[cacheMode] = make(map[int64]*deltaCall)
	}
	a.deltaInflight[cacheMode][base] = call
	a.cmu.Unlock()

	d := a.buildDelta(prev, prep)
	a.cmu.Lock()
	// Store only while still the registered call: a version rotation during
	// the diff may have started a newer pair's computation on this base, and
	// a stale (base, target) entry must not clobber its fresh cached result.
	if a.deltaInflight[cacheMode][base] == call {
		if a.delta[cacheMode] == nil {
			a.delta[cacheMode] = make(map[int64]*deltaEntry)
		}
		a.delta[cacheMode][base] = &deltaEntry{base: call.base, target: call.target, d: d}
		delete(a.deltaInflight[cacheMode], base)
	}
	a.cmu.Unlock()
	call.d = d
	close(call.done)
	return d
}

// DeltaBasesRetained reports how many replaced builds are currently held as
// delta bases across all modes — the memory the ShedNoDelta rung releases.
func (a *Agent) DeltaBasesRetained() int {
	a.cmu.Lock()
	defer a.cmu.Unlock()
	n := 0
	for _, ring := range a.prevRing {
		n += len(ring)
	}
	return n
}

// releaseDeltaState drops the delta-base ring, the cached delta scripts, and
// any in-flight registrations. Called when the shed ladder climbs to
// ShedNoDelta: deliver stops serving deltas at that rung, so the retained
// builds are pure memory pressure. In-flight diffs finish and hand their
// waiters a result, but the cleared registration keeps them from re-caching.
func (a *Agent) releaseDeltaState() {
	a.cmu.Lock()
	clear(a.prevRing)
	clear(a.delta)
	clear(a.deltaInflight)
	a.cmu.Unlock()
}

// warmWakeDeltas is the delivery hub's preWake hook: it runs on the trailing
// edge of a debounced wake, after the parked waiters are collected but
// before fan-out. It gathers the distinct (mode, acked docTime) pairs of the
// woken waiters and of every attached channel, and computes those deltas
// once — so a thousand-strong fleet hits a warm cache instead of racing all
// its polls on the first diff of each pair.
func (a *Agent) warmWakeDeltas(woken []*pollWaiter) {
	if a.DisableDelta || a.ShedLevel() >= ShedNoDelta {
		return
	}
	a.smu.RLock()
	defer a.smu.RUnlock()
	if a.relocatedTo != "" {
		return
	}
	type pair struct {
		mode bool
		base int64
	}
	want := make(map[pair]struct{})
	for _, w := range woken {
		if !w.deltaOK || w.ts <= 0 {
			continue
		}
		if p := a.participant(w.pid); p != nil {
			p.mu.Lock()
			mode := p.CacheMode
			p.mu.Unlock()
			want[pair{mode, w.ts}] = struct{}{}
		}
	}
	a.chmu.Lock()
	chans := make([]*agentChannel, 0, len(a.channels))
	for _, ch := range a.channels {
		if ch.deltaOK {
			chans = append(chans, ch)
		}
	}
	a.chmu.Unlock()
	for _, ch := range chans {
		ch.mu.Lock()
		base := ch.base
		ch.mu.Unlock()
		if base <= 0 {
			continue
		}
		if p := a.participant(ch.pid); p != nil {
			p.mu.Lock()
			mode := p.CacheMode
			p.mu.Unlock()
			want[pair{mode, base}] = struct{}{}
		}
	}
	for k := range want {
		prep, err := a.contentForMode(k.mode)
		if err != nil || prep == nil || prep.docTime <= k.base {
			continue
		}
		a.deltaFor(k.mode, k.base, prep)
	}
}

// deltaRegionTags are the top-level regions a delta can patch.
var deltaRegionTags = [...]string{"body", "frameset", "noframes"}

// buildDelta computes and encodes the edit script between two consecutive
// builds. Diffs run between the builds' participant-equivalent trees (see
// participantTree), never the live clones, so patch paths resolve on what
// participants actually hold. It returns nil when no worthwhile delta
// exists: the top-level region set changed (the snippet's cleanup step
// handles that transition on the full path), or the encoded message is not
// smaller than the full snapshot.
func (a *Agent) buildDelta(prev, cur *PreparedContent) *preparedDelta {
	a.diffBuilds.Add(1)
	d := &DeltaContent{DocTime: cur.docTime, BaseDocTime: prev.docTime}
	if !headChildrenEqual(prev.content.Head, cur.content.Head) {
		d.HasHead = true
		d.Head = cur.content.Head
	}
	if (prev.content.Body == nil) != (cur.content.Body == nil) ||
		(prev.content.FrameSet == nil) != (cur.content.FrameSet == nil) ||
		(prev.content.NoFrames == nil) != (cur.content.NoFrames == nil) {
		return nil
	}
	pt, ct := prev.participantTree(), cur.participantTree()
	for _, tag := range deltaRegionTags {
		po, co := pt.FirstChildElement(tag), ct.FirstChildElement(tag)
		if po == nil || co == nil {
			continue // absent on both sides, per the presence check above
		}
		patches := dom.Diff(po, co)
		if len(patches) == 0 {
			continue
		}
		switch tag {
		case "body":
			d.Body = patches
		case "frameset":
			d.FrameSet = patches
		default:
			d.NoFrames = patches
		}
	}
	xml := d.Marshal()
	if len(xml) >= len(cur.xml) {
		return nil // oversized: the snapshot is cheaper to ship and apply
	}
	return &preparedDelta{
		baseDocTime: prev.docTime,
		docTime:     cur.docTime,
		xml:         xml,
		splice:      len(xml) - len(closeDeltaContent),
		resp:        httpwire.NewResponse(200, "application/xml", xml),
	}
}

// nextDocTime issues the timestamp for a document version: wall-clock
// milliseconds (as the paper specifies) made strictly monotonic so rapid
// successive versions remain distinguishable.
func (a *Agent) nextDocTime() int64 {
	a.tmu.Lock()
	defer a.tmu.Unlock()
	t := time.Now().UnixMilli()
	if t <= a.lastDocTime {
		t = a.lastDocTime + 1
	}
	a.lastDocTime = t
	return t
}

// registerObject maps an absolute URL into the agent's object namespace and
// returns the full agent URL for it. When authentication is on, the URL is
// pre-signed: object fetches are issued by the participant browser's
// renderer, which cannot compute MACs itself. Signing happens outside the
// table lock — HMAC cost must not serialize other registrations.
func (a *Agent) registerObject(absURL string) string {
	a.omu.Lock()
	path, ok := a.tokens[absURL]
	if !ok {
		buf := make([]byte, 0, 20)
		buf = append(buf, "/obj/t"...)
		buf = strconv.AppendInt(buf, int64(len(a.tokens)+1), 10)
		path = string(buf)
		a.tokens[absURL] = path
		a.mapping[path] = absURL
	}
	a.omu.Unlock()
	target := path
	if a.Auth != nil {
		target = a.Auth.Sign("GET", path, nil)
	}
	return a.URL() + target
}

// MappingLen reports the size of the object mapping table.
func (a *Agent) MappingLen() int {
	a.omu.Lock()
	defer a.omu.Unlock()
	return len(a.mapping)
}

// handleAction routes one participant action through the policy.
func (a *Agent) handleAction(pid string, act Action) {
	a.amu.Lock()
	a.actionSeq++
	act.Seq = a.actionSeq
	a.amu.Unlock()

	switch a.Policy.Decide(pid, act) {
	case Deny:
		a.logf("rcb-agent: denied %s", act)
	case Confirm:
		a.amu.Lock()
		a.pending = append(a.pending, PendingAction{Seq: act.Seq, ParticipantID: pid, Action: act})
		a.amu.Unlock()
		a.logf("rcb-agent: queued for confirmation: %s", act)
	case Apply:
		if err := a.ApplyAction(act); err != nil {
			a.logf("rcb-agent: apply %s: %v", act, err)
		}
	}
}

// PendingConfirmations lists actions awaiting host approval.
func (a *Agent) PendingConfirmations() []PendingAction {
	a.amu.Lock()
	defer a.amu.Unlock()
	return append([]PendingAction(nil), a.pending...)
}

// Confirm resolves a queued action by sequence number: approved actions are
// applied, rejected ones dropped.
func (a *Agent) Confirm(seq int64, approve bool) error {
	a.amu.Lock()
	idx := -1
	for i, pa := range a.pending {
		if pa.Seq == seq {
			idx = i
			break
		}
	}
	if idx < 0 {
		a.amu.Unlock()
		return fmt.Errorf("rcb-agent: no pending action %d", seq)
	}
	pa := a.pending[idx]
	a.pending = append(a.pending[:idx], a.pending[idx+1:]...)
	a.amu.Unlock()
	if !approve {
		a.logf("rcb-agent: rejected %s", pa.Action)
		return nil
	}
	return a.ApplyAction(pa.Action)
}

// ApplyAction performs an action on the host browser: clicks navigate or
// submit, form data merges into the live DOM, pointer and scroll actions
// mirror to the other users.
func (a *Agent) ApplyAction(act Action) error {
	switch act.Kind {
	case ActionMouseMove, ActionScroll:
		a.Broadcast(act)
		return nil
	case ActionFormInput:
		return a.Browser.ApplyMutation(func(doc *dom.Document) error {
			el := ResolvePath(doc.Root, act.Target)
			if el == nil {
				return fmt.Errorf("stale target %q", act.Target)
			}
			if el.Tag == "textarea" {
				el.ReplaceChildren(dom.NewText(act.Value))
			} else {
				el.SetAttr("value", act.Value)
			}
			return nil
		})
	case ActionFormSubmit:
		values := make(map[string]string, len(act.Fields))
		for _, f := range act.Fields {
			values[f.Name] = f.Value
		}
		var form *dom.Node
		err := a.Browser.ApplyMutation(func(doc *dom.Document) error {
			form = ResolvePath(doc.Root, act.Target)
			if form == nil || form.Tag != "form" {
				return fmt.Errorf("stale form target %q", act.Target)
			}
			if mergeFormData(form, values) == 0 {
				a.logf("rcb-agent: formsubmit %s matched no fields", fmtPath(form))
			}
			return nil
		})
		if err != nil {
			return err
		}
		if a.AutoSubmitForms {
			_, err = a.Browser.SubmitForm(form, act.Fields)
		}
		return err
	case ActionClick:
		return a.applyClick(act)
	default:
		return fmt.Errorf("rcb-agent: unknown action kind %q", act.Kind)
	}
}

// applyClick performs a participant's click on the host browser: links
// navigate (the participant's "browsing requests ... first sent back to the
// RCB-Agent on Bob's browser and then sent out" §5.2.2); submit buttons
// submit their enclosing form with the values currently in the DOM.
func (a *Agent) applyClick(act Action) error {
	var href string
	var form *dom.Node
	err := a.Browser.WithDocument(func(pageURL string, doc *dom.Document) error {
		el := ResolvePath(doc.Root, act.Target)
		if el == nil {
			return fmt.Errorf("stale click target %q", act.Target)
		}
		switch el.Tag {
		case "a":
			ref := el.AttrOr("href", "")
			if ref == "" || ref == "#" {
				return nil
			}
			abs, err := browser.Resolve(pageURL, ref)
			if err != nil {
				return err
			}
			href = abs
		case "input", "button":
			for cur := el; cur != nil; cur = cur.Parent {
				if cur.Tag == "form" {
					form = cur
					break
				}
			}
			if form == nil {
				return fmt.Errorf("click target %q is not inside a form", act.Target)
			}
		default:
			return fmt.Errorf("unsupported click target <%s>", el.Tag)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if href != "" {
		_, err := a.Browser.Navigate(href)
		return err
	}
	if form != nil {
		vals := formValues(form)
		fields := make([]httpwire.FormField, len(vals))
		for i, v := range vals {
			fields[i] = httpwire.FormField{Name: v.Name, Value: v.Value}
		}
		_, err := a.Browser.SubmitForm(form, fields)
		return err
	}
	return nil
}

// Broadcast queues an action for delivery to every participant except its
// originator — pointer mirroring (paper step 9). The participant table is
// only read-locked; each outbox append takes that participant's own lock,
// then wakes any long-poll that participant has parked so mirror actions
// push out immediately instead of riding the next interval.
func (a *Agent) Broadcast(act Action) {
	a.pmu.RLock()
	for _, p := range a.participants {
		if p.ID == act.From {
			continue
		}
		p.mu.Lock()
		before := len(p.outbox)
		p.outbox = append(p.outbox, act)
		if len(p.outbox) > maxOutbox {
			p.outbox = p.outbox[len(p.outbox)-maxOutbox:]
		}
		after := len(p.outbox)
		p.mu.Unlock()
		if d := after - before; d != 0 {
			a.outboxDepth.Add(int64(d))
		}
		a.hub.notifyPID(p.ID)
		a.notifyChannel(p.ID)
	}
	a.pmu.RUnlock()
	a.maybeEvalLoad()
}

// HostAction reports a host-side interaction (pointer move, scroll) for
// mirroring to all participants.
func (a *Agent) HostAction(act Action) {
	act.From = "host"
	a.Broadcast(act)
}
