package core

// Decision is a policy verdict on a participant action (paper §3.3: the
// agent "can either immediately perform the click action on the host
// browser, or ask the co-browsing host to inspect and explicitly confirm").
type Decision int

// Policy verdicts.
const (
	// Apply performs the action on the host browser immediately.
	Apply Decision = iota
	// Confirm queues the action for explicit host approval.
	Confirm
	// Deny drops the action.
	Deny
)

// String names the decision.
func (d Decision) String() string {
	switch d {
	case Apply:
		return "apply"
	case Confirm:
		return "confirm"
	case Deny:
		return "deny"
	}
	return "unknown"
}

// Policy decides what to do with each action a participant sends. The
// paper leaves policy specification application-dependent (§3.3); these
// implementations cover its three discussed postures.
type Policy interface {
	Decide(participantID string, act Action) Decision
}

// PolicyFunc adapts a function to Policy.
type PolicyFunc func(participantID string, act Action) Decision

// Decide calls f.
func (f PolicyFunc) Decide(participantID string, act Action) Decision {
	return f(participantID, act)
}

// OpenPolicy applies every participant action immediately — the online
// co-shopping posture where "anyone in a co-browsing session [may] initiate
// browsing actions and navigate to new pages".
func OpenPolicy() Policy {
	return PolicyFunc(func(string, Action) Decision { return Apply })
}

// ReadOnlyPolicy lets participants watch but not act — the online training
// posture. Pointer moves still mirror (they carry no page effect).
func ReadOnlyPolicy() Policy {
	return PolicyFunc(func(_ string, act Action) Decision {
		if act.Kind == ActionMouseMove || act.Kind == ActionScroll {
			return Apply
		}
		return Deny
	})
}

// ModeratedPolicy queues navigation-class actions (clicks, form submits)
// for host confirmation while applying harmless ones immediately.
func ModeratedPolicy() Policy {
	return PolicyFunc(func(_ string, act Action) Decision {
		switch act.Kind {
		case ActionClick, ActionFormSubmit:
			return Confirm
		default:
			return Apply
		}
	})
}

// AllowListPolicy applies actions only from the listed participants,
// denying everyone else — the "whom are allowed to perform certain
// interactions" scenario of §3.3.
func AllowListPolicy(ids ...string) Policy {
	allowed := make(map[string]bool, len(ids))
	for _, id := range ids {
		allowed[id] = true
	}
	return PolicyFunc(func(id string, act Action) Decision {
		if allowed[id] {
			return Apply
		}
		if act.Kind == ActionMouseMove || act.Kind == ActionScroll {
			return Apply // pointer mirroring is harmless
		}
		return Deny
	})
}
