package core

import (
	"errors"
	"fmt"

	"rcb/internal/httpwire"
)

// CloseReason says why the agent terminated a participant's session or
// refused a request. The paper's agent answers every such condition with a
// bare 403; carrying an explicit reason on the wire lets the snippet decide
// between rejoining (transient server-side conditions) and giving up
// (deliberate removal), and gives operators a taxonomy for counters.
type CloseReason int

const (
	// CloseNone means the session was not closed; the zero value never
	// appears on the wire.
	CloseNone CloseReason = iota
	// CloseLeave: the participant left voluntarily (or the host removed its
	// registration through the normal leave path). No rejoin.
	CloseLeave
	// CloseKicked: the host explicitly ejected the participant. No rejoin.
	CloseKicked
	// CloseSessionFull: admission refused — the session is at its
	// participant cap or the agent is shedding joins. Rejoin later.
	CloseSessionFull
	// CloseOvercommitted: the agent dropped the participant to relieve
	// resource pressure (parked-poll cap). Rejoin later.
	CloseOvercommitted
	// CloseStaleReader: the participant's acknowledged version lagged the
	// document beyond the configured distance, or its parked poll exceeded
	// the maximum age. Rejoin triggers a full resync.
	CloseStaleReader
	// CloseAgentClosing: the agent itself is shutting down. Rejoin with
	// backoff — the host may restart.
	CloseAgentClosing
	// CloseMoved: the session migrated to another agent process. The
	// response carries the new address in RelocateHeader; the snippet
	// rejoins there on its normal backoff path.
	CloseMoved
	// CloseUnknown: the agent has no record of the participant (expired
	// state, restarted agent). Rejoin re-registers.
	CloseUnknown
)

var closeReasonNames = map[CloseReason]string{
	CloseLeave:         "LEAVE",
	CloseKicked:        "KICKED",
	CloseSessionFull:   "SESSION_FULL",
	CloseOvercommitted: "OVERCOMMITTED",
	CloseStaleReader:   "STALE_READER",
	CloseAgentClosing:  "AGENT_CLOSING",
	CloseMoved:         "MOVED",
	CloseUnknown:       "UNKNOWN",
}

// String returns the wire spelling of the reason ("" for CloseNone).
func (r CloseReason) String() string { return closeReasonNames[r] }

// ParseCloseReason maps a wire spelling back to the enum; unrecognized
// non-empty values come back as CloseUnknown so a newer agent's reasons
// still register as closures on an older snippet.
func ParseCloseReason(s string) CloseReason {
	if s == "" {
		return CloseNone
	}
	for r, name := range closeReasonNames {
		if s == name {
			return r
		}
	}
	return CloseUnknown
}

// Retryable reports whether a snippet may rejoin after this close reason.
// Only deliberate removals are final.
func (r CloseReason) Retryable() bool {
	switch r {
	case CloseLeave, CloseKicked:
		return false
	default:
		return true
	}
}

// StatusCode is the HTTP status a terminal response with this reason
// carries: 403 for "you are not (or no longer) a participant", 503 for
// "the agent cannot serve you right now".
func (r CloseReason) StatusCode() int {
	switch r {
	case CloseSessionFull, CloseOvercommitted, CloseAgentClosing, CloseMoved:
		return 503
	default:
		return 403
	}
}

// Wire fields of the close-reason protocol.
const (
	// CloseReasonHeader carries a CloseReason spelling on terminal
	// responses (and on the empty poll responses a closing agent uses to
	// complete parked polls).
	CloseReasonHeader = "Rcb-Close-Reason"
	// RetryAfterHeader carries a server-assigned retry interval in
	// milliseconds; the snippet honors it before its next poll.
	RetryAfterHeader = "Rcb-Retry-After"
	// RelocateHeader accompanies a MOVED close reason and names the
	// listen address of the agent now serving the session.
	RelocateHeader = "Rcb-Relocate"
)

// CloseError is the error a Snippet surfaces when the agent terminated the
// exchange with an explicit reason.
type CloseError struct {
	Reason CloseReason
	Status int
}

func (e *CloseError) Error() string {
	return fmt.Sprintf("rcb: session closed by agent: %s (status %d)", e.Reason, e.Status)
}

// CloseReasonOf extracts the close reason from an error chain, or CloseNone
// when err carries no reason.
func CloseReasonOf(err error) CloseReason {
	var ce *CloseError
	if errors.As(err, &ce) {
		return ce.Reason
	}
	return CloseNone
}

// closeResponse builds a terminal response carrying reason in the wire
// header. Responses are built per call (not shared) because callers may add
// a retry-after hint.
func closeResponse(reason CloseReason) *httpwire.Response {
	resp := httpwire.NewResponse(reason.StatusCode(), "text/plain",
		[]byte("session closed: "+reason.String()+"\n"))
	resp.Header.Set(CloseReasonHeader, reason.String())
	return resp
}
