package core

// Session state codec tests: the export → import → export round-trip
// property the durability layer rests on, checkpoint restore behavior, and
// the bounded (CID, CSeq) replay filter under participant churn.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"rcb/internal/browser"
	"rcb/internal/httpwire"
	"rcb/internal/sites"
)

// confirmInputsPolicy queues forminput actions for host confirmation so the
// moderation queue has content to serialize.
type confirmInputsPolicy struct{}

func (confirmInputsPolicy) Decide(_ string, act Action) Decision {
	if act.Kind == ActionFormInput {
		return Confirm
	}
	return Apply
}

// populateSession drives a world into a state exercising every section of
// the codec: two participants at different ack points, a pending mirrored
// action in an outbox, replay stamps, a queued confirmation, a departed
// participant with a close reason, and (cache mode) an object mapping.
func populateSession(t *testing.T, w *world) (alice, bob *Snippet) {
	t.Helper()
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")

	alice = w.join(t, "alice.lan")
	bob = w.join(t, "bob.lan")
	for _, s := range []*Snippet{alice, bob} {
		if _, err := s.PollOnce(); err != nil {
			t.Fatal(err)
		}
	}

	// A mirrored pointer action: stamped by alice, applied by the policy,
	// delivered to alice (her next poll) but still parked in bob's outbox.
	alice.dispatch(Action{Kind: ActionMouseMove, X: 41, Y: 2})
	if _, err := alice.PollOnce(); err != nil {
		t.Fatal(err)
	}
	// A queued confirmation, stamped with bob's CID.
	bob.dispatch(Action{Kind: ActionFormInput, Target: "t1", Value: "draft"})
	if _, err := bob.PollOnce(); err != nil {
		t.Fatal(err)
	}
	if n := len(w.agent.PendingConfirmations()); n != 1 {
		t.Fatalf("pending confirmations = %d, want 1", n)
	}

	// A departed participant whose close reason the session must remember.
	// Joins are sequential, so the third join is p3.
	carol := w.join(t, "carol.lan")
	if _, err := carol.PollOnce(); err != nil {
		t.Fatal(err)
	}
	w.agent.DisconnectWith("p3", CloseKicked)
	return alice, bob
}

// agentDocTime reads the agent's docTime clock.
func agentDocTime(a *Agent) int64 {
	a.tmu.Lock()
	defer a.tmu.Unlock()
	return a.lastDocTime
}

// TestStateRoundTripByteIdentical pins the determinism property: exporting
// a populated session, importing it into a fresh agent at the same address,
// and exporting again yields byte-identical snapshots.
func TestStateRoundTripByteIdentical(t *testing.T) {
	w := newWorld(t, func(a *Agent) {
		a.Policy = confirmInputsPolicy{}
		a.DefaultCacheMode = true
		a.Auth = NewAuthenticator("roundtrip-key")
	})
	// Joins ride the authenticated paths so cookies and HMACs are real.
	joinAuthed := func(loc string) *Snippet {
		pb := browser.New(loc, w.corpus.Network.Dialer(loc))
		t.Cleanup(pb.Close)
		s := NewSnippet(pb, "http://"+agentAddr, "roundtrip-key")
		if err := s.Join(); err != nil {
			t.Fatal(err)
		}
		return s
	}
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	alice := joinAuthed("alice.lan")
	bob := joinAuthed("bob.lan")
	for _, s := range []*Snippet{alice, bob} {
		if _, err := s.PollOnce(); err != nil {
			t.Fatal(err)
		}
	}
	alice.dispatch(Action{Kind: ActionMouseMove, X: 41, Y: 2})
	if _, err := alice.PollOnce(); err != nil {
		t.Fatal(err)
	}
	bob.dispatch(Action{Kind: ActionFormInput, Target: "t1", Value: "draft"})
	if _, err := bob.PollOnce(); err != nil {
		t.Fatal(err)
	}
	joinAuthed("carol.lan") // p3: joins are sequential
	w.agent.DisconnectWith("p3", CloseKicked)

	first, err := w.agent.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	rb := browser.New("restore.lan", w.corpus.Network.Dialer("restore.lan"))
	t.Cleanup(rb.Close)
	restored, err := RestoreAgent(rb, agentAddr, first)
	if err != nil {
		t.Fatal(err)
	}
	second, err := restored.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("export → import → export not byte-identical:\n first: %s\nsecond: %s", first, second)
	}
	if restored.Auth == nil {
		t.Fatal("restored agent did not adopt the session key")
	}
	if n := len(restored.PendingConfirmations()); n != 1 {
		t.Fatalf("restored pending confirmations = %d, want 1", n)
	}
}

// TestRestoredAgentServesSamePreparedBytes kills the server, restores the
// session into a fresh agent and browser at the same address, and checks a
// participant's next poll is answered from the imported prepared content —
// same docTime, zero rebuilds — and converges byte-identically.
func TestRestoredAgentServesSamePreparedBytes(t *testing.T) {
	w := newWorld(t, func(a *Agent) { a.Policy = confirmInputsPolicy{} })
	alice, bob := populateSession(t, w)

	// Advance the document and let bob consume it so the delta/prepared
	// cache describes the current version at export time.
	mutateBody(t, w)
	if _, err := bob.PollOnce(); err != nil {
		t.Fatal(err)
	}

	state, err := w.agent.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	exportedDocTime := agentDocTime(w.agent)

	// Kill: the listener goes away, exactly as in a process death.
	w.server.Close()
	w.agent.Close()

	rb := browser.New("restorehost.lan", w.corpus.Network.Dialer("restorehost.lan"))
	t.Cleanup(rb.Close)
	restored, err := RestoreAgent(rb, agentAddr, state)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(restored.Close)
	l, err := w.corpus.Network.Listen(agentAddr)
	if err != nil {
		t.Fatal(err)
	}
	srv := &httpwire.Server{Handler: restored}
	srv.Start(l)
	t.Cleanup(srv.Close)

	if got := agentDocTime(restored); got != exportedDocTime {
		t.Fatalf("restored docTime = %d, want %d", got, exportedDocTime)
	}

	// Alice last acknowledged the pre-mutation version; the restored agent
	// must serve her the update from the imported cache without a rebuild.
	updated, err := alice.PollOnce()
	if err != nil {
		t.Fatal(err)
	}
	if !updated {
		t.Fatal("restored agent delivered no content to a lagging participant")
	}
	if builds := restored.ContentBuilds(); builds != 0 {
		t.Fatalf("restored agent rebuilt content %d times; imported prepared bytes should have served the poll", builds)
	}
	if got, want := alice.DocTime(), exportedDocTime; got != want {
		t.Fatalf("alice docTime = %d, want %d", got, want)
	}
	if a, b := docHTML(t, alice.Browser), docHTML(t, bob.Browser); a != b {
		t.Fatalf("replicas diverged across restore:\nalice: %s\n  bob: %s", a, b)
	}
}

// TestRestoreRejectsWrongSchema pins the versioning contract: a snapshot
// from a different schema is refused, not guessed at.
func TestRestoreRejectsWrongSchema(t *testing.T) {
	w := newWorld(t, nil)
	state, err := w.agent.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(state,
		[]byte(fmt.Sprintf(`"schema":%d`, StateSchemaVersion)),
		[]byte(`"schema":999`), 1)
	rb := browser.New("schema.lan", w.corpus.Network.Dialer("schema.lan"))
	t.Cleanup(rb.Close)
	if _, err := RestoreAgent(rb, agentAddr, bad); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong-schema import error = %v, want schema refusal", err)
	}
}

// TestRestoreRefusesLiveSession: importing over an agent that already has
// participants would corrupt a running session; the importer must refuse.
func TestRestoreRefusesLiveSession(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	w.join(t, "alice.lan")
	state, err := w.agent.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.agent.ImportState(state); err == nil {
		t.Fatal("import over a live session succeeded")
	}
}

// TestStaleCheckpointForcesResync restores from a checkpoint older than
// what a participant has acknowledged. The participant's ts is then in the
// restored agent's future; the agent must treat it as unknown and resync in
// full rather than reply "unchanged" forever.
func TestStaleCheckpointForcesResync(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	alice := w.join(t, "alice.lan")
	if _, err := alice.PollOnce(); err != nil {
		t.Fatal(err)
	}

	state, err := w.agent.ExportState() // checkpoint taken now...
	if err != nil {
		t.Fatal(err)
	}
	mutateBody(t, w) // ...then the session moves on
	if _, err := alice.PollOnce(); err != nil {
		t.Fatal(err)
	}
	aheadDocTime := alice.DocTime()

	w.server.Close()
	w.agent.Close()
	rb := browser.New("stale.lan", w.corpus.Network.Dialer("stale.lan"))
	t.Cleanup(rb.Close)
	restored, err := RestoreAgent(rb, agentAddr, state)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(restored.Close)
	if got := agentDocTime(restored); got >= aheadDocTime {
		t.Fatalf("test setup: restored docTime %d not behind participant's %d", got, aheadDocTime)
	}
	l, err := w.corpus.Network.Listen(agentAddr)
	if err != nil {
		t.Fatal(err)
	}
	srv := &httpwire.Server{Handler: restored}
	srv.Start(l)
	t.Cleanup(srv.Close)

	updated, err := alice.PollOnce()
	if err != nil {
		t.Fatal(err)
	}
	if !updated {
		t.Fatal("poll with a future ts returned no content; participant would be stuck ahead of the restored session")
	}
	// The full resync snapshot lands the participant on the restored
	// (older) document — byte-identical to a fresh reference join.
	ref := w.join(t, "staleref.lan")
	if _, err := ref.PollOnce(); err != nil {
		t.Fatal(err)
	}
	if got, want := docHTML(t, alice.Browser), docHTML(t, ref.Browser); got != want {
		t.Fatalf("future-ts participant diverged after restore:\n got: %s\nwant: %s", got, want)
	}
}

// TestDedupTableBoundedUnderChurn simulates a month of participant churn
// against the replay filter with an injected clock: transient clients come
// and go every simulated hour while one long-lived client keeps acting. The
// table must stay bounded, and the active client's stamps must survive the
// whole month — its duplicates still filtered at the end.
func TestDedupTableBoundedUnderChurn(t *testing.T) {
	w := newWorld(t, nil)
	a := w.agent
	now := time.Unix(1_700_000_000, 0)
	a.dedupNow = func() time.Time { return now }

	sticky := Action{Kind: ActionMouseMove, CID: "sticky", CSeq: 1}
	if got := len(a.freshActions([]Action{sticky})); got != 1 {
		t.Fatalf("first sticky action filtered: %d survivors", got)
	}

	cseq := int64(1)
	for hour := 0; hour < 24*30; hour++ {
		now = now.Add(time.Hour)
		// A burst of transient clients, never to be seen again.
		var burst []Action
		for i := 0; i < 3; i++ {
			cseq++
			burst = append(burst, Action{Kind: ActionMouseMove, CID: fmt.Sprintf("churn-h%d-%d", hour, i), CSeq: cseq})
		}
		if got := len(a.freshActions(burst)); got != 3 {
			t.Fatalf("hour %d: fresh burst filtered: %d survivors, want 3", hour, got)
		}
		// The long-lived client acts once an hour, staying active.
		cseq++
		live := Action{Kind: ActionMouseMove, CID: "sticky", CSeq: cseq}
		if got := len(a.freshActions([]Action{live})); got != 1 {
			t.Fatalf("hour %d: active client's fresh action filtered", hour)
		}
		if n := a.DedupClients(); n > maxDedupClients {
			t.Fatalf("hour %d: dedup table grew to %d clients (cap %d)", hour, n, maxDedupClients)
		}
	}

	// A month later, a replay of the active client's very first action must
	// still be recognized as a duplicate... (maxSeq window, not the FIFO)
	if got := len(a.freshActions([]Action{sticky})); got != 0 {
		t.Fatal("active client's stamps were evicted during churn: old action replayed")
	}
	// ...while the long-departed transient clients have been evicted: their
	// replays pass the filter again, the documented cost of bounding memory.
	ghost := Action{Kind: ActionMouseMove, CID: "churn-h0-0", CSeq: 2}
	if got := len(a.freshActions([]Action{ghost})); got != 1 {
		t.Fatal("hour-0 transient client still holds dedup state after a month; eviction never ran")
	}
	if n := a.DedupClients(); n > maxDedupClients {
		t.Fatalf("final dedup table %d clients, cap %d", n, maxDedupClients)
	}
}

// TestDeltaRingStateRoundTrip: a session holding several delta bases exports
// the whole ring, restores byte-identically, and the restored agent serves a
// lagging participant an incremental delta against an imported ring base.
func TestDeltaRingStateRoundTrip(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	alice := w.join(t, "alice.lan")
	bob := w.join(t, "bob.lan")
	for _, s := range []*Snippet{alice, bob} {
		if _, err := s.PollOnce(); err != nil {
			t.Fatal(err)
		}
	}
	// Three edits with only alice keeping up: the ring retains three bases,
	// and bob's ack is the second-oldest of them.
	for i := 1; i <= 3; i++ {
		hostEdit(t, w, i)
		if _, err := alice.PollOnce(); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.agent.DeltaBasesRetained(); got != 3 {
		t.Fatalf("DeltaBasesRetained = %d, want 3", got)
	}

	first, err := w.agent.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	w.server.Close()
	w.agent.Close()

	rb := browser.New("ringrestore.lan", w.corpus.Network.Dialer("ringrestore.lan"))
	t.Cleanup(rb.Close)
	restored, err := RestoreAgent(rb, agentAddr, first)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(restored.Close)
	second, err := restored.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("ring export → import → export not byte-identical:\n first: %s\nsecond: %s", first, second)
	}
	if got := restored.DeltaBasesRetained(); got != 3 {
		t.Fatalf("restored DeltaBasesRetained = %d, want 3", got)
	}

	l, err := w.corpus.Network.Listen(agentAddr)
	if err != nil {
		t.Fatal(err)
	}
	srv := &httpwire.Server{Handler: restored}
	srv.Start(l)
	t.Cleanup(srv.Close)

	// bob is three builds behind but his base survived the restore in the
	// imported ring: his next poll must ride a delta, not a snapshot.
	updated, err := bob.PollOnce()
	if err != nil || !updated {
		t.Fatalf("lagging poll after restore: updated=%v err=%v", updated, err)
	}
	if got := restored.DeltasServed(); got != 1 {
		t.Fatalf("restored DeltasServed = %d, want 1", got)
	}
	if a, b := docHTML(t, alice.Browser), docHTML(t, bob.Browser); a != b {
		t.Fatalf("replicas diverged across ring restore:\nalice: %s\n  bob: %s", a, b)
	}
}

// TestStateImportV1SinglePrev: a checkpoint written before the delta-base
// ring existed carries at most one base in the legacy Prev fields and no
// "ring" key. It must still import — schema 1 is additive — and yield a
// one-deep ring.
func TestStateImportV1SinglePrev(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	alice := w.join(t, "alice.lan")
	if _, err := alice.PollOnce(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		hostEdit(t, w, i)
		if _, err := alice.PollOnce(); err != nil {
			t.Fatal(err)
		}
	}
	state, err := w.agent.ExportState()
	if err != nil {
		t.Fatal(err)
	}

	// Rewrite the snapshot into its pre-ring shape: keep the newest base in
	// the Prev fields, drop the Ring extension — exactly what an old writer
	// would have produced.
	var st agentState
	if err := json.Unmarshal(state, &st); err != nil {
		t.Fatal(err)
	}
	sawRing := false
	for i := range st.Prepared {
		if len(st.Prepared[i].Ring) > 0 {
			sawRing = true
		}
		st.Prepared[i].Ring = nil
	}
	if !sawRing {
		t.Fatal("test setup: export carried no ring extension to strip")
	}
	v1, err := json.Marshal(&st)
	if err != nil {
		t.Fatal(err)
	}

	rb := browser.New("v1restore.lan", w.corpus.Network.Dialer("v1restore.lan"))
	t.Cleanup(rb.Close)
	restored, err := RestoreAgent(rb, agentAddr, v1)
	if err != nil {
		t.Fatalf("v1 single-prev checkpoint refused: %v", err)
	}
	t.Cleanup(restored.Close)
	if got := restored.DeltaBasesRetained(); got != 1 {
		t.Fatalf("restored DeltaBasesRetained = %d, want 1 (the legacy Prev base)", got)
	}
}
