package core

import (
	"testing"
	"time"
)

// TestCloseFrameReasonParity pins the two spellings of the close-reason
// protocol to each other: the Rcb-Close-Reason header a terminal HTTP
// response carries and the form-encoded FrameClose payload a persistent
// channel sends must round-trip to the same CloseReason, with the same
// retryable/terminal classification and status code, for every reason —
// so a snippet degrading from duplex to polling never changes its rejoin
// decision mid-flight.
func TestCloseFrameReasonParity(t *testing.T) {
	reasons := []CloseReason{
		CloseLeave, CloseKicked, CloseSessionFull, CloseOvercommitted,
		CloseStaleReader, CloseAgentClosing, CloseMoved, CloseUnknown,
	}
	if len(reasons) != len(closeReasonNames) {
		t.Fatalf("test covers %d reasons, wire map has %d — extend both", len(reasons), len(closeReasonNames))
	}
	for _, reason := range reasons {
		reason := reason
		t.Run(reason.String(), func(t *testing.T) {
			// Header path: a terminal response built for this reason.
			resp := closeResponse(reason)
			hdr := resp.Header.Get(CloseReasonHeader)
			if hdr == "" {
				t.Fatalf("closeResponse(%v) carries no %s header", reason, CloseReasonHeader)
			}
			headerReason := ParseCloseReason(hdr)
			if headerReason != reason {
				t.Fatalf("header path: %q parses to %v, want %v", hdr, headerReason, reason)
			}
			if resp.StatusCode != reason.StatusCode() {
				t.Errorf("header path status = %d, want %d", resp.StatusCode, reason.StatusCode())
			}

			// Frame path: the FrameClose payload for the same reason.
			cs := decodeCloseSignal(encodeCloseSignal(closeSignal{reason: reason}))
			if cs.reason != headerReason {
				t.Errorf("frame path decodes to %v, header path to %v — the two wire "+
					"spellings diverged", cs.reason, headerReason)
			}
			if cs.reason.Retryable() != reason.Retryable() {
				t.Errorf("frame path retryable = %v, want %v", cs.reason.Retryable(), reason.Retryable())
			}

			// Retry and relocate hints survive the frame round trip, the
			// way Rcb-Retry-After / Rcb-Relocate ride the header path.
			full := decodeCloseSignal(encodeCloseSignal(closeSignal{
				reason:   reason,
				retry:    250 * time.Millisecond,
				relocate: "other.lan:3001",
			}))
			if full.reason != reason {
				t.Errorf("full frame decodes reason %v, want %v", full.reason, reason)
			}
			if full.retry != 250*time.Millisecond {
				t.Errorf("frame retry hint = %v, want 250ms", full.retry)
			}
			if full.relocate != "other.lan:3001" {
				t.Errorf("frame relocate hint = %q, want other.lan:3001", full.relocate)
			}
		})
	}

	// Discipline at the edges: a bare or gibberish close payload must read
	// as UNKNOWN (still a reason, still retryable), never as "no reason" —
	// the frame analogue of flagging a bare 4xx/5xx as a violation.
	if got := decodeCloseSignal(nil).reason; got != CloseUnknown {
		t.Errorf("empty FrameClose payload decodes to %v, want UNKNOWN", got)
	}
	if got := decodeCloseSignal([]byte("reason=NOT_A_REASON")).reason; got != CloseUnknown {
		t.Errorf("unrecognized FrameClose reason decodes to %v, want UNKNOWN", got)
	}
	if got := ParseCloseReason(""); got != CloseNone {
		t.Errorf("empty header parses to %v, want CloseNone (absent, not unknown)", got)
	}
}
