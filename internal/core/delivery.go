package core

// Long-poll delivery: the version-notification hub behind RCB-Agent's
// hanging-GET channel.
//
// The paper's protocol answers every polling request immediately — "if no
// new content needs to be sent back, RCB-Agent sends a response with empty
// content ... to avoid hanging requests" (§4.1.1) — which makes the polling
// interval the staleness floor. The hub inverts that trade: a poll that
// finds nothing new may park (httpwire.AsyncHandler) until the host
// document changes, a mirror action lands in the participant's outbox, the
// participant is disconnected, or a configurable maximum hang elapses —
// whichever comes first. Timeouts degrade exactly to the paper's empty
// response, so a long-poll client is never worse off than an interval one.
//
// Correctness hinges on closing the check-then-park window: between a
// poll's "nothing new" check and its registration, a document change or
// broadcast could slip by and the waiter would sleep through its own
// wake-up. The hub therefore keeps monotonic notification counters (one
// global, one per participant); a poll snapshots them before its final
// check and park refuses registration when either counter moved, forcing
// the caller to re-check.

import (
	"sync"
	"time"
)

// pollWaiter is one parked polling request: the participant it belongs to,
// the timestamp it reported, and the responder that completes the hanging
// HTTP exchange. Ownership of the response is decided by hub-map presence:
// whoever removes the waiter from the hub (notify, timeout, or close) must
// respond, and nobody else may.
type pollWaiter struct {
	pid     string
	ts      int64
	deltaOK bool // the parked request opted into deltaContent responses
	// staleOnTimeout marks a park bounded by Agent.MaxParkAge: a timeout
	// means the reader aged out and is disconnected as StaleReader.
	staleOnTimeout bool
	fulfill        func(reply *pollReply)
	timer          *time.Timer
}

// pollReply tells a woken waiter why it woke, so the fulfiller can choose
// between re-running the content check and degrading to a fixed response.
type pollReply struct {
	timedOut bool
	closed   bool
}

// hubSnapshot is the pair of notification counters a poll observed before
// its final no-new-content check.
type hubSnapshot struct {
	global uint64
	pid    uint64
}

// deliveryHub tracks parked long-polls and the notification counters that
// close the check-then-park race. All methods are safe for concurrent use.
type deliveryHub struct {
	mu     sync.Mutex
	closed bool
	global uint64
	// pidSeqs holds per-participant notification counters. Entries are
	// kept after disconnect (a few bytes per participant ever seen) so a
	// racing park cannot mistake a reset counter for "no event".
	pidSeqs map[string]uint64
	parked  map[string][]*pollWaiter
	count   int

	// Burst coalescing (notifyAllDebounced): lastWake stamps the most
	// recent global fan-out; wakeArmed marks a trailing wake already
	// scheduled on wakeTimer. fanouts counts global wake rounds that woke
	// at least one waiter — the observable the debounce tests key on.
	lastWake  time.Time
	wakeArmed bool
	wakeTimer *time.Timer
	fanouts   int64

	// preWake, when set, runs between collecting a trailing wake's waiters
	// and fanning them out — the window where the deltas the woken fleet is
	// about to request can be precomputed once. Installed at construction,
	// never mutated afterwards, so reads need no lock. It runs on the wake
	// timer's own goroutine, off every request path.
	preWake func(woken []*pollWaiter)
}

func newDeliveryHub() *deliveryHub {
	return &deliveryHub{
		pidSeqs: make(map[string]uint64),
		parked:  make(map[string][]*pollWaiter),
	}
}

// snapshot records the counters for pid ahead of a no-new-content check.
func (h *deliveryHub) snapshot(pid string) hubSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return hubSnapshot{global: h.global, pid: h.pidSeqs[pid]}
}

// park registers w unless an event arrived after snap was taken. It returns
// (parked, retry): (true, _) means w is registered and its owner will
// respond later; (false, true) means an event slipped in and the caller
// must re-run its content check; (false, false) means the hub is closed and
// the caller should answer immediately, interval-style.
func (h *deliveryHub) park(w *pollWaiter, snap hubSnapshot, maxWait time.Duration) (parked, retry bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return false, false
	}
	if h.global != snap.global || h.pidSeqs[w.pid] != snap.pid {
		return false, true
	}
	h.parked[w.pid] = append(h.parked[w.pid], w)
	h.count++
	// The timeout path claims the waiter through the same remove() token
	// as every other wake, so a racing notify and timer fire resolve to
	// exactly one response. AfterFunc's callback cannot run before this
	// assignment is visible: it immediately contends on h.mu, which we
	// hold until park returns.
	w.timer = time.AfterFunc(maxWait, func() {
		if h.remove(w) {
			w.fulfill(&pollReply{timedOut: true})
		}
	})
	return true, false
}

// remove unregisters w, reporting whether the caller won ownership of the
// response (exactly one remover does).
func (h *deliveryHub) remove(w *pollWaiter) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	list := h.parked[w.pid]
	for i, x := range list {
		if x != w {
			continue
		}
		list[i] = list[len(list)-1]
		list[len(list)-1] = nil
		if len(list) == 1 {
			delete(h.parked, w.pid)
		} else {
			h.parked[w.pid] = list[:len(list)-1]
		}
		h.count--
		return true
	}
	return false
}

// parkedCount reports how many polls are currently parked.
func (h *deliveryHub) parkedCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// notifyAll wakes every parked waiter — a new document version exists (or
// is about to: the waiters' re-check runs the single-flight generation, so
// N wakes still cost one BuildContent). Each waiter is fulfilled on its own
// goroutine; the notifier (typically the host browser's mutation path)
// never blocks on content generation or socket writes.
func (h *deliveryHub) notifyAll() {
	h.mu.Lock()
	h.global++
	h.lastWake = time.Now()
	woken := h.collectAllLocked()
	h.mu.Unlock()
	wakeWaiters(woken)
}

// notifyAllDebounced is notifyAll with burst coalescing: the first change
// after a quiet period wakes the fleet immediately, and every further
// change inside the debounce window folds into a single trailing wake that
// serves the latest version — so M rapid host mutations cost at most two
// fan-outs instead of M. The notification counter still advances on every
// call, so the check-then-park race stays closed: a poll arriving
// mid-window re-checks inline and sees the newest content without any wake.
// A zero debounce is plain notifyAll.
func (h *deliveryHub) notifyAllDebounced(debounce time.Duration) {
	if debounce <= 0 {
		h.notifyAll()
		return
	}
	h.mu.Lock()
	h.global++
	if h.closed || h.wakeArmed {
		h.mu.Unlock()
		return
	}
	if since := time.Since(h.lastWake); since < debounce {
		h.wakeArmed = true
		h.wakeTimer = time.AfterFunc(debounce-since, h.trailingWake)
		h.mu.Unlock()
		return
	}
	h.lastWake = time.Now()
	woken := h.collectAllLocked()
	h.mu.Unlock()
	wakeWaiters(woken)
}

// trailingWake flushes the coalesced tail of a mutation burst. Running on
// the wake timer's goroutine — not a host-mutation or request path — it is
// the one place the fleet's deltas can be precomputed before fan-out.
func (h *deliveryHub) trailingWake() {
	h.mu.Lock()
	h.wakeArmed = false
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.lastWake = time.Now()
	woken := h.collectAllLocked()
	h.mu.Unlock()
	if h.preWake != nil && len(woken) > 0 {
		h.preWake(woken)
	}
	wakeWaiters(woken)
}

// collectAllLocked detaches every parked waiter and counts the fan-out.
// Callers hold h.mu.
func (h *deliveryHub) collectAllLocked() []*pollWaiter {
	var woken []*pollWaiter
	for pid, list := range h.parked {
		woken = append(woken, list...)
		delete(h.parked, pid)
	}
	h.count = 0
	if len(woken) > 0 {
		h.fanouts++
	}
	return woken
}

// wakeFanouts reports how many global wake rounds actually woke waiters.
func (h *deliveryHub) wakeFanouts() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fanouts
}

func wakeWaiters(woken []*pollWaiter) {
	for _, w := range woken {
		w.timer.Stop()
		go w.fulfill(&pollReply{})
	}
}

// notifyPID wakes the waiters of one participant — a mirror action landed
// in its outbox, or it was disconnected.
func (h *deliveryHub) notifyPID(pid string) {
	h.mu.Lock()
	h.pidSeqs[pid]++
	list := h.parked[pid]
	delete(h.parked, pid)
	h.count -= len(list)
	h.mu.Unlock()
	for _, w := range list {
		w.timer.Stop()
		go w.fulfill(&pollReply{})
	}
}

// close wakes everything with the shutdown reply and refuses future parks.
// Polls arriving afterwards are answered immediately, interval-style, so a
// closed agent still speaks the paper's protocol.
func (h *deliveryHub) close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	if h.wakeTimer != nil {
		h.wakeTimer.Stop()
	}
	h.wakeArmed = false
	var woken []*pollWaiter
	for pid, list := range h.parked {
		woken = append(woken, list...)
		delete(h.parked, pid)
	}
	h.count = 0
	h.mu.Unlock()
	for _, w := range woken {
		w.timer.Stop()
		w.fulfill(&pollReply{closed: true})
	}
}
