package core

import (
	"fmt"
	"strconv"
	"strings"

	"rcb/internal/browser"
	"rcb/internal/dom"
	"rcb/internal/httpwire"
)

// This file implements the response content generation procedure of
// Figure 3: clone the documentElement, convert relative URLs to absolute,
// convert cached-object URLs to RCB-Agent URLs (cache mode), rewrite event
// attributes, and extract the XML-format response content.

// RCBAttr is the attribute added during event rewriting that names an
// element for action routing. Its value is the element's structural path,
// which is identical in the cloned/participant document and the host's live
// document (rewriting only edits attributes, never tree shape).
const RCBAttr = "data-rcb"

// ElementPath returns the structural path of an element: the chain of
// element-child indexes from the document root, e.g. "1.0.3". The root
// itself has path "". The ancestor walk counts element siblings in place —
// rewriting calls this for every interactive element of every generation
// pass, so it must not allocate per level.
func ElementPath(n *dom.Node) string {
	var stack [16]int
	idxs := stack[:0]
	for cur := n; cur.Parent != nil; cur = cur.Parent {
		pos := 0
		found := false
		for _, sib := range cur.Parent.Children {
			if sib == cur {
				found = true
				break
			}
			if sib.Type == dom.ElementNode {
				pos++
			}
		}
		if !found {
			return "" // detached node
		}
		idxs = append(idxs, pos)
	}
	// Reverse into root-first order.
	var buf [64]byte
	b := buf[:0]
	for i := len(idxs) - 1; i >= 0; i-- {
		if len(b) > 0 {
			b = append(b, '.')
		}
		b = strconv.AppendInt(b, int64(idxs[i]), 10)
	}
	return string(b)
}

// ResolvePath walks a structural path from root, returning nil when the
// path no longer exists (the document changed since the path was minted).
func ResolvePath(root *dom.Node, path string) *dom.Node {
	cur := root
	for path != "" {
		part, rest, found := strings.Cut(path, ".")
		if part == "" || (found && rest == "") {
			return nil // empty segment: leading, trailing, or doubled dot
		}
		path = rest
		idx, err := strconv.Atoi(part)
		if err != nil || idx < 0 {
			return nil
		}
		var next *dom.Node
		for _, c := range cur.Children {
			if c.Type != dom.ElementNode {
				continue
			}
			if idx == 0 {
				next = c
				break
			}
			idx--
		}
		if next == nil {
			return nil
		}
		cur = next
	}
	return cur
}

// objectAttrFor returns which attribute on an element references a
// supplementary object, or "".
func objectAttrFor(n *dom.Node) string {
	switch n.Tag {
	case "link":
		if rel, _ := n.Attr("rel"); rel == "stylesheet" {
			return "href"
		}
	case "script", "img", "frame", "iframe":
		return "src"
	case "object":
		return "data"
	}
	return ""
}

// contentOptions configures one generation pass.
type contentOptions struct {
	pageURL   string
	docTime   int64
	cacheMode bool
	// resolveRef maps a document reference to its absolute URL, consulting
	// the download observer first (paper: the observer records "complete
	// URL addresses for all the object downloading requests").
	resolveRef func(ref string) string
	// cacheHas reports whether the host browser cache holds an absolute URL.
	cacheHas func(absURL string) bool
	// agentURLFor returns the RCB-Agent URL that serves a cached object,
	// registering it in the agent's mapping table.
	agentURLFor func(absURL string) string
}

// generateContent runs the five steps of Figure 3 against a live document
// root and returns the extracted message. The clone is mutated; the live
// document is never touched.
func generateContent(root *dom.Node, opt contentOptions) *NewContent {
	// Step 1: clone the documentElement.
	clone := root.Clone()

	// Steps 2 and 3: URL conversion on supplementary objects.
	clone.Walk(func(n *dom.Node) bool {
		if n.Type != dom.ElementNode {
			return true
		}
		attr := objectAttrFor(n)
		if attr == "" {
			return true
		}
		ref, ok := n.Attr(attr)
		if !ok || ref == "" {
			return true
		}
		abs := opt.resolveRef(ref)
		if abs == "" {
			return true
		}
		if opt.cacheMode && opt.cacheHas(abs) {
			// Step 3: absolute → RCB-Agent URL for cached objects. The
			// decision is per object, which is what lets different objects
			// on one page use different modes (paper §4.1.2).
			n.SetAttr(attr, opt.agentURLFor(abs))
		} else {
			// Step 2: relative → absolute so the participant browser can
			// reach the origin server directly (non-cache mode).
			n.SetAttr(attr, abs)
		}
		return true
	})

	// Step 4: document element action rewriting.
	rewriteEventAttributes(clone)

	// Step 5: extract the XML-format response content.
	return ContentFromDocument(clone, opt.docTime)
}

// rewriteEventAttributes adds snippet hooks to interactive elements so that
// participant-side interactions are captured and carried back by polling
// requests instead of acting locally (paper §4.1.2 step 4, §4.2.2: rewritten
// handlers "will not directly update any URL or change the DOM; they just
// ask Ajax-Snippet to send action information back").
func rewriteEventAttributes(root *dom.Node) {
	root.Walk(func(n *dom.Node) bool {
		if n.Type != dom.ElementNode {
			return true
		}
		switch n.Tag {
		case "form":
			n.SetAttr(RCBAttr, ElementPath(n))
			n.SetAttr("onsubmit", prependHandler("return __rcb.submit(this);", n.AttrOr("onsubmit", "")))
		case "a":
			if n.HasAttr("href") {
				n.SetAttr(RCBAttr, ElementPath(n))
				n.SetAttr("onclick", prependHandler("return __rcb.click(this);", n.AttrOr("onclick", "")))
			}
		case "input", "textarea", "select":
			n.SetAttr(RCBAttr, ElementPath(n))
			n.SetAttr("onchange", prependHandler("__rcb.input(this);", n.AttrOr("onchange", "")))
		case "button":
			n.SetAttr(RCBAttr, ElementPath(n))
			n.SetAttr("onclick", prependHandler("return __rcb.click(this);", n.AttrOr("onclick", "")))
		}
		return true
	})
}

// prependHandler adds the snippet call in front of an existing inline
// handler, preserving the original code after it.
func prependHandler(call, original string) string {
	if original == "" {
		return call
	}
	return call + " " + original
}

// FindByRCBAttr locates the element carrying the given data-rcb value — how
// the snippet side maps a user interaction back to an action target.
func FindByRCBAttr(root *dom.Node, path string) *dom.Node {
	return root.Find(func(n *dom.Node) bool {
		return n.Type == dom.ElementNode && n.AttrOr(RCBAttr, "") == path
	})
}

// hostResolver builds the reference resolver for a host browser: observer
// resolution first, falling back to URL resolution against the page URL.
func hostResolver(b *browser.Browser, pageURL string) func(string) string {
	return func(ref string) string {
		if abs, ok := b.Observer.Resolve(ref); ok {
			return abs
		}
		abs, err := browser.Resolve(pageURL, ref)
		if err != nil {
			return ""
		}
		return abs
	}
}

// formFieldElements returns the named input-like descendants of a form.
func formFieldElements(form *dom.Node) []*dom.Node {
	return form.FindAll(func(n *dom.Node) bool {
		if n.Type != dom.ElementNode {
			return false
		}
		switch n.Tag {
		case "input", "textarea", "select":
			return n.HasAttr("name")
		}
		return false
	})
}

// mergeFormData sets field values on a form from submitted data — the
// paper's "data merging" step: "the form data submitted by a co-browsing
// participant can be extracted and merged into the corresponding form on
// the host browser" (§4.1.1).
func mergeFormData(form *dom.Node, fields map[string]string) int {
	merged := 0
	for _, el := range formFieldElements(form) {
		name, _ := el.Attr("name")
		value, ok := fields[name]
		if !ok {
			continue
		}
		if el.Tag == "textarea" {
			el.ReplaceChildren(dom.NewText(value))
		} else {
			el.SetAttr("value", value)
		}
		merged++
	}
	return merged
}

// formValues reads the current field values of a form from the DOM.
func formValues(form *dom.Node) []formValue {
	var out []formValue
	for _, el := range formFieldElements(form) {
		name, _ := el.Attr("name")
		switch el.Tag {
		case "textarea":
			out = append(out, formValue{name, el.TextContent()})
		default:
			out = append(out, formValue{name, el.AttrOr("value", "")})
		}
	}
	return out
}

type formValue struct {
	Name  string
	Value string
}

// FormFields reads a form's current field values from the DOM as submit-
// ready fields — what the host user sends when finishing a form another
// user co-filled (the shopping study's final checkout step).
func FormFields(form *dom.Node) []httpwire.FormField {
	vals := formValues(form)
	out := make([]httpwire.FormField, len(vals))
	for i, v := range vals {
		out[i] = httpwire.FormField{Name: v.Name, Value: v.Value}
	}
	return out
}

func fmtPath(n *dom.Node) string { return fmt.Sprintf("%s[%s]", n.Tag, ElementPath(n)) }
