package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"rcb/internal/browser"
	"rcb/internal/dom"
	"rcb/internal/httpwire"
)

// Versioned session state codec. ExportState serializes everything an agent
// process owns about a live session — the participant table with its
// delivery outboxes, the host document and docTime clock, the (CID, CSeq)
// replay stamps, the moderation queue, the object mapping, and the prepared
// content cache — into one self-describing JSON document; ImportState
// rebuilds an equivalent agent from it. The codec backs both durability
// moves: checkpoint/restore across a process death (cmd/rcb-host
// -checkpoint/-restore) and live handover between two running agents
// (handover.go). The encoding is deterministic — every map is flattened
// into a sorted slice and times are millisecond integers — so
// export → import → export is byte-identical, which is what the round-trip
// property test pins.

// StateSchemaVersion is bumped whenever the encoded layout changes
// incompatibly; ImportState refuses snapshots from a different major
// schema rather than guessing.
const StateSchemaVersion = 1

type agentState struct {
	Schema int `json:"schema"`
	// Addr is the exporting agent's address: an importer at a different
	// address must drop cache-mode prepared content, whose XML embeds
	// object URLs minted for the old address.
	Addr             string `json:"addr"`
	SessionKey       string `json:"sessionKey,omitempty"`
	DefaultCacheMode bool   `json:"defaultCacheMode"`

	PageURL string `json:"pageURL,omitempty"`
	DocHTML string `json:"docHTML,omitempty"`
	DocTime int64  `json:"docTime"`

	NextPID   int   `json:"nextPID"`
	ActionSeq int64 `json:"actionSeq"`

	Participants []participantSnapshot `json:"participants"`
	Closed       []closedSnapshot      `json:"closed,omitempty"`
	Dedup        []dedupSnapshot       `json:"dedup,omitempty"`
	Pending      []pendingSnapshot     `json:"pending,omitempty"`
	Objects      []objectSnapshot      `json:"objects,omitempty"`
	Prepared     []preparedSnapshot    `json:"prepared,omitempty"`
}

type participantSnapshot struct {
	ID          string   `json:"id"`
	CacheMode   bool     `json:"cacheMode"`
	LastDocTime int64    `json:"lastDocTime"`
	LastSeenMS  int64    `json:"lastSeenMS"`
	Polls       int64    `json:"polls"`
	Outbox      []Action `json:"outbox,omitempty"`
}

type closedSnapshot struct {
	PID    string `json:"pid"`
	Reason string `json:"reason"`
}

// dedupSnapshot carries one client's replay stamps. Recent is the FIFO
// window in insertion order; snapshots are listed least-recently-active
// first so the importer can reconstruct the LRU order exactly.
type dedupSnapshot struct {
	CID    string  `json:"cid"`
	MaxSeq int64   `json:"maxSeq"`
	Recent []int64 `json:"recent,omitempty"`
	SeenMS int64   `json:"seenMS"`
}

type pendingSnapshot struct {
	Seq    int64  `json:"seq"`
	PID    string `json:"pid"`
	Action Action `json:"action"`
}

type objectSnapshot struct {
	Path string `json:"path"`
	URL  string `json:"url"`
}

// preparedSnapshot carries one mode's prepared build (and its delta-base
// ring, when bases are retained) so a restored agent answers the next poll
// with the very bytes the original would have sent — same docTime, no
// spurious resync storm on rejoin. The newest ring entry rides in the
// legacy Prev fields so a schema-1 reader from before the ring still
// restores its single base; Ring carries the rest, oldest last, and is
// simply absent from pre-ring snapshots (additive schema, no version bump).
type preparedSnapshot struct {
	CacheMode   bool           `json:"cacheMode"`
	DocTime     int64          `json:"docTime"`
	XML         string         `json:"xml"`
	PrevDocTime int64          `json:"prevDocTime,omitempty"`
	PrevXML     string         `json:"prevXML,omitempty"`
	Ring        []ringSnapshot `json:"ring,omitempty"`
}

// ringSnapshot is one retained delta base beyond the newest.
type ringSnapshot struct {
	DocTime int64  `json:"docTime"`
	XML     string `json:"xml"`
}

// ExportState serializes the full session under the serve/state barrier:
// it takes the write side of smu, so no poll is mid-merge anywhere — a
// snapshot can never hold a replay stamp whose document effect is missing,
// or the reverse. Host-side mutations racing the export are tolerated via
// a version-stabilization loop: the document and the prepared cache are
// re-read until they describe the same version.
func (a *Agent) ExportState() ([]byte, error) {
	a.smu.Lock()
	defer a.smu.Unlock()
	return a.exportLocked()
}

func (a *Agent) exportLocked() ([]byte, error) {
	st := &agentState{
		Schema:           StateSchemaVersion,
		Addr:             a.Addr,
		DefaultCacheMode: a.DefaultCacheMode,
	}
	if a.Auth != nil {
		st.SessionKey = string(a.Auth.key)
	}

	// Document + prepared cache, stabilized against concurrent host
	// mutations: capture the doc, then only export prepared builds whose
	// version matches the captured one.
	var version int64
	for {
		version = a.Browser.Version()
		if version == 0 {
			break
		}
		err := a.Browser.WithDocument(func(pageURL string, doc *dom.Document) error {
			st.PageURL = pageURL
			st.DocHTML = doc.HTML()
			return nil
		})
		if err != nil {
			return nil, err
		}
		if a.Browser.Version() == version {
			break
		}
	}

	a.tmu.Lock()
	st.DocTime = a.lastDocTime
	a.tmu.Unlock()

	a.pmu.RLock()
	st.NextPID = a.nextPID
	for _, p := range a.participants {
		p.mu.Lock()
		st.Participants = append(st.Participants, participantSnapshot{
			ID:          p.ID,
			CacheMode:   p.CacheMode,
			LastDocTime: p.LastDocTime,
			LastSeenMS:  p.LastSeen.UnixMilli(),
			Polls:       p.Polls,
			Outbox:      append([]Action(nil), p.outbox...),
		})
		p.mu.Unlock()
	}
	for _, pid := range a.closedOrder {
		st.Closed = append(st.Closed, closedSnapshot{PID: pid, Reason: a.closedReasons[pid].String()})
	}
	a.pmu.RUnlock()
	sort.Slice(st.Participants, func(i, j int) bool {
		return st.Participants[i].ID < st.Participants[j].ID
	})

	a.dmu.Lock()
	type dedupPair struct {
		snap  dedupSnapshot
		touch int64
	}
	pairs := make([]dedupPair, 0, len(a.dedup))
	for cid, d := range a.dedup {
		pairs = append(pairs, dedupPair{
			snap: dedupSnapshot{
				CID:    cid,
				MaxSeq: d.maxSeq,
				Recent: append([]int64(nil), d.order...),
				SeenMS: d.seen.UnixMilli(),
			},
			touch: d.touch,
		})
	}
	a.dmu.Unlock()
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].touch < pairs[j].touch })
	for _, p := range pairs {
		st.Dedup = append(st.Dedup, p.snap)
	}

	a.amu.Lock()
	st.ActionSeq = a.actionSeq
	for _, pa := range a.pending {
		st.Pending = append(st.Pending, pendingSnapshot{Seq: pa.Seq, PID: pa.ParticipantID, Action: pa.Action})
	}
	a.amu.Unlock()

	a.omu.Lock()
	for path, url := range a.mapping {
		st.Objects = append(st.Objects, objectSnapshot{Path: path, URL: url})
	}
	a.omu.Unlock()
	sort.Slice(st.Objects, func(i, j int) bool {
		pi, pj := st.Objects[i].Path, st.Objects[j].Path
		if len(pi) != len(pj) {
			return len(pi) < len(pj) // "/obj/t2" before "/obj/t10"
		}
		return pi < pj
	})

	a.cmu.Lock()
	for _, mode := range [2]bool{false, true} {
		prep := a.prepared[mode]
		if prep == nil || prep.version != version {
			continue
		}
		ps := preparedSnapshot{CacheMode: mode, DocTime: prep.docTime, XML: string(prep.xml)}
		if ring := a.prevRing[mode]; len(ring) > 0 {
			ps.PrevDocTime = ring[0].docTime
			ps.PrevXML = string(ring[0].xml)
			for _, b := range ring[1:] {
				ps.Ring = append(ps.Ring, ringSnapshot{DocTime: b.docTime, XML: string(b.xml)})
			}
		}
		st.Prepared = append(st.Prepared, ps)
	}
	a.cmu.Unlock()

	return json.Marshal(st)
}

// ImportState rebuilds the session from an ExportState snapshot. The agent
// must be freshly constructed (no participants); the importer refuses to
// clobber a live session. The exporting agent's session key is adopted so
// participant HMACs and cookies keep verifying after the move.
func (a *Agent) ImportState(data []byte) error {
	var st agentState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("rcb-agent: decode state: %w", err)
	}
	if st.Schema != StateSchemaVersion {
		return fmt.Errorf("rcb-agent: state schema %d, want %d", st.Schema, StateSchemaVersion)
	}

	a.smu.Lock()
	defer a.smu.Unlock()

	a.pmu.Lock()
	if len(a.participants) > 0 {
		a.pmu.Unlock()
		return fmt.Errorf("rcb-agent: refusing to import state over a live session (%d participants)", len(a.participants))
	}
	a.pmu.Unlock()

	if st.SessionKey != "" {
		a.Auth = NewAuthenticator(st.SessionKey)
	}
	a.DefaultCacheMode = st.DefaultCacheMode

	if st.DocHTML != "" {
		a.Browser.SetDocument(st.PageURL, dom.Parse(st.DocHTML))
	}
	version := a.Browser.Version()

	a.tmu.Lock()
	if st.DocTime > a.lastDocTime {
		a.lastDocTime = st.DocTime
	}
	a.tmu.Unlock()

	var outboxTotal int64
	a.pmu.Lock()
	a.nextPID = st.NextPID
	a.participants = make(map[string]*participantState, len(st.Participants))
	for _, ps := range st.Participants {
		a.participants[ps.ID] = &participantState{
			Participant: Participant{
				ID:          ps.ID,
				CacheMode:   ps.CacheMode,
				LastDocTime: ps.LastDocTime,
				LastSeen:    time.UnixMilli(ps.LastSeenMS),
				Polls:       ps.Polls,
			},
			outbox: append([]Action(nil), ps.Outbox...),
		}
		outboxTotal += int64(len(ps.Outbox))
	}
	a.closedReasons = make(map[string]CloseReason, len(st.Closed))
	a.closedOrder = a.closedOrder[:0]
	for _, cs := range st.Closed {
		a.closedOrder = append(a.closedOrder, cs.PID)
		a.closedReasons[cs.PID] = ParseCloseReason(cs.Reason)
	}
	a.pmu.Unlock()
	a.outboxDepth.Store(outboxTotal)

	a.dmu.Lock()
	a.dedup = make(map[string]*dedupState, len(st.Dedup))
	for i, ds := range st.Dedup {
		d := &dedupState{
			maxSeq: ds.MaxSeq,
			recent: make(map[int64]struct{}, len(ds.Recent)),
			order:  append([]int64(nil), ds.Recent...),
			touch:  int64(i + 1),
			seen:   time.UnixMilli(ds.SeenMS),
		}
		for _, seq := range ds.Recent {
			d.recent[seq] = struct{}{}
		}
		a.dedup[ds.CID] = d
	}
	a.dedupTick = int64(len(st.Dedup))
	a.dmu.Unlock()

	a.amu.Lock()
	a.actionSeq = st.ActionSeq
	a.pending = a.pending[:0]
	for _, ps := range st.Pending {
		a.pending = append(a.pending, PendingAction{Seq: ps.Seq, ParticipantID: ps.PID, Action: ps.Action})
	}
	a.amu.Unlock()

	a.omu.Lock()
	a.mapping = make(map[string]string, len(st.Objects))
	a.tokens = make(map[string]string, len(st.Objects))
	for _, os := range st.Objects {
		a.mapping[os.Path] = os.URL
		a.tokens[os.URL] = os.Path
	}
	a.omu.Unlock()

	a.cmu.Lock()
	a.prepared = make(map[bool]*PreparedContent)
	a.prevRing = make(map[bool][]*PreparedContent)
	a.delta = make(map[bool]map[int64]*deltaEntry)
	a.buildHist = make(map[bool][]int64)
	for _, ps := range st.Prepared {
		if ps.CacheMode && st.Addr != a.Addr {
			// Cache-mode XML embeds object URLs minted for the exporting
			// agent's address; at a new address the next poll must rebuild.
			continue
		}
		// Rebuild the ring newest-first (Prev fields, then Ring), assigning
		// descending synthetic versions below the current build's.
		var ring []*PreparedContent
		if ps.PrevXML != "" {
			ring = append(ring, importedPrepared(version-1, ps.PrevDocTime, ps.PrevXML))
			for _, rs := range ps.Ring {
				ring = append(ring, importedPrepared(version-1-int64(len(ring)), rs.DocTime, rs.XML))
			}
			a.prevRing[ps.CacheMode] = ring
		}
		a.prepared[ps.CacheMode] = importedPrepared(version, ps.DocTime, ps.XML)
		// buildHist runs oldest first: reversed ring docTimes, then current.
		hist := make([]int64, 0, len(ring)+1)
		for i := len(ring) - 1; i >= 0; i-- {
			hist = append(hist, ring[i].docTime)
		}
		hist = append(hist, ps.DocTime)
		a.buildHist[ps.CacheMode] = hist
	}
	a.cmu.Unlock()

	// The imported session is live here, whatever this process was before.
	a.relocatedTo = ""
	return nil
}

// importedPrepared reconstructs a PreparedContent from exported XML. A
// snapshot whose XML no longer parses degrades gracefully: content stays
// nil, which only disables the delta fast path.
func importedPrepared(version, docTime int64, xml string) *PreparedContent {
	b := []byte(xml)
	prep := &PreparedContent{
		version: version,
		docTime: docTime,
		xml:     b,
		splice:  len(b) - len(closeNewContent),
		resp:    httpwire.NewResponse(200, "application/xml", b),
	}
	if nc, err := Unmarshal(b); err == nil {
		prep.content = nc
	}
	return prep
}

// RestoreAgent constructs an agent at addr from an ExportState snapshot,
// installing the session document into b. The restored agent serves the
// same participant set — PR 6's auto-rejoin loop reconnects every snippet
// with a delta or full resync instead of a dead session.
func RestoreAgent(b *browser.Browser, addr string, data []byte) (*Agent, error) {
	a := NewAgent(b, addr)
	if err := a.ImportState(data); err != nil {
		return nil, err
	}
	return a, nil
}
