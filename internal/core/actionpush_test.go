package core

// Tests for the fire-and-forget action upstream: the /action endpoint, the
// snippet's push dispatch, and every degradation edge back to the paper's
// piggyback path. The headline test closes ROADMAP's "poll-free action
// upstream" gap under -race: an action fired while this participant's
// long-poll is parked reaches the host and the mirrored participants
// without waiting out the hang, and is never delivered twice.

import (
	"strings"
	"sync"
	"testing"
	"time"

	"rcb/internal/browser"
	"rcb/internal/dom"
	"rcb/internal/httpwire"
	"rcb/internal/sites"
)

// joinWithKey connects a participant whose snippet signs requests with key.
func (w *world) joinWithKey(t *testing.T, loc, key string) *Snippet {
	t.Helper()
	pb := browser.New(loc, w.corpus.Network.Dialer(loc))
	t.Cleanup(pb.Close)
	s := NewSnippet(pb, "http://"+agentAddr, key)
	if err := s.Join(); err != nil {
		t.Fatal(err)
	}
	return s
}

// mirrorCounter records mirrored pointer actions keyed by X coordinate.
type mirrorCounter struct {
	mu   sync.Mutex
	seen map[int]int
}

func newMirrorCounter(s *Snippet) *mirrorCounter {
	m := &mirrorCounter{seen: make(map[int]int)}
	s.OnUserAction = func(act Action) {
		if act.Kind == ActionMouseMove {
			m.mu.Lock()
			m.seen[act.X]++
			m.mu.Unlock()
		}
	}
	return m
}

func (m *mirrorCounter) count(x int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.seen[x]
}

// TestActionPushOvertakesParkedPoll is the motivating race (ROADMAP open
// item 1): the sender's long-poll is parked on the delivery hub, so the
// piggyback path cannot carry an action until the hang elapses. With
// ActionPush the action rides its own connection lane, reaches the host
// immediately, and wakes the mirror's parked poll — exactly one wake, and
// the subsequent polls must not deliver the action a second time. Run
// under -race (CI does).
func TestActionPushOvertakesParkedPoll(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")

	// Sender: short hang so the test can observe its park expiring without
	// the action; mirror: long hang so any delivery it sees is a real wake.
	sender := longPollJoin(t, w, "sender.lan", 700*time.Millisecond)
	sender.ActionPush = true
	mirror := longPollJoin(t, w, "mirror.lan", 10*time.Second)
	counts := newMirrorCounter(mirror)

	senderDone := make(chan error, 1)
	mirrorDone := make(chan error, 1)
	go func() { _, err := sender.PollOnce(); senderDone <- err }()
	go func() { _, err := mirror.PollOnce(); mirrorDone <- err }()
	waitParked(t, w.agent, 2)

	start := time.Now()
	sender.PointerMove(42, 7) // dispatch → push: the parked poll stays parked
	if err := <-mirrorDone; err != nil {
		t.Fatal(err)
	}
	wake := time.Since(start)
	if wake >= 700*time.Millisecond {
		t.Fatalf("mirror woke after %v — the action waited out the sender's hang instead of overtaking it", wake)
	}
	if got := counts.count(42); got != 1 {
		t.Fatalf("mirror saw the pushed action %d times, want exactly 1", got)
	}
	if got := w.agent.ActionPushes(); got != 1 {
		t.Fatalf("agent accepted %d action pushes, want 1", got)
	}
	st := sender.Stats()
	if st.ActionsPushed != 1 || st.ActionsSent != 0 || st.ActionFallbacks != 0 {
		t.Fatalf("sender stats = %+v: want 1 push, 0 piggybacked, 0 fallbacks", st)
	}

	// The sender's own parked poll expires empty (a pointer move is not
	// echoed to its originator) and the next polls on both sides carry no
	// duplicate.
	if err := <-senderDone; err != nil {
		t.Fatal(err)
	}
	if st := sender.Stats(); st.ActionsSent != 0 {
		t.Fatalf("sender piggybacked %d actions after the push; the queue must stay empty", st.ActionsSent)
	}
	mirror.LongPollWait = time.Millisecond
	if _, err := mirror.PollOnce(); err != nil {
		t.Fatal(err)
	}
	if got := counts.count(42); got != 1 {
		t.Fatalf("mirror saw the action %d times after draining, want exactly 1 (no redelivery)", got)
	}
}

// TestActionPushDocMutationWakesFleet covers the other wake path: a pushed
// forminput mutates the host document, so every parked poll — including the
// sender's own — wakes with the new content within one hang-wake.
func TestActionPushDocMutationWakesFleet(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/") // google.com: has a search form

	sender := longPollJoin(t, w, "typist.lan", 10*time.Second)
	sender.ActionPush = true
	watcher := longPollJoin(t, w, "watcher.lan", 10*time.Second)

	// Find a rewritten form input in the synced participant document.
	var inputPath string
	err := sender.Browser.WithDocument(func(_ string, doc *dom.Document) error {
		for _, el := range doc.Root.ElementsByTag("input") {
			if el.AttrOr("type", "") == "text" {
				inputPath = el.AttrOr(RCBAttr, "")
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if inputPath == "" {
		t.Fatal("site has no rewritten text input to co-fill")
	}

	type result struct {
		updated bool
		err     error
	}
	senderDone := make(chan result, 1)
	watcherDone := make(chan result, 1)
	go func() { u, err := sender.PollOnce(); senderDone <- result{u, err} }()
	go func() { u, err := watcher.PollOnce(); watcherDone <- result{u, err} }()
	waitParked(t, w.agent, 2)

	start := time.Now()
	sender.dispatch(Action{Kind: ActionFormInput, Target: inputPath, Value: "pushed value"})
	for _, ch := range []chan result{senderDone, watcherDone} {
		r := <-ch
		if r.err != nil {
			t.Fatal(r.err)
		}
		if !r.updated {
			t.Fatal("parked poll woke without the mutated content")
		}
	}
	if took := time.Since(start); took >= 5*time.Second {
		t.Fatalf("fleet wake took %v; the push must wake parked polls immediately", took)
	}
	// Both participants converged on the pushed value.
	for _, s := range []*Snippet{sender, watcher} {
		var val string
		err := s.Browser.WithDocument(func(_ string, doc *dom.Document) error {
			for _, el := range doc.Root.ElementsByTag("input") {
				if el.AttrOr(RCBAttr, "") == inputPath {
					val = el.AttrOr("value", "")
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if val != "pushed value" {
			t.Fatalf("participant input value = %q, want %q", val, "pushed value")
		}
	}
	if got := w.agent.ActionPushes(); got != 1 {
		t.Fatalf("agent accepted %d pushes, want 1", got)
	}
}

// TestIntervalModeNeverPushes guards the degradation rule: an interval-mode
// snippet ignores ActionPush entirely — the endpoint is never attempted and
// the action rides the paper's piggyback path.
func TestIntervalModeNeverPushes(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	alice := w.join(t, "alice.lan")
	alice.ActionPush = true // set, but interval mode must ignore it
	bob2 := w.join(t, "bob2.lan")
	alice.PollOnce()
	bob2.PollOnce()
	counts := newMirrorCounter(bob2)

	alice.PointerMove(9, 9)
	if got := w.agent.ActionPushes(); got != 0 {
		t.Fatalf("interval-mode snippet hit the /action endpoint %d times", got)
	}
	if _, err := alice.PollOnce(); err != nil {
		t.Fatal(err)
	}
	if _, err := bob2.PollOnce(); err != nil {
		t.Fatal(err)
	}
	if got := counts.count(9); got != 1 {
		t.Fatalf("piggybacked action mirrored %d times, want 1", got)
	}
	st := alice.Stats()
	if st.ActionsSent != 1 || st.ActionsPushed != 0 {
		t.Fatalf("stats = %+v: want the action piggybacked, not pushed", st)
	}
}

// TestActionPushServerDownFallsBack covers transport failure: with the
// server gone the push errors, the action lands in the piggyback queue (no
// loss), the channel suspends (no doomed round trip per action), and a
// successful poll after the server returns re-arms it.
func TestActionPushServerDownFallsBack(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	s := longPollJoin(t, w, "offline.lan", 10*time.Second)
	s.ActionPush = true

	w.server.Close()
	s.PointerMove(1, 1)
	st := s.Stats()
	if st.ActionFallbacks != 1 || st.ActionsPushed != 0 {
		t.Fatalf("stats after failed push = %+v: want 1 fallback, 0 pushed", st)
	}
	s.mu.Lock()
	queued, suspended := len(s.queue), s.pushSuspended
	s.mu.Unlock()
	if queued != 1 || !suspended {
		t.Fatalf("queue=%d suspended=%v after failed push: the action must be queued and the channel suspended", queued, suspended)
	}
	// A second action while suspended goes straight to the queue — no
	// second endpoint attempt.
	s.PointerMove(2, 2)
	if st := s.Stats(); st.ActionFallbacks != 1 {
		t.Fatalf("suspended dispatch attempted the endpoint again (fallbacks=%d)", st.ActionFallbacks)
	}

	// Server comes back on the same address; the next poll flushes the
	// queue (piggyback — no loss) and re-arms the push channel.
	l, err := w.corpus.Network.Listen(agentAddr)
	if err != nil {
		t.Fatal(err)
	}
	server2 := &httpwire.Server{Handler: w.agent}
	server2.Start(l)
	t.Cleanup(server2.Close)
	if _, err := s.PollOnce(); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.ActionsSent != 2 {
		t.Fatalf("recovery poll piggybacked %d actions, want 2 (both fallbacks)", st.ActionsSent)
	}
	s.mu.Lock()
	suspended = s.pushSuspended
	s.mu.Unlock()
	if suspended {
		t.Fatal("successful poll did not re-arm the push channel")
	}
	s.PointerMove(3, 3)
	if got := w.agent.ActionPushes(); got != 1 {
		t.Fatalf("re-armed push not used (agent pushes = %d, want 1)", got)
	}
}

// TestActionPushRejectedFallsBack covers protocol failure: a 403 from the
// endpoint (the participant was disconnected — moderation's remove lever)
// degrades to the piggyback queue with the action preserved.
func TestActionPushRejectedFallsBack(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	s := longPollJoin(t, w, "evicted.lan", 10*time.Second)
	s.ActionPush = true

	w.agent.Disconnect("p1") // the only participant
	s.PointerMove(5, 5)
	st := s.Stats()
	if st.ActionFallbacks != 1 || st.ActionsPushed != 0 {
		t.Fatalf("stats after rejected push = %+v: want 1 fallback, 0 pushed", st)
	}
	s.mu.Lock()
	queued := len(s.queue)
	s.mu.Unlock()
	if queued != 1 {
		t.Fatalf("rejected action not preserved in the queue (len=%d)", queued)
	}
	if got := w.agent.ActionPushes(); got != 0 {
		t.Fatalf("agent counted %d accepted pushes for a disconnected participant", got)
	}
	// The participant's next poll reports the 403 too — the standard
	// disconnect signal, telling the client to rejoin.
	if _, err := s.PollOnce(); err == nil || !strings.Contains(err.Error(), "403") {
		t.Fatalf("poll after disconnect returned %v, want a 403 error", err)
	}
}

// TestActionPushAuth checks that the /action endpoint enforces the same
// §3.4 HMAC discipline as every other route.
func TestActionPushAuth(t *testing.T) {
	key := NewSessionKey()
	w := newWorld(t, func(a *Agent) { a.Auth = NewAuthenticator(key) })
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")

	alice := w.joinWithKey(t, "alice.lan", key)
	alice.Delivery = DeliveryLongPoll
	alice.ActionPush = true
	if _, err := alice.PollOnce(); err != nil {
		t.Fatal(err)
	}
	if err := alice.PushAction(Action{Kind: ActionMouseMove, X: 1, Y: 2}); err != nil {
		t.Fatalf("signed push rejected: %v", err)
	}

	mallory := w.joinWithKey(t, "mallory.lan", "wrong-key")
	mallory.Delivery = DeliveryLongPoll
	if err := mallory.PushAction(Action{Kind: ActionMouseMove, X: 3, Y: 4}); err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("forged push returned %v, want 401", err)
	}
	if got := w.agent.ActionPushes(); got != 1 {
		t.Fatalf("agent accepted %d pushes, want only the signed one", got)
	}
}
