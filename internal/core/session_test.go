package core

import (
	"fmt"
	"strings"
	"testing"

	"rcb/internal/browser"
	"rcb/internal/dom"
	"rcb/internal/httpwire"
	"rcb/internal/sites"
)

// agentAddr is where the host's RCB-Agent listens on the virtual network.
const agentAddr = "host.lan:3000"

// world bundles a complete co-browsing setup over the virtual internet.
type world struct {
	corpus *sites.Corpus
	host   *browser.Browser
	agent  *Agent
	server *httpwire.Server
}

func newWorld(t *testing.T, configure func(*Agent)) *world {
	t.Helper()
	corpus, err := sites.NewCorpus()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(corpus.Close)

	host := browser.New("host.lan", corpus.Network.Dialer("host.lan"))
	t.Cleanup(host.Close)
	agent := NewAgent(host, agentAddr)
	if configure != nil {
		configure(agent)
	}
	l, err := corpus.Network.Listen(agentAddr)
	if err != nil {
		t.Fatal(err)
	}
	server := &httpwire.Server{Handler: agent}
	server.Start(l)
	t.Cleanup(server.Close)
	t.Cleanup(agent.Close) // runs before server.Close: drain parked long-polls first
	return &world{corpus: corpus, host: host, agent: agent, server: server}
}

// join connects a new participant from the given network location.
func (w *world) join(t *testing.T, loc string) *Snippet {
	t.Helper()
	pb := browser.New(loc, w.corpus.Network.Dialer(loc))
	t.Cleanup(pb.Close)
	s := NewSnippet(pb, "http://"+agentAddr, "")
	if err := s.Join(); err != nil {
		t.Fatal(err)
	}
	return s
}

func (w *world) hostNavigate(t *testing.T, url string) {
	t.Helper()
	if _, err := w.host.Navigate(url); err != nil {
		t.Fatalf("host navigate %s: %v", url, err)
	}
}

// participantBodyHTML returns the participant's current body serialization.
func participantBodyHTML(t *testing.T, s *Snippet) string {
	t.Helper()
	var html string
	err := s.Browser.WithDocument(func(_ string, doc *dom.Document) error {
		if doc.Body() == nil {
			return fmt.Errorf("participant has no body")
		}
		html = dom.InnerHTML(doc.Body())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return html
}

func TestSessionInitialSync(t *testing.T) {
	w := newWorld(t, nil)
	spec := sites.Table1[1] // google.com
	w.hostNavigate(t, "http://"+spec.Host()+"/")

	alice := w.join(t, "alice.lan")
	updated, err := alice.PollOnce()
	if err != nil {
		t.Fatal(err)
	}
	if !updated {
		t.Fatal("first poll must deliver content")
	}
	body := participantBodyHTML(t, alice)
	if !strings.Contains(body, `id="content"`) {
		t.Errorf("participant body missing page content")
	}
	// Participant head carries the host page's title.
	err = alice.Browser.WithDocument(func(_ string, doc *dom.Document) error {
		title := doc.Head().FirstChildElement("title")
		if title == nil || !strings.Contains(title.TextContent(), spec.Name) {
			t.Errorf("title not synced: %v", title)
		}
		// Snippet script survived head cleanup (Figure 5 step 1).
		if doc.ByID("rcb-ajax-snippet") == nil {
			t.Error("snippet element lost from head")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Participant never left the agent URL.
	if got := alice.Browser.URL(); got != "http://"+agentAddr+"/" {
		t.Errorf("participant URL = %q, must stay at agent", got)
	}
}

func TestSessionEmptyPollWhenNoChange(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	alice := w.join(t, "alice.lan")
	if _, err := alice.PollOnce(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		updated, err := alice.PollOnce()
		if err != nil {
			t.Fatal(err)
		}
		if updated {
			t.Fatal("no host change, but poll delivered content")
		}
	}
	st := alice.Stats()
	if st.EmptyPolls != 3 || st.ContentPolls != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSessionNavigationPropagates(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	alice := w.join(t, "alice.lan")
	alice.PollOnce()

	// Host browses to a different site (paper: "users can visit different
	// websites ... the loop from steps 3 to 9 is repeated").
	w.hostNavigate(t, "http://"+sites.ShopHost+"/")
	updated, err := alice.PollOnce()
	if err != nil || !updated {
		t.Fatalf("updated=%v err=%v", updated, err)
	}
	if !strings.Contains(participantBodyHTML(t, alice), "Everything Store") {
		t.Error("new site content not synced")
	}
}

func TestSessionDynamicDOMChangeSameURL(t *testing.T) {
	// The Google-Maps property: content changes, URL does not (paper §5.2.1).
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.MapsHost+"/")
	alice := w.join(t, "alice.lan")
	alice.PollOnce()
	before := participantBodyHTML(t, alice)

	ops := sites.MapsOps{Addr: sites.MapsHost, Client: w.host.Client}
	err := w.host.ApplyMutation(func(doc *dom.Document) error {
		return ops.Search(doc, "653 5th Ave, New York")
	})
	if err != nil {
		t.Fatal(err)
	}
	hostURL := w.host.URL()

	updated, err := alice.PollOnce()
	if err != nil || !updated {
		t.Fatalf("updated=%v err=%v", updated, err)
	}
	after := participantBodyHTML(t, alice)
	if before == after {
		t.Fatal("dynamic DOM change did not propagate")
	}
	if !strings.Contains(after, "zoom 16") {
		t.Errorf("map status not synced: %s", after)
	}
	if w.host.URL() != hostURL {
		t.Error("URL changed; the whole point is it must not")
	}
}

func TestSessionNonCacheModeFetchesFromOrigin(t *testing.T) {
	w := newWorld(t, nil) // DefaultCacheMode false
	spec := sites.Table1[1]
	w.hostNavigate(t, "http://"+spec.Host()+"/")
	alice := w.join(t, "alice.lan")
	alice.PollOnce()
	fetches := alice.LastObjectFetches()
	if len(fetches) == 0 {
		t.Fatal("no object fetches recorded")
	}
	for _, f := range fetches {
		if strings.Contains(f.URL, agentAddr) {
			t.Errorf("non-cache mode fetched %s from agent", f.URL)
		}
	}
	if alice.Stats().ObjectsFromAgent != 0 {
		t.Error("ObjectsFromAgent must be zero in non-cache mode")
	}
}

func TestSessionCacheModeFetchesFromHost(t *testing.T) {
	w := newWorld(t, func(a *Agent) { a.DefaultCacheMode = true })
	spec := sites.Table1[1]
	w.hostNavigate(t, "http://"+spec.Host()+"/")
	alice := w.join(t, "alice.lan")
	alice.PollOnce()
	fetches := alice.LastObjectFetches()
	if len(fetches) == 0 {
		t.Fatal("no object fetches recorded")
	}
	fromAgent := 0
	for _, f := range fetches {
		if strings.Contains(f.URL, agentAddr) {
			fromAgent++
		}
	}
	// The host cached every supplementary object during its own load, so
	// every fetch must hit the agent.
	if fromAgent != len(fetches) {
		t.Fatalf("%d/%d fetches from agent", fromAgent, len(fetches))
	}
	if w.agent.MappingLen() == 0 {
		t.Error("mapping table empty")
	}
	// Object bodies must match the origin's bytes.
	inv := sites.Inventory(spec)
	want := sites.ObjectBytes(spec.Name, inv[0].Path, inv[0].Kind, inv[0].Size)
	got, ok := alice.Browser.Cache.Get(fetches[0].URL)
	if !ok {
		t.Fatalf("participant did not cache %s", fetches[0].URL)
	}
	if string(got.Body) != string(want) {
		t.Error("object bytes differ between origin and agent path")
	}
}

func TestSessionFormCoFill(t *testing.T) {
	// The shopping-study flow: Alice fills the shipping form on her
	// browser; the data merges into Bob's live form (paper §5.2.2).
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.ShopHost+"/")
	alice := w.join(t, "alice.lan")
	alice.PollOnce()

	// Bob adds to cart and opens checkout.
	w.hostNavigate(t, "http://"+sites.ShopHost+"/product/2")
	var form *dom.Node
	w.host.WithDocument(func(_ string, doc *dom.Document) error {
		form = doc.ByID("addtocart")
		return nil
	})
	if _, err := w.host.SubmitForm(form, []httpwire.FormField{{Name: "product", Value: "2"}}); err != nil {
		t.Fatal(err)
	}
	w.hostNavigate(t, "http://"+sites.ShopHost+"/checkout")
	alice.PollOnce()

	// Alice fills the shipping form on her copy and "submits" it.
	if err := alice.SubmitFormByID("shipping", []httpwire.FormField{
		{Name: "name", Value: "Alice Cousin"},
		{Name: "street", Value: "1 Fifth Ave"},
		{Name: "city", Value: "New York"},
		{Name: "zip", Value: "10010"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.PollOnce(); err != nil {
		t.Fatal(err)
	}

	// The data is now in Bob's live DOM.
	err := w.host.WithDocument(func(_ string, doc *dom.Document) error {
		f := doc.ByID("shipping")
		if f == nil {
			return fmt.Errorf("host lost the form")
		}
		for _, el := range f.ElementsByTag("input") {
			if el.AttrOr("name", "") == "name" && el.AttrOr("value", "") != "Alice Cousin" {
				t.Errorf("name field = %q", el.AttrOr("value", ""))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Alice's action-carrying poll already mirrored her own data back: the
	// merge bumps the document version before timestamp inspection runs, so
	// the same response carries the updated content (Figure 2's ordering).
	if !strings.Contains(participantBodyHTML(t, alice), "Alice Cousin") {
		t.Error("merged data not mirrored to participant")
	}
}

func TestSessionParticipantClickNavigatesHost(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.ShopHost+"/")
	alice := w.join(t, "alice.lan")
	alice.PollOnce()

	if err := alice.ClickElement("cartlink"); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.PollOnce(); err != nil {
		t.Fatal(err)
	}
	if got := w.host.URL(); !strings.HasSuffix(got, "/cart") {
		t.Fatalf("host URL after participant click = %q", got)
	}
	// Session cookie went with it: the cart page rendered (not a 403) and
	// arrived in the same poll response that carried the click.
	if !strings.Contains(participantBodyHTML(t, alice), "Your Cart") {
		t.Error("cart page not synced to participant")
	}
}

func TestSessionPointerMirroring(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	alice := w.join(t, "alice.lan")
	bob2 := w.join(t, "bob2.lan")
	alice.PollOnce()
	bob2.PollOnce()

	var mirrored []Action
	bob2.OnUserAction = func(a Action) { mirrored = append(mirrored, a) }

	alice.PointerMove(120, 300)
	if _, err := alice.PollOnce(); err != nil {
		t.Fatal(err)
	}
	if _, err := bob2.PollOnce(); err != nil {
		t.Fatal(err)
	}
	if len(mirrored) != 1 || mirrored[0].Kind != ActionMouseMove || mirrored[0].X != 120 {
		t.Fatalf("mirrored = %+v", mirrored)
	}
	// The originator does not get its own pointer echoed.
	gotEcho := false
	alice.OnUserAction = func(Action) { gotEcho = true }
	alice.PollOnce()
	if gotEcho {
		t.Error("pointer echoed to its originator")
	}
}

func TestSessionHostPointerBroadcast(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	alice := w.join(t, "alice.lan")
	alice.PollOnce()
	var got []Action
	alice.OnUserAction = func(a Action) { got = append(got, a) }
	w.agent.HostAction(Action{Kind: ActionMouseMove, X: 5, Y: 6})
	alice.PollOnce()
	if len(got) != 1 || got[0].From != "host" {
		t.Fatalf("host pointer not mirrored: %+v", got)
	}
}

func TestSessionReadOnlyPolicyDeniesClicks(t *testing.T) {
	w := newWorld(t, func(a *Agent) { a.Policy = ReadOnlyPolicy() })
	w.hostNavigate(t, "http://"+sites.ShopHost+"/")
	alice := w.join(t, "alice.lan")
	alice.PollOnce()
	url := w.host.URL()
	alice.ClickElement("cartlink")
	alice.PollOnce()
	if w.host.URL() != url {
		t.Fatal("read-only participant navigated the host")
	}
}

func TestSessionModeratedPolicyConfirm(t *testing.T) {
	w := newWorld(t, func(a *Agent) { a.Policy = ModeratedPolicy() })
	w.hostNavigate(t, "http://"+sites.ShopHost+"/")
	alice := w.join(t, "alice.lan")
	alice.PollOnce()
	alice.ClickElement("cartlink")
	alice.PollOnce()

	pending := w.agent.PendingConfirmations()
	if len(pending) != 1 {
		t.Fatalf("pending = %+v", pending)
	}
	if strings.HasSuffix(w.host.URL(), "/cart") {
		t.Fatal("action applied before confirmation")
	}
	if err := w.agent.Confirm(pending[0].Seq, true); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(w.host.URL(), "/cart") {
		t.Fatal("confirmed action not applied")
	}
	if len(w.agent.PendingConfirmations()) != 0 {
		t.Fatal("pending list not drained")
	}
	// Rejecting works too.
	alice.ClickElement("cartlink")
	alice.PollOnce()
	p2 := w.agent.PendingConfirmations()
	if err := w.agent.Confirm(p2[0].Seq, false); err != nil {
		t.Fatal(err)
	}
	if err := w.agent.Confirm(999, true); err == nil {
		t.Fatal("confirming unknown seq must error")
	}
}

func TestSessionAuthRequired(t *testing.T) {
	key := NewSessionKey()
	w := newWorld(t, func(a *Agent) {
		a.Auth = NewAuthenticator(key)
		a.DefaultCacheMode = true
	})
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")

	// Wrong key: polls are rejected.
	mallory := browser.New("mallory.lan", w.corpus.Network.Dialer("mallory.lan"))
	t.Cleanup(mallory.Close)
	sm := NewSnippet(mallory, "http://"+agentAddr, "wrong-key")
	if err := sm.Join(); err != nil {
		t.Fatal(err) // initial page itself is open; the key is entered there
	}
	if _, err := sm.PollOnce(); err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("wrong key poll err = %v, want 401", err)
	}

	// No key at all: also rejected.
	nokey := browser.New("nokey.lan", w.corpus.Network.Dialer("nokey.lan"))
	t.Cleanup(nokey.Close)
	sn := NewSnippet(nokey, "http://"+agentAddr, "")
	sn.Join()
	if _, err := sn.PollOnce(); err == nil {
		t.Fatal("unsigned poll accepted")
	}

	// Correct key: full session works, including pre-signed object URLs.
	pb := browser.New("alice.lan", w.corpus.Network.Dialer("alice.lan"))
	t.Cleanup(pb.Close)
	alice := NewSnippet(pb, "http://"+agentAddr, key)
	if err := alice.Join(); err != nil {
		t.Fatal(err)
	}
	updated, err := alice.PollOnce()
	if err != nil || !updated {
		t.Fatalf("updated=%v err=%v", updated, err)
	}
	if alice.Stats().ObjectsFromAgent == 0 {
		t.Fatal("cache-mode objects not fetched from agent under auth")
	}
}

func TestSessionParticipantModesMixed(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	alice := w.join(t, "alice.lan")
	bob2 := w.join(t, "bob2.lan")

	// Flip bob2 into cache mode; alice stays non-cache.
	parts := w.agent.Participants()
	if len(parts) != 2 {
		t.Fatalf("participants = %d", len(parts))
	}
	// bob2 joined second: its pid is the later one. Flip it by matching
	// polls yet to happen; set mode for all and verify each fetch path.
	for _, p := range parts {
		if p.ID == "p2" {
			if err := w.agent.SetParticipantMode(p.ID, true); err != nil {
				t.Fatal(err)
			}
		}
	}
	alice.PollOnce()
	bob2.PollOnce()
	if alice.Stats().ObjectsFromAgent != 0 {
		t.Error("alice (non-cache) fetched from agent")
	}
	if bob2.Stats().ObjectsFromAgent == 0 {
		t.Error("bob2 (cache) did not fetch from agent")
	}
	if err := w.agent.SetParticipantMode("nope", true); err == nil {
		t.Error("unknown participant must error")
	}
}

func TestSessionDisconnect(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	alice := w.join(t, "alice.lan")
	alice.PollOnce()
	parts := w.agent.Participants()
	w.agent.Disconnect(parts[0].ID)
	if _, err := alice.PollOnce(); err == nil {
		t.Fatal("poll after disconnect must fail (403)")
	}
	if len(w.agent.Participants()) != 0 {
		t.Fatal("participant not removed")
	}
}

func TestSessionJoinBeforeHostLoadsPage(t *testing.T) {
	w := newWorld(t, nil)
	alice := w.join(t, "alice.lan")
	// Host has no page yet: polls are empty, not errors.
	updated, err := alice.PollOnce()
	if err != nil || updated {
		t.Fatalf("updated=%v err=%v", updated, err)
	}
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	updated, err = alice.PollOnce()
	if err != nil || !updated {
		t.Fatalf("after host load: updated=%v err=%v", updated, err)
	}
}

func TestSessionContentReusedAcrossParticipants(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[0].Host()+"/")
	alice := w.join(t, "alice.lan")
	bob2 := w.join(t, "bob2.lan")
	alice.PollOnce()
	bob2.PollOnce()
	if participantBodyHTML(t, alice) != participantBodyHTML(t, bob2) {
		t.Fatal("participants diverged on identical content")
	}
}

func TestSessionUnknownObjectRequest(t *testing.T) {
	w := newWorld(t, nil)
	client := httpwire.NewClient(w.corpus.Network.Dialer("x.lan"))
	defer client.Close()
	resp, err := client.Get(agentAddr, "/obj/t999")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 404 {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func TestSessionPollFromUnknownParticipant(t *testing.T) {
	w := newWorld(t, nil)
	client := httpwire.NewClient(w.corpus.Network.Dialer("x.lan"))
	defer client.Close()
	resp, err := client.Post(agentAddr, "/poll", "application/x-www-form-urlencoded", []byte("ts=0"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 403 {
		t.Fatalf("status = %d, want 403", resp.StatusCode)
	}
}
