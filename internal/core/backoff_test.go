package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"rcb/internal/httpwire"
	"rcb/internal/sites"
)

// fullJitter pins the jitter factor to 1.0 so Next() returns the exact
// exponential envelope — the deterministic rand the backoff tests inject.
func fullJitter() float64 { return 1.0 }

// TestBackoffGrowthCapAndReset pins the envelope: delays double from Base,
// clamp at Max, and snap back to Base after Reset.
func TestBackoffGrowthCapAndReset(t *testing.T) {
	b := newBackoff(100*time.Millisecond, 800*time.Millisecond, fullJitter)
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		800 * time.Millisecond, // capped
	}
	for i, w := range want {
		if got := b.Next(); got != w {
			t.Fatalf("Next() #%d = %v, want %v", i, got, w)
		}
	}
	if got := b.Attempts(); got != len(want) {
		t.Fatalf("Attempts() = %d, want %d", got, len(want))
	}
	b.Reset()
	if got := b.Next(); got != 100*time.Millisecond {
		t.Fatalf("Next() after Reset = %v, want Base", got)
	}
}

// TestBackoffJitterEnvelope checks the jitter range [d/2, d]: rand 0 gives
// the half, rand 1 the full envelope.
func TestBackoffJitterEnvelope(t *testing.T) {
	lo := newBackoff(200*time.Millisecond, time.Second, func() float64 { return 0 })
	if got := lo.Next(); got != 100*time.Millisecond {
		t.Fatalf("rand=0 Next() = %v, want d/2", got)
	}
	hi := newBackoff(200*time.Millisecond, time.Second, fullJitter)
	if got := hi.Next(); got != 200*time.Millisecond {
		t.Fatalf("rand=1 Next() = %v, want d", got)
	}
	// nil rand stays inside the envelope too.
	def := newBackoff(200*time.Millisecond, time.Second, nil)
	if got := def.Next(); got < 100*time.Millisecond || got > 200*time.Millisecond {
		t.Fatalf("default rand Next() = %v, outside [d/2, d]", got)
	}
}

// TestBackoffDefaults checks newBackoff's zero-value handling.
func TestBackoffDefaults(t *testing.T) {
	b := newBackoff(0, 0, fullJitter)
	if b.Base != 100*time.Millisecond || b.Max != 30*time.Second {
		t.Fatalf("defaults = %v/%v", b.Base, b.Max)
	}
	// Max below Base clamps up, never inverts.
	b2 := newBackoff(time.Second, 10*time.Millisecond, fullJitter)
	if b2.Max != time.Second {
		t.Fatalf("Max < Base left as %v", b2.Max)
	}
}

// TestPollBackoffGrowthAndResetOnSuccess drives the Run pacing function
// directly with a deterministic rand: consecutive failures climb the
// exponential ladder, hit the cap, and a single success resets it and
// restores the long-poll zero delay.
func TestPollBackoffGrowthAndResetOnSuccess(t *testing.T) {
	s := &Snippet{
		PollInterval: time.Second,
		Delivery:     DeliveryLongPoll,
		RetryBase:    100 * time.Millisecond,
		RetryMax:     400 * time.Millisecond,
		RetryRand:    fullJitter,
	}
	flap := errors.New("connection reset")
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		400 * time.Millisecond, // capped
	}
	for i, w := range want {
		if got := s.runDelay(flap, time.Second); got != w {
			t.Fatalf("failure #%d delay = %v, want %v", i, got, w)
		}
	}
	// The server answers again: backoff resets, long-poll re-parks at once.
	if got := s.runDelay(nil, time.Second); got != 0 {
		t.Fatalf("healthy long-poll delay = %v, want 0", got)
	}
	if got := s.runDelay(flap, time.Second); got != 100*time.Millisecond {
		t.Fatalf("first failure after success = %v, want Base again", got)
	}
}

// TestRunDelayHonorsServerRetryAfter checks the shed-ladder handshake: a
// server-assigned Rcb-Retry-After is the floor for the next poll delay even
// when the local schedule would retry sooner.
func TestRunDelayHonorsServerRetryAfter(t *testing.T) {
	s := &Snippet{
		PollInterval: 50 * time.Millisecond,
		Delivery:     DeliveryLongPoll,
		RetryBase:    50 * time.Millisecond,
		RetryRand:    fullJitter,
	}
	s.mu.Lock()
	s.retryAfter = 2 * time.Second
	s.parkDenied = true
	s.mu.Unlock()
	if got := s.runDelay(nil, 50*time.Millisecond); got != 2*time.Second {
		t.Fatalf("delay = %v, want the server's 2s retry-after", got)
	}
}

// TestRunDelayBacksOffOnAgentClosing checks satellite (b) end to end at the
// pacing layer: an empty poll marked AgentClosing is a success on the wire
// but must climb the backoff ladder, not re-park at network speed.
func TestRunDelayBacksOffOnAgentClosing(t *testing.T) {
	s := &Snippet{
		PollInterval: time.Second,
		Delivery:     DeliveryLongPoll,
		RetryBase:    100 * time.Millisecond,
		RetryMax:     time.Second,
		RetryRand:    fullJitter,
	}
	s.mu.Lock()
	s.agentClosing = true
	s.parkDenied = true
	s.mu.Unlock()
	if got := s.runDelay(nil, time.Second); got != 100*time.Millisecond {
		t.Fatalf("first AgentClosing delay = %v, want Base", got)
	}
	if got := s.runDelay(nil, time.Second); got != 200*time.Millisecond {
		t.Fatalf("second AgentClosing delay = %v, want doubled", got)
	}
}

// TestAgentCloseMarksAgentClosing checks satellite (b) on the wire: after
// Agent.Close, the completed parked poll and every later would-be park carry
// the AGENT_CLOSING close reason on their empty responses, and the snippet
// records it.
func TestAgentCloseMarksAgentClosing(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	s := longPollJoin(t, w, "closing.lan", 10*time.Second)

	done := make(chan error, 1)
	go func() {
		_, err := s.PollOnce()
		done <- err
	}()
	waitParked(t, w.agent, 1)
	w.agent.Close()
	if err := <-done; err != nil {
		t.Fatalf("drained poll errored: %v", err)
	}
	if got := s.LastCloseReason(); got != CloseAgentClosing {
		t.Fatalf("close reason after drain = %v, want AGENT_CLOSING", got)
	}
	// The next poll (answered immediately, never parked) carries it too,
	// and the snippet treats it as a park denial so Run paces itself.
	if _, err := s.PollOnce(); err != nil {
		t.Fatal(err)
	}
	if !s.lastParkDenied() {
		t.Fatal("post-close poll not treated as park-denied")
	}
	s.mu.Lock()
	closing := s.agentClosing
	s.mu.Unlock()
	if !closing {
		t.Fatal("post-close poll did not mark agentClosing")
	}
}

// TestPushBackoffSuspendProbeAndReset checks the action-push half-open
// circuit against a genuinely flapping server: a failed push suspends the
// channel and starts the push schedule; while suspended, actions skip the
// doomed round trip; once the pause passes a single probe is admitted; and
// a successful poll resets the schedule entirely.
func TestPushBackoffSuspendProbeAndReset(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	s := w.join(t, "pusher.lan")
	s.Delivery = DeliveryLongPoll
	s.ActionPush = true
	s.RetryBase = 50 * time.Millisecond
	s.RetryMax = time.Second
	s.RetryRand = fullJitter
	if _, err := s.PollOnce(); err != nil {
		t.Fatal(err)
	}

	// Flap: the server goes away mid-session.
	w.agent.Close()
	w.server.Close()

	s.PointerMove(1, 1) // push fails → fallback + suspend
	st := s.Stats()
	if st.ActionFallbacks != 1 {
		t.Fatalf("ActionFallbacks = %d, want 1", st.ActionFallbacks)
	}
	s.mu.Lock()
	attempts := s.pushBackoff.Attempts()
	suspended := s.pushSuspended
	s.mu.Unlock()
	if !suspended || attempts != 1 {
		t.Fatalf("after failed push: suspended=%v attempts=%d", suspended, attempts)
	}
	// Inside the pause, pushes are not even attempted: fallback count must
	// not advance (the action goes straight to the queue).
	s.mu.Lock()
	s.pushResumeAt = time.Now().Add(time.Hour)
	s.mu.Unlock()
	s.PointerMove(2, 2)
	if got := s.Stats().ActionFallbacks; got != 1 {
		t.Fatalf("suspended push still paid a round trip (fallbacks=%d)", got)
	}
	// Past the pause, exactly one probe goes out; its failure doubles the
	// schedule.
	s.mu.Lock()
	s.pushResumeAt = time.Now().Add(-time.Millisecond)
	s.queue = nil // pushEligible requires an empty piggyback queue
	s.mu.Unlock()
	s.PointerMove(3, 3)
	st = s.Stats()
	if st.ActionFallbacks != 2 {
		t.Fatalf("probe push not attempted (fallbacks=%d)", st.ActionFallbacks)
	}
	s.mu.Lock()
	if got := s.pushBackoff.Attempts(); got != 2 {
		s.mu.Unlock()
		t.Fatalf("push attempts after failed probe = %d, want 2", got)
	}
	s.mu.Unlock()

	// The server comes back; a successful poll re-arms the channel and
	// resets the push schedule.
	l, err := w.corpus.Network.Listen(agentAddr)
	if err != nil {
		t.Fatal(err)
	}
	srv := &httpwire.Server{Handler: w.agent}
	srv.Start(l)
	t.Cleanup(srv.Close)
	if _, err := s.PollOnce(); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	suspended = s.pushSuspended
	attempts = s.pushBackoff.Attempts()
	s.mu.Unlock()
	if suspended || attempts != 0 {
		t.Fatalf("after successful poll: suspended=%v attempts=%d, want re-armed and reset", suspended, attempts)
	}
}

// TestRunAutoRejoinsAfterRetryableClose is the flapping-session recovery
// test: the agent kicks a participant with a retryable reason mid-loop, and
// Run rejoins under a fresh identity, resyncs a full snapshot, and keeps
// delivering — while a non-retryable kick ends the loop for good.
func TestRunAutoRejoinsAfterRetryableClose(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	s := w.join(t, "phoenix.lan")
	s.Delivery = DeliveryLongPoll
	s.LongPollWait = 200 * time.Millisecond
	s.PollInterval = 20 * time.Millisecond
	s.RetryBase = 10 * time.Millisecond
	s.RetryMax = 50 * time.Millisecond
	s.RetryRand = fullJitter

	stop := make(chan struct{})
	ran := make(chan struct{})
	var errSeen error
	go func() {
		s.Run(stop, func(err error) {
			if errSeen == nil {
				errSeen = err
			}
		})
		close(ran)
	}()

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFor("initial sync", func() bool { return s.Stats().ContentPolls >= 1 })

	// Kick with a retryable reason: the loop must rejoin and resync.
	parts := w.agent.Participants()
	if len(parts) != 1 {
		t.Fatalf("participants = %d", len(parts))
	}
	w.agent.DisconnectWith(parts[0].ID, CloseStaleReader)
	waitFor("automatic rejoin", func() bool { return s.Stats().Rejoins >= 1 })
	waitFor("post-rejoin resync", func() bool { return s.Stats().ContentPolls >= 2 })
	if got := s.LastCloseReason(); got != CloseStaleReader {
		t.Fatalf("recorded close reason = %v, want STALE_READER", got)
	}
	if errSeen == nil || !strings.Contains(errSeen.Error(), "STALE_READER") {
		t.Fatalf("errf saw %v, want the STALE_READER close error", errSeen)
	}

	// Kick with a non-retryable reason: the loop must end by itself.
	parts = w.agent.Participants()
	if len(parts) != 1 {
		t.Fatalf("participants after rejoin = %d", len(parts))
	}
	w.agent.Kick(parts[0].ID)
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not terminate after a KICKED close")
	}
	close(stop)
	if got := s.LastCloseReason(); got != CloseKicked {
		t.Fatalf("final close reason = %v, want KICKED", got)
	}
}

// TestRejoinResetsJoinBackoffAndSyncState checks the recovery bookkeeping:
// a successful Rejoin clears the acknowledged timestamp (forcing a full
// snapshot), resets the join schedule, and counts the cycle.
func TestRejoinResetsJoinBackoffAndSyncState(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	s := w.join(t, "rejoiner.lan")
	s.RetryRand = fullJitter
	if _, err := s.PollOnce(); err != nil {
		t.Fatal(err)
	}
	if s.DocTime() == 0 {
		t.Fatal("no baseline to test against")
	}
	s.mu.Lock()
	_, _, join := s.backoffsLocked()
	join.Next()
	join.Next()
	s.mu.Unlock()

	if err := s.Rejoin(); err != nil {
		t.Fatal(err)
	}
	if s.DocTime() != 0 {
		t.Fatal("Rejoin kept the stale acknowledged timestamp")
	}
	if got := s.Stats().Rejoins; got != 1 {
		t.Fatalf("Rejoins = %d, want 1", got)
	}
	s.mu.Lock()
	attempts := s.joinBackoff.Attempts()
	s.mu.Unlock()
	if attempts != 0 {
		t.Fatalf("join backoff attempts after success = %d, want 0", attempts)
	}
	// The next poll after a rejoin is a full resync.
	updated, err := s.PollOnce()
	if err != nil || !updated {
		t.Fatalf("post-rejoin poll: updated=%v err=%v", updated, err)
	}
}
