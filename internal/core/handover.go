package core

import (
	"fmt"
	"strconv"
	"time"

	"rcb/internal/httpwire"
)

// Live agent handover: the HandoverInit → StateSync → Complete handshake
// that moves a running session from one agent process to another without
// restarting it. The sender (old agent) drives the exchange:
//
//  1. POST /handover/init      — the receiver, which must opt in with
//     AllowHandover, issues a one-time transfer token and stops admitting
//     joins so the incoming state cannot race fresh participants.
//  2. quiesce                  — the sender pins the shed ladder at
//     ShedInterval (no new long-polls park) and drains the parked ones,
//     so no request is suspended mid-protocol when the state leaves.
//  3. relocation fence         — under the serve/state barrier's write
//     lock the sender marks itself relocated; from that instant every
//     request answers MOVED + Rcb-Relocate and no session state can
//     change, which is what makes the exported snapshot the final word
//     (replay stamps included: exactly-once survives the move).
//  4. POST /handover/state     — the snapshot transfers; the receiver
//     imports it and adopts the session key.
//  5. POST /handover/complete  — the receiver opens its doors; snippets
//     follow the relocation on their normal backoff/rejoin path.
//
// The receiver side is idempotent at every step — init re-issues the
// outstanding token, state and complete acknowledge replays — so a lost
// response is retried without splitting the session. The sender rolls the
// fence back only while the state has provably not landed (before any
// /state success); afterwards the receiver owns the session and the old
// process must keep answering MOVED.

// DefaultMovedRetryAfter is the retry hint attached to MOVED responses
// when Agent.MovedRetryAfter is zero: short, because the new agent is
// already serving and the snippet should follow promptly.
const DefaultMovedRetryAfter = 50 * time.Millisecond

// handoverAttempts is how many times the sender retries each handshake
// step before giving up.
const handoverAttempts = 5

// handoverStepTimeout bounds one handshake round trip. State transfers are
// a single request carrying the whole session, so this is generous.
const handoverStepTimeout = 10 * time.Second

// quiesceTimeout bounds the parked-poll drain; parked polls complete
// within their hang anyway, so this only guards a stuck hub.
const quiesceTimeout = 5 * time.Second

// movedResponse answers any request that reaches a relocated agent. Caller
// holds at least the read side of smu.
func (a *Agent) movedResponse() *httpwire.Response {
	resp := closeResponse(CloseMoved)
	resp.Header.Set(RelocateHeader, a.relocatedTo)
	resp.Header.Set(RetryAfterHeader, strconv.FormatInt(a.movedRetryAfter().Milliseconds(), 10))
	return resp
}

func (a *Agent) movedRetryAfter() time.Duration {
	if a.MovedRetryAfter > 0 {
		return a.MovedRetryAfter
	}
	return DefaultMovedRetryAfter
}

// RelocatedTo reports the address this agent's session moved to ("" while
// the agent is live).
func (a *Agent) RelocatedTo() string {
	a.smu.RLock()
	defer a.smu.RUnlock()
	return a.relocatedTo
}

// setRelocated plants (or clears) the relocation fence under the
// serve/state barrier: once it returns, no request path can mutate
// session state.
func (a *Agent) setRelocated(addr string) {
	a.smu.Lock()
	a.relocatedTo = addr
	a.smu.Unlock()
}

// handoverPending reports whether this agent has issued a transfer token
// that has not completed — the window during which joins are refused.
func (a *Agent) handoverPending() bool {
	a.hmu.Lock()
	defer a.hmu.Unlock()
	return a.handoverToken != ""
}

// serveHandover is the receiver side of the handshake. Caller has already
// verified authentication; smu is NOT held (ImportState takes the write
// side itself).
func (a *Agent) serveHandover(req *httpwire.Request) *httpwire.Response {
	var token, state string
	for _, f := range httpwire.ParseForm(string(req.Body)) {
		switch f.Name {
		case "token":
			token = f.Value
		case "state":
			state = f.Value
		}
	}
	switch req.Path() {
	case "/handover/init":
		return a.handoverInit()
	case "/handover/state":
		return a.handoverState(token, state)
	case "/handover/complete":
		return a.handoverComplete(token)
	default:
		return httpwire.NewResponse(404, "text/plain", []byte("unknown handover step\n"))
	}
}

func (a *Agent) handoverInit() *httpwire.Response {
	if !a.AllowHandover {
		return httpwire.NewResponse(403, "text/plain", []byte("handover not allowed\n"))
	}
	a.hmu.Lock()
	defer a.hmu.Unlock()
	if a.handoverToken == "" {
		a.handoverToken = NewSessionKey()
		a.handoverImported = false
		a.handoverDone = false
		a.logf("rcb-agent: handover init, token issued")
	}
	// A repeated init (sender retrying a lost response) re-issues the
	// outstanding token instead of minting a second transfer.
	return httpwire.NewResponse(200, "text/plain", []byte(a.handoverToken))
}

func (a *Agent) handoverState(token, state string) *httpwire.Response {
	a.hmu.Lock()
	if a.handoverToken == "" || token != a.handoverToken {
		a.hmu.Unlock()
		return httpwire.NewResponse(403, "text/plain", []byte("bad handover token\n"))
	}
	if a.handoverImported {
		// Retry of a transfer that already landed: acknowledge, don't
		// re-import (the session may already be live with participants).
		a.hmu.Unlock()
		return httpwire.NewResponse(200, "text/plain", []byte("ok\n"))
	}
	a.hmu.Unlock()

	if err := a.ImportState([]byte(state)); err != nil {
		// A retried /state racing a slow first import can lose to it and
		// then find the session live; that is a success, not a conflict.
		a.hmu.Lock()
		imported := a.handoverImported
		a.hmu.Unlock()
		if imported {
			return httpwire.NewResponse(200, "text/plain", []byte("ok\n"))
		}
		a.logf("rcb-agent: handover import failed: %v", err)
		return httpwire.NewResponse(409, "text/plain", []byte("import failed: "+err.Error()+"\n"))
	}
	a.hmu.Lock()
	a.handoverImported = true
	a.hmu.Unlock()
	a.logf("rcb-agent: handover state imported")
	return httpwire.NewResponse(200, "text/plain", []byte("ok\n"))
}

func (a *Agent) handoverComplete(token string) *httpwire.Response {
	a.hmu.Lock()
	defer a.hmu.Unlock()
	if a.handoverDone {
		return httpwire.NewResponse(200, "text/plain", []byte("ok\n"))
	}
	if a.handoverToken == "" || token != a.handoverToken || !a.handoverImported {
		return httpwire.NewResponse(403, "text/plain", []byte("bad handover token\n"))
	}
	a.handoverDone = true
	a.handoverToken = "" // doors open: joins admitted again
	a.logf("rcb-agent: handover complete, session live")
	return httpwire.NewResponse(200, "text/plain", []byte("ok\n"))
}

// HandoverTo migrates this agent's session to the agent listening at addr,
// reachable through client. On success the old agent answers every request
// with MOVED + Rcb-Relocate forever after; on failure before the state
// landed remotely, the fence is rolled back and the session keeps serving
// here. Both processes must share the session key — the handshake rides
// the same HMAC scheme as participant traffic.
func (a *Agent) HandoverTo(client *httpwire.Client, addr string) error {
	// Step 1: init — obtain the transfer token.
	tokenResp, err := a.handoverPost(client, addr, "/handover/init", nil)
	if err != nil {
		return fmt.Errorf("rcb-agent: handover init: %w", err)
	}
	token := string(tokenResp)

	// Step 2: quiesce. Pin the ladder at ShedInterval so no new long-poll
	// parks, then wake and drain the parked ones. Polls answered during
	// this window carry the shed retry-after, degrading the fleet to
	// interval mode for the transfer.
	a.forceShed(ShedInterval)
	a.hub.notifyAll()
	drainDeadline := time.Now().Add(quiesceTimeout)
	for a.ParkedPolls() > 0 {
		if time.Now().After(drainDeadline) {
			a.forceShed(ShedNone)
			return fmt.Errorf("rcb-agent: handover: %d polls still parked after %v", a.ParkedPolls(), quiesceTimeout)
		}
		time.Sleep(time.Millisecond)
		a.hub.notifyAll()
	}

	// Step 3: the relocation fence. From here no request mutates state;
	// in-flight merges have drained (setRelocated waits out the barrier's
	// readers), so the snapshot below is the session's final word.
	a.setRelocated(addr)
	// Persistent channels survive the quiesce (their writers shed only on
	// the measured ladder, not the forced floor) precisely so this wake can
	// deliver the MOVED close frame over the live channel — the framed
	// analogue of the MOVED response every poll now receives.
	a.notifyAllChannels()
	state, err := a.ExportState()
	if err != nil {
		a.setRelocated("")
		a.forceShed(ShedNone)
		return fmt.Errorf("rcb-agent: handover export: %w", err)
	}

	// Step 4: transfer. After the first successful /state the receiver
	// owns the session: no rollback past this point, whatever happens to
	// /complete — re-running it is idempotent.
	fields := []httpwire.FormField{{Name: "token", Value: token}, {Name: "state", Value: string(state)}}
	if _, err := a.handoverPost(client, addr, "/handover/state", fields); err != nil {
		a.setRelocated("")
		a.forceShed(ShedNone)
		return fmt.Errorf("rcb-agent: handover state sync: %w", err)
	}

	// Step 5: complete — the receiver opens for joins.
	if _, err := a.handoverPost(client, addr, "/handover/complete",
		[]httpwire.FormField{{Name: "token", Value: token}}); err != nil {
		return fmt.Errorf("rcb-agent: handover complete (state already transferred): %w", err)
	}
	a.forceShed(ShedNone)
	a.logf("rcb-agent: session handed over to %s", addr)
	return nil
}

// handoverPost sends one handshake step, signing with the shared session
// key and retrying transport failures.
func (a *Agent) handoverPost(client *httpwire.Client, addr, path string, fields []httpwire.FormField) ([]byte, error) {
	body := []byte(httpwire.EncodeForm(fields))
	var lastErr error
	for attempt := 0; attempt < handoverAttempts; attempt++ {
		target := path
		if a.Auth != nil {
			target = a.Auth.Sign("POST", path, body)
		}
		req := httpwire.NewRequest("POST", target)
		req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		req.Body = body
		resp, err := client.DoTimeout(addr, req, handoverStepTimeout)
		if err != nil {
			lastErr = err
			time.Sleep(time.Duration(attempt+1) * 10 * time.Millisecond)
			continue
		}
		if resp.StatusCode != 200 {
			// Protocol-level refusals (no AllowHandover, bad token, import
			// failure) are not retryable: the receiver answered, it said no.
			return nil, fmt.Errorf("%s: %d %s", path, resp.StatusCode, string(resp.Body))
		}
		return resp.Body, nil
	}
	return nil, fmt.Errorf("%s: %w", path, lastErr)
}
