package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"rcb/internal/browser"
	"rcb/internal/dom"
	"rcb/internal/sites"
)

// newParticipantBrowser builds a participant browser without joining — for
// tests that expect the join itself to be refused.
func newParticipantBrowser(t *testing.T, w *world, loc string) *browser.Browser {
	t.Helper()
	pb := browser.New(loc, w.corpus.Network.Dialer(loc))
	t.Cleanup(pb.Close)
	return pb
}

// TestShedLadderClimbsAndRecovers walks the ladder deterministically through
// an injected heap probe: pressure climbs one step per evaluation up to
// refuse-joins, holds there, and recedes one step per evaluation once the
// signal is below the low watermark — never skipping a rung in either
// direction (one-step hysteresis).
func TestShedLadderClimbsAndRecovers(t *testing.T) {
	var heap atomic.Uint64
	w := newWorld(t, func(a *Agent) {
		a.Shed = ShedWatermarks{HeapHigh: 1000, HeapLow: 500}
		a.ReadHeap = func() uint64 { return heap.Load() }
	})

	heap.Store(2000)
	want := []ShedLevel{ShedNoDelta, ShedInterval, ShedRefuseJoins, ShedRefuseJoins}
	for i, lvl := range want {
		if got := w.agent.EvaluateLoad(); got != lvl {
			t.Fatalf("evaluation #%d under pressure = %v, want %v", i, got, lvl)
		}
	}
	// Between the watermarks: neither climb nor recover (hysteresis band).
	heap.Store(700)
	if got := w.agent.EvaluateLoad(); got != ShedRefuseJoins {
		t.Fatalf("inside hysteresis band the ladder moved to %v", got)
	}
	// Below the low watermark: one step down per evaluation.
	heap.Store(100)
	down := []ShedLevel{ShedInterval, ShedNoDelta, ShedNone, ShedNone}
	for i, lvl := range down {
		if got := w.agent.EvaluateLoad(); got != lvl {
			t.Fatalf("recovery evaluation #%d = %v, want %v", i, got, lvl)
		}
	}
	ups, downs := w.agent.ShedTransitions()
	if ups != 3 || downs != 3 {
		t.Fatalf("transitions = %d up / %d down, want 3/3", ups, downs)
	}
}

// TestShedRefuseJoinsAndRecover checks the ladder's top step end to end: a
// join against a fully shedding agent is refused with SESSION_FULL plus a
// retry hint, and admits again once pressure clears.
func TestShedRefuseJoinsAndRecover(t *testing.T) {
	var heap atomic.Uint64
	w := newWorld(t, func(a *Agent) {
		a.Shed = ShedWatermarks{HeapHigh: 1000}
		a.ReadHeap = func() uint64 { return heap.Load() }
	})
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")

	heap.Store(5000)
	for i := 0; i < 3; i++ {
		w.agent.EvaluateLoad()
	}
	pb := newParticipantBrowser(t, w, "refused.lan")
	s := NewSnippet(pb, "http://"+agentAddr, "")
	err := s.Join()
	if err == nil {
		t.Fatal("join admitted at refuse-joins")
	}
	if got := CloseReasonOf(err); got != CloseSessionFull {
		t.Fatalf("join refusal reason = %v (%v), want SESSION_FULL", got, err)
	}
	if got := s.LastCloseReason(); got != CloseSessionFull {
		t.Fatalf("snippet recorded %v, want SESSION_FULL", got)
	}
	if got := w.agent.JoinRefusals(); got != 1 {
		t.Fatalf("JoinRefusals = %d, want 1", got)
	}
	// SessionFull is retryable: the same snippet rejoins once the ladder
	// recovers.
	heap.Store(0)
	for i := 0; i < 3; i++ {
		w.agent.EvaluateLoad()
	}
	if w.agent.ShedLevel() != ShedNone {
		t.Fatalf("ladder stuck at %v", w.agent.ShedLevel())
	}
	if err := s.Rejoin(); err != nil {
		t.Fatalf("rejoin after recovery: %v", err)
	}
	if updated, err := s.PollOnce(); err != nil || !updated {
		t.Fatalf("post-recovery poll: updated=%v err=%v", updated, err)
	}
}

// TestShedIntervalForcesImmediateAnswer checks the ladder's middle step: at
// interval level a would-be long-poll answers instantly with the
// server-assigned retry interval instead of parking, and the snippet honors
// it as its next delay.
func TestShedIntervalForcesImmediateAnswer(t *testing.T) {
	var heap atomic.Uint64
	w := newWorld(t, func(a *Agent) {
		a.Shed = ShedWatermarks{HeapHigh: 1000}
		a.ReadHeap = func() uint64 { return heap.Load() }
		a.ShedRetryAfter = 1500 * time.Millisecond
	})
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	s := longPollJoin(t, w, "shed.lan", 10*time.Second)

	heap.Store(5000)
	w.agent.EvaluateLoad()
	w.agent.EvaluateLoad() // none → no-delta → interval

	start := time.Now()
	updated, err := s.PollOnce()
	took := time.Since(start)
	if err != nil || updated {
		t.Fatalf("shed poll: updated=%v err=%v", updated, err)
	}
	if took > time.Second {
		t.Fatalf("shed long-poll parked anyway (%v)", took)
	}
	if got := w.agent.ParkRefusals(); got != 1 {
		t.Fatalf("ParkRefusals = %d, want 1", got)
	}
	s.mu.Lock()
	retryAfter := s.retryAfter
	s.mu.Unlock()
	if retryAfter != 1500*time.Millisecond {
		t.Fatalf("snippet retryAfter = %v, want the server's 1.5s", retryAfter)
	}
	if got := s.runDelay(nil, 50*time.Millisecond); got != 1500*time.Millisecond {
		t.Fatalf("next delay = %v, want the server-assigned interval", got)
	}
}

// TestShedNoDeltaServesFullSnapshots checks the ladder's first step: with
// deltas shed, a delta-eligible poll gets the full snapshot and the
// participant still converges.
func TestShedNoDeltaServesFullSnapshots(t *testing.T) {
	var heap atomic.Uint64
	w := newWorld(t, func(a *Agent) {
		a.Shed = ShedWatermarks{HeapHigh: 1000}
		a.ReadHeap = func() uint64 { return heap.Load() }
	})
	w.hostNavigate(t, "http://"+sites.MapsHost+"/")
	s := w.join(t, "nodelta.lan")
	if _, err := s.PollOnce(); err != nil {
		t.Fatal(err)
	}

	heap.Store(5000)
	w.agent.EvaluateLoad() // none → no-delta
	mutateBody(t, w)
	updated, err := s.PollOnce()
	if err != nil || !updated {
		t.Fatalf("updated=%v err=%v", updated, err)
	}
	if got := w.agent.DeltasServed(); got != 0 {
		t.Fatalf("DeltasServed = %d under no-delta shedding", got)
	}
	if got := s.Stats().DeltaPolls; got != 0 {
		t.Fatalf("snippet counted %d delta polls", got)
	}
}

// TestShedReleasesDeltaBase is the regression test for the ladder's memory
// promise: the ShedNoDelta rung exists to free the retained delta bases, so
// climbing onto it must actually drop the ring, further builds under shed
// must not repopulate it, and descent must resume rotation.
func TestShedReleasesDeltaBase(t *testing.T) {
	var heap atomic.Uint64
	w := newWorld(t, func(a *Agent) {
		a.Shed = ShedWatermarks{HeapHigh: 1000, HeapLow: 500}
		a.ReadHeap = func() uint64 { return heap.Load() }
	})
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	s := w.join(t, "shedring.lan")
	if _, err := s.PollOnce(); err != nil {
		t.Fatal(err)
	}
	mutateBody(t, w)
	if _, err := s.PollOnce(); err != nil {
		t.Fatal(err)
	}
	if got := w.agent.DeltaBasesRetained(); got == 0 {
		t.Fatal("test setup: no delta base retained before shedding")
	}

	// Climb to ShedNoDelta: the ring must be released immediately, not on
	// some future rotation.
	heap.Store(5000)
	if lvl := w.agent.EvaluateLoad(); lvl != ShedNoDelta {
		t.Fatalf("ladder at %v, want no-delta", lvl)
	}
	if got := w.agent.DeltaBasesRetained(); got != 0 {
		t.Fatalf("DeltaBasesRetained = %d after climbing to no-delta, want 0", got)
	}

	// Builds while the rung holds must not quietly re-hoard bases.
	mutateBody(t, w)
	if _, err := s.PollOnce(); err != nil {
		t.Fatal(err)
	}
	if got := w.agent.DeltaBasesRetained(); got != 0 {
		t.Fatalf("DeltaBasesRetained = %d after a build under no-delta shedding, want 0", got)
	}

	// Descent: rotation resumes and the next replaced build is retained.
	heap.Store(100)
	if lvl := w.agent.EvaluateLoad(); lvl != ShedNone {
		t.Fatalf("ladder at %v after recovery, want none", lvl)
	}
	mutateBody(t, w)
	if _, err := s.PollOnce(); err != nil {
		t.Fatal(err)
	}
	if got := w.agent.DeltaBasesRetained(); got != 1 {
		t.Fatalf("DeltaBasesRetained = %d after recovery build, want 1", got)
	}
}

// TestFreshActionsDoesNotMutateCaller is the aliasing regression test: the
// replay filter must leave the caller's slice exactly as decoded even when
// it drops duplicates, so a retransmit/requeue path that retains the slice
// never sees it silently compacted.
func TestFreshActionsDoesNotMutateCaller(t *testing.T) {
	w := newWorld(t, nil)
	in := []Action{
		{Kind: ActionMouseMove, X: 1, CID: "c", CSeq: 1},
		{Kind: ActionMouseMove, X: 2, CID: "c", CSeq: 2},
		{Kind: ActionMouseMove, X: 3, CID: "c", CSeq: 3},
	}
	if got := len(w.agent.freshActions(in)); got != 3 {
		t.Fatalf("first pass survivors = %d, want 3", got)
	}
	// Replay 1 and 3 around a fresh 4: the duplicates are dropped, and the
	// caller's slice must still hold its own elements afterwards.
	replay := []Action{
		{Kind: ActionMouseMove, X: 1, CID: "c", CSeq: 1},
		{Kind: ActionMouseMove, X: 4, CID: "c", CSeq: 4},
		{Kind: ActionMouseMove, X: 3, CID: "c", CSeq: 3},
	}
	want := append([]Action(nil), replay...)
	out := w.agent.freshActions(replay)
	if len(out) != 1 || out[0].CSeq != 4 {
		t.Fatalf("survivors = %+v, want just CSeq 4", out)
	}
	for i := range want {
		if replay[i].CSeq != want[i].CSeq || replay[i].X != want[i].X {
			t.Fatalf("caller's slice mutated at %d: %+v, want %+v", i, replay[i], want[i])
		}
	}
	// All-fresh input is returned as-is without a copy — the fast path.
	fresh := []Action{{Kind: ActionMouseMove, X: 5, CID: "c", CSeq: 5}}
	if out := w.agent.freshActions(fresh); &out[0] != &fresh[0] {
		t.Fatal("all-fresh input was copied")
	}
}

// TestMaxParticipantsCap checks plain admission control: the cap refuses the
// N+1th join with SESSION_FULL and admits again after a leave.
func TestMaxParticipantsCap(t *testing.T) {
	w := newWorld(t, func(a *Agent) { a.MaxParticipants = 2 })
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	w.join(t, "one.lan")
	w.join(t, "two.lan")

	pb := newParticipantBrowser(t, w, "three.lan")
	s := NewSnippet(pb, "http://"+agentAddr, "")
	err := s.Join()
	if got := CloseReasonOf(err); got != CloseSessionFull {
		t.Fatalf("over-cap join: reason %v (err %v), want SESSION_FULL", got, err)
	}
	if got := w.agent.JoinRefusals(); got != 1 {
		t.Fatalf("JoinRefusals = %d, want 1", got)
	}
	// A slot frees up; the refused participant gets in.
	w.agent.Disconnect(w.agent.Participants()[0].ID)
	if err := s.Rejoin(); err != nil {
		t.Fatalf("join after slot freed: %v", err)
	}
}

// TestMaxParkedPollsCap checks the parked-poll bound: with the cap reached,
// a further long-poll answers immediately (no park) with the retry hint,
// while the parked one is untouched.
func TestMaxParkedPollsCap(t *testing.T) {
	w := newWorld(t, func(a *Agent) { a.MaxParkedPolls = 1 })
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	first := longPollJoin(t, w, "parked.lan", 10*time.Second)
	second := longPollJoin(t, w, "capped.lan", 10*time.Second)

	done := make(chan error, 1)
	go func() {
		_, err := first.PollOnce()
		done <- err
	}()
	waitParked(t, w.agent, 1)

	start := time.Now()
	updated, err := second.PollOnce()
	took := time.Since(start)
	if err != nil || updated {
		t.Fatalf("capped poll: updated=%v err=%v", updated, err)
	}
	if took > time.Second {
		t.Fatalf("capped long-poll parked anyway (%v)", took)
	}
	if got := w.agent.ParkRefusals(); got != 1 {
		t.Fatalf("ParkRefusals = %d, want 1", got)
	}
	if !second.lastParkDenied() {
		t.Fatal("capped snippet did not flag the denial for Run pacing")
	}
	// The parked poll still wakes normally on a document change.
	mutateTitle(t, w)
	if err := <-done; err != nil {
		t.Fatalf("parked poll errored after cap refusal: %v", err)
	}
}

// TestMaxParkAgeKicksStaleReader checks the parked-poll age bound: a poll
// that parks the full MaxParkAge without any wake is completed with
// STALE_READER and the participant is disconnected — retryable, so the
// snippet marks itself for rejoin.
func TestMaxParkAgeKicksStaleReader(t *testing.T) {
	w := newWorld(t, func(a *Agent) { a.MaxParkAge = 100 * time.Millisecond })
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	s := longPollJoin(t, w, "aged.lan", 10*time.Second)

	start := time.Now()
	_, err := s.PollOnce()
	took := time.Since(start)
	if err == nil {
		t.Fatal("aged-out park returned no error")
	}
	if got := CloseReasonOf(err); got != CloseStaleReader {
		t.Fatalf("aged-out park reason = %v (%v), want STALE_READER", got, err)
	}
	if took >= 5*time.Second {
		t.Fatalf("park aged out at %v, want ~MaxParkAge", took)
	}
	if got := w.agent.StaleKicks(); got != 1 {
		t.Fatalf("StaleKicks = %d, want 1", got)
	}
	if len(w.agent.Participants()) != 0 {
		t.Fatal("stale reader not disconnected")
	}
	if !s.RejoinNeeded() {
		t.Fatal("retryable STALE_READER did not mark the snippet for rejoin")
	}
}

// TestMaxAckLagReapsSlowReader checks the build-rotation reaper: a reader
// whose acknowledged docTime falls more than MaxAckLag builds behind is
// disconnected as STALE_READER while up-to-date readers are untouched.
func TestMaxAckLagReapsSlowReader(t *testing.T) {
	w := newWorld(t, func(a *Agent) { a.MaxAckLag = 2 })
	w.hostNavigate(t, "http://"+sites.MapsHost+"/")
	slow := w.join(t, "slow.lan")
	fast := w.join(t, "fast.lan")
	// Two polls each: the first fetches the snapshot (ts=0 — a reader that
	// never acknowledged anything is exempt), the second acknowledges it.
	for i := 0; i < 2; i++ {
		if _, err := slow.PollOnce(); err != nil {
			t.Fatal(err)
		}
		if _, err := fast.PollOnce(); err != nil {
			t.Fatal(err)
		}
	}

	// Three further builds; only fast acknowledges them. The reaper runs at
	// build rotation, measuring slow's ack against the build history.
	for i := 0; i < 4; i++ {
		mutateBody(t, w)
		if _, err := fast.PollOnce(); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.agent.StaleKicks(); got != 1 {
		t.Fatalf("StaleKicks = %d, want 1 (the lagging reader)", got)
	}
	_, err := slow.PollOnce()
	if got := CloseReasonOf(err); got != CloseStaleReader {
		t.Fatalf("slow reader's poll reason = %v (%v), want STALE_READER", got, err)
	}
	if _, err := fast.PollOnce(); err != nil {
		t.Fatalf("up-to-date reader was reaped too: %v", err)
	}
}

// TestDuplicateActionsFiltered checks the (CID, CSeq) replay filter: the
// same stamped action arriving twice — the push-then-piggyback replay the
// at-least-once upstream produces — reaches the policy exactly once.
func TestDuplicateActionsFiltered(t *testing.T) {
	var decisions atomic.Int64
	w := newWorld(t, func(a *Agent) {
		a.Policy = PolicyFunc(func(pid string, act Action) Decision {
			decisions.Add(1)
			return Apply
		})
	})
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	s := longPollJoin(t, w, "dup.lan", 0)
	s.ActionPush = true
	s.Delivery = DeliveryLongPoll

	act := Action{Kind: ActionMouseMove, X: 9, Y: 9}
	s.mu.Lock()
	s.stampLocked(&act)
	s.mu.Unlock()
	if err := s.PushAction(act); err != nil {
		t.Fatal(err)
	}
	// The ack was "lost": the snippet replays the same stamped action on the
	// piggyback path.
	s.QueueAction(act)
	if _, err := s.PollOnce(); err != nil {
		t.Fatal(err)
	}
	if got := decisions.Load(); got != 1 {
		t.Fatalf("policy saw the action %d times, want exactly once", got)
	}
	if got := w.agent.DuplicateActions(); got != 1 {
		t.Fatalf("DuplicateActions = %d, want 1", got)
	}
	// Unstamped actions (foreign clients) bypass the filter entirely.
	bare := Action{Kind: ActionMouseMove, X: 1, Y: 2}
	if err := s.PushAction(bare); err != nil {
		t.Fatal(err)
	}
	if err := s.PushAction(bare); err != nil {
		t.Fatal(err)
	}
	if got := decisions.Load(); got != 3 {
		t.Fatalf("unstamped actions filtered (decisions=%d, want 3)", got)
	}
}

// TestDisconnectReasonsOnTheWire pins the close-reason protocol: Disconnect
// answers LEAVE (403, non-retryable), Kick answers KICKED (403,
// non-retryable), and a pid the agent never knew answers UNKNOWN (403,
// retryable).
func TestDisconnectReasonsOnTheWire(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")

	leaver := w.join(t, "leaver.lan")
	w.agent.Disconnect(w.agent.Participants()[0].ID)
	_, err := leaver.PollOnce()
	if got := CloseReasonOf(err); got != CloseLeave {
		t.Fatalf("after Disconnect: reason %v (%v), want LEAVE", got, err)
	}
	if leaver.RejoinNeeded() {
		t.Fatal("LEAVE is final; snippet must not schedule a rejoin")
	}

	kicked := w.join(t, "kicked.lan")
	w.agent.Kick(w.agent.Participants()[0].ID)
	_, err = kicked.PollOnce()
	if got := CloseReasonOf(err); got != CloseKicked {
		t.Fatalf("after Kick: reason %v (%v), want KICKED", got, err)
	}

	// A participant the agent has no record of (e.g. the agent restarted).
	stranger := w.join(t, "stranger.lan")
	stranger.Browser.Jar.SetFromHeader(browser.HostOf("http://"+agentAddr+"/"), "rcbpid=p999; Path=/")
	_, err = stranger.PollOnce()
	if got := CloseReasonOf(err); got != CloseUnknown {
		t.Fatalf("unknown pid: reason %v (%v), want UNKNOWN", got, err)
	}
	if !stranger.RejoinNeeded() {
		t.Fatal("UNKNOWN is retryable; snippet must schedule a rejoin")
	}
}

// TestParseShedWatermarks covers the rcb-host flag syntax.
func TestParseShedWatermarks(t *testing.T) {
	w, err := ParseShedWatermarks("parked=192/128,outbox=4096,heap=256M")
	if err != nil {
		t.Fatal(err)
	}
	if w.ParkedHigh != 192 || w.ParkedLow != 128 {
		t.Fatalf("parked = %d/%d", w.ParkedHigh, w.ParkedLow)
	}
	if w.OutboxHigh != 4096 || w.OutboxLow != 0 {
		t.Fatalf("outbox = %d/%d", w.OutboxHigh, w.OutboxLow)
	}
	if w.HeapHigh != 256<<20 {
		t.Fatalf("heap = %d", w.HeapHigh)
	}
	if !w.enabled() {
		t.Fatal("parsed watermarks not enabled")
	}
	if empty, err := ParseShedWatermarks(""); err != nil || empty.enabled() {
		t.Fatalf("empty spec: %+v err=%v", empty, err)
	}
	for _, bad := range []string{"parked", "parked=", "bogus=1", "heap=1X2", "parked=5/x"} {
		if _, err := ParseShedWatermarks(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
	// Low watermark defaults to high/2.
	if got := lowMark(0, 100); got != 50 {
		t.Fatalf("lowMark(0, 100) = %d", got)
	}
	if got := lowMark(30, 100); got != 30 {
		t.Fatalf("lowMark(30, 100) = %d", got)
	}
}

// TestCloseReasonTable pins the enum's wire behavior: spelling round-trips,
// retryability, and status codes.
func TestCloseReasonTable(t *testing.T) {
	all := []CloseReason{
		CloseLeave, CloseKicked, CloseSessionFull, CloseOvercommitted,
		CloseStaleReader, CloseAgentClosing, CloseUnknown,
	}
	for _, r := range all {
		if got := ParseCloseReason(r.String()); got != r {
			t.Errorf("round trip %v → %q → %v", r, r.String(), got)
		}
	}
	if got := ParseCloseReason(""); got != CloseNone {
		t.Errorf(`ParseCloseReason("") = %v`, got)
	}
	if got := ParseCloseReason("FUTURE_REASON"); got != CloseUnknown {
		t.Errorf("unrecognized spelling = %v, want UNKNOWN", got)
	}
	for _, r := range []CloseReason{CloseLeave, CloseKicked} {
		if r.Retryable() {
			t.Errorf("%v must not be retryable", r)
		}
		if r.StatusCode() != 403 {
			t.Errorf("%v status = %d, want 403", r, r.StatusCode())
		}
	}
	for _, r := range []CloseReason{CloseSessionFull, CloseOvercommitted, CloseAgentClosing} {
		if !r.Retryable() {
			t.Errorf("%v must be retryable", r)
		}
		if r.StatusCode() != 503 {
			t.Errorf("%v status = %d, want 503", r, r.StatusCode())
		}
	}
	if !CloseStaleReader.Retryable() || CloseStaleReader.StatusCode() != 403 {
		t.Error("STALE_READER must be a retryable 403")
	}
	var errNo error = &CloseError{Reason: CloseKicked, Status: 403}
	if got := CloseReasonOf(errNo); got != CloseKicked {
		t.Errorf("CloseReasonOf = %v", got)
	}
	if got := CloseReasonOf(errors.New("plain")); got != CloseNone {
		t.Errorf("CloseReasonOf(plain) = %v", got)
	}
}

// mutateTitle bumps the host document version with a trivial DOM change.
func mutateTitle(t *testing.T, w *world) {
	t.Helper()
	err := w.host.ApplyMutation(func(doc *dom.Document) error {
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// mutationSeq distinguishes successive mutateBody calls so every call
// really changes the serialized document.
var mutationSeq atomic.Int64

// mutateBody performs one dynamic same-URL DOM change: a small append the
// delta path would normally ship as a patch.
func mutateBody(t *testing.T, w *world) {
	t.Helper()
	n := mutationSeq.Add(1)
	err := w.host.ApplyMutation(func(doc *dom.Document) error {
		el := dom.NewElement("div")
		el.AppendChild(dom.NewText("tick " + time.Duration(n).String()))
		doc.Body().AppendChild(el)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
