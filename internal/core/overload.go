package core

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rcb/internal/httpwire"
)

// The shed-load ladder. Under pressure the agent degrades service in
// explicit, observable steps instead of slowing down for everyone:
//
//	ShedNone        full service
//	ShedNoDelta     deltas off — every content poll gets the full snapshot;
//	                the delta-base ring and the per-pair diff cache are
//	                dropped on the climb and rotation skips until descent
//	                (deltas save bandwidth but hold up to ring-depth
//	                replaced builds and their diff scripts in memory)
//	ShedInterval    long-polls answer immediately with a server-assigned
//	                retry-after — parked-poll memory is bounded and the
//	                fleet degrades to the paper's interval polling
//	ShedRefuseJoins new connection requests are refused with SessionFull
//
// Each step keeps every existing participant syncing; the ladder climbs
// back down one step at a time once every enabled signal is below its low
// watermark (one-step hysteresis, so the ladder cannot oscillate inside a
// single evaluation window).
type ShedLevel int32

const (
	ShedNone ShedLevel = iota
	ShedNoDelta
	ShedInterval
	ShedRefuseJoins
)

func (l ShedLevel) String() string {
	switch l {
	case ShedNone:
		return "none"
	case ShedNoDelta:
		return "no-delta"
	case ShedInterval:
		return "interval"
	case ShedRefuseJoins:
		return "refuse-joins"
	default:
		return "shed(" + strconv.Itoa(int(l)) + ")"
	}
}

// ShedWatermarks configures the load signals that drive the ladder. A pair
// is enabled when its High value is positive; Low defaults to High/2 when
// left zero. The ladder climbs one step when any enabled signal reaches its
// high watermark and descends one step when every enabled signal is below
// its low watermark.
type ShedWatermarks struct {
	// ParkedHigh/ParkedLow watch the number of parked long-polls.
	ParkedHigh, ParkedLow int
	// OutboxHigh/OutboxLow watch the total queued mirror actions across
	// all participant outboxes.
	OutboxHigh, OutboxLow int
	// HeapHigh/HeapLow watch heap usage in bytes (runtime.MemStats
	// HeapAlloc, or the Agent.ReadHeap override).
	HeapHigh, HeapLow uint64
}

func (w ShedWatermarks) enabled() bool {
	return w.ParkedHigh > 0 || w.OutboxHigh > 0 || w.HeapHigh > 0
}

// low returns a low watermark, defaulting to high/2.
func lowMark[T int | uint64](low, high T) T {
	if low > 0 {
		return low
	}
	return high / 2
}

// ParseShedWatermarks parses the rcb-host flag syntax: comma-separated
// signal=high[/low] clauses, e.g. "parked=192/128,outbox=4096,heap=256M".
// Heap values accept K/M/G suffixes (binary). An empty string disables
// shedding.
func ParseShedWatermarks(s string) (ShedWatermarks, error) {
	var w ShedWatermarks
	if s == "" {
		return w, nil
	}
	for _, clause := range splitNonEmpty(s, ',') {
		name, vals, ok := cutByte(clause, '=')
		if !ok {
			return w, fmt.Errorf("shed watermark %q: want signal=high[/low]", clause)
		}
		highStr, lowStr, hasLow := cutByte(vals, '/')
		high, err := parseSize(highStr)
		if err != nil {
			return w, fmt.Errorf("shed watermark %q: %v", clause, err)
		}
		var low uint64
		if hasLow {
			if low, err = parseSize(lowStr); err != nil {
				return w, fmt.Errorf("shed watermark %q: %v", clause, err)
			}
		}
		switch name {
		case "parked":
			w.ParkedHigh, w.ParkedLow = int(high), int(low)
		case "outbox":
			w.OutboxHigh, w.OutboxLow = int(high), int(low)
		case "heap":
			w.HeapHigh, w.HeapLow = high, low
		default:
			return w, fmt.Errorf("shed watermark %q: unknown signal %q", clause, name)
		}
	}
	return w, nil
}

func splitNonEmpty(s string, sep byte) []string {
	var out []string
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != sep {
			i++
		}
		if part := s[:i]; part != "" {
			out = append(out, part)
		}
		if i == len(s) {
			break
		}
		s = s[i+1:]
	}
	return out
}

func cutByte(s string, sep byte) (before, after string, found bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == sep {
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}

// parseSize parses a decimal count with an optional binary K/M/G suffix.
func parseSize(s string) (uint64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty value")
	}
	mult := uint64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm', 'M':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g', 'G':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return n * mult, nil
}

// DefaultShedRetryAfter is the retry interval handed to clients when the
// ladder forces interval polling and Agent.ShedRetryAfter is zero.
const DefaultShedRetryAfter = 2 * time.Second

// shedState carries the ladder's mutable state, separate from the Agent's
// other lock domains.
type shedState struct {
	level    atomic.Int32
	mu       sync.Mutex // serializes EvaluateLoad transitions
	lastEval atomic.Int64
	ups      atomic.Int64
	downs    atomic.Int64
	// forced is an administrative floor under the measured level: the
	// handover quiesce pins ShedInterval so parked polls drain and no new
	// ones park, independent of what the load signals say.
	forced atomic.Int32

	respOnce sync.Once
	resp     *httpwire.Response
}

// ShedLevel reports the ladder's current step: the maximum of the measured
// level and any administratively forced floor.
func (a *Agent) ShedLevel() ShedLevel {
	lvl := ShedLevel(a.shed.level.Load())
	if f := ShedLevel(a.shed.forced.Load()); f > lvl {
		return f
	}
	return lvl
}

// measuredShedLevel reports the ladder's measured step alone, ignoring any
// forced floor. The channel writer sheds on this: a handover quiesce forces
// ShedInterval but must leave live channels attached so they can receive
// their MOVED close frame at the fence, while genuine load-driven
// ShedInterval does tear channels down.
func (a *Agent) measuredShedLevel() ShedLevel { return ShedLevel(a.shed.level.Load()) }

// forceShed pins the ladder at or above lvl until released with
// forceShed(ShedNone). The measured ladder keeps evaluating underneath and
// wins if it is higher.
func (a *Agent) forceShed(lvl ShedLevel) { a.shed.forced.Store(int32(lvl)) }

// ShedTransitions reports how many times the ladder climbed (ups) and
// recovered (downs).
func (a *Agent) ShedTransitions() (ups, downs int64) {
	return a.shed.ups.Load(), a.shed.downs.Load()
}

// heapInUse reads the heap signal.
func (a *Agent) heapInUse() uint64 {
	if a.ReadHeap != nil {
		return a.ReadHeap()
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// EvaluateLoad samples the load signals and moves the shed ladder at most
// one step, returning the level now in force. The serve path calls it
// rate-limited (maybeEvalLoad); tests and operators may call it directly.
func (a *Agent) EvaluateLoad() ShedLevel {
	w := a.Shed
	if !w.enabled() {
		return a.ShedLevel()
	}
	a.shed.mu.Lock()
	defer a.shed.mu.Unlock()

	// Persistent channels are per-client held state exactly like parked
	// long-polls — one socket, one goroutine pair, one delivery obligation —
	// so they weigh on the same signal and the ladder sees channel pressure.
	parked := a.hub.parkedCount() + int(a.channelsOpen.Load())
	outbox := int(a.outboxDepth.Load())
	var heap uint64
	if w.HeapHigh > 0 {
		heap = a.heapInUse()
	}

	high := (w.ParkedHigh > 0 && parked >= w.ParkedHigh) ||
		(w.OutboxHigh > 0 && outbox >= w.OutboxHigh) ||
		(w.HeapHigh > 0 && heap >= w.HeapHigh)
	low := (w.ParkedHigh <= 0 || parked <= lowMark(w.ParkedLow, w.ParkedHigh)) &&
		(w.OutboxHigh <= 0 || outbox <= lowMark(w.OutboxLow, w.OutboxHigh)) &&
		(w.HeapHigh <= 0 || heap <= lowMark(w.HeapLow, w.HeapHigh))

	lvl := ShedLevel(a.shed.level.Load())
	switch {
	case high && lvl < ShedRefuseJoins:
		lvl++
		a.shed.level.Store(int32(lvl))
		a.shed.ups.Add(1)
		if lvl == ShedNoDelta {
			// The rung's whole point is freeing memory: drop the delta-base
			// ring and diff cache now rather than waiting for the next
			// rotation (which skips while this rung holds).
			a.releaseDeltaState()
		}
		a.logf("rcb-agent: shed ladder up to %s (parked=%d outbox=%d heap=%d)", lvl, parked, outbox, heap)
	case !high && low && lvl > ShedNone:
		lvl--
		a.shed.level.Store(int32(lvl))
		a.shed.downs.Add(1)
		a.logf("rcb-agent: shed ladder down to %s (parked=%d outbox=%d heap=%d)", lvl, parked, outbox, heap)
	}
	return lvl
}

// shedEvalInterval rate-limits load evaluation on the serve path.
const shedEvalInterval = 100 * time.Millisecond

// maybeEvalLoad runs EvaluateLoad at most once per shedEvalInterval; cheap
// enough for every poll and broadcast.
func (a *Agent) maybeEvalLoad() {
	if !a.Shed.enabled() {
		return
	}
	now := time.Now().UnixNano()
	last := a.shed.lastEval.Load()
	if now-last < int64(shedEvalInterval) {
		return
	}
	if a.shed.lastEval.CompareAndSwap(last, now) {
		a.EvaluateLoad()
	}
}

// shedRetryAfter resolves the retry interval for shed responses.
func (a *Agent) shedRetryAfter() time.Duration {
	if a.ShedRetryAfter > 0 {
		return a.ShedRetryAfter
	}
	return DefaultShedRetryAfter
}

// shedEmptyResponse is the empty poll response carrying the server-assigned
// retry-after hint, shared across every refused park (ShedRetryAfter must
// not change once serving).
func (a *Agent) shedEmptyResponse() *httpwire.Response {
	a.shed.respOnce.Do(func() {
		r := httpwire.NewResponse(200, "application/xml", nil)
		r.Header.Set(RetryAfterHeader, strconv.FormatInt(a.shedRetryAfter().Milliseconds(), 10))
		a.shed.resp = r
	})
	return a.shed.resp
}
