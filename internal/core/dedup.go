package core

// Action deduplication. The snippet's upstream is at-least-once: a pushed
// action whose response is lost is retried on the poll channel, and a
// rejoining snippet re-sends its unacknowledged queue. The agent therefore
// filters actions by (client ID, client sequence) before handing them to
// the policy, making delivery exactly-once as far as page state is
// concerned. Actions without a CID (older snippets, hand-rolled clients)
// bypass the filter.

const (
	// dedupWindow bounds how many recent sequence numbers are remembered
	// per client; anything at or below maxSeq-dedupWindow is treated as a
	// duplicate (the client never retries that far back).
	dedupWindow = 1024
	// maxDedupClients bounds per-agent memory; the oldest client's state
	// is evicted first.
	maxDedupClients = 256
)

// dedupState is one client's replay filter.
type dedupState struct {
	maxSeq int64
	recent map[int64]struct{}
	order  []int64 // FIFO of entries in recent, for eviction
}

func (d *dedupState) fresh(seq int64) bool {
	if seq <= d.maxSeq-dedupWindow {
		return false
	}
	if _, dup := d.recent[seq]; dup {
		return false
	}
	d.recent[seq] = struct{}{}
	d.order = append(d.order, seq)
	if len(d.order) > dedupWindow {
		delete(d.recent, d.order[0])
		d.order = d.order[1:]
	}
	if seq > d.maxSeq {
		d.maxSeq = seq
	}
	return true
}

// freshActions filters out actions the agent has already accepted from the
// same client, returning the survivors in order. Safe for concurrent use.
func (a *Agent) freshActions(actions []Action) []Action {
	out := actions[:0]
	a.dmu.Lock()
	defer a.dmu.Unlock()
	for _, act := range actions {
		if act.CID == "" {
			out = append(out, act)
			continue
		}
		st := a.dedup[act.CID]
		if st == nil {
			if a.dedup == nil {
				a.dedup = make(map[string]*dedupState)
			}
			if len(a.dedupOrder) >= maxDedupClients {
				delete(a.dedup, a.dedupOrder[0])
				a.dedupOrder = a.dedupOrder[1:]
			}
			st = &dedupState{recent: make(map[int64]struct{})}
			a.dedup[act.CID] = st
			a.dedupOrder = append(a.dedupOrder, act.CID)
		}
		if st.fresh(act.CSeq) {
			out = append(out, act)
		} else {
			a.duplicateActions.Add(1)
		}
	}
	return out
}
