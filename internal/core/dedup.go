package core

import "time"

// Action deduplication. The snippet's upstream is at-least-once: a pushed
// action whose response is lost is retried on the poll channel, and a
// rejoining snippet re-sends its unacknowledged queue. The agent therefore
// filters actions by (client ID, client sequence) before handing them to
// the policy, making delivery exactly-once as far as page state is
// concerned. Actions without a CID (older snippets, hand-rolled clients)
// bypass the filter.
//
// The table is bounded in both dimensions: per client, only the last
// dedupWindow sequence numbers are remembered; across clients, the table
// holds at most maxDedupClients entries, evicting clients idle for longer
// than dedupIdleTTL first and falling back to least-recently-active order.
// Eviction only happens when admitting a new client, so a client that keeps
// acting — even one riding a long rejoin-churn session — never loses its
// stamps while active.

const (
	// dedupWindow bounds how many recent sequence numbers are remembered
	// per client; anything at or below maxSeq-dedupWindow is treated as a
	// duplicate (the client never retries that far back).
	dedupWindow = 1024
	// maxDedupClients bounds per-agent memory across clients.
	maxDedupClients = 256
	// dedupIdleTTL is how long a client may be silent before its stamps
	// are eligible for eviction ahead of merely less-recently-used ones.
	// It comfortably exceeds any rejoin backoff, so a participant bouncing
	// off a lossy link keeps exactly-once semantics across the gap.
	dedupIdleTTL = time.Hour
)

// dedupState is one client's replay filter.
type dedupState struct {
	maxSeq int64
	recent map[int64]struct{}
	order  []int64 // FIFO of entries in recent, for per-client eviction
	touch  int64   // agent-wide activity counter at last accepted action
	seen   time.Time
}

func (d *dedupState) fresh(seq int64) bool {
	if seq <= d.maxSeq-dedupWindow {
		return false
	}
	if _, dup := d.recent[seq]; dup {
		return false
	}
	d.recent[seq] = struct{}{}
	d.order = append(d.order, seq)
	if len(d.order) > dedupWindow {
		delete(d.recent, d.order[0])
		d.order = d.order[1:]
	}
	if seq > d.maxSeq {
		d.maxSeq = seq
	}
	return true
}

// dedupClock returns the wall time used for idle-based eviction; tests
// override Agent.dedupNow to simulate weeks of churn without sleeping.
func (a *Agent) dedupClock() time.Time {
	if a.dedupNow != nil {
		return a.dedupNow()
	}
	return time.Now()
}

// evictDedupLocked drops one client to make room for a new one: the first
// client idle beyond dedupIdleTTL, or failing that, the least recently
// active one. Caller holds a.dmu.
func (a *Agent) evictDedupLocked(now time.Time) {
	var victim string
	var minTouch int64 = -1
	for cid, st := range a.dedup {
		if now.Sub(st.seen) >= dedupIdleTTL {
			victim = cid
			break
		}
		if minTouch < 0 || st.touch < minTouch {
			victim, minTouch = cid, st.touch
		}
	}
	if victim != "" {
		delete(a.dedup, victim)
	}
}

// freshActions filters out actions the agent has already accepted from the
// same client, returning the survivors in order. The caller's slice is never
// mutated: when every action is fresh it is returned as-is, and the first
// dropped duplicate switches to a private copy (copy-on-first-drop) — a
// caller retaining the decoded actions for retransmit sees them unchanged.
// Safe for concurrent use.
func (a *Agent) freshActions(actions []Action) []Action {
	out := actions
	copied := false
	a.dmu.Lock()
	defer a.dmu.Unlock()
	for i, act := range actions {
		if a.freshLocked(act) {
			if copied {
				out = append(out, act)
			}
			continue
		}
		a.duplicateActions.Add(1)
		if !copied {
			out = append(make([]Action, 0, len(actions)-1), actions[:i]...)
			copied = true
		}
	}
	return out
}

// freshLocked stamps one action through the replay filter and reports
// whether it is new. Caller holds a.dmu.
func (a *Agent) freshLocked(act Action) bool {
	if act.CID == "" {
		return true
	}
	st := a.dedup[act.CID]
	if st == nil {
		if a.dedup == nil {
			a.dedup = make(map[string]*dedupState)
		}
		if len(a.dedup) >= maxDedupClients {
			a.evictDedupLocked(a.dedupClock())
		}
		st = &dedupState{recent: make(map[int64]struct{})}
		a.dedup[act.CID] = st
	}
	a.dedupTick++
	st.touch = a.dedupTick
	st.seen = a.dedupClock()
	return st.fresh(act.CSeq)
}

// DedupClients reports how many clients currently hold replay-filter state.
func (a *Agent) DedupClients() int {
	a.dmu.Lock()
	defer a.dmu.Unlock()
	return len(a.dedup)
}
