package core

// The deltaContent wire message: the incremental sibling of Figure 4's
// newContent. When a participant acknowledges the docTime of any build the
// agent still retains in its delta-base ring, the agent may answer with an
// edit script computed by dom.Diff between that build's tree and the
// current one instead of the full payload — O(change) bytes and an
// O(change) participant-side apply, the delta discipline CRDT systems use
// (PAPERS.md: Collabs). The message is versioned against the acknowledged
// base and the agent falls back to the full snapshot on a first poll, a
// base that fell off the ring, a top-level region change, or when the
// delta would not actually be smaller.
//
// Shape (same envelope conventions as newContent — every variable payload
// rides escape()d inside CDATA):
//
//	<?xml version='1.0' encoding='utf-8'?>
//	<deltaContent>
//	<docTime>T</docTime>
//	<baseDocTime>B</baseDocTime>
//	<docHead> ... numbered hChild elements, present only when the head changed ... </docHead>
//	<bodyPatch><![CDATA[escape(patch script)]]></bodyPatch>
//	<framesetPatch>...</framesetPatch>
//	<noframesPatch>...</noframesPatch>
//	<userActions>...</userActions>
//	</deltaContent>
//
// Patch scripts are encoded with a length-prefixed text codec (see
// appendPatches) that carries subtrees as exact node structures, never as
// re-parsed HTML, so a delta reproduces the agent's tree byte-for-byte.

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"rcb/internal/dom"
	"rcb/internal/httpwire"
	"rcb/internal/jsescape"
)

// DeltaContent is one incremental synchronization message. A nil/empty
// patch slice means that region is untouched since the base version.
type DeltaContent struct {
	// DocTime is the timestamp of the document content this delta produces.
	DocTime int64
	// BaseDocTime is the timestamp the participant must currently hold for
	// the patch scripts to apply; it is the ts value the participant
	// acknowledged on its polling request.
	BaseDocTime int64
	// HasHead reports that the head changed; Head then carries the full new
	// head children (the head is small and rebuilt element by element on the
	// participant, so it ships whole rather than as patches).
	HasHead bool
	Head    []HeadChild
	// Body, FrameSet and NoFrames carry the edit scripts for each top-level
	// region, addressed relative to that region's element.
	Body     []dom.Patch
	FrameSet []dom.Patch
	NoFrames []dom.Patch
	// UserActions carries other users' actions for mirroring, exactly as on
	// newContent.
	UserActions []Action
}

const closeDeltaContent = "</deltaContent>\n"

// deltaPreamble is the fixed prefix every marshaled delta message starts
// with; MessageIsDelta keys on it.
const deltaPreamble = "<?xml version='1.0' encoding='utf-8'?>\n<deltaContent>\n"

// MessageIsDelta reports whether a poll response body is a deltaContent
// message (as opposed to Figure 4's newContent).
func MessageIsDelta(data []byte) bool {
	return bytes.HasPrefix(data, []byte(deltaPreamble))
}

// Marshal renders the delta message.
func (d *DeltaContent) Marshal() []byte {
	return d.AppendMarshal(make([]byte, 0, 512))
}

// AppendMarshal appends the rendered message to dst.
func (d *DeltaContent) AppendMarshal(dst []byte) []byte {
	dst = append(dst, deltaPreamble...)
	dst = append(dst, "<docTime>"...)
	dst = strconv.AppendInt(dst, d.DocTime, 10)
	dst = append(dst, "</docTime>\n<baseDocTime>"...)
	dst = strconv.AppendInt(dst, d.BaseDocTime, 10)
	dst = append(dst, "</baseDocTime>\n"...)
	if d.HasHead {
		dst = append(dst, "<docHead>\n"...)
		for i, h := range d.Head {
			dst = append(dst, "<hChild"...)
			dst = strconv.AppendInt(dst, int64(i+1), 10)
			dst = append(dst, "><![CDATA["...)
			dst = jsescape.AppendEscape(dst, headChildPayload(h))
			dst = append(dst, "]]></hChild"...)
			dst = strconv.AppendInt(dst, int64(i+1), 10)
			dst = append(dst, ">\n"...)
		}
		dst = append(dst, "</docHead>\n"...)
	}
	dst = appendRegionPatch(dst, "bodyPatch", d.Body)
	dst = appendRegionPatch(dst, "framesetPatch", d.FrameSet)
	dst = appendRegionPatch(dst, "noframesPatch", d.NoFrames)
	if len(d.UserActions) > 0 {
		dst = appendUserActions(dst, d.UserActions)
	}
	dst = append(dst, closeDeltaContent...)
	return dst
}

func appendRegionPatch(dst []byte, name string, patches []dom.Patch) []byte {
	if len(patches) == 0 {
		return dst
	}
	dst = append(dst, '<')
	dst = append(dst, name...)
	dst = append(dst, "><![CDATA["...)
	dst = jsescape.AppendEscape(dst, string(appendPatches(nil, patches)))
	dst = append(dst, "]]></"...)
	dst = append(dst, name...)
	dst = append(dst, ">\n"...)
	return dst
}

// UnmarshalDelta parses a deltaContent message.
func UnmarshalDelta(data []byte) (*DeltaContent, error) {
	s := string(data)
	d := &DeltaContent{}
	docTime, ok := elementText(s, "docTime")
	if !ok {
		return nil, fmt.Errorf("core: delta message has no docTime")
	}
	t, err := strconv.ParseInt(strings.TrimSpace(docTime), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("core: bad delta docTime %q", docTime)
	}
	d.DocTime = t
	base, ok := elementText(s, "baseDocTime")
	if !ok {
		return nil, fmt.Errorf("core: delta message has no baseDocTime")
	}
	if d.BaseDocTime, err = strconv.ParseInt(strings.TrimSpace(base), 10, 64); err != nil {
		return nil, fmt.Errorf("core: bad baseDocTime %q", base)
	}
	if headSec, ok := elementText(s, "docHead"); ok {
		d.HasHead = true
		if d.Head, err = parseHeadSection(headSec); err != nil {
			return nil, err
		}
	}
	for _, region := range []struct {
		name string
		dst  *[]dom.Patch
	}{{"bodyPatch", &d.Body}, {"framesetPatch", &d.FrameSet}, {"noframesPatch", &d.NoFrames}} {
		payload, ok := elementText(s, region.name)
		if !ok {
			continue
		}
		patches, err := decodePatches(jsescape.Unescape(stripCDATA(payload)))
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", region.name, err)
		}
		*region.dst = patches
	}
	if payload, ok := elementText(s, "userActions"); ok {
		actions, err := DecodeActions(jsescape.Unescape(stripCDATA(payload)))
		if err != nil {
			return nil, err
		}
		d.UserActions = actions
	}
	return d, nil
}

// Patch script codec: a compact length-prefixed text encoding. Integers are
// decimal terminated by ';'; strings are "<len>:<bytes>"; nodes are a type
// letter followed by their fields. Subtrees travel as exact structures so
// decode(encode(patches)) reproduces the script without any HTML re-parse —
// the property the dom-level harness proves end to end.
//
//	script  := int(count) patch*
//	patch   := 'A' str(path) int(nattrs) attr*
//	         | 'T' str(path) str(text)
//	         | 'R' str(path)
//	         | 'I' str(path) int(index) node
//	         | 'P' str(path) node
//	attr    := str(name) str(value)
//	node    := 'e' str(tag) int(nattrs) attr* int(nchildren) node*
//	         | 't' str(data) | 'c' str(data) | 'd' str(data)

func appendCodecInt(dst []byte, v int) []byte {
	dst = strconv.AppendInt(dst, int64(v), 10)
	return append(dst, ';')
}

func appendCodecStr(dst []byte, s string) []byte {
	dst = strconv.AppendInt(dst, int64(len(s)), 10)
	dst = append(dst, ':')
	return append(dst, s...)
}

func appendCodecAttrs(dst []byte, attrs []dom.Attr) []byte {
	dst = appendCodecInt(dst, len(attrs))
	for _, a := range attrs {
		dst = appendCodecStr(dst, a.Name)
		dst = appendCodecStr(dst, a.Value)
	}
	return dst
}

func appendCodecNode(dst []byte, n *dom.Node) []byte {
	switch n.Type {
	case dom.ElementNode:
		dst = append(dst, 'e')
		dst = appendCodecStr(dst, n.Tag)
		dst = appendCodecAttrs(dst, n.Attrs)
		dst = appendCodecInt(dst, len(n.Children))
		for _, c := range n.Children {
			dst = appendCodecNode(dst, c)
		}
	case dom.TextNode:
		dst = append(dst, 't')
		dst = appendCodecStr(dst, n.Data)
	case dom.CommentNode:
		dst = append(dst, 'c')
		dst = appendCodecStr(dst, n.Data)
	default: // DoctypeNode
		dst = append(dst, 'd')
		dst = appendCodecStr(dst, n.Data)
	}
	return dst
}

// appendPatches encodes an edit script.
func appendPatches(dst []byte, patches []dom.Patch) []byte {
	dst = appendCodecInt(dst, len(patches))
	for i := range patches {
		p := &patches[i]
		switch p.Op {
		case dom.OpSetAttrs:
			dst = append(dst, 'A')
			dst = appendCodecStr(dst, p.Path)
			dst = appendCodecAttrs(dst, p.Attrs)
		case dom.OpSetText:
			dst = append(dst, 'T')
			dst = appendCodecStr(dst, p.Path)
			dst = appendCodecStr(dst, p.Text)
		case dom.OpRemove:
			dst = append(dst, 'R')
			dst = appendCodecStr(dst, p.Path)
		case dom.OpInsert:
			dst = append(dst, 'I')
			dst = appendCodecStr(dst, p.Path)
			dst = appendCodecInt(dst, p.Index)
			dst = appendCodecNode(dst, p.Node)
		case dom.OpReplace:
			dst = append(dst, 'P')
			dst = appendCodecStr(dst, p.Path)
			dst = appendCodecNode(dst, p.Node)
		}
	}
	return dst
}

// codecReader walks an encoded script with bounds checking; every decode
// error is a hard error (the snippet falls back to a full resync).
type codecReader struct {
	s   string
	pos int
}

func (r *codecReader) errf(format string, args ...any) error {
	return fmt.Errorf("core: patch codec at %d: %s", r.pos, fmt.Sprintf(format, args...))
}

func (r *codecReader) byte() (byte, error) {
	if r.pos >= len(r.s) {
		return 0, r.errf("unexpected end")
	}
	b := r.s[r.pos]
	r.pos++
	return b, nil
}

func (r *codecReader) int() (int, error) {
	start := r.pos
	neg := false
	if r.pos < len(r.s) && r.s[r.pos] == '-' {
		neg = true
		r.pos++
	}
	v := 0
	for r.pos < len(r.s) && r.s[r.pos] >= '0' && r.s[r.pos] <= '9' {
		if v > (1<<31)/10 {
			return 0, r.errf("integer overflow")
		}
		v = v*10 + int(r.s[r.pos]-'0')
		r.pos++
	}
	if r.pos == start || (neg && r.pos == start+1) {
		return 0, r.errf("expected integer")
	}
	if r.pos >= len(r.s) || r.s[r.pos] != ';' {
		return 0, r.errf("integer missing terminator")
	}
	r.pos++
	if neg {
		v = -v
	}
	return v, nil
}

func (r *codecReader) str() (string, error) {
	start := r.pos
	n := 0
	for r.pos < len(r.s) && r.s[r.pos] >= '0' && r.s[r.pos] <= '9' {
		if n > (1<<31)/10 {
			return "", r.errf("string length overflow")
		}
		n = n*10 + int(r.s[r.pos]-'0')
		r.pos++
	}
	if r.pos == start || r.pos >= len(r.s) || r.s[r.pos] != ':' {
		return "", r.errf("expected string length")
	}
	r.pos++
	if r.pos+n > len(r.s) {
		return "", r.errf("string length %d past end", n)
	}
	s := r.s[r.pos : r.pos+n]
	r.pos += n
	return s, nil
}

func (r *codecReader) attrs() ([]dom.Attr, error) {
	n, err := r.int()
	if err != nil {
		return nil, err
	}
	if n < 0 || n > len(r.s)-r.pos {
		return nil, r.errf("implausible attr count %d", n)
	}
	if n == 0 {
		return nil, nil
	}
	attrs := make([]dom.Attr, n)
	for i := range attrs {
		if attrs[i].Name, err = r.str(); err != nil {
			return nil, err
		}
		if attrs[i].Value, err = r.str(); err != nil {
			return nil, err
		}
	}
	return attrs, nil
}

func (r *codecReader) node() (*dom.Node, error) {
	kind, err := r.byte()
	if err != nil {
		return nil, err
	}
	n := &dom.Node{}
	switch kind {
	case 'e':
		n.Type = dom.ElementNode
		if n.Tag, err = r.str(); err != nil {
			return nil, err
		}
		if n.Attrs, err = r.attrs(); err != nil {
			return nil, err
		}
		count, err := r.int()
		if err != nil {
			return nil, err
		}
		if count < 0 || count > len(r.s)-r.pos {
			return nil, r.errf("implausible child count %d", count)
		}
		for i := 0; i < count; i++ {
			c, err := r.node()
			if err != nil {
				return nil, err
			}
			c.Parent = n
			n.Children = append(n.Children, c)
		}
	case 't', 'c', 'd':
		switch kind {
		case 't':
			n.Type = dom.TextNode
		case 'c':
			n.Type = dom.CommentNode
		default:
			n.Type = dom.DoctypeNode
		}
		if n.Data, err = r.str(); err != nil {
			return nil, err
		}
	default:
		return nil, r.errf("unknown node kind %q", kind)
	}
	return n, nil
}

// decodePatches decodes an edit script.
func decodePatches(s string) ([]dom.Patch, error) {
	r := &codecReader{s: s}
	count, err := r.int()
	if err != nil {
		return nil, err
	}
	if count < 0 || count > len(s) {
		return nil, r.errf("implausible patch count %d", count)
	}
	patches := make([]dom.Patch, 0, count)
	for i := 0; i < count; i++ {
		op, err := r.byte()
		if err != nil {
			return nil, err
		}
		var p dom.Patch
		if p.Path, err = r.str(); err != nil {
			return nil, err
		}
		switch op {
		case 'A':
			p.Op = dom.OpSetAttrs
			if p.Attrs, err = r.attrs(); err != nil {
				return nil, err
			}
		case 'T':
			p.Op = dom.OpSetText
			if p.Text, err = r.str(); err != nil {
				return nil, err
			}
		case 'R':
			p.Op = dom.OpRemove
		case 'I':
			p.Op = dom.OpInsert
			if p.Index, err = r.int(); err != nil {
				return nil, err
			}
			if p.Index < 0 {
				return nil, r.errf("negative insert index %d", p.Index)
			}
			if p.Node, err = r.node(); err != nil {
				return nil, err
			}
		case 'P':
			p.Op = dom.OpReplace
			if p.Node, err = r.node(); err != nil {
				return nil, err
			}
		default:
			return nil, r.errf("unknown patch op %q", op)
		}
		patches = append(patches, p)
	}
	if r.pos != len(s) {
		return nil, r.errf("trailing bytes after script")
	}
	return patches, nil
}

// preparedDelta is one cached, encoded delta response: the incremental
// counterpart of PreparedContent, keyed by its (base, target) docTime pair
// and shared by every participant acknowledging that base.
type preparedDelta struct {
	baseDocTime int64
	docTime     int64
	xml         []byte
	// splice is the offset of the closing </deltaContent> tag, for the
	// per-participant userActions insertion.
	splice int
	resp   *httpwire.Response
}

// WithUserActions mirrors PreparedContent.WithUserActions for delta bytes.
func (d *preparedDelta) WithUserActions(actions []Action) []byte {
	if len(actions) == 0 {
		return d.xml
	}
	out := make([]byte, 0, len(d.xml)+spliceSizeHint(actions))
	out = append(out, d.xml[:d.splice]...)
	out = appendUserActions(out, actions)
	out = append(out, d.xml[d.splice:]...)
	return out
}
