package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rcb/internal/browser"
	"rcb/internal/dom"
	"rcb/internal/httpwire"
)

// SnippetStats counts a snippet's protocol activity.
type SnippetStats struct {
	Polls            int64
	EmptyPolls       int64
	ContentPolls     int64
	DeltaPolls       int64         // content polls answered incrementally (deltaContent)
	DeltaFailures    int64         // delta applies abandoned for a full resync
	ActionsSent      int64         // actions piggybacked on polling requests
	ActionsPushed    int64         // actions delivered through the /action upstream
	ActionFallbacks  int64         // push attempts that degraded to the piggyback queue
	PollFailures     int64         // polls that returned an error (transport or terminal)
	Rejoins          int64         // automatic rejoin-and-resync cycles completed
	Relocates        int64         // rejoins that followed an Rcb-Relocate address
	LastApplyTime    time.Duration // duration of the last Figure 5 application (the paper's M6)
	ObjectFetches    int64
	ObjectsFromAgent int64
	// Duplex counters: activity on the framed persistent channel.
	DuplexUpgrades    int64 // successful POST /channel upgrades
	DuplexFramesIn    int64 // frames received over channels
	DuplexFramesOut   int64 // frames sent over channels (actions, acks, pings)
	DuplexActionsSent int64 // actions delivered as channel frames
	DuplexFallbacks   int64 // channel losses/refusals that degraded to polling
	// LastCloseReason is the most recent close reason the agent sent —
	// why this snippet was dropped, refused, or told to back off.
	LastCloseReason CloseReason
}

// DeliveryMode selects how a snippet paces its polling requests.
type DeliveryMode int

const (
	// DeliveryInterval is the paper's fixed-interval poll (§4.2.1): sleep
	// PollInterval between requests, accept a mean staleness of half the
	// interval. This is the default and the fallback every other mode
	// degrades to.
	DeliveryInterval DeliveryMode = iota
	// DeliveryLongPoll is the hanging-GET (Comet) channel: each request
	// carries a wait field asking the agent to park it until new content
	// exists, and Run re-issues the next request immediately after a
	// response arrives. Staleness drops to the transfer time; an idle
	// session costs one request per LongPollWait instead of one per
	// PollInterval. Action piggybacking and requeue-on-failure work
	// exactly as in interval mode.
	DeliveryLongPoll
	// DeliveryDuplex upgrades the exchange to a single framed full-duplex
	// connection (POST /channel → 101): the agent pushes content and delta
	// frames the instant a build lands, and the snippet sends action frames
	// upstream on the same socket — no parked request, no separate action
	// lane, one HMAC for the connection's lifetime. When the channel is
	// refused or lost the snippet degrades to long-poll (and from there,
	// under park denial, to interval pacing) and periodically re-attempts
	// the upgrade — the full degradation ladder of README's delivery
	// section.
	DeliveryDuplex
)

// DefaultLongPollWait is the per-request hang a long-poll snippet asks for
// when LongPollWait is zero. Kept under the agent-side DefaultMaxPollWait
// so the request completes at the client's horizon, not the server's cap.
const DefaultLongPollWait = 20 * time.Second

// longPollReadSlack pads the client-side read deadline past the requested
// hang: the deadline is a safety net against a dead agent, not a second
// pacing mechanism, so it must never fire before a healthy agent's timeout
// response arrives.
const longPollReadSlack = 10 * time.Second

// parkDeniedThreshold separates "the agent refused to park this request"
// (empty answer at round-trip speed; Run must pace itself) from "the agent
// parked it and the hang elapsed" (empty answer at hang scale; re-issue
// immediately). Comfortably above the WAN round trips the experiments
// model, comfortably below any sensible hang.
const parkDeniedThreshold = 100 * time.Millisecond

// Snippet is the participant-side Ajax-Snippet: the polling loop and
// content application procedure a participant browser's JavaScript runs
// (paper §4.2), reproduced as a Go state machine driving a participant
// browser model. One Snippet serves one participant.
//
// # Delivery modes
//
// By default the snippet reproduces the paper exactly: Run sleeps
// PollInterval between polls and every request completes immediately
// (DeliveryInterval). Setting Delivery to DeliveryLongPoll turns the same
// request/response channel into a push path — see DeliveryMode. PollOnce
// honors the mode either way, so harnesses that drive polls manually get
// long-poll semantics just by setting the field.
type Snippet struct {
	// Browser is the participant browser model.
	Browser *browser.Browser
	// AgentURL is the RCB-Agent address typed into the address bar,
	// e.g. "http://host.lan:3000".
	AgentURL string
	// Key is the out-of-band session secret; empty disables HMAC signing.
	Key string
	// PollInterval is the delay between polls when Run drives the loop in
	// interval mode, and the retry backoff after a failed poll in long-poll
	// mode. The paper's experiments use one second.
	PollInterval time.Duration
	// Delivery selects interval polling (default, paper semantics) or the
	// hanging-GET long-poll channel.
	Delivery DeliveryMode
	// LongPollWait is the maximum hang requested per long-poll request;
	// zero means DefaultLongPollWait. The agent may cap it further
	// (Agent.MaxPollWait). Ignored in interval mode.
	LongPollWait time.Duration
	// ActionPush enables the fire-and-forget action upstream: in long-poll
	// mode each locally generated user action is POSTed to the agent's
	// /action endpoint the moment it occurs, on its own connection lane, so
	// it never waits behind a parked polling request. The action entry
	// points then block for the push round trip (bounded by
	// actionPushTimeout), which preserves action ordering without a worker
	// goroutine. Interval-mode snippets ignore it and keep the paper's
	// piggyback path (their next request is already at most one interval
	// away, and adding a second channel would double their request rate for
	// little gain). Any push failure falls back to the piggyback queue —
	// the action is never lost — and suspends further pushes until a poll
	// succeeds again. Delivery is at-least-once, exactly like the piggyback
	// path's requeue-on-failure: an ack lost after the agent merged the
	// action replays it on the next poll.
	ActionPush bool
	// FetchObjects controls whether supplementary objects are downloaded
	// after a content update (on by default; the experiment harness turns
	// it off when it wants to time M6 in isolation).
	FetchObjects bool
	// DisableDelta stops the snippet from advertising deltaContent support:
	// every content poll then carries the full Figure 4 snapshot, the
	// paper's exact protocol. Benchmarks use it to compare the two paths.
	DisableDelta bool
	// OnUserAction, when non-nil, receives mirrored actions of other users
	// (pointer moves, etc.).
	OnUserAction func(Action)
	// ClientID identifies this snippet for the agent's action replay
	// filter; every action is stamped with it plus a client-local sequence
	// number. Auto-generated when left empty. Stable across rejoins, so a
	// re-sent queue is deduplicated even under a new participant identity.
	ClientID string
	// RetryBase/RetryMax shape the unified retry backoff (poll, action
	// push, join): delays double from RetryBase up to RetryMax with
	// half-to-full jitter, and reset on success. RetryBase defaults to
	// PollInterval, RetryMax to 30 seconds.
	RetryBase time.Duration
	RetryMax  time.Duration
	// RetryRand overrides the jitter source with a deterministic one
	// (tests); nil uses math/rand. Called only under the snippet's lock.
	RetryRand func() float64
	// DisableRejoin turns off the automatic rejoin-and-resync Run performs
	// after a retryable close reason; the error is still reported and the
	// loop keeps polling with its stale identity (useful for harnesses
	// that manage identity themselves).
	DisableRejoin bool

	auth *Authenticator

	mu sync.Mutex
	// curAgentURL is the agent the snippet currently talks to: AgentURL
	// until a MOVED response relocates the session, the Rcb-Relocate
	// address afterwards. prevAgentURL remembers the address before the
	// last relocation so a refused join at the new agent can fall back.
	// relocateTo holds a received Rcb-Relocate address until the next
	// Rejoin consumes it — exactly once.
	curAgentURL  string
	prevAgentURL string
	relocateTo   string
	// pollAddr caches the dial address resolved from pollAddrFor; it is
	// recomputed whenever the agent URL changes (relocation).
	pollAddr    string
	pollAddrFor string
	pollAddrErr error
	docTime     int64
	queue       []Action
	stats       SnippetStats
	lastObjects []browser.ObjectFetch
	memo        ApplyMemo
	// parkDenied records that the most recent poll asked the agent to park
	// it and was answered instantly empty — the push channel is gone
	// (Agent.Close), so Run must pace itself instead of re-issuing at
	// network speed.
	parkDenied bool
	// pushSuspended records that the most recent action push failed, so
	// later actions go straight to the piggyback queue instead of paying a
	// doomed round trip each. A successful poll (proof the agent is
	// reachable again) re-arms the push channel immediately; otherwise a
	// single probe push is allowed once pushResumeAt passes (half-open).
	pushSuspended bool
	pushResumeAt  time.Time
	// agentClosing records that the last poll was answered with the
	// AgentClosing marker: the server completed it deliberately while
	// shutting down, so Run backs off instead of re-parking immediately.
	agentClosing bool
	// retryAfter is the server-assigned retry interval from the last poll
	// (shed ladder); zero when the server sent none.
	retryAfter time.Duration
	// rejoinNeeded is set when the agent terminated the session with a
	// retryable close reason; Run re-joins and resyncs before polling on.
	rejoinNeeded bool
	// channel is the live duplex connection, nil when none is attached;
	// dispatch routes actions onto it. chanSent is the retransmit buffer:
	// actions written to the channel but not yet covered by a FrameActionAck,
	// requeued for piggybacking when the channel dies so delivery stays
	// at-least-once (the agent's replay filter makes it exactly-once).
	channel  *httpwire.ChannelConn
	chanSent []Action
	// duplexUntil suspends upgrade attempts after a refusal or channel loss:
	// until it passes, a DeliveryDuplex snippet runs the long-poll path, then
	// re-attempts the upgrade — degradation and recovery on one clock.
	duplexUntil   time.Time
	cseq          int64
	clientID      string
	pollBackoff   *Backoff
	pushBackoff   *Backoff
	joinBackoff   *Backoff
	duplexBackoff *Backoff
}

// NewSnippet returns a snippet for a participant browser joining agentURL.
func NewSnippet(b *browser.Browser, agentURL, key string) *Snippet {
	s := &Snippet{
		Browser:      b,
		AgentURL:     agentURL,
		Key:          key,
		PollInterval: time.Second,
		FetchObjects: true,
	}
	if key != "" {
		s.auth = NewAuthenticator(key)
	}
	// The snippet performs the Figure 5 render pass itself; the browser's
	// renderer must not race it with its own mutation-triggered fetches.
	b.FetchOnMutate = false
	return s
}

// Stats returns a copy of the protocol counters.
func (s *Snippet) Stats() SnippetStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// DocTime returns the last document timestamp acknowledged.
func (s *Snippet) DocTime() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.docTime
}

// LastObjectFetches reports the supplementary-object downloads of the most
// recent content application (experiment harness hook for M3/M4).
func (s *Snippet) LastObjectFetches() []browser.ObjectFetch {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]browser.ObjectFetch(nil), s.lastObjects...)
}

// Join performs the new connection request (paper step 2): the participant
// types the agent URL into the address bar, receives the initial page
// containing Ajax-Snippet, and the channel is established.
func (s *Snippet) Join() error {
	url := s.agentURL()
	stats, err := s.Browser.Navigate(url + "/")
	if err != nil {
		var se *browser.StatusError
		if errors.As(err, &se) {
			if reason := ParseCloseReason(se.Header.Get(CloseReasonHeader)); reason != CloseNone {
				s.mu.Lock()
				s.stats.LastCloseReason = reason
				if ra := parseRetryAfterMS(se.Header.Get(RetryAfterHeader)); ra > 0 {
					s.retryAfter = ra
				}
				if reason == CloseMoved {
					// The agent moved under us even for joining: follow the
					// relocation on the next Rejoin attempt.
					if addr := se.Header.Get(RelocateHeader); addr != "" {
						s.relocateTo = normalizeAgentURL(addr)
					}
					s.rejoinNeeded = true
				}
				s.mu.Unlock()
				return fmt.Errorf("rcb-snippet: join %s: %w", url,
					&CloseError{Reason: reason, Status: se.StatusCode})
			}
		}
		return fmt.Errorf("rcb-snippet: join %s: %w", url, err)
	}
	_ = stats
	var hasSnippet bool
	err = s.Browser.WithDocument(func(_ string, doc *dom.Document) error {
		hasSnippet = doc.ByID("rcb-ajax-snippet") != nil
		return nil
	})
	if err != nil {
		return err
	}
	if !hasSnippet {
		return fmt.Errorf("rcb-snippet: initial page from %s has no Ajax-Snippet", url)
	}
	return nil
}

// CurrentAgentURL reports which agent the snippet is talking to — AgentURL
// until a relocation was followed, the new agent's URL afterwards.
func (s *Snippet) CurrentAgentURL() string { return s.agentURL() }

// QueueAction buffers an action for piggybacking on the next polling
// request (paper §4.2.1: the POST method is used "so that action
// information of a co-browsing participant can be directly piggybacked").
func (s *Snippet) QueueAction(act Action) {
	s.mu.Lock()
	s.stampLocked(&act)
	s.queue = append(s.queue, act)
	s.mu.Unlock()
}

// snippetSeq distinguishes auto-generated client IDs within a process.
var snippetSeq atomic.Int64

// stampLocked assigns the replay-filter identity (CID, CSeq) to an action
// that doesn't have one yet. Retries and requeues keep the original stamp —
// that is the whole point.
func (s *Snippet) stampLocked(act *Action) {
	if act.CID != "" {
		return
	}
	if s.clientID == "" {
		if s.ClientID != "" {
			s.clientID = s.ClientID
		} else {
			s.clientID = "c" + strconv.FormatInt(time.Now().UnixNano(), 36) +
				"-" + strconv.FormatInt(snippetSeq.Add(1), 10)
		}
	}
	act.CID = s.clientID
	s.cseq++
	act.CSeq = s.cseq
}

// backoffsLocked lazily builds the four retry schedules; separate
// instances, because a flapping push channel must not inflate poll retry
// delays (and vice versa). The duplex schedule paces re-upgrade attempts
// while the snippet rides its long-poll fallback.
func (s *Snippet) backoffsLocked() (poll, push, join *Backoff) {
	if s.pollBackoff == nil {
		base := s.RetryBase
		if base <= 0 {
			base = s.PollInterval
		}
		s.pollBackoff = newBackoff(base, s.RetryMax, s.RetryRand)
		s.pushBackoff = newBackoff(base, s.RetryMax, s.RetryRand)
		s.joinBackoff = newBackoff(base, s.RetryMax, s.RetryRand)
		s.duplexBackoff = newBackoff(base, s.RetryMax, s.RetryRand)
	}
	return s.pollBackoff, s.pushBackoff, s.joinBackoff
}

// LastCloseReason reports the most recent close reason received from the
// agent (CloseNone when the session never saw one).
func (s *Snippet) LastCloseReason() CloseReason {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats.LastCloseReason
}

// RejoinNeeded reports whether the agent closed this session with a
// retryable reason and the snippet is waiting to rejoin.
func (s *Snippet) RejoinNeeded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rejoinNeeded
}

// Rejoin re-registers with the agent and resets sync state so the next
// poll fetches a full snapshot — the recovery path after a retryable close
// reason (agent restart, stale-reader kick, expired identity). The
// piggyback queue survives: unacknowledged actions are re-sent under the
// same (CID, CSeq) stamps and the agent's replay filter keeps delivery
// exactly-once.
//
// A pending Rcb-Relocate address is consumed here, exactly once: the join
// goes to the new agent, and on failure the snippet falls back to the
// address it was using before (where a MOVED answer may hand it a fresh
// relocation — chained handovers converge the same way).
func (s *Snippet) Rejoin() error {
	s.mu.Lock()
	relocated := false
	if s.relocateTo != "" {
		s.prevAgentURL = s.agentURLLocked()
		s.curAgentURL = s.relocateTo
		s.relocateTo = ""
		relocated = true
	}
	s.mu.Unlock()
	if err := s.Join(); err != nil {
		if relocated {
			s.mu.Lock()
			// The relocation target refused us: fall back to the previous
			// agent rather than stranding the session on a dead address.
			s.curAgentURL = s.prevAgentURL
			s.mu.Unlock()
		}
		return err
	}
	s.mu.Lock()
	if relocated {
		s.stats.Relocates++
	}
	s.docTime = 0
	s.memo = ApplyMemo{}
	s.pushSuspended = false
	s.rejoinNeeded = false
	s.agentClosing = false
	// A fresh identity deserves a fresh upgrade attempt: after a relocation
	// the new agent has never refused this snippet a channel.
	s.duplexUntil = time.Time{}
	if s.duplexBackoff != nil {
		s.duplexBackoff.Reset()
	}
	s.stats.Rejoins++
	_, _, join := s.backoffsLocked()
	join.Reset()
	s.mu.Unlock()
	return nil
}

// actionLane is the client connection lane action pushes travel on — its
// own persistent connection, so a push never queues behind a polling
// exchange the agent has parked.
const actionLane = "action"

// actionPushTimeout bounds the /action round trip: the endpoint answers
// immediately by design, so anything slower than this is a dead or
// unreachable agent and the action must fall back to the piggyback queue.
const actionPushTimeout = 5 * time.Second

// dispatch routes one locally generated user action upstream: through the
// fire-and-forget action POST when the push channel is enabled and healthy,
// otherwise into the piggyback queue for the next polling request. A failed
// push falls back to the queue — degradation can delay an action, never
// drop it — and suspends the channel so later actions don't pay a doomed
// round trip each before a poll proves the agent reachable again.
//
// The fallback gives at-least-once delivery, the same contract the poll
// path's requeue-on-transport-error already has: if the failure was a lost
// or late ack rather than a lost request, the agent has applied the action
// and the piggybacked retry replays it. Both windows require the agent to
// go half-dead mid-exchange; a replay guard would need agent-side action
// ids and is not worth it for pointer/form traffic.
func (s *Snippet) dispatch(act Action) {
	s.mu.Lock()
	s.stampLocked(&act)
	s.mu.Unlock()
	if s.dispatchDuplex(act) {
		return
	}
	if !s.pushEligible() {
		s.QueueAction(act)
		return
	}
	if err := s.PushAction(act); err != nil {
		s.mu.Lock()
		s.pushSuspended = true
		_, push, _ := s.backoffsLocked()
		s.pushResumeAt = time.Now().Add(push.Next())
		s.stats.ActionFallbacks++
		if reason := CloseReasonOf(err); reason != CloseNone {
			s.stats.LastCloseReason = reason
		}
		s.queue = append(s.queue, act)
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	s.pushSuspended = false
	_, push, _ := s.backoffsLocked()
	push.Reset()
	s.mu.Unlock()
}

// pushEligible reports whether the next action may use the /action
// upstream. Interval-mode snippets never push (the paper's piggyback path
// is their protocol), and a non-empty piggyback queue forces queueing so
// actions are never reordered around earlier ones still waiting for a
// poll. A suspended channel re-arms on the next successful poll, or — when
// the agent stays unreachable on the poll path too — admits one probe push
// per backoff step (half-open): the probe's success re-opens the channel,
// its failure doubles the pause.
func (s *Snippet) pushEligible() bool {
	if !s.ActionPush || s.Delivery == DeliveryInterval {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) != 0 {
		return false
	}
	if !s.pushSuspended {
		return true
	}
	return !s.pushResumeAt.After(time.Now())
}

// PushAction sends one action to the agent's /action endpoint and waits for
// the acknowledgment. The exchange rides the dedicated action lane, so it
// proceeds even while this snippet's polling request is parked server-side.
// Callers wanting the automatic piggyback fallback should go through the
// action entry points (ClickElement, PointerMove, ...) instead.
func (s *Snippet) PushAction(act Action) error {
	body := httpwire.AppendForm(make([]byte, 0, 64), []httpwire.FormField{
		{Name: "actions", Value: EncodeActions([]Action{act})},
	})
	target := "/action"
	if s.auth != nil {
		target = s.auth.Sign("POST", target, body)
	}
	addr, err := s.agentAddr()
	if err != nil {
		return err
	}
	req := httpwire.NewRequest("POST", target)
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	if c := s.Browser.Jar.Header(browser.HostOf(s.agentURL() + "/")); c != "" {
		req.Header.Set("Cookie", c)
	}
	req.Body = body
	resp, err := s.Browser.Client.DoLane(addr, actionLane, req, actionPushTimeout)
	if err != nil {
		return fmt.Errorf("rcb-snippet: action push: %w", err)
	}
	if resp.StatusCode != 200 {
		if reason := ParseCloseReason(resp.Header.Get(CloseReasonHeader)); reason != CloseNone {
			return fmt.Errorf("rcb-snippet: action push: %w",
				&CloseError{Reason: reason, Status: resp.StatusCode})
		}
		return fmt.Errorf("rcb-snippet: action push returned %d", resp.StatusCode)
	}
	s.mu.Lock()
	s.stats.ActionsPushed++
	s.mu.Unlock()
	return nil
}

// ClickElement dispatches a click action for the element with the given
// data-rcb path in the participant's current document — what the rewritten
// onclick handler does in a real browser. Like every action entry point it
// goes through dispatch: pushed upstream immediately when ActionPush is
// active, piggybacked on the next poll otherwise.
func (s *Snippet) ClickElement(domID string) error {
	path, err := s.rcbPathOf(domID, "")
	if err != nil {
		return err
	}
	s.dispatch(Action{Kind: ActionClick, Target: path})
	return nil
}

// SubmitFormByID dispatches a formsubmit action carrying the given fields
// for the form with the given DOM id — what the rewritten onsubmit handler
// does.
func (s *Snippet) SubmitFormByID(domID string, fields []httpwire.FormField) error {
	path, err := s.rcbPathOf(domID, "form")
	if err != nil {
		return err
	}
	s.dispatch(Action{Kind: ActionFormSubmit, Target: path, Fields: fields})
	return nil
}

// InputField dispatches a forminput action for the field with the given DOM
// id.
func (s *Snippet) InputField(domID, value string) error {
	path, err := s.rcbPathOf(domID, "")
	if err != nil {
		return err
	}
	s.dispatch(Action{Kind: ActionFormInput, Target: path, Value: value})
	return nil
}

// PointerMove dispatches a pointer-mirroring action.
func (s *Snippet) PointerMove(x, y int) {
	s.dispatch(Action{Kind: ActionMouseMove, X: x, Y: y})
}

// rcbPathOf finds an element by DOM id and returns its data-rcb path.
func (s *Snippet) rcbPathOf(domID, wantTag string) (string, error) {
	var path string
	err := s.Browser.WithDocument(func(_ string, doc *dom.Document) error {
		el := doc.ByID(domID)
		if el == nil {
			return fmt.Errorf("rcb-snippet: no element with id %q", domID)
		}
		if wantTag != "" && el.Tag != wantTag {
			return fmt.Errorf("rcb-snippet: element %q is <%s>, want <%s>", domID, el.Tag, wantTag)
		}
		path = el.AttrOr(RCBAttr, "")
		if path == "" {
			return fmt.Errorf("rcb-snippet: element %q has no %s attribute (not rewritten?)", domID, RCBAttr)
		}
		return nil
	})
	return path, err
}

// lastParkDenied reports whether the most recent poll asked to park and was
// refused (answered instantly empty). Run falls back to interval pacing
// when it holds, so a long-poll loop cannot spin at network speed against
// an agent whose push channel has been closed but whose server still
// serves.
func (s *Snippet) lastParkDenied() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.parkDenied
}

// agentURL returns the URL of the agent currently serving this snippet:
// AgentURL until a relocation, the followed Rcb-Relocate address after.
func (s *Snippet) agentURL() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.agentURLLocked()
}

func (s *Snippet) agentURLLocked() string {
	if s.curAgentURL == "" {
		s.curAgentURL = s.AgentURL
	}
	return s.curAgentURL
}

// agentAddr resolves and returns the agent dial address, shared by the
// polling and action-push paths. The result is cached per agent URL and
// recomputed when a relocation changes it.
func (s *Snippet) agentAddr() (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	url := s.agentURLLocked()
	if url != s.pollAddrFor {
		s.pollAddr, s.pollAddrErr = browser.AddrOf(url + "/")
		s.pollAddrFor = url
	}
	return s.pollAddr, s.pollAddrErr
}

// normalizeAgentURL turns a bare Rcb-Relocate address into an agent URL.
func normalizeAgentURL(addr string) string {
	if strings.Contains(addr, "://") {
		return addr
	}
	return "http://" + addr
}

// parseRetryAfterMS parses an Rcb-Retry-After header value (milliseconds).
func parseRetryAfterMS(v string) time.Duration {
	if v == "" {
		return 0
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil || ms <= 0 {
		return 0
	}
	return time.Duration(ms) * time.Millisecond
}

// longPollWait resolves the hang to request per poll: 0 in interval mode.
// A duplex snippet asks for the hang too — its polls are the long-poll
// fallback rung of the degradation ladder.
func (s *Snippet) longPollWait() time.Duration {
	if s.Delivery == DeliveryInterval {
		return 0
	}
	if s.LongPollWait > 0 {
		return s.LongPollWait
	}
	return DefaultLongPollWait
}

// PollOnce sends one Ajax polling request and processes the response per
// Figure 5. It reports whether new document content was applied. In
// long-poll mode the request asks the agent to park it (wait field), so the
// call may block for up to LongPollWait before returning an empty result;
// the connection carries a read deadline slightly past that hang so a dead
// agent cannot park the snippet forever.
func (s *Snippet) PollOnce() (updated bool, err error) {
	s.mu.Lock()
	ts := s.docTime
	actions := s.queue
	s.queue = nil
	s.stats.Polls++
	s.stats.ActionsSent += int64(len(actions))
	s.parkDenied = false
	s.agentClosing = false
	s.retryAfter = 0
	s.mu.Unlock()

	fields := []httpwire.FormField{{Name: "ts", Value: strconv.FormatInt(ts, 10)}}
	if !s.DisableDelta && ts > 0 {
		// Advertise delta support once a baseline exists; the agent still
		// decides per response whether a delta is available and worthwhile.
		fields = append(fields, httpwire.FormField{Name: "delta", Value: "1"})
	}
	if len(actions) > 0 {
		fields = append(fields, httpwire.FormField{Name: "actions", Value: EncodeActions(actions)})
	}
	wait := s.longPollWait()
	if wait > 0 && len(actions) > 0 {
		// An action-carrying request never parks: the agent merges actions
		// before deciding to park, so a parked exchange that later fails
		// (server shutdown, dropped link, tripped read deadline) would
		// requeue and replay actions the host already applied. Asking for
		// an immediate answer keeps the merged-but-unanswered window at
		// round-trip scale, as in interval mode; the next poll, action-
		// free, parks as usual.
		wait = 0
	}
	var readTimeout time.Duration
	if wait > 0 {
		fields = append(fields, httpwire.FormField{Name: "wait", Value: strconv.FormatInt(wait.Milliseconds(), 10)})
		readTimeout = wait + longPollReadSlack
	}
	body := httpwire.AppendForm(make([]byte, 0, 64), fields)
	target := "/poll"
	if s.auth != nil {
		target = s.auth.Sign("POST", target, body)
	}
	addr, err := s.agentAddr()
	if err != nil {
		return false, err
	}
	req := httpwire.NewRequest("POST", target)
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	if c := s.Browser.Jar.Header(browser.HostOf(s.agentURL() + "/")); c != "" {
		req.Header.Set("Cookie", c)
	}
	req.Body = body
	pollStart := time.Now()
	resp, err := s.Browser.Client.DoTimeout(addr, req, readTimeout)
	if err != nil {
		// Failed polls requeue their actions so interaction is not lost on
		// a transient drop. Replays of actions the agent did merge before
		// the failure are absorbed by its (CID, CSeq) filter.
		s.mu.Lock()
		s.queue = append(actions, s.queue...)
		s.stats.PollFailures++
		s.mu.Unlock()
		return false, fmt.Errorf("rcb-snippet: poll: %w", err)
	}
	if resp.StatusCode != 200 {
		s.mu.Lock()
		s.queue = append(actions, s.queue...)
		s.stats.PollFailures++
		if ra := parseRetryAfterMS(resp.Header.Get(RetryAfterHeader)); ra > 0 {
			// A server-assigned interval on a terminal answer is the floor
			// for the retry delay, exactly as on shed responses.
			s.retryAfter = ra
		}
		reason := ParseCloseReason(resp.Header.Get(CloseReasonHeader))
		if reason != CloseNone {
			s.stats.LastCloseReason = reason
			if reason.Retryable() {
				s.rejoinNeeded = true
			}
			if reason == CloseMoved {
				if addr := resp.Header.Get(RelocateHeader); addr != "" {
					s.relocateTo = normalizeAgentURL(addr)
				}
			}
		}
		s.mu.Unlock()
		if reason != CloseNone {
			return false, fmt.Errorf("rcb-snippet: poll: %w",
				&CloseError{Reason: reason, Status: resp.StatusCode})
		}
		return false, fmt.Errorf("rcb-snippet: poll returned %d", resp.StatusCode)
	}
	// A completed poll proves the agent reachable: re-arm the action push
	// channel if a failed push had suspended it.
	s.mu.Lock()
	s.pushSuspended = false
	if s.pushBackoff != nil {
		s.pushBackoff.Reset()
	}
	s.mu.Unlock()
	// "If RCB-Agent indicates no new content with an empty response
	// content, Ajax-Snippet simply ... send[s] a new polling request after a
	// specified time interval."
	if len(resp.Body) == 0 {
		// An empty answer at round-trip speed to a request that asked to
		// park means the agent refused to park it (hub closed): a genuine
		// hang that timed out empty arrives at ~the server's cap, and a
		// real wake always carries content or actions. An agent whose cap
		// is under the threshold reads as refusing too — the resulting
		// interval pacing is the right degradation there as well.
		denied := wait > 0 && time.Since(pollStart) < parkDeniedThreshold
		closing := ParseCloseReason(resp.Header.Get(CloseReasonHeader)) == CloseAgentClosing
		retryAfter := parseRetryAfterMS(resp.Header.Get(RetryAfterHeader))
		s.mu.Lock()
		s.stats.EmptyPolls++
		// An explicit AgentClosing marker is authoritative: the push
		// channel is gone however fast the answer arrived.
		s.parkDenied = denied || (wait > 0 && closing)
		s.agentClosing = closing
		if closing {
			s.stats.LastCloseReason = CloseAgentClosing
		}
		s.retryAfter = retryAfter
		s.mu.Unlock()
		return false, nil
	}
	if MessageIsDelta(resp.Body) {
		return s.handleDeltaResponse(resp.Body, ts)
	}
	content, err := Unmarshal(resp.Body)
	if err != nil {
		return false, fmt.Errorf("rcb-snippet: bad response content: %w", err)
	}
	for _, act := range content.UserActions {
		if s.OnUserAction != nil {
			s.OnUserAction(act)
		}
	}
	if !content.HasDocument {
		return false, nil
	}
	if err := s.ApplyContent(content); err != nil {
		return false, err
	}
	s.mu.Lock()
	s.docTime = content.DocTime
	s.stats.ContentPolls++
	s.mu.Unlock()
	return true, nil
}

// handleDeltaResponse applies an incremental deltaContent answer: mirror
// actions are dispatched as usual, then the patch scripts are applied in
// place — no payload re-parse. The base check guards the multi-version
// ring's contract: whichever retained build the agent diffed against must
// be exactly the docTime this snippet acknowledged. Any failure (codec
// error, base mismatch, patch that does not resolve) abandons the delta and
// resets the acknowledged timestamp to zero, so the very next poll fetches
// a full snapshot and rebuilds from scratch: the participant can render
// stale for one round trip but can never stay diverged.
func (s *Snippet) handleDeltaResponse(body []byte, ts int64) (bool, error) {
	d, err := UnmarshalDelta(body)
	if err != nil {
		s.desync()
		return false, fmt.Errorf("rcb-snippet: bad delta content: %w (resyncing)", err)
	}
	for _, act := range d.UserActions {
		if s.OnUserAction != nil {
			s.OnUserAction(act)
		}
	}
	if d.BaseDocTime != ts {
		s.desync()
		return false, fmt.Errorf("rcb-snippet: delta base %d does not match acknowledged %d (resyncing)", d.BaseDocTime, ts)
	}
	start := time.Now()
	err = s.Browser.ApplyMutation(func(doc *dom.Document) error {
		return s.memo.ApplyDelta(doc, d)
	})
	apply := time.Since(start)
	if err != nil {
		s.desync()
		s.mu.Lock()
		s.stats.DeltaFailures++
		s.mu.Unlock()
		return false, fmt.Errorf("rcb-snippet: apply delta: %w (resyncing)", err)
	}
	s.mu.Lock()
	s.docTime = d.DocTime
	s.stats.LastApplyTime = apply
	s.stats.ContentPolls++
	s.stats.DeltaPolls++
	s.mu.Unlock()
	return true, s.fetchContentObjects()
}

// desync forgets the acknowledged document timestamp: the next poll reports
// ts=0, which the agent always answers with a full snapshot.
func (s *Snippet) desync() {
	s.mu.Lock()
	s.docTime = 0
	s.memo = ApplyMemo{}
	s.mu.Unlock()
}

// ApplyContent installs new document content into the participant browser,
// following the four-step procedure of Figure 5:
//
//  1. clean up the head element, keeping only Ajax-Snippet itself;
//  2. set the head element children from the new content;
//  3. clean up top-level elements the new content obsoletes;
//  4. set the remaining top-level elements from the new content.
//
// Afterwards the participant browser downloads the supplementary objects
// referenced by the new content (unless FetchObjects is off).
func (s *Snippet) ApplyContent(content *NewContent) error {
	start := time.Now()
	err := s.Browser.ApplyMutation(func(doc *dom.Document) error {
		return s.memo.Apply(doc, content)
	})
	apply := time.Since(start)
	if err != nil {
		return fmt.Errorf("rcb-snippet: apply content: %w", err)
	}
	s.mu.Lock()
	s.stats.LastApplyTime = apply
	s.mu.Unlock()
	return s.fetchContentObjects()
}

// fetchContentObjects downloads the supplementary objects the current
// document references — the post-apply step shared by the full and delta
// content paths. A no-op when FetchObjects is off.
func (s *Snippet) fetchContentObjects() error {
	if !s.FetchObjects {
		return nil
	}
	var fetches []browser.ObjectFetch
	err := s.Browser.WithDocument(func(pageURL string, doc *dom.Document) error {
		fetches = s.Browser.RenderObjects(doc, pageURL)
		return nil
	})
	if err != nil {
		return err
	}
	s.mu.Lock()
	agentHost := hostOf(s.agentURLLocked())
	s.lastObjects = fetches
	s.stats.ObjectFetches += int64(len(fetches))
	for _, f := range fetches {
		if hostOf(f.URL) == agentHost {
			s.stats.ObjectsFromAgent++
		}
	}
	s.mu.Unlock()
	return nil
}

func hostOf(u string) string { return browser.HostOf(u) }

// ApplyContentToDocument is the pure DOM transformation of Figure 5,
// exported for direct testing and for the experiment harness's M6
// measurement. It always applies in full; the snippet's own polling loop
// goes through ApplyMemo.Apply, which skips re-parsing unchanged payloads.
func ApplyContentToDocument(doc *dom.Document, content *NewContent) error {
	return applyContent(doc, content, nil)
}

// ApplyMemo remembers the payloads the last Apply installed into a
// document. The agent resends the full content on every change, so in a
// typical session most payloads are byte-identical between polls (only an
// attribute or one region changed); comparing the payload strings is a
// memcmp, while re-installing one means a full HTML re-parse. The memo is
// only valid while its document is mutated exclusively through it — the
// snippet's situation — and invalidates itself when the document changes
// identity (navigation).
type ApplyMemo struct {
	doc *dom.Document
	// headOK distinguishes "never applied" from "applied an empty head":
	// the first pass must always run the head cleanup.
	headOK   bool
	head     []HeadChild
	body     appliedTop
	frameset appliedTop
	noframes appliedTop
}

// appliedTop records the last applied innerHTML payload of one top-level
// element; ok distinguishes "applied empty" from "never applied".
type appliedTop struct {
	inner string
	ok    bool
}

// Apply installs content into doc, reusing the existing DOM wherever the
// new payload is identical to what this memo previously applied.
func (m *ApplyMemo) Apply(doc *dom.Document, content *NewContent) error {
	if m.doc != doc {
		*m = ApplyMemo{doc: doc}
	}
	return applyContent(doc, content, m)
}

func applyContent(doc *dom.Document, content *NewContent, memo *ApplyMemo) error {
	root := doc.Root
	head := doc.Head()

	// Steps 1 and 2: head cleanup and rebuild — skipped entirely when the
	// new head children match what this memo last installed.
	if memo == nil || !memo.headOK || !headChildrenEqual(memo.head, content.Head) {
		rebuildHead(head, content.Head)
		if memo != nil {
			memo.head = append(memo.head[:0], content.Head...)
			memo.headOK = true
		}
	}

	// Step 3: clean up obsolete top-level elements. "If the current
	// document uses a body top-level element while the new content contains
	// a new webpage with a frameset top-level element, Ajax-Snippet will
	// remove the body node."
	for _, c := range root.ChildElements() {
		switch c.Tag {
		case "head":
			continue
		case "body":
			if content.Body == nil {
				root.RemoveChild(c)
			}
		case "frameset":
			if content.FrameSet == nil {
				root.RemoveChild(c)
			}
		case "noframes":
			if content.NoFrames == nil {
				root.RemoveChild(c)
			}
		default:
			root.RemoveChild(c)
		}
	}

	// Step 4: set the remaining top elements in content order. Attributes
	// are always refreshed (cheap); the innerHTML re-parse is skipped when
	// the payload is unchanged since the memo's last pass.
	setTop := func(tag string, te *TopElement, last *appliedTop) {
		if te == nil {
			if last != nil {
				*last = appliedTop{}
			}
			return
		}
		el := root.FirstChildElement(tag)
		if el == nil {
			el = dom.NewElement(tag)
			root.AppendChild(el)
			if last != nil {
				*last = appliedTop{}
			}
		}
		el.Attrs = append([]dom.Attr(nil), te.Attrs...)
		if last != nil && last.ok && last.inner == te.Inner {
			return
		}
		dom.SetInnerHTML(el, te.Inner)
		if last != nil {
			*last = appliedTop{inner: te.Inner, ok: true}
		}
	}
	if memo != nil {
		setTop("body", content.Body, &memo.body)
		setTop("frameset", content.FrameSet, &memo.frameset)
		setTop("noframes", content.NoFrames, &memo.noframes)
	} else {
		setTop("body", content.Body, nil)
		setTop("frameset", content.FrameSet, nil)
		setTop("noframes", content.NoFrames, nil)
	}
	return nil
}

// rebuildHead runs Figure 5 steps 1 and 2 against a head element: clean up
// keeping Ajax-Snippet itself (the snippet "always keeps itself as a
// <script> child element within the head element of any current document"),
// then append the new head children. Shared by the full and delta apply
// paths.
func rebuildHead(head *dom.Node, children []HeadChild) {
	var snippetEl *dom.Node
	for _, c := range head.ChildElements() {
		if c.Tag == "script" && c.AttrOr("id", "") == "rcb-ajax-snippet" {
			snippetEl = c
			break
		}
	}
	head.RemoveAllChildren()
	if snippetEl != nil {
		head.AppendChild(snippetEl)
	}
	for _, hc := range children {
		el := dom.NewElement(hc.Tag)
		el.Attrs = append([]dom.Attr(nil), hc.Attrs...)
		if hc.Inner != "" {
			dom.SetInnerHTML(el, hc.Inner)
		}
		head.AppendChild(el)
	}
}

// ApplyDelta applies an incremental deltaContent message to the document
// this memo last synchronized: patch scripts run in place against the live
// region elements, with no payload re-parse. Patched regions are forgotten
// by the memo (their serialized form is unknown after an in-place edit), so
// a later full snapshot re-parses them; untouched regions keep their memo
// entries and still skip byte-identical re-installs. Any error leaves the
// caller responsible for a full resync.
func (m *ApplyMemo) ApplyDelta(doc *dom.Document, d *DeltaContent) error {
	if m.doc != doc {
		return fmt.Errorf("delta received without an applied baseline")
	}
	if d.HasHead {
		rebuildHead(doc.Head(), d.Head)
		m.head = append(m.head[:0], d.Head...)
		m.headOK = true
	}
	root := doc.Root
	for _, region := range []struct {
		tag     string
		patches []dom.Patch
		last    *appliedTop
	}{
		{"body", d.Body, &m.body},
		{"frameset", d.FrameSet, &m.frameset},
		{"noframes", d.NoFrames, &m.noframes},
	} {
		if len(region.patches) == 0 {
			continue
		}
		el := root.FirstChildElement(region.tag)
		if el == nil {
			return fmt.Errorf("delta patches <%s> but the document has none", region.tag)
		}
		// Invalidate before patching: a partial apply must never let a later
		// identical-payload check skip the repair re-parse.
		*region.last = appliedTop{}
		if err := dom.Apply(el, region.patches); err != nil {
			return err
		}
	}
	return nil
}

// headChildrenEqual reports whether two head-child lists carry identical
// payloads. dom.Attr is a comparable struct, so this is pure memcmp work.
func headChildrenEqual(a, b []HeadChild) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Tag != b[i].Tag || a[i].Inner != b[i].Inner || !attrsEqual(a[i].Attrs, b[i].Attrs) {
			return false
		}
	}
	return true
}

func attrsEqual(a, b []dom.Attr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Run drives the polling loop until stop is closed (paper: "The first Ajax
// request is sent after the initial HTML page is loaded ... each following
// Ajax request is triggered after the response to the previous one is
// received"). In interval mode (default) the loop sleeps PollInterval
// between polls; in long-poll mode it re-issues the next request
// immediately — the agent provides the pacing by parking the request.
//
// Failure handling is the unified backoff ladder: consecutive poll errors
// (and AgentClosing answers) double the retry delay from RetryBase up to
// RetryMax with jitter, resetting the moment a poll succeeds; a
// server-assigned Rcb-Retry-After is honored as the floor. When the agent
// closes the session with a retryable reason (restart, stale-reader kick,
// shed OVERCOMMITTED), Run rejoins and resyncs automatically — a
// non-retryable close (LEAVE, KICKED) ends the loop, the one error that
// genuinely means the session is over. Other errors are delivered to errf
// when non-nil and the loop continues — a dropped poll must not end the
// session (its piggybacked actions are requeued by PollOnce).
func (s *Snippet) Run(stop <-chan struct{}, errf func(error)) {
	interval := s.PollInterval
	if interval <= 0 {
		interval = time.Second
	}
	timer := time.NewTimer(0) // first poll fires immediately after page load
	defer timer.Stop()
	for {
		select {
		case <-stop:
			return
		case <-timer.C:
		}
		if !s.DisableRejoin && s.RejoinNeeded() {
			if err := s.Rejoin(); err != nil {
				if errf != nil {
					errf(err)
				}
				if r := CloseReasonOf(err); r != CloseNone && !r.Retryable() {
					return // the agent refused re-admission for good
				}
				s.mu.Lock()
				_, _, join := s.backoffsLocked()
				d := join.Next()
				if s.retryAfter > d {
					d = s.retryAfter // server-assigned pacing floors the rejoin delay too
				}
				s.mu.Unlock()
				resetTimer(timer, d)
				continue
			}
		}
		if s.duplexEligible() {
			err := s.DuplexOnce(stop)
			if err != nil && errf != nil {
				errf(err)
			}
			if r := CloseReasonOf(err); r != CloseNone && !r.Retryable() {
				return // deliberate removal over the channel: session over
			}
			select {
			case <-stop:
				return
			default:
			}
			// The channel ended (refused, lost, or closed with a reason);
			// the next iteration rejoins if needed, or rides the long-poll
			// fallback until duplexUntil re-admits an upgrade attempt.
			resetTimer(timer, s.duplexDelay())
			continue
		}
		_, err := s.PollOnce()
		if err != nil && errf != nil {
			errf(err)
		}
		if r := CloseReasonOf(err); r != CloseNone && !r.Retryable() {
			return // deliberate removal (LEAVE/KICKED): the session is over
		}
		resetTimer(timer, s.runDelay(err, interval))
	}
}

// runDelay picks the pause before the next polling request: zero after a
// healthy long-poll completion (the agent paces by parking), the jittered
// poll backoff after a failure or an AgentClosing answer, the server's
// Rcb-Retry-After when it exceeds the local choice, and PollInterval for
// everything else (interval mode, park denials).
func (s *Snippet) runDelay(err error, interval time.Duration) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	poll, _, _ := s.backoffsLocked()
	var d time.Duration
	switch {
	case err != nil, s.agentClosing:
		d = poll.Next()
	default:
		poll.Reset()
		if s.Delivery != DeliveryInterval && !s.parkDenied {
			d = 0 // hanging GET completed; re-park immediately
		} else {
			d = interval
		}
	}
	if s.retryAfter > d {
		d = s.retryAfter // the agent asked for explicit pacing (shed ladder)
	}
	return d
}

// resetTimer re-arms a loop timer whose previous fire was consumed.
// Stop-and-drain before Reset: a poll can take arbitrarily long (a parked
// long-poll, a slow WAN transfer), and Reset on a timer that might have a
// pending fire is how loops double-poll or strand a timer goroutine. Stop
// plus a non-blocking drain makes the Reset safe on every path.
func resetTimer(timer *time.Timer, d time.Duration) {
	if !timer.Stop() {
		select {
		case <-timer.C:
		default:
		}
	}
	timer.Reset(d)
}
