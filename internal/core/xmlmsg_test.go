package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"rcb/internal/dom"
	"rcb/internal/httpwire"
)

func sampleContent() *NewContent {
	return &NewContent{
		DocTime:     1234567890123,
		HasDocument: true,
		Head: []HeadChild{
			{Tag: "title", Inner: "My Page"},
			{Tag: "script", Attrs: []dom.Attr{{Name: "id", Value: "rcb-ajax-snippet"}}, Inner: "/*js*/"},
			{Tag: "style", Inner: "a > b { color: red } /* & < > */"},
		},
		Body: &TopElement{
			Attrs: []dom.Attr{{Name: "class", Value: "home"}, {Name: "onload", Value: `init("x")`}},
			Inner: `<div id="c"><a href="/x" onclick="return __rcb.click(this);">link</a>5 < 6 &amp; 7</div>`,
		},
		UserActions: []Action{{Kind: ActionMouseMove, X: 10, Y: 20, From: "host"}},
	}
}

func TestMarshalShapeMatchesFigure4(t *testing.T) {
	out := string(sampleContent().Marshal())
	for _, want := range []string{
		"<?xml version='1.0' encoding='utf-8'?>",
		"<newContent>", "</newContent>",
		"<docTime>1234567890123</docTime>",
		"<docContent>", "</docContent>",
		"<docHead>", "<hChild1><![CDATA[", "<hChild2><![CDATA[", "<hChild3><![CDATA[",
		"<docBody><![CDATA[",
		"<userActions><![CDATA[",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("marshal output missing %q:\n%s", want, out)
		}
	}
	// Raw page bytes must never appear unescaped inside the XML.
	if strings.Contains(out, "<div") || strings.Contains(out, "&amp;") {
		t.Error("payload leaked into XML unescaped")
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	orig := sampleContent()
	got, err := Unmarshal(orig.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.DocTime != orig.DocTime || !got.HasDocument {
		t.Fatalf("header fields: %+v", got)
	}
	if len(got.Head) != len(orig.Head) {
		t.Fatalf("head children: %d vs %d", len(got.Head), len(orig.Head))
	}
	for i := range orig.Head {
		if got.Head[i].Tag != orig.Head[i].Tag || got.Head[i].Inner != orig.Head[i].Inner {
			t.Errorf("head[%d] = %+v, want %+v", i, got.Head[i], orig.Head[i])
		}
	}
	if got.Body == nil || got.Body.Inner != orig.Body.Inner {
		t.Fatalf("body inner mismatch: %+v", got.Body)
	}
	if len(got.Body.Attrs) != 2 || got.Body.Attrs[1].Value != `init("x")` {
		t.Fatalf("body attrs: %+v", got.Body.Attrs)
	}
	if len(got.UserActions) != 1 || got.UserActions[0].Kind != ActionMouseMove {
		t.Fatalf("user actions: %+v", got.UserActions)
	}
}

func TestMarshalFramesetPage(t *testing.T) {
	c := &NewContent{
		DocTime:     5,
		HasDocument: true,
		Head:        []HeadChild{{Tag: "title", Inner: "frames"}},
		FrameSet:    &TopElement{Attrs: []dom.Attr{{Name: "cols", Value: "50%,50%"}}, Inner: `<frame src="http://a/f1">`},
		NoFrames:    &TopElement{Inner: "sorry"},
	}
	got, err := Unmarshal(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Body != nil {
		t.Error("frameset page must have no body")
	}
	if got.FrameSet == nil || got.NoFrames == nil {
		t.Fatal("frameset/noframes lost")
	}
	if got.FrameSet.Attrs[0].Value != "50%,50%" {
		t.Errorf("frameset attrs: %+v", got.FrameSet.Attrs)
	}
}

func TestActionOnlyMessage(t *testing.T) {
	c := &NewContent{DocTime: 9, UserActions: []Action{{Kind: ActionScroll, Value: "120"}}}
	out := c.Marshal()
	if strings.Contains(string(out), "<docContent>") {
		t.Fatal("action-only message must not carry docContent")
	}
	got, err := Unmarshal(out)
	if err != nil {
		t.Fatal(err)
	}
	if got.HasDocument {
		t.Error("HasDocument must be false")
	}
	if len(got.UserActions) != 1 || got.UserActions[0].Value != "120" {
		t.Errorf("actions: %+v", got.UserActions)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	for _, in := range []string{"", "not xml", "<newContent></newContent>", "<docTime>abc</docTime>"} {
		if _, err := Unmarshal([]byte(in)); err == nil {
			t.Errorf("Unmarshal(%q) succeeded, want error", in)
		}
	}
}

func TestRoundTripPropertyRandomDocuments(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := &NewContent{DocTime: r.Int63(), HasDocument: true}
		nHead := r.Intn(4)
		for i := 0; i < nHead; i++ {
			c.Head = append(c.Head, HeadChild{
				Tag:   []string{"title", "style", "script", "meta"}[r.Intn(4)],
				Attrs: []dom.Attr{{Name: "data-x", Value: randASCII(r)}},
				Inner: randASCII(r),
			})
		}
		c.Body = &TopElement{
			Attrs: []dom.Attr{{Name: "class", Value: randASCII(r)}},
			Inner: `<p attr="` + randASCII(r) + `">` + randASCII(r) + `</p>`,
		}
		got, err := Unmarshal(c.Marshal())
		if err != nil {
			return false
		}
		if got.DocTime != c.DocTime || len(got.Head) != len(c.Head) {
			return false
		}
		for i := range c.Head {
			if got.Head[i].Tag != c.Head[i].Tag || got.Head[i].Inner != c.Head[i].Inner {
				return false
			}
		}
		return got.Body != nil && got.Body.Inner == c.Body.Inner &&
			got.Body.Attrs[0].Value == c.Body.Attrs[0].Value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func randASCII(r *rand.Rand) string {
	n := r.Intn(30)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(32 + r.Intn(95)) // printable ASCII incl. <>&"]]
	}
	return string(b)
}

func TestContentFromDocument(t *testing.T) {
	doc := dom.Parse(`<html><head><title>T</title><meta charset="utf-8"></head>` +
		`<body class="c"><div>hello</div></body></html>`)
	c := ContentFromDocument(doc.Root, 77)
	if c.DocTime != 77 || !c.HasDocument {
		t.Fatal("header wrong")
	}
	if len(c.Head) != 2 || c.Head[0].Tag != "title" || c.Head[0].Inner != "T" {
		t.Fatalf("head = %+v", c.Head)
	}
	if c.Body == nil || c.Body.Inner != "<div>hello</div>" {
		t.Fatalf("body = %+v", c.Body)
	}
	if c.Body.Attrs[0] != (dom.Attr{Name: "class", Value: "c"}) {
		t.Fatalf("body attrs = %+v", c.Body.Attrs)
	}
	if c.FrameSet != nil {
		t.Error("unexpected frameset")
	}
}

func TestEncodeDecodeActions(t *testing.T) {
	in := []Action{
		{Kind: ActionClick, Target: "1.2.3", From: "p1", Seq: 7},
		{Kind: ActionFormSubmit, Target: "1.4", Fields: []httpwire.FormField{{Name: "q", Value: "x&y=z"}}, From: "p2"},
	}
	out, err := DecodeActions(EncodeActions(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Target != "1.2.3" || out[0].Seq != 7 {
		t.Fatalf("round trip: %+v", out)
	}
	if _, err := DecodeActions("{broken"); err == nil {
		t.Error("garbage must not decode")
	}
	if got, err := DecodeActions(""); err != nil || got != nil {
		t.Error("empty payload must decode to nil")
	}
}
