package core

// Durability chaos families — the kill-restore and live-handover siblings of
// TestChaosFaultInjection. Each seeded scenario drives 3–8 live Run loops
// over a shaped link (lossy, jittery, WAN, mobile), interleaves host
// mutations and participant actions with the durability event under test —
// a process death restored from an ExportState checkpoint, or a live
// HandoverInit → StateSync → Complete migration to a second agent — and
// asserts the same three invariants as the fault-injection harness:
// byte-identical convergence, exactly-once actions across the transfer, and
// close-reason discipline. Handover scenarios race the handshake against
// parked long-polls and in-flight action pushes; some additionally cut the
// participants off from the old agent with a one-directional netsim
// Partition for the duration of the transfer.

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"rcb/internal/browser"
	"rcb/internal/dom"
	"rcb/internal/httpwire"
	"rcb/internal/netsim"
)

// durabilityScenarios is the per-family seeded-scenario count; -short keeps
// a smoke slice for the CI chaos stage.
const durabilityScenarios = 16

func TestChaosKillRestore(t *testing.T) {
	runDurabilityFamily(t, 0x0DEAD, runKillRestoreScenario)
}

func TestChaosLiveHandover(t *testing.T) {
	runDurabilityFamily(t, 0x4073D, runLiveHandoverScenario)
}

func runDurabilityFamily(t *testing.T, salt int64, scenario func(*testing.T, int64)) {
	scenarios := durabilityScenarios
	if testing.Short() {
		scenarios = 8
	}
	perShard := scenarios / chaosShards
	if perShard == 0 {
		perShard = 1
	}
	for shard := 0; shard < chaosShards && shard*perShard < scenarios; shard++ {
		shard := shard
		t.Run(fmt.Sprintf("shard%d", shard), func(t *testing.T) {
			t.Parallel()
			for i := 0; i < perShard && shard*perShard+i < scenarios; i++ {
				scenario(t, salt+int64(shard*perShard+i))
				if t.Failed() {
					return
				}
			}
		})
	}
}

// durabilityWorld is the shared scenario scaffolding: live Run loops over a
// shaped link, a fault ledger, an exactly-once policy, and swap-aware
// current-agent tracking so the durability event can replace the serving
// process mid-traffic.
type durabilityWorld struct {
	w      *world
	rng    *rand.Rand
	seed   int64
	policy *countingPolicy
	fail   func(string, ...any)

	// The serving process; durability events replace all three.
	curAgent  *Agent
	curHost   *browser.Browser
	curServer *httpwire.Server
	curAddr   string
	hostName  string // network host the current agent's process runs on

	snips []*Snippet
	stop  chan struct{}
	wg    sync.WaitGroup

	ledgerMu   sync.Mutex
	reasons    map[CloseReason]int
	violations []string

	fired   []string
	token   int
	hostGen int
}

func newDurabilityWorld(t *testing.T, seed int64) *durabilityWorld {
	t.Helper()
	rng := rand.New(rand.NewSource(seed*0x9E3779B9 + 0xD07A))
	d := &durabilityWorld{
		rng:     rng,
		seed:    seed,
		policy:  &countingPolicy{seen: make(map[string]int)},
		reasons: make(map[CloseReason]int),
		stop:    make(chan struct{}),
	}
	d.fail = func(format string, args ...any) {
		t.Helper()
		t.Fatalf("durability seed %d: %s", seed, fmt.Sprintf(format, args...))
	}
	d.w = newWorld(t, func(a *Agent) {
		a.Policy = d.policy
		a.MaxPollWait = 400 * time.Millisecond
	})
	d.w.corpus.Network.SetSeed(seed)
	d.curAgent, d.curHost, d.curServer = d.w.agent, d.w.host, d.w.server
	d.curAddr, d.hostName = agentAddr, "host.lan"

	// Agent-bound traffic rides the scenario's link; origin-site traffic
	// stays unshaped. Every agent in the scenario listens on a ":3000"
	// address, so handover targets are shaped too.
	link := chaosLinks[rng.Intn(len(chaosLinks))]
	d.w.corpus.Network.SetLinkPolicy(func(from, to string) netsim.Link {
		if !strings.HasSuffix(to, ":3000") {
			return netsim.Instant
		}
		return link
	})
	d.w.hostNavigate(t, "http://"+convSites[rng.Intn(len(convSites))].Host()+"/")

	recordErr := func(who string, err error) {
		var ce *CloseError
		if errors.As(err, &ce) {
			d.ledgerMu.Lock()
			d.reasons[ce.Reason]++
			if ce.Reason == CloseNone {
				d.violations = append(d.violations, who+": close error without reason: "+err.Error())
			}
			d.ledgerMu.Unlock()
			return
		}
		if msg := err.Error(); strings.Contains(msg, "returned 4") || strings.Contains(msg, "returned 5") {
			d.ledgerMu.Lock()
			d.violations = append(d.violations, who+": terminal response without close reason: "+msg)
			d.ledgerMu.Unlock()
		}
	}

	n := 3 + rng.Intn(6)
	d.snips = make([]*Snippet, n)
	for i := 0; i < n; i++ {
		loc := fmt.Sprintf("dur%dp%d.lan", seed, i)
		pb := browser.New(loc, d.w.corpus.Network.Dialer(loc))
		t.Cleanup(pb.Close)
		pb.Client.ReadTimeout = 5 * time.Second
		s := NewSnippet(pb, "http://"+agentAddr, "")
		s.FetchObjects = false
		s.PollInterval = 20 * time.Millisecond
		s.RetryBase = 10 * time.Millisecond
		s.RetryMax = 250 * time.Millisecond
		jitterRng := rand.New(rand.NewSource(seed*131 + int64(i)))
		s.RetryRand = jitterRng.Float64
		if rng.Intn(3) != 0 {
			s.Delivery = DeliveryLongPoll
			s.LongPollWait = 150 * time.Millisecond
			s.ActionPush = rng.Intn(2) == 0
		}
		s.DisableDelta = rng.Intn(3) == 0
		var jerr error
		for attempt := 0; attempt < 25; attempt++ {
			if jerr = s.Join(); jerr == nil {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if jerr != nil {
			d.fail("participant %d never joined: %v", i, jerr)
		}
		d.snips[i] = s
		who := fmt.Sprintf("p%d", i)
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			s.Run(d.stop, func(err error) { recordErr(who, err) })
		}()
	}
	return d
}

func (d *durabilityWorld) mutate() {
	d.hostGen++
	gen := d.hostGen
	err := d.curHost.ApplyMutation(func(doc *dom.Document) error {
		el := dom.NewElement("div")
		el.SetAttr("id", fmt.Sprintf("dur-g%d", gen))
		el.AppendChild(dom.NewText(fmt.Sprintf("generation %d", gen)))
		doc.Body().AppendChild(el)
		return nil
	})
	if err != nil {
		d.fail("host mutation: %v", err)
	}
}

func (d *durabilityWorld) fireAction() {
	d.token++
	i := d.rng.Intn(len(d.snips))
	d.snips[i].dispatch(Action{Kind: ActionMouseMove, X: d.token, Y: i})
	d.fired = append(d.fired, fmt.Sprintf("mm%d", d.token))
}

// finish waits for convergence on the current agent and asserts the three
// invariants. extraChecks runs after the Run loops have quiesced.
func (d *durabilityWorld) finish(t *testing.T, extraChecks func()) {
	t.Helper()
	d.mutate()
	marker := fmt.Sprintf(`id="dur-g%d"`, d.hostGen)

	bodyHas := func(s *Snippet, sub string) bool {
		var ok bool
		err := s.Browser.WithDocument(func(_ string, doc *dom.Document) error {
			ok = doc.Body() != nil && strings.Contains(dom.InnerHTML(doc.Body()), sub)
			return nil
		})
		return err == nil && ok
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		done := true
		for _, s := range d.snips {
			if !bodyHas(s, marker) {
				done = false
				break
			}
		}
		if done {
			for _, key := range d.fired {
				if d.policy.count(key) == 0 {
					done = false
					break
				}
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			var lag []string
			for i, s := range d.snips {
				if !bodyHas(s, marker) {
					st := s.Stats()
					lag = append(lag, fmt.Sprintf("p%d(delivery=%d push=%v rejoins=%d relocates=%d pollFailures=%d last=%s at=%s)",
						i, s.Delivery, s.ActionPush, st.Rejoins, st.Relocates, st.PollFailures, st.LastCloseReason, s.CurrentAgentURL()))
				}
			}
			for _, key := range d.fired {
				if d.policy.count(key) == 0 {
					lag = append(lag, "lost action "+key)
				}
			}
			d.fail("no convergence after the durability event: %s", strings.Join(lag, ", "))
		}
		time.Sleep(5 * time.Millisecond)
	}

	close(d.stop)
	d.wg.Wait()

	// Invariant 1 — convergence: byte-identical to a fresh reference join
	// at the current agent's address.
	refLoc := fmt.Sprintf("dur%dref.lan", d.seed)
	rb := browser.New(refLoc, d.w.corpus.Network.Dialer(refLoc))
	t.Cleanup(rb.Close)
	rb.Client.ReadTimeout = 5 * time.Second
	ref := NewSnippet(rb, "http://"+d.curAddr, "")
	ref.FetchObjects = false
	var refErr error
	for attempt := 0; attempt < 25; attempt++ {
		if refErr = ref.Join(); refErr == nil {
			if _, refErr = ref.PollOnce(); refErr == nil {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if refErr != nil {
		d.fail("reference replica never synced: %v", refErr)
	}
	want := docHTML(t, rb)
	for i, s := range d.snips {
		if got := docHTML(t, s.Browser); got != want {
			d.fail("participant %d diverged:\n got: %s\nwant: %s", i, got, want)
		}
	}

	// Invariant 2 — exactly-once across the transfer.
	for _, key := range d.fired {
		if got := d.policy.count(key); got != 1 {
			d.fail("action %s processed %d times, want exactly 1", key, got)
		}
	}

	// Invariant 3 — close-reason discipline.
	d.ledgerMu.Lock()
	violations := append([]string(nil), d.violations...)
	d.ledgerMu.Unlock()
	if len(violations) > 0 {
		d.fail("close-reason violations: %s", strings.Join(violations, "; "))
	}

	if extraChecks != nil {
		extraChecks()
	}
}

// runSchedule interleaves mutations and actions, invoking event() at a
// random point mid-traffic with actions fired tight around it.
func (d *durabilityWorld) runSchedule(event func()) {
	pre := 3 + d.rng.Intn(4)
	post := 3 + d.rng.Intn(4)
	step := func() {
		if d.rng.Intn(2) == 0 {
			d.mutate()
		} else {
			d.fireAction()
		}
		time.Sleep(time.Duration(2+d.rng.Intn(9)) * time.Millisecond)
	}
	for i := 0; i < pre; i++ {
		step()
	}
	// Race the event against in-flight pushes and parked polls: fire on
	// both edges with no settling pause.
	d.fireAction()
	event()
	d.fireAction()
	for i := 0; i < post; i++ {
		step()
	}
}

// runKillRestoreScenario kills the serving process mid-traffic — listener
// gone, parked polls dropped — checkpoints it, and restores the session
// into a fresh agent and browser at the same address after a short outage.
func runKillRestoreScenario(t *testing.T, seed int64) {
	t.Helper()
	d := newDurabilityWorld(t, seed)
	restarts := 1 + d.rng.Intn(2)
	gen := 0
	killRestore := func() {
		gen++
		// Close the server first: in-flight merges complete or die before
		// the snapshot, so the checkpoint is the process's final word and
		// restore cannot double-apply an action.
		d.curServer.Close()
		d.curAgent.Close()
		state, err := d.curAgent.ExportState()
		if err != nil {
			d.fail("checkpoint: %v", err)
		}
		time.Sleep(time.Duration(2+d.rng.Intn(14)) * time.Millisecond)

		loc := fmt.Sprintf("dur%dresh%d.lan", seed, gen)
		nb := browser.New(loc, d.w.corpus.Network.Dialer(loc))
		t.Cleanup(nb.Close)
		restored, err := RestoreAgent(nb, d.curAddr, state)
		if err != nil {
			d.fail("restore: %v", err)
		}
		restored.Policy = d.policy
		restored.MaxPollWait = 400 * time.Millisecond
		t.Cleanup(restored.Close)
		l, err := d.w.corpus.Network.Listen(d.curAddr)
		if err != nil {
			d.fail("relisten: %v", err)
		}
		srv := &httpwire.Server{Handler: restored}
		srv.Start(l)
		t.Cleanup(srv.Close)
		d.curAgent, d.curHost, d.curServer = restored, nb, srv
	}
	for i := 0; i < restarts; i++ {
		d.runSchedule(killRestore)
	}
	d.finish(t, nil)
}

// runLiveHandoverScenario migrates the session to a second agent process
// mid-traffic via the live handshake. Odd seeds additionally partition the
// participants away from the old agent for the duration of the transfer and
// heal afterwards, so the fleet discovers the move only once the network
// recovers.
func runLiveHandoverScenario(t *testing.T, seed int64) {
	t.Helper()
	d := newDurabilityWorld(t, seed)
	partition := seed%2 != 0
	var oldAgents []*Agent
	gen := 0
	handover := func() {
		gen++
		rcvHost := fmt.Sprintf("dur%dh2g%d.lan", seed, gen)
		rcvAddr := rcvHost + ":3000"
		hb := browser.New(rcvHost, d.w.corpus.Network.Dialer(rcvHost))
		t.Cleanup(hb.Close)
		rcv := NewAgent(hb, rcvAddr)
		rcv.AllowHandover = true
		rcv.Policy = d.policy
		rcv.MaxPollWait = 400 * time.Millisecond
		t.Cleanup(rcv.Close)
		l, err := d.w.corpus.Network.Listen(rcvAddr)
		if err != nil {
			d.fail("receiver listen: %v", err)
		}
		srv := &httpwire.Server{Handler: rcv}
		srv.Start(l)
		t.Cleanup(srv.Close)

		if partition {
			// Cut every participant off from the old agent: the handshake
			// (old host → new address) is unaffected, but the fleet cannot
			// learn of the move until the network heals.
			d.w.corpus.Network.Partition("", d.curAddr)
		}
		client := httpwire.NewClient(d.w.corpus.Network.Dialer(d.hostName))
		var herr error
		for attempt := 0; attempt < 3; attempt++ {
			// The receiver side is idempotent, so retrying a handshake that
			// lost a response on a lossy link is safe.
			if herr = d.curAgent.HandoverTo(client, rcvAddr); herr == nil {
				break
			}
		}
		if herr != nil {
			d.fail("handover: %v", herr)
		}
		if partition {
			d.w.corpus.Network.Heal("", d.curAddr)
		}
		oldAgents = append(oldAgents, d.curAgent)
		d.curAgent, d.curHost, d.curServer = rcv, hb, srv
		d.curAddr, d.hostName = rcvAddr, rcvHost
	}
	d.runSchedule(handover)
	d.finish(t, func() {
		for i, old := range oldAgents {
			if got := old.RelocatedTo(); got == "" {
				d.fail("old agent %d not marked relocated after handover", i)
			}
		}
		for i, s := range d.snips {
			if got := s.Stats().Relocates; got < 1 {
				d.fail("participant %d never relocated (Relocates=%d)", i, got)
			}
			if got, want := s.CurrentAgentURL(), "http://"+d.curAddr; got != want {
				d.fail("participant %d ended at %q, want %q", i, got, want)
			}
		}
		d.ledgerMu.Lock()
		moved := d.reasons[CloseMoved]
		d.ledgerMu.Unlock()
		if moved == 0 {
			d.fail("no MOVED close reason ever surfaced during a live handover")
		}
	})
}
