package core

// Native fuzz target for the deltaContent wire path: UnmarshalDelta and the
// length-prefixed patch codec it embeds (deltamsg.go). The snippet feeds
// these bytes straight off the network before any authentication of content
// shape, so the decoder's contract is absolute: arbitrary input produces a
// hard error or a valid message, never a panic — a failed decode is what
// triggers the participant's full-resync fallback. Seed corpus lives under
// testdata/fuzz/FuzzUnmarshalDelta/ and runs on plain `go test`; `make
// fuzz` mutates it.

import (
	"bytes"
	"testing"

	"rcb/internal/dom"
)

// FuzzUnmarshalDelta checks the decoder invariants on arbitrary bytes:
//
//   - UnmarshalDelta never panics; failures are hard errors.
//   - A successful parse is stable: Marshal of the result parses again, and
//     the second parse re-marshals byte-identically (encode∘decode is a
//     fixed point past the first normalization).
//   - The raw patch codec (decodePatches) upholds the same contract when
//     fed the input directly, and codec round trips are exact:
//     decode(encode(decode(s))) ≡ decode(s).
func FuzzUnmarshalDelta(f *testing.F) {
	// Seeds: a realistic delta (every section populated), edge shapes, and
	// truncations/corruptions of valid scripts.
	full := &DeltaContent{
		DocTime:     1700000000002,
		BaseDocTime: 1700000000001,
		HasHead:     true,
		Head:        []HeadChild{{Tag: "title", Inner: "t"}, {Tag: "script", Attrs: []dom.Attr{{Name: "id", Value: "rcb-ajax-snippet"}}}},
		Body: []dom.Patch{
			{Op: dom.OpSetAttrs, Path: "0", Attrs: []dom.Attr{{Name: "class", Value: "x&y"}}},
			{Op: dom.OpSetText, Path: "0.1", Text: "hello <世界>"},
			{Op: dom.OpRemove, Path: "2"},
			{Op: dom.OpInsert, Path: "1", Index: 0, Node: dom.NewElement("div")},
		},
		UserActions: []Action{{Kind: ActionMouseMove, X: 3, Y: 4, From: "p1"}},
	}
	f.Add(full.Marshal())
	empty := &DeltaContent{DocTime: 2, BaseDocTime: 1}
	f.Add(empty.Marshal())
	f.Add([]byte(deltaPreamble + "<docTime>9</docTime>\n<baseDocTime>8</baseDocTime>\n<bodyPatch><![CDATA[1;T1:0:2:hi]]></bodyPatch>\n" + closeDeltaContent))
	f.Add([]byte(deltaPreamble + "<docTime>9</docTime>"))           // truncated message
	f.Add([]byte("<?xml version='1.0'?><newContent></newContent>")) // wrong message type
	f.Add([]byte("2;A1:05;"))                                       // bare codec fragment, short attrs
	f.Add([]byte("1;I3:0.0-1;e3:div0;0;"))                          // negative insert index
	f.Add([]byte("999999999;"))                                     // implausible count

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > fuzzDeltaSizeCap {
			t.Skip()
		}
		if d, err := UnmarshalDelta(data); err == nil {
			m1 := d.Marshal()
			d2, err := UnmarshalDelta(m1)
			if err != nil {
				t.Fatalf("re-parse of marshaled delta failed: %v\nmarshaled: %q", err, m1)
			}
			if m2 := d2.Marshal(); !bytes.Equal(m1, m2) {
				t.Errorf("marshal not stable:\nm1: %q\nm2: %q", m1, m2)
			}
		}
		// The raw codec must hold the same contract on arbitrary text.
		p1, err := decodePatches(string(data))
		if err != nil {
			return
		}
		enc1 := appendPatches(nil, p1)
		p2, err := decodePatches(string(enc1))
		if err != nil {
			t.Fatalf("re-decode of encoded script failed: %v\nencoded: %q", err, enc1)
		}
		if enc2 := appendPatches(nil, p2); !bytes.Equal(enc1, enc2) {
			t.Errorf("codec round trip diverged:\nenc1: %q\nenc2: %q", enc1, enc2)
		}
	})
}

// fuzzDeltaSizeCap bounds inputs so mutation explores structure rather than
// timing out on megabyte runs.
const fuzzDeltaSizeCap = 1 << 16
