package core

import (
	"math/rand"
	"time"
)

// Backoff is a capped exponential backoff with jitter, shared by the
// snippet's poll, action-push, and join retry paths. Each Next() doubles
// the delay up to Max and jitters it into [d/2, d] so a classroom of
// snippets that lost the same agent does not reconnect in lockstep.
//
// The zero value is unusable; construct with newBackoff or fill Base/Max.
// Rand is injectable so tests get deterministic sequences.
type Backoff struct {
	Base time.Duration
	Max  time.Duration
	// Rand returns a uniform value in [0, 1); nil uses math/rand. The
	// caller is responsible for serializing calls (Snippet holds s.mu).
	Rand func() float64

	attempts int
}

func newBackoff(base, max time.Duration, rnd func() float64) *Backoff {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 30 * time.Second
	}
	if max < base {
		max = base
	}
	return &Backoff{Base: base, Max: max, Rand: rnd}
}

// Next returns the delay before the next retry and advances the schedule.
func (b *Backoff) Next() time.Duration {
	d := b.Base
	for i := 0; i < b.attempts && d < b.Max; i++ {
		d *= 2
	}
	if d > b.Max {
		d = b.Max
	}
	b.attempts++
	r := rand.Float64
	if b.Rand != nil {
		r = b.Rand
	}
	// Jitter into [d/2, d]: keeps the exponential envelope visible while
	// decorrelating a fleet of clients.
	return time.Duration(float64(d) * (0.5 + 0.5*r()))
}

// Reset snaps the schedule back to Base after a success.
func (b *Backoff) Reset() { b.attempts = 0 }

// Attempts reports how many delays have been handed out since the last
// reset.
func (b *Backoff) Attempts() int { return b.attempts }
