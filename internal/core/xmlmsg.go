package core

import (
	"fmt"
	"strconv"
	"strings"

	"rcb/internal/dom"
	"rcb/internal/httpwire"
	"rcb/internal/jsescape"
)

// The XML response content of Figure 4. Every payload travels inside a
// CDATA section encoded with JavaScript escape(), which guarantees the
// bytes are free of XML metacharacters (paper §4.1.2: "We use the escape
// encoding function and CDATA section to ensure that the response data can
// be precisely contained in an application/xml message").

// TopElement carries a top-level child of the cloned document (body,
// frameset, or noframes): its attribute name-value list and innerHTML.
type TopElement struct {
	Attrs []dom.Attr
	Inner string
}

// HeadChild carries one child element of the document head. Children are
// transmitted separately so the snippet can rebuild the head element by
// element on browsers whose head.innerHTML is read-only (paper §4.2.2).
type HeadChild struct {
	Tag   string
	Attrs []dom.Attr
	Inner string
}

// NewContent is one synchronization message from RCB-Agent to a
// participant.
type NewContent struct {
	// DocTime is the timestamp of the document content on the host browser
	// (milliseconds since the epoch in the paper; any monotonically
	// increasing value works for the protocol).
	DocTime int64
	// HasDocument reports whether this message carries document content.
	// Action-only messages (pointer mirroring with no page change) have
	// HasDocument == false.
	HasDocument bool
	Head        []HeadChild
	Body        *TopElement
	FrameSet    *TopElement
	NoFrames    *TopElement
	// UserActions carries other users' actions for mirroring.
	UserActions []Action
}

// encodeAttrs flattens an attribute list into form encoding, preserving
// order.
func encodeAttrs(attrs []dom.Attr) string {
	fields := make([]httpwire.FormField, len(attrs))
	for i, a := range attrs {
		fields[i] = httpwire.FormField{Name: a.Name, Value: a.Value}
	}
	return httpwire.EncodeForm(fields)
}

func decodeAttrs(s string) []dom.Attr {
	fields := httpwire.ParseForm(s)
	if len(fields) == 0 {
		return nil
	}
	attrs := make([]dom.Attr, len(fields))
	for i, f := range fields {
		attrs[i] = dom.Attr{Name: f.Name, Value: f.Value}
	}
	return attrs
}

// headChildPayload packs tag, attribute list and innerHTML into the single
// string that is escape()d into the CDATA section.
func headChildPayload(h HeadChild) string {
	return h.Tag + "\n" + encodeAttrs(h.Attrs) + "\n" + h.Inner
}

func parseHeadChildPayload(s string) (HeadChild, error) {
	parts := strings.SplitN(s, "\n", 3)
	if len(parts) != 3 {
		return HeadChild{}, fmt.Errorf("core: malformed head child payload")
	}
	return HeadChild{Tag: parts[0], Attrs: decodeAttrs(parts[1]), Inner: parts[2]}, nil
}

func topElementPayload(t *TopElement) string {
	return encodeAttrs(t.Attrs) + "\n" + t.Inner
}

func parseTopElementPayload(s string) (*TopElement, error) {
	parts := strings.SplitN(s, "\n", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("core: malformed top element payload")
	}
	return &TopElement{Attrs: decodeAttrs(parts[0]), Inner: parts[1]}, nil
}

// closeNewContent is the fixed tail of every Figure 4 message. Prepared
// content records where it starts so per-participant userActions can be
// spliced in front of it without re-marshaling (see PreparedContent).
const closeNewContent = "</newContent>\n"

// Marshal renders the message in the exact shape of Figure 4.
func (c *NewContent) Marshal() []byte {
	return c.AppendMarshal(make([]byte, 0, 1<<10))
}

// AppendMarshal appends the Figure 4 rendering of the message to dst and
// returns the extended slice. Payloads are escape()d directly into dst —
// no intermediate strings beyond the payload packing itself.
func (c *NewContent) AppendMarshal(dst []byte) []byte {
	dst = append(dst, "<?xml version='1.0' encoding='utf-8'?>\n<newContent>\n<docTime>"...)
	dst = strconv.AppendInt(dst, c.DocTime, 10)
	dst = append(dst, "</docTime>\n"...)
	if c.HasDocument {
		dst = append(dst, "<docContent>\n<docHead>\n"...)
		for i, h := range c.Head {
			dst = append(dst, "<hChild"...)
			dst = strconv.AppendInt(dst, int64(i+1), 10)
			dst = append(dst, "><![CDATA["...)
			dst = jsescape.AppendEscape(dst, headChildPayload(h))
			dst = append(dst, "]]></hChild"...)
			dst = strconv.AppendInt(dst, int64(i+1), 10)
			dst = append(dst, ">\n"...)
		}
		dst = append(dst, "</docHead>\n"...)
		dst = appendTopElement(dst, "docBody", c.Body)
		dst = appendTopElement(dst, "docFrameSet", c.FrameSet)
		dst = appendTopElement(dst, "docNoFrames", c.NoFrames)
		dst = append(dst, "</docContent>\n"...)
	}
	if len(c.UserActions) > 0 {
		dst = appendUserActions(dst, c.UserActions)
	}
	dst = append(dst, closeNewContent...)
	return dst
}

func appendTopElement(dst []byte, name string, t *TopElement) []byte {
	if t == nil {
		return dst
	}
	dst = append(dst, '<')
	dst = append(dst, name...)
	dst = append(dst, "><![CDATA["...)
	dst = jsescape.AppendEscape(dst, topElementPayload(t))
	dst = append(dst, "]]></"...)
	dst = append(dst, name...)
	dst = append(dst, ">\n"...)
	return dst
}

// appendUserActions appends a userActions element — shared by full marshals
// and the per-participant splice of PreparedContent.WithUserActions.
func appendUserActions(dst []byte, actions []Action) []byte {
	dst = append(dst, "<userActions><![CDATA["...)
	dst = jsescape.AppendEscape(dst, EncodeActions(actions))
	dst = append(dst, "]]></userActions>\n"...)
	return dst
}

// Unmarshal parses a Figure 4 message. Payload CDATA content is escape()
// encoded, so a lightweight scanner suffices: no raw '<' can occur inside
// payloads.
func Unmarshal(data []byte) (*NewContent, error) {
	s := string(data)
	c := &NewContent{}
	docTime, ok := elementText(s, "docTime")
	if !ok {
		return nil, fmt.Errorf("core: message has no docTime")
	}
	t, err := strconv.ParseInt(strings.TrimSpace(docTime), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("core: bad docTime %q", docTime)
	}
	c.DocTime = t

	if content, ok := elementText(s, "docContent"); ok {
		c.HasDocument = true
		if headSec, ok := elementText(content, "docHead"); ok {
			head, err := parseHeadSection(headSec)
			if err != nil {
				return nil, err
			}
			c.Head = head
		}
		if payload, ok := elementText(content, "docBody"); ok {
			te, err := parseTopElementPayload(jsescape.Unescape(stripCDATA(payload)))
			if err != nil {
				return nil, err
			}
			c.Body = te
		}
		if payload, ok := elementText(content, "docFrameSet"); ok {
			te, err := parseTopElementPayload(jsescape.Unescape(stripCDATA(payload)))
			if err != nil {
				return nil, err
			}
			c.FrameSet = te
		}
		if payload, ok := elementText(content, "docNoFrames"); ok {
			te, err := parseTopElementPayload(jsescape.Unescape(stripCDATA(payload)))
			if err != nil {
				return nil, err
			}
			c.NoFrames = te
		}
	}
	if payload, ok := elementText(s, "userActions"); ok {
		actions, err := DecodeActions(jsescape.Unescape(stripCDATA(payload)))
		if err != nil {
			return nil, err
		}
		c.UserActions = actions
	}
	return c, nil
}

// parseHeadSection parses the numbered hChild elements of a docHead section
// — shared by the full newContent and deltaContent unmarshalers.
func parseHeadSection(headSec string) ([]HeadChild, error) {
	var head []HeadChild
	for i := 1; ; i++ {
		payload, ok := elementText(headSec, "hChild"+strconv.Itoa(i))
		if !ok {
			break
		}
		h, err := parseHeadChildPayload(jsescape.Unescape(stripCDATA(payload)))
		if err != nil {
			return nil, err
		}
		head = append(head, h)
	}
	return head, nil
}

// elementText returns the text between <name> and </name> in s.
func elementText(s, name string) (string, bool) {
	open := "<" + name + ">"
	close := "</" + name + ">"
	i := strings.Index(s, open)
	if i < 0 {
		return "", false
	}
	rest := s[i+len(open):]
	j := strings.Index(rest, close)
	if j < 0 {
		return "", false
	}
	return rest[:j], true
}

// stripCDATA unwraps a <![CDATA[...]]> section, tolerating surrounding
// whitespace; non-CDATA text is returned as-is.
func stripCDATA(s string) string {
	t := strings.TrimSpace(s)
	if strings.HasPrefix(t, "<![CDATA[") && strings.HasSuffix(t, "]]>") {
		return t[len("<![CDATA[") : len(t)-len("]]>")]
	}
	return t
}

// ContentFromDocument extracts a NewContent message from a cloned document
// element, following the paper's extraction order: head children first,
// then the remaining top-level children (body, or frameset plus noframes).
func ContentFromDocument(root *dom.Node, docTime int64) *NewContent {
	c := &NewContent{DocTime: docTime, HasDocument: true}
	for _, child := range root.ChildElements() {
		switch child.Tag {
		case "head":
			for _, hc := range child.ChildElements() {
				c.Head = append(c.Head, HeadChild{
					Tag:   hc.Tag,
					Attrs: append([]dom.Attr(nil), hc.Attrs...),
					Inner: dom.InnerHTML(hc),
				})
			}
		case "body":
			c.Body = &TopElement{Attrs: append([]dom.Attr(nil), child.Attrs...), Inner: dom.InnerHTML(child)}
		case "frameset":
			c.FrameSet = &TopElement{Attrs: append([]dom.Attr(nil), child.Attrs...), Inner: dom.InnerHTML(child)}
		case "noframes":
			c.NoFrames = &TopElement{Attrs: append([]dom.Attr(nil), child.Attrs...), Inner: dom.InnerHTML(child)}
		}
	}
	return c
}
