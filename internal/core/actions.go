// Package core implements the RCB framework itself — the paper's
// contribution. It contains the two components of Figure 1:
//
//   - Agent: the RCB-Agent "browser extension", an HTTP service embedded in
//     the host browser that classifies and processes the three request types
//     of Figure 2, generates response content per Figure 3, and moderates
//     co-browsing sessions under a Policy.
//   - Snippet: the Ajax-Snippet logic a participant's browser executes —
//     the polling loop and the four-step content application procedure of
//     Figure 5 — reproduced as a Go state machine driving a participant
//     browser model.
//
// The wire format between them is the XML response content of Figure 4,
// with payloads encoded by JavaScript escape() inside CDATA sections, and
// requests optionally authenticated with the HMAC scheme of §3.4.
package core

import (
	"encoding/json"
	"fmt"

	"rcb/internal/httpwire"
)

// ActionKind enumerates the user actions RCB synchronizes between browsers
// (paper step 9: form filling, mouse-pointer moves, clicks ...).
type ActionKind string

// The action kinds carried in Ajax polling requests and userActions
// elements.
const (
	// ActionClick is a click on a link or button, identified by its RCB id.
	ActionClick ActionKind = "click"
	// ActionFormInput reports a single field edit (live co-filling).
	ActionFormInput ActionKind = "forminput"
	// ActionFormSubmit carries a whole form's data back to the host.
	ActionFormSubmit ActionKind = "formsubmit"
	// ActionMouseMove reports pointer position for pointer mirroring.
	ActionMouseMove ActionKind = "mousemove"
	// ActionScroll reports viewport scroll offsets.
	ActionScroll ActionKind = "scroll"
)

// Action is one user interaction event. Actions flow from participants to
// the host piggybacked on Ajax polling requests (paper §4.1.1 "data
// merging"), and from the host to participants inside the userActions
// element of the XML response content (Figure 4).
type Action struct {
	Kind ActionKind `json:"kind"`
	// Target names the affected element: the value of its data-rcb
	// attribute assigned during event rewriting.
	Target string `json:"target,omitempty"`
	// Value holds a field value for forminput, or a scroll offset.
	Value string `json:"value,omitempty"`
	// Fields holds the full field list for formsubmit.
	Fields []httpwire.FormField `json:"fields,omitempty"`
	// X, Y are pointer coordinates for mousemove.
	X int `json:"x,omitempty"`
	Y int `json:"y,omitempty"`
	// From identifies the originating user ("host" or a participant ID).
	From string `json:"from,omitempty"`
	// Seq orders actions within a session.
	Seq int64 `json:"seq,omitempty"`
	// CID and CSeq identify the action for replay filtering: the snippet
	// stamps each action with its client ID and a client-local sequence
	// number, and the agent accepts each (CID, CSeq) pair once, so the
	// at-least-once upstream (push fallback, poll retries, rejoins) is
	// exactly-once at the policy. Empty CID bypasses the filter.
	CID  string `json:"cid,omitempty"`
	CSeq int64  `json:"cseq,omitempty"`
}

// String renders a compact human-readable description.
func (a Action) String() string {
	switch a.Kind {
	case ActionMouseMove:
		return fmt.Sprintf("%s(%d,%d) from %s", a.Kind, a.X, a.Y, a.From)
	case ActionFormSubmit:
		return fmt.Sprintf("%s %s %d fields from %s", a.Kind, a.Target, len(a.Fields), a.From)
	default:
		return fmt.Sprintf("%s %s=%q from %s", a.Kind, a.Target, a.Value, a.From)
	}
}

// EncodeActions marshals actions for transport inside a form field or a
// userActions payload.
func EncodeActions(actions []Action) string {
	if len(actions) == 0 {
		return ""
	}
	b, err := json.Marshal(actions)
	if err != nil {
		// Action contains only marshalable fields; this cannot happen.
		panic("core: encode actions: " + err.Error())
	}
	return string(b)
}

// DecodeActions reverses EncodeActions. An empty payload yields nil.
func DecodeActions(payload string) ([]Action, error) {
	if payload == "" {
		return nil, nil
	}
	var out []Action
	if err := json.Unmarshal([]byte(payload), &out); err != nil {
		return nil, fmt.Errorf("core: decode actions: %w", err)
	}
	return out, nil
}
