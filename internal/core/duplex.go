package core

// Client half of the persistent full-duplex channel (DeliveryDuplex). The
// server half and the frame schema live in channel.go. One DuplexOnce call
// is one channel session: upgrade, read frames until the channel ends,
// tear down. Run drives sessions back to back, degrading to the long-poll
// path between attempts — the snippet's delivery ladder is
// duplex → long-poll → interval, each rung falling back to the next and
// recovering upward when the better channel becomes available again.

import (
	"fmt"
	"strconv"
	"time"

	"rcb/internal/browser"
	"rcb/internal/httpwire"
)

// duplexUpgradeTimeout bounds the POST /channel handshake round trip; the
// endpoint answers immediately by design.
const duplexUpgradeTimeout = 5 * time.Second

// duplexPingInterval paces the client keepalive probe. Every ping provokes
// a pong, so a healthy channel delivers a frame at least this often even
// when the document is idle — which is what makes the read deadline below
// a dead-agent detector rather than a second pacing mechanism.
const duplexPingInterval = 5 * time.Second

// duplexReadTimeout is the per-read deadline: comfortably more than one
// ping interval, so it only fires when the agent stopped answering probes.
const duplexReadTimeout = 3 * duplexPingInterval

// duplexEligible reports whether Run should attempt a channel session now:
// the snippet is in duplex mode and not inside a post-failure suspension
// window (during which the long-poll fallback carries the session).
func (s *Snippet) duplexEligible() bool {
	if s.Delivery != DeliveryDuplex {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.duplexUntil.After(time.Now())
}

// suspendDuplex opens (or extends) the fallback window after a refused
// upgrade or a lost channel: upgrade attempts pause for the backoff delay —
// floored by any server-assigned retry interval — while polling carries the
// session.
func (s *Snippet) suspendDuplex() {
	s.mu.Lock()
	s.backoffsLocked()
	d := s.duplexBackoff.Next()
	if s.retryAfter > d {
		d = s.retryAfter
	}
	s.duplexUntil = time.Now().Add(d)
	s.stats.DuplexFallbacks++
	s.mu.Unlock()
}

// duplexDelay is the pause Run takes after a channel session ends: zero
// unless the agent assigned explicit pacing (a shed retry hint, a MOVED
// retry hint) — the fallback poll or the rejoin should otherwise start
// immediately.
func (s *Snippet) duplexDelay() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retryAfter
}

// dispatchDuplex routes one stamped action over the live channel, if one is
// attached. The action enters the retransmit buffer before the write: if
// the channel dies with the ack outstanding, teardown requeues it for
// piggybacking, and the agent's (CID, CSeq) filter absorbs the replay —
// at-least-once on the wire, exactly-once in effect, the same contract as
// every other upstream path.
func (s *Snippet) dispatchDuplex(act Action) bool {
	s.mu.Lock()
	ch := s.channel
	if ch == nil {
		s.mu.Unlock()
		return false
	}
	s.chanSent = append(s.chanSent, act)
	s.stats.DuplexActionsSent++
	s.mu.Unlock()
	payload := EncodeActions([]Action{act})
	if err := ch.WriteFrame(httpwire.Frame{Type: FrameActions, Payload: []byte(payload)}); err != nil {
		// The channel is dying under us. Move the action from the
		// retransmit buffer to the piggyback queue — unless the teardown
		// already swept it there.
		s.mu.Lock()
		for i := range s.chanSent {
			if s.chanSent[i].CID == act.CID && s.chanSent[i].CSeq == act.CSeq {
				s.chanSent = append(s.chanSent[:i], s.chanSent[i+1:]...)
				s.queue = append(s.queue, act)
				s.stats.ActionFallbacks++
				break
			}
		}
		s.mu.Unlock()
		return true
	}
	s.mu.Lock()
	s.stats.DuplexFramesOut++
	s.mu.Unlock()
	return true
}

// DuplexOnce runs one persistent-channel session: upgrade the connection,
// then read frames — content pushes, action acks, pongs, the close — until
// the channel ends. It blocks for the session's lifetime (Run calls it in
// place of a PollOnce cycle) and returns nil for orderly degradations, a
// CloseError when the agent ended the session with a reason, or the
// transport error that killed the channel. Queued actions are flushed over
// the channel the moment it opens; unacknowledged ones are requeued when it
// closes.
func (s *Snippet) DuplexOnce(stop <-chan struct{}) error {
	addr, err := s.agentAddr()
	if err != nil {
		return err
	}
	s.mu.Lock()
	ts := s.docTime
	s.mu.Unlock()
	fields := []httpwire.FormField{{Name: "ts", Value: strconv.FormatInt(ts, 10)}}
	if !s.DisableDelta {
		fields = append(fields, httpwire.FormField{Name: "delta", Value: "1"})
	}
	body := httpwire.AppendForm(make([]byte, 0, 64), fields)
	target := "/channel"
	if s.auth != nil {
		target = s.auth.Sign("POST", target, body)
	}
	req := httpwire.NewRequest("POST", target)
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	if c := s.Browser.Jar.Header(browser.HostOf(s.agentURL() + "/")); c != "" {
		req.Header.Set("Cookie", c)
	}
	req.Body = body
	ch, resp, err := s.Browser.Client.Upgrade(addr, req, duplexUpgradeTimeout)
	if err != nil {
		s.suspendDuplex()
		return fmt.Errorf("rcb-snippet: channel upgrade: %w", err)
	}
	if ch == nil {
		return s.duplexRefused(resp)
	}

	// Channel up: attach it as the dispatch target and flush the piggyback
	// queue over it, so actions queued during the fallback window arrive
	// now instead of riding a poll that will never be sent.
	s.mu.Lock()
	s.channel = ch
	queued := s.queue
	s.queue = nil
	s.stats.DuplexUpgrades++
	s.backoffsLocked()
	s.duplexBackoff.Reset()
	s.pushSuspended = false
	s.parkDenied = false
	s.retryAfter = 0
	s.mu.Unlock()
	if len(queued) > 0 {
		if werr := ch.WriteFrame(httpwire.Frame{Type: FrameActions,
			Payload: []byte(EncodeActions(queued))}); werr == nil {
			s.mu.Lock()
			s.chanSent = append(s.chanSent, queued...)
			s.stats.DuplexActionsSent += int64(len(queued))
			s.stats.DuplexFramesOut++
			s.mu.Unlock()
		} else {
			s.mu.Lock()
			s.queue = append(queued, s.queue...)
			s.mu.Unlock()
		}
	}

	// Keepalive and stop handling share a goroutine: pings flow while the
	// session lives; a stop closes the channel out from under the read
	// loop, after a best-effort close frame so the agent sees an orderly
	// detach rather than a dead peer.
	readerDone := make(chan struct{})
	go func() {
		ticker := time.NewTicker(duplexPingInterval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				_ = ch.WriteFrame(httpwire.Frame{Type: FrameClose})
				ch.Close()
				return
			case <-readerDone:
				return
			case <-ticker.C:
				if ch.WriteFrame(httpwire.Frame{Type: FramePing}) != nil {
					ch.Close()
					return
				}
				s.mu.Lock()
				s.stats.DuplexFramesOut++
				s.mu.Unlock()
			}
		}
	}()
	err = s.duplexReadLoop(ch, stop)
	close(readerDone)
	ch.Close()

	// Teardown: detach, and sweep unacknowledged actions into the piggyback
	// queue ahead of anything queued since — CSeq order is preserved, and
	// the replay filter drops whatever the agent already merged.
	s.mu.Lock()
	if s.channel == ch {
		s.channel = nil
	}
	unacked := s.chanSent
	s.chanSent = nil
	if len(unacked) > 0 {
		s.queue = append(unacked, s.queue...)
	}
	s.mu.Unlock()
	return err
}

// duplexRefused classifies a non-101 answer to the upgrade handshake,
// mirroring PollOnce's terminal-response handling: MOVED follows the
// relocation, an unknown/stale identity rejoins, deliberate removal ends
// the session, and load refusals quietly open the fallback window.
func (s *Snippet) duplexRefused(resp *httpwire.Response) error {
	reason := ParseCloseReason(resp.Header.Get(CloseReasonHeader))
	s.mu.Lock()
	if ra := parseRetryAfterMS(resp.Header.Get(RetryAfterHeader)); ra > 0 {
		s.retryAfter = ra
	}
	if reason != CloseNone {
		s.stats.LastCloseReason = reason
	}
	switch reason {
	case CloseMoved:
		if addr := resp.Header.Get(RelocateHeader); addr != "" {
			s.relocateTo = normalizeAgentURL(addr)
		}
		s.rejoinNeeded = true
		s.mu.Unlock()
	case CloseUnknown, CloseStaleReader:
		s.rejoinNeeded = true
		s.mu.Unlock()
	case CloseLeave, CloseKicked:
		s.mu.Unlock()
	default:
		// Load refusal (OVERCOMMITTED, SESSION_FULL, AGENT_CLOSING) or a
		// reason-less denial: not a session event, just this channel being
		// declined. Fall back to polling and retry the upgrade later.
		s.mu.Unlock()
		s.suspendDuplex()
		return nil
	}
	return fmt.Errorf("rcb-snippet: channel upgrade: %w",
		&CloseError{Reason: reason, Status: resp.StatusCode})
}

// duplexReadLoop consumes frames until the channel ends. Content and delta
// frames apply exactly as their poll-response counterparts and are
// acknowledged with the resulting docTime — or with 0 when an apply fails,
// which asks the agent for a full resync over the same channel. A read
// error opens the fallback window; a close frame is classified like a
// terminal poll response.
func (s *Snippet) duplexReadLoop(ch *httpwire.ChannelConn, stop <-chan struct{}) error {
	for {
		_ = ch.SetReadDeadline(time.Now().Add(duplexReadTimeout))
		f, err := ch.ReadFrame()
		if err != nil {
			select {
			case <-stop:
				return nil // our own shutdown closed the socket
			default:
			}
			s.suspendDuplex()
			return fmt.Errorf("rcb-snippet: channel read: %w", err)
		}
		s.mu.Lock()
		s.stats.DuplexFramesIn++
		s.mu.Unlock()
		switch f.Type {
		case FrameContent:
			s.duplexContent(ch, f.Payload)
		case FrameDelta:
			s.duplexDelta(ch, f.Payload)
		case FrameActionAck:
			seq, _ := strconv.ParseInt(string(f.Payload), 10, 64)
			s.mu.Lock()
			kept := s.chanSent[:0]
			for _, a := range s.chanSent {
				if a.CSeq > seq {
					kept = append(kept, a)
				}
			}
			s.chanSent = kept
			s.mu.Unlock()
		case FramePong:
			// Keepalive answered; the read deadline was already pushed out.
		case FrameClose:
			return s.duplexClosed(decodeCloseSignal(f.Payload))
		default:
			// Unknown frame type: ignore, for forward compatibility.
		}
	}
}

// duplexClosed classifies the agent's close frame — the frame analogue of a
// terminal poll response, with the same routing as duplexRefused.
func (s *Snippet) duplexClosed(cs closeSignal) error {
	s.mu.Lock()
	s.stats.LastCloseReason = cs.reason
	if cs.retry > 0 {
		s.retryAfter = cs.retry
	}
	switch cs.reason {
	case CloseMoved:
		if cs.relocate != "" {
			s.relocateTo = normalizeAgentURL(cs.relocate)
		}
		s.rejoinNeeded = true
		s.mu.Unlock()
	case CloseUnknown, CloseStaleReader:
		s.rejoinNeeded = true
		s.mu.Unlock()
	case CloseLeave, CloseKicked:
		s.mu.Unlock()
	default:
		// The agent shed this channel (or is shutting down): degrade to the
		// poll path, retry the upgrade when the window passes.
		s.mu.Unlock()
		s.suspendDuplex()
		return nil
	}
	return fmt.Errorf("rcb-snippet: channel closed: %w",
		&CloseError{Reason: cs.reason, Status: cs.reason.StatusCode()})
}

// duplexContent applies one full-content frame: the poll path's
// newContent handling, minus the request.
func (s *Snippet) duplexContent(ch *httpwire.ChannelConn, payload []byte) {
	content, err := Unmarshal(payload)
	if err != nil {
		s.desync()
		s.duplexAck(ch, 0)
		return
	}
	for _, act := range content.UserActions {
		if s.OnUserAction != nil {
			s.OnUserAction(act)
		}
	}
	if !content.HasDocument {
		return // mirror actions only; nothing to acknowledge
	}
	if err := s.ApplyContent(content); err != nil {
		s.desync()
		s.duplexAck(ch, 0)
		return
	}
	s.mu.Lock()
	s.docTime = content.DocTime
	s.stats.ContentPolls++
	s.mu.Unlock()
	s.duplexAck(ch, content.DocTime)
}

// duplexDelta applies one delta frame through the shared delta path; any
// failure has already reset the sync state, and the 0-ack asks the agent
// to push the full snapshot.
func (s *Snippet) duplexDelta(ch *httpwire.ChannelConn, payload []byte) {
	ts := s.DocTime()
	if _, err := s.handleDeltaResponse(payload, ts); err != nil {
		s.duplexAck(ch, 0)
		return
	}
	s.duplexAck(ch, s.DocTime())
}

// duplexAck reports an applied docTime (or, with 0, a failed apply that
// needs a full resync) back to the agent.
func (s *Snippet) duplexAck(ch *httpwire.ChannelConn, ts int64) {
	buf := strconv.AppendInt(make([]byte, 0, 20), ts, 10)
	if ch.WriteFrame(httpwire.Frame{Type: FrameAck, Payload: buf}) == nil {
		s.mu.Lock()
		s.stats.DuplexFramesOut++
		s.mu.Unlock()
	}
}
