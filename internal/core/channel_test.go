package core

// Persistent-channel tests: the POST /channel upgrade, push fan-out without
// park/wake, the action upstream riding the same socket, resync over a live
// channel, shed refusal and teardown, and the MOVED-over-a-live-channel
// handover scenario.

import (
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rcb/internal/browser"
	"rcb/internal/dom"
	"rcb/internal/httpwire"
	"rcb/internal/sites"
)

// waitUntil spins until cond holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// duplexJoin connects a participant in duplex mode and starts its channel
// session on a background goroutine; the session ends when the returned
// stop channel closes (or the agent closes it first).
func duplexJoin(t *testing.T, w *world, loc string) (*Snippet, chan struct{}, chan error) {
	t.Helper()
	s := w.join(t, loc)
	s.Delivery = DeliveryDuplex
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- s.DuplexOnce(stop)
		close(done) // cleanup can wait on done even after a test drained the error
	}()
	t.Cleanup(func() {
		select {
		case <-stop:
		default:
			close(stop)
		}
		<-done
	})
	return s, stop, done
}

// TestChannelPushFanout is the tentpole property: N attached channels all
// receive a document change instantly — one BuildContent run fans shared
// bytes to every channel, with zero polling requests involved.
func TestChannelPushFanout(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")

	const n = 4
	snippets := make([]*Snippet, n)
	for i := range snippets {
		snippets[i], _, _ = duplexJoin(t, w, "fan"+strconv.Itoa(i)+".lan")
	}
	waitUntil(t, "channels attached", func() bool { return w.agent.ChannelsOpen() == n })
	// The upgrade's first flush pushes the initial snapshot (ts=0).
	for i, s := range snippets {
		i, s := i, s
		waitUntil(t, "initial push to snippet "+strconv.Itoa(i), func() bool { return s.DocTime() > 0 })
	}

	builds0 := w.agent.ContentBuilds()
	err := w.host.ApplyMutation(func(doc *dom.Document) error {
		doc.Body().SetAttr("data-duplex", "1")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range snippets {
		s := s
		waitUntil(t, "fanout to snippet "+strconv.Itoa(i), func() bool {
			var attr string
			_ = s.Browser.WithDocument(func(_ string, doc *dom.Document) error {
				attr = doc.Body().AttrOr("data-duplex", "")
				return nil
			})
			return attr == "1"
		})
	}
	if got := w.agent.ContentBuilds() - builds0; got != 1 {
		t.Errorf("one doc change ran BuildContent %d times across %d channels; want exactly 1", got, n)
	}
	for i, s := range snippets {
		st := s.Stats()
		if st.Polls != 0 {
			t.Errorf("snippet %d issued %d polling requests in duplex mode; want 0", i, st.Polls)
		}
		if st.DuplexUpgrades != 1 || st.DuplexFramesIn == 0 {
			t.Errorf("snippet %d duplex stats: upgrades=%d framesIn=%d", i, st.DuplexUpgrades, st.DuplexFramesIn)
		}
	}
	if w.agent.FramesOut() < n {
		t.Errorf("agent FramesOut = %d, want >= %d", w.agent.FramesOut(), n)
	}
}

// TestChannelActionUpstream sends an action as a channel frame: it must
// reach the policy exactly once, mirror out to a long-poll participant, and
// the FrameActionAck must drain the client's retransmit buffer.
func TestChannelActionUpstream(t *testing.T) {
	var decisions atomic.Int64
	w := newWorld(t, func(a *Agent) {
		a.Policy = PolicyFunc(func(string, Action) Decision {
			decisions.Add(1)
			return Apply
		})
	})
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")

	alice, _, _ := duplexJoin(t, w, "alice.lan")
	waitUntil(t, "alice synced", func() bool { return alice.DocTime() > 0 })

	mirrored := make(chan Action, 4)
	bob := longPollJoin(t, w, "bob.lan", 10*time.Second)
	bob.OnUserAction = func(act Action) {
		if act.Kind == ActionMouseMove {
			mirrored <- act
		}
	}
	pollDone := make(chan error, 1)
	go func() {
		_, err := bob.PollOnce()
		pollDone <- err
	}()
	waitParked(t, w.agent, 1)

	alice.PointerMove(41, 42)
	if err := <-pollDone; err != nil {
		t.Fatal(err)
	}
	select {
	case act := <-mirrored:
		if act.X != 41 || act.Y != 42 {
			t.Fatalf("mirrored action = (%d,%d), want (41,42)", act.X, act.Y)
		}
	default:
		t.Fatal("bob's woken poll carried no mirrored action")
	}
	if got := decisions.Load(); got != 1 {
		t.Errorf("channel action reached the policy %d times, want exactly once", got)
	}
	waitUntil(t, "action ack drains retransmit buffer", func() bool {
		alice.mu.Lock()
		defer alice.mu.Unlock()
		return len(alice.chanSent) == 0
	})
	if st := alice.Stats(); st.DuplexActionsSent != 1 {
		t.Errorf("DuplexActionsSent = %d, want 1", st.DuplexActionsSent)
	}
	if w.agent.FramesIn() == 0 {
		t.Error("agent read no frames from an action-carrying channel")
	}
}

// TestChannelResyncOnZeroAck drives the raw frame protocol: an ack of 0 is
// a desync report, answered with a fresh full snapshot over the same
// channel; pings echo as pongs.
func TestChannelResyncOnZeroAck(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	s := w.join(t, "raw.lan")
	addr, err := s.agentAddr()
	if err != nil {
		t.Fatal(err)
	}

	req := httpwire.NewRequest("POST", "/channel")
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("Cookie", cookieFor(s))
	req.Body = []byte("ts=0")
	ch, resp, err := s.Browser.Client.Upgrade(addr, req, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ch == nil {
		t.Fatalf("upgrade refused: %d %s", resp.StatusCode, resp.Body)
	}
	defer ch.Close()

	readContent := func(what string) *NewContent {
		t.Helper()
		f, err := ch.ReadFrame()
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		if f.Type != FrameContent {
			t.Fatalf("%s: frame type %d, want FrameContent", what, f.Type)
		}
		content, err := Unmarshal(f.Payload)
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		return content
	}
	first := readContent("initial push")
	if !first.HasDocument || first.DocTime <= 0 {
		t.Fatalf("initial push: hasDoc=%v docTime=%d", first.HasDocument, first.DocTime)
	}

	// A zero ack reports a failed apply: the agent must resend the full
	// snapshot even though its delivery base had advanced.
	if err := ch.WriteFrame(httpwire.Frame{Type: FrameAck, Payload: []byte("0")}); err != nil {
		t.Fatal(err)
	}
	resent := readContent("resync push")
	if resent.DocTime != first.DocTime {
		t.Fatalf("resync docTime = %d, want %d", resent.DocTime, first.DocTime)
	}

	if err := ch.WriteFrame(httpwire.Frame{Type: FramePing, Payload: []byte("probe")}); err != nil {
		t.Fatal(err)
	}
	f, err := ch.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != FramePong || string(f.Payload) != "probe" {
		t.Fatalf("ping answered with type=%d payload=%q", f.Type, f.Payload)
	}
}

// cookieFor returns the participant cookie header a snippet would send.
func cookieFor(s *Snippet) string {
	return s.Browser.Jar.Header(browser.HostOf("http://" + agentAddr + "/"))
}

// TestChannelShedRefusal: at ShedInterval and above, the upgrade is refused
// with OVERCOMMITTED + retry-after and the snippet quietly opens its
// fallback window instead of erroring or rejoining.
func TestChannelShedRefusal(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	s := w.join(t, "shed.lan")
	s.Delivery = DeliveryDuplex
	w.agent.forceShed(ShedInterval)

	if err := s.DuplexOnce(nil); err != nil {
		t.Fatalf("refused upgrade must degrade silently, got %v", err)
	}
	st := s.Stats()
	if st.DuplexFallbacks != 1 || st.LastCloseReason != CloseOvercommitted {
		t.Fatalf("fallbacks=%d reason=%s, want 1/OVERCOMMITTED", st.DuplexFallbacks, st.LastCloseReason)
	}
	if s.RejoinNeeded() {
		t.Fatal("a load refusal must not force a rejoin")
	}
	if s.duplexEligible() {
		t.Fatal("upgrade attempts not suspended after a refusal")
	}
	if got := w.agent.ChannelFallbacks(); got != 1 {
		t.Fatalf("agent ChannelFallbacks = %d, want 1", got)
	}
	// The long-poll fallback still works under the same identity.
	s.LongPollWait = 50 * time.Millisecond
	if _, err := s.PollOnce(); err != nil {
		t.Fatalf("fallback poll: %v", err)
	}
}

// TestChannelDisabledRefusal: the operator knob refuses upgrades with the
// same retry-carrying answer the shed ladder gives, so clients degrade to
// long-poll without treating it as a session event.
func TestChannelDisabledRefusal(t *testing.T) {
	w := newWorld(t, func(a *Agent) { a.DisableChannel = true })
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	s := w.join(t, "nochan.lan")
	s.Delivery = DeliveryDuplex

	if err := s.DuplexOnce(nil); err != nil {
		t.Fatalf("refused upgrade must degrade silently, got %v", err)
	}
	st := s.Stats()
	if st.DuplexFallbacks != 1 || st.LastCloseReason != CloseOvercommitted {
		t.Fatalf("fallbacks=%d reason=%s, want 1/OVERCOMMITTED", st.DuplexFallbacks, st.LastCloseReason)
	}
	if w.agent.ChannelsOpen() != 0 {
		t.Fatalf("ChannelsOpen = %d with channels disabled", w.agent.ChannelsOpen())
	}
	s.LongPollWait = 50 * time.Millisecond
	if _, err := s.PollOnce(); err != nil {
		t.Fatalf("fallback poll: %v", err)
	}
}

// TestChannelMeasuredShedClosesChannel: when the measured ladder reaches
// ShedInterval, an attached channel is closed with OVERCOMMITTED — the
// client falls back to polling and suspends upgrades.
func TestChannelMeasuredShedClosesChannel(t *testing.T) {
	w := newWorld(t, func(a *Agent) {
		// channelsOpen counts toward the parked signal, so one attached
		// channel trips the high watermark on the first evaluation.
		a.Shed = ShedWatermarks{ParkedHigh: 1, ParkedLow: 0}
	})
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	s, _, done := duplexJoin(t, w, "pressured.lan")
	waitUntil(t, "channel attached", func() bool { return w.agent.ChannelsOpen() == 1 })

	// Climb the measured ladder to ShedInterval (one step per evaluation).
	for i := 0; i < int(ShedInterval); i++ {
		w.agent.EvaluateLoad()
	}
	// The writer checks the ladder on its next wake.
	w.agent.notifyAllChannels()
	if err := <-done; err != nil {
		t.Fatalf("shed close must degrade silently, got %v", err)
	}
	waitUntil(t, "channel detached", func() bool { return w.agent.ChannelsOpen() == 0 })
	st := s.Stats()
	if st.LastCloseReason != CloseOvercommitted {
		t.Fatalf("close reason = %s, want OVERCOMMITTED", st.LastCloseReason)
	}
	if s.duplexEligible() {
		t.Fatal("upgrade attempts not suspended after a shed close")
	}
}

// TestChannelKickedTerminal: a deliberate removal closes the channel with
// KICKED and DuplexOnce surfaces the terminal CloseError, ending the
// session like the poll path would.
func TestChannelKickedTerminal(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	s, _, done := duplexJoin(t, w, "kicked.lan")
	waitUntil(t, "channel attached", func() bool { return w.agent.ChannelsOpen() == 1 })

	w.agent.DisconnectWith("p1", CloseKicked)
	err := <-done
	if CloseReasonOf(err) != CloseKicked {
		t.Fatalf("DuplexOnce returned %v, want a KICKED CloseError", err)
	}
	if s.RejoinNeeded() {
		t.Fatal("a terminal close must not schedule a rejoin")
	}
	waitUntil(t, "channel detached", func() bool { return w.agent.ChannelsOpen() == 0 })
}

// TestChannelServerCloseFallsBack: severing the server mid-stream (restart)
// ends the channel with a read error; the snippet requeues and opens its
// fallback window.
func TestChannelServerCloseFallsBack(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	s, _, done := duplexJoin(t, w, "severed.lan")
	waitUntil(t, "channel attached", func() bool { return w.agent.ChannelsOpen() == 1 })

	w.server.Close()
	err := <-done
	if err == nil || !strings.Contains(err.Error(), "channel read") {
		t.Fatalf("severed channel returned %v, want a channel read error", err)
	}
	if s.duplexEligible() {
		t.Fatal("upgrade attempts not suspended after a severed channel")
	}
	if st := s.Stats(); st.DuplexFallbacks != 1 {
		t.Fatalf("DuplexFallbacks = %d, want 1", st.DuplexFallbacks)
	}
}

// TestChannelHandoverMoved is the ISSUE scenario: a handover completes
// while a channel is live; the MOVED close arrives as a frame over that
// channel (surviving the forced quiesce), the snippet follows the
// relocation, and re-upgrades against the new agent.
func TestChannelHandoverMoved(t *testing.T) {
	w := newWorld(t, func(a *Agent) { a.Auth = NewAuthenticator(handoverKey) })
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	alice := joinWithKey(t, w, "alice.lan", handoverKey)
	alice.Delivery = DeliveryDuplex
	stop := make(chan struct{})
	defer close(stop)
	done := make(chan error, 1)
	go func() { done <- alice.DuplexOnce(stop) }()
	waitUntil(t, "channel attached", func() bool { return w.agent.ChannelsOpen() == 1 })
	waitUntil(t, "alice synced", func() bool { return alice.DocTime() > 0 })

	rcv := newReceiver(t, w, "host2.lan", handoverKey, nil)
	if err := w.agent.HandoverTo(handoverClient(w), rcv.addr); err != nil {
		t.Fatal(err)
	}
	err := <-done
	if CloseReasonOf(err) != CloseMoved {
		t.Fatalf("DuplexOnce returned %v, want a MOVED CloseError", err)
	}
	if !alice.RejoinNeeded() {
		t.Fatal("MOVED over the channel did not schedule a rejoin")
	}
	waitUntil(t, "old agent channel detached", func() bool { return w.agent.ChannelsOpen() == 0 })

	// Follow the relocation and re-upgrade at the new agent.
	if err := alice.Rejoin(); err != nil {
		t.Fatal(err)
	}
	if got := alice.CurrentAgentURL(); got != "http://"+rcv.addr {
		t.Fatalf("snippet follows %q, want %q", got, "http://"+rcv.addr)
	}
	go func() { done <- alice.DuplexOnce(stop) }()
	waitUntil(t, "channel re-attached at new agent", func() bool { return rcv.agent.ChannelsOpen() == 1 })
	waitUntil(t, "alice resynced at new agent", func() bool { return alice.DocTime() > 0 })
	if st := alice.Stats(); st.Relocates != 1 || st.DuplexUpgrades != 2 {
		t.Fatalf("relocates=%d upgrades=%d, want 1/2", st.Relocates, st.DuplexUpgrades)
	}
}
