package core

// The persistent full-duplex channel: one framed connection replacing the
// long-poll/push-lane pair. A participant upgrades a normal HMAC-verified
// POST /channel exchange into a frame stream (httpwire frame codec) and the
// agent registers the connection with its delivery machinery as a push
// sink: a build landing fans the shared prepared/delta bytes out to every
// attached channel the moment it exists — no park/wake counters, no
// per-update request parse, no per-update HMAC (the connection was
// authenticated once, at the upgrade). Each channel's acked base picks its
// delta from the multi-version ring, so channels at different bases share
// the per-(base, target) encoded bytes rather than assuming one base. Upstream, the same socket carries
// action frames and acks, retiring the separate /action lane while the
// channel is up.
//
// This file is the server half; the client half (DeliveryDuplex) lives in
// duplex.go. Both speak the frame schema below.

import (
	"bufio"
	"net"
	"strconv"
	"sync"
	"time"

	"rcb/internal/httpwire"
)

// Frame types of the RCB channel protocol. The httpwire frame codec treats
// them as opaque bytes; this is where they gain meaning.
const (
	// FrameContent carries a full newContent XML message (server→client).
	FrameContent byte = 1
	// FrameDelta carries a deltaContent XML message (server→client).
	FrameDelta byte = 2
	// FrameActions carries an EncodeActions payload (client→server) — the
	// upstream that replaces both piggybacking and the /action lane.
	FrameActions byte = 3
	// FrameAck acknowledges an applied docTime, decimal-encoded
	// (client→server). An ack of 0 reports a failed apply: the client
	// desynced and the server must resend the full snapshot.
	FrameAck byte = 4
	// FrameActionAck confirms merged actions (server→client): the payload is
	// the highest CSeq the agent has accepted from this client, so the
	// client can drop its retransmit buffer up to that point.
	FrameActionAck byte = 5
	// FramePing/FramePong are the keepalive probe pair; the payload is
	// echoed back verbatim.
	FramePing byte = 6
	FramePong byte = 7
	// FrameClose announces an orderly teardown. The payload is form-encoded:
	// reason=<CloseReason name>[&retry=<ms>][&relocate=<addr>] — the frame
	// equivalent of the Rcb-Close-Reason response headers.
	FrameClose byte = 8
)

// closeSignal is one pending close-with-reason for a channel: the frame
// payload of the FrameClose the writer sends before tearing down.
type closeSignal struct {
	reason   CloseReason
	retry    time.Duration
	relocate string
}

// encodeCloseSignal renders the FrameClose payload.
func encodeCloseSignal(cs closeSignal) []byte {
	fields := []httpwire.FormField{{Name: "reason", Value: cs.reason.String()}}
	if cs.retry > 0 {
		fields = append(fields, httpwire.FormField{Name: "retry", Value: strconv.FormatInt(cs.retry.Milliseconds(), 10)})
	}
	if cs.relocate != "" {
		fields = append(fields, httpwire.FormField{Name: "relocate", Value: cs.relocate})
	}
	return httpwire.AppendForm(make([]byte, 0, 64), fields)
}

// decodeCloseSignal parses a FrameClose payload. Unknown reasons come back
// as CloseUnknown — a protocol-violating bare close never reads as "no
// reason given".
func decodeCloseSignal(payload []byte) closeSignal {
	var cs closeSignal
	for _, f := range httpwire.ParseForm(string(payload)) {
		switch f.Name {
		case "reason":
			cs.reason = ParseCloseReason(f.Value)
		case "retry":
			cs.retry = parseRetryAfterMS(f.Value)
		case "relocate":
			cs.relocate = f.Value
		}
	}
	if cs.reason == CloseNone {
		cs.reason = CloseUnknown
	}
	return cs
}

// agentChannel is one registered persistent channel: the server-side state
// of a participant's framed connection. The writer goroutine owns delivery
// (it is the participant's push sink); the reader goroutine handles the
// upstream direction. base — the docTime the client is known to hold — is
// advanced by the writer as it sends and reset to zero by the reader when
// the client reports a failed apply (FrameAck 0), forcing a full resend.
type agentChannel struct {
	pid     string
	conn    *httpwire.ChannelConn
	deltaOK bool

	// notify has capacity 1: concurrent wake-ups coalesce into one flush
	// pass, exactly the semantics the hub's park/wake counters provide for
	// long-polls — but with no counters and no re-parse per update.
	notify chan struct{}
	// done is closed by shutdown; it unblocks the writer's wait.
	done     chan struct{}
	doneOnce sync.Once

	mu      sync.Mutex
	base    int64
	pending *closeSignal // close-with-reason awaiting the writer
}

// wake nudges the writer; a wake while one is already queued coalesces.
func (ch *agentChannel) wake() {
	select {
	case ch.notify <- struct{}{}:
	default:
	}
}

// shutdown tears the channel down: unblocks both loops and closes the
// socket. Idempotent, callable from any goroutine.
func (ch *agentChannel) shutdown() {
	ch.doneOnce.Do(func() {
		close(ch.done)
		ch.conn.Close()
	})
}

// requestClose schedules an orderly close: the writer sends a FrameClose
// with the first reason recorded, then tears down. Later reasons lose —
// whoever closed first named the cause.
func (ch *agentChannel) requestClose(cs closeSignal) {
	ch.mu.Lock()
	if ch.pending == nil {
		ch.pending = &cs
	}
	ch.mu.Unlock()
	ch.wake()
}

// ChannelsOpen reports how many persistent channels are currently attached —
// the observable duplex tests and benchmarks synchronize on.
func (a *Agent) ChannelsOpen() int64 { return a.channelsOpen.Load() }

// FramesOut reports frames written to channels (content, deltas, acks,
// pongs, closes).
func (a *Agent) FramesOut() int64 { return a.framesOut.Load() }

// FramesIn reports frames read from channels (actions, acks, pings, closes).
func (a *Agent) FramesIn() int64 { return a.framesIn.Load() }

// ChannelFallbacks reports upgrades refused and channels closed toward the
// degradation ladder (shed pressure, handover) — each one is a client
// falling back to long-poll.
func (a *Agent) ChannelFallbacks() int64 { return a.channelFallbacks.Load() }

// serveChannelUpgrade answers POST /channel: admission control, then a 101
// whose Hijack callback runs the channel session on the connection's own
// goroutine. The request is authenticated by the caller (route), and the
// relocation fence was already consulted by ServeWire — an upgrade against
// a moved agent never reaches here. The request body mirrors a poll's: the
// client's acknowledged ts (so an up-to-date client is not resent content
// it holds) and the delta opt-in.
func (a *Agent) serveChannelUpgrade(req *httpwire.Request) *httpwire.Response {
	a.maybeEvalLoad()
	if a.DisableChannel || a.ShedLevel() >= ShedInterval || a.handoverPending() {
		// The channel is precisely the per-client state the interval step
		// exists to shed; refuse with the same retry-carrying answer a
		// refused park gets, and the client degrades to long-poll.
		a.channelFallbacks.Add(1)
		resp := closeResponse(CloseOvercommitted)
		resp.Header.Set(RetryAfterHeader, strconv.FormatInt(a.shedRetryAfter().Milliseconds(), 10))
		return resp
	}
	pid := pidFromRequest(req)
	var ts int64
	var deltaOK bool
	for _, f := range httpwire.ParseForm(string(req.Body)) {
		switch f.Name {
		case "ts":
			ts, _ = strconv.ParseInt(f.Value, 10, 64)
		case "delta":
			deltaOK = f.Value == "1"
		case "pid":
			if pid == "" {
				pid = f.Value
			}
		}
	}
	p := a.participant(pid)
	if p == nil {
		return a.disconnectedResponse(pid)
	}
	if deltaOK && a.DisableDelta {
		deltaOK = false
	}
	resp := httpwire.NewResponse(101, "", nil)
	resp.Header.Set("Upgrade", "rcb-channel/1")
	resp.Header.Set("Connection", "Upgrade")
	resp.Hijack = func(conn net.Conn, br *bufio.Reader) {
		a.runChannel(httpwire.NewChannelConn(conn, br), pid, ts, deltaOK)
	}
	a.logf("rcb-agent: participant %s upgraded to persistent channel", pid)
	return resp
}

// runChannel owns one upgraded connection for its lifetime: register,
// spawn the reader, drive the writer, tear down. Runs on the server
// connection's goroutine (the Hijack contract); returning closes the conn.
func (a *Agent) runChannel(conn *httpwire.ChannelConn, pid string, ts int64, deltaOK bool) {
	ch := &agentChannel{
		pid:     pid,
		conn:    conn,
		deltaOK: deltaOK,
		notify:  make(chan struct{}, 1),
		done:    make(chan struct{}),
		base:    ts,
	}
	a.registerChannel(ch)
	a.channelsOpen.Add(1)
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		a.channelReader(ch)
	}()
	// Immediate first pass: anything newer than the client's acknowledged
	// ts is pushed before the first document change lands.
	ch.wake()
	a.channelWriter(ch)
	ch.shutdown()
	<-readerDone
	a.channelsOpen.Add(-1)
	a.unregisterChannel(ch)
	a.logf("rcb-agent: participant %s channel detached", pid)
}

// channelWriter is the delivery loop: sleep on the notify slot, flush
// whatever is pending, repeat until the channel dies.
func (a *Agent) channelWriter(ch *agentChannel) {
	for {
		select {
		case <-ch.done:
			return
		case <-ch.notify:
		}
		if !a.channelFlush(ch) {
			return
		}
	}
}

// channelFlush pushes pending state down one channel until nothing is left,
// returning false when the channel must tear down. Delivery decisions run
// under the serve/state barrier's read side, exactly like a poll's — a
// handover fence waits out an in-flight flush — but the socket write
// happens outside it, like a poll response's.
func (a *Agent) channelFlush(ch *agentChannel) bool {
	for {
		ch.mu.Lock()
		pending := ch.pending
		base := ch.base
		ch.mu.Unlock()
		if pending != nil {
			a.writeClose(ch, *pending)
			return false
		}
		a.smu.RLock()
		if a.relocatedTo != "" {
			// Handover completed under us: tell the client where the session
			// went over the live channel — the frame analogue of the MOVED
			// response — so it rejoins the new agent directly.
			cs := closeSignal{reason: CloseMoved, retry: a.movedRetryAfter(), relocate: a.relocatedTo}
			a.smu.RUnlock()
			a.channelFallbacks.Add(1)
			a.writeClose(ch, cs)
			return false
		}
		a.maybeEvalLoad()
		if a.measuredShedLevel() >= ShedInterval {
			// Real overload (not a handover's forced quiesce — channels must
			// outlive that to receive the MOVED frame): shed the per-client
			// channel state; the client falls back to interval-paced polling
			// under the same retry hint a refused park carries.
			cs := closeSignal{reason: CloseOvercommitted, retry: a.shedRetryAfter()}
			a.smu.RUnlock()
			a.channelFallbacks.Add(1)
			a.writeClose(ch, cs)
			return false
		}
		p := a.participant(ch.pid)
		if p == nil {
			reason := a.closeReasonFor(ch.pid)
			a.smu.RUnlock()
			a.writeClose(ch, closeSignal{reason: reason})
			return false
		}
		out, err := a.deliver(p, base, ch.deltaOK && base > 0)
		a.smu.RUnlock()
		if err != nil {
			a.logf("rcb-agent: channel %s content generation: %v", ch.pid, err)
			a.requeueOutbox(ch.pid, out.actions)
			return true // possibly transient; wait for the next wake
		}
		if !out.hasNew {
			return true
		}
		ftype := FrameContent
		if out.isDelta {
			ftype = FrameDelta
		}
		if werr := ch.conn.WriteFrame(httpwire.Frame{Type: ftype, Payload: out.body}); werr != nil {
			// The socket died with mirror actions already drained from the
			// outbox: put them back so the participant's recovery poll
			// delivers them — channel failure may delay an action, never
			// drop it.
			a.requeueOutbox(ch.pid, out.actions)
			return false
		}
		a.framesOut.Add(1)
		ch.mu.Lock()
		if ch.base == base {
			// Advance only if the reader didn't reset base to 0 (FrameAck 0,
			// client desync) while this frame was being computed — a resync
			// request must win over an optimistic advance.
			ch.base = out.docTime
		}
		ch.mu.Unlock()
		// Loop: more may have become pending while the write was in flight.
	}
}

// writeClose sends the FrameClose for cs, best-effort: the channel is
// being torn down either way.
func (a *Agent) writeClose(ch *agentChannel, cs closeSignal) {
	if err := ch.conn.WriteFrame(httpwire.Frame{Type: FrameClose, Payload: encodeCloseSignal(cs)}); err == nil {
		a.framesOut.Add(1)
	}
	a.logf("rcb-agent: channel %s closed: %s", ch.pid, cs.reason)
}

// channelReader drains the upstream direction: action frames, acks, pings,
// and the client's own close. A read error (peer gone, server closing the
// conn) tears the channel down silently — there is nobody left to send a
// close frame to.
func (a *Agent) channelReader(ch *agentChannel) {
	for {
		f, err := ch.conn.ReadFrame()
		if err != nil {
			ch.shutdown()
			return
		}
		a.framesIn.Add(1)
		switch f.Type {
		case FrameActions:
			a.channelActions(ch, string(f.Payload))
		case FrameAck:
			ts, _ := strconv.ParseInt(string(f.Payload), 10, 64)
			a.channelAck(ch, ts)
		case FramePing:
			if err := ch.conn.WriteFrame(httpwire.Frame{Type: FramePong, Payload: f.Payload}); err == nil {
				a.framesOut.Add(1)
			}
		case FrameClose:
			// The client detached (degradation, shutdown). The participant
			// stays registered — a channel teardown is not a leave — and its
			// next delivery rides whatever path it reconnects on.
			ch.shutdown()
			return
		default:
			// Unknown frame type: ignore, for forward compatibility.
		}
	}
}

// channelActions merges one upstream action frame — the poll protocol's
// step 1 (data merging) arriving on the channel. The replay filter runs
// first, exactly as on the poll and /action paths, so the client's
// requeue-after-channel-death retransmits stay exactly-once. The merged
// batch is confirmed with a FrameActionAck carrying the highest CSeq seen,
// which lets the client prune its retransmit buffer.
func (a *Agent) channelActions(ch *agentChannel, payload string) {
	a.smu.RLock()
	if a.relocatedTo != "" {
		// Past the relocation fence no state may change; wake the writer so
		// it delivers the MOVED close, and let the client's retransmit path
		// replay the actions at the new agent.
		a.smu.RUnlock()
		ch.wake()
		return
	}
	p := a.participant(ch.pid)
	if p == nil {
		a.smu.RUnlock()
		ch.requestClose(closeSignal{reason: a.closeReasonFor(ch.pid)})
		return
	}
	actions, err := DecodeActions(payload)
	if err != nil || len(actions) == 0 {
		a.smu.RUnlock()
		return // malformed upstream: drop the frame, keep the channel
	}
	var maxSeq int64
	for _, act := range actions {
		if act.CSeq > maxSeq {
			maxSeq = act.CSeq
		}
	}
	for _, act := range a.freshActions(actions) {
		act.From = p.ID
		a.handleAction(p.ID, act)
	}
	p.mu.Lock()
	p.LastSeen = time.Now()
	p.mu.Unlock()
	a.smu.RUnlock()
	if maxSeq > 0 {
		buf := strconv.AppendInt(make([]byte, 0, 20), maxSeq, 10)
		if err := ch.conn.WriteFrame(httpwire.Frame{Type: FrameActionAck, Payload: buf}); err == nil {
			a.framesOut.Add(1)
		}
	}
}

// channelAck records the client's applied docTime. A positive ack keeps the
// stale-reader ruler honest (LastDocTime advances exactly as a poll's ts
// would); an ack of zero is a desync report — reset the delivery base and
// wake the writer so the full snapshot goes out.
func (a *Agent) channelAck(ch *agentChannel, ts int64) {
	if ts <= 0 {
		ch.mu.Lock()
		ch.base = 0
		ch.mu.Unlock()
		ch.wake()
		return
	}
	if p := a.participant(ch.pid); p != nil {
		p.mu.Lock()
		p.LastDocTime = ts
		p.LastSeen = time.Now()
		p.mu.Unlock()
	}
}

// requeueOutbox returns drained mirror actions to the front of a
// participant's outbox after a failed channel write, so the recovery path
// (fallback poll, reattached channel) still delivers them.
func (a *Agent) requeueOutbox(pid string, actions []Action) {
	if len(actions) == 0 {
		return
	}
	p := a.participant(pid)
	if p == nil {
		return
	}
	p.mu.Lock()
	before := len(p.outbox)
	p.outbox = append(append(make([]Action, 0, len(actions)+len(p.outbox)), actions...), p.outbox...)
	if len(p.outbox) > maxOutbox {
		p.outbox = p.outbox[len(p.outbox)-maxOutbox:]
	}
	after := len(p.outbox)
	p.mu.Unlock()
	if d := after - before; d != 0 {
		a.outboxDepth.Add(int64(d))
	}
	a.hub.notifyPID(pid)
}

// registerChannel installs ch as pid's channel. A newer upgrade replaces an
// older channel (typically a client re-upgrading after a fallback, its old
// socket half-dead); the replaced one is torn down silently.
func (a *Agent) registerChannel(ch *agentChannel) {
	a.chmu.Lock()
	old := a.channels[ch.pid]
	a.channels[ch.pid] = ch
	a.chmu.Unlock()
	if old != nil {
		old.shutdown()
	}
}

// unregisterChannel removes ch unless a newer channel already replaced it.
func (a *Agent) unregisterChannel(ch *agentChannel) {
	a.chmu.Lock()
	if a.channels[ch.pid] == ch {
		delete(a.channels, ch.pid)
	}
	a.chmu.Unlock()
}

// notifyChannel wakes pid's channel writer, if one is attached.
func (a *Agent) notifyChannel(pid string) {
	a.chmu.Lock()
	ch := a.channels[pid]
	a.chmu.Unlock()
	if ch != nil {
		ch.wake()
	}
}

// notifyAllChannels wakes every channel writer — the document-change
// fan-out. Each writer re-reads shared prepared bytes; no per-channel work
// happens here beyond a non-blocking send.
func (a *Agent) notifyAllChannels() {
	a.chmu.Lock()
	for _, ch := range a.channels {
		ch.wake()
	}
	a.chmu.Unlock()
}

// closeChannel schedules an orderly close of pid's channel, if attached.
func (a *Agent) closeChannel(pid string, cs closeSignal) {
	a.chmu.Lock()
	ch := a.channels[pid]
	a.chmu.Unlock()
	if ch != nil {
		ch.requestClose(cs)
	}
}

// closeAllChannels schedules an orderly close of every attached channel.
func (a *Agent) closeAllChannels(cs closeSignal) {
	a.chmu.Lock()
	chans := make([]*agentChannel, 0, len(a.channels))
	for _, ch := range a.channels {
		chans = append(chans, ch)
	}
	a.chmu.Unlock()
	for _, ch := range chans {
		ch.requestClose(cs)
	}
}
