package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"rcb/internal/browser"
	"rcb/internal/dom"
	"rcb/internal/httpwire"
	"rcb/internal/netsim"
	"rcb/internal/sites"
)

func TestSessionFramesetSync(t *testing.T) {
	w := newWorld(t, nil)
	spec := sites.Table1[1]
	w.hostNavigate(t, "http://"+spec.Host()+"/frames.html")
	alice := w.join(t, "alice.lan")
	if _, err := alice.PollOnce(); err != nil {
		t.Fatal(err)
	}
	err := alice.Browser.WithDocument(func(_ string, doc *dom.Document) error {
		if doc.Body() != nil {
			t.Error("participant body must be removed for a frameset page")
		}
		fs := doc.FrameSet()
		if fs == nil {
			t.Fatal("participant has no frameset")
		}
		if frames := fs.ElementsByTag("frame"); len(frames) != 2 {
			t.Errorf("frames = %d, want 2", len(frames))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Navigating back to a body page removes the frameset again (Figure 5
	// step 3 in the other direction).
	w.hostNavigate(t, "http://"+spec.Host()+"/")
	if _, err := alice.PollOnce(); err != nil {
		t.Fatal(err)
	}
	err = alice.Browser.WithDocument(func(_ string, doc *dom.Document) error {
		if doc.FrameSet() != nil {
			t.Error("stale frameset left behind")
		}
		if doc.Body() == nil {
			t.Error("body page not restored")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSessionSurvivesAgentServerRestart(t *testing.T) {
	// The paper's session is tied to the agent, not to one TCP listener: a
	// dropped listener (laptop sleep, port rebind) must not lose session
	// state that lives in the agent object.
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	alice := w.join(t, "alice.lan")
	if _, err := alice.PollOnce(); err != nil {
		t.Fatal(err)
	}

	// Kill the listener; a poll fails.
	w.server.Close()
	if _, err := alice.PollOnce(); err == nil {
		t.Fatal("poll through a dead listener must fail")
	}

	// Restart on the same address with the same agent; polling resumes with
	// the same participant identity.
	l, err := w.corpus.Network.Listen(agentAddr)
	if err != nil {
		t.Fatal(err)
	}
	srv := &httpwire.Server{Handler: w.agent}
	srv.Start(l)
	t.Cleanup(srv.Close)

	w.hostNavigate(t, "http://"+sites.Table1[2].Host()+"/")
	updated, err := alice.PollOnce()
	if err != nil || !updated {
		t.Fatalf("after restart: updated=%v err=%v", updated, err)
	}
}

func TestSessionActionsRequeuedOnPollFailure(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.ShopHost+"/")
	alice := w.join(t, "alice.lan")
	alice.PollOnce()

	// Queue a click, break the link, poll (fails), restore, poll again:
	// the click must not be lost.
	if err := alice.ClickElement("cartlink"); err != nil {
		t.Fatal(err)
	}
	w.server.Close()
	if _, err := alice.PollOnce(); err == nil {
		t.Fatal("expected poll failure")
	}
	l, err := w.corpus.Network.Listen(agentAddr)
	if err != nil {
		t.Fatal(err)
	}
	srv := &httpwire.Server{Handler: w.agent}
	srv.Start(l)
	t.Cleanup(srv.Close)

	if _, err := alice.PollOnce(); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(w.host.URL(), "/cart") {
		t.Fatalf("requeued click lost; host at %s", w.host.URL())
	}
}

func TestSessionCacheEvictionFallsBack(t *testing.T) {
	// Cache mode rewrote object URLs to the agent; if the host cache loses
	// the entry, the object request 404s but the session keeps working.
	w := newWorld(t, func(a *Agent) { a.DefaultCacheMode = true })
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	alice := w.join(t, "alice.lan")
	if _, err := alice.PollOnce(); err != nil {
		t.Fatal(err)
	}
	if alice.Stats().ObjectsFromAgent == 0 {
		t.Fatal("precondition: cache-mode fetches expected")
	}

	w.host.Cache.Clear()
	// Next content regeneration sees an empty cache → URLs go back to the
	// origin (per-object mode flexibility), so new participants still work.
	w.hostNavigate(t, "http://"+sites.Table1[2].Host()+"/")
	bob2 := w.join(t, "bob2.lan")
	if _, err := bob2.PollOnce(); err != nil {
		t.Fatal(err)
	}
	for _, f := range bob2.LastObjectFetches() {
		if f.Txn.Down == 0 && !f.FromCache {
			t.Errorf("object %s failed to fetch", f.URL)
		}
	}

	// A stale agent-object URL from before the eviction answers 404, not a
	// hang or crash.
	client := httpwire.NewClient(w.corpus.Network.Dialer("probe.lan"))
	defer client.Close()
	resp, err := client.Get(agentAddr, "/obj/t1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 404 {
		t.Fatalf("evicted object request: %d, want 404", resp.StatusCode)
	}
}

func TestSessionConcurrentParticipantsStress(t *testing.T) {
	// Many participants polling while the host navigates: no races (run
	// with -race), no lost updates, everyone converges to the final page.
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")

	const n = 6
	snippets := make([]*Snippet, n)
	for i := range snippets {
		snippets[i] = w.join(t, fmt.Sprintf("p%d.lan", i))
		snippets[i].FetchObjects = false
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, n)
	for _, s := range snippets {
		wg.Add(1)
		go func(s *Snippet) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.PollOnce(); err != nil {
					errs <- err
					return
				}
			}
		}(s)
	}
	hosts := []string{
		"http://" + sites.Table1[2].Host() + "/",
		"http://" + sites.ShopHost + "/",
		"http://" + sites.Table1[3].Host() + "/",
	}
	for _, u := range hosts {
		w.hostNavigate(t, u)
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// One more synchronous poll each: all converge to the last page.
	for i, s := range snippets {
		if _, err := s.PollOnce(); err != nil {
			t.Fatalf("final poll %d: %v", i, err)
		}
		err := s.Browser.WithDocument(func(_ string, doc *dom.Document) error {
			title := doc.Head().FirstChildElement("title")
			if title == nil || !strings.Contains(title.TextContent(), "live.com") {
				return fmt.Errorf("participant %d did not converge: %v", i, title)
			}
			return nil
		})
		if err != nil {
			t.Error(err)
		}
	}
}

func TestSessionOverShapedLinks(t *testing.T) {
	// Live end-to-end run over real (scaled) shaped links: the WAN-scaled
	// session must work and be measurably slower than the LAN-scaled one.
	measure := func(profile netsim.Link) time.Duration {
		corpus, err := sites.NewCorpus()
		if err != nil {
			t.Fatal(err)
		}
		defer corpus.Close()
		corpus.Network.SetLinkPolicy(func(from, to string) netsim.Link {
			if to == agentAddr { // participant ↔ host path
				return profile
			}
			return netsim.Instant
		})
		host := browser.New("host.lan", corpus.Network.Dialer("host.lan"))
		defer host.Close()
		agent := NewAgent(host, agentAddr)
		l, err := corpus.Network.Listen(agentAddr)
		if err != nil {
			t.Fatal(err)
		}
		srv := &httpwire.Server{Handler: agent}
		srv.Start(l)
		defer srv.Close()
		if _, err := host.Navigate("http://" + sites.Table1[1].Host() + "/"); err != nil {
			t.Fatal(err)
		}
		pb := browser.New("alice.far", corpus.Network.Dialer("alice.far"))
		defer pb.Close()
		snip := NewSnippet(pb, "http://"+agentAddr, "")
		snip.FetchObjects = false
		if err := snip.Join(); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		updated, err := snip.PollOnce()
		if err != nil || !updated {
			t.Fatalf("updated=%v err=%v", updated, err)
		}
		return time.Since(start)
	}

	// Scale the paper's profiles down 20× so the test stays fast.
	lan := measure(netsim.LAN.Scaled(20))
	wan := measure(netsim.WAN.Scaled(20))
	if wan <= lan {
		t.Errorf("shaped WAN sync (%v) should be slower than LAN (%v)", wan, lan)
	}
	// WAN scaled RTT is 4ms; the sync must at least pay one round trip.
	if wan < 4*time.Millisecond {
		t.Errorf("WAN sync %v faster than one scaled RTT", wan)
	}
}
