package core

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"rcb/internal/browser"
	"rcb/internal/dom"
	"rcb/internal/httpwire"
	"rcb/internal/sites"
)

func TestSessionThroughNATPortForward(t *testing.T) {
	// Paper §3.2.1: "a co-browsing host can still allow remote participants
	// to reach a TCP port on a private IP address inside a LAN using
	// port-forwarding techniques." The host is unreachable directly; a
	// gateway forwards a public port to the agent.
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")

	w.corpus.Network.DenyDialTo(agentAddr, "gw.example", "host.lan")
	fwd, err := w.corpus.Network.NewForwarder("gw.example", "gw.example:3000", agentAddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fwd.Close)

	// Direct join from outside the LAN fails ...
	blocked := browser.New("remote.net", w.corpus.Network.Dialer("remote.net"))
	t.Cleanup(blocked.Close)
	direct := NewSnippet(blocked, "http://"+agentAddr, "")
	if err := direct.Join(); err == nil {
		t.Fatal("direct join through the NAT should fail")
	}

	// ... but the forwarded public address works end to end.
	pb := browser.New("remote.net", w.corpus.Network.Dialer("remote.net"))
	t.Cleanup(pb.Close)
	alice := NewSnippet(pb, "http://gw.example:3000", "")
	if err := alice.Join(); err != nil {
		t.Fatal(err)
	}
	updated, err := alice.PollOnce()
	if err != nil || !updated {
		t.Fatalf("updated=%v err=%v", updated, err)
	}
	err = alice.Browser.WithDocument(func(_ string, doc *dom.Document) error {
		title := doc.Head().FirstChildElement("title")
		if title == nil || !strings.Contains(title.TextContent(), "google.com") {
			t.Errorf("content not synced through forward: %v", title)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDualRoleTopology(t *testing.T) {
	// Paper §3.3: "A user can even host a co-browsing session and meanwhile
	// join sessions hosted by other users using different browser windows
	// or tabs." Bob hosts session A; with a second browser window he joins
	// Carol's session B.
	w := newWorld(t, nil) // Bob's hosted session (agentAddr)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")

	// Carol hosts her own session on another port.
	carolBrowser := browser.New("carol.lan", w.corpus.Network.Dialer("carol.lan"))
	t.Cleanup(carolBrowser.Close)
	carolAgent := NewAgent(carolBrowser, "carol.lan:3000")
	l, err := w.corpus.Network.Listen("carol.lan:3000")
	if err != nil {
		t.Fatal(err)
	}
	srv := &httpwire.Server{Handler: carolAgent}
	srv.Start(l)
	t.Cleanup(srv.Close)
	if _, err := carolBrowser.Navigate("http://" + sites.ShopHost + "/"); err != nil {
		t.Fatal(err)
	}

	// Alice participates in Bob's session.
	alice := w.join(t, "alice.lan")
	if _, err := alice.PollOnce(); err != nil {
		t.Fatal(err)
	}

	// Bob's second window joins Carol's session — Bob is host and
	// participant simultaneously.
	bobTab2 := browser.New("host.lan", w.corpus.Network.Dialer("host.lan"))
	t.Cleanup(bobTab2.Close)
	bobAsParticipant := NewSnippet(bobTab2, "http://carol.lan:3000", "")
	if err := bobAsParticipant.Join(); err != nil {
		t.Fatal(err)
	}
	if updated, err := bobAsParticipant.PollOnce(); err != nil || !updated {
		t.Fatalf("bob-as-participant: updated=%v err=%v", updated, err)
	}

	// Both directions keep working after interleaved activity.
	w.hostNavigate(t, "http://"+sites.Table1[2].Host()+"/")
	if updated, err := alice.PollOnce(); err != nil || !updated {
		t.Fatalf("alice: updated=%v err=%v", updated, err)
	}
	err = bobTab2.WithDocument(func(_ string, doc *dom.Document) error {
		if !strings.Contains(dom.InnerHTML(doc.Body()), "Everything Store") {
			t.Error("bob's participant window lost carol's content")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestResponseProtectorRoundTrip(t *testing.T) {
	p := NewResponseProtector("shared-session-key")
	body := []byte("<?xml version='1.0'?><newContent>payload</newContent>")
	sealed := p.Seal(body)
	if bytes.Contains(sealed, []byte("newContent")) {
		t.Fatal("sealed body leaks plaintext")
	}
	opened, err := p.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(opened, body) {
		t.Fatalf("round trip: %q", opened)
	}
}

func TestResponseProtectorDetectsTampering(t *testing.T) {
	p := NewResponseProtector("k")
	sealed := p.Seal([]byte("content"))
	for _, idx := range []int{0, 20, len(sealed) - 1} {
		bad := append([]byte(nil), sealed...)
		bad[idx] ^= 0x01
		if _, err := p.Open(bad); err == nil {
			t.Errorf("tampered byte %d accepted", idx)
		}
	}
	if _, err := p.Open([]byte("short")); err == nil {
		t.Error("truncated sealed body accepted")
	}
}

func TestResponseProtectorWrongKey(t *testing.T) {
	sealed := NewResponseProtector("alice").Seal([]byte("secret"))
	if _, err := NewResponseProtector("mallory").Open(sealed); err == nil {
		t.Fatal("wrong key opened the response")
	}
}

func TestResponseProtectorUniqueNonces(t *testing.T) {
	p := NewResponseProtector("k")
	a := p.Seal([]byte("same"))
	b := p.Seal([]byte("same"))
	if bytes.Equal(a, b) {
		t.Fatal("two seals of identical plaintext must differ (nonce reuse)")
	}
	// Both still open.
	for _, s := range [][]byte{a, b} {
		if got, err := p.Open(s); err != nil || string(got) != "same" {
			t.Fatalf("open: %q %v", got, err)
		}
	}
}

func TestResponseProtectorProperty(t *testing.T) {
	p := NewResponseProtector(NewSessionKey())
	f := func(body []byte) bool {
		opened, err := p.Open(p.Seal(body))
		return err == nil && bytes.Equal(opened, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
