package core

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// Request authentication per paper §3.4: a session-specific one-time secret
// key is generated on the host, shared out of band, and every request from
// Ajax-Snippet carries an HMAC as an additional request-URI parameter. The
// agent recomputes the HMAC over the received request (with the hmac
// parameter discarded) and compares.

// hmacParam is the query parameter carrying the request MAC.
const hmacParam = "hmac"

// NewSessionKey generates a fresh random session secret, hex-encoded.
func NewSessionKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// The system PRNG failing is unrecoverable for key generation.
		panic("core: session key generation: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// Authenticator verifies and signs requests for one co-browsing session.
type Authenticator struct {
	key []byte
}

// NewAuthenticator returns an authenticator for the session key.
func NewAuthenticator(key string) *Authenticator {
	return &Authenticator{key: []byte(key)}
}

// mac computes the request MAC over method, target (without the hmac
// parameter) and body.
func (a *Authenticator) mac(method, target string, body []byte) string {
	m := hmac.New(sha256.New, a.key)
	fmt.Fprintf(m, "%s\n%s\n", method, target)
	m.Write(body)
	return hex.EncodeToString(m.Sum(nil))
}

// Sign appends the hmac parameter to target and returns the signed target.
func (a *Authenticator) Sign(method, target string, body []byte) string {
	mac := a.mac(method, target, body)
	sep := "?"
	if strings.Contains(target, "?") {
		sep = "&"
	}
	return target + sep + hmacParam + "=" + mac
}

// Verify checks the hmac parameter of a signed target. It returns false
// when the parameter is absent or does not match.
func (a *Authenticator) Verify(method, signedTarget string, body []byte) bool {
	target, mac, ok := splitMAC(signedTarget)
	if !ok {
		return false
	}
	want := a.mac(method, target, body)
	return hmac.Equal([]byte(mac), []byte(want))
}

// splitMAC removes a trailing hmac parameter from a request target,
// returning the bare target and the MAC value. Sign always appends the
// parameter last, so only the tail position must be handled.
func splitMAC(signedTarget string) (target, mac string, ok bool) {
	marker := hmacParam + "="
	idx := strings.LastIndex(signedTarget, marker)
	if idx <= 0 {
		return "", "", false
	}
	switch signedTarget[idx-1] {
	case '?':
		return signedTarget[:idx-1], signedTarget[idx+len(marker):], true
	case '&':
		return signedTarget[:idx-1], signedTarget[idx+len(marker):], true
	}
	return "", "", false
}
