package core

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Response protection — the §3.4 future work. The paper authenticates only
// requests, noting that "using JavaScript to compute an HMAC for a response
// (or encrypt/decrypt a response) is inefficient, especially if the size of
// the response is large", and defers response protection to future
// mechanisms. This file implements that mechanism so the deferred cost can
// be measured (see BenchmarkAblationResponseAuth): AES-CTR encryption plus
// an HMAC-SHA256 tag over the response body, keyed from the session secret.

// ResponseProtector seals and opens response bodies for one session.
type ResponseProtector struct {
	encKey []byte
	macKey []byte
	// counter provides unique per-message nonces; the host is the only
	// sealer in a session so a simple counter suffices.
	counter uint64
}

// NewResponseProtector derives independent encryption and MAC keys from the
// shared session key.
func NewResponseProtector(sessionKey string) *ResponseProtector {
	derive := func(label string) []byte {
		m := hmac.New(sha256.New, []byte(sessionKey))
		m.Write([]byte(label))
		return m.Sum(nil)
	}
	return &ResponseProtector{
		encKey: derive("rcb-response-enc")[:16],
		macKey: derive("rcb-response-mac"),
	}
}

// Seal encrypts body and prepends nonce and MAC:
//
//	hex(nonce[8]) || hex(mac[32]) || ciphertext
func (p *ResponseProtector) Seal(body []byte) []byte {
	p.counter++
	var nonce [8]byte
	binary.BigEndian.PutUint64(nonce[:], p.counter)

	block, err := aes.NewCipher(p.encKey)
	if err != nil {
		panic("core: response cipher: " + err.Error()) // key length is fixed
	}
	iv := make([]byte, aes.BlockSize)
	copy(iv, nonce[:])
	ct := make([]byte, len(body))
	cipher.NewCTR(block, iv).XORKeyStream(ct, body)

	m := hmac.New(sha256.New, p.macKey)
	m.Write(nonce[:])
	m.Write(ct)
	tag := m.Sum(nil)

	out := make([]byte, 0, 16+64+len(ct))
	out = append(out, hex.EncodeToString(nonce[:])...)
	out = append(out, hex.EncodeToString(tag)...)
	out = append(out, ct...)
	return out
}

// Open verifies and decrypts a sealed body.
func (p *ResponseProtector) Open(sealed []byte) ([]byte, error) {
	if len(sealed) < 16+64 {
		return nil, fmt.Errorf("core: sealed response too short")
	}
	nonce, err := hex.DecodeString(string(sealed[:16]))
	if err != nil {
		return nil, fmt.Errorf("core: bad response nonce")
	}
	tag, err := hex.DecodeString(string(sealed[16 : 16+64]))
	if err != nil {
		return nil, fmt.Errorf("core: bad response tag")
	}
	ct := sealed[16+64:]

	m := hmac.New(sha256.New, p.macKey)
	m.Write(nonce)
	m.Write(ct)
	if !hmac.Equal(tag, m.Sum(nil)) {
		return nil, fmt.Errorf("core: response authentication failed")
	}
	block, err := aes.NewCipher(p.encKey)
	if err != nil {
		panic("core: response cipher: " + err.Error())
	}
	iv := make([]byte, aes.BlockSize)
	copy(iv, nonce)
	pt := make([]byte, len(ct))
	cipher.NewCTR(block, iv).XORKeyStream(pt, ct)
	return pt, nil
}
