package core

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"rcb/internal/dom"
	"rcb/internal/httpwire"
	"rcb/internal/sites"
)

// TestWakeDebounceMassPark is the thundering-herd regression test at the
// agent boundary: park a thousand long-polls, land ONE host mutation, and
// require that the debounced hub wakes the herd in at most two fan-out
// rounds and that the single-flight guard builds content exactly once —
// the invariant that keeps a mass wake O(participants) in deliveries but
// O(1) in rendering work. Runs race-clean (make race covers this package).
func TestWakeDebounceMassPark(t *testing.T) {
	parked := 1000
	if testing.Short() {
		parked = 200
	}
	w := newWorld(t, func(a *Agent) {
		a.WakeDebounce = 10 * time.Millisecond
	})
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")

	// Join at the wire level and take one synchronous full sync each, so
	// every participant acknowledges the current docTime and the next poll
	// has nothing to deliver — the parking precondition.
	polls := make([]*httpwire.Request, parked)
	for i := range polls {
		join := w.agent.ServeWire(httpwire.NewRequest("GET", "/"))
		if join.StatusCode != 200 {
			t.Fatalf("join %d returned %d", i, join.StatusCode)
		}
		cookie := join.Header.Get("Set-Cookie")
		pid, _, _ := strings.Cut(strings.TrimPrefix(cookie, "rcbpid="), ";")
		if pid == "" {
			t.Fatalf("join %d: no pid in Set-Cookie %q", i, cookie)
		}
		req := httpwire.NewRequest("POST", "/poll")
		req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		req.Header.Set("Cookie", "rcbpid="+pid)
		req.Body = []byte("ts=0")
		if resp := w.agent.ServeWire(req); resp.StatusCode != 200 {
			t.Fatalf("initial sync %d returned %d", i, resp.StatusCode)
		}
		polls[i] = req
	}
	base := w.agent.LatestDocTime()
	if base == 0 {
		t.Fatal("no prepared build after initial syncs")
	}

	// Park the herd: every poll acknowledges the current build and asks
	// for a long hang.
	done := make(chan *httpwire.Response, parked)
	for _, req := range polls {
		req.Body = []byte("ts=" + strconv.FormatInt(base, 10) + "&wait=10000")
		w.agent.ServeWireAsync(req, func(resp *httpwire.Response) { done <- resp })
	}
	deadline := time.Now().Add(10 * time.Second)
	for w.agent.ParkedPolls() < parked {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d polls parked", w.agent.ParkedPolls(), parked)
		}
		time.Sleep(time.Millisecond)
	}

	fanouts0 := w.agent.WakeFanouts()
	builds0 := w.agent.ContentBuilds()

	// One bump.
	if err := w.host.ApplyMutation(func(doc *dom.Document) error {
		doc.Body().SetAttr("data-herd", "woken")
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Every parked poll completes with the new content.
	for i := 0; i < parked; i++ {
		select {
		case resp := <-done:
			if resp.StatusCode != 200 {
				t.Fatalf("woken poll returned %d", resp.StatusCode)
			}
			if len(resp.Body) == 0 {
				t.Fatalf("woken poll %d completed empty: the bump was slept through", i)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("poll %d/%d never woke", i, parked)
		}
	}

	if d := w.agent.WakeFanouts() - fanouts0; d < 1 || d > 2 {
		t.Errorf("one bump of %d parked polls took %d fan-out rounds, want 1..2", parked, d)
	}
	if d := w.agent.ContentBuilds() - builds0; d != 1 {
		t.Errorf("one bump of %d parked polls cost %d content builds, want exactly 1 "+
			"(single-flight guard regressed: a mass wake must share one render)", parked, d)
	}
	if got := w.agent.LatestDocTime(); got <= base {
		t.Errorf("prepared docTime %d did not advance past %d", got, base)
	}
}

// TestWakePrecomputeWarmsDeltas pins the wake-time precomputation: run the
// hub's preWake hook over a delta-advertising fleet parked on one acked
// base, exactly as the trailing wake does, and require it to build the new
// content and the fleet's (base, target) delta before any poll is served —
// so the whole woken fleet then rides warm cache hits: the diff runs exactly
// once per distinct base and the single content build is shared.
func TestWakePrecomputeWarmsDeltas(t *testing.T) {
	const fleet = 16
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")

	polls := make([]*httpwire.Request, fleet)
	pids := make([]string, fleet)
	for i := range polls {
		join := w.agent.ServeWire(httpwire.NewRequest("GET", "/"))
		if join.StatusCode != 200 {
			t.Fatalf("join %d returned %d", i, join.StatusCode)
		}
		cookie := join.Header.Get("Set-Cookie")
		pid, _, _ := strings.Cut(strings.TrimPrefix(cookie, "rcbpid="), ";")
		pids[i] = pid
		req := httpwire.NewRequest("POST", "/poll")
		req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		req.Header.Set("Cookie", "rcbpid="+pid)
		req.Body = []byte("ts=0")
		if resp := w.agent.ServeWire(req); resp.StatusCode != 200 {
			t.Fatalf("initial sync %d returned %d", i, resp.StatusCode)
		}
		polls[i] = req
	}
	base := w.agent.LatestDocTime()

	// The host mutates; no poll has landed yet, so no build exists for the
	// new version when the trailing wake would fire.
	if err := w.host.ApplyMutation(func(doc *dom.Document) error {
		doc.Body().SetAttr("data-tick", "woken")
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	diffs0, builds0 := w.agent.DiffBuilds(), w.agent.ContentBuilds()

	// The waiters the trailing wake would have collected: the whole fleet
	// parked on one base, deltas advertised.
	woken := make([]*pollWaiter, fleet)
	for i, pid := range pids {
		woken[i] = &pollWaiter{pid: pid, ts: base, deltaOK: true}
	}
	w.agent.warmWakeDeltas(woken)

	if d := w.agent.ContentBuilds() - builds0; d != 1 {
		t.Fatalf("precompute ran %d content builds, want exactly 1", d)
	}
	if d := w.agent.DiffBuilds() - diffs0; d != 1 {
		t.Fatalf("precompute ran %d diffs for one distinct base, want exactly 1", d)
	}

	// Fan-out: every poll must be a warm hit — delta bytes out, zero
	// additional diffs or builds.
	for i, req := range polls {
		req.Body = []byte("ts=" + strconv.FormatInt(base, 10) + "&delta=1")
		resp := w.agent.ServeWire(req)
		if resp.StatusCode != 200 {
			t.Fatalf("woken poll %d returned %d", i, resp.StatusCode)
		}
		if !MessageIsDelta(resp.Body) {
			t.Fatalf("woken poll %d fell off the delta path:\n%s", i, resp.Body)
		}
	}
	if d := w.agent.DiffBuilds() - diffs0; d != 1 {
		t.Errorf("fleet fan-out re-ran the diff: %d total, want 1 (cache was cold)", d)
	}
	if d := w.agent.ContentBuilds() - builds0; d != 1 {
		t.Errorf("fleet fan-out re-built content: %d total, want 1", d)
	}
	if got := w.agent.DeltasServed(); got < fleet {
		t.Errorf("DeltasServed = %d, want at least the %d woken polls", got, fleet)
	}
}
