package core

// Live handover tests: the HandoverInit → StateSync → Complete handshake
// between two agents, the MOVED + Rcb-Relocate close protocol on the old
// address, and the snippet's relocation behavior — follow the new address
// exactly once, honor Rcb-Retry-After as a delay floor, fall back to the
// old address when the new one refuses joins.

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rcb/internal/browser"
	"rcb/internal/dom"
	"rcb/internal/httpwire"
	"rcb/internal/sites"
)

const handoverKey = "handover-key"

// receiver is a second agent process on the virtual network, ready to
// accept a handover.
type receiver struct {
	host   *browser.Browser
	agent  *Agent
	server *httpwire.Server
	addr   string
}

func newReceiver(t *testing.T, w *world, host, key string, configure func(*Agent)) *receiver {
	t.Helper()
	addr := host + ":3000"
	hb := browser.New(host, w.corpus.Network.Dialer(host))
	t.Cleanup(hb.Close)
	agent := NewAgent(hb, addr)
	agent.AllowHandover = true
	if key != "" {
		agent.Auth = NewAuthenticator(key)
	}
	if configure != nil {
		configure(agent)
	}
	l, err := w.corpus.Network.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	server := &httpwire.Server{Handler: agent}
	server.Start(l)
	t.Cleanup(server.Close)
	t.Cleanup(agent.Close)
	return &receiver{host: hb, agent: agent, server: server, addr: addr}
}

func handoverClient(w *world) *httpwire.Client {
	return httpwire.NewClient(w.corpus.Network.Dialer("host.lan"))
}

func joinWithKey(t *testing.T, w *world, loc, key string) *Snippet {
	t.Helper()
	pb := browser.New(loc, w.corpus.Network.Dialer(loc))
	t.Cleanup(pb.Close)
	pb.Client.ReadTimeout = 5 * time.Second
	s := NewSnippet(pb, "http://"+agentAddr, key)
	s.FetchObjects = false
	if err := s.Join(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestLiveHandoverEndToEnd drives the full handshake over the simulated
// network with HMAC authentication on both ends: the session moves, the old
// agent answers MOVED + Rcb-Relocate, the snippet follows exactly once, the
// replay stamps travel (a duplicate re-sent across the transfer is applied
// exactly once), and the relocated replica converges byte-identically.
func TestLiveHandoverEndToEnd(t *testing.T) {
	var decisions atomic.Int64
	policy := PolicyFunc(func(string, Action) Decision {
		decisions.Add(1)
		return Apply
	})
	w := newWorld(t, func(a *Agent) {
		a.Auth = NewAuthenticator(handoverKey)
		a.Policy = policy
	})
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	alice := joinWithKey(t, w, "alice.lan", handoverKey)
	if _, err := alice.PollOnce(); err != nil {
		t.Fatal(err)
	}

	// An action whose ack is "lost": pushed to the old agent, then replayed
	// on the piggyback path after the session has moved. The imported
	// (CID, CSeq) stamps must collapse the duplicate on the new agent.
	alice.ActionPush = true
	act := Action{Kind: ActionMouseMove, X: 9, Y: 9}
	alice.mu.Lock()
	alice.stampLocked(&act)
	alice.mu.Unlock()
	if err := alice.PushAction(act); err != nil {
		t.Fatal(err)
	}
	if got := decisions.Load(); got != 1 {
		t.Fatalf("pre-handover push reached the policy %d times, want 1", got)
	}

	rcv := newReceiver(t, w, "host2.lan", handoverKey, func(a *Agent) { a.Policy = policy })
	if err := w.agent.HandoverTo(handoverClient(w), rcv.addr); err != nil {
		t.Fatal(err)
	}
	if got := w.agent.RelocatedTo(); got != rcv.addr {
		t.Fatalf("old agent RelocatedTo = %q, want %q", got, rcv.addr)
	}
	if got := w.agent.ShedLevel(); got != ShedNone {
		t.Fatalf("old agent shed level stuck at %v after handover", got)
	}

	// The next poll on the old address is a retryable MOVED carrying the
	// new location.
	_, err := alice.PollOnce()
	if got := CloseReasonOf(err); got != CloseMoved {
		t.Fatalf("poll on old address: reason %v (%v), want MOVED", got, err)
	}
	if !CloseMoved.Retryable() {
		t.Fatal("MOVED must be retryable")
	}
	if !alice.RejoinNeeded() {
		t.Fatal("MOVED did not schedule a rejoin")
	}

	// Replay the unacked action, then rejoin: the queue travels with the
	// rejoin and must be filtered by the imported stamps.
	alice.QueueAction(act)
	if err := alice.Rejoin(); err != nil {
		t.Fatalf("relocated rejoin: %v", err)
	}
	if got := alice.Stats().Relocates; got != 1 {
		t.Fatalf("Relocates = %d, want exactly 1", got)
	}
	if got, want := alice.CurrentAgentURL(), "http://"+rcv.addr; got != want {
		t.Fatalf("CurrentAgentURL = %q, want %q", got, want)
	}
	if _, err := alice.PollOnce(); err != nil {
		t.Fatal(err)
	}
	if got := decisions.Load(); got != 1 {
		t.Fatalf("action applied %d times across the transfer, want exactly 1", got)
	}

	// The session is live on the receiver: its host document mutates and
	// the relocated participant converges byte-identically with a fresh
	// reference join at the new address.
	err = rcv.host.ApplyMutation(func(doc *dom.Document) error {
		doc.Body().SetAttr("data-handover", "landed")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	updated, err := alice.PollOnce()
	if err != nil || !updated {
		t.Fatalf("post-handover mutation poll: updated=%v err=%v", updated, err)
	}
	refb := browser.New("handref.lan", w.corpus.Network.Dialer("handref.lan"))
	t.Cleanup(refb.Close)
	ref := NewSnippet(refb, "http://"+rcv.addr, handoverKey)
	ref.FetchObjects = false
	if err := ref.Join(); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.PollOnce(); err != nil {
		t.Fatal(err)
	}
	if got, want := docHTML(t, alice.Browser), docHTML(t, refb); got != want {
		t.Fatalf("relocated replica diverged:\n got: %s\nwant: %s", got, want)
	}
}

// TestHandoverRefusedWithoutOptIn: a receiver that did not opt in answers
// 403 at init; the sender never raises the fence and keeps serving.
func TestHandoverRefusedWithoutOptIn(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	alice := w.join(t, "alice.lan")
	rcv := newReceiver(t, w, "host2.lan", "", func(a *Agent) { a.AllowHandover = false })

	err := w.agent.HandoverTo(handoverClient(w), rcv.addr)
	if err == nil || !strings.Contains(err.Error(), "403") {
		t.Fatalf("handover to non-opted-in receiver: %v, want 403 refusal", err)
	}
	if got := w.agent.RelocatedTo(); got != "" {
		t.Fatalf("sender relocated to %q after a refused handover", got)
	}
	if _, err := alice.PollOnce(); err != nil {
		t.Fatalf("sender stopped serving after a refused handover: %v", err)
	}
}

// TestJoinsRefusedDuringHandover pins the no-split-brain window: between
// init and complete the receiver refuses joins, so no fresh participant can
// race the incoming state; after complete, joins are admitted.
func TestJoinsRefusedDuringHandover(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	rcv := newReceiver(t, w, "host2.lan", "", nil)

	resp := rcv.agent.handoverInit()
	if resp.StatusCode != 200 {
		t.Fatalf("init: %d %s", resp.StatusCode, resp.Body)
	}
	token := string(resp.Body)

	pb := browser.New("eager.lan", w.corpus.Network.Dialer("eager.lan"))
	t.Cleanup(pb.Close)
	eager := NewSnippet(pb, "http://"+rcv.addr, "")
	err := eager.Join()
	if got := CloseReasonOf(err); err == nil || got == CloseNone {
		t.Fatalf("join during handover: err=%v reason=%v, want an explicit retryable refusal", err, got)
	} else if !got.Retryable() {
		t.Fatalf("join refusal during handover must be retryable, got %v", got)
	}

	state, err := w.agent.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if resp := rcv.agent.handoverState(token, string(state)); resp.StatusCode != 200 {
		t.Fatalf("state: %d %s", resp.StatusCode, resp.Body)
	}
	// A retried state sync (lost response) is acknowledged, not re-imported.
	if resp := rcv.agent.handoverState(token, string(state)); resp.StatusCode != 200 {
		t.Fatalf("replayed state: %d %s", resp.StatusCode, resp.Body)
	}
	if resp := rcv.agent.handoverComplete(token); resp.StatusCode != 200 {
		t.Fatalf("complete: %d %s", resp.StatusCode, resp.Body)
	}
	if resp := rcv.agent.handoverComplete(token); resp.StatusCode != 200 {
		t.Fatalf("replayed complete: %d %s", resp.StatusCode, resp.Body)
	}
	if err := eager.Join(); err != nil {
		t.Fatalf("join after handover complete: %v", err)
	}
}

// TestMovedRetryAfterFloorsDelay: the Rcb-Retry-After on a MOVED response
// is adopted as the snippet's pacing floor before it follows the move.
func TestMovedRetryAfterFloorsDelay(t *testing.T) {
	w := newWorld(t, func(a *Agent) { a.MovedRetryAfter = 123 * time.Millisecond })
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	alice := w.join(t, "alice.lan")
	if _, err := alice.PollOnce(); err != nil {
		t.Fatal(err)
	}
	rcv := newReceiver(t, w, "host2.lan", "", nil)
	if err := w.agent.HandoverTo(handoverClient(w), rcv.addr); err != nil {
		t.Fatal(err)
	}
	_, err := alice.PollOnce()
	if got := CloseReasonOf(err); got != CloseMoved {
		t.Fatalf("reason %v (%v), want MOVED", got, err)
	}
	if got := alice.retryAfter; got < 123*time.Millisecond {
		t.Fatalf("retryAfter after MOVED = %v, want ≥ 123ms (the advertised floor)", got)
	}
}

// TestRelocateFallbackToOldAddress: when the relocation target refuses the
// join, the snippet reverts to the old address instead of stranding itself
// on a dead one.
func TestRelocateFallbackToOldAddress(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	alice := w.join(t, "alice.lan")
	if _, err := alice.PollOnce(); err != nil {
		t.Fatal(err)
	}

	// The "new" agent is mid-handshake: it refuses joins.
	rcv := newReceiver(t, w, "host2.lan", "", nil)
	if resp := rcv.agent.handoverInit(); resp.StatusCode != 200 {
		t.Fatalf("init: %d", resp.StatusCode)
	}

	alice.mu.Lock()
	alice.relocateTo = "http://" + rcv.addr
	alice.mu.Unlock()
	if err := alice.Rejoin(); err == nil {
		t.Fatal("rejoin against a join-refusing target succeeded")
	}
	if got, want := alice.CurrentAgentURL(), "http://"+agentAddr; got != want {
		t.Fatalf("after failed relocation CurrentAgentURL = %q, want the old address %q", got, want)
	}
	if got := alice.Stats().Relocates; got != 0 {
		t.Fatalf("failed relocation counted as a relocate (%d)", got)
	}
	// The old address still serves: the fallback rejoin succeeds there.
	if err := alice.Rejoin(); err != nil {
		t.Fatalf("fallback rejoin to the old address: %v", err)
	}
}

// TestChainedHandover: A → B → C. A snippet lagging behind the first move
// follows MOVED twice and lands on the final agent — each agent in the
// chain keeps answering MOVED with its own forwarding address.
func TestChainedHandover(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	alice := w.join(t, "alice.lan")
	if _, err := alice.PollOnce(); err != nil {
		t.Fatal(err)
	}

	rb := newReceiver(t, w, "host2.lan", "", nil)
	rc := newReceiver(t, w, "host3.lan", "", nil)
	if err := w.agent.HandoverTo(handoverClient(w), rb.addr); err != nil {
		t.Fatalf("handover A→B: %v", err)
	}
	clientB := httpwire.NewClient(w.corpus.Network.Dialer("host2.lan"))
	if err := rb.agent.HandoverTo(clientB, rc.addr); err != nil {
		t.Fatalf("handover B→C: %v", err)
	}

	// Alice still points at A. Her next poll surfaces the first MOVED; the
	// rejoin against B surfaces the second (B forwards to C with its own
	// MOVED + Rcb-Relocate), and following it — as Run's backoff loop
	// would — converges on C.
	_, err := alice.PollOnce()
	if got := CloseReasonOf(err); got != CloseMoved {
		t.Fatalf("poll on A: reason %v (%v), want MOVED", got, err)
	}
	joined := false
	for attempt := 0; attempt < 6 && !joined; attempt++ {
		err := alice.Rejoin()
		switch {
		case err == nil:
			joined = true
		case CloseReasonOf(err) == CloseMoved:
			// forwarded again: the new address is captured, follow it
		default:
			t.Fatalf("rejoin attempt %d: %v", attempt, err)
		}
	}
	if !joined {
		t.Fatal("never converged on the final agent")
	}
	if got, want := alice.CurrentAgentURL(), "http://"+rc.addr; got != want {
		t.Fatalf("after chained handover CurrentAgentURL = %q, want %q", got, want)
	}
	if got := alice.Stats().Relocates; got < 1 {
		t.Fatalf("Relocates = %d, want ≥ 1", got)
	}
	if _, err := alice.PollOnce(); err != nil {
		t.Fatalf("poll on the final agent: %v", err)
	}
}
