package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"rcb/internal/dom"
	"rcb/internal/sites"
)

// waitParked polls the agent until n long-polls are parked.
func waitParked(t *testing.T, a *Agent, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for a.ParkedPolls() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: %d polls parked, want %d", a.ParkedPolls(), n)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// longPollJoin connects a participant configured for hanging-GET delivery
// and warms it onto the current document version so its next poll parks.
func longPollJoin(t *testing.T, w *world, loc string, wait time.Duration) *Snippet {
	t.Helper()
	s := w.join(t, loc)
	s.Delivery = DeliveryLongPoll
	s.LongPollWait = wait
	if _, err := s.PollOnce(); err != nil {
		t.Fatalf("warm poll for %s: %v", loc, err)
	}
	return s
}

// TestLongPollWakesOnDocChange checks the core push path: a parked poll
// completes with the new content as soon as the host document changes —
// no interval in the staleness path.
func TestLongPollWakesOnDocChange(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	s := longPollJoin(t, w, "alice.lan", 5*time.Second)

	type result struct {
		updated bool
		err     error
		took    time.Duration
	}
	done := make(chan result, 1)
	start := time.Now()
	go func() {
		updated, err := s.PollOnce()
		done <- result{updated, err, time.Since(start)}
	}()
	waitParked(t, w.agent, 1)

	err := w.host.ApplyMutation(func(doc *dom.Document) error {
		doc.Body().SetAttr("data-longpoll", "1")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	if !r.updated {
		t.Fatal("woken long-poll carried no content")
	}
	if r.took >= 5*time.Second {
		t.Fatalf("long-poll took the full hang (%v); wake-up did not fire", r.took)
	}
	var attr string
	err = s.Browser.WithDocument(func(_ string, doc *dom.Document) error {
		attr = doc.Body().AttrOr("data-longpoll", "")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attr != "1" {
		t.Fatalf("participant body data-longpoll = %q, want \"1\"", attr)
	}
}

// TestLongPollFanoutSingleFlight parks many participants and bumps the
// document once: every poll must wake with the same content while the
// Figure 3 pipeline runs exactly once — the single-flight invariant under
// the new wake path. Run with -race.
func TestLongPollFanoutSingleFlight(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")

	const n = 16
	snippets := make([]*Snippet, n)
	for i := range snippets {
		snippets[i] = longPollJoin(t, w, fmt.Sprintf("p%d.lan", i), 10*time.Second)
	}

	builds0 := w.agent.ContentBuilds()
	var wg sync.WaitGroup
	errs := make([]error, n)
	updated := make([]bool, n)
	for i, s := range snippets {
		wg.Add(1)
		go func(i int, s *Snippet) {
			defer wg.Done()
			updated[i], errs[i] = s.PollOnce()
		}(i, s)
	}
	waitParked(t, w.agent, n)

	err := w.host.ApplyMutation(func(doc *dom.Document) error {
		doc.Body().SetAttr("data-fanout", "1")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("poll %d: %v", i, errs[i])
		}
		if !updated[i] {
			t.Errorf("poll %d woke without content", i)
		}
	}
	if got := w.agent.ContentBuilds() - builds0; got != 1 {
		t.Errorf("one doc change woke %d participants with %d BuildContent runs; want exactly 1", n, got)
	}
	want := snippets[0].DocTime()
	for i, s := range snippets {
		if got := s.DocTime(); got != want {
			t.Errorf("participant %d docTime = %d, want %d (all must share one prepared message)", i, got, want)
		}
	}
	if got := w.agent.ParkedPolls(); got != 0 {
		t.Errorf("%d polls still parked after the wake", got)
	}
}

// TestHostActionWakesParkedPolls checks the outbox wake path under -race:
// N concurrent long-polls all wake on one HostAction, each carrying the
// mirrored action.
func TestHostActionWakesParkedPolls(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")

	const n = 8
	var mirrored sync.Map
	snippets := make([]*Snippet, n)
	for i := range snippets {
		i := i
		snippets[i] = longPollJoin(t, w, fmt.Sprintf("h%d.lan", i), 10*time.Second)
		snippets[i].OnUserAction = func(act Action) {
			if act.Kind == ActionMouseMove {
				mirrored.Store(i, act)
			}
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, s := range snippets {
		wg.Add(1)
		go func(i int, s *Snippet) {
			defer wg.Done()
			_, errs[i] = s.PollOnce()
		}(i, s)
	}
	waitParked(t, w.agent, n)

	start := time.Now()
	w.agent.HostAction(Action{Kind: ActionMouseMove, X: 7, Y: 9})
	wg.Wait()
	took := time.Since(start)

	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("poll %d: %v", i, errs[i])
		}
		if _, ok := mirrored.Load(i); !ok {
			t.Errorf("participant %d woke without the mirrored action", i)
		}
	}
	if took >= 10*time.Second {
		t.Fatalf("wake took the full hang (%v)", took)
	}
}

// TestDisconnectWakesParkedPoll checks the lifecycle edge: disconnecting a
// participant completes its parked poll immediately with the same 403 an
// unknown participant gets, instead of leaving it hanging until timeout.
func TestDisconnectWakesParkedPoll(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	s := longPollJoin(t, w, "leaver.lan", 10*time.Second)

	errCh := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := s.PollOnce()
		errCh <- err
	}()
	waitParked(t, w.agent, 1)

	w.agent.Disconnect("p1") // joins are sequential; the only participant is p1
	err := <-errCh
	if err == nil || !strings.Contains(err.Error(), "403") {
		t.Fatalf("disconnected long-poll returned %v, want a 403 error", err)
	}
	if took := time.Since(start); took >= 10*time.Second {
		t.Fatalf("disconnect wake took the full hang (%v)", took)
	}
}

// TestLongPollTimeoutDegradesToEmpty checks the fallback: with nothing to
// deliver, a parked poll completes at its requested hang with the §4.1.1
// empty response, counted as an empty poll like any interval-mode miss.
func TestLongPollTimeoutDegradesToEmpty(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	s := longPollJoin(t, w, "idle.lan", 80*time.Millisecond)

	start := time.Now()
	updated, err := s.PollOnce()
	took := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if updated {
		t.Fatal("idle long-poll reported content")
	}
	if took < 50*time.Millisecond {
		t.Fatalf("idle long-poll returned after %v; it never parked", took)
	}
	if got := s.Stats().EmptyPolls; got != 1 {
		t.Fatalf("EmptyPolls = %d, want 1", got)
	}
}

// TestAgentCloseWakesParkedPolls checks the drain path: Agent.Close
// completes every parked poll with the empty response, and later long-polls
// answer immediately instead of parking.
func TestAgentCloseWakesParkedPolls(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	s := longPollJoin(t, w, "drain.lan", 10*time.Second)

	done := make(chan bool, 1)
	start := time.Now()
	go func() {
		updated, err := s.PollOnce()
		if err != nil {
			t.Error(err)
		}
		done <- updated
	}()
	waitParked(t, w.agent, 1)

	w.agent.Close()
	if updated := <-done; updated {
		t.Fatal("drained poll reported content")
	}
	if took := time.Since(start); took >= 10*time.Second {
		t.Fatalf("close wake took the full hang (%v)", took)
	}
	// After Close the agent still answers, but never parks.
	start = time.Now()
	if _, err := s.PollOnce(); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took >= 10*time.Second {
		t.Fatalf("post-close poll hung (%v)", took)
	}
	if got := w.agent.ParkedPolls(); got != 0 {
		t.Fatalf("%d polls parked on a closed agent", got)
	}
}

// TestActionCarryingLongPollNeverParks guards the double-apply window: the
// agent merges piggybacked actions before deciding to park, so a poll that
// carries actions must be answered immediately — a parked-then-failed
// exchange would requeue and replay actions the host already applied.
func TestActionCarryingLongPollNeverParks(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	s := longPollJoin(t, w, "mover.lan", 10*time.Second)

	s.PointerMove(3, 4)
	start := time.Now()
	if _, err := s.PollOnce(); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("action-carrying poll parked for %v; must answer immediately", took)
	}
	if got := w.agent.ParkedPolls(); got != 0 {
		t.Fatalf("action-carrying poll left %d waiters parked", got)
	}
}

// TestParkDeniedPacesRun guards against the closed-hub busy loop: when the
// agent answers a park request instantly empty (hub closed, server alive),
// the snippet must report the denial so Run falls back to interval pacing
// instead of re-issuing at network speed.
func TestParkDeniedPacesRun(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	s := longPollJoin(t, w, "denied.lan", 10*time.Second)

	w.agent.Close()
	if _, err := s.PollOnce(); err != nil {
		t.Fatal(err)
	}
	if !s.lastParkDenied() {
		t.Fatal("instant empty answer to a park request not flagged as denied")
	}
	// A healthy timeout at the requested hang is pacing, not denial.
	w2 := newWorld(t, func(a *Agent) { a.MaxPollWait = 250 * time.Millisecond })
	w2.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	s2 := longPollJoin(t, w2, "timely.lan", 10*time.Second)
	if _, err := s2.PollOnce(); err != nil {
		t.Fatal(err)
	}
	if s2.lastParkDenied() {
		t.Fatal("server-capped timeout misread as a park denial")
	}
}

// fakeWaiter parks a no-op waiter directly on a hub and reports when it is
// fulfilled.
func fakeWaiter(t *testing.T, h *deliveryHub, pid string) (done chan struct{}) {
	t.Helper()
	done = make(chan struct{})
	w := &pollWaiter{pid: pid, fulfill: func(*pollReply) { close(done) }}
	parked, _ := h.park(w, h.snapshot(pid), time.Minute)
	if !parked {
		t.Fatalf("waiter %s refused to park", pid)
	}
	return done
}

// TestHubDebounceCoalescesBurst is the deterministic hub-level guard for
// ROADMAP's burst-wake item: with a debounce window, M rapid notifications
// produce at most two fan-outs — one leading wake, one trailing wake with
// the latest state.
func TestHubDebounceCoalescesBurst(t *testing.T) {
	const window = 150 * time.Millisecond
	h := newDeliveryHub()

	// Leading edge: a notification after a quiet period wakes immediately.
	d1 := fakeWaiter(t, h, "p1")
	h.notifyAllDebounced(window)
	select {
	case <-d1:
	case <-time.After(2 * time.Second):
		t.Fatal("leading-edge wake did not fire")
	}

	// Burst: many notifications inside the window coalesce into exactly one
	// trailing wake.
	d2 := fakeWaiter(t, h, "p2")
	for i := 0; i < 10; i++ {
		h.notifyAllDebounced(window)
	}
	select {
	case <-d2:
		t.Fatal("burst notification woke the waiter inside the window")
	case <-time.After(window / 3):
	}
	select {
	case <-d2:
	case <-time.After(2 * time.Second):
		t.Fatal("trailing wake never fired")
	}
	if got := h.wakeFanouts(); got != 2 {
		t.Fatalf("11 notifications produced %d fan-outs, want 2", got)
	}
	// The notification counter advanced on every call: parks with stale
	// snapshots must still be refused mid-burst.
	snap := h.snapshot("p3")
	h.notifyAllDebounced(window)
	w := &pollWaiter{pid: "p3", fulfill: func(*pollReply) {}}
	if parked, retry := h.park(w, snap, time.Minute); parked || !retry {
		t.Fatalf("stale-snapshot park during debounce: parked=%v retry=%v", parked, retry)
	}
	h.close()
}

// TestHubPreWakeRunsOnTrailingWake pins the precompute seam: the hub's
// preWake hook fires on the trailing edge of a debounced wake, sees exactly
// the waiters about to be woken, and completes before any of them is
// fulfilled — the ordering warmWakeDeltas relies on to warm the delta cache
// ahead of the fleet.
func TestHubPreWakeRunsOnTrailingWake(t *testing.T) {
	const window = 100 * time.Millisecond
	h := newDeliveryHub()
	var mu sync.Mutex
	var sawWoken int
	var preBeforeFulfill bool
	h.preWake = func(woken []*pollWaiter) {
		mu.Lock()
		sawWoken += len(woken)
		mu.Unlock()
	}

	// Leading edge with nobody parked: no waiters, hook must not fire.
	h.notifyAllDebounced(window)

	done := make(chan struct{})
	w := &pollWaiter{pid: "p1", ts: 7, deltaOK: true, fulfill: func(*pollReply) {
		mu.Lock()
		preBeforeFulfill = sawWoken > 0
		mu.Unlock()
		close(done)
	}}
	if parked, _ := h.park(w, h.snapshot("p1"), time.Minute); !parked {
		t.Fatal("waiter refused to park")
	}

	// Inside the window: this notification arms the trailing wake, which
	// must run the hook over the collected waiter before fulfilling it.
	h.notifyAllDebounced(window)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("trailing wake never fired")
	}
	mu.Lock()
	defer mu.Unlock()
	if sawWoken != 1 {
		t.Fatalf("preWake saw %d waiters, want exactly the 1 parked", sawWoken)
	}
	if !preBeforeFulfill {
		t.Fatal("waiter was fulfilled before preWake ran; precompute would race the fleet")
	}
	h.close()
}

// TestBurstWakeDebounceEndToEnd drives the same property over the real
// stack: parked long-poll participants, a burst of host mutations, at most
// two fan-outs, and every participant converging on the final version.
func TestBurstWakeDebounceEndToEnd(t *testing.T) {
	w := newWorld(t, func(a *Agent) { a.WakeDebounce = 100 * time.Millisecond })
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")

	const n = 4
	snippets := make([]*Snippet, n)
	for i := range snippets {
		snippets[i] = longPollJoin(t, w, fmt.Sprintf("b%d.lan", i), 10*time.Second)
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, s := range snippets {
		wg.Add(1)
		go func(i int, s *Snippet) {
			defer wg.Done()
			// Poll until this participant reaches the final version.
			for {
				updated, err := s.PollOnce()
				if err != nil {
					errs[i] = err
					return
				}
				if updated && s.Stats().ContentPolls >= 2 {
					return
				}
			}
		}(i, s)
	}
	waitParked(t, w.agent, n)

	const bumps = 8
	for tick := 1; tick <= bumps; tick++ {
		err := w.host.ApplyMutation(func(doc *dom.Document) error {
			doc.Body().SetAttr("data-burst", fmt.Sprint(tick))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("participant %d: %v", i, err)
		}
	}
	if got := w.agent.WakeFanouts(); got > 2 {
		t.Errorf("%d rapid bumps produced %d fan-outs, want ≤ 2", bumps, got)
	}
	// Everyone holds the final content.
	final := fmt.Sprint(bumps)
	for i, s := range snippets {
		// The last wake served the latest version; participants that stopped
		// at an intermediate version poll once more to drain.
		for {
			var attr string
			err := s.Browser.WithDocument(func(_ string, doc *dom.Document) error {
				attr = doc.Body().AttrOr("data-burst", "")
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if attr == final {
				break
			}
			if _, err := s.PollOnce(); err != nil {
				t.Fatalf("participant %d drain poll: %v", i, err)
			}
		}
	}
}

// TestIntervalPollUnaffectedByHub checks backward compatibility: a default
// (interval-mode) snippet never parks and still sees immediate empty
// responses — the paper's protocol byte-for-byte.
func TestIntervalPollUnaffectedByHub(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	s := w.join(t, "classic.lan")

	if updated, err := s.PollOnce(); err != nil || !updated {
		t.Fatalf("first poll: updated=%v err=%v", updated, err)
	}
	start := time.Now()
	updated, err := s.PollOnce()
	if err != nil {
		t.Fatal(err)
	}
	if updated {
		t.Fatal("no-change poll reported content")
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("interval poll blocked for %v", took)
	}
	if got := w.agent.ParkedPolls(); got != 0 {
		t.Fatalf("interval poll parked (%d waiters)", got)
	}
}
