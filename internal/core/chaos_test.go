package core

// Fault-injection chaos harness — the adversarial sibling of the randomized
// convergence harness in convergence_test.go. Where that harness drives
// synchronous polls over a healthy network, this one runs each participant's
// real Run loop concurrently and then attacks the session with the failures
// an RCB deployment actually meets: lossy and high-latency links (netsim
// loss/jitter/mobile profiles), listener drops and agent-side server
// restarts (including restarts while long-polls are parked), link flaps that
// reset every established flow, and forced disconnects with explicit close
// reasons. Scenarios are deterministic per seed and assert the three
// robustness invariants of this PR:
//
//  1. Convergence: once the network heals, every participant's document
//     serializes byte-identically to a freshly joined reference replica —
//     whatever was dropped, reset, or restarted along the way.
//  2. Exactly-once actions: every action fired during the chaos reaches the
//     agent's policy pipeline exactly once — the at-least-once retry paths
//     (push fallback, poll requeue, rejoin re-send) never lose an action and
//     the (CID, CSeq) replay filter never double-applies one.
//  3. Close-reason discipline: every terminal response a snippet observes
//     carries a non-zero close reason; bare 4xx/5xx terminations are
//     protocol violations.

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rcb/internal/browser"
	"rcb/internal/dom"
	"rcb/internal/httpwire"
	"rcb/internal/netsim"
)

// chaosScenarios is the full seeded-scenario count; -short keeps a smoke
// slice so the CI chaos stage stays quick under -race. CHAOS_SCENARIOS
// overrides it, the way SCENLAB_N sizes the scale lab, so CI smoke and
// local full runs share one harness.
var chaosScenarios = envInt("CHAOS_SCENARIOS", 64)

// chaosShards run in parallel; each shard owns its scenarios' networks.
// CHAOS_SHARDS overrides.
var chaosShards = envInt("CHAOS_SHARDS", 8)

// envInt reads a positive integer knob from the environment, falling back
// to def when unset or unparsable.
func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// chaosLinks are the participant→agent link shapes scenarios draw from,
// scaled so round trips stay in the low-millisecond range: an unshaped LAN,
// a 2%-loss jittery link, a scaled-down residential WAN, and a scaled-down
// lossy mobile link.
var chaosLinks = []netsim.Link{
	netsim.Instant,
	{Jitter: time.Millisecond, LossRate: 0.02},
	netsim.WAN.Scaled(40),
	func() netsim.Link {
		l := netsim.Mobile.Scaled(50)
		l.LossRate = 0.01
		return l
	}(),
}

// chaosFault enumerates the injectable failures.
type chaosFault int

const (
	faultServerRestart chaosFault = iota // drop the listener, restart after a pause
	faultMidParkRestart                  // same, but wait for a parked long-poll first
	faultLinkFlap                        // reset established flows, total loss for a stretch
	faultForceDisconnect                 // agent ejects a participant with a retryable reason
	chaosFaultKinds
)

func TestChaosFaultInjection(t *testing.T) {
	scenarios := chaosScenarios
	if testing.Short() {
		scenarios = 16
	}
	perShard := scenarios / chaosShards
	if perShard == 0 {
		perShard = 1
	}
	for shard := 0; shard < chaosShards && shard*perShard < scenarios; shard++ {
		shard := shard
		t.Run(fmt.Sprintf("shard%d", shard), func(t *testing.T) {
			t.Parallel()
			for i := 0; i < perShard; i++ {
				runChaosScenario(t, int64(shard*perShard+i))
				if t.Failed() {
					return
				}
			}
		})
	}
}

// runChaosScenario executes one seeded fault scenario end to end: build a
// session of 3–8 live Run loops, interleave host mutations and participant
// actions with injected faults, heal the network, and assert convergence,
// exactly-once actions, and close-reason discipline.
func runChaosScenario(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed*0x9E3779B9 + 0xC4A05))
	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("chaos seed %d: %s", seed, fmt.Sprintf(format, args...))
	}

	policy := &countingPolicy{seen: make(map[string]int)}
	w := newWorld(t, func(a *Agent) {
		a.Policy = policy
		// Short hang cap so park/timeout cycles complete many times per
		// scenario; large enough that a park is unambiguously a park.
		a.MaxPollWait = 400 * time.Millisecond
	})
	w.corpus.Network.SetSeed(seed)

	// Participant→agent traffic rides the scenario's link profile; during a
	// flap it rides a total-loss link whose every write resets. Origin-site
	// traffic stays unshaped — the faults under test are on the RCB channel.
	var flap atomic.Bool
	link := chaosLinks[rng.Intn(len(chaosLinks))]
	w.corpus.Network.SetLinkPolicy(func(from, to string) netsim.Link {
		if to != agentAddr {
			return netsim.Instant
		}
		if flap.Load() {
			return netsim.Link{LossRate: 1}
		}
		return link
	})
	w.hostNavigate(t, "http://"+convSites[rng.Intn(len(convSites))].Host()+"/")

	// The fault ledger: every CloseError any snippet surfaces, plus any
	// protocol violation (a terminal response without a reason).
	var ledgerMu sync.Mutex
	reasons := make(map[CloseReason]int)
	var violations []string
	recordErr := func(who string, err error) {
		var ce *CloseError
		if errors.As(err, &ce) {
			ledgerMu.Lock()
			reasons[ce.Reason]++
			if ce.Reason == CloseNone {
				violations = append(violations, who+": close error without reason: "+err.Error())
			}
			ledgerMu.Unlock()
			return
		}
		if msg := err.Error(); strings.Contains(msg, "returned 4") || strings.Contains(msg, "returned 5") {
			ledgerMu.Lock()
			violations = append(violations, who+": terminal response without close reason: "+msg)
			ledgerMu.Unlock()
		}
	}

	// 3–8 participants, mixed delivery configurations, each on its own live
	// Run loop with fast deterministic backoff.
	n := 3 + rng.Intn(6)
	snips := make([]*Snippet, n)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		loc := fmt.Sprintf("chaos%dp%d.lan", seed, i)
		pb := browser.New(loc, w.corpus.Network.Dialer(loc))
		t.Cleanup(pb.Close)
		// Bound every default-lane exchange so no join or interval poll can
		// block forever on a connection a fault half-killed; long-polls pass
		// their own larger per-call deadline, which takes precedence.
		pb.Client.ReadTimeout = 5 * time.Second
		s := NewSnippet(pb, "http://"+agentAddr, "")
		s.FetchObjects = false
		s.PollInterval = 20 * time.Millisecond
		s.RetryBase = 10 * time.Millisecond
		s.RetryMax = 250 * time.Millisecond
		jitterRng := rand.New(rand.NewSource(seed*101 + int64(i)))
		s.RetryRand = jitterRng.Float64
		switch rng.Intn(6) {
		case 0, 1, 2:
			s.Delivery = DeliveryLongPoll
			s.LongPollWait = 150 * time.Millisecond
			s.ActionPush = rng.Intn(2) == 0
		case 3, 4:
			// Full-duplex channel participants: every fault severs or refuses
			// the channel, so these exercise the whole degradation ladder —
			// duplex → long-poll fallback → backoff → re-upgrade — plus the
			// retransmit buffer when a write raced a reset.
			s.Delivery = DeliveryDuplex
			s.LongPollWait = 150 * time.Millisecond
			s.ActionPush = rng.Intn(2) == 0
		}
		s.DisableDelta = rng.Intn(3) == 0
		// The initial join may ride a lossy link; retry briefly.
		var jerr error
		for attempt := 0; attempt < 25; attempt++ {
			if jerr = s.Join(); jerr == nil {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if jerr != nil {
			fail("participant %d never joined: %v", i, jerr)
		}
		snips[i] = s
		who := fmt.Sprintf("p%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Run(stop, func(err error) { recordErr(who, err) })
		}()
	}
	stopped := false
	defer func() {
		if !stopped {
			close(stop)
		}
		wg.Wait()
	}()

	// Server lifecycle: faults replace w.server; track the live one.
	cur := w.server
	restart := func(downtime time.Duration) {
		cur.Close()
		time.Sleep(downtime)
		l, err := w.corpus.Network.Listen(agentAddr)
		if err != nil {
			fail("relisten: %v", err)
		}
		srv := &httpwire.Server{Handler: w.agent}
		srv.Start(l)
		t.Cleanup(srv.Close)
		cur = srv
	}

	hostGen := 0
	mutate := func() {
		hostGen++
		gen := hostGen
		err := w.host.ApplyMutation(func(doc *dom.Document) error {
			el := dom.NewElement("div")
			el.SetAttr("id", fmt.Sprintf("chaos-g%d", gen))
			el.AppendChild(dom.NewText(fmt.Sprintf("generation %d", gen)))
			doc.Body().AppendChild(el)
			return nil
		})
		if err != nil {
			fail("host mutation: %v", err)
		}
	}

	var fired []string
	token := 0
	fireAction := func() {
		token++
		i := rng.Intn(n)
		// Globally unique X per scenario → key "mm<token>" for the policy's
		// exactly-once count. dispatch routes by the snippet's configuration:
		// pushed upstream, or queued for the next poll.
		snips[i].dispatch(Action{Kind: ActionMouseMove, X: token, Y: i})
		fired = append(fired, fmt.Sprintf("mm%d", token))
	}

	forced := 0
	inject := func(f chaosFault) {
		switch f {
		case faultServerRestart:
			restart(time.Duration(2+rng.Intn(14)) * time.Millisecond)
		case faultMidParkRestart:
			// Give the long-pollers a beat to park, then pull the listener
			// out from under the parked exchanges.
			deadline := time.Now().Add(300 * time.Millisecond)
			for w.agent.ParkedPolls() == 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			restart(time.Duration(2+rng.Intn(14)) * time.Millisecond)
		case faultLinkFlap:
			flap.Store(true)
			w.corpus.Network.ResetConns(agentAddr)
			time.Sleep(time.Duration(5+rng.Intn(16)) * time.Millisecond)
			flap.Store(false)
		case faultForceDisconnect:
			parts := w.agent.Participants()
			if len(parts) == 0 {
				return
			}
			reason := CloseStaleReader
			if rng.Intn(2) == 0 {
				reason = CloseOvercommitted
			}
			w.agent.DisconnectWith(parts[rng.Intn(len(parts))].ID, reason)
			forced++
		}
	}

	// Build and shuffle the event schedule: mutations, actions, and 1–4
	// faults, executed with small pauses so the Run loops interleave.
	type event struct {
		kind  int // 0 mutate, 1 action, 2 fault
		fault chaosFault
	}
	var schedule []event
	for i := 0; i < 5+rng.Intn(5); i++ {
		schedule = append(schedule, event{kind: 0})
	}
	for i := 0; i < n+rng.Intn(n+1); i++ {
		schedule = append(schedule, event{kind: 1})
	}
	for i := 0; i < 1+rng.Intn(4); i++ {
		schedule = append(schedule, event{kind: 2, fault: chaosFault(rng.Intn(int(chaosFaultKinds)))})
	}
	rng.Shuffle(len(schedule), func(i, j int) { schedule[i], schedule[j] = schedule[j], schedule[i] })
	for _, ev := range schedule {
		switch ev.kind {
		case 0:
			mutate()
		case 1:
			fireAction()
		case 2:
			inject(ev.fault)
		}
		time.Sleep(time.Duration(2+rng.Intn(9)) * time.Millisecond)
	}

	// Heal and publish the final generation every replica must reach.
	flap.Store(false)
	mutate()
	marker := fmt.Sprintf(`id="chaos-g%d"`, hostGen)

	// Convergence wait: every participant applies the final generation and
	// every fired action reaches the policy at least once. The Run loops and
	// rejoin machinery do all the recovery work; this loop only observes.
	bodyHas := func(s *Snippet, sub string) bool {
		var ok bool
		err := s.Browser.WithDocument(func(_ string, doc *dom.Document) error {
			ok = doc.Body() != nil && strings.Contains(dom.InnerHTML(doc.Body()), sub)
			return nil
		})
		return err == nil && ok
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		done := true
		for _, s := range snips {
			if !bodyHas(s, marker) {
				done = false
				break
			}
		}
		if done {
			for _, key := range fired {
				if policy.count(key) == 0 {
					done = false
					break
				}
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			var lag []string
			for i, s := range snips {
				if !bodyHas(s, marker) {
					st := s.Stats()
					lag = append(lag, fmt.Sprintf("p%d(delivery=%d push=%v rejoins=%d pollFailures=%d last=%s)",
						i, s.Delivery, s.ActionPush, st.Rejoins, st.PollFailures, st.LastCloseReason))
				}
			}
			for _, key := range fired {
				if policy.count(key) == 0 {
					lag = append(lag, "lost action "+key)
				}
			}
			fail("no convergence after healing: %s", strings.Join(lag, ", "))
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Quiesce the loops before the byte-level comparison.
	close(stop)
	stopped = true
	wg.Wait()

	// Invariant 1 — convergence: byte-identical to a fresh reference join.
	refLoc := fmt.Sprintf("chaos%dref.lan", seed)
	rb := browser.New(refLoc, w.corpus.Network.Dialer(refLoc))
	t.Cleanup(rb.Close)
	rb.Client.ReadTimeout = 5 * time.Second
	ref := NewSnippet(rb, "http://"+agentAddr, "")
	ref.FetchObjects = false
	// The reference rides the same (possibly lossy) link profile; a reset on
	// its exchanges is scenario noise, not a finding. Retry briefly.
	var refErr error
	for attempt := 0; attempt < 25; attempt++ {
		if refErr = ref.Join(); refErr == nil {
			if _, refErr = ref.PollOnce(); refErr == nil {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if refErr != nil {
		fail("reference replica never synced: %v", refErr)
	}
	want := docHTML(t, rb)
	for i, s := range snips {
		if got := docHTML(t, s.Browser); got != want {
			fail("participant %d diverged after chaos:\n got: %s\nwant: %s", i, got, want)
		}
	}

	// Invariant 2 — exactly-once: the at-least-once retries delivered every
	// action, and the replay filter collapsed every duplicate.
	for _, key := range fired {
		if got := policy.count(key); got != 1 {
			fail("action %s processed %d times, want exactly 1", key, got)
		}
	}

	// Invariant 3 — close-reason discipline: no bare terminations, and every
	// forced disconnect surfaced as an explicit reason on the wire.
	ledgerMu.Lock()
	defer ledgerMu.Unlock()
	if len(violations) > 0 {
		fail("close-reason violations: %s", strings.Join(violations, "; "))
	}
	if forced > 0 {
		// The exact reason can surface as UNKNOWN when a flap ate the
		// original close response and the snippet learned of its removal one
		// poll later — what matters is that some explicit reason arrived.
		total := 0
		for r, c := range reasons {
			if r != CloseNone {
				total += c
			}
		}
		if total == 0 {
			fail("%d forced disconnects but no close reason ever surfaced", forced)
		}
	}
}
