package core

// Tests for the incremental deltaContent path: codec round trips, the
// fallback rules (first poll, base mismatch, oversized delta, region
// change), snippet-side resync after a poisoned delta, convergence over the
// site corpus, and — under -race — the single-flight guard for concurrent
// polls spanning mixed base versions.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"rcb/internal/dom"
	"rcb/internal/sites"
)

// hostEdit applies a small canonical mutation to the host page: one body
// attribute plus one status text — the "small edit" workload of the delta
// benchmarks.
func hostEdit(t *testing.T, w *world, tick int) {
	t.Helper()
	err := w.host.ApplyMutation(func(doc *dom.Document) error {
		doc.Body().SetAttr("data-tick", fmt.Sprint(tick))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// hostBodyHTML returns what the host's current body serializes to through
// the generation pipeline — the ground truth participants must converge on.
func hostBodyHTML(t *testing.T, w *world, cacheMode bool) string {
	t.Helper()
	prep, err := w.agent.BuildContent(cacheMode)
	if err != nil {
		t.Fatal(err)
	}
	return prep.content.Body.Inner
}

func TestPatchCodecRoundTrip(t *testing.T) {
	old := dom.Parse(`<html><head><title>a</title></head><body class="x">` +
		`<div id="k">text &amp; more<b>bold</b></div><ul><li>1</li><li>2</li></ul></body></html>`)
	new := dom.Parse(`<html><head><title>b</title></head><body class="y">` +
		`<ul><li>1</li><li>3</li><li>4</li></ul><div id="k">changed<i>it's "quoted"</i></div><script>if(a<b){}</script></body></html>`)
	patches := dom.Diff(old.Root, new.Root)
	if len(patches) == 0 {
		t.Fatal("no patches to encode")
	}
	enc := string(appendPatches(nil, patches))
	decoded, err := decodePatches(enc)
	if err != nil {
		t.Fatalf("decode: %v\nencoded: %q", err, enc)
	}
	if err := dom.Apply(old.Root, decoded); err != nil {
		t.Fatalf("apply decoded: %v", err)
	}
	if got, want := dom.OuterHTML(old.Root), dom.OuterHTML(new.Root); got != want {
		t.Fatalf("decoded script diverged:\n got %s\nwant %s", got, want)
	}
}

func TestPatchCodecRejectsMalformed(t *testing.T) {
	good := string(appendPatches(nil, []dom.Patch{{Op: dom.OpSetText, Path: "0", Text: "hi"}}))
	cases := []string{
		"", "x", "1;", "1;T", "1;T1:0", "2;" + good[2:],
		good + "trailing", "1;Z1:0", "1;I1:0-5;t2:xx",
		"99999999999999999999;", "1;T3:ab",
	}
	for _, c := range cases {
		if _, err := decodePatches(c); err == nil {
			t.Errorf("decodePatches(%q) accepted malformed input", c)
		}
	}
	if _, err := decodePatches(good); err != nil {
		t.Fatalf("control case rejected: %v", err)
	}
}

func TestDeltaMessageRoundTrip(t *testing.T) {
	d := &DeltaContent{
		DocTime:     42,
		BaseDocTime: 41,
		HasHead:     true,
		Head:        []HeadChild{{Tag: "title", Inner: "new title"}},
		Body: []dom.Patch{
			{Op: dom.OpSetAttrs, Path: "", Attrs: []dom.Attr{{Name: "class", Value: "x&y\"z"}}},
			{Op: dom.OpSetText, Path: "0.1", Text: "multi\nline ünïcødé"},
			{Op: dom.OpInsert, Path: "0", Index: 2, Node: dom.Parse(`<div id="n">x</div>`).Root},
		},
		UserActions: []Action{{Kind: ActionMouseMove, X: 1, Y: 2, From: "p9"}},
	}
	raw := d.Marshal()
	if !MessageIsDelta(raw) {
		t.Fatal("marshaled delta not sniffed as delta")
	}
	if MessageIsDelta([]byte("<?xml version='1.0' encoding='utf-8'?>\n<newContent>\n")) {
		t.Fatal("newContent sniffed as delta")
	}
	got, err := UnmarshalDelta(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.DocTime != 42 || got.BaseDocTime != 41 || !got.HasHead {
		t.Fatalf("header fields = %+v", got)
	}
	if len(got.Head) != 1 || got.Head[0].Inner != "new title" {
		t.Fatalf("head = %+v", got.Head)
	}
	if len(got.Body) != 3 || got.Body[1].Text != "multi\nline ünïcødé" {
		t.Fatalf("body patches = %+v", got.Body)
	}
	if len(got.UserActions) != 1 || got.UserActions[0].From != "p9" {
		t.Fatalf("actions = %+v", got.UserActions)
	}
	if len(got.FrameSet) != 0 || len(got.NoFrames) != 0 {
		t.Fatalf("phantom region patches: %+v", got)
	}
}

// TestDeltaSmallEditServesPatch is the core happy path: after a first full
// sync, a small host edit reaches the participant as a deltaContent message
// that is far smaller than the snapshot, and the applied document matches
// the host's generated content exactly.
func TestDeltaSmallEditServesPatch(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	alice := w.join(t, "alice.lan")
	if updated, err := alice.PollOnce(); err != nil || !updated {
		t.Fatalf("first poll: updated=%v err=%v", updated, err)
	}
	if got := w.agent.DeltasServed(); got != 0 {
		t.Fatalf("first poll served a delta (%d); it has no base", got)
	}

	hostEdit(t, w, 1)
	updated, err := alice.PollOnce()
	if err != nil || !updated {
		t.Fatalf("delta poll: updated=%v err=%v", updated, err)
	}
	if got := w.agent.DeltasServed(); got != 1 {
		t.Fatalf("DeltasServed = %d, want 1", got)
	}
	st := alice.Stats()
	if st.DeltaPolls != 1 || st.DeltaFailures != 0 {
		t.Fatalf("snippet stats = %+v", st)
	}
	if got, want := participantBodyHTML(t, alice), hostBodyHTML(t, w, false); got != want {
		t.Fatalf("participant diverged after delta:\n got %s\nwant %s", got, want)
	}
	// A second small edit rides a second delta: the base rotated correctly.
	hostEdit(t, w, 2)
	if updated, err := alice.PollOnce(); err != nil || !updated {
		t.Fatalf("second delta poll: updated=%v err=%v", updated, err)
	}
	if got := alice.Stats().DeltaPolls; got != 2 {
		t.Fatalf("DeltaPolls = %d, want 2", got)
	}
	if got, want := participantBodyHTML(t, alice), hostBodyHTML(t, w, false); got != want {
		t.Fatal("participant diverged after second delta")
	}
}

// TestDeltaWireBytesAreSmall pins the point of the protocol: the delta for
// a one-attribute edit must be a small fraction of the full snapshot.
func TestDeltaWireBytesAreSmall(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	alice := w.join(t, "alice.lan")
	alice.PollOnce()
	hostEdit(t, w, 1)

	prep, err := w.agent.contentForMode(false)
	if err != nil {
		t.Fatal(err)
	}
	d := w.agent.deltaFor(false, alice.DocTime(), prep)
	if d == nil {
		t.Fatal("no delta for a small edit")
	}
	if len(d.xml)*4 > len(prep.xml) {
		t.Fatalf("delta %dB vs full %dB; expected ≤ 25%%", len(d.xml), len(prep.xml))
	}
}

// TestDeltaBaseMismatchFallsBackToFull: a participant whose base has fallen
// off the delta-base ring (more than ring-depth builds behind) must get the
// full snapshot.
func TestDeltaBaseMismatchFallsBackToFull(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	alice := w.join(t, "alice.lan")
	bob2 := w.join(t, "bob2.lan")
	alice.PollOnce()
	bob2.PollOnce()

	// One more edit than the ring retains, with only bob2 keeping up.
	for i := 1; i <= DefaultDeltaRingDepth+1; i++ {
		hostEdit(t, w, i)
		if _, err := bob2.PollOnce(); err != nil { // bob2 is delta-eligible each time
			t.Fatal(err)
		}
	}

	// alice's base is now beyond the ring: full snapshot, not a delta.
	served := w.agent.DeltasServed()
	updated, err := alice.PollOnce()
	if err != nil || !updated {
		t.Fatalf("stale poll: updated=%v err=%v", updated, err)
	}
	if got := w.agent.DeltasServed(); got != served {
		t.Fatal("off-ring-base poll was served a delta")
	}
	if alice.Stats().DeltaPolls != 0 {
		t.Fatal("snippet recorded a delta poll")
	}
	if got, want := participantBodyHTML(t, alice), hostBodyHTML(t, w, false); got != want {
		t.Fatal("stale participant did not converge on the snapshot")
	}
}

// TestDeltaRingServesOlderBases: a participant up to ring-depth builds
// behind is still served an incremental delta against its retained base —
// the multi-version ring's whole point — and converges byte-identically.
func TestDeltaRingServesOlderBases(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	alice := w.join(t, "alice.lan")
	bob2 := w.join(t, "bob2.lan")
	alice.PollOnce()
	bob2.PollOnce()

	// Ring-depth edits, with only bob2 keeping up: alice's base is now the
	// oldest build the ring still retains.
	for i := 1; i <= DefaultDeltaRingDepth; i++ {
		hostEdit(t, w, i)
		if _, err := bob2.PollOnce(); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.agent.DeltaBasesRetained(); got != DefaultDeltaRingDepth {
		t.Fatalf("DeltaBasesRetained = %d, want %d", got, DefaultDeltaRingDepth)
	}

	served := w.agent.DeltasServed()
	updated, err := alice.PollOnce()
	if err != nil || !updated {
		t.Fatalf("lagging poll: updated=%v err=%v", updated, err)
	}
	if got := w.agent.DeltasServed(); got != served+1 {
		t.Fatalf("DeltasServed advanced by %d, want 1 (ring base should serve a delta)", got-served)
	}
	if alice.Stats().DeltaPolls != 1 {
		t.Fatalf("snippet DeltaPolls = %d, want 1", alice.Stats().DeltaPolls)
	}
	if got, want := participantBodyHTML(t, alice), hostBodyHTML(t, w, false); got != want {
		t.Fatal("lagging participant diverged after ring delta")
	}
}

// TestDeltaOversizedFallsBackToFull: when the edit script would be bigger
// than the snapshot itself — here, a mass removal whose per-patch overhead
// dwarfs the tiny resulting page — the agent must serve the snapshot.
func TestDeltaOversizedFallsBackToFull(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	alice := w.join(t, "alice.lan")
	alice.PollOnce()

	// Blow the body up to 1500 direct children (this poll is a normal,
	// efficient delta: one big insert run).
	err := w.host.ApplyMutation(func(doc *dom.Document) error {
		body := doc.Body()
		for i := 0; i < 1500; i++ {
			el := dom.NewElement("i")
			el.AppendChild(dom.NewText("x"))
			body.AppendChild(el)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if updated, err := alice.PollOnce(); err != nil || !updated {
		t.Fatalf("grow poll: updated=%v err=%v", updated, err)
	}

	// Now collapse the body to almost nothing: the script would be ~1500
	// removes — far more bytes than the tiny full snapshot.
	err = w.host.ApplyMutation(func(doc *dom.Document) error {
		body := doc.Body()
		body.RemoveAllChildren()
		body.AppendChild(dom.NewText(strings.Repeat("tiny", 3)))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	diffs0, served0 := w.agent.DiffBuilds(), w.agent.DeltasServed()
	base := alice.DocTime()
	updated, err := alice.PollOnce()
	if err != nil || !updated {
		t.Fatalf("collapse poll: updated=%v err=%v", updated, err)
	}
	if got := w.agent.DiffBuilds() - diffs0; got != 1 {
		t.Fatalf("DiffBuilds advanced by %d, want 1 (the oversized verdict is computed once)", got)
	}
	if got := w.agent.DeltasServed() - served0; got != 0 {
		t.Fatalf("oversized delta was served (%d)", got)
	}
	if got, want := participantBodyHTML(t, alice), hostBodyHTML(t, w, false); got != want {
		t.Fatal("participant did not converge on the snapshot")
	}
	// The oversized verdict is cached: another delta query for the same
	// (base, target) pair must return the recorded fallback, not re-diff.
	prep, err := w.agent.contentForMode(false)
	if err != nil {
		t.Fatal(err)
	}
	if d := w.agent.deltaFor(false, base, prep); d != nil {
		t.Fatal("cached oversized verdict re-offered a delta")
	}
	if got := w.agent.DiffBuilds() - diffs0; got != 1 {
		t.Fatalf("DiffBuilds = %d after re-probe, want 1", got)
	}
}

// TestDeltaDisabledKnobs: both the agent-wide and snippet-side switches
// force the paper's full-snapshot protocol.
func TestDeltaDisabledKnobs(t *testing.T) {
	w := newWorld(t, func(a *Agent) { a.DisableDelta = true })
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	alice := w.join(t, "alice.lan")
	alice.PollOnce()
	hostEdit(t, w, 1)
	if updated, err := alice.PollOnce(); err != nil || !updated {
		t.Fatalf("updated=%v err=%v", updated, err)
	}
	if w.agent.DeltasServed() != 0 || alice.Stats().DeltaPolls != 0 {
		t.Fatal("agent-side DisableDelta did not stick")
	}

	w2 := newWorld(t, nil)
	w2.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	carol := w2.join(t, "carol.lan")
	carol.DisableDelta = true
	carol.PollOnce()
	hostEdit(t, w2, 1)
	if updated, err := carol.PollOnce(); err != nil || !updated {
		t.Fatalf("updated=%v err=%v", updated, err)
	}
	if w2.agent.DeltasServed() != 0 || carol.Stats().DeltaPolls != 0 {
		t.Fatal("snippet-side DisableDelta did not stick")
	}
}

// TestDeltaRegionChangeFallsBack: a body→frameset transition cannot be
// patched (the region set changed), so the poll gets the full snapshot and
// the snippet's cleanup step handles the swap.
func TestDeltaRegionChangeFallsBack(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	alice := w.join(t, "alice.lan")
	alice.PollOnce()

	err := w.host.ApplyMutation(func(doc *dom.Document) error {
		body := doc.Body()
		doc.Root.RemoveChild(body)
		fs := dom.NewElement("frameset")
		fs.SetAttr("cols", "50%,50%")
		doc.Root.AppendChild(fs)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	updated, err := alice.PollOnce()
	if err != nil || !updated {
		t.Fatalf("poll: updated=%v err=%v", updated, err)
	}
	if got := w.agent.DeltasServed(); got != 0 {
		t.Fatal("region transition was served as a delta")
	}
	err = alice.Browser.WithDocument(func(_ string, doc *dom.Document) error {
		if doc.Body() != nil {
			t.Error("participant still has a body after frameset transition")
		}
		if doc.FrameSet() == nil {
			t.Error("participant has no frameset")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDeltaHeadChangeShipsFullHead: a head mutation rides the delta as the
// full head-children list and rebuilds the participant head, snippet
// element preserved.
func TestDeltaHeadChangeShipsFullHead(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	alice := w.join(t, "alice.lan")
	alice.PollOnce()

	err := w.host.ApplyMutation(func(doc *dom.Document) error {
		title := doc.Head().FirstChildElement("title")
		title.ReplaceChildren(dom.NewText("retitled by delta"))
		doc.Body().SetAttr("data-tick", "1")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if updated, err := alice.PollOnce(); err != nil || !updated {
		t.Fatalf("updated=%v err=%v", updated, err)
	}
	if alice.Stats().DeltaPolls != 1 {
		t.Fatal("head change did not ride a delta")
	}
	err = alice.Browser.WithDocument(func(_ string, doc *dom.Document) error {
		title := doc.Head().FirstChildElement("title")
		if title == nil || title.TextContent() != "retitled by delta" {
			t.Errorf("title = %v", title)
		}
		if doc.ByID("rcb-ajax-snippet") == nil {
			t.Error("snippet element lost during delta head rebuild")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDeltaPatchFailureResyncs: a delta whose script does not apply must
// flag the failure, reset the acknowledged timestamp, and let the next poll
// repair the participant with a full snapshot.
func TestDeltaPatchFailureResyncs(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	alice := w.join(t, "alice.lan")
	alice.PollOnce()

	// Poison the participant's base behind the memo's back: the agent's
	// next delta addresses paths that no longer resolve.
	err := alice.Browser.ApplyMutation(func(doc *dom.Document) error {
		doc.Body().RemoveAllChildren()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	hostEdit(t, w, 1)
	updated, err := alice.PollOnce()
	if err == nil {
		// The small edit may only touch the body attribute list, which still
		// applies; force a structural edit to trip the path check.
		err = w.host.ApplyMutation(func(doc *dom.Document) error {
			doc.Body().Children[0].AppendChild(dom.NewText("structural"))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		updated, err = alice.PollOnce()
	}
	if err == nil || updated {
		t.Fatalf("poisoned delta applied cleanly (updated=%v)", updated)
	}
	if got := alice.Stats().DeltaFailures; got == 0 {
		t.Fatal("delta failure not counted")
	}
	if got := alice.DocTime(); got != 0 {
		t.Fatalf("docTime = %d after failed delta, want 0 (resync)", got)
	}
	// The next poll repairs everything with a full snapshot.
	updated, err = alice.PollOnce()
	if err != nil || !updated {
		t.Fatalf("repair poll: updated=%v err=%v", updated, err)
	}
	if got, want := participantBodyHTML(t, alice), hostBodyHTML(t, w, false); got != want {
		t.Fatal("participant did not repair after failed delta")
	}
}

// TestDeltaConvergesAcrossCorpus drives multi-step delta sessions over a
// spread of real corpus pages: every small edit must arrive as a delta and
// leave the participant byte-identical to the host's generated content.
func TestDeltaConvergesAcrossCorpus(t *testing.T) {
	for _, spec := range []sites.SiteSpec{sites.Table1[0], sites.Table1[1], sites.Table1[7], sites.Table1[13], sites.Table1[19]} {
		t.Run(spec.Name, func(t *testing.T) {
			w := newWorld(t, nil)
			w.hostNavigate(t, "http://"+spec.Host()+"/")
			alice := w.join(t, "alice.lan")
			if updated, err := alice.PollOnce(); err != nil || !updated {
				t.Fatalf("first poll: updated=%v err=%v", updated, err)
			}
			for tick := 1; tick <= 3; tick++ {
				hostEdit(t, w, tick)
				updated, err := alice.PollOnce()
				if err != nil || !updated {
					t.Fatalf("tick %d: updated=%v err=%v", tick, updated, err)
				}
				if got, want := participantBodyHTML(t, alice), hostBodyHTML(t, w, false); got != want {
					t.Fatalf("tick %d diverged:\n got %s\nwant %s", tick, got, want)
				}
			}
			if got := alice.Stats().DeltaPolls; got != 3 {
				t.Fatalf("DeltaPolls = %d, want 3", got)
			}
			if got := alice.Stats().DeltaFailures; got != 0 {
				t.Fatalf("DeltaFailures = %d", got)
			}
		})
	}
}

// TestDeltaSurvivesUnnormalizedTextNodes guards the base-tree equivalence
// rule: DOM-API mutations can leave empty text nodes and adjacent text
// runs in the host's live document — shapes that serialization erases, so
// the participant's parsed copy indexes its children differently than the
// agent's clone. Deltas must be diffed against the participant-equivalent
// tree; otherwise a patch can fail paths (resync loop) or, worse, land on
// the wrong sibling and silently diverge the participant.
func TestDeltaSurvivesUnnormalizedTextNodes(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	alice := w.join(t, "alice.lan")
	if updated, err := alice.PollOnce(); err != nil || !updated {
		t.Fatalf("first poll: updated=%v err=%v", updated, err)
	}

	// Mutation 1: plant the hostile shapes — an element whose only child is
	// an empty text node, two adjacent text nodes, and a marker element
	// after them whose index shifts if anything miscounts.
	err := w.host.ApplyMutation(func(doc *dom.Document) error {
		body := doc.Body()
		span := dom.NewElement("span")
		span.SetAttr("id", "empty-holder")
		span.AppendChild(dom.NewText(""))
		body.AppendChild(span)
		body.AppendChild(dom.NewText("a"))
		body.AppendChild(dom.NewText("b"))
		marker := dom.NewElement("u")
		marker.SetAttr("id", "marker")
		marker.AppendChild(dom.NewText("keep me"))
		body.AppendChild(marker)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if updated, err := alice.PollOnce(); err != nil || !updated {
		t.Fatalf("plant poll: updated=%v err=%v", updated, err)
	}
	if got, want := participantBodyHTML(t, alice), hostBodyHTML(t, w, false); got != want {
		t.Fatalf("diverged after planting:\n got %s\nwant %s", got, want)
	}

	// Mutation 2: edit right next to the unnormalized nodes — clear the
	// empty-holder's text sibling region and remove the marker. Patch paths
	// computed against the raw clone would shift by the erased nodes.
	err = w.host.ApplyMutation(func(doc *dom.Document) error {
		body := doc.Body()
		marker := doc.ByID("marker")
		if marker == nil {
			return fmt.Errorf("marker lost")
		}
		body.RemoveChild(marker)
		holder := doc.ByID("empty-holder")
		holder.ReplaceChildren(dom.NewText("now filled"))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	updated, err := alice.PollOnce()
	if err != nil || !updated {
		t.Fatalf("edit poll: updated=%v err=%v", updated, err)
	}
	if got := alice.Stats().DeltaFailures; got != 0 {
		t.Fatalf("DeltaFailures = %d; unnormalized text nodes broke the delta path", got)
	}
	if got, want := participantBodyHTML(t, alice), hostBodyHTML(t, w, false); got != want {
		t.Fatalf("participant silently diverged:\n got %s\nwant %s", got, want)
	}
	if alice.Stats().DeltaPolls < 2 {
		t.Fatalf("edits did not ride deltas: %+v", alice.Stats())
	}
}

// TestConcurrentMixedBaseDeltaSingleFlight is the -race guard for the delta
// cache: half the participants acknowledge the newest replaced build, half
// the one before it — both retained in the delta-base ring — and all poll
// concurrently. Exactly one diff runs per distinct (base, target) pair, and
// every poll rides a delta against its own base.
func TestConcurrentMixedBaseDeltaSingleFlight(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")

	const n = 16
	snippets := make([]*Snippet, n)
	for i := range snippets {
		snippets[i] = w.join(t, fmt.Sprintf("mix%d.lan", i))
		if _, err := snippets[i].PollOnce(); err != nil {
			t.Fatal(err)
		}
	}
	// Fresh participants (ts of build 1). Advance half to build 2, leaving
	// the other half at build 1 — after the next edit both bases live in
	// the ring, at different depths.
	hostEdit(t, w, 1)
	for i := 0; i < n/2; i++ {
		if _, err := snippets[i].PollOnce(); err != nil {
			t.Fatal(err)
		}
	}
	hostEdit(t, w, 2)

	diffs0, served0 := w.agent.DiffBuilds(), w.agent.DeltasServed()
	deltaPolls0 := make([]int64, n)
	for i, s := range snippets {
		deltaPolls0[i] = s.Stats().DeltaPolls
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, s := range snippets {
		wg.Add(1)
		go func(i int, s *Snippet) {
			defer wg.Done()
			updated, err := s.PollOnce()
			if err == nil && !updated {
				err = fmt.Errorf("poll %d carried no content", i)
			}
			errs[i] = err
		}(i, s)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("poll %d: %v", i, err)
		}
	}
	if got := w.agent.DiffBuilds() - diffs0; got != 2 {
		t.Errorf("DiffBuilds advanced by %d for two distinct (base, target) pairs, want 2", got)
	}
	if got := w.agent.DeltasServed() - served0; got != int64(n) {
		t.Errorf("DeltasServed advanced by %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		if got := snippets[i].Stats().DeltaPolls - deltaPolls0[i]; got != 1 {
			t.Errorf("snippet %d delta polls advanced by %d, want 1", i, got)
		}
	}
	want := hostBodyHTML(t, w, false)
	for i, s := range snippets {
		if participantBodyHTML(t, s) != want {
			t.Errorf("participant %d diverged", i)
		}
	}
}

// TestDeltaLongPollWake: a parked long-poll woken by a small host edit is
// served the delta, not the snapshot — the deltaOK flag survives parking.
func TestDeltaLongPollWake(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	s := longPollJoin(t, w, "alice.lan", 5e9)

	done := make(chan error, 1)
	go func() {
		updated, err := s.PollOnce()
		if err == nil && !updated {
			err = fmt.Errorf("woken poll carried no content")
		}
		done <- err
	}()
	waitParked(t, w.agent, 1)
	hostEdit(t, w, 1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().DeltaPolls; got != 1 {
		t.Fatalf("woken long-poll DeltaPolls = %d, want 1", got)
	}
	if got, want := participantBodyHTML(t, s), hostBodyHTML(t, w, false); got != want {
		t.Fatal("woken participant diverged")
	}
}

// TestDeltaMirrorActionSplice: pending mirror actions splice into the
// shared delta bytes exactly as they do into the full snapshot.
func TestDeltaMirrorActionSplice(t *testing.T) {
	w := newWorld(t, nil)
	w.hostNavigate(t, "http://"+sites.Table1[1].Host()+"/")
	alice := w.join(t, "alice.lan")
	bob2 := w.join(t, "bob2.lan")
	alice.PollOnce()
	bob2.PollOnce()

	var mirrored []Action
	bob2.OnUserAction = func(a Action) { mirrored = append(mirrored, a) }

	alice.PointerMove(9, 9)
	if _, err := alice.PollOnce(); err != nil {
		t.Fatal(err)
	}
	hostEdit(t, w, 1)
	updated, err := bob2.PollOnce()
	if err != nil || !updated {
		t.Fatalf("updated=%v err=%v", updated, err)
	}
	if bob2.Stats().DeltaPolls != 1 {
		t.Fatal("mirror-carrying response was not a delta")
	}
	if len(mirrored) != 1 || mirrored[0].Kind != ActionMouseMove {
		t.Fatalf("mirrored = %+v", mirrored)
	}
}
