package core

import (
	"fmt"
	"sync"
	"testing"

	"rcb/internal/dom"
	"rcb/internal/sites"
)

// TestConcurrentPollSingleFlight drives 32 participants polling
// concurrently across a document version bump and asserts the single-flight
// guard: the Figure 3 pipeline runs exactly once per (version, mode), and
// every participant receives the same docTime. Run with -race.
func TestConcurrentPollSingleFlight(t *testing.T) {
	w := newWorld(t, nil)
	spec := sites.Table1[1] // google.com
	w.hostNavigate(t, "http://"+spec.Host()+"/")

	const n = 32
	snippets := make([]*Snippet, n)
	for i := range snippets {
		snippets[i] = w.join(t, fmt.Sprintf("p%d.lan", i))
	}
	// Warm every participant onto the current version so the bump below is
	// the only thing left to generate.
	for i, s := range snippets {
		if _, err := s.PollOnce(); err != nil {
			t.Fatalf("warm poll %d: %v", i, err)
		}
	}

	builds0 := w.agent.ContentBuilds()
	err := w.host.ApplyMutation(func(doc *dom.Document) error {
		doc.Body().SetAttr("data-bump", "1")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	updated := make([]bool, n)
	for i, s := range snippets {
		wg.Add(1)
		go func(i int, s *Snippet) {
			defer wg.Done()
			updated[i], errs[i] = s.PollOnce()
		}(i, s)
	}
	wg.Wait()

	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("poll %d: %v", i, errs[i])
		}
		if !updated[i] {
			t.Errorf("poll %d carried no content after version bump", i)
		}
	}
	if got := w.agent.ContentBuilds() - builds0; got != 1 {
		t.Errorf("BuildContent ran %d times for one (version, mode); want exactly 1", got)
	}
	want := snippets[0].DocTime()
	if want == 0 {
		t.Fatal("docTime not advanced")
	}
	for i, s := range snippets {
		if got := s.DocTime(); got != want {
			t.Errorf("participant %d docTime = %d, want %d (all must share one prepared message)", i, got, want)
		}
	}
}

// TestConcurrentPollMixedModes bumps the document with participants in both
// cache and non-cache mode polling at once: one build per mode, and the two
// modes must not bleed content into each other.
func TestConcurrentPollMixedModes(t *testing.T) {
	w := newWorld(t, nil)
	spec := sites.Table1[1]
	w.hostNavigate(t, "http://"+spec.Host()+"/")

	const n = 16
	snippets := make([]*Snippet, n)
	for i := range snippets {
		snippets[i] = w.join(t, fmt.Sprintf("m%d.lan", i))
	}
	if got := len(w.agent.Participants()); got != n {
		t.Fatalf("got %d participants, want %d", got, n)
	}
	// Joins are sequential, so snippet i holds cookie pid p(i+1).
	for i := range snippets {
		if err := w.agent.SetParticipantMode(fmt.Sprintf("p%d", i+1), i%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range snippets {
		if _, err := s.PollOnce(); err != nil {
			t.Fatalf("warm poll %d: %v", i, err)
		}
	}

	builds0 := w.agent.ContentBuilds()
	err := w.host.ApplyMutation(func(doc *dom.Document) error {
		doc.Body().SetAttr("data-bump", "2")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, s := range snippets {
		wg.Add(1)
		go func(i int, s *Snippet) {
			defer wg.Done()
			_, errs[i] = s.PollOnce()
		}(i, s)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("poll %d: %v", i, errs[i])
		}
	}
	if got := w.agent.ContentBuilds() - builds0; got != 2 {
		t.Errorf("BuildContent ran %d times for one version across two modes; want exactly 2", got)
	}
	// Each mode shares one prepared message, so docTime must agree within a
	// mode group (each build mints its own timestamp, so the two groups may
	// differ from each other by a tick).
	wantByMode := map[bool]int64{}
	for i, s := range snippets {
		cache := i%2 == 0
		got := s.DocTime()
		if want, ok := wantByMode[cache]; !ok {
			wantByMode[cache] = got
		} else if got != want {
			t.Errorf("participant %d (cache=%v) docTime = %d, want %d", i, cache, got, want)
		}
	}
}

// TestApplyMemoFirstApplyCleansHead guards the memo's never-applied state:
// a fresh memo must not treat "no head children yet" as equal to content
// with an empty head list — the first Apply always runs head cleanup, or a
// joining participant keeps the initial page's title forever.
func TestApplyMemoFirstApplyCleansHead(t *testing.T) {
	doc := dom.Parse(`<!DOCTYPE html><html><head><title>RCB Session</title>` +
		`<script id="rcb-ajax-snippet">/*snippet*/</script></head>` +
		`<body><div id="rcb-status">Connecting...</div></body></html>`)
	content := &NewContent{
		DocTime:     1,
		HasDocument: true,
		Body:        &TopElement{Inner: "<p>empty-head page</p>"},
	}
	var memo ApplyMemo
	if err := memo.Apply(doc, content); err != nil {
		t.Fatal(err)
	}
	kids := doc.Head().ChildElements()
	if len(kids) != 1 || kids[0].AttrOr("id", "") != "rcb-ajax-snippet" {
		t.Fatalf("head after first memoized apply = %d children (want only the snippet): %v", len(kids), kids)
	}
	// Second apply with identical content must be a no-op skip, not a wipe.
	if err := memo.Apply(doc, content); err != nil {
		t.Fatal(err)
	}
	if got := len(doc.Head().ChildElements()); got != 1 {
		t.Fatalf("head after second apply = %d children, want 1", got)
	}
}

// TestPreparedContentUserActionSplice checks the zero-copy assembly: the
// spliced message must parse as valid Figure 4 content carrying both the
// shared document payload and the per-participant actions, while the cached
// bytes stay untouched and action-free.
func TestPreparedContentUserActionSplice(t *testing.T) {
	w := newWorld(t, nil)
	spec := sites.Table1[1]
	w.hostNavigate(t, "http://"+spec.Host()+"/")

	prep, err := w.agent.BuildContent(false)
	if err != nil {
		t.Fatal(err)
	}
	base := append([]byte(nil), prep.XML()...)
	actions := []Action{
		{Kind: ActionMouseMove, X: 10, Y: 20, From: "p1"},
		{Kind: ActionScroll, Y: 300, From: "p2"},
	}
	spliced := prep.WithUserActions(actions)

	content, err := Unmarshal(spliced)
	if err != nil {
		t.Fatalf("spliced message does not parse: %v", err)
	}
	if !content.HasDocument {
		t.Error("splice lost the document payload")
	}
	if content.DocTime != prep.DocTime() {
		t.Errorf("docTime %d, want %d", content.DocTime, prep.DocTime())
	}
	if len(content.UserActions) != 2 {
		t.Fatalf("got %d user actions, want 2", len(content.UserActions))
	}
	if content.UserActions[0].Kind != ActionMouseMove || content.UserActions[1].Kind != ActionScroll {
		t.Errorf("action kinds corrupted: %v", content.UserActions)
	}
	if string(prep.XML()) != string(base) {
		t.Error("splice mutated the shared cached message")
	}
	cached, err := Unmarshal(prep.XML())
	if err != nil {
		t.Fatal(err)
	}
	if len(cached.UserActions) != 0 {
		t.Error("cached message must stay action-free")
	}
	if prep.WithUserActions(nil); len(prep.WithUserActions(nil)) != len(base) {
		t.Error("empty splice must return the shared bytes unchanged")
	}
}
