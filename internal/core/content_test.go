package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"rcb/internal/dom"
)

func TestElementPathRoundTrip(t *testing.T) {
	doc := dom.Parse(`<html><head><title>t</title></head>` +
		`<body><div><p>a</p><p>b</p></div><form><input name="q"></form></body></html>`)
	for _, el := range doc.Root.FindAll(func(n *dom.Node) bool { return n.Type == dom.ElementNode }) {
		path := ElementPath(el)
		if got := ResolvePath(doc.Root, path); got != el {
			t.Errorf("path %q resolved to %v, want %v", path, got, el)
		}
	}
}

func TestElementPathOfRoot(t *testing.T) {
	doc := dom.Parse(`<html><body></body></html>`)
	if p := ElementPath(doc.Root); p != "" {
		t.Errorf("root path = %q", p)
	}
	if ResolvePath(doc.Root, "") != doc.Root {
		t.Error("empty path must resolve to root")
	}
}

func TestResolvePathStale(t *testing.T) {
	doc := dom.Parse(`<html><body><p>x</p></body></html>`)
	if ResolvePath(doc.Root, "1.9") != nil {
		t.Error("out-of-range path must be nil")
	}
	if ResolvePath(doc.Root, "not.a.path") != nil {
		t.Error("garbage path must be nil")
	}
	if ResolvePath(doc.Root, "-1") != nil {
		t.Error("negative path must be nil")
	}
	// Malformed segmenting — empty parts from leading, trailing, or doubled
	// dots — must be rejected, not silently resolved.
	for _, p := range []string{"0.", ".0", "0..0", "."} {
		if ResolvePath(doc.Root, p) != nil {
			t.Errorf("malformed path %q must be nil", p)
		}
	}
}

func TestElementPathPropertyRandomTrees(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := dom.Parse(`<html><head></head><body>` + randomDivs(r, 4) + `</body></html>`)
		ok := true
		doc.Root.Walk(func(n *dom.Node) bool {
			if n.Type == dom.ElementNode {
				if ResolvePath(doc.Root, ElementPath(n)) != n {
					ok = false
					return false
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func randomDivs(r *rand.Rand, depth int) string {
	if depth == 0 || r.Intn(3) == 0 {
		return "leaf"
	}
	var b strings.Builder
	for i := 0; i < 1+r.Intn(3); i++ {
		b.WriteString("<div>")
		b.WriteString(randomDivs(r, depth-1))
		b.WriteString("</div>")
	}
	return b.String()
}

// genOpts builds contentOptions over a fixed resolver and cache set.
func genOpts(pageURL string, cacheMode bool, cached map[string]bool) contentOptions {
	registered := map[string]string{}
	n := 0
	return contentOptions{
		pageURL:   pageURL,
		docTime:   100,
		cacheMode: cacheMode,
		resolveRef: func(ref string) string {
			if strings.HasPrefix(ref, "http://") || strings.HasPrefix(ref, "https://") {
				return ref
			}
			if strings.HasPrefix(ref, "/") {
				return "http://www.site.com" + ref
			}
			return "http://www.site.com/" + ref
		},
		cacheHas: func(abs string) bool { return cached[abs] },
		agentURLFor: func(abs string) string {
			if p, ok := registered[abs]; ok {
				return p
			}
			n++
			p := "http://host.lan:3000/obj/t" + string(rune('0'+n))
			registered[abs] = p
			return p
		},
	}
}

const testPage = `<html><head><title>T</title>` +
	`<link rel="stylesheet" href="/s.css"><script src="app.js"></script></head>` +
	`<body><img src="/img/a.png"><img src="http://cdn.other.com/b.png">` +
	`<a href="/next" onclick="orig()">go</a>` +
	`<form action="/search" method="get" onsubmit="return check(this)">` +
	`<input type="text" name="q" value=""></form></body></html>`

func TestGenerateContentNonCacheMode(t *testing.T) {
	doc := dom.Parse(testPage)
	before := dom.OuterHTML(doc.Root)
	nc := generateContent(doc.Root, genOpts("http://www.site.com/", false, nil))

	// Step 1 invariant: the live document is untouched.
	if dom.OuterHTML(doc.Root) != before {
		t.Fatal("generateContent mutated the live document")
	}
	if nc.Body == nil {
		t.Fatal("no body in content")
	}
	body := nc.Body.Inner
	// Step 2: relative URLs became absolute.
	if !strings.Contains(body, `src="http://www.site.com/img/a.png"`) {
		t.Errorf("relative img not absolutized: %s", body)
	}
	if !strings.Contains(body, `src="http://cdn.other.com/b.png"`) {
		t.Errorf("already-absolute img altered: %s", body)
	}
	// Head children carry the converted stylesheet/script URLs.
	var foundCSS, foundJS bool
	for _, h := range nc.Head {
		for _, a := range h.Attrs {
			if a.Value == "http://www.site.com/s.css" {
				foundCSS = true
			}
			if a.Value == "http://www.site.com/app.js" {
				foundJS = true
			}
		}
	}
	if !foundCSS || !foundJS {
		t.Errorf("head object URLs not converted: %+v", nc.Head)
	}
}

func TestGenerateContentCacheMode(t *testing.T) {
	doc := dom.Parse(testPage)
	cached := map[string]bool{
		"http://www.site.com/img/a.png": true,
		// The CDN image and css/js are NOT cached → stay absolute.
	}
	nc := generateContent(doc.Root, genOpts("http://www.site.com/", true, cached))
	body := nc.Body.Inner
	if !strings.Contains(body, `src="http://host.lan:3000/obj/t1"`) {
		t.Errorf("cached object not rewritten to agent URL: %s", body)
	}
	if !strings.Contains(body, `src="http://cdn.other.com/b.png"`) {
		t.Errorf("uncached object must stay at origin (per-object mode mixing): %s", body)
	}
}

func TestGenerateContentEventRewriting(t *testing.T) {
	doc := dom.Parse(testPage)
	nc := generateContent(doc.Root, genOpts("http://www.site.com/", false, nil))
	body := nc.Body.Inner

	// Step 4: the form's onsubmit gained the snippet call, preserving the
	// original handler after it.
	if !strings.Contains(body, `onsubmit="return __rcb.submit(this); return check(this)"`) {
		t.Errorf("form onsubmit not rewritten: %s", body)
	}
	if !strings.Contains(body, `onclick="return __rcb.click(this); orig()"`) {
		t.Errorf("link onclick not rewritten: %s", body)
	}
	// Interactive elements carry data-rcb paths.
	parsed := dom.ParseFragment(body, "body")
	container := dom.NewElement("body")
	for _, n := range parsed {
		container.AppendChild(n)
	}
	form := container.Find(func(n *dom.Node) bool { return n.Tag == "form" })
	if form == nil || !form.HasAttr(RCBAttr) {
		t.Fatal("form has no data-rcb attribute")
	}
	input := container.Find(func(n *dom.Node) bool { return n.Tag == "input" })
	if input == nil || !input.HasAttr(RCBAttr) {
		t.Fatal("input has no data-rcb attribute")
	}
	if !strings.Contains(input.AttrOr("onchange", ""), "__rcb.input(this)") {
		t.Error("input onchange not rewritten")
	}
}

func TestRCBPathsMatchHostDocument(t *testing.T) {
	// The path stamped on the participant copy must resolve to the
	// corresponding element of the (un-rewritten) host document.
	hostDoc := dom.Parse(testPage)
	nc := generateContent(hostDoc.Root, genOpts("http://www.site.com/", false, nil))

	// Rebuild the participant's view of the body.
	participant := dom.NewElement("body")
	for _, n := range dom.ParseFragment(nc.Body.Inner, "body") {
		participant.AppendChild(n)
	}
	pForm := participant.Find(func(n *dom.Node) bool { return n.Tag == "form" })
	path := pForm.AttrOr(RCBAttr, "")
	if path == "" {
		t.Fatal("no path on participant form")
	}
	hostEl := ResolvePath(hostDoc.Root, path)
	if hostEl == nil || hostEl.Tag != "form" {
		t.Fatalf("path %q resolves to %v on host", path, hostEl)
	}
	if hostEl.AttrOr("action", "") != "/search" {
		t.Errorf("resolved wrong form: %v", hostEl.Attrs)
	}
}

func TestMergeFormData(t *testing.T) {
	doc := dom.Parse(`<body><form id="f">` +
		`<input type="text" name="name" value="">` +
		`<input type="text" name="zip" value="">` +
		`<textarea name="notes"></textarea>` +
		`<input type="submit" value="Go"></form></body>`)
	form := doc.ByID("f")
	n := mergeFormData(form, map[string]string{
		"name":  "Alice",
		"notes": "ring bell",
		"bogus": "ignored",
	})
	if n != 2 {
		t.Fatalf("merged %d fields, want 2", n)
	}
	vals := formValues(form)
	byName := map[string]string{}
	for _, v := range vals {
		byName[v.Name] = v.Value
	}
	if byName["name"] != "Alice" || byName["notes"] != "ring bell" || byName["zip"] != "" {
		t.Fatalf("values = %v", byName)
	}
}

func TestPrependHandler(t *testing.T) {
	if got := prependHandler("a();", ""); got != "a();" {
		t.Errorf("got %q", got)
	}
	if got := prependHandler("a();", "b()"); got != "a(); b()" {
		t.Errorf("got %q", got)
	}
}

func TestFindByRCBAttr(t *testing.T) {
	doc := dom.Parse(`<body><div data-rcb="1.0">x</div><div data-rcb="1.1">y</div></body>`)
	if el := FindByRCBAttr(doc.Root, "1.1"); el == nil || el.TextContent() != "y" {
		t.Fatalf("found %v", el)
	}
	if FindByRCBAttr(doc.Root, "9.9") != nil {
		t.Error("missing path must be nil")
	}
}
