// Package benchutil holds wire-level helpers shared by the root benchmark
// suite and cmd/rcb-bench, so the two fan-out benchmarks measure exactly
// the same serve path and cannot drift apart.
package benchutil

import (
	"fmt"
	"strconv"
	"strings"

	"rcb/internal/browser"
	"rcb/internal/core"
	"rcb/internal/dom"
	"rcb/internal/httpwire"
)

// BumpDoc applies the canonical fan-out benchmark mutation: one attribute
// write that advances the host document version, forcing the next poll
// sweep to regenerate content.
func BumpDoc(host *browser.Browser, tick int) error {
	return host.ApplyMutation(func(doc *dom.Document) error {
		doc.Body().SetAttr("data-tick", strconv.Itoa(tick))
		return nil
	})
}

// ServeAll serves one poll per prebuilt request — the timed body of every
// fan-out benchmark iteration. Both BenchmarkFanoutScale and rcb-bench
// -fanout call this, so the two measurements cannot drift apart.
func ServeAll(agent *core.Agent, reqs []*httpwire.Request) error {
	for _, req := range reqs {
		if resp := agent.ServeWire(req); resp.StatusCode != 200 {
			return fmt.Errorf("poll returned %d", resp.StatusCode)
		}
	}
	return nil
}

// RegisterPollers connects n participants directly at the wire level and
// returns a prebuilt polling request per participant (cookie attached,
// ts=0 so every poll takes the full response-sending path). Serving these
// exercises the agent serve path in isolation: request classification,
// form parse, participant lookup, prepared-content lookup, response
// assembly — with no participant-side application cost mixed in.
func RegisterPollers(agent *core.Agent, n int) ([]*httpwire.Request, error) {
	reqs := make([]*httpwire.Request, n)
	for i := range reqs {
		resp := agent.ServeWire(httpwire.NewRequest("GET", "/"))
		if resp.StatusCode != 200 {
			return nil, fmt.Errorf("join returned %d", resp.StatusCode)
		}
		cookie := resp.Header.Get("Set-Cookie")
		pid, _, _ := strings.Cut(strings.TrimPrefix(cookie, "rcbpid="), ";")
		if pid == "" {
			return nil, fmt.Errorf("no pid in Set-Cookie %q", cookie)
		}
		req := httpwire.NewRequest("POST", "/poll")
		req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		req.Header.Set("Cookie", "rcbpid="+pid)
		req.Body = []byte("ts=0")
		reqs[i] = req
	}
	return reqs, nil
}
