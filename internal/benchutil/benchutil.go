// Package benchutil holds wire-level helpers shared by the root benchmark
// suite and cmd/rcb-bench, so the two fan-out benchmarks measure exactly
// the same serve path and cannot drift apart.
package benchutil

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"rcb/internal/browser"
	"rcb/internal/core"
	"rcb/internal/dom"
	"rcb/internal/httpwire"
)

// BumpDoc applies the canonical fan-out benchmark mutation: one attribute
// write that advances the host document version, forcing the next poll
// sweep to regenerate content.
func BumpDoc(host *browser.Browser, tick int) error {
	return host.ApplyMutation(func(doc *dom.Document) error {
		doc.Body().SetAttr("data-tick", strconv.Itoa(tick))
		return nil
	})
}

// ServeAll serves one poll per prebuilt request — the timed body of every
// fan-out benchmark iteration. Both BenchmarkFanoutScale and rcb-bench
// -fanout call this, so the two measurements cannot drift apart.
func ServeAll(agent *core.Agent, reqs []*httpwire.Request) error {
	for _, req := range reqs {
		if resp := agent.ServeWire(req); resp.StatusCode != 200 {
			return fmt.Errorf("poll returned %d", resp.StatusCode)
		}
	}
	return nil
}

// TrackedPoller is a wire-level participant that acknowledges the docTime
// of its previous response, the way a real snippet does — so after its
// first (full) poll every subsequent poll is delta-eligible. The fan-out
// delta benchmarks use it where RegisterPollers' fixed ts=0 requests always
// take the full-snapshot path.
type TrackedPoller struct {
	req *httpwire.Request
	ts  int64
	buf []byte
}

// Serve sends one poll acknowledging the tracked docTime and advances the
// tracker from the response. It returns the response for callers that want
// the raw bytes (wire-size measurements).
func (p *TrackedPoller) Serve(agent *core.Agent) (*httpwire.Response, error) {
	p.buf = append(p.buf[:0], "ts="...)
	p.buf = strconv.AppendInt(p.buf, p.ts, 10)
	if p.ts > 0 {
		p.buf = append(p.buf, "&delta=1"...)
	}
	p.req.Body = p.buf
	resp := agent.ServeWire(p.req)
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("poll returned %d", resp.StatusCode)
	}
	if t, ok := docTimeOf(resp.Body); ok {
		p.ts = t
	}
	return resp, nil
}

// DocTime reports the docTime this poller last acknowledged.
func (p *TrackedPoller) DocTime() int64 { return p.ts }

// ServeAt sends one poll acknowledging a fixed ts (with the delta
// advertisement) without advancing the tracker — a participant pinned N
// builds behind, the shape the delta-ring benchmark measures.
func (p *TrackedPoller) ServeAt(agent *core.Agent, ts int64) (*httpwire.Response, error) {
	p.buf = append(p.buf[:0], "ts="...)
	p.buf = strconv.AppendInt(p.buf, ts, 10)
	if ts > 0 {
		p.buf = append(p.buf, "&delta=1"...)
	}
	p.req.Body = p.buf
	resp := agent.ServeWire(p.req)
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("poll returned %d", resp.StatusCode)
	}
	return resp, nil
}

// docTimeOpen is the marker docTimeOf scans for, hoisted so the scan stays
// allocation-free inside timed benchmark loops.
var docTimeOpen = []byte("<docTime>")

// docTimeOf scans a poll response body for its docTime element.
func docTimeOf(body []byte) (int64, bool) {
	i := bytes.Index(body, docTimeOpen)
	if i < 0 {
		return 0, false
	}
	var v int64
	j := i + len(docTimeOpen)
	for ; j < len(body) && body[j] >= '0' && body[j] <= '9'; j++ {
		v = v*10 + int64(body[j]-'0')
	}
	if j == i+len(docTimeOpen) {
		return 0, false
	}
	return v, true
}

// RegisterTrackedPollers connects n tracked participants at the wire level.
func RegisterTrackedPollers(agent *core.Agent, n int) ([]*TrackedPoller, error) {
	reqs, err := RegisterPollers(agent, n)
	if err != nil {
		return nil, err
	}
	out := make([]*TrackedPoller, n)
	for i, req := range reqs {
		out[i] = &TrackedPoller{req: req, buf: make([]byte, 0, 32)}
	}
	return out, nil
}

// ServeAllTracked serves one poll per tracked participant — the timed body
// of the delta-mode fan-out benchmark iterations.
func ServeAllTracked(agent *core.Agent, pollers []*TrackedPoller) error {
	for _, p := range pollers {
		if _, err := p.Serve(agent); err != nil {
			return err
		}
	}
	return nil
}

// ParticipantDoc returns the initial page skeleton a joining participant
// holds before its first sync — the same shape core.Agent.serveInitialPage
// sends.
func ParticipantDoc() *dom.Document {
	return dom.Parse(`<!DOCTYPE html><html><head><title>RCB Session</title>` +
		`<script id="rcb-ajax-snippet">/*snippet*/</script></head>` +
		`<body><div id="rcb-status">Connecting...</div></body></html>`)
}

// SmallEditDeltaScenario drives the canonical small-edit delta exchange
// against a live agent: a tracked participant full-syncs, the host document
// takes one BumpDoc edit, the same participant is served the delta and a
// fresh participant the full snapshot of the same version. Both the root
// BenchmarkDeltaApply and rcb-bench -delta run exactly this setup, so the
// two measurements cannot drift apart. It returns the base snapshot, delta,
// and full-snapshot message bodies.
func SmallEditDeltaScenario(host *browser.Browser, agent *core.Agent) (base, delta, full []byte, err error) {
	pollers, err := RegisterTrackedPollers(agent, 2)
	if err != nil {
		return nil, nil, nil, err
	}
	first, err := pollers[0].Serve(agent)
	if err != nil {
		return nil, nil, nil, err
	}
	if core.MessageIsDelta(first.Body) {
		return nil, nil, nil, fmt.Errorf("first poll was served a delta")
	}
	if err := BumpDoc(host, 1); err != nil {
		return nil, nil, nil, err
	}
	deltaResp, err := pollers[0].Serve(agent)
	if err != nil {
		return nil, nil, nil, err
	}
	if !core.MessageIsDelta(deltaResp.Body) {
		return nil, nil, nil, fmt.Errorf("small edit was not served as a delta")
	}
	fullResp, err := pollers[1].Serve(agent)
	if err != nil {
		return nil, nil, nil, err
	}
	if core.MessageIsDelta(fullResp.Body) {
		return nil, nil, nil, fmt.Errorf("fresh participant was served a delta")
	}
	return first.Body, deltaResp.Body, fullResp.Body, nil
}

// RegisterPollers connects n participants directly at the wire level and
// returns a prebuilt polling request per participant (cookie attached,
// ts=0 so every poll takes the full response-sending path). Serving these
// exercises the agent serve path in isolation: request classification,
// form parse, participant lookup, prepared-content lookup, response
// assembly — with no participant-side application cost mixed in.
func RegisterPollers(agent *core.Agent, n int) ([]*httpwire.Request, error) {
	reqs := make([]*httpwire.Request, n)
	for i := range reqs {
		resp := agent.ServeWire(httpwire.NewRequest("GET", "/"))
		if resp.StatusCode != 200 {
			return nil, fmt.Errorf("join returned %d", resp.StatusCode)
		}
		cookie := resp.Header.Get("Set-Cookie")
		pid, _, _ := strings.Cut(strings.TrimPrefix(cookie, "rcbpid="), ";")
		if pid == "" {
			return nil, fmt.Errorf("no pid in Set-Cookie %q", cookie)
		}
		req := httpwire.NewRequest("POST", "/poll")
		req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		req.Header.Set("Cookie", "rcbpid="+pid)
		req.Body = []byte("ts=0")
		reqs[i] = req
	}
	return reqs, nil
}
