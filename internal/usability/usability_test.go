package usability

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestScenarioAllTasksComplete(t *testing.T) {
	s, err := NewScenario()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	results := s.Run()
	if len(results) != 20 {
		t.Fatalf("ran %d tasks, want 20", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s (%s): %v", r.ID, r.Role, r.Err)
		}
	}
	done, total := CompletionRatio(results)
	if done != total {
		t.Fatalf("completion %d/%d; the study reports 100%%", done, total)
	}
}

func TestScenarioTaskIDsMatchTable2(t *testing.T) {
	s, err := NewScenario()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	results := s.Run()
	for i, r := range results {
		wantRole := "Bob"
		if i%2 == 1 {
			wantRole = "Alice"
		}
		if r.Role != wantRole {
			t.Errorf("task %s role = %s, want %s", r.ID, r.Role, wantRole)
		}
	}
	if results[0].ID != "T1-B" || results[19].ID != "T10-A" {
		t.Errorf("task ordering wrong: %s ... %s", results[0].ID, results[19].ID)
	}
}

func TestWriteTable2(t *testing.T) {
	s, err := NewScenario()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var b strings.Builder
	WriteTable2(&b, s.Run())
	out := b.String()
	if !strings.Contains(out, "T5-B") || !strings.Contains(out, "completed 20/20") {
		t.Errorf("table 2 output:\n%s", out)
	}
}

func TestQuestionnaireStructure(t *testing.T) {
	if len(Questions) != 16 {
		t.Fatalf("have %d questions, want 16", len(Questions))
	}
	groups := map[string]int{}
	for i, q := range Questions {
		groups[q.Group]++
		wantPositive := i%2 == 0
		if q.Positive != wantPositive {
			t.Errorf("%s positive = %v", q.ID, q.Positive)
		}
		if q.Pair != i/2+1 {
			t.Errorf("%s pair = %d", q.ID, q.Pair)
		}
	}
	if len(groups) != 4 {
		t.Fatalf("have %d groups, want 4: %v", len(groups), groups)
	}
	for g, n := range groups {
		if n != 4 {
			t.Errorf("group %q has %d questions, want 4", g, n)
		}
	}
}

func TestSimulatedResponsesMatchPublishedTable4(t *testing.T) {
	responses := SimulateResponses(2009)
	if len(responses) != 20*16 {
		t.Fatalf("have %d responses, want 320", len(responses))
	}
	stats := Summarize(responses)
	if len(stats) != 8 {
		t.Fatalf("have %d pairs, want 8", len(stats))
	}
	for _, st := range stats {
		want := PublishedRow(st.Pair)
		for i := 0; i < 5; i++ {
			if math.Abs(st.Percent[i]-want[i]) > 1e-9 {
				t.Errorf("Q%d score %d: %.1f%%, published %.1f%%", st.Pair, i+1, st.Percent[i], want[i])
			}
		}
		// The paper: "The median and mode responses are positive Agree for
		// all the questions."
		if st.Median != Agree || st.Mode != Agree {
			t.Errorf("Q%d median/mode = %s/%s, want Agree/Agree",
				st.Pair, ScoreName(st.Median), ScoreName(st.Mode))
		}
		if st.ResponseCnt != 40 {
			t.Errorf("Q%d merged %d responses, want 40", st.Pair, st.ResponseCnt)
		}
	}
}

func TestSimulationSeedInvariantProperty(t *testing.T) {
	// Whatever the seed, the merged statistics must equal Table 4: the seed
	// only shuffles which subject said what.
	f := func(seed int64) bool {
		stats := Summarize(SimulateResponses(seed))
		for _, st := range stats {
			want := PublishedRow(st.Pair)
			for i := 0; i < 5; i++ {
				if math.Abs(st.Percent[i]-want[i]) > 1e-9 {
					return false
				}
			}
			if st.Median != Agree || st.Mode != Agree {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeQuestionInversion(t *testing.T) {
	// A subject who strongly agrees with the positive phrasing answers the
	// negative phrasing near "strongly disagree"; after inversion both land
	// on the same merged score.
	responses := SimulateResponses(7)
	for _, resp := range responses {
		if resp.Score < 1 || resp.Score > 5 {
			t.Fatalf("out-of-scale score %d", resp.Score)
		}
	}
	// Count raw agreement on negative questions: with a positive instrument
	// result, most negative-question answers must be on the disagree side.
	negAgree, negTotal := 0, 0
	for _, resp := range responses {
		if !resp.Question.Positive {
			negTotal++
			if resp.Score >= Agree {
				negAgree++
			}
		}
	}
	if negAgree > negTotal/4 {
		t.Errorf("%d/%d negative-question answers agree; inversion looks wrong", negAgree, negTotal)
	}
}

func TestWriteTable3And4(t *testing.T) {
	var b strings.Builder
	WriteTable3(&b)
	if !strings.Contains(b.String(), "Q8-N") || !strings.Contains(b.String(), "Perceived Usefulness") {
		t.Errorf("table 3 output:\n%s", b.String())
	}
	b.Reset()
	WriteTable4(&b, Summarize(SimulateResponses(2009)))
	out := b.String()
	if !strings.Contains(out, "52.5%") || !strings.Contains(out, "Agree") {
		t.Errorf("table 4 output:\n%s", out)
	}
}

func TestSessionMinutesMeanPinned(t *testing.T) {
	times := SessionMinutes(42)
	if len(times) != 10 {
		t.Fatalf("want 10 pairs, got %d", len(times))
	}
	sum := 0.0
	for _, v := range times {
		if v <= 5 || v >= 17 {
			t.Errorf("implausible session time %.1f min", v)
		}
		sum += v
	}
	if math.Abs(sum/10-10.8) > 1e-9 {
		t.Errorf("mean = %.3f, want 10.8", sum/10)
	}
}

func TestScoreNames(t *testing.T) {
	want := map[int]string{
		StronglyDisagree: "Strongly disagree",
		Disagree:         "Disagree",
		Neither:          "Neither agree nor disagree",
		Agree:            "Agree",
		StronglyAgree:    "Strongly Agree",
	}
	for score, name := range want {
		if got := ScoreName(score); got != name {
			t.Errorf("ScoreName(%d) = %q, want %q", score, got, name)
		}
	}
	if got := ScoreName(9); !strings.Contains(got, "9") {
		t.Errorf("out-of-scale name = %q", got)
	}
}

func TestWriteTable4AllScoreColumns(t *testing.T) {
	// Force every median/mode rendering branch through a synthetic stat set.
	stats := []PairStats{
		{Pair: 1, Median: StronglyDisagree, Mode: Disagree, ResponseCnt: 1},
		{Pair: 2, Median: Neither, Mode: StronglyAgree, ResponseCnt: 1},
		{Pair: 3, Median: Agree, Mode: Agree, ResponseCnt: 1},
	}
	var b strings.Builder
	WriteTable4(&b, stats)
	out := b.String()
	for _, want := range []string{"S.Disagr", "Disagree", "Neither", "S.Agree", "Agree"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 4 output missing %q:\n%s", want, out)
		}
	}
}
