// Package usability reproduces the paper's usability study (§5.2): the
// 20-task co-browsing session of Table 2 executed as a scripted scenario
// against the real RCB stack, the 16-question instrument of Table 3, and
// the Likert-response statistics of Table 4.
//
// The paper's tasks were performed by 20 human subjects; here the two
// role-players (Bob hosts, Alice participates) are driven programmatically,
// which turns the study's 100% task-completion result into a machine-
// checkable property. Tables 3 and 4 operate on simulated responses whose
// merged distribution equals the published one exactly (see questionnaire.go
// and EXPERIMENTS.md for the honest framing of that substitution).
package usability

import (
	"fmt"
	"io"
	"strings"

	"rcb/internal/browser"
	"rcb/internal/core"
	"rcb/internal/dom"
	"rcb/internal/httpwire"
	"rcb/internal/sites"
)

// TaskResult records the outcome of one Table 2 task.
type TaskResult struct {
	ID   string // "T1-B", "T1-A", ...
	Role string // "Bob" or "Alice"
	Desc string
	Err  error
}

// Scenario drives the combined Google-Maps + shopping session of the study.
type Scenario struct {
	corpus *sites.Corpus
	bob    *browser.Browser // host browser
	agent  *core.Agent
	server *httpwire.Server
	alice  *core.Snippet

	mirrored []core.Action // actions Alice received from Bob
	agentURL string
}

// NewScenario wires the study environment: the site corpus, Bob's browser
// with RCB-Agent pre-installed (as the study pre-installed the extension),
// and a network location for Alice.
func NewScenario() (*Scenario, error) {
	corpus, err := sites.NewCorpus()
	if err != nil {
		return nil, err
	}
	const addr = "bob.lan:3000"
	s := &Scenario{corpus: corpus, agentURL: "http://" + addr}
	s.bob = browser.New("bob.lan", corpus.Network.Dialer("bob.lan"))
	s.agent = core.NewAgent(s.bob, addr)
	l, err := corpus.Network.Listen(addr)
	if err != nil {
		corpus.Close()
		return nil, err
	}
	s.server = &httpwire.Server{Handler: s.agent}
	s.server.Start(l)
	return s, nil
}

// Close tears the scenario down.
func (s *Scenario) Close() {
	if s.alice != nil {
		s.alice.Browser.Close()
	}
	s.server.Close()
	s.bob.Close()
	s.corpus.Close()
}

// sync lets Alice pull the current state.
func (s *Scenario) sync() error {
	_, err := s.alice.PollOnce()
	return err
}

// aliceBody returns Alice's rendered body HTML.
func (s *Scenario) aliceBody() (string, error) {
	var html string
	err := s.alice.Browser.WithDocument(func(_ string, doc *dom.Document) error {
		if doc.Body() == nil {
			return fmt.Errorf("alice has no body element")
		}
		html = dom.InnerHTML(doc.Body())
		return nil
	})
	return html, err
}

func (s *Scenario) aliceExpect(substr string) error {
	body, err := s.aliceBody()
	if err != nil {
		return err
	}
	if !strings.Contains(body, substr) {
		return fmt.Errorf("alice's page does not show %q", substr)
	}
	return nil
}

// mapsOps returns the maps client operations bound to Bob's browser.
func (s *Scenario) mapsOps() sites.MapsOps {
	return sites.MapsOps{Addr: sites.MapsHost, Client: s.bob.Client}
}

// Run executes the 20 tasks of Table 2 in order, stopping at nothing: every
// task is attempted and its error recorded, so the completion ratio is
// measurable exactly as in the study.
func (s *Scenario) Run() []TaskResult {
	type task struct {
		id, role, desc string
		fn             func() error
	}
	tasks := []task{
		{"T1-B", "Bob", "Bob starts a RCB co-browsing session using a Firefox browser.", s.t1Bob},
		{"T1-A", "Alice", "Alice types the URL told by Bob in a Firefox browser to join the session.", s.t1Alice},
		{"T2-B", "Bob", `Bob searches the location "653 5th Ave, New York" using Google Maps.`, s.t2Bob},
		{"T2-A", "Alice", "Alice tells Bob that the map of the location is automatically shown on her browser.", s.t2Alice},
		{"T3-B", "Bob", "Bob zooms in and out of the map, drags up/down/left/right the map.", s.t3Bob},
		{"T3-A", "Alice", "Alice tells Bob that the map is automatically updated on her browser.", s.t3Alice},
		{"T4-B", "Bob", "Bob clicks to the street-view of the searched location.", s.t4Bob},
		{"T4-A", "Alice", "Alice tells Bob that the street-view is also automatically shown on her browser.", s.t4Alice},
		{"T5-B", "Bob", "Bob tells Alice to meet outside the four red roof show-windows of Cartier.", s.t5Bob},
		{"T5-A", "Alice", "Alice finds the show-windows and agrees with the meeting spot.", s.t5Alice},
		{"T6-B", "Bob", "Bob continues to visit the homepage of Amazon.com website.", s.t6Bob},
		{"T6-A", "Alice", "Alice tells Bob that the homepage is automatically shown on her browser.", s.t6Alice},
		{"T7-B", "Bob", "Bob searches and clicks to find a MacBook Air laptop.", s.t7Bob},
		{"T7-A", "Alice", "Alice tells Bob that the pages are automatically updated on her browser.", s.t7Alice},
		{"T8-B", "Bob", "Bob asks Alice to search and click to choose a different MacBook Air laptop.", s.t8Bob},
		{"T8-A", "Alice", "Alice chooses a different MacBook Air laptop as her final choice.", s.t8Alice},
		{"T9-B", "Bob", "Bob adds the selected laptop to the shopping cart and starts the checkout procedure.", s.t9Bob},
		{"T9-A", "Alice", "Alice fills the shipping address form shown on her browser.", s.t9Alice},
		{"T10-B", "Bob", "Bob finishes the rest of the checkout procedure.", s.t10Bob},
		{"T10-A", "Alice", "Alice leaves the co-browsing session.", s.t10Alice},
	}
	out := make([]TaskResult, 0, len(tasks))
	for _, tk := range tasks {
		out = append(out, TaskResult{ID: tk.id, Role: tk.role, Desc: tk.desc, Err: tk.fn()})
	}
	return out
}

func (s *Scenario) t1Bob() error {
	// The agent is installed and listening; verify it answers a new
	// connection request with the Ajax-Snippet page.
	c := httpwire.NewClient(s.corpus.Network.Dialer("check.lan"))
	defer c.Close()
	resp, err := c.Get("bob.lan:3000", "/")
	if err != nil {
		return err
	}
	if resp.StatusCode != 200 || !strings.Contains(string(resp.Body), "rcb-ajax-snippet") {
		return fmt.Errorf("agent initial page wrong (status %d)", resp.StatusCode)
	}
	return nil
}

func (s *Scenario) t1Alice() error {
	pb := browser.New("alice.lan", s.corpus.Network.Dialer("alice.lan"))
	s.alice = core.NewSnippet(pb, s.agentURL, "")
	s.alice.OnUserAction = func(a core.Action) { s.mirrored = append(s.mirrored, a) }
	if err := s.alice.Join(); err != nil {
		return err
	}
	_, err := s.alice.PollOnce() // establish the polling channel
	return err
}

func (s *Scenario) t2Bob() error {
	if _, err := s.bob.Navigate("http://" + sites.MapsHost + "/"); err != nil {
		return err
	}
	ops := s.mapsOps()
	return s.bob.ApplyMutation(func(doc *dom.Document) error {
		return ops.Search(doc, "653 5th Ave, New York")
	})
}

func (s *Scenario) t2Alice() error {
	if err := s.sync(); err != nil {
		return err
	}
	return s.aliceExpect("center 9650,12318 zoom 16")
}

func (s *Scenario) t3Bob() error {
	ops := s.mapsOps()
	steps := []func(doc *dom.Document) error{
		func(d *dom.Document) error { return ops.Zoom(d, 1) },
		func(d *dom.Document) error { return ops.Zoom(d, -1) },
		func(d *dom.Document) error { return ops.Pan(d, 0, -1) },
		func(d *dom.Document) error { return ops.Pan(d, 1, 1) },
	}
	for _, step := range steps {
		if err := s.bob.ApplyMutation(step); err != nil {
			return err
		}
	}
	return nil
}

func (s *Scenario) t3Alice() error {
	if err := s.sync(); err != nil {
		return err
	}
	return s.aliceExpect("center 9651,12318 zoom 16")
}

func (s *Scenario) t4Bob() error {
	ops := s.mapsOps()
	return s.bob.ApplyMutation(ops.OpenStreetView)
}

func (s *Scenario) t4Alice() error {
	if err := s.sync(); err != nil {
		return err
	}
	return s.aliceExpect(`id="streetview"`)
}

func (s *Scenario) t5Bob() error {
	// Bob points at the meeting spot; the pointer mirrors to Alice.
	s.agent.HostAction(core.Action{Kind: core.ActionMouseMove, X: 384, Y: 212})
	return nil
}

func (s *Scenario) t5Alice() error {
	if err := s.sync(); err != nil {
		return err
	}
	for _, a := range s.mirrored {
		if a.Kind == core.ActionMouseMove && a.From == "host" && a.X == 384 {
			return nil // Alice saw where Bob pointed; she agrees
		}
	}
	return fmt.Errorf("bob's pointer was not mirrored to alice")
}

func (s *Scenario) t6Bob() error {
	_, err := s.bob.Navigate("http://" + sites.ShopHost + "/")
	return err
}

func (s *Scenario) t6Alice() error {
	if err := s.sync(); err != nil {
		return err
	}
	return s.aliceExpect("Everything Store")
}

func (s *Scenario) t7Bob() error {
	var form *dom.Node
	err := s.bob.WithDocument(func(_ string, doc *dom.Document) error {
		form = doc.ByID("search")
		if form == nil {
			return fmt.Errorf("no search form on shop homepage")
		}
		return nil
	})
	if err != nil {
		return err
	}
	if _, err := s.bob.SubmitForm(form, []httpwire.FormField{{Name: "q", Value: "macbook air"}}); err != nil {
		return err
	}
	// Bob clicks through to the first result.
	_, err = s.bob.Navigate("http://" + sites.ShopHost + "/product/1")
	return err
}

func (s *Scenario) t7Alice() error {
	if err := s.sync(); err != nil {
		return err
	}
	return s.aliceExpect("MacBook Air 13-inch")
}

func (s *Scenario) t8Bob() error {
	// Bob navigates back to the results so Alice can pick; his ask is
	// verbal (voice channel), nothing to verify beyond the page being back.
	var form *dom.Node
	if _, err := s.bob.Navigate("http://" + sites.ShopHost + "/"); err != nil {
		return err
	}
	err := s.bob.WithDocument(func(_ string, doc *dom.Document) error {
		form = doc.ByID("search")
		return nil
	})
	if err != nil {
		return err
	}
	_, err = s.bob.SubmitForm(form, []httpwire.FormField{{Name: "q", Value: "macbook air"}})
	return err
}

func (s *Scenario) t8Alice() error {
	if err := s.sync(); err != nil {
		return err
	}
	// Alice clicks the other MacBook Air (product 2) on her own browser;
	// the click routes through Bob's browser to the shop.
	if err := s.alice.ClickElement("result-2"); err != nil {
		return err
	}
	if err := s.sync(); err != nil {
		return err
	}
	if !strings.HasSuffix(s.bob.URL(), "/product/2") {
		return fmt.Errorf("alice's click did not navigate bob's browser (at %s)", s.bob.URL())
	}
	return s.aliceExpect("MacBook Air 13-inch SSD")
}

func (s *Scenario) t9Bob() error {
	var form *dom.Node
	err := s.bob.WithDocument(func(_ string, doc *dom.Document) error {
		form = doc.ByID("addtocart")
		if form == nil {
			return fmt.Errorf("no add-to-cart form")
		}
		return nil
	})
	if err != nil {
		return err
	}
	if _, err := s.bob.SubmitForm(form, core.FormFields(form)); err != nil {
		return err
	}
	if _, err := s.bob.Navigate("http://" + sites.ShopHost + "/checkout"); err != nil {
		return err
	}
	return nil
}

func (s *Scenario) t9Alice() error {
	if err := s.sync(); err != nil {
		return err
	}
	if err := s.alice.SubmitFormByID("shipping", []httpwire.FormField{
		{Name: "name", Value: "Alice Cousin"},
		{Name: "street", Value: "653 5th Ave"},
		{Name: "city", Value: "New York"},
		{Name: "zip", Value: "10022"},
	}); err != nil {
		return err
	}
	return s.sync()
}

func (s *Scenario) t10Bob() error {
	var form *dom.Node
	var fields []httpwire.FormField
	err := s.bob.WithDocument(func(_ string, doc *dom.Document) error {
		form = doc.ByID("shipping")
		if form == nil {
			return fmt.Errorf("shipping form lost")
		}
		fields = core.FormFields(form)
		return nil
	})
	if err != nil {
		return err
	}
	// The form must already carry Alice's data (co-filled).
	var hasName bool
	for _, f := range fields {
		if f.Name == "name" && f.Value == "Alice Cousin" {
			hasName = true
		}
	}
	if !hasName {
		return fmt.Errorf("shipping form not co-filled by alice: %v", fields)
	}
	if _, err := s.bob.SubmitForm(form, fields); err != nil {
		return err
	}
	var confirmed bool
	err = s.bob.WithDocument(func(_ string, doc *dom.Document) error {
		confirmed = doc.ByID("confirm") != nil
		return nil
	})
	if err != nil {
		return err
	}
	if !confirmed {
		return fmt.Errorf("order not confirmed")
	}
	return nil
}

func (s *Scenario) t10Alice() error {
	// Alice sees the confirmation, then leaves.
	if err := s.sync(); err != nil {
		return err
	}
	if err := s.aliceExpect("Thank you!"); err != nil {
		return err
	}
	for _, p := range s.agent.Participants() {
		s.agent.Disconnect(p.ID)
	}
	if len(s.agent.Participants()) != 0 {
		return fmt.Errorf("session did not empty")
	}
	return nil
}

// CompletionRatio returns completed/total over a result set.
func CompletionRatio(results []TaskResult) (completed, total int) {
	for _, r := range results {
		if r.Err == nil {
			completed++
		}
	}
	return completed, len(results)
}

// WriteTable2 renders the task table with outcomes.
func WriteTable2(w io.Writer, results []TaskResult) {
	fmt.Fprintln(w, "Table 2: the 20 tasks used in a co-browsing session")
	fmt.Fprintf(w, "%-7s %-6s %-6s %s\n", "Task#", "Role", "OK", "Description")
	fmt.Fprintln(w, strings.Repeat("-", 90))
	for _, r := range results {
		ok := "yes"
		if r.Err != nil {
			ok = "NO"
		}
		fmt.Fprintf(w, "%-7s %-6s %-6s %s\n", r.ID, r.Role, ok, r.Desc)
		if r.Err != nil {
			fmt.Fprintf(w, "        error: %v\n", r.Err)
		}
	}
	done, total := CompletionRatio(results)
	fmt.Fprintf(w, "completed %d/%d tasks (paper: 100%% success across 10 pairs)\n", done, total)
}
