package usability

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
)

// Likert scores (paper §5.2.3: five-point Likert scale).
const (
	StronglyDisagree = 1
	Disagree         = 2
	Neither          = 3
	Agree            = 4
	StronglyAgree    = 5
)

// ScoreName renders a Likert score.
func ScoreName(s int) string {
	switch s {
	case StronglyDisagree:
		return "Strongly disagree"
	case Disagree:
		return "Disagree"
	case Neither:
		return "Neither agree nor disagree"
	case Agree:
		return "Agree"
	case StronglyAgree:
		return "Strongly Agree"
	}
	return fmt.Sprintf("score(%d)", s)
}

// Question is one item of the Table 3 instrument.
type Question struct {
	ID       string // "Q1-P", "Q1-N", ...
	Pair     int    // 1..8: which P/N pair it belongs to
	Positive bool
	Group    string
	Text     string
}

// Questions is the 16-question instrument of Table 3: eight positive Likert
// questions and eight correspondingly inverted negative ones, in four
// groups.
var Questions = []Question{
	{"Q1-P", 1, true, "Perceived Usefulness", "It is helpful to use RCB to coordinate a meeting spot via Google Maps."},
	{"Q1-N", 1, false, "Perceived Usefulness", "It is useless to use RCB to coordinate a meeting spot via Google Maps."},
	{"Q2-P", 2, true, "Perceived Usefulness", "It is helpful to use RCB to perform online co-shopping at Amazon.com."},
	{"Q2-N", 2, false, "Perceived Usefulness", "It is useless to use RCB to perform online co-shopping at Amazon.com."},
	{"Q3-P", 3, true, "Ease-of-use as a co-browsing host", "It is easy to use RCB to host the Google Maps scenario."},
	{"Q3-N", 3, false, "Ease-of-use as a co-browsing host", "It is hard to use RCB to host the Google Maps scenario."},
	{"Q4-P", 4, true, "Ease-of-use as a co-browsing host", "It is easy to use RCB to host the online co-shopping scenario."},
	{"Q4-N", 4, false, "Ease-of-use as a co-browsing host", "It is hard to use RCB to host the online co-shopping scenario."},
	{"Q5-P", 5, true, "Ease-of-use as a co-browsing participant", "It is easy to participate in the RCB Google Maps scenario."},
	{"Q5-N", 5, false, "Ease-of-use as a co-browsing participant", "It is hard to participate in the RCB Google Maps scenario."},
	{"Q6-P", 6, true, "Ease-of-use as a co-browsing participant", "It is easy to participate in the RCB online co-shopping scenario."},
	{"Q6-N", 6, false, "Ease-of-use as a co-browsing participant", "It is hard to participate in the RCB online co-shopping scenario."},
	{"Q7-P", 7, true, "Potential Usage", "It would be helpful to use RCB on other co-browsing activities."},
	{"Q7-N", 7, false, "Potential Usage", "It wouldn't be helpful to use RCB on other co-browsing activities."},
	{"Q8-P", 8, true, "Potential Usage", "I would like to use RCB in the future."},
	{"Q8-N", 8, false, "Potential Usage", "I wouldn't like to use RCB in the future."},
}

// publishedDistribution is Table 4 of the paper: for each merged question
// pair, the percentage of the 40 responses (20 subjects × P and inverted N)
// falling on each score. All percentages are multiples of 2.5 (= 1/40), so
// exact response counts are recoverable.
var publishedDistribution = [8][5]float64{
	{0.0, 0.0, 7.5, 52.5, 40.0},  // Q1
	{0.0, 0.0, 7.5, 52.5, 40.0},  // Q2
	{5.0, 0.0, 5.0, 50.0, 40.0},  // Q3
	{0.0, 2.5, 7.5, 62.5, 27.5},  // Q4
	{0.0, 2.5, 0.0, 62.5, 35.0},  // Q5
	{0.0, 5.0, 2.5, 57.5, 35.0},  // Q6
	{0.0, 2.5, 5.0, 55.0, 37.5},  // Q7
	{0.0, 0.0, 15.0, 55.0, 30.0}, // Q8
}

// Response is one subject's answer to one question, on the raw (uninverted)
// scale as the subject gave it.
type Response struct {
	Subject  int // 1..20
	Question Question
	Score    int
}

// SimulateResponses generates a full response set for the 20 subjects whose
// merged per-pair distribution equals the published Table 4 exactly. The
// paper's human answers are unavailable; this is the closest synthetic
// equivalent (documented in EXPERIMENTS.md). The seeded shuffle decides only
// which subject gave which score and whether it landed on the P or the N
// variant — both are marginalized away by the Table 4 statistics.
func SimulateResponses(seed int64) []Response {
	r := rand.New(rand.NewSource(seed))
	var out []Response
	for pair := 1; pair <= 8; pair++ {
		// Rebuild the exact multiset of 40 merged scores.
		var merged []int
		for score := 1; score <= 5; score++ {
			count := int(publishedDistribution[pair-1][score-1]*40/100 + 0.5)
			for i := 0; i < count; i++ {
				merged = append(merged, score)
			}
		}
		if len(merged) != 40 {
			panic(fmt.Sprintf("usability: pair %d rebuilt %d responses, want 40", pair, len(merged)))
		}
		r.Shuffle(len(merged), func(i, j int) { merged[i], merged[j] = merged[j], merged[i] })
		// First 20 go to the positive question as-is; the rest to the
		// negative question inverted about the neutral mark (a subject who
		// "agrees" on the merged scale answers "disagree" to the negative
		// phrasing).
		pq, nq := Questions[(pair-1)*2], Questions[(pair-1)*2+1]
		for s := 0; s < 20; s++ {
			out = append(out, Response{Subject: s + 1, Question: pq, Score: merged[s]})
			out = append(out, Response{Subject: s + 1, Question: nq, Score: 6 - merged[20+s]})
		}
	}
	return out
}

// PairStats is one merged row of Table 4.
type PairStats struct {
	Pair        int
	Percent     [5]float64 // share of responses per score, ascending
	Median      int
	Mode        int
	ResponseCnt int
}

// Summarize computes Table 4 from raw responses: negative-question scores
// are inverted about the neutral mark and merged with their positive
// counterparts, then percentages, median, and mode are taken (paper
// §5.2.3 and the Table 4 caption).
func Summarize(responses []Response) []PairStats {
	byPair := make(map[int][]int)
	for _, resp := range responses {
		score := resp.Score
		if !resp.Question.Positive {
			score = 6 - score // invert about the neutral mark
		}
		byPair[resp.Question.Pair] = append(byPair[resp.Question.Pair], score)
	}
	pairs := make([]int, 0, len(byPair))
	for p := range byPair {
		pairs = append(pairs, p)
	}
	sort.Ints(pairs)
	out := make([]PairStats, 0, len(pairs))
	for _, p := range pairs {
		scores := byPair[p]
		sort.Ints(scores)
		st := PairStats{Pair: p, ResponseCnt: len(scores)}
		counts := [5]int{}
		for _, s := range scores {
			counts[s-1]++
		}
		for i, c := range counts {
			st.Percent[i] = 100 * float64(c) / float64(len(scores))
		}
		st.Median = scores[(len(scores)-1)/2] // lower median for ordinal data
		best := 0
		for i, c := range counts {
			if c > best {
				best = c
				st.Mode = i + 1
			}
		}
		out = append(out, st)
	}
	return out
}

// WriteTable3 renders the instrument.
func WriteTable3(w io.Writer) {
	fmt.Fprintln(w, "Table 3: the 16 close-ended questions in four groups")
	group := ""
	for _, q := range Questions {
		if q.Group != group {
			group = q.Group
			fmt.Fprintf(w, "\n%s\n", group)
		}
		fmt.Fprintf(w, "  %s: %s\n", q.ID, q.Text)
	}
	fmt.Fprintln(w, "\n(Questions were presented in random order; subjects were not aware of the groupings.)")
}

// WriteTable4 renders the summary statistics.
func WriteTable4(w io.Writer, stats []PairStats) {
	fmt.Fprintln(w, "Table 4: summary of the responses to the 16 close-ended questions")
	fmt.Fprintf(w, "%-5s %9s %9s %13s %7s %9s %9s %9s\n",
		"", "Strongly", "Disagree", "Neither", "Agree", "Strongly", "Median", "Mode")
	fmt.Fprintf(w, "%-5s %9s %9s %13s %7s %9s %9s %9s\n",
		"", "disagree", "", "agree nor dis", "", "Agree", "", "")
	fmt.Fprintln(w, strings.Repeat("-", 78))
	for _, st := range stats {
		fmt.Fprintf(w, "Q%-4d %8.1f%% %8.1f%% %12.1f%% %6.1f%% %8.1f%% %9s %9s\n",
			st.Pair,
			st.Percent[0], st.Percent[1], st.Percent[2], st.Percent[3], st.Percent[4],
			shortScore(st.Median), shortScore(st.Mode))
	}
}

func shortScore(s int) string {
	switch s {
	case Agree:
		return "Agree"
	case StronglyAgree:
		return "S.Agree"
	case Neither:
		return "Neither"
	case Disagree:
		return "Disagree"
	case StronglyDisagree:
		return "S.Disagr"
	}
	return "?"
}

// PublishedRow returns the paper's Table 4 percentages for a pair (1..8),
// for verification against Summarize output.
func PublishedRow(pair int) [5]float64 {
	return publishedDistribution[pair-1]
}

// SessionMinutes reports the simulated per-pair completion times, whose
// mean matches the paper's 10.8 minutes.
func SessionMinutes(seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	const pairs = 10
	const mean = 10.8
	out := make([]float64, pairs)
	sum := 0.0
	for i := 0; i < pairs-1; i++ {
		v := mean + (r.Float64()-0.5)*4 // ±2 minutes of spread
		out[i] = v
		sum += v
	}
	out[pairs-1] = mean*pairs - sum // pin the mean exactly
	return out
}
